#!/bin/sh
# Regenerate every artifact under results/ from the release binaries.
#
# Independent bins run concurrently (the binaries also parallelize
# internally over host threads, so total wall time is bounded by the
# heaviest bin, not the sum). Each bin writes to a .tmp file that is only
# moved into place on success, and stderr goes to results/logs/<bin>.log —
# a failing bin can neither leave a truncated CSV nor pollute one with
# diagnostics. The report runs last, over the finished artifacts.
set -eu
cd "$(dirname "$0")"
B=./target/release
mkdir -p results results/logs

run() {
    # run <bin> <artifact> [args...]
    bin=$1
    out=$2
    shift 2
    if "$B/$bin" "$@" >"results/$out.tmp" 2>"results/logs/$bin.log"; then
        mv "results/$out.tmp" "results/$out"
    else
        rc=$?
        rm -f "results/$out.tmp"
        echo "regen: $bin failed (rc=$rc), stderr in results/logs/$bin.log" >&2
        return "$rc"
    fi
}

pids=""
names=""
spawn() {
    run "$@" &
    pids="$pids $!"
    names="$names $1"
}

spawn table1 table1.csv
spawn table2 table2.csv
spawn table3 table3.csv
spawn figure2 figure2.csv
spawn figure4 figure4.csv
spawn figure5 figure5.csv
spawn figure6 figure6.csv
spawn mpki mpki.csv 32
spawn ablation ablation.csv
spawn performance performance.csv 256
spawn figure3 figure3.txt 8
spawn crossisa crossisa.csv 32
spawn validate validate.csv 1

fail=0
i=0
for pid in $pids; do
    i=$((i + 1))
    name=$(echo "$names" | tr ' ' '\n' | sed -n "$((i + 1))p")
    if ! wait "$pid"; then
        echo "regen: bin '$name' did not produce its artifact" >&2
        fail=1
    fi
done
[ "$fail" -eq 0 ] || exit 1

run report report.txt results
echo ALL_DONE
