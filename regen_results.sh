#!/bin/sh
# Regenerate every artifact under results/ from the release binaries.
#
# Bins run sequentially: the binaries already parallelize internally over
# host threads, and a strict order lets the shared layer store dedup work
# across bins (an early bin's slices are store hits for every later bin
# that sweeps the same layers) instead of racing to simulate the same
# point twice. Each bin writes to a .tmp file that is only moved into
# place on success, and stderr goes to results/logs/<bin>.log — a failing
# bin can neither leave a truncated CSV nor pollute one with diagnostics.
# The report runs last, over the finished artifacts.
#
# Layer store: every bin shares the content-addressed layer-result store
# at $LSV_STORE_DIR (default results/.layer-store). The store is wiped
# before the run so committed CSVs always come from a cold, fully
# re-simulated pass — set KEEP_STORE=1 to reuse a previous run's entries
# (warm regen, seconds instead of minutes). Per-bin store counters land in
# results/logs/<bin>.store.json and per-bin wall times in
# results/logs/regen_times.txt (the file bench-simulator --regen-after
# consumes).
set -eu
cd "$(dirname "$0")"
B=./target/release
mkdir -p results results/logs

LSV_STORE_DIR=${LSV_STORE_DIR:-results/.layer-store}
export LSV_STORE_DIR
if [ "${KEEP_STORE:-0}" != "1" ]; then
    rm -rf "$LSV_STORE_DIR"
fi
mkdir -p "$LSV_STORE_DIR"
TIMES=results/logs/regen_times.txt
: >"$TIMES"

run() {
    # run <bin> <artifact> [args...]
    bin=$1
    out=$2
    shift 2
    t0=$(date +%s%N)
    if LSV_STORE_STATS="results/logs/$bin.store.json" \
        "$B/$bin" "$@" >"results/$out.tmp" 2>"results/logs/$bin.log"; then
        t1=$(date +%s%N)
        echo "$bin $(((t1 - t0) / 1000000))ms" >>"$TIMES"
        mv "results/$out.tmp" "results/$out"
    else
        rc=$?
        rm -f "results/$out.tmp"
        echo "regen: $bin failed (rc=$rc), stderr in results/logs/$bin.log" >&2
        return "$rc"
    fi
}

# Order matters for the store: figure4 (the broad vlen x layer sweep)
# goes first so the heavyweight sweeps behind it start warm.
run table1 table1.csv
run table2 table2.csv
run table3 table3.csv
run figure2 figure2.csv
run figure4 figure4.csv
run figure5 figure5.csv
run figure6 figure6.csv
run mpki mpki.csv 32
run ablation ablation.csv
run performance performance.csv 256
run figure3 figure3.txt 8
run crossisa crossisa.csv 32
run validate validate.csv 1
# The serving sweep reuses the shared store: its latency tables revisit the
# same (layer, direction) slices the figure sweeps already simulated. The
# JSON and time-series artifacts are written (and, for the JSON,
# schema-validated) by the bin itself; only the CSV goes through the
# tmp-and-move stdout path.
run bench-serving serving.csv --json results/BENCH_serving.json \
    --timeseries results/serving_timeseries.csv

run report report.txt results
echo ALL_DONE
