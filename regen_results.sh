#!/bin/sh
set -x
B=./target/release
$B/table1 > results/table1.csv 2>&1
$B/table2 > results/table2.csv 2>&1
$B/table3 > results/table3.csv 2>&1
$B/figure2 > results/figure2.csv 2>&1
$B/figure4 > results/figure4.csv 2>&1
$B/figure5 > results/figure5.csv 2>&1
$B/figure6 > results/figure6.csv 2>&1
$B/mpki 32 > results/mpki.csv 2>&1
$B/ablation > results/ablation.csv 2>&1
$B/performance 256 > results/performance.csv 2>&1
$B/figure3 8 > results/figure3.txt 2>&1
$B/crossisa 32 > results/crossisa.csv 2>&1
$B/validate 1 > results/validate.csv 2>&1
$B/report results > results/report.txt 2>&1
echo ALL_DONE
