//! # lsvconv — efficient direct convolution using long SIMD instructions
//!
//! Facade crate for the PPoPP 2023 reproduction. Re-exports every workspace
//! crate under a stable path so examples and downstream users need a single
//! dependency:
//!
//! ```
//! use lsvconv::arch::presets::sx_aurora;
//! let arch = sx_aurora();
//! assert_eq!(arch.n_vlen(), 512);
//! ```
//!
//! See the crate-level docs of each module for the subsystem inventory:
//!
//! * [`arch`] — architecture parameters + analytical model (Formulas 1-4).
//! * [`cache`] — set-associative cache hierarchy simulator with conflict-miss
//!   classification and a banked LLC.
//! * [`vengine`] — functional + timing simulator of a long-SIMD vector core.
//! * [`tensor`] — rank-4 tensors and blocked memory layouts.
//! * [`conv`] — the paper's contribution: DC, BDC, MBDC, the auto-tuner and
//!   the oneDNN-style primitive API.
//! * [`analyze`] — static kernel verifier + lint framework (Formula 3/4
//!   lints, layout contracts, trace sanitizers).
//! * [`obs`] — profile exporters for the region profiler (Perfetto traces,
//!   folded flamegraph stacks, schema-validated `profile.json`).
//! * [`vednn`] — the baseline proprietary-library stand-in.
//! * [`models`] — ResNet workloads (Table 3 layer suite, model frequencies).
//! * [`serve`] — the model-level serving harness: whole-network runner glue,
//!   arrival processes, dynamic batching queues, latency/SLO sweeps.

pub use lsv_analyze as analyze;
pub use lsv_arch as arch;
pub use lsv_cache as cache;
pub use lsv_conv as conv;
pub use lsv_models as models;
pub use lsv_obs as obs;
pub use lsv_serve as serve;
pub use lsv_tensor as tensor;
pub use lsv_vednn as vednn;
pub use lsv_vengine as vengine;

/// Convenience prelude importing the types most programs need.
pub mod prelude {
    pub use lsv_arch::{presets::sx_aurora, ArchParams};
    pub use lsv_conv::{
        naive, Algorithm, ConvDesc, ConvPrimitive, ConvProblem, Direction, ExecutionMode,
    };
    pub use lsv_models::{resnet_layers, ResNetModel};
    pub use lsv_tensor::{ActTensor, ActivationLayout, WeiTensor, WeightLayout};
}
