#!/usr/bin/env bash
# CI gate: formatting, lints, build, tests, and the kernel-verifier sweep.
# Any step failing fails the run.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check"
cargo fmt --all -- --check

echo "== cargo clippy (warnings denied)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release"
cargo build --release --workspace

echo "== cargo test"
cargo test --workspace -q

echo "== lint-kernels (full arch family, static-only; deny findings are errors)"
# --all sweeps every 512..16384-bit family member; --static proves the
# clean path ran zero simulated replays (the symbolic analyzer was
# conclusive everywhere). The old per-kernel replay step is gone: the
# fuzz agreement oracle below cross-checks static vs replay verdicts.
cargo run --release -p lsv-bench --bin lint-kernels -- --all --static --deny-as-error

echo "== differential fuzz (smoke: seed corpus + bounded randomized sweep)"
cargo run --release -p lsv-bench --bin lsvconv-cli -- fuzz --smoke --agreement

echo "== differential fuzz, native backend (smoke: host-speed functional path)"
cargo run --release -p lsv-bench --bin lsvconv-cli -- fuzz --smoke --backend native

echo "== profile smoke (reconciliation + profile.json schema are hard errors)"
cargo run --release -p lsv-bench --bin lsvconv-cli -- profile --smoke --out results/ci-profile

echo "== bench-simulator (smoke)"
cargo run --release -p lsv-bench --bin bench-simulator -- --smoke

echo "== layer-store smoke (cold -> warm >= 5x + byte-identical, then store-off equality)"
STORE_SMOKE_DIR=results/.ci-store
STORE_SMOKE_OUT=results/logs
mkdir -p "$STORE_SMOKE_OUT"
rm -rf "$STORE_SMOKE_DIR"
t0=$(date +%s%N)
LSV_STORE_DIR="$STORE_SMOKE_DIR" ./target/release/mpki 32 \
    >"$STORE_SMOKE_OUT/ci-store-cold.csv" 2>/dev/null
t1=$(date +%s%N)
LSV_STORE_DIR="$STORE_SMOKE_DIR" ./target/release/mpki 32 \
    >"$STORE_SMOKE_OUT/ci-store-warm.csv" 2>/dev/null
t2=$(date +%s%N)
cmp "$STORE_SMOKE_OUT/ci-store-cold.csv" "$STORE_SMOKE_OUT/ci-store-warm.csv"
cold_ms=$(((t1 - t0) / 1000000))
warm_ms=$(((t2 - t1) / 1000000))
echo "   cold ${cold_ms}ms, warm ${warm_ms}ms"
if [ $((warm_ms * 5)) -gt "$cold_ms" ]; then
    echo "store smoke: warm pass (${warm_ms}ms) not >=5x faster than cold (${cold_ms}ms)" >&2
    exit 1
fi
LSV_STORE=0 ./target/release/mpki 32 >"$STORE_SMOKE_OUT/ci-store-off.csv" 2>/dev/null
cmp "$STORE_SMOKE_OUT/ci-store-cold.csv" "$STORE_SMOKE_OUT/ci-store-off.csv"
rm -rf "$STORE_SMOKE_DIR"

echo "== serving smoke (queue sweep + trace; warm replay must be byte-identical)"
SERVE_STORE_DIR=results/.ci-serve-store
SERVE_TRACE_COLD=results/.ci-serve-trace-cold
SERVE_TRACE_WARM=results/.ci-serve-trace-warm
rm -rf "$SERVE_STORE_DIR" "$SERVE_TRACE_COLD" "$SERVE_TRACE_WARM"
./target/release/lsvconv-cli serve --smoke --store-dir "$SERVE_STORE_DIR" \
    --trace "$SERVE_TRACE_COLD" \
    >"$STORE_SMOKE_OUT/ci-serve-cold.txt" 2>/dev/null
./target/release/lsvconv-cli serve --smoke --store-dir "$SERVE_STORE_DIR" \
    --trace "$SERVE_TRACE_WARM" \
    >"$STORE_SMOKE_OUT/ci-serve-warm.txt" 2>/dev/null
# The `wrote <path>` lines name the (different) cold/warm trace dirs;
# everything else on stdout must replay byte-identically.
grep -v '^wrote ' "$STORE_SMOKE_OUT/ci-serve-cold.txt" >"$STORE_SMOKE_OUT/ci-serve-cold.cmp"
grep -v '^wrote ' "$STORE_SMOKE_OUT/ci-serve-warm.txt" >"$STORE_SMOKE_OUT/ci-serve-warm.cmp"
cmp "$STORE_SMOKE_OUT/ci-serve-cold.cmp" "$STORE_SMOKE_OUT/ci-serve-warm.cmp"
# The trace must reconcile bit-for-bit (the CLI exits 1 otherwise, but the
# explicit grep keeps the contract visible in the CI transcript) and the
# warm-store replay must reproduce every trace artifact byte-identically.
# metrics.json is excluded on purpose: cold and warm runs legitimately
# differ in store hit/miss counters.
grep -q "trace reconciliation: exact" "$STORE_SMOKE_OUT/ci-serve-cold.txt"
cmp "$SERVE_TRACE_COLD/serving_trace.json" "$SERVE_TRACE_WARM/serving_trace.json"
cmp "$SERVE_TRACE_COLD/serving_trace.perfetto.json" "$SERVE_TRACE_WARM/serving_trace.perfetto.json"
cmp "$SERVE_TRACE_COLD/serving_timeseries.csv" "$SERVE_TRACE_WARM/serving_timeseries.csv"
rm -rf "$SERVE_TRACE_COLD" "$SERVE_TRACE_WARM"

echo "== bench-serving (smoke; BENCH_serving.json schema validation is a hard error)"
LSV_STORE_DIR="$SERVE_STORE_DIR" ./target/release/bench-serving --smoke \
    --json "$STORE_SMOKE_OUT/ci-serving.json" >"$STORE_SMOKE_OUT/ci-serving.csv" 2>/dev/null
rm -rf "$SERVE_STORE_DIR"

echo "== bench-native (smoke: layer GFLOP/s + sim-vs-native corpus speedup)"
cargo run --release -p lsv-bench --bin bench-native -- --smoke

echo "== cargo bench (smoke mode: 1 sample per benchmark)"
LSV_BENCH_SMOKE=1 cargo bench --workspace -q

echo "CI OK"
