//! The paper's Section 5 story, end to end: on long-SIMD machines, tying the
//! activation blocking factor to `N_vlen` makes the state-of-the-art direct
//! convolution thrash the L1 — Formula 3 predicts it, the cache simulator
//! measures it, and BDC's bounded register blocking fixes it.
//!
//! Run with: `cargo run --release --example conflict_analysis`

use lsvconv::arch::{formula2_rb_min, formula3_predicts_conflicts, formula4_rb_upper_bound};
use lsvconv::conv::{bench_layer, Algorithm, ConvDesc, Direction, ExecutionMode};
use lsvconv::models::resnet_layer;
use lsvconv::prelude::sx_aurora;

fn main() {
    let arch = sx_aurora();
    // Table 3 layer 8: IC=512, OC=128, 28x28, 1x1/s1 — a conflict-predicted
    // forward layer (Section 8 list: 4,5,8-10,13-18).
    let p = resnet_layer(8, 64);
    println!("layer 8: {p}");

    // --- the analytical model's verdict ---
    let ab = p.ic.min(arch.n_vlen());
    let rb_dc = formula2_rb_min(&arch);
    println!(
        "\nFormula 2: DC needs RB >= {rb_dc} to keep {} FMA pipelines busy",
        arch.n_fma
    );
    println!(
        "Formula 3: with A_b = {ab} elements, conflicts appear beyond RB = {}",
        formula4_rb_upper_bound(&arch, ab, p.stride_w)
    );
    println!(
        "         -> DC at RB = {rb_dc}: conflicts {}",
        if formula3_predicts_conflicts(&arch, ab, rb_dc, p.stride_w) {
            "PREDICTED"
        } else {
            "not predicted"
        }
    );

    // --- the measured verdict ---
    println!("\nsimulated on the 8-core machine (minibatch 64):");
    println!("algorithm,rb,gflops,% peak,L1 MPKI,conflict fraction");
    for alg in Algorithm::ALL {
        let cfg = *ConvDesc::new(p, Direction::Fwd, alg)
            .create(&arch, arch.cores)
            .unwrap()
            .cfg();
        let perf = bench_layer(&arch, &p, Direction::Fwd, alg, ExecutionMode::TimingOnly);
        println!(
            "{:5},{:3},{:8.1},{:5.1}%,{:8.2},{:.2}",
            alg.short_name(),
            cfg.rb.combined(),
            perf.gflops,
            perf.efficiency * 100.0,
            perf.mpki_l1,
            perf.conflict_fraction
        );
    }
    println!(
        "\nDC's scalar source stream strides by A_b*4 = {} bytes; at RB = {rb_dc} the",
        ab * 4
    );
    println!("sweep wraps the 32 KB L1's set space and every load conflict-misses.");
    println!("BDC stays under the Formula 4 bound and turns those misses into hits.");
}
