//! Model-level scenario: estimate one full ResNet training step (forward +
//! backward-data + backward-weights over every convolution) on the simulated
//! SX-Aurora for each convolution engine — a miniature of the paper's
//! Figures 5/6 methodology, driven by the [`ModelRunner`].
//!
//! Every slice result flows through the layer store, so a second run with
//! `LSV_STORE_DIR` set replays from disk in seconds without re-simulating.
//!
//! Run with: `cargo run --release --example resnet_training_step [minibatch]`

use lsvconv::conv::{Algorithm, ExecutionMode, ModelRunner, Pass, TunePolicy};
use lsvconv::models::ResNetModel;
use lsvconv::prelude::sx_aurora;
use lsvconv::serve::resnet_specs;
use lsvconv::vednn::bench_layer_vednn;

fn main() {
    let minibatch: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(32);
    let arch = sx_aurora();
    let model = ResNetModel::R101;
    let flops = model.training_flops(minibatch) as f64;
    println!(
        "{} training step, minibatch {minibatch}: {:.1} GFLOP over {} conv layers x {} passes",
        model.name(),
        flops / 1e9,
        model.total_conv_layers(),
        ResNetModel::TRAINING_PASSES,
    );
    println!("engine,step_ms,gflops,images/s");

    let specs = resnet_specs(model, minibatch);
    let runner = |tune| {
        ModelRunner::new(&arch, specs.clone(), Pass::TrainingStep)
            .with_tune(tune)
            .with_mode(ExecutionMode::TimingOnly)
    };
    let row = |name: &str, ms: f64| {
        println!(
            "{name},{:.1},{:.0},{:.1}",
            ms,
            flops / (ms / 1e3) / 1e9,
            minibatch as f64 / (ms / 1e3)
        );
    };

    // The vednn baseline has no plan to make: sum the library's per-layer
    // times over every direction, weighted by how often the shape repeats.
    let vednn_ms: f64 = specs
        .iter()
        .map(|s| {
            Pass::TrainingStep
                .directions()
                .iter()
                .map(|&d| {
                    bench_layer_vednn(&arch, &s.problem, d, ExecutionMode::TimingOnly).time_ms
                })
                .sum::<f64>()
                * s.count as f64
        })
        .sum();
    row("vednn", vednn_ms);

    for alg in [Algorithm::Dc, Algorithm::Bdc, Algorithm::Mbdc] {
        let plan = runner(TunePolicy::Analytic).plan_fixed(alg);
        row(alg.short_name(), plan.total_time_ms());
    }

    // The tuned engine empirically sweeps register blockings per (layer,
    // direction) and picks the best algorithm for each.
    let plan = runner(TunePolicy::Empirical).plan();
    row("tuned", plan.total_time_ms());
    eprintln!(
        "tuned plan: {} store hits, {} slices simulated",
        plan.store_hits, plan.simulated
    );
}
