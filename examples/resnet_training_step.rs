//! Model-level scenario: estimate one full ResNet training step (forward +
//! backward-data + backward-weights over every convolution) on the simulated
//! SX-Aurora for each convolution engine — a miniature of the paper's
//! Figures 5/6 methodology.
//!
//! Run with: `cargo run --release --example resnet_training_step [minibatch]`

use lsv_bench_shim::*;
use lsvconv::conv::ExecutionMode;
use lsvconv::models::ResNetModel;
use lsvconv::prelude::sx_aurora;

// The bench crate is not a dependency of the facade; inline the tiny amount
// of aggregation logic the example needs.
mod lsv_bench_shim {
    use super::*;
    use lsvconv::conv::{bench_layer, Algorithm, Direction};
    use lsvconv::models::resnet_layers;
    use lsvconv::vednn::bench_layer_vednn;

    pub enum Engine {
        Direct(Algorithm),
        Vednn,
    }

    impl Engine {
        pub fn name(&self) -> &'static str {
            match self {
                Engine::Vednn => "vednn",
                Engine::Direct(a) => a.short_name(),
            }
        }
    }

    pub fn step_time_ms(
        arch: &lsvconv::arch::ArchParams,
        model: ResNetModel,
        minibatch: usize,
        engine: &Engine,
    ) -> f64 {
        let layers = resnet_layers(minibatch);
        let counts = model.layer_counts();
        let mut total = 0.0;
        for (id, p) in layers.iter().enumerate() {
            for dir in Direction::ALL {
                let perf = match engine {
                    Engine::Direct(a) => bench_layer(arch, p, dir, *a, ExecutionMode::TimingOnly),
                    Engine::Vednn => bench_layer_vednn(arch, p, dir, ExecutionMode::TimingOnly),
                };
                total += perf.time_ms * counts[id] as f64;
            }
        }
        total
    }
}

fn main() {
    let minibatch: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(32);
    let arch = sx_aurora();
    let model = ResNetModel::R101;
    let flops = 3.0 * model.total_flops(minibatch) as f64;
    println!(
        "{} training step, minibatch {minibatch}: {:.1} GFLOP over {} conv layers x 3 passes",
        model.name(),
        flops / 1e9,
        model.total_conv_layers()
    );
    println!("engine,step_ms,gflops,images/s");
    use lsvconv::conv::Algorithm;
    let engines = [
        Engine::Vednn,
        Engine::Direct(Algorithm::Dc),
        Engine::Direct(Algorithm::Bdc),
        Engine::Direct(Algorithm::Mbdc),
    ];
    for e in &engines {
        let ms = step_time_ms(&arch, model, minibatch, e);
        println!(
            "{},{:.1},{:.0},{:.1}",
            e.name(),
            ms,
            flops / (ms / 1e3) / 1e9,
            minibatch as f64 / (ms / 1e3)
        );
    }
}
