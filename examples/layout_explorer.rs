//! Layout explorer: how the channel-blocked activation layout (Figure 1)
//! maps logical coordinates to memory, why the scalar access stride equals
//! `C_b * 4` bytes (Figure 3), and how MBDC's `N_cline` blocking changes the
//! picture. Also prints the Figure 2 footprint growth for one layer.
//!
//! Run with: `cargo run --release --example layout_explorer`

use lsvconv::arch::formula2_rb_min;
use lsvconv::arch::presets::{aurora_with_vlen_bits, sx_aurora};
use lsvconv::conv::footprint::microkernel_footprint;
use lsvconv::conv::tuning::split_register_block;
use lsvconv::conv::ConvProblem;
use lsvconv::tensor::{ActTensor, ActivationLayout};
use lsvconv::vengine::Arena;

fn main() {
    let arch = sx_aurora();
    let mut arena = Arena::new();
    let (c, h, w) = (512usize, 14usize, 14usize);

    println!("activation tensor (1, {c}, {h}, {w}) under three layouts:\n");
    for (name, layout) in [
        (
            "state-of-the-art (C_b = min(C, N_vlen))",
            ActivationLayout::vlen_blocked(c, arch.n_vlen()),
        ),
        (
            "MBDC multi-block (C_b = N_cline)",
            ActivationLayout::cline_blocked(c, arch.n_cline()),
        ),
        ("plain NCHW (C_b = 1)", ActivationLayout::nchw()),
    ] {
        let t = ActTensor::alloc(&mut arena, 1, c, h, w, layout);
        let p00 = t.at(0, 0, 0, 0);
        let p01 = t.at(0, 0, 0, 1);
        let c1 = t.at(0, 1, 0, 0);
        println!("{name}: C_b = {}", layout.cb);
        println!("  channel stride (c -> c+1):        {:>7} bytes", c1 - p00);
        println!(
            "  spatial stride  (w -> w+1):       {:>7} bytes  <- the Figure 3 scalar stride",
            p01 - p00
        );
        println!(
            "  L1 sets touched by 24-point sweep: {:>6} of {}",
            distinct_sets(&arch, p00, p01 - p00, 24),
            arch.l1d.sets()
        );
        println!();
    }

    println!("micro-kernel footprint growth for a 3x3 512-channel layer (Figure 2):");
    let p = ConvProblem::new(256, 512, 512, 7, 7, 3, 3, 1, 1);
    for bits in [512usize, 2048, 4096, 8192, 16384] {
        let a = aurora_with_vlen_bits(bits);
        let rb = split_register_block(formula2_rb_min(&a), p.ow(), p.oh());
        let fp = microkernel_footprint(&a, &p, rb);
        println!(
            "  {:>6}-bit vectors: W {:>9} B + S {:>8} B + D {:>7} B = {:>6.2} MiB",
            bits,
            fp.weights,
            fp.source,
            fp.destination,
            fp.total_mib()
        );
    }
}

/// Count distinct L1 sets visited by `n` accesses of the given byte stride.
fn distinct_sets(arch: &lsvconv::arch::ArchParams, base: u64, stride: u64, n: u64) -> usize {
    let mut sets: Vec<usize> = (0..n).map(|i| arch.l1d.set_of(base + i * stride)).collect();
    sets.sort_unstable();
    sets.dedup();
    sets.len()
}
