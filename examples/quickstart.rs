//! Quickstart: declare a convolution, create a BDC primitive for the
//! SX-Aurora-class machine, execute it functionally on the simulated vector
//! engine, and validate the result against the naive reference.
//!
//! Run with: `cargo run --release --example quickstart`

use lsvconv::conv::{naive, Algorithm, ConvDesc, ConvProblem, Direction};
use lsvconv::prelude::sx_aurora;
use rand::{Rng, SeedableRng};

fn main() {
    let arch = sx_aurora();
    println!(
        "machine: {} ({} x f32 SIMD, {} FMA ports, {:.0} GFLOP/s peak)",
        arch.name,
        arch.n_vlen(),
        arch.n_fma,
        arch.peak_flops() / 1e9
    );

    // A ResNet-style 3x3 convolution (Table 3 layer 6 at a small minibatch).
    let p = ConvProblem::new(2, 128, 128, 28, 28, 3, 3, 1, 1);
    println!("problem: {p} ({:.2} GFLOP)", p.flops() as f64 / 1e9);

    // Step 1 (problem declaration / code generation): the blocking policies
    // and the Section 6.1 auto-tuner run once.
    let prim = ConvDesc::new(p, Direction::Fwd, Algorithm::Bdc)
        .create(&arch, 1)
        .expect("primitive creation");
    let cfg = prim.cfg();
    println!(
        "generated kernel: vl={} rb={}x{} tile=(kh {}, kw {}, ic {}) wbuf={} conflicts_predicted={}",
        cfg.vl, cfg.rb.rb_w, cfg.rb.rb_h, cfg.tile.kh_i, cfg.tile.kw_i, cfg.tile.c_i, cfg.wbuf,
        cfg.conflicts_predicted
    );

    // Step 2 (kernel execution): functional run on the simulated core.
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let src: Vec<f32> = (0..p.n * p.ic * p.ih * p.iw)
        .map(|_| rng.gen_range(-1.0..1.0))
        .collect();
    let wei: Vec<f32> = (0..p.oc * p.ic * p.kh * p.kw)
        .map(|_| rng.gen_range(-1.0..1.0))
        .collect();
    let (out, report) = prim.run_functional(&src, &wei, &[]);

    // Validate against Algorithm 1.
    let reference = naive::forward(&p, &src, &wei);
    let err = naive::max_abs_diff(&out, &reference);
    println!("max abs error vs naive reference: {err:.3e}");
    assert!(err < 1e-2, "kernel disagrees with the reference");

    println!(
        "simulated: {} cycles, {} vector FMAs, {} scalar loads, L1 miss ratio {:.4}",
        report.cycles,
        report.insts.vfmas,
        report.insts.scalar_loads,
        report.cache.l1.miss_ratio()
    );
    let flops = p.flops() as f64;
    let gflops = flops / (report.cycles as f64 / (arch.freq_ghz * 1e9)) / 1e9;
    println!(
        "single-core throughput: {:.1} GFLOP/s ({:.1}% of the core's peak)",
        gflops,
        gflops / (arch.peak_flops_per_core() / 1e9) * 100.0
    );
}
