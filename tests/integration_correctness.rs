//! Cross-crate integration: every algorithm (DC, BDC, MBDC and the vednn
//! baseline) computes the same results as the naive reference on scaled
//! versions of every Table 3 layer shape, for all three training directions.
//!
//! Layers are scaled down (channels / 8, spatial / 2, clamped) so the
//! functional simulation stays fast in debug builds while preserving every
//! structural feature: strides, padding, kernel sizes, channel asymmetries
//! and the conflict-relevant C/spatial ratios. The full-size suite runs via
//! `cargo run --release -p lsv-bench --bin validate`.

use lsvconv::conv::{naive, validate, Algorithm, ConvProblem, Direction};
use lsvconv::models::TABLE3;
use lsvconv::prelude::sx_aurora;
use lsvconv::vednn::VednnConv;
use rand::{Rng, SeedableRng};

/// Scale a Table 3 row down for debug-mode functional simulation.
fn scaled_layer(id: usize) -> ConvProblem {
    let (ic, oc, ihw, _ohw, k, s, pad) = TABLE3[id];
    let c_scale = 8;
    let sp_scale = 2;
    let ic = (ic / c_scale).max(4);
    let oc = (oc / c_scale).max(4);
    let hw = (ihw / sp_scale).max(k + s);
    ConvProblem::new(2, ic, oc, hw, hw, k, k, s, pad)
}

#[test]
fn direct_algorithms_match_reference_on_all_layer_shapes() {
    let arch = sx_aurora();
    for id in 0..TABLE3.len() {
        let p = scaled_layer(id);
        for dir in Direction::ALL {
            for alg in Algorithm::ALL {
                let r = validate(&arch, &p, dir, alg);
                assert!(
                    r.passed,
                    "layer {id} ({p}) {dir} {alg}: rel err {:.3e}",
                    r.rel_err
                );
            }
        }
    }
}

#[test]
fn vednn_matches_reference_on_all_layer_shapes() {
    let arch = sx_aurora();
    for id in 0..TABLE3.len() {
        let p = scaled_layer(id);
        let mut rng = rand::rngs::StdRng::seed_from_u64(id as u64);
        let src: Vec<f32> = (0..p.n * p.ic * p.ih * p.iw)
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect();
        let wei: Vec<f32> = (0..p.oc * p.ic * p.kh * p.kw)
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect();
        let dst: Vec<f32> = (0..p.n * p.oc * p.oh() * p.ow())
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect();
        for dir in Direction::ALL {
            let conv = VednnConv::best(&arch, p, dir);
            let (got, _) = conv.run_functional(&src, &wei, &dst);
            let want = match dir {
                Direction::Fwd => naive::forward(&p, &src, &wei),
                Direction::BwdData => naive::backward_data(&p, &dst, &wei),
                Direction::BwdWeights => naive::backward_weights(&p, &src, &dst),
            };
            let err = naive::max_abs_diff(&got, &want);
            let scale = want.iter().fold(0.0f32, |m, v| m.max(v.abs())).max(1.0);
            assert!(
                err / scale < 1e-2,
                "layer {id} ({p}) {dir} vednn({:?}): rel err {:.3e}",
                conv.algo(),
                err / scale
            );
        }
    }
}

#[test]
fn direct_algorithms_match_on_short_simd_machine() {
    // The same kernels must be correct when the maximum SIMD length shrinks
    // (the Figure 5 sweep re-generates kernels per vector length).
    let arch = sx_aurora().with_max_vlen_bits(512);
    for id in [0usize, 2, 4, 16] {
        let p = scaled_layer(id);
        for dir in Direction::ALL {
            for alg in Algorithm::ALL {
                let r = validate(&arch, &p, dir, alg);
                assert!(
                    r.passed,
                    "512-bit layer {id} {dir} {alg}: rel err {:.3e}",
                    r.rel_err
                );
            }
        }
    }
}

#[test]
#[ignore = "full-size layer: run with --ignored in release builds"]
fn full_size_layer_16_all_directions() {
    let arch = sx_aurora();
    let p = ConvProblem::new(1, 512, 512, 7, 7, 3, 3, 1, 1);
    for dir in Direction::ALL {
        for alg in Algorithm::ALL {
            let r = validate(&arch, &p, dir, alg);
            assert!(r.passed, "{dir} {alg}: rel err {:.3e}", r.rel_err);
        }
    }
}
