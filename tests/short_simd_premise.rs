//! The paper's premise (Sections 1-2.2): the state-of-the-art SIMD direct
//! convolution is *fine* on short-SIMD machines — prior work reports up to
//! 90% of peak on AVX-512 for some ResNet layers — and only breaks on long
//! vectors. Verify the premise end-to-end on the Skylake-like preset.

use lsvconv::arch::{formula3_predicts_conflicts, presets::skylake_avx512};
use lsvconv::conv::tuning::kernel_config;
use lsvconv::conv::{bench_layer, Algorithm, ConvProblem, Direction, ExecutionMode};
use lsvconv::models::resnet_layers;

#[test]
fn formula3_never_fires_on_skylake_for_table3() {
    let arch = skylake_avx512();
    for (id, p) in resnet_layers(8).iter().enumerate() {
        for dir in [Direction::Fwd, Direction::BwdData] {
            let cfg = kernel_config(&arch, p, dir, Algorithm::Dc, arch.cores);
            assert!(
                !cfg.conflicts_predicted,
                "layer {id} {dir}: A_b <= 16 elements cannot wrap a 32 KB L1"
            );
            assert!(!formula3_predicts_conflicts(
                &arch,
                cfg.src_layout.cb.max(cfg.dst_layout.cb),
                cfg.rb.combined(),
                p.stride_w
            ));
        }
    }
}

#[test]
fn dc_reaches_high_efficiency_on_skylake() {
    // One of the friendly mid-network layers: DC on the short-SIMD machine
    // should sit far above its long-SIMD conflicted efficiency (~6%) —
    // prior work's "up to 90% of peak" regime.
    let arch = skylake_avx512();
    let p = ConvProblem::new(16, 128, 128, 14, 14, 3, 3, 1, 1);
    let perf = bench_layer(
        &arch,
        &p,
        Direction::Fwd,
        Algorithm::Dc,
        ExecutionMode::TimingOnly,
    );
    assert!(
        perf.efficiency > 0.4,
        "DC on Skylake should be healthy, got {:.3}",
        perf.efficiency
    );
    assert!(perf.mpki_l1 < 10.0, "no thrash: MPKI {:.2}", perf.mpki_l1);
}

#[test]
fn measured_conflict_fraction_is_negligible_on_skylake() {
    let arch = skylake_avx512();
    // The long-SIMD poster-child conflict layer (Table 3 id 8 shape).
    let p = ConvProblem::new(8, 512, 128, 14, 14, 1, 1, 1, 0);
    let perf = bench_layer(
        &arch,
        &p,
        Direction::Fwd,
        Algorithm::Dc,
        ExecutionMode::TimingOnly,
    );
    assert!(
        perf.conflict_fraction < 0.3,
        "short vectors keep the stride small: conflict fraction {:.2}",
        perf.conflict_fraction
    );
}
