//! Backend equivalence: one frozen kernel plan, two execution targets.
//!
//! Three-way agreement over the differential-fuzzing seed corpus and a
//! randomized sweep, for all three training directions:
//!
//! * the **naive reference** (within the f32 reassociation tolerance),
//! * **`SimBackend`** in Functional mode (the cycle-level simulator),
//! * **`NativeBackend`** (host lowering of the same blocked loop nest),
//!
//! where sim-vs-native is held to *bit-exact* output equality — the native
//! lowering replays the exact accumulation order — plus equality of the
//! mirrored data-op instruction counts (loads, stores, gathers, scatters,
//! FMAs and FMA element totals). A multicore section checks the same
//! through `ExecBackend::execute_multicore`, where the native backend
//! reuses the Section 4.3 work partitioning.
//!
//! The randomized count is modest so debug-mode tier-1 stays fast; override
//! with `LSV_EQUIV_CASES` for a deeper release-mode sweep.

use lsvconv::arch::presets::aurora_with_vlen_bits;
use lsvconv::conv::fuzz::{seed_corpus, FuzzCase};
use lsvconv::conv::{
    naive, Algorithm, ConvDesc, ConvPrimitive, ConvProblem, Direction, ExecBackend, NativeBackend,
    SimBackend,
};
use lsvconv::prelude::sx_aurora;
use lsvconv::vengine::{Arena, InstCounters};
use rand::{Rng, SeedableRng};

/// Relative tolerance for accumulation-order differences vs the naive
/// reference (mirrors `lsv_conv::verify`).
fn tolerance(reduction_len: usize) -> f32 {
    1e-6 * (reduction_len as f32).sqrt().max(1.0) * 8.0
}

/// The instruction-counter subset both backends must agree on exactly.
/// Frontend filler (`scalar_ops`) is simulator-specific and excluded.
fn data_ops(c: &InstCounters) -> [u64; 7] {
    [
        c.scalar_loads,
        c.vloads,
        c.vstores,
        c.gathers,
        c.scatters,
        c.vfmas,
        c.fma_elems,
    ]
}

fn rand_vec(len: usize, seed: u64) -> Vec<f32> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..len).map(|_| rng.gen_range(-1.0..1.0)).collect()
}

fn operands(p: &ConvProblem, seed: u64) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
    (
        rand_vec(p.n * p.ic * p.ih * p.iw, seed),
        rand_vec(p.oc * p.ic * p.kh * p.kw, seed ^ 0xbeef),
        rand_vec(p.n * p.oc * p.oh() * p.ow(), seed ^ 0xcafe),
    )
}

fn naive_reference(
    p: &ConvProblem,
    dir: Direction,
    src: &[f32],
    wei: &[f32],
    dst: &[f32],
) -> (Vec<f32>, usize) {
    match dir {
        Direction::Fwd => (naive::forward(p, src, wei), p.ic * p.kh * p.kw),
        Direction::BwdData => (naive::backward_data(p, dst, wei), p.oc * p.kh * p.kw),
        Direction::BwdWeights => (naive::backward_weights(p, src, dst), p.n * p.oh() * p.ow()),
    }
}

/// Run one case on both backends and check the three-way agreement.
/// Returns `false` when the primitive legitimately declines the geometry
/// (register pressure on a narrow arch) — checked, not failed.
fn check_three_way(case: &FuzzCase, seed: u64) -> bool {
    let arch = aurora_with_vlen_bits(case.vlen_bits);
    let p = case.problem;
    let Ok(prim) = ConvDesc::new(p, case.direction, case.algorithm).create(&arch, 1) else {
        return false;
    };
    let (src, wei, dst) = operands(&p, seed);

    let (sim_out, sim_report) = prim.run_with_backend(&SimBackend::functional(), &src, &wei, &dst);
    let (nat_out, nat_report) = prim.run_with_backend(&NativeBackend, &src, &wei, &dst);

    // Sim vs native: bit-exact (plain f32 `!=`, so -0.0 == 0.0 passes).
    assert_eq!(sim_out.len(), nat_out.len(), "{case}: output length");
    for (i, (s, n)) in sim_out.iter().zip(&nat_out).enumerate() {
        assert!(
            s == n,
            "{case}: sim-vs-native mismatch at element {i}: sim {s:?} native {n:?}"
        );
    }
    assert_eq!(
        data_ops(&sim_report.insts),
        data_ops(&nat_report.insts),
        "{case}: data-op instruction drift"
    );

    // Both vs the naive reference, within the reassociation tolerance.
    let (reference, reduction_len) = naive_reference(&p, case.direction, &src, &wei, &dst);
    let tol = tolerance(reduction_len);
    for (i, (g, r)) in sim_out.iter().zip(&reference).enumerate() {
        let rel = (g - r).abs() / r.abs().max(1.0);
        assert!(
            rel <= tol,
            "{case}: naive disagreement at element {i}: got {g} want {r} (rel {rel:.3e} > {tol:.3e})"
        );
    }
    true
}

#[test]
fn seed_corpus_three_way_agreement() {
    let mut checked = 0;
    for (i, case) in seed_corpus().iter().enumerate() {
        if check_three_way(case, 0x90_0d ^ i as u64) {
            checked += 1;
        }
    }
    assert!(checked > 0, "every corpus case was skipped");
}

#[test]
fn randomized_three_way_agreement() {
    let cases: usize = std::env::var("LSV_EQUIV_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(40);
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xe90_3b15);
    let vlens = [512usize, 1024, 2048, 4096, 16384];
    let mut checked = 0;
    let mut tried = 0;
    while checked < cases && tried < cases * 4 {
        tried += 1;
        let (kh, kw) = (rng.gen_range(1..6), rng.gen_range(1..6));
        let (ph, pw) = (rng.gen_range(0..4), rng.gen_range(0..4));
        let (ih, iw) = (rng.gen_range(1..12), rng.gen_range(1..12));
        if ih + 2 * ph < kh || iw + 2 * pw < kw {
            continue;
        }
        let case = FuzzCase {
            problem: ConvProblem::new_asym(
                rng.gen_range(1..3),
                rng.gen_range(1..36),
                rng.gen_range(1..36),
                ih,
                iw,
                kh,
                kw,
                rng.gen_range(1..4),
                rng.gen_range(1..4),
                ph,
                pw,
            ),
            vlen_bits: vlens[rng.gen_range(0..vlens.len())],
            direction: Direction::ALL[tried % 3],
            algorithm: Algorithm::ALL[(tried / 3) % 3],
        };
        if check_three_way(&case, 0x5eed ^ tried as u64) {
            checked += 1;
        }
    }
    assert!(
        checked >= cases / 2,
        "too many skips: {checked} checked of {tried} tried"
    );
}

/// Execute a primitive's whole problem through `ExecBackend::execute_multicore`
/// and read back the logical output, plus the summed per-core data-ops.
fn run_multicore(
    prim: &ConvPrimitive,
    backend: &dyn ExecBackend,
    src: &[f32],
    wei: &[f32],
    dst: &[f32],
) -> (Vec<f32>, [u64; 7], u64) {
    let mut arena = Arena::new();
    let t = prim.alloc_tensors(&mut arena);
    prim.import_operands(&mut arena, &t, src, wei, dst);
    let report = backend.execute_multicore(prim, &mut arena, &t);
    let mut totals = [0u64; 7];
    for cs in &report.per_core {
        for (acc, v) in totals.iter_mut().zip(data_ops(&cs.insts)) {
            *acc += v;
        }
    }
    (prim.read_output(&arena, &t), totals, report.wall_cycles)
}

#[test]
fn multicore_native_matches_sim_functional() {
    let arch = sx_aurora();
    // Fwd partitions the minibatch across cores; BwdWeights partitions the
    // RB_c blocks of the smaller feature-map dimension (Section 4.3) —
    // exercise both partitioning axes.
    let cases = [
        (
            ConvProblem::new(8, 12, 16, 7, 7, 3, 3, 1, 1),
            Direction::Fwd,
            Algorithm::Bdc,
        ),
        (
            ConvProblem::new(4, 24, 8, 6, 6, 3, 3, 1, 1),
            Direction::BwdWeights,
            Algorithm::Mbdc,
        ),
    ];
    for (p, dir, alg) in cases {
        let prim = ConvDesc::new(p, dir, alg)
            .create(&arch, arch.cores)
            .unwrap();
        let (src, wei, dst) = operands(&p, 0x111);

        let (sim_out, sim_ops, sim_cycles) =
            run_multicore(&prim, &SimBackend::functional(), &src, &wei, &dst);
        let (nat_out, nat_ops, nat_cycles) = run_multicore(&prim, &NativeBackend, &src, &wei, &dst);

        for (i, (s, n)) in sim_out.iter().zip(&nat_out).enumerate() {
            assert!(
                s == n,
                "{p} {dir} {alg} multicore: mismatch at element {i}: sim {s:?} native {n:?}"
            );
        }
        assert_eq!(sim_ops, nat_ops, "{p} {dir} {alg}: per-core data-op drift");
        assert!(sim_cycles > 0, "simulator must model time");
        assert_eq!(nat_cycles, 0, "native backend reports no timing");

        // And both agree with the naive reference.
        let (reference, reduction_len) = naive_reference(&p, dir, &src, &wei, &dst);
        let tol = tolerance(reduction_len);
        for (g, r) in nat_out.iter().zip(&reference) {
            assert!((g - r).abs() / r.abs().max(1.0) <= tol, "{p} {dir} {alg}");
        }
    }
}
