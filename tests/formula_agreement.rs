//! The analytical model against the cycle-level simulator: Formula 3's
//! conflict predictions must agree with the conflict misses the cache
//! simulator actually measures — the paper's central empirical claim
//! (Sections 5.2 and 8).

use lsvconv::conv::{bench_layer, Algorithm, ConvProblem, Direction, ExecutionMode};
use lsvconv::prelude::sx_aurora;

/// Quarter-spatial versions of two Section 8 exemplars: the conflict
/// structure depends on channels and stride, not on the spatial extent.
fn conflict_layer() -> ConvProblem {
    // Table 3 layer 8 shape (IC=512 drives A_b to 512): conflicts predicted.
    ConvProblem::new(8, 512, 128, 14, 14, 1, 1, 1, 0)
}

fn clean_layer() -> ConvProblem {
    // Table 3 layer 7 shape (IC=128): no conflicts predicted.
    ConvProblem::new(8, 128, 512, 14, 14, 1, 1, 1, 0)
}

#[test]
fn dc_thrashes_exactly_where_formula3_says() {
    let arch = sx_aurora();
    let hot = bench_layer(
        &arch,
        &conflict_layer(),
        Direction::Fwd,
        Algorithm::Dc,
        ExecutionMode::TimingOnly,
    );
    assert!(hot.conflicts_predicted, "Formula 3 predicts conflicts");
    assert!(
        hot.conflict_fraction > 0.5,
        "most L1 misses are conflict-classified, got {}",
        hot.conflict_fraction
    );
    assert!(
        hot.mpki_l1 > 50.0,
        "thrash shows in MPKI, got {}",
        hot.mpki_l1
    );

    let cold = bench_layer(
        &arch,
        &clean_layer(),
        Direction::Fwd,
        Algorithm::Dc,
        ExecutionMode::TimingOnly,
    );
    assert!(!cold.conflicts_predicted);
    assert!(
        cold.mpki_l1 < 5.0,
        "no thrash on the clean layer, got MPKI {}",
        cold.mpki_l1
    );
}

#[test]
fn bdc_removes_the_conflicts_dc_suffers() {
    let arch = sx_aurora();
    let p = conflict_layer();
    let dc = bench_layer(
        &arch,
        &p,
        Direction::Fwd,
        Algorithm::Dc,
        ExecutionMode::TimingOnly,
    );
    let bdc = bench_layer(
        &arch,
        &p,
        Direction::Fwd,
        Algorithm::Bdc,
        ExecutionMode::TimingOnly,
    );
    assert!(
        bdc.mpki_l1 < dc.mpki_l1 / 10.0,
        "BDC MPKI {} vs DC {}",
        bdc.mpki_l1,
        dc.mpki_l1
    );
    assert!(
        bdc.gflops > dc.gflops * 1.5,
        "BDC {} GF/s vs DC {} GF/s",
        bdc.gflops,
        dc.gflops
    );
}

#[test]
fn mbdc_layout_eliminates_conflicts_entirely() {
    let arch = sx_aurora();
    let p = conflict_layer();
    let mbdc = bench_layer(
        &arch,
        &p,
        Direction::Fwd,
        Algorithm::Mbdc,
        ExecutionMode::TimingOnly,
    );
    assert!(!mbdc.conflicts_predicted);
    assert!(
        mbdc.mpki_l1 < 5.0,
        "the N_cline layout stresses all sets equally, got MPKI {}",
        mbdc.mpki_l1
    );
}

#[test]
fn no_algorithm_differences_at_short_simd() {
    // Figure 5's left edge: at 512-bit vectors A_b <= 16 elements, Formula 3
    // never fires and all three algorithms perform alike.
    let arch = sx_aurora().with_max_vlen_bits(512);
    let p = conflict_layer();
    let perfs: Vec<f64> = Algorithm::ALL
        .iter()
        .map(|&a| bench_layer(&arch, &p, Direction::Fwd, a, ExecutionMode::TimingOnly).gflops)
        .collect();
    let max = perfs.iter().cloned().fold(0.0, f64::max);
    let min = perfs.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(
        max / min < 1.35,
        "algorithms should be within ~30% at 512-bit: {perfs:?}"
    );
}
