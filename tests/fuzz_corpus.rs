//! Tier-1 replay of the differential-fuzzing seed corpus.
//!
//! `lsvconv fuzz` explores randomized irregular geometries; this test pins
//! the corpus those runs are seeded from — rectangular kernels, per-axis
//! stride/pad, stride > kernel, pad >= kernel, unit and off-grid channel
//! counts, swept vector lengths — so every property (functional agreement
//! with naive, Functional/TimingOnly cycle agreement, lint cleanliness)
//! holds deterministically on every CI run, with the `lsv-analyze`
//! deny-linter enabled exactly as the CLI runs it.

use lsvconv::analyze::deny_validator;
use lsvconv::conv::fuzz::{run_corpus, run_fuzz, seed_corpus};

#[test]
fn seed_corpus_replays_clean_under_lint() {
    let out = run_corpus(&deny_validator);
    assert!(
        out.clean(),
        "corpus violations:\n{}",
        out.failures
            .iter()
            .map(|f| format!("  {}: {}", f.case, f.why))
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert_eq!(out.cases_run, seed_corpus().len());
}

#[test]
fn corpus_spans_the_irregular_geometry_axes() {
    // The corpus must keep covering what the fuzzer is designed around;
    // shrinking it to friendly shapes would silently weaken tier-1.
    let corpus = seed_corpus();
    assert!(corpus.iter().any(|c| c.problem.kh != c.problem.kw));
    assert!(corpus
        .iter()
        .any(|c| c.problem.stride_h != c.problem.stride_w));
    assert!(corpus.iter().any(|c| c.problem.pad_h != c.problem.pad_w));
    assert!(corpus
        .iter()
        .any(|c| c.problem.stride_w > c.problem.kw || c.problem.stride_h > c.problem.kh));
    assert!(corpus
        .iter()
        .any(|c| c.problem.pad_h >= c.problem.kh && c.problem.pad_w >= c.problem.kw));
    assert!(corpus
        .iter()
        .any(|c| c.problem.ic == 1 && c.problem.oc == 1));
    assert!(corpus
        .iter()
        .any(|c| c.problem.ic % 32 != 0 && c.problem.ic > 16));
}

#[test]
fn short_randomized_run_is_clean() {
    // A bounded randomized slice in tier-1 (the full 500-case sweep runs in
    // CI via `lsvconv fuzz`); fixed seed keeps it deterministic.
    let out = run_fuzz(40, 0xC0FFEE, &deny_validator);
    assert!(out.clean(), "failures: {:?}", out.failures);
    assert_eq!(out.cases_run, 40);
}
