//! Integration tests of the benchmark harness plumbing and model-level
//! aggregation (the machinery behind Figures 4-6).

use lsv_bench::{bench_engine, geomean, layer_time_table, model_time_from_table, Engine, Row};
use lsvconv::conv::{Algorithm, ConvProblem, Direction, ExecutionMode};
use lsvconv::models::{resnet_layers, ResNetModel};
use lsvconv::prelude::sx_aurora;

#[test]
fn csv_rows_have_the_artifact_schema() {
    let arch = sx_aurora();
    let p = ConvProblem::new(8, 32, 32, 14, 14, 1, 1, 1, 0);
    let perf = bench_engine(
        &arch,
        &p,
        Direction::Fwd,
        Engine::Direct(Algorithm::Bdc),
        ExecutionMode::TimingOnly,
    );
    let row = Row {
        layer_id: 3,
        direction: Direction::Fwd,
        engine: Engine::Direct(Algorithm::Bdc),
        minibatch: 8,
        perf,
    };
    let line = row.to_csv();
    let fields: Vec<&str> = line.split(',').collect();
    assert_eq!(fields.len(), Row::csv_header().split(',').count());
    assert_eq!(fields[0], "3");
    assert_eq!(fields[1], "fwdd");
    assert_eq!(fields[2], "BDC");
    assert_eq!(fields[3], "8");
    assert!(fields[4].parse::<f64>().unwrap() > 0.0);
}

#[test]
fn geomean_is_scale_invariant() {
    let a = geomean([1.0, 4.0, 16.0]);
    let b = geomean([2.0, 8.0, 32.0]);
    assert!((b / a - 2.0).abs() < 1e-12);
}

#[test]
fn model_aggregation_weights_layer_frequencies() {
    // A synthetic table where every layer-direction costs 1 ms: the model
    // time must equal 3 x total conv layers.
    let table = vec![[1.0f64; 3]; resnet_layers(8).len()];
    for m in ResNetModel::ALL {
        let t = model_time_from_table(&table, m);
        assert!((t - 3.0 * m.total_conv_layers() as f64).abs() < 1e-9);
    }
}

#[test]
fn vednn_engine_runs_through_the_harness() {
    let arch = sx_aurora();
    let p = ConvProblem::new(8, 16, 16, 14, 14, 3, 3, 1, 1);
    for dir in Direction::ALL {
        let perf = bench_engine(&arch, &p, dir, Engine::Vednn, ExecutionMode::TimingOnly);
        assert!(perf.gflops > 0.0, "{dir}");
    }
}

#[test]
#[ignore = "simulates every full-size layer; run with --ignored in release builds"]
fn layer_time_table_is_dense_and_positive() {
    let arch = sx_aurora().with_max_vlen_bits(2048);
    let table = layer_time_table(
        &arch,
        8,
        Engine::Direct(Algorithm::Bdc),
        ExecutionMode::TimingOnly,
    );
    assert_eq!(table.len(), 19);
    for (id, t) in table.iter().enumerate() {
        for (d, &ms) in t.iter().enumerate() {
            assert!(ms > 0.0, "layer {id} direction {d}");
        }
    }
}
