//! Golden tests for the profile exporters: pins the exact bytes of the
//! Perfetto/Chrome trace, the folded flamegraph stacks and the
//! schema-validated `profile.json` of one small fixed layer — the same
//! geometry `lsvconv profile --smoke` runs. Any change to the region
//! structure, the span attribution or the export formats shows up here.
//!
//! Regenerate (only when the export format or the instrumentation
//! intentionally changes) with:
//!
//! ```sh
//! LSV_GOLDEN_BLESS=1 cargo test --release --test profile_export_golden
//! ```

use lsv_arch::presets::sx_aurora;
use lsv_bench::profiling::profile_meta;
use lsv_conv::{bench_layer_profiled, Algorithm, ConvProblem, Direction, ExecutionMode};
use lsv_obs::{folded_stacks, perfetto_trace_json, profile_report_json, validate_profile_json};
use std::path::PathBuf;

fn fixture_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join(name)
}

/// The `lsvconv profile --smoke` geometry: 4 x 64 x 14 x 14, 3x3 s1 p1.
fn smoke_problem() -> ConvProblem {
    ConvProblem::new(4, 64, 64, 14, 14, 3, 3, 1, 1)
}

fn check_or_bless(name: &str, got: &str) {
    let path = fixture_path(name);
    if std::env::var("LSV_GOLDEN_BLESS").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, got).unwrap();
        eprintln!("profile_export_golden: blessed {}", path.display());
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "golden fixture {} unreadable ({e}); run with LSV_GOLDEN_BLESS=1 to create it",
            path.display()
        )
    });
    if *got != want {
        let mut diffs = Vec::new();
        for (i, (g, w)) in got.lines().zip(want.lines()).enumerate() {
            if g != w {
                diffs.push(format!("  line {}:\n  got:  {g}\n  want: {w}", i + 1));
            }
        }
        if got.lines().count() != want.lines().count() {
            diffs.push(format!(
                "  line counts differ: got {}, fixture {}",
                got.lines().count(),
                want.lines().count()
            ));
        }
        panic!(
            "{name} diverged from the golden fixture ({} lines differ).\n\
             The profiler's region structure and export formats are pinned; \
             if this is an intentional change, re-bless with \
             LSV_GOLDEN_BLESS=1.\n{}",
            diffs.len(),
            diffs[..diffs.len().min(4)].join("\n")
        );
    }
}

#[test]
fn profile_exports_match_fixtures() {
    let arch = sx_aurora();
    let p = smoke_problem();
    let (_, profile) = bench_layer_profiled(
        &arch,
        &p,
        Direction::Fwd,
        Algorithm::Dc,
        ExecutionMode::TimingOnly,
    );
    let meta = profile_meta(&arch, &p, Direction::Fwd, "DC", &profile);

    let report = profile_report_json(&profile, &meta);
    validate_profile_json(&report).expect("golden profile.json must be schema-valid");

    check_or_bless("profile_smoke.trace.json", &perfetto_trace_json(&profile));
    check_or_bless("profile_smoke.folded", &folded_stacks(&profile));
    check_or_bless("profile_smoke.json", &report);
}
