//! Content-addressed layer-result store: key discipline, on-disk robustness,
//! and cold-vs-warm reproducibility.
//!
//! The store's contract (DESIGN.md section 15):
//!  * distinct cache-relevant inputs always produce distinct keys — checked
//!    here over the full 855-point kernel family (19 Table 3 layers x 3
//!    directions x 3 algorithms x 5 vector lengths);
//!  * a persisted entry with a stale schema stamp is a *silent* miss (and the
//!    next put replaces it), while a truncated entry is a *loud* error;
//!  * a warm store replays byte-identical results versus the cold run.

use lsv_arch::presets::{aurora_with_vlen_bits, sx_aurora};
use lsv_bench::{run_suite, Engine};
use lsv_conv::store::{self, LayerStore, Record, StoreConfig};
use lsv_conv::tuning::kernel_config;
use lsv_conv::{Algorithm, Direction, ExecutionMode};
use lsv_models::resnet_layers;
use std::collections::HashMap;
use std::path::PathBuf;

/// Fresh scratch directory under target/, unique per test.
fn scratch(tag: &str) -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("target/test-scratch")
        .join(format!("lsv-store-test-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn disk_store(dir: &std::path::Path) -> LayerStore {
    LayerStore::new(StoreConfig {
        disabled: false,
        dir: Some(dir.to_path_buf()),
        paranoid_pct: 0,
    })
}

#[test]
fn keys_deterministic_and_sensitive_to_every_input() {
    let arch = sx_aurora();
    let p = resnet_layers(32)[8];
    let cfg = kernel_config(&arch, &p, Direction::Fwd, Algorithm::Bdc, arch.cores);
    let mk = || {
        store::slice_key(
            &arch,
            &p,
            Direction::Fwd,
            "direct",
            arch.cores,
            ExecutionMode::TimingOnly,
            Some(&cfg),
        )
    };
    let a = mk();
    let b = mk();
    assert_eq!(a.canonical(), b.canonical(), "same inputs, same canon");
    assert_eq!(a.hash128(), b.hash128(), "same inputs, same hash");

    // Each cache-relevant input perturbs the canonical form (and the hash).
    let variants = [
        store::slice_key(
            &arch,
            &p,
            Direction::BwdData,
            "direct",
            arch.cores,
            ExecutionMode::TimingOnly,
            Some(&cfg),
        ),
        store::slice_key(
            &arch,
            &p,
            Direction::Fwd,
            "vednn:gemm",
            arch.cores,
            ExecutionMode::TimingOnly,
            Some(&cfg),
        ),
        store::slice_key(
            &arch,
            &p,
            Direction::Fwd,
            "direct",
            1,
            ExecutionMode::TimingOnly,
            Some(&cfg),
        ),
        store::slice_key(
            &arch,
            &p,
            Direction::Fwd,
            "direct",
            arch.cores,
            ExecutionMode::Functional,
            Some(&cfg),
        ),
        store::slice_key(
            &arch,
            &p,
            Direction::Fwd,
            "direct",
            arch.cores,
            ExecutionMode::TimingOnly,
            None,
        ),
        store::validation_key(&arch, &p, Direction::Fwd, "direct"),
        store::choice_key(&arch, &p, Direction::Fwd, "vednn-best"),
    ];
    for (i, v) in variants.iter().enumerate() {
        assert_ne!(v.canonical(), a.canonical(), "variant {i} must differ");
        assert_ne!(v.hash128(), a.hash128(), "variant {i} hash must differ");
    }
}

/// The full kernel family the repo ever simulates on the Aurora-style
/// presets: 19 Table 3 layers x 3 directions x 3 algorithms x 5 vector
/// lengths = 855 keys. Distinct canonical forms must map to distinct
/// 128-bit hashes (a collision would silently alias two results).
#[test]
fn family_sweep_855_keys_never_collide() {
    let mut by_hash: HashMap<u128, String> = HashMap::new();
    let mut n = 0usize;
    for vlen_bits in [512usize, 2048, 4096, 8192, 16384] {
        let arch = aurora_with_vlen_bits(vlen_bits);
        for p in resnet_layers(256) {
            for dir in Direction::ALL {
                for alg in Algorithm::ALL {
                    let cfg = kernel_config(&arch, &p, dir, alg, arch.cores);
                    let key = store::slice_key(
                        &arch,
                        &p,
                        dir,
                        "direct",
                        arch.cores,
                        ExecutionMode::TimingOnly,
                        Some(&cfg),
                    );
                    n += 1;
                    if let Some(prev) = by_hash.insert(key.hash128(), key.canonical().to_string()) {
                        assert_eq!(
                            prev,
                            key.canonical(),
                            "hash collision between distinct canonical keys"
                        );
                        panic!("duplicate canonical key in family sweep: {prev}");
                    }
                }
            }
        }
    }
    assert_eq!(n, 855, "sweep shape drifted: expected 19 x 3 x 3 x 5 keys");
    assert_eq!(by_hash.len(), 855, "every key distinct");
}

#[test]
fn disk_round_trip_and_stale_schema_is_silent_miss() {
    let dir = scratch("stale");
    let arch = sx_aurora();
    let p = resnet_layers(8)[3];
    let key = store::validation_key(&arch, &p, Direction::Fwd, "direct");
    let entry = dir.join(format!("{}.entry", key.file_stem()));

    // A persisted entry written under an older schema stamp: silent miss.
    std::fs::write(
        &entry,
        format!("lsv-layer-store v0\nkey {}\nchoice 1\n", key.canonical()),
    )
    .unwrap();
    let st = disk_store(&dir);
    assert_eq!(st.get(&key), None, "stale schema must read as a miss");
    assert_eq!(st.stats().misses, 1);

    // The next put replaces the stale file; a *fresh* store (empty memory
    // tier) then serves the record from disk.
    st.put(&key, Record::Choice(7));
    let st2 = disk_store(&dir);
    assert_eq!(st2.get(&key), Some(Record::Choice(7)));
    assert_eq!(st2.stats().disk_hits, 1);
    assert_eq!(st2.stats().misses, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
#[should_panic(expected = "truncated entry")]
fn truncated_entry_is_loud_error() {
    let dir = scratch("truncated");
    let arch = sx_aurora();
    let p = resnet_layers(8)[3];
    let key = store::validation_key(&arch, &p, Direction::BwdData, "direct");
    let entry = dir.join(format!("{}.entry", key.file_stem()));
    // Schema line and key line survive, the record line was lost mid-write
    // (cannot happen with the atomic tmp+rename protocol, so it is loud).
    std::fs::write(
        &entry,
        format!("{}\nkey {}", lsv_conv::store::SCHEMA, key.canonical()),
    )
    .unwrap();
    disk_store(&dir).get(&key);
}

#[test]
fn hash_collision_on_disk_is_silent_miss() {
    let dir = scratch("collision");
    let arch = sx_aurora();
    let p = resnet_layers(8)[3];
    let key = store::validation_key(&arch, &p, Direction::BwdWeights, "direct");
    let entry = dir.join(format!("{}.entry", key.file_stem()));
    // Well-formed entry whose key line belongs to a *different* canonical
    // key (a 128-bit hash collision): must not be served.
    std::fs::write(
        &entry,
        format!(
            "{}\nkey some-other-canonical-key\nchoice 3\n",
            store::SCHEMA
        ),
    )
    .unwrap();
    assert_eq!(disk_store(&dir).get(&key), None);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Cold-vs-warm byte identity over a real (small) sweep, through the
/// process-global store the bench paths use. The warm pass must reproduce
/// every CSV row byte for byte and simulate nothing. Paranoid mode is on at
/// 100% so every warm hit is re-simulated and compared on the spot.
#[test]
fn cold_vs_warm_sweep_rows_byte_identical() {
    let dir = scratch("coldwarm");
    store::configure(StoreConfig {
        disabled: false,
        dir: Some(dir.clone()),
        paranoid_pct: 100,
    })
    .expect("global store already initialised by another path in this test binary");

    let arch = sx_aurora();
    let engines = [Engine::Direct(Algorithm::Bdc)];
    let dirs = [Direction::Fwd, Direction::BwdWeights];
    let cold: Vec<String> = run_suite(&arch, 2, &engines, &dirs, ExecutionMode::TimingOnly)
        .iter()
        .map(|r| r.to_csv())
        .collect();
    let s0 = store::store().stats();
    assert!(s0.inserts > 0, "cold pass must populate the store");
    assert!(store::store().disk_bytes() > 0, "disk tier must persist");

    let warm: Vec<String> = run_suite(&arch, 2, &engines, &dirs, ExecutionMode::TimingOnly)
        .iter()
        .map(|r| r.to_csv())
        .collect();
    let s1 = store::store().stats();
    assert_eq!(cold, warm, "warm store must replay identical CSV rows");
    assert_eq!(s1.inserts, s0.inserts, "warm pass must not re-insert");
    assert!(
        s1.mem_hits + s1.disk_hits > s0.mem_hits + s0.disk_hits,
        "warm pass must be served from the store"
    );
    assert!(
        s1.paranoid_rechecks > s0.paranoid_rechecks,
        "paranoid mode at 100% must re-verify warm hits"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
