//! Golden-cycle regression suite: pins the simulator's *timing semantics*.
//!
//! Host-side performance work on the simulator (allocation-free `VCore`,
//! O(1) shadow LRU, line-coalesced cache traffic, parallel sweeps) must not
//! change a single simulated cycle or cache counter. This suite locks a
//! representative subset of the Table 3 suite — six layers spanning 3x3,
//! strided-1x1 and conflict-prone shapes, across {DC, BDC, MBDC} x
//! {fwdd, bwdd, bwdw} — against fixtures recorded before the optimization
//! work. Any timing-visible regression fails `cargo test -q`.
//!
//! Regenerate the fixture (only when a *modelling* change intentionally
//! shifts cycle counts) with:
//!
//! ```sh
//! LSV_GOLDEN_BLESS=1 cargo test --release --test golden_cycles
//! ```

use lsv_conv::{bench_layer, Algorithm, Direction, ExecutionMode};
use lsv_models::resnet_layer;
use std::fmt::Write as _;
use std::path::PathBuf;

/// Layer ids snapshotted: stem 3x3 (2), strided 1x1 shortcut (4), 28x28 3x3
/// (6), the Section 8 conflict-prone reduce (8), 14x14 3x3 (11) and the 7x7
/// 3x3 (16).
const LAYERS: [usize; 6] = [2, 4, 6, 8, 11, 16];

/// Minibatch 16 = two images per simulated core: both the cold and the
/// steady-state measurement paths are pinned.
const MINIBATCH: usize = 16;

const ALGORITHMS: [Algorithm; 3] = [Algorithm::Dc, Algorithm::Bdc, Algorithm::Mbdc];

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("fixtures")
        .join("golden_cycles.csv")
}

/// One snapshot line: every simulated quantity that must stay bit-identical.
fn snapshot_line(layer: usize, alg: Algorithm, dir: Direction) -> String {
    let arch = lsv_arch::presets::sx_aurora();
    let p = resnet_layer(layer, MINIBATCH);
    let perf = bench_layer(&arch, &p, dir, alg, ExecutionMode::TimingOnly);
    let c = &perf.report.cache;
    let mut s = String::new();
    write!(
        s,
        "{},{},{},{}",
        layer,
        alg.short_name(),
        dir.short_name(),
        perf.cycles
    )
    .unwrap();
    for l in [&c.l1, &c.l2, &c.llc] {
        write!(
            s,
            ",{},{},{},{}",
            l.hits, l.misses, l.conflict_misses, l.writebacks
        )
        .unwrap();
    }
    write!(
        s,
        ",{},{},{},{},{},{}",
        c.mem_fetches,
        perf.report.insts.total(),
        perf.report.stall_scalar,
        perf.report.stall_dep,
        perf.report.stall_port,
        perf.report.bank_serial_cycles,
    )
    .unwrap();
    s
}

fn render_snapshot() -> String {
    let mut out = String::from(
        "layer,alg,dir,cycles,\
         l1_hits,l1_misses,l1_conflicts,l1_writebacks,\
         l2_hits,l2_misses,l2_conflicts,l2_writebacks,\
         llc_hits,llc_misses,llc_conflicts,llc_writebacks,\
         mem_fetches,insts,stall_scalar,stall_dep,stall_port,bank_serial_cycles\n",
    );
    for &layer in &LAYERS {
        for &alg in &ALGORITHMS {
            for dir in Direction::ALL {
                out.push_str(&snapshot_line(layer, alg, dir));
                out.push('\n');
            }
        }
    }
    out
}

#[test]
fn golden_cycles_match_fixture() {
    let got = render_snapshot();
    let path = fixture_path();
    if std::env::var("LSV_GOLDEN_BLESS").is_ok() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &got).unwrap();
        eprintln!("golden_cycles: blessed {} entries", LAYERS.len() * 9);
        return;
    }
    let want = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "golden fixture {} unreadable ({e}); run with LSV_GOLDEN_BLESS=1 to create it",
            path.display()
        )
    });
    if got != want {
        // Report the first few diverging lines precisely rather than dumping
        // both files.
        let mut diffs = Vec::new();
        for (g, w) in got.lines().zip(want.lines()) {
            if g != w {
                diffs.push(format!("  got:  {g}\n  want: {w}"));
            }
        }
        if got.lines().count() != want.lines().count() {
            diffs.push(format!(
                "  line counts differ: got {}, fixture {}",
                got.lines().count(),
                want.lines().count()
            ));
        }
        panic!(
            "simulated cycles/cache stats diverged from the golden fixture \
             ({} lines differ).\nTiming semantics must not change in a \
             host-performance PR; if the divergence is an intentional \
             modelling change, re-bless with LSV_GOLDEN_BLESS=1.\n{}",
            diffs.len(),
            diffs[..diffs.len().min(6)].join("\n")
        );
    }
}

/// Functional execution computes real data on top of the same address
/// stream; it must report the *identical* timing to a TimingOnly run.
#[test]
fn functional_and_timing_only_agree_on_cycles() {
    let arch = lsv_arch::presets::sx_aurora();
    for (layer, alg) in [(2, Algorithm::Bdc), (8, Algorithm::Dc)] {
        let p = resnet_layer(layer, 8);
        for dir in Direction::ALL {
            let t = bench_layer(&arch, &p, dir, alg, ExecutionMode::TimingOnly);
            let f = bench_layer(&arch, &p, dir, alg, ExecutionMode::Functional);
            assert_eq!(
                t.cycles, f.cycles,
                "layer {layer} {alg:?} {dir:?}: functional vs timing-only cycles"
            );
            assert_eq!(
                t.report.cache, f.report.cache,
                "layer {layer} {alg:?} {dir:?}: cache stats must not depend on mode"
            );
        }
    }
}
