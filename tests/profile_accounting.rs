//! Property test for the region profiler's two core promises, checked
//! across the differential-fuzzing seed corpus (the same generator set the
//! `lsvconv fuzz` harness replays — odd geometries, role swaps, every
//! direction × algorithm × vector length):
//!
//! 1. **Cycle neutrality**: enabling the profiler changes *nothing* about
//!    the simulation — cycles, instruction counts and cache counters are
//!    identical to an unprofiled run.
//! 2. **Conservation**: per-region self cycles, instruction counts and
//!    cache events sum *exactly* to the whole-run totals of the measured
//!    slice (checked through `lsv-analyze`'s `PROFILE-UNRECONCILED` rule,
//!    the same gate the CLI uses).

use lsvconv::analyze::check_profile_reconciliation;
use lsvconv::arch::presets::aurora_with_vlen_bits;
use lsvconv::conv::fuzz::seed_corpus;
use lsvconv::conv::{bench_layer, bench_layer_profiled, ConvDesc, ExecutionMode};
use lsvconv::vengine::CoreStats;

#[test]
fn profiling_is_cycle_neutral_and_conserves_counters_on_fuzz_corpus() {
    let mut checked = 0usize;
    for case in seed_corpus() {
        let arch = aurora_with_vlen_bits(case.vlen_bits);
        // Skip combinations the library legitimately declines (register
        // pressure on narrow machines) — the config is minibatch-independent.
        let probe = ConvDesc::new(
            case.problem.with_minibatch(1),
            case.direction,
            case.algorithm,
        );
        if probe.create(&arch, arch.cores).is_err() {
            continue;
        }

        let plain = bench_layer(
            &arch,
            &case.problem,
            case.direction,
            case.algorithm,
            ExecutionMode::TimingOnly,
        );
        let (profiled, profile) = bench_layer_profiled(
            &arch,
            &case.problem,
            case.direction,
            case.algorithm,
            ExecutionMode::TimingOnly,
        );

        // (1) Cycle neutrality: identical chip cycles and slice counters.
        assert_eq!(plain.cycles, profiled.cycles, "{case}: chip cycles moved");
        assert_eq!(
            plain.report.cycles, profiled.report.cycles,
            "{case}: slice cycles moved"
        );
        assert_eq!(
            plain.report.insts, profiled.report.insts,
            "{case}: instruction counters moved"
        );
        assert_eq!(
            plain.report.cache, profiled.report.cache,
            "{case}: cache counters moved"
        );

        // (2) Conservation against the independently kept slice report.
        let r = &profiled.report;
        let slice_stats = CoreStats {
            cycles: r.cycles,
            insts: r.insts,
            cache: r.cache,
            stall_scalar: r.stall_scalar,
            stall_dep: r.stall_dep,
            stall_port: r.stall_port,
            bank_serial_cycles: r.bank_serial_cycles,
        };
        let reconciliation = check_profile_reconciliation(&profile, &slice_stats);
        assert!(
            !reconciliation.has_deny(),
            "{case}: {:?}",
            reconciliation.diagnostics
        );
        assert_eq!(
            profile.self_cycles_total(),
            profile.total.cycles,
            "{case}: self-cycle sum"
        );
        assert!(profile.dropped_spans == 0, "{case}: spans dropped");
        checked += 1;
    }
    assert!(
        checked >= 30,
        "only {checked} corpus cases were benchable — corpus degraded?"
    );
}
