//! Integration: the detailed shared-LLC multi-core simulation computes
//! correct results for the backward passes too, and its cross-core weight
//! sharing shows up in the shared LLC's counters.

use lsvconv::conv::{execute_multicore, naive, Algorithm, ConvDesc, ConvProblem, Direction};
use lsvconv::prelude::sx_aurora;
use lsvconv::vengine::{Arena, ExecutionMode};
use rand::{Rng, SeedableRng};

fn rand_vec(len: usize, seed: u64) -> Vec<f32> {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    (0..len).map(|_| rng.gen_range(-1.0..1.0)).collect()
}

#[test]
fn multicore_backward_data_matches_reference() {
    let arch = sx_aurora();
    let p = ConvProblem::new(8, 24, 16, 9, 9, 3, 3, 1, 1);
    let prim = ConvDesc::new(p, Direction::BwdData, Algorithm::Mbdc)
        .create(&arch, arch.cores)
        .unwrap();
    let mut arena = Arena::new();
    let t = prim.alloc_tensors(&mut arena);
    let dst = rand_vec(p.n * p.oc * p.oh() * p.ow(), 1);
    let wei = rand_vec(p.oc * p.ic * p.kh * p.kw, 2);
    t.dst.store_nchw(&mut arena, &dst);
    prim.store_weights(&mut arena, &t, &wei);
    let report = execute_multicore(&prim, &mut arena, &t, ExecutionMode::Functional);
    let got = t.src.load_nchw(&arena);
    let want = naive::backward_data(&p, &dst, &wei);
    let err = naive::max_abs_diff(&got, &want);
    assert!(err < 1e-3, "multicore bwdd wrong: {err}");
    assert!(report.wall_cycles > 0);
    assert_eq!(report.per_core.len(), arch.cores);
}

#[test]
fn multicore_backward_weights_matches_reference() {
    let arch = sx_aurora();
    // Vectorize OC (96), register-block IC (64): rb_c = 24 gives three
    // IC blocks, so several cores get work.
    let p = ConvProblem::new(4, 64, 96, 8, 8, 1, 1, 1, 0);
    let prim = ConvDesc::new(p, Direction::BwdWeights, Algorithm::Bdc)
        .create(&arch, arch.cores)
        .unwrap();
    let mut arena = Arena::new();
    let t = prim.alloc_tensors(&mut arena);
    let src = rand_vec(p.n * p.ic * p.ih * p.iw, 3);
    let dst = rand_vec(p.n * p.oc * p.oh() * p.ow(), 4);
    t.src.store_nchw(&mut arena, &src);
    t.dst.store_nchw(&mut arena, &dst);
    let report = execute_multicore(&prim, &mut arena, &t, ExecutionMode::Functional);
    let got = prim.load_weights(&arena, &t);
    let want = naive::backward_weights(&p, &src, &dst);
    let err = naive::max_abs_diff(&got, &want);
    assert!(err < 1e-3, "multicore bwdw wrong: {err}");
    assert!(report.per_core.len() > 1, "blocks spread over cores");
}

#[test]
fn wall_time_is_max_core_time() {
    let arch = sx_aurora();
    let p = ConvProblem::new(8, 16, 16, 8, 8, 3, 3, 1, 1);
    let prim = ConvDesc::new(p, Direction::Fwd, Algorithm::Dc)
        .create(&arch, arch.cores)
        .unwrap();
    let mut arena = Arena::new();
    let t = prim.alloc_tensors(&mut arena);
    let report = execute_multicore(&prim, &mut arena, &t, ExecutionMode::TimingOnly);
    let max = report.per_core.iter().map(|c| c.cycles).max().unwrap();
    assert_eq!(report.wall_cycles, max);
}
