//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the real `proptest`
//! cannot be resolved. This crate implements the subset of its API that the
//! workspace's property tests use — the `proptest!` macro with per-file
//! `ProptestConfig`, range/`Just`/tuple strategies, `prop_oneof!`,
//! `prop_filter_map`, `collection::vec`, and the `prop_assert*` /
//! `prop_assume!` macros — as a deterministic sampling runner.
//!
//! Differences from real proptest, deliberately accepted:
//! - sampling is seeded from a hash of the test name, so runs are fully
//!   reproducible (there is no `PROPTEST_` env handling);
//! - failing cases are reported with their inputs but are **not shrunk**;
//! - rejection via filters/`prop_assume!` is bounded (65536 rejects per
//!   test) to keep pathological filters from spinning forever.

/// `proptest::collection` — strategies for collections.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy producing `Vec`s with a length drawn from `len` and
    /// elements drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "collection::vec: empty length range");
        VecStrategy { elem, len }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

/// The glob-imported prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Strategy combinators and primitive strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A source of sampled values. `None` means the candidate was rejected
    /// (by a filter) and the runner should draw again.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draw one value, or `None` on rejection.
        fn sample(&self, rng: &mut TestRng) -> Option<Self::Value>;

        /// Keep only values `f` maps to `Some`, transforming them.
        fn prop_filter_map<U, F>(self, whence: &'static str, f: F) -> FilterMap<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> Option<U>,
        {
            FilterMap {
                inner: self,
                f,
                whence,
            }
        }

        /// Transform every sampled value.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> Option<T> {
            (**self).sample(rng)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> Option<T> {
            Some(self.0.clone())
        }
    }

    /// See [`Strategy::prop_filter_map`].
    #[derive(Debug, Clone)]
    pub struct FilterMap<S, F> {
        inner: S,
        f: F,
        #[allow(dead_code)]
        whence: &'static str,
    }

    impl<S, U, F> Strategy for FilterMap<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> Option<U>,
    {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> Option<U> {
            self.inner.sample(rng).and_then(&self.f)
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> Option<U> {
            self.inner.sample(rng).map(&self.f)
        }
    }

    /// Uniform choice between boxed strategies (built by `prop_oneof!`).
    pub struct OneOf<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> Option<T> {
            let i = (rng.next_u64() % self.options.len() as u64) as usize;
            self.options[i].sample(rng)
        }
    }

    /// Build a [`OneOf`] from its alternatives.
    pub fn one_of<T>(options: Vec<Box<dyn Strategy<Value = T>>>) -> OneOf<T> {
        assert!(!options.is_empty(), "prop_oneof!: no alternatives");
        OneOf { options }
    }

    /// Erase a strategy's concrete type (helper for `prop_oneof!`).
    pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
        Box::new(s)
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> Option<$t> {
                    assert!(self.start < self.end, "strategy range is empty");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    Some((self.start as i128 + (rng.next_u64() % span) as i128) as $t)
                }
            }
        )*};
    }
    impl_int_range_strategy!(usize, u64, u32, u16, u8, i64, i32);

    impl Strategy for Range<f32> {
        type Value = f32;
        fn sample(&self, rng: &mut TestRng) -> Option<f32> {
            assert!(self.start < self.end, "strategy range is empty");
            Some(self.start + (self.end - self.start) * rng.unit_f64() as f32)
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut TestRng) -> Option<f64> {
            assert!(self.start < self.end, "strategy range is empty");
            Some(self.start + (self.end - self.start) * rng.unit_f64())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($s:ident . $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Option<Self::Value> {
                    Some(($(self.$idx.sample(rng)?,)+))
                }
            }
        };
    }
    impl_tuple_strategy!(A.0, B.1);
    impl_tuple_strategy!(A.0, B.1, C.2);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
}

/// The runner's configuration, RNG and error plumbing.
pub mod test_runner {
    /// Runner configuration (only the case count is honoured).
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of *accepted* cases each test must pass.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` accepted samples per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` failed — draw a fresh sample.
        Reject,
        /// A `prop_assert*!` failed — the property is violated.
        Fail(String),
    }

    /// Deterministic SplitMix64 generator used for sampling.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed deterministically from a test's name.
        pub fn from_name(name: &str) -> Self {
            // FNV-1a over the name: stable across runs and platforms.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// Next 64 mixed bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// Define property tests: `proptest! { #![proptest_config(c)] #[test] fn f(x in strat) { .. } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`] — not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) $(
        #[test]
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )* ) => {$(
        #[test]
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            let mut __accepted: u32 = 0;
            let mut __rejected: u32 = 0;
            while __accepted < __config.cases {
                assert!(
                    __rejected <= (1 << 16),
                    "proptest {}: gave up after {} rejected samples",
                    stringify!($name),
                    __rejected
                );
                $(
                    let $arg = match $crate::strategy::Strategy::sample(&($strat), &mut __rng) {
                        ::core::option::Option::Some(v) => v,
                        ::core::option::Option::None => {
                            __rejected += 1;
                            continue;
                        }
                    };
                )*
                let __outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::core::result::Result::Ok(())
                    })();
                match __outcome {
                    ::core::result::Result::Ok(()) => __accepted += 1,
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {
                        __rejected += 1;
                    }
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        let inputs = [
                            $(format!(concat!(stringify!($arg), " = {:?}"), &$arg)),*
                        ];
                        panic!(
                            "proptest {} failed: {}\n  inputs: {}",
                            stringify!($name),
                            msg,
                            inputs.join(", ")
                        );
                    }
                }
            }
        }
    )*};
}

/// Assert inside a `proptest!` body; failure fails the case with its inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                __l,
                __r
            )));
        }
    }};
}

/// Discard the current case unless `cond` holds (counted as a rejection).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Uniform choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::one_of(vec![$($crate::strategy::boxed($s)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in -2.0f32..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn oneof_only_yields_alternatives(k in prop_oneof![Just(1usize), Just(2), Just(3)]) {
            prop_assert!((1..=3).contains(&k));
        }

        #[test]
        fn assume_rejects_without_failing(a in 0usize..10, b in 0usize..10) {
            prop_assume!(a != b);
            prop_assert!(a != b);
        }

        #[test]
        fn filter_map_transforms(v in (1usize..5, 1usize..5).prop_filter_map("sum", |(a, b)| {
            if a + b < 8 { Some(a + b) } else { None }
        })) {
            prop_assert!(v < 8, "filter let {v} through");
        }

        #[test]
        fn collection_vec_respects_length(xs in crate::collection::vec(0u64..100, 1..20)) {
            prop_assert!(!xs.is_empty() && xs.len() < 20);
            prop_assert!(xs.iter().all(|&x| x < 100));
        }
    }

    #[test]
    #[should_panic(expected = "proptest always_fails failed")]
    // The nested `#[test]` the macro emits is intentionally unreachable by
    // the harness here; this test drives it by hand.
    #[allow(unnameable_test_items)]
    fn failing_property_panics_with_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[test]
            fn always_fails(x in 0usize..4) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        always_fails();
    }
}
