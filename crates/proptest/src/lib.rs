//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the real `proptest`
//! cannot be resolved. This crate implements the subset of its API that the
//! workspace's property tests use — the `proptest!` macro with per-file
//! `ProptestConfig`, range/`Just`/tuple strategies, `prop_oneof!`,
//! `prop_filter_map`, `collection::vec`, and the `prop_assert*` /
//! `prop_assume!` macros — as a deterministic sampling runner.
//!
//! Differences from real proptest, deliberately accepted:
//! - sampling is seeded from a hash of the test name, so runs are fully
//!   reproducible (there is no `PROPTEST_` env handling);
//! - shrinking is greedy and bounded (1024 candidate evaluations per
//!   failure) rather than proptest's full simplify/complicate search; it
//!   still converges to the minimal failing value for monotone properties
//!   on range strategies. `Map`/`FilterMap` outputs do not shrink (the
//!   transform cannot be inverted) — shrink the pre-map tuple instead;
//! - rejection via filters/`prop_assume!` is bounded (65536 rejects per
//!   test) to keep pathological filters from spinning forever.

/// `proptest::collection` — strategies for collections.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy producing `Vec`s with a length drawn from `len` and
    /// elements drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "collection::vec: empty length range");
        VecStrategy { elem, len }
    }

    /// See [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: Clone,
    {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Option<Vec<S::Value>> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.elem.sample(rng)).collect()
        }
        // Shorter prefixes first (minimum length, half, one fewer), then the
        // first element-wise candidate per position.
        fn shrink(&self, value: &Vec<S::Value>) -> Vec<Vec<S::Value>> {
            let mut out = Vec::new();
            let min = self.len.start;
            if value.len() > min {
                out.push(value[..min].to_vec());
                let half = (value.len() + min) / 2;
                if half > min && half < value.len() {
                    out.push(value[..half].to_vec());
                }
                if value.len() - 1 > min {
                    out.push(value[..value.len() - 1].to_vec());
                }
            }
            for (i, v) in value.iter().enumerate() {
                if let Some(cand) = self.elem.shrink(v).into_iter().next() {
                    let mut next = value.clone();
                    next[i] = cand;
                    out.push(next);
                }
            }
            out
        }
    }
}

/// The glob-imported prelude, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Strategy combinators and primitive strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A source of sampled values. `None` means the candidate was rejected
    /// (by a filter) and the runner should draw again.
    pub trait Strategy {
        /// The type of value this strategy produces.
        type Value;

        /// Draw one value, or `None` on rejection.
        fn sample(&self, rng: &mut TestRng) -> Option<Self::Value>;

        /// Smaller candidate values derived from a failing `value`, most
        /// aggressive first. The runner adopts the first candidate that
        /// still fails and repeats. Strategies without a meaningful notion
        /// of "smaller" (or whose transform cannot be inverted, like
        /// [`Map`]) return no candidates.
        fn shrink(&self, _value: &Self::Value) -> Vec<Self::Value> {
            Vec::new()
        }

        /// Keep only values `f` maps to `Some`, transforming them.
        fn prop_filter_map<U, F>(self, whence: &'static str, f: F) -> FilterMap<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> Option<U>,
        {
            FilterMap {
                inner: self,
                f,
                whence,
            }
        }

        /// Transform every sampled value.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { inner: self, f }
        }
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> Option<T> {
            (**self).sample(rng)
        }
        fn shrink(&self, value: &T) -> Vec<T> {
            (**self).shrink(value)
        }
    }

    /// Strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut TestRng) -> Option<T> {
            Some(self.0.clone())
        }
    }

    /// See [`Strategy::prop_filter_map`].
    #[derive(Debug, Clone)]
    pub struct FilterMap<S, F> {
        inner: S,
        f: F,
        #[allow(dead_code)]
        whence: &'static str,
    }

    impl<S, U, F> Strategy for FilterMap<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> Option<U>,
    {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> Option<U> {
            self.inner.sample(rng).and_then(&self.f)
        }
    }

    /// See [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn sample(&self, rng: &mut TestRng) -> Option<U> {
            self.inner.sample(rng).map(&self.f)
        }
    }

    /// Uniform choice between boxed strategies (built by `prop_oneof!`).
    pub struct OneOf<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> Option<T> {
            let i = (rng.next_u64() % self.options.len() as u64) as usize;
            self.options[i].sample(rng)
        }
        // The producing alternative is unknown, but any alternative's
        // candidates are values this strategy could have produced, so the
        // union is sound (the runner re-checks every candidate anyway).
        fn shrink(&self, value: &T) -> Vec<T> {
            self.options.iter().flat_map(|o| o.shrink(value)).collect()
        }
    }

    /// Build a [`OneOf`] from its alternatives.
    pub fn one_of<T>(options: Vec<Box<dyn Strategy<Value = T>>>) -> OneOf<T> {
        assert!(!options.is_empty(), "prop_oneof!: no alternatives");
        OneOf { options }
    }

    /// Erase a strategy's concrete type (helper for `prop_oneof!`).
    pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
        Box::new(s)
    }

    /// Pin a check closure's parameter to a strategy's value type, so the
    /// `proptest!` expansion can define the closure before the first sample
    /// exists (plain `let` closures cannot infer a `&_` parameter whose
    /// body uses method calls). Not part of the public API.
    #[doc(hidden)]
    pub fn bind_check<S, F>(_: &S, f: F) -> F
    where
        S: Strategy,
        F: Fn(&S::Value) -> Result<(), crate::test_runner::TestCaseError>,
    {
        f
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> Option<$t> {
                    assert!(self.start < self.end, "strategy range is empty");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    Some((self.start as i128 + (rng.next_u64() % span) as i128) as $t)
                }
                // Toward the range start: the start itself, the midpoint,
                // and the predecessor — a bisection that converges to the
                // minimal failing value for monotone properties.
                fn shrink(&self, value: &$t) -> Vec<$t> {
                    let mut out = Vec::new();
                    if *value != self.start {
                        out.push(self.start);
                        let mid = (self.start as i128
                            + (*value as i128 - self.start as i128) / 2) as $t;
                        if mid != self.start && mid != *value {
                            out.push(mid);
                        }
                        let pred = (*value as i128 - 1) as $t;
                        if pred != self.start && !out.contains(&pred) {
                            out.push(pred);
                        }
                    }
                    out
                }
            }
        )*};
    }
    impl_int_range_strategy!(usize, u64, u32, u16, u8, i64, i32);

    macro_rules! impl_float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> Option<$t> {
                    assert!(self.start < self.end, "strategy range is empty");
                    Some(self.start + (self.end - self.start) * rng.unit_f64() as $t)
                }
                fn shrink(&self, value: &$t) -> Vec<$t> {
                    let mut out = Vec::new();
                    if *value != self.start {
                        out.push(self.start);
                        let mid = self.start + (*value - self.start) / 2.0;
                        if mid != self.start && mid != *value {
                            out.push(mid);
                        }
                    }
                    out
                }
            }
        )*};
    }
    impl_float_range_strategy!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($s:ident . $idx:tt),+) => {
            impl<$($s: Strategy),+> Strategy for ($($s,)+)
            where
                $($s::Value: Clone),+
            {
                type Value = ($($s::Value,)+);
                fn sample(&self, rng: &mut TestRng) -> Option<Self::Value> {
                    Some(($(self.$idx.sample(rng)?,)+))
                }
                // One component at a time, the others held fixed.
                fn shrink(&self, value: &Self::Value) -> Vec<Self::Value> {
                    let mut out = Vec::new();
                    $(
                        for cand in self.$idx.shrink(&value.$idx) {
                            let mut next = value.clone();
                            next.$idx = cand;
                            out.push(next);
                        }
                    )+
                    out
                }
            }
        };
    }
    impl_tuple_strategy!(A.0);
    impl_tuple_strategy!(A.0, B.1);
    impl_tuple_strategy!(A.0, B.1, C.2);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6);
    impl_tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
}

/// The runner's configuration, RNG and error plumbing.
pub mod test_runner {
    /// Runner configuration (only the case count is honoured).
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of *accepted* cases each test must pass.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` accepted samples per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` failed — draw a fresh sample.
        Reject,
        /// A `prop_assert*!` failed — the property is violated.
        Fail(String),
    }

    /// Deterministic SplitMix64 generator used for sampling.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed directly from a 64-bit value (fuzz drivers with a `--seed`
        /// flag; [`TestRng::from_name`] covers the `proptest!` tests).
        pub fn from_seed(seed: u64) -> Self {
            TestRng { state: seed }
        }

        /// Seed deterministically from a test's name.
        pub fn from_name(name: &str) -> Self {
            // FNV-1a over the name: stable across runs and platforms.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// Next 64 mixed bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

/// Define property tests: `proptest! { #![proptest_config(c)] #[test] fn f(x in strat) { .. } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`] — not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr) $(
        #[test]
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )* ) => {$(
        #[test]
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::from_name(stringify!($name));
            // The property body as a reusable check over the whole argument
            // tuple, so the shrinker can re-run it on smaller candidates.
            let __strats = ($(($strat),)*);
            let __check = $crate::strategy::bind_check(&__strats, |__vals| {
                #[allow(unused_variables)]
                let ($($arg,)*) = ::core::clone::Clone::clone(__vals);
                $body
                ::core::result::Result::Ok(())
            });
            let mut __accepted: u32 = 0;
            let mut __rejected: u32 = 0;
            while __accepted < __config.cases {
                assert!(
                    __rejected <= (1 << 16),
                    "proptest {}: gave up after {} rejected samples",
                    stringify!($name),
                    __rejected
                );
                $(
                    let $arg = match $crate::strategy::Strategy::sample(&($strat), &mut __rng) {
                        ::core::option::Option::Some(v) => v,
                        ::core::option::Option::None => {
                            __rejected += 1;
                            continue;
                        }
                    };
                )*
                let mut __vals = ($($arg,)*);
                match __check(&__vals) {
                    ::core::result::Result::Ok(()) => __accepted += 1,
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {
                        __rejected += 1;
                    }
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        // Greedy bounded shrink over the argument tuple:
                        // adopt the first candidate that still fails, repeat
                        // until a whole round makes no progress.
                        let mut __msg = msg;
                        let mut __evals: u32 = 0;
                        let mut __progress = true;
                        while __progress && __evals < 1024 {
                            __progress = false;
                            for __cand in
                                $crate::strategy::Strategy::shrink(&__strats, &__vals)
                            {
                                __evals += 1;
                                let __prev = ::core::mem::replace(&mut __vals, __cand);
                                match __check(&__vals) {
                                    ::core::result::Result::Err(
                                        $crate::test_runner::TestCaseError::Fail(m),
                                    ) => {
                                        __msg = m;
                                        __progress = true;
                                        break;
                                    }
                                    _ => __vals = __prev,
                                }
                            }
                        }
                        let ($($arg,)*) = &__vals;
                        let inputs = [
                            $(format!(concat!(stringify!($arg), " = {:?}"), $arg)),*
                        ];
                        panic!(
                            "proptest {} failed: {}\n  inputs: {}",
                            stringify!($name),
                            __msg,
                            inputs.join(", ")
                        );
                    }
                }
            }
        }
    )*};
}

/// Assert inside a `proptest!` body; failure fails the case with its inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                __l,
                __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                __l,
                __r
            )));
        }
    }};
}

/// Discard the current case unless `cond` holds (counted as a rejection).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Uniform choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::one_of(vec![$($crate::strategy::boxed($s)),+])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in -2.0f32..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn oneof_only_yields_alternatives(k in prop_oneof![Just(1usize), Just(2), Just(3)]) {
            prop_assert!((1..=3).contains(&k));
        }

        #[test]
        fn assume_rejects_without_failing(a in 0usize..10, b in 0usize..10) {
            prop_assume!(a != b);
            prop_assert!(a != b);
        }

        #[test]
        fn filter_map_transforms(v in (1usize..5, 1usize..5).prop_filter_map("sum", |(a, b)| {
            if a + b < 8 { Some(a + b) } else { None }
        })) {
            prop_assert!(v < 8, "filter let {v} through");
        }

        #[test]
        fn collection_vec_respects_length(xs in crate::collection::vec(0u64..100, 1..20)) {
            prop_assert!(!xs.is_empty() && xs.len() < 20);
            prop_assert!(xs.iter().all(|&x| x < 100));
        }
    }

    #[test]
    #[should_panic(expected = "proptest always_fails failed")]
    // The nested `#[test]` the macro emits is intentionally unreachable by
    // the harness here; this test drives it by hand.
    #[allow(unnameable_test_items)]
    fn failing_property_panics_with_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[test]
            fn always_fails(x in 0usize..4) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        always_fails();
    }

    #[test]
    fn int_range_shrinks_toward_start() {
        let s = 3usize..100;
        let cands = s.shrink(&57);
        assert_eq!(cands[0], 3, "range start is the most aggressive candidate");
        assert!(cands.contains(&30), "midpoint (3 + (57-3)/2)");
        assert!(cands.contains(&56), "predecessor");
        assert!(cands.iter().all(|&c| (3..57).contains(&c)));
        assert!(s.shrink(&3).is_empty(), "the start does not shrink further");
    }

    #[test]
    fn float_range_shrinks_toward_start() {
        let s = -2.0f32..2.0;
        let cands = s.shrink(&1.0);
        assert_eq!(cands[0], -2.0);
        assert!(cands.contains(&-0.5), "midpoint");
        assert!(s.shrink(&-2.0).is_empty());
    }

    #[test]
    fn tuple_shrinks_one_component_at_a_time() {
        let s = (0usize..50, 0usize..50);
        for (a, b) in s.shrink(&(10, 0)) {
            assert_eq!(b, 0, "fixed component must stay fixed");
            assert!(a < 10, "shrunk component must get smaller");
        }
        assert!(!s.shrink(&(10, 0)).is_empty());
        assert!(s.shrink(&(0, 0)).is_empty());
    }

    #[test]
    fn vec_shrinks_length_then_elements() {
        let s = crate::collection::vec(0u64..100, 1..20);
        let v = vec![50u64, 60, 70, 80];
        let cands = s.shrink(&v);
        assert_eq!(cands[0], vec![50], "minimum-length prefix first");
        assert!(cands.contains(&vec![50, 60, 70]), "one-shorter prefix");
        assert!(
            cands.iter().any(|c| c.len() == 4 && c[0] == 0),
            "element-wise candidate shrinks a single element"
        );
    }

    #[test]
    #[allow(unnameable_test_items)]
    fn failing_counterexample_is_shrunk_to_minimal() {
        // Property fails iff x >= 10: the greedy bisection must land on
        // exactly 10, whatever the first sampled failure was.
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]
            #[test]
            fn fails_at_ten(x in 0usize..1000) {
                prop_assert!(x < 10, "too big");
            }
        }
        let err = std::panic::catch_unwind(fails_at_ten).unwrap_err();
        let msg = err
            .downcast_ref::<String>()
            .expect("panic payload is a String");
        assert!(
            msg.contains("inputs: x = 10"),
            "expected the minimal counterexample, got: {msg}"
        );
    }

    #[test]
    #[allow(unnameable_test_items)]
    fn shrinking_holds_other_arguments_fixed() {
        // Only `a` matters; `b` must survive shrinking untouched at
        // whatever value the failing sample drew (it never fails on its
        // own, so candidates that change it alone cannot be adopted...
        // but candidates that shrink it while `a` stays failing can).
        // The property is monotone in `a` alone, so `a` must reach 20
        // and `b` must reach its range start 5.
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]
            #[test]
            fn fails_on_a(a in 0usize..500, b in 5usize..500) {
                prop_assert!(a < 20, "a too big");
            }
        }
        let err = std::panic::catch_unwind(fails_on_a).unwrap_err();
        let msg = err
            .downcast_ref::<String>()
            .expect("panic payload is a String");
        assert!(
            msg.contains("a = 20") && msg.contains("b = 5"),
            "both arguments shrink independently, got: {msg}"
        );
    }
}
