//! The simulated vector core: functional register file + issue-order
//! timing scoreboard + cache-aware memory system.
//!
//! ## Pipeline model
//!
//! The core has two coupled pipelines, mirroring the SX-Aurora organization
//! (a scalar processor that decodes everything and dispatches vector work to
//! a deep vector-unit queue):
//!
//! * **Frontend / scalar pipe** — issues `scalar_issue_width` instructions
//!   per cycle in program order. Scalar loads are non-blocking
//!   (scoreboarded), but an instruction that *consumes* a scalar value —
//!   e.g. the broadcast operand of a vector FMA — blocks the frontend until
//!   the value is ready. This is what exposes L1 conflict-miss latency in
//!   the DC kernels (paper Section 5.2: "the SIMD lanes starve waiting on
//!   data dependencies from L1").
//! * **Vector pipe** — vector instructions are queued and start in order;
//!   each waits for its source registers and for a free FMA port. A length-
//!   `vl` instruction occupies its port for `ceil(vl/lanes)` cycles and its
//!   destination is ready `occupancy + L_fma` cycles after start. Dependent
//!   FMAs on the same accumulator therefore need `occupancy + L_fma` cycles
//!   of independent work in between — the Formula 1/2/4 mechanism.
//!
//! Vector memory instructions bypass the scalar L1/L2 and are serviced by
//! the LLC (the SX-Aurora vector unit has no L1 allocation for vector
//! accesses); scalar loads walk L1 → L2 → LLC → memory.

use crate::arena::Arena;
use crate::profile::{Profiler, RegionProfile, Snapshot};
use lsv_arch::ArchParams;
use lsv_cache::{banks, Hierarchy, HierarchyStats, Level};

/// Whether to perform the functional f32 arithmetic alongside timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecutionMode {
    /// Compute real values (tests, validation).
    Functional,
    /// Addresses and timing only; register data is not moved (fast sweeps).
    TimingOnly,
}

impl ExecutionMode {
    /// Whether this mode computes real register/memory values (as opposed to
    /// timing alone). Execution backends use this to decide if a simulated
    /// run's output buffers are meaningful.
    pub fn is_functional(self) -> bool {
        matches!(self, ExecutionMode::Functional)
    }
}

/// A scalar value produced by [`VCore::scalar_load`]: the loaded f32 plus the
/// cycle at which it becomes available to consumers.
#[derive(Debug, Clone, Copy)]
pub struct ScalarValue {
    /// The loaded value (0.0 in timing-only mode).
    pub value: f32,
    /// Cycle at which a consumer may read it.
    pub ready: u64,
}

impl ScalarValue {
    /// An immediate constant (ready at cycle 0).
    pub fn constant(value: f32) -> Self {
        Self { value, ready: 0 }
    }
}

/// Dynamic instruction counters (the "kilo instructions" of MPKI).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct InstCounters {
    /// Scalar loads issued.
    pub scalar_loads: u64,
    /// Scalar ALU/address instructions issued.
    pub scalar_ops: u64,
    /// Unit-stride vector loads.
    pub vloads: u64,
    /// Unit-stride vector stores.
    pub vstores: u64,
    /// Vector FMA instructions.
    pub vfmas: u64,
    /// Block gathers.
    pub gathers: u64,
    /// Block scatters.
    pub scatters: u64,
    /// Total f32 multiply-add element operations performed (2 flops each).
    pub fma_elems: u64,
}

impl InstCounters {
    /// Total dynamic instructions.
    pub fn total(&self) -> u64 {
        self.scalar_loads
            + self.scalar_ops
            + self.vloads
            + self.vstores
            + self.vfmas
            + self.gathers
            + self.scatters
    }

    /// Accumulate counters from another core.
    pub fn merge(&mut self, o: &InstCounters) {
        self.scalar_loads += o.scalar_loads;
        self.scalar_ops += o.scalar_ops;
        self.vloads += o.vloads;
        self.vstores += o.vstores;
        self.vfmas += o.vfmas;
        self.gathers += o.gathers;
        self.scatters += o.scatters;
        self.fma_elems += o.fma_elems;
    }
}

/// One retired instruction in the optional trace (see [`VCore::enable_trace`]).
///
/// Memory events carry the base address, the byte `span` of the whole access
/// footprint (`[addr, addr + span)`, including any internal stride gaps), and
/// the arena [`Region`](crate::Region) index the base address falls in —
/// `None` when the address lies outside every recorded allocation. The
/// `lsv-analyze` bounds sanitizer replays kernels with tracing on and checks
/// each footprint against the owning tensor's extent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// Scalar ALU / address instruction.
    ScalarOp,
    /// Scalar load from `addr`.
    ScalarLoad {
        /// Byte address read.
        addr: u64,
        /// Arena region containing `addr`, if any.
        region: Option<u32>,
    },
    /// Scalar store to `addr`.
    ScalarStore {
        /// Byte address written.
        addr: u64,
        /// Arena region containing `addr`, if any.
        region: Option<u32>,
    },
    /// Unit-stride / 2-D / strided vector load into `vr`.
    VLoad {
        /// Destination vector register.
        vr: usize,
        /// First byte address of the footprint.
        addr: u64,
        /// Footprint size in bytes (stride gaps included).
        span: u64,
        /// Arena region containing `addr`, if any.
        region: Option<u32>,
        /// Vector length in elements.
        vl: usize,
    },
    /// Vector store from `vr`.
    VStore {
        /// Source vector register.
        vr: usize,
        /// First byte address of the footprint.
        addr: u64,
        /// Footprint size in bytes (stride gaps included).
        span: u64,
        /// Arena region containing `addr`, if any.
        region: Option<u32>,
        /// Vector length in elements.
        vl: usize,
    },
    /// Register `vr` zeroed (accumulator init, no memory access).
    VZero {
        /// Zeroed vector register.
        vr: usize,
        /// Vector length in elements.
        vl: usize,
    },
    /// Vector FMA writing accumulator `acc` from multiplicand register `w`
    /// (and, for the register-register form, second multiplicand `w2`).
    VFma {
        /// Accumulator register (read-modify-write).
        acc: usize,
        /// Vector multiplicand register.
        w: usize,
        /// Second vector multiplicand (`None` for the broadcast-scalar form).
        w2: Option<usize>,
        /// Vector length in elements.
        vl: usize,
    },
    /// Horizontal reduction of `vr` to a scalar (drains the accumulator).
    VReduce {
        /// Reduced vector register.
        vr: usize,
        /// Vector length in elements.
        vl: usize,
    },
    /// Block gather into `vr`.
    VGather {
        /// Destination vector register.
        vr: usize,
        /// Lowest block base address.
        addr: u64,
        /// Bytes from the lowest block base to the end of the highest block.
        span: u64,
        /// Arena region containing `addr`, if any.
        region: Option<u32>,
        /// Vector length in elements.
        vl: usize,
    },
    /// Block scatter from `vr`.
    VScatter {
        /// Source vector register.
        vr: usize,
        /// Lowest block base address.
        addr: u64,
        /// Bytes from the lowest block base to the end of the highest block.
        span: u64,
        /// Arena region containing `addr`, if any.
        region: Option<u32>,
        /// Vector length in elements.
        vl: usize,
    },
}

/// Aggregate result of a simulated kernel execution on one core.
#[derive(Debug, Default, Clone, Copy)]
pub struct CoreStats {
    /// Total cycles from reset to drain.
    pub cycles: u64,
    /// Dynamic instruction counts.
    pub insts: InstCounters,
    /// Cache hierarchy counters.
    pub cache: HierarchyStats,
    /// Cycles the frontend spent blocked waiting on scalar load data.
    pub stall_scalar: u64,
    /// Cycles vector instructions waited on source registers.
    pub stall_dep: u64,
    /// Cycles vector instructions waited on a free FMA port.
    pub stall_port: u64,
    /// Extra cycles gathers/scatters spent serialized on LLC banks.
    pub bank_serial_cycles: u64,
}

/// Labels of the stall categories, in [`CoreStats::stall_breakdown`] order.
/// Every renderer (probe/report bins, the profiler exports) uses these so the
/// categories stay consistent across the repo.
pub const STALL_LABELS: [&str; 4] = ["stall_scalar", "stall_dep", "stall_port", "bank"];

/// Pair the four stall counters with [`STALL_LABELS`].
pub(crate) fn stall_breakdown_of(
    stall_scalar: u64,
    stall_dep: u64,
    stall_port: u64,
    bank_serial_cycles: u64,
) -> [(&'static str, u64); 4] {
    [
        (STALL_LABELS[0], stall_scalar),
        (STALL_LABELS[1], stall_dep),
        (STALL_LABELS[2], stall_port),
        (STALL_LABELS[3], bank_serial_cycles),
    ]
}

impl CoreStats {
    /// The stall counters as named (label, cycles) pairs — the single source
    /// of truth for rendering stall categories.
    pub fn stall_breakdown(&self) -> [(&'static str, u64); 4] {
        stall_breakdown_of(
            self.stall_scalar,
            self.stall_dep,
            self.stall_port,
            self.bank_serial_cycles,
        )
    }
}

/// The simulated core. One `VCore` models one hardware core; multi-core runs
/// instantiate several over the same [`Arena`].
#[derive(Debug)]
pub struct VCore {
    arch: ArchParams,
    mode: ExecutionMode,
    hier: Hierarchy,
    // --- frontend state ---
    frontier: u64,
    slots_used: usize,
    // --- vector pipe state ---
    vreg_ready: Vec<u64>,
    ports: Vec<u64>,
    vpipe_last_start: u64,
    // --- functional register file ---
    /// Architected vector length (elements per register).
    vlen: usize,
    /// Flat register arena: register `vr` owns `[vr * vlen, (vr + 1) * vlen)`.
    /// Empty in [`ExecutionMode::TimingOnly`]. One allocation for the whole
    /// file — per-instruction paths only ever borrow slices of it.
    vregs: Vec<f32>,
    /// Reusable line-address buffer for the gather/scatter banking model
    /// (grown once, then recycled via `mem::take` on every call).
    line_scratch: Vec<u64>,
    // --- accounting ---
    /// Introspection mode: record the instruction stream (operands, footprints,
    /// regions) but skip all cache-hierarchy and scoreboard work. Used by the
    /// `lsv-analyze` symbolic lift, which needs the stream, not the timing.
    introspect: bool,
    trace: Option<Vec<TraceEvent>>,
    profiler: Option<Box<Profiler>>,
    counters: InstCounters,
    stall_scalar: u64,
    stall_dep: u64,
    stall_port: u64,
    bank_serial_cycles: u64,
}

impl VCore {
    /// Build a core for `arch`. `llc_share` divides the modelled LLC capacity
    /// (pass `arch.cores` when all cores are active; see
    /// [`Hierarchy::for_core`]).
    pub fn new(arch: &ArchParams, mode: ExecutionMode, llc_share: usize) -> Self {
        Self::with_hierarchy(arch, mode, Hierarchy::for_core(arch, llc_share))
    }

    /// Build a core whose LLC is a shared instance (the detailed multi-core
    /// model: every core's misses and fills land in the same physical LLC).
    pub fn new_with_shared_llc(
        arch: &ArchParams,
        mode: ExecutionMode,
        llc: lsv_cache::SharedLlc,
    ) -> Self {
        Self::with_hierarchy(arch, mode, Hierarchy::for_core_with_llc(arch, llc))
    }

    fn with_hierarchy(arch: &ArchParams, mode: ExecutionMode, hier: Hierarchy) -> Self {
        let n_vlen = arch.n_vlen();
        let vregs = match mode {
            ExecutionMode::Functional => vec![0.0; n_vlen * arch.n_vregs],
            ExecutionMode::TimingOnly => Vec::new(),
        };
        Self {
            hier,
            introspect: false,
            trace: None,
            profiler: None,
            vreg_ready: vec![0; arch.n_vregs],
            ports: vec![0; arch.n_fma],
            vpipe_last_start: 0,
            vlen: n_vlen,
            vregs,
            line_scratch: Vec::new(),
            frontier: 0,
            slots_used: 0,
            counters: InstCounters::default(),
            stall_scalar: 0,
            stall_dep: 0,
            stall_port: 0,
            bank_serial_cycles: 0,
            mode,
            arch: arch.clone(),
        }
    }

    /// Build a core that only *records* the instruction stream: every
    /// instruction is traced with its operands, footprint, and arena region,
    /// but the cache hierarchy, scoreboard, and functional register file are
    /// never touched. This is the stream-introspection hook the `lsv-analyze`
    /// symbolic lift runs kernels through — orders of magnitude cheaper than
    /// a simulated replay, and deliberately permissive: illegal register
    /// indices or vector lengths are recorded (so the analyzer can *deny*
    /// them) instead of asserting.
    pub fn new_introspect(arch: &ArchParams) -> Self {
        let mut core = Self::new(arch, ExecutionMode::TimingOnly, 1);
        core.introspect = true;
        core.trace = Some(Vec::new());
        core
    }

    /// Whether this core was built with [`VCore::new_introspect`].
    pub fn is_introspect(&self) -> bool {
        self.introspect
    }

    /// Take ownership of the recorded trace, leaving tracing enabled with an
    /// empty buffer (so one introspect core can record several streams).
    pub fn take_trace(&mut self) -> Option<Vec<TraceEvent>> {
        self.trace.replace(Vec::new())
    }

    /// The architecture this core models.
    pub fn arch(&self) -> &ArchParams {
        &self.arch
    }

    /// The execution mode.
    pub fn mode(&self) -> ExecutionMode {
        self.mode
    }

    /// Record every retired instruction into an in-memory trace (testing /
    /// kernel-structure inspection; costs memory proportional to the run).
    pub fn enable_trace(&mut self) {
        self.trace = Some(Vec::new());
    }

    /// The recorded trace, if [`VCore::enable_trace`] was called.
    pub fn trace(&self) -> Option<&[TraceEvent]> {
        self.trace.as_deref()
    }

    #[inline]
    fn record(&mut self, ev: TraceEvent) {
        if let Some(t) = self.trace.as_mut() {
            t.push(ev);
        }
    }

    /// Region lookup for trace tagging; skipped entirely when tracing is off
    /// so the hot path pays nothing for the richer events.
    #[inline]
    fn trace_region(&self, arena: &Arena, addr: u64) -> Option<u32> {
        if self.trace.is_some() {
            arena.region_of(addr)
        } else {
            None
        }
    }

    // ---------------------------------------------------------------- profiling

    /// Attribute cycles, stalls, instructions, and cache events to named
    /// kernel regions (see [`crate::profile`]). Profiling is cycle-neutral:
    /// region markers never touch the timing state, so enabling it changes no
    /// simulated result. Disabled (the default), each marker costs one branch.
    pub fn enable_profiler(&mut self) {
        self.profiler = Some(Box::new(Profiler::new()));
    }

    /// Whether [`VCore::enable_profiler`] was called (and the profile not yet
    /// taken).
    pub fn profiling(&self) -> bool {
        self.profiler.is_some()
    }

    /// Capture every monotonic counter plus the current timing horizon — the
    /// same maximum [`VCore::drain`] reports as total cycles.
    fn profile_snapshot(&self, horizon: u64) -> Snapshot {
        Snapshot {
            horizon,
            stall_scalar: self.stall_scalar,
            stall_dep: self.stall_dep,
            stall_port: self.stall_port,
            bank_serial_cycles: self.bank_serial_cycles,
            insts: self.counters,
            cache: self.hier.stats(),
        }
    }

    /// Enter a named profiling region (nestable). No-op unless
    /// [`VCore::enable_profiler`] was called.
    #[inline]
    pub fn region_enter(&mut self, name: &'static str) {
        if self.profiler.is_none() {
            return;
        }
        let snap = self.profile_snapshot(self.horizon());
        if let Some(p) = self.profiler.as_mut() {
            p.enter(name, snap);
        }
    }

    /// Exit the innermost profiling region. No-op unless
    /// [`VCore::enable_profiler`] was called.
    #[inline]
    pub fn region_exit(&mut self) {
        if self.profiler.is_none() {
            return;
        }
        let snap = self.profile_snapshot(self.horizon());
        if let Some(p) = self.profiler.as_mut() {
            p.exit(snap);
        }
    }

    /// Drain the core and take the finished profile. Returns `None` if the
    /// profiler was never enabled. `profile.total` holds the same
    /// [`CoreStats`] a plain [`VCore::drain`] would return.
    pub fn take_profile(&mut self) -> Option<RegionProfile> {
        let total = self.drain();
        self.profiler.take().map(|p| p.finish(total))
    }

    // ---------------------------------------------------------------- frontend

    /// Claim one frontend issue slot, returning the issue cycle.
    #[inline]
    fn issue_slot(&mut self) -> u64 {
        if self.slots_used >= self.arch.scalar_issue_width {
            self.frontier += 1;
            self.slots_used = 0;
        }
        self.slots_used += 1;
        self.frontier
    }

    /// Block the frontend until `cycle` (operand-use stall).
    #[inline]
    fn block_frontend(&mut self, cycle: u64, kind_scalar: bool) {
        if cycle > self.frontier {
            let d = cycle - self.frontier;
            if kind_scalar {
                self.stall_scalar += d;
            }
            self.frontier = cycle;
            self.slots_used = 0;
        }
    }

    /// One scalar ALU / address-update instruction.
    #[inline]
    pub fn scalar_op(&mut self) {
        self.counters.scalar_ops += 1;
        self.record(TraceEvent::ScalarOp);
        if self.introspect {
            return;
        }
        self.issue_slot();
    }

    /// `n` scalar ALU instructions (loop bookkeeping). Equivalent to `n`
    /// [`VCore::scalar_op`] calls, but the frontier advances arithmetically
    /// in O(1) instead of claiming issue slots one at a time.
    #[inline]
    pub fn scalar_ops(&mut self, n: usize) {
        if n == 0 {
            return;
        }
        if self.trace.is_some() || self.introspect {
            for _ in 0..n {
                self.scalar_op();
            }
            return;
        }
        self.counters.scalar_ops += n as u64;
        let w = self.arch.scalar_issue_width;
        let total = self.slots_used + n - 1;
        self.frontier += (total / w) as u64;
        self.slots_used = total % w + 1;
    }

    /// A scalar load through L1 → L2 → LLC → memory.
    #[inline]
    pub fn scalar_load(&mut self, arena: &Arena, addr: u64) -> ScalarValue {
        self.counters.scalar_loads += 1;
        let region = self.trace_region(arena, addr);
        self.record(TraceEvent::ScalarLoad { addr, region });
        if self.introspect {
            return ScalarValue {
                value: 0.0,
                ready: 0,
            };
        }
        let t = self.issue_slot();
        let out = self.hier.access_line(addr, false);
        let value = match self.mode {
            ExecutionMode::Functional => arena.read(addr),
            ExecutionMode::TimingOnly => 0.0,
        };
        ScalarValue {
            value,
            ready: t + out.latency,
        }
    }

    /// A scalar store through the data-cache hierarchy.
    #[inline]
    pub fn scalar_store(&mut self, arena: &mut Arena, addr: u64, value: f32) {
        self.counters.scalar_ops += 1;
        let region = self.trace_region(arena, addr);
        self.record(TraceEvent::ScalarStore { addr, region });
        if self.introspect {
            return;
        }
        self.issue_slot();
        self.hier.access_line(addr, true);
        if matches!(self.mode, ExecutionMode::Functional) {
            arena.write(addr, value);
        }
    }

    // ------------------------------------------------------------- vector pipe

    /// Start a vector instruction on the vector pipe: waits for in-order
    /// start, source registers, and (if `use_port`) a free FMA port.
    /// Returns (start_cycle, port_index or usize::MAX).
    fn vpipe_start(&mut self, dispatch: u64, srcs_ready: u64, use_port: bool) -> (u64, usize) {
        let mut start = dispatch.max(self.vpipe_last_start);
        if srcs_ready > start {
            self.stall_dep += srcs_ready - start;
            start = srcs_ready;
        }
        let port = if use_port {
            let mut idx = 0;
            let mut free = self.ports[0];
            for (i, &f) in self.ports.iter().enumerate().skip(1) {
                if f < free {
                    idx = i;
                    free = f;
                }
            }
            if free > start {
                self.stall_port += free - start;
                start = free;
            }
            idx
        } else {
            usize::MAX
        };
        self.vpipe_last_start = start;
        (start, port)
    }

    /// Touch every line of `[addr, addr+bytes)` at the LLC; returns the
    /// worst serviced latency and the number of lines that went to memory.
    #[inline]
    fn touch_llc_range(&mut self, addr: u64, bytes: u64, write: bool) -> (u64, u64) {
        self.hier.access_range_llc(addr, bytes, write)
    }

    /// Borrow register `vr`'s live prefix (functional mode only).
    #[inline]
    fn reg(&self, vr: usize, vl: usize) -> &[f32] {
        &self.vregs[vr * self.vlen..vr * self.vlen + vl]
    }

    /// Mutably borrow register `vr`'s live prefix (functional mode only).
    #[inline]
    fn reg_mut(&mut self, vr: usize, vl: usize) -> &mut [f32] {
        &mut self.vregs[vr * self.vlen..vr * self.vlen + vl]
    }

    /// Charge main-memory bandwidth: vector transfers of lines that missed
    /// all caches occupy the memory pipe for `mem_line_cycles` per line.
    #[inline]
    fn charge_mem_bw(&mut self, start: u64, mem_lines: u64) -> u64 {
        let bw = mem_lines * self.arch.mem_line_cycles;
        if bw > 0 {
            self.vpipe_last_start = self.vpipe_last_start.max(start + bw);
        }
        bw
    }

    fn assert_vr(&self, vr: usize, vl: usize) {
        if self.introspect {
            // Introspection deliberately records illegal operands so the
            // symbolic analyzer can deny them (VL-EXCEEDS, REG-PRESSURE)
            // instead of the simulator asserting.
            return;
        }
        debug_assert!(vr < self.arch.n_vregs, "vector register {vr} out of range");
        debug_assert!(vl >= 1 && vl <= self.arch.n_vlen(), "vl {vl} out of range");
    }

    /// Unit-stride vector load of `vl` elements into register `vr`.
    ///
    /// Serviced by the LLC (vector memory accesses bypass the scalar L1/L2 on
    /// the modelled machine); charges the worst line's latency once plus the
    /// port-free occupancy (streaming transfer).
    pub fn vload(&mut self, arena: &Arena, vr: usize, addr: u64, vl: usize) {
        self.assert_vr(vr, vl);
        self.counters.vloads += 1;
        let region = self.trace_region(arena, addr);
        self.record(TraceEvent::VLoad {
            vr,
            addr,
            span: (vl * 4) as u64,
            region,
            vl,
        });
        if self.introspect {
            return;
        }
        let dispatch = self.issue_slot();
        let (worst, mem_lines) = self.touch_llc_range(addr, (vl * 4) as u64, false);
        let (start, _) = self.vpipe_start(dispatch, 0, false);
        let occ = self.arch.vector_occupancy(vl);
        let bw = self.charge_mem_bw(start, mem_lines);
        self.vreg_ready[vr] = start + worst + occ + bw;
        if matches!(self.mode, ExecutionMode::Functional) {
            let src = arena.slice(addr, vl);
            self.reg_mut(vr, vl).copy_from_slice(src);
        }
    }

    /// Unit-stride vector store of `vl` elements from register `vr`.
    pub fn vstore(&mut self, arena: &mut Arena, vr: usize, addr: u64, vl: usize) {
        self.assert_vr(vr, vl);
        self.counters.vstores += 1;
        let region = self.trace_region(arena, addr);
        self.record(TraceEvent::VStore {
            vr,
            addr,
            span: (vl * 4) as u64,
            region,
            vl,
        });
        if self.introspect {
            return;
        }
        let dispatch = self.issue_slot();
        let (_worst, mem_lines) = self.touch_llc_range(addr, (vl * 4) as u64, true);
        let srcs = self.vreg_ready[vr];
        let (start, _) = self.vpipe_start(dispatch, srcs, false);
        self.charge_mem_bw(start, mem_lines);
        if matches!(self.mode, ExecutionMode::Functional) {
            // `vregs` and the arena are distinct objects: the register file
            // is borrowed in place, no staging copy.
            arena.store_slice(addr, &self.vregs[vr * self.vlen..vr * self.vlen + vl]);
        }
    }

    /// Two-dimensional vector load (the SX-Aurora `vld2d` style used by
    /// vendor libraries): `rows` segments of `row_elems` contiguous elements
    /// each, consecutive segments `row_stride_bytes` apart, concatenated
    /// into `vr`. Serviced by the LLC like all vector memory accesses.
    pub fn vload_rows(
        &mut self,
        arena: &Arena,
        vr: usize,
        addr: u64,
        row_elems: usize,
        row_stride_bytes: u64,
        rows: usize,
    ) {
        let vl = row_elems * rows;
        self.assert_vr(vr, vl);
        self.counters.vloads += 1;
        let region = self.trace_region(arena, addr);
        self.record(TraceEvent::VLoad {
            vr,
            addr,
            span: (rows as u64 - 1) * row_stride_bytes + (row_elems * 4) as u64,
            region,
            vl,
        });
        if self.introspect {
            return;
        }
        let dispatch = self.issue_slot();
        let mut worst = 0u64;
        let mut mem_lines = 0u64;
        for r in 0..rows {
            let base = addr + r as u64 * row_stride_bytes;
            let (w, m) = self.touch_llc_range(base, (row_elems * 4) as u64, false);
            worst = worst.max(w);
            mem_lines += m;
        }
        let (start, _) = self.vpipe_start(dispatch, 0, false);
        let occ = self.arch.vector_occupancy(vl);
        let bw = self.charge_mem_bw(start, mem_lines);
        self.vreg_ready[vr] = start + worst + occ + bw;
        if matches!(self.mode, ExecutionMode::Functional) {
            let dst = self.reg_mut(vr, vl);
            for r in 0..rows {
                let base = addr + r as u64 * row_stride_bytes;
                let src = arena.slice(base, row_elems);
                dst[r * row_elems..(r + 1) * row_elems].copy_from_slice(src);
            }
        }
    }

    /// Two-dimensional vector store: the inverse of [`VCore::vload_rows`].
    pub fn vstore_rows(
        &mut self,
        arena: &mut Arena,
        vr: usize,
        addr: u64,
        row_elems: usize,
        row_stride_bytes: u64,
        rows: usize,
    ) {
        let vl = row_elems * rows;
        self.assert_vr(vr, vl);
        self.counters.vstores += 1;
        let region = self.trace_region(arena, addr);
        self.record(TraceEvent::VStore {
            vr,
            addr,
            span: (rows as u64 - 1) * row_stride_bytes + (row_elems * 4) as u64,
            region,
            vl,
        });
        if self.introspect {
            return;
        }
        let dispatch = self.issue_slot();
        let mut mem_lines = 0u64;
        for r in 0..rows {
            let base = addr + r as u64 * row_stride_bytes;
            let (_w, m) = self.touch_llc_range(base, (row_elems * 4) as u64, true);
            mem_lines += m;
        }
        let srcs = self.vreg_ready[vr];
        let (start, _) = self.vpipe_start(dispatch, srcs, false);
        self.charge_mem_bw(start, mem_lines);
        if matches!(self.mode, ExecutionMode::Functional) {
            let src = &self.vregs[vr * self.vlen..vr * self.vlen + vl];
            for r in 0..rows {
                let base = addr + r as u64 * row_stride_bytes;
                arena.store_slice(base, &src[r * row_elems..(r + 1) * row_elems]);
            }
        }
    }

    /// Strided vector load: `count` elements spaced `stride_bytes` apart
    /// (e.g. a stride-2 convolution reading every other pixel). Touches
    /// every covered line, so a stride of `2*elem` costs roughly twice the
    /// line traffic of a unit-stride load of the same length.
    pub fn vload_strided(
        &mut self,
        arena: &Arena,
        vr: usize,
        addr: u64,
        stride_bytes: u64,
        count: usize,
    ) {
        self.assert_vr(vr, count);
        self.counters.vloads += 1;
        let region = self.trace_region(arena, addr);
        self.record(TraceEvent::VLoad {
            vr,
            addr,
            span: (count as u64 - 1) * stride_bytes + 4,
            region,
            vl: count,
        });
        if self.introspect {
            return;
        }
        let dispatch = self.issue_slot();
        let (worst, mem_lines) = self
            .hier
            .access_strided_llc(addr, stride_bytes, count, false);
        let (start, _) = self.vpipe_start(dispatch, 0, false);
        let occ = self.arch.vector_occupancy(count);
        let bw = self.charge_mem_bw(start, mem_lines);
        // Strided accesses cannot use the full line bandwidth: charge the
        // stride expansion on the transfer.
        let expansion = (stride_bytes / 4).clamp(1, 4);
        self.vreg_ready[vr] = start + worst + occ * expansion + bw;
        if matches!(self.mode, ExecutionMode::Functional) {
            let dst = &mut self.vregs[vr * self.vlen..vr * self.vlen + count];
            for (i, d) in dst.iter_mut().enumerate() {
                *d = arena.read(addr + i as u64 * stride_bytes);
            }
        }
    }

    /// Strided vector store: the inverse of [`VCore::vload_strided`].
    pub fn vstore_strided(
        &mut self,
        arena: &mut Arena,
        vr: usize,
        addr: u64,
        stride_bytes: u64,
        count: usize,
    ) {
        self.assert_vr(vr, count);
        self.counters.vstores += 1;
        let region = self.trace_region(arena, addr);
        self.record(TraceEvent::VStore {
            vr,
            addr,
            span: (count as u64 - 1) * stride_bytes + 4,
            region,
            vl: count,
        });
        if self.introspect {
            return;
        }
        let dispatch = self.issue_slot();
        let (_worst, mem_lines) = self
            .hier
            .access_strided_llc(addr, stride_bytes, count, true);
        let srcs = self.vreg_ready[vr];
        let (start, _) = self.vpipe_start(dispatch, srcs, false);
        self.charge_mem_bw(start, mem_lines);
        if matches!(self.mode, ExecutionMode::Functional) {
            let src = &self.vregs[vr * self.vlen..vr * self.vlen + count];
            for (i, &v) in src.iter().enumerate() {
                arena.write(addr + i as u64 * stride_bytes, v);
            }
        }
    }

    /// Zero register `vr` (accumulator init without a memory access).
    pub fn vbroadcast_zero(&mut self, vr: usize, vl: usize) {
        self.assert_vr(vr, vl);
        self.counters.scalar_ops += 1; // modelled as a cheap vector-mask op
        self.record(TraceEvent::VZero { vr, vl });
        if self.introspect {
            return;
        }
        let dispatch = self.issue_slot();
        let (start, _) = self.vpipe_start(dispatch, 0, false);
        self.vreg_ready[vr] = start + 1;
        if matches!(self.mode, ExecutionMode::Functional) {
            self.reg_mut(vr, vl).fill(0.0);
        }
    }

    /// Vector FMA with broadcast scalar multiplicand:
    /// `acc[0..vl] += w[0..vl] * scalar` (Algorithm 2 line 17).
    ///
    /// The frontend blocks until the scalar operand is ready (dispatch-time
    /// read of the scalar register file); the vector pipe then waits for the
    /// accumulator, the weights register, and a free FMA port.
    pub fn vfma_bcast(&mut self, acc: usize, w: usize, scalar: ScalarValue, vl: usize) {
        self.assert_vr(acc, vl);
        self.assert_vr(w, vl);
        self.counters.vfmas += 1;
        self.counters.fma_elems += vl as u64;
        self.record(TraceEvent::VFma {
            acc,
            w,
            w2: None,
            vl,
        });
        if self.introspect {
            return;
        }
        let mut dispatch = self.issue_slot();
        let blocking = scalar.ready.saturating_sub(self.arch.scalar_forward_window);
        if blocking > dispatch {
            self.block_frontend(blocking, true);
            dispatch = self.frontier;
        }
        let srcs = self.vreg_ready[acc].max(self.vreg_ready[w]);
        let (start, port) = self.vpipe_start(dispatch, srcs, true);
        let occ = self.arch.vector_occupancy(vl);
        self.ports[port] = start + occ;
        self.vreg_ready[acc] = start + occ + self.arch.l_fma as u64;
        if matches!(self.mode, ExecutionMode::Functional) {
            let s = scalar.value;
            // Split borrows: `acc` and `w` are distinct registers.
            debug_assert_ne!(acc, w, "FMA accumulator aliases weights register");
            let vlen = self.vlen;
            let (a_slice, w_slice) = if acc < w {
                let (lo, hi) = self.vregs.split_at_mut(w * vlen);
                (&mut lo[acc * vlen..acc * vlen + vl], &hi[..vl])
            } else {
                let (lo, hi) = self.vregs.split_at_mut(acc * vlen);
                (&mut hi[..vl], &lo[w * vlen..w * vlen + vl])
            };
            for (a, &b) in a_slice.iter_mut().zip(w_slice.iter()) {
                *a += b * s;
            }
        }
    }

    /// Elementwise vector multiply-accumulate of two vector registers:
    /// `acc[0..vl] += x[0..vl] * y[0..vl]` (used by the vednn baseline and
    /// the bwd-weights kernels where both multiplicands are vectors).
    pub fn vfma_vv(&mut self, acc: usize, x: usize, y: usize, vl: usize) {
        self.assert_vr(acc, vl);
        self.assert_vr(x, vl);
        self.assert_vr(y, vl);
        self.counters.vfmas += 1;
        self.counters.fma_elems += vl as u64;
        self.record(TraceEvent::VFma {
            acc,
            w: x,
            w2: Some(y),
            vl,
        });
        if self.introspect {
            return;
        }
        let dispatch = self.issue_slot();
        let srcs = self.vreg_ready[acc]
            .max(self.vreg_ready[x])
            .max(self.vreg_ready[y]);
        let (start, port) = self.vpipe_start(dispatch, srcs, true);
        let occ = self.arch.vector_occupancy(vl);
        self.ports[port] = start + occ;
        self.vreg_ready[acc] = start + occ + self.arch.l_fma as u64;
        if matches!(self.mode, ExecutionMode::Functional) {
            // Disjoint borrows around the accumulator's block: the sources may
            // alias each other (`x == y` squares a register) but never the
            // accumulator.
            debug_assert!(acc != x && acc != y, "FMA accumulator aliases a source");
            let vlen = self.vlen;
            let (below, rest) = self.vregs.split_at_mut(acc * vlen);
            let (a_slice, above) = rest.split_at_mut(vlen);
            let a_slice = &mut a_slice[..vl];
            let side = |r: usize| -> &[f32] {
                if r < acc {
                    &below[r * vlen..r * vlen + vl]
                } else {
                    let off = (r - acc - 1) * vlen;
                    &above[off..off + vl]
                }
            };
            let (xs, ys) = (side(x), side(y));
            for ((a, &b), &c) in a_slice.iter_mut().zip(xs).zip(ys) {
                *a += b * c;
            }
        }
    }

    /// Horizontal sum of `vl` elements of register `vr`, returned as a scalar
    /// (used by bwd-weights reductions). Costs one vector instruction with a
    /// log-depth tail.
    pub fn vreduce_sum(&mut self, vr: usize, vl: usize) -> ScalarValue {
        self.assert_vr(vr, vl);
        self.counters.vfmas += 1;
        self.record(TraceEvent::VReduce { vr, vl });
        if self.introspect {
            return ScalarValue {
                value: 0.0,
                ready: 0,
            };
        }
        let dispatch = self.issue_slot();
        let srcs = self.vreg_ready[vr];
        let (start, port) = self.vpipe_start(dispatch, srcs, true);
        let occ = self.arch.vector_occupancy(vl);
        self.ports[port] = start + occ;
        let tail = (usize::BITS - (vl.max(2) - 1).leading_zeros()) as u64;
        let ready = start + occ + self.arch.l_fma as u64 + tail;
        let value = match self.mode {
            ExecutionMode::Functional => self.reg(vr, vl).iter().sum(),
            ExecutionMode::TimingOnly => 0.0,
        };
        ScalarValue { value, ready }
    }

    /// Coarse-grain block gather (Section 6.3): load `blocks.len()` blocks of
    /// `block_elems` contiguous elements each into `vr`, concatenated.
    ///
    /// Serviced by the LLC with bank serialization: the transfer takes the
    /// worst line's latency plus `max_lines_per_bank * service` cycles.
    pub fn vgather_blocks(&mut self, arena: &Arena, vr: usize, blocks: &[u64], block_elems: usize) {
        let vl = blocks.len() * block_elems;
        self.assert_vr(vr, vl);
        self.counters.gathers += 1;
        if self.trace.is_some() {
            let lo = blocks.iter().copied().min().unwrap_or(0);
            let hi = blocks.iter().copied().max().unwrap_or(0);
            self.record(TraceEvent::VGather {
                vr,
                addr: lo,
                span: hi - lo + (block_elems * 4) as u64,
                region: arena.region_of(lo),
                vl,
            });
        }
        if self.introspect {
            return;
        }
        let dispatch = self.issue_slot();
        let line = self.hier.line_bytes() as u64;
        let mut line_addrs = std::mem::take(&mut self.line_scratch);
        line_addrs.clear();
        let (worst, mem_lines) =
            self.hier
                .access_blocks_llc(blocks, (block_elems * 4) as u64, false, &mut line_addrs);
        let serial = banks::gather_service_cycles(
            line_addrs.iter().copied(),
            line as usize,
            &self.arch.llc_banking,
        );
        self.line_scratch = line_addrs;
        let parallel_floor = self.arch.llc_banking.service_cycles;
        let extra = serial.saturating_sub(parallel_floor);
        self.bank_serial_cycles += extra;
        let (start, _) = self.vpipe_start(dispatch, 0, false);
        let occ = self.arch.vector_occupancy(vl);
        let bw = self.charge_mem_bw(start, mem_lines);
        // Serialized bank service occupies the LLC pipe: later vector memory
        // instructions queue behind it (throughput cost, not just latency).
        self.vpipe_last_start = self.vpipe_last_start.max(start + extra);
        self.vreg_ready[vr] = start + worst + occ + extra + bw;
        if matches!(self.mode, ExecutionMode::Functional) {
            let dst = self.reg_mut(vr, vl);
            for (i, &b) in blocks.iter().enumerate() {
                let src = arena.slice(b, block_elems);
                dst[i * block_elems..(i + 1) * block_elems].copy_from_slice(src);
            }
        }
    }

    /// Coarse-grain block scatter: store `blocks.len()` blocks of
    /// `block_elems` contiguous elements each from `vr`.
    pub fn vscatter_blocks(
        &mut self,
        arena: &mut Arena,
        vr: usize,
        blocks: &[u64],
        block_elems: usize,
    ) {
        let vl = blocks.len() * block_elems;
        self.assert_vr(vr, vl);
        self.counters.scatters += 1;
        if self.trace.is_some() {
            let lo = blocks.iter().copied().min().unwrap_or(0);
            let hi = blocks.iter().copied().max().unwrap_or(0);
            self.record(TraceEvent::VScatter {
                vr,
                addr: lo,
                span: hi - lo + (block_elems * 4) as u64,
                region: arena.region_of(lo),
                vl,
            });
        }
        if self.introspect {
            return;
        }
        let dispatch = self.issue_slot();
        let line = self.hier.line_bytes() as u64;
        let mut line_addrs = std::mem::take(&mut self.line_scratch);
        line_addrs.clear();
        let (_worst, mem_lines) =
            self.hier
                .access_blocks_llc(blocks, (block_elems * 4) as u64, true, &mut line_addrs);
        let serial = banks::gather_service_cycles(
            line_addrs.iter().copied(),
            line as usize,
            &self.arch.llc_banking,
        );
        self.line_scratch = line_addrs;
        let extra = serial.saturating_sub(self.arch.llc_banking.service_cycles);
        self.bank_serial_cycles += extra;
        let srcs = self.vreg_ready[vr];
        let (start, _) = self.vpipe_start(dispatch, srcs, false);
        // The scatter holds the vector pipe for the serialized portion.
        self.vpipe_last_start = start + extra;
        self.charge_mem_bw(start, mem_lines);
        if matches!(self.mode, ExecutionMode::Functional) {
            let src = &self.vregs[vr * self.vlen..vr * self.vlen + vl];
            for (i, &b) in blocks.iter().enumerate() {
                arena.store_slice(b, &src[i * block_elems..(i + 1) * block_elems]);
            }
        }
    }

    // ------------------------------------------------------------- accounting

    /// Read a functional register (tests only).
    ///
    /// # Panics
    /// Panics with a description of the failing condition if `vr` is outside
    /// the architected register file or the core was built in
    /// [`ExecutionMode::TimingOnly`] (which keeps no register data).
    pub fn vreg(&self, vr: usize) -> &[f32] {
        assert!(
            vr < self.arch.n_vregs,
            "VCore::vreg({vr}): register index out of range, \
             the architecture has {} vector registers",
            self.arch.n_vregs
        );
        assert!(
            matches!(self.mode, ExecutionMode::Functional),
            "VCore::vreg({vr}): register data is only kept in Functional mode, \
             this core runs in TimingOnly mode"
        );
        &self.vregs[vr * self.vlen..(vr + 1) * self.vlen]
    }

    /// The cycle at which all in-flight work completes: the maximum over the
    /// frontend frontier, every register's ready time, every port's busy
    /// time, and the vector pipe's last start. [`VCore::drain`] reports this
    /// as total cycles; the profiler snapshots it at region boundaries.
    fn horizon(&self) -> u64 {
        let mut end = self.frontier;
        for &r in &self.vreg_ready {
            end = end.max(r);
        }
        for &p in &self.ports {
            end = end.max(p);
        }
        end.max(self.vpipe_last_start)
    }

    /// Wait for all in-flight work and return the final statistics.
    pub fn drain(&mut self) -> CoreStats {
        let end = self.horizon();
        if self.profiler.is_some() {
            let snap = self.profile_snapshot(end);
            if let Some(p) = self.profiler.as_mut() {
                p.sync(snap);
            }
        }
        CoreStats {
            cycles: end,
            insts: self.counters,
            cache: self.hier.stats(),
            stall_scalar: self.stall_scalar,
            stall_dep: self.stall_dep,
            stall_port: self.stall_port,
            bank_serial_cycles: self.bank_serial_cycles,
        }
    }

    /// Reset timing and statistics but keep cache *contents* — used to
    /// measure a steady-state iteration after a warm-up pass.
    pub fn reset_timing(&mut self) {
        self.frontier = 0;
        self.slots_used = 0;
        self.vreg_ready.fill(0);
        self.ports.fill(0);
        self.vpipe_last_start = 0;
        self.counters = InstCounters::default();
        self.stall_scalar = 0;
        self.stall_dep = 0;
        self.stall_port = 0;
        self.bank_serial_cycles = 0;
        self.hier.reset_stats();
        if self.profiler.is_some() {
            self.profiler = Some(Box::new(Profiler::new()));
        }
    }

    /// Access the hierarchy (diagnostics).
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.hier
    }

    /// Mutable access to the hierarchy (prefetch-degree ablations).
    pub fn hierarchy_mut(&mut self) -> &mut Hierarchy {
        &mut self.hier
    }

    /// Warm the LLC with an address range (no stats, no cycles). Models the
    /// benchmark methodology of repeated timed iterations over the same
    /// operand buffers: inputs are LLC-resident when the measured iteration
    /// starts (the artifact's benchdnn loop).
    pub fn warm_llc(&mut self, addr: u64, bytes: u64) {
        self.hier.warm_llc_range(addr, bytes);
    }

    /// Latency the hierarchy charges for `level` (re-exported for models).
    pub fn latency_of(&self, level: Level) -> u64 {
        self.hier.latency_of(level)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsv_arch::presets::sx_aurora;

    fn functional_core() -> (VCore, Arena) {
        (
            VCore::new(&sx_aurora(), ExecutionMode::Functional, 1),
            Arena::new(),
        )
    }

    #[test]
    fn vload_vfma_vstore_roundtrip() {
        let (mut c, mut a) = functional_core();
        let src = a.alloc(512);
        let dst = a.alloc(512);
        let w: Vec<f32> = (0..512).map(|i| i as f32).collect();
        a.store_slice(src, &w);
        c.vload(&a, 1, src, 512);
        c.vbroadcast_zero(0, 512);
        c.vfma_bcast(0, 1, ScalarValue::constant(2.0), 512);
        c.vstore(&mut a, 0, dst, 512);
        let out = a.load_vec(dst, 512);
        for (i, &v) in out.iter().enumerate() {
            assert_eq!(v, 2.0 * i as f32);
        }
        let stats = c.drain();
        assert_eq!(stats.insts.vfmas, 1);
        assert_eq!(stats.insts.fma_elems, 512);
        assert!(stats.cycles > 0);
    }

    #[test]
    fn dependent_fmas_expose_latency() {
        // A single accumulator chain of FMAs is latency-bound:
        // each FMA waits occupancy + l_fma after the previous start.
        let arch = sx_aurora();
        let (mut c, mut a) = functional_core();
        let src = a.alloc(512);
        c.vload(&a, 1, src, 512);
        c.vbroadcast_zero(0, 512);
        let n = 100;
        for _ in 0..n {
            c.vfma_bcast(0, 1, ScalarValue::constant(1.0), 512);
        }
        let chain = c.drain();
        let min_chain = n * (arch.vector_occupancy(512) + arch.l_fma as u64);
        assert!(
            chain.cycles >= min_chain,
            "chained FMAs: {} cycles < {}",
            chain.cycles,
            min_chain
        );
        assert!(chain.stall_dep > 0);
    }

    #[test]
    fn independent_chains_hide_latency() {
        // 24 independent accumulators reach (near) port-limited throughput.
        let arch = sx_aurora();
        let (mut c, mut a) = functional_core();
        let src = a.alloc(512);
        c.vload(&a, 30, src, 512);
        for vr in 0..24 {
            c.vbroadcast_zero(vr, 512);
        }
        let rounds = 100u64;
        for _ in 0..rounds {
            for vr in 0..24 {
                c.vfma_bcast(vr, 30, ScalarValue::constant(1.0), 512);
            }
        }
        let s = c.drain();
        // Port-limited bound: total_fmas * occ / n_fma.
        let port_bound = rounds * 24 * arch.vector_occupancy(512) / arch.n_fma as u64;
        assert!(
            s.cycles < port_bound * 12 / 10,
            "interleaved FMAs should be near port bound: {} vs {}",
            s.cycles,
            port_bound
        );
    }

    #[test]
    fn scalar_load_blocks_consumer_not_issue() {
        let (mut c, mut a) = functional_core();
        let base = a.alloc(16);
        a.write(base, 7.0);
        let sv = c.scalar_load(&a, base);
        assert_eq!(sv.value, 7.0);
        // first touch misses all the way to memory
        assert!(sv.ready >= sx_aurora().lat.mem);
        // second load of the same line is an L1 hit
        let sv2 = c.scalar_load(&a, base + 4);
        assert!(sv2.ready < sv.ready + sx_aurora().lat.l1 + 4);
    }

    #[test]
    fn gather_bank_serialization_charged() {
        let arch = sx_aurora();
        let (mut c, mut a) = functional_core();
        // 16 blocks of 32 elements, block stride = 16 lines -> same bank.
        let stride_bytes = 16 * 128u64;
        let total = (16 * stride_bytes / 4) as usize + 32;
        let base = a.alloc(total);
        let blocks: Vec<u64> = (0..16).map(|i| base + i * stride_bytes).collect();
        for (i, &b) in blocks.iter().enumerate() {
            for e in 0..32 {
                a.write(b + e * 4, (i * 32) as f32 + e as f32);
            }
        }
        c.vgather_blocks(&a, 2, &blocks, 32);
        let serial = c.drain();
        assert!(
            serial.bank_serial_cycles
                >= 15 * arch.llc_banking.service_cycles - arch.llc_banking.service_cycles,
            "same-bank gather must be serialized, got {}",
            serial.bank_serial_cycles
        );
        // Functional correctness of the gather:
        for i in 0..512 {
            assert_eq!(c.vreg(2)[i], i as f32);
        }
    }

    #[test]
    fn gather_bijective_banks_fast() {
        let (mut c, mut a) = functional_core();
        // 49-line stride: gcd(49,16)=1 -> one line per bank.
        let stride_bytes = 49 * 128u64;
        let total = (16 * stride_bytes / 4) as usize + 32;
        let base = a.alloc(total);
        let blocks: Vec<u64> = (0..16).map(|i| base + i * stride_bytes).collect();
        c.vgather_blocks(&a, 2, &blocks, 32);
        let s = c.drain();
        assert_eq!(
            s.bank_serial_cycles, 0,
            "bijective mapping: no serialization"
        );
    }

    #[test]
    fn scatter_roundtrip() {
        let (mut c, mut a) = functional_core();
        let base = a.alloc(4096);
        let src = a.alloc(512);
        let vals: Vec<f32> = (0..512).map(|i| (i * 3) as f32).collect();
        a.store_slice(src, &vals);
        c.vload(&a, 0, src, 512);
        let blocks: Vec<u64> = (0..16).map(|i| base + i * 49 * 128).collect();
        // need room for the last block
        let _ = a.alloc(49 * 16 * 32);
        c.vscatter_blocks(&mut a, 0, &blocks, 32);
        for (i, &b) in blocks.iter().enumerate() {
            for e in 0..32usize {
                assert_eq!(a.read(b + (e as u64) * 4), ((i * 32 + e) * 3) as f32);
            }
        }
    }

    #[test]
    fn timing_only_mode_skips_data() {
        let arch = sx_aurora();
        let mut c = VCore::new(&arch, ExecutionMode::TimingOnly, 1);
        let mut a = Arena::new();
        let src = a.alloc(512);
        c.vload(&a, 0, src, 512);
        c.vfma_bcast(1, 0, ScalarValue::constant(1.0), 512);
        c.vstore(&mut a, 1, src, 512);
        let s = c.drain();
        assert_eq!(s.insts.vfmas, 1);
        assert!(s.cycles > 0);
    }

    #[test]
    fn vreduce_sums() {
        let (mut c, mut a) = functional_core();
        let src = a.alloc(64);
        let vals: Vec<f32> = (0..64).map(|i| i as f32).collect();
        a.store_slice(src, &vals);
        c.vload(&a, 0, src, 64);
        let s = c.vreduce_sum(0, 64);
        assert_eq!(s.value, (0..64).sum::<i32>() as f32);
    }

    #[test]
    fn reset_timing_keeps_cache_contents() {
        let (mut c, mut a) = functional_core();
        let base = a.alloc(16);
        c.scalar_load(&a, base);
        c.reset_timing();
        let sv = c.scalar_load(&a, base);
        assert!(
            sv.ready <= sx_aurora().lat.l1 + 2,
            "warm line stays resident"
        );
        let s = c.drain();
        assert_eq!(s.insts.scalar_loads, 1, "counters were reset");
    }

    #[test]
    fn vload_rows_concatenates_segments() {
        let (mut c, mut a) = functional_core();
        let base = a.alloc(1024);
        for i in 0..1024usize {
            a.write(base + (i as u64) * 4, i as f32);
        }
        // 4 rows of 8 elements, row stride 100 elements.
        c.vload_rows(&a, 0, base, 8, 400, 4);
        for r in 0..4 {
            for e in 0..8 {
                assert_eq!(c.vreg(0)[r * 8 + e], (r * 100 + e) as f32);
            }
        }
        let dst = a.alloc(1024);
        c.vstore_rows(&mut a, 0, dst, 8, 200, 4);
        for r in 0..4u64 {
            for e in 0..8u64 {
                assert_eq!(a.read(dst + r * 200 + e * 4), (r * 100 + e) as f32);
            }
        }
    }

    #[test]
    fn vload_strided_gathers_every_other() {
        let (mut c, mut a) = functional_core();
        let base = a.alloc(256);
        for i in 0..256usize {
            a.write(base + (i as u64) * 4, i as f32);
        }
        c.vload_strided(&a, 1, base, 8, 64);
        for i in 0..64 {
            assert_eq!(c.vreg(1)[i], (2 * i) as f32);
        }
    }

    #[test]
    fn strided_load_touches_more_lines_than_unit() {
        let arch = sx_aurora();
        let mut c1 = VCore::new(&arch, ExecutionMode::TimingOnly, 1);
        let mut c2 = VCore::new(&arch, ExecutionMode::TimingOnly, 1);
        let mut a = Arena::new();
        let base = a.alloc(8192);
        c1.vload(&a, 0, base, 512);
        c2.vload_strided(&a, 0, base, 8, 512);
        let s1 = c1.drain();
        let s2 = c2.drain();
        assert!(
            s2.cache.llc.accesses() > s1.cache.llc.accesses(),
            "stride-2 touches ~2x lines"
        );
    }

    #[test]
    fn trace_records_program_order() {
        let (mut c, mut a) = functional_core();
        c.enable_trace();
        let x = a.alloc(512);
        c.scalar_op();
        let sv = c.scalar_load(&a, x);
        c.vload(&a, 1, x, 64);
        c.vfma_bcast(0, 1, sv, 64);
        c.vstore(&mut a, 0, x, 64);
        c.scalar_store(&mut a, x, 1.0);
        let t = c.trace().unwrap();
        let r = Some(0); // the single allocation is region #0
        assert_eq!(
            t,
            &[
                TraceEvent::ScalarOp,
                TraceEvent::ScalarLoad { addr: x, region: r },
                TraceEvent::VLoad {
                    vr: 1,
                    addr: x,
                    span: 256,
                    region: r,
                    vl: 64
                },
                TraceEvent::VFma {
                    acc: 0,
                    w: 1,
                    w2: None,
                    vl: 64
                },
                TraceEvent::VStore {
                    vr: 0,
                    addr: x,
                    span: 256,
                    region: r,
                    vl: 64
                },
                TraceEvent::ScalarStore { addr: x, region: r },
            ]
        );
    }

    #[test]
    fn trace_tags_regions_and_footprints() {
        let arch = sx_aurora();
        let mut c = VCore::new(&arch, ExecutionMode::TimingOnly, 1);
        c.enable_trace();
        let mut a = Arena::new();
        let src = a.alloc_labeled(4096, "src");
        let dst = a.alloc_labeled(4096, "dst");
        c.vbroadcast_zero(0, 64);
        // 4 rows of 8 elems, stride 400 bytes: span = 3*400 + 32.
        c.vload_rows(&a, 0, src, 8, 400, 4);
        // stride-8 load of 16 elems: span = 15*8 + 4.
        c.vload_strided(&a, 1, src + 64, 8, 16);
        c.vreduce_sum(0, 64);
        let blocks: Vec<u64> = (0..4).map(|i| dst + i * 512).collect();
        c.vgather_blocks(&a, 2, &blocks, 32);
        let t = c.trace().unwrap();
        assert_eq!(t[0], TraceEvent::VZero { vr: 0, vl: 64 });
        assert_eq!(
            t[1],
            TraceEvent::VLoad {
                vr: 0,
                addr: src,
                span: 1232,
                region: Some(0),
                vl: 32
            }
        );
        assert_eq!(
            t[2],
            TraceEvent::VLoad {
                vr: 1,
                addr: src + 64,
                span: 124,
                region: Some(0),
                vl: 16
            }
        );
        assert_eq!(t[3], TraceEvent::VReduce { vr: 0, vl: 64 });
        assert_eq!(
            t[4],
            TraceEvent::VGather {
                vr: 2,
                addr: dst,
                span: 3 * 512 + 128,
                region: Some(1),
                vl: 128
            }
        );
    }

    #[test]
    fn introspect_records_same_stream_as_traced_run() {
        let arch = sx_aurora();
        let mut a = Arena::new();
        let x = a.alloc(512);
        let run = |c: &mut VCore, a: &mut Arena| {
            c.scalar_op();
            let sv = c.scalar_load(a, x);
            c.vload(a, 1, x, 64);
            c.vbroadcast_zero(0, 64);
            c.vfma_bcast(0, 1, sv, 64);
            c.vfma_vv(2, 0, 1, 64);
            c.vstore(a, 0, x, 64);
            let _ = c.vreduce_sum(0, 64);
            c.vgather_blocks(a, 3, &[x, x + 512], 32);
            c.vscatter_blocks(a, 3, &[x, x + 512], 32);
        };
        let mut timed = VCore::new(&arch, ExecutionMode::TimingOnly, 1);
        timed.enable_trace();
        run(&mut timed, &mut a);
        let mut intro = VCore::new_introspect(&arch);
        run(&mut intro, &mut a);
        assert_eq!(intro.trace().unwrap(), timed.trace().unwrap());
        assert!(intro.is_introspect());
        let stream = intro.take_trace().unwrap();
        assert_eq!(stream.len(), timed.trace().unwrap().len());
        assert_eq!(
            intro.trace().unwrap().len(),
            0,
            "take_trace leaves a fresh buffer"
        );
        // Introspection never touches the cache hierarchy or the scoreboard.
        let s = intro.drain();
        assert_eq!(s.cycles, 0);
        assert_eq!(s.cache.llc.accesses(), 0);
    }

    #[test]
    fn introspect_records_illegal_operands_without_asserting() {
        // A debug build would assert on vr/vl out of range in any other mode;
        // introspection must record them for the analyzer to deny.
        let arch = sx_aurora();
        let mut a = Arena::new();
        let x = a.alloc(64);
        let mut c = VCore::new_introspect(&arch);
        let bad_vl = arch.n_vlen() + 1;
        c.vload(&a, arch.n_vregs + 3, x, bad_vl);
        let t = c.trace().unwrap();
        assert_eq!(
            t[0],
            TraceEvent::VLoad {
                vr: arch.n_vregs + 3,
                addr: x,
                span: (bad_vl * 4) as u64,
                region: Some(0),
                vl: bad_vl
            }
        );
        let sv = c.scalar_load(&a, x);
        assert_eq!(sv.ready, 0, "introspect scalar loads are ready immediately");
    }

    #[test]
    #[should_panic(expected = "only kept in Functional mode")]
    fn vreg_in_timing_only_mode_panics_descriptively() {
        let c = VCore::new(&sx_aurora(), ExecutionMode::TimingOnly, 1);
        let _ = c.vreg(0);
    }

    #[test]
    #[should_panic(expected = "register index out of range")]
    fn vreg_out_of_range_panics_descriptively() {
        let (c, _a) = functional_core();
        let _ = c.vreg(10_000);
    }

    #[test]
    fn trace_disabled_by_default() {
        let (mut c, mut a) = functional_core();
        let x = a.alloc(64);
        c.scalar_load(&a, x);
        let _ = &mut a;
        assert!(c.trace().is_none());
    }

    #[test]
    fn counters_merge_accumulates_all_fields() {
        let mut a = InstCounters {
            scalar_loads: 1,
            scalar_ops: 2,
            vloads: 3,
            vstores: 4,
            vfmas: 5,
            gathers: 6,
            scatters: 7,
            fma_elems: 8,
        };
        let b = a;
        a.merge(&b);
        assert_eq!(a.total(), 2 * b.total());
        assert_eq!(a.fma_elems, 16);
    }

    #[test]
    fn shared_llc_cores_see_each_others_fills() {
        let arch = sx_aurora();
        let llc = lsv_cache::shared_llc(&arch);
        let mut a = Arena::new();
        let base = a.alloc(512);
        let mut c0 = VCore::new_with_shared_llc(&arch, ExecutionMode::TimingOnly, llc.clone());
        let mut c1 = VCore::new_with_shared_llc(&arch, ExecutionMode::TimingOnly, llc.clone());
        c0.vload(&a, 0, base, 512); // fills the shared LLC from memory
        c1.vload(&a, 0, base, 512); // must hit the LLC
        let s = llc.borrow().stats();
        assert!(s.hits > 0, "second core hits lines the first fetched");
    }

    #[test]
    fn profiler_is_cycle_neutral_and_reconciles() {
        let run = |profiled: bool| -> (CoreStats, Option<crate::profile::RegionProfile>) {
            let (mut c, mut a) = functional_core();
            if profiled {
                c.enable_profiler();
            }
            let x = a.alloc(1024);
            c.region_enter("outer");
            c.vload(&a, 1, x, 512);
            c.region_enter("inner");
            c.vbroadcast_zero(0, 512);
            for _ in 0..10 {
                c.vfma_bcast(0, 1, ScalarValue::constant(1.0), 512);
            }
            c.region_exit();
            c.scalar_load(&a, x);
            c.vstore(&mut a, 0, x, 512);
            c.region_exit();
            let s = c.drain();
            (s, c.take_profile())
        };
        let (plain, none) = run(false);
        assert!(none.is_none(), "no profile without enable_profiler");
        let (profiled, profile) = run(true);
        let p = profile.expect("profile present");
        assert_eq!(plain.cycles, profiled.cycles, "markers are cycle-neutral");
        assert_eq!(plain.insts, profiled.insts);
        // Exact reconciliation: self counters sum to the whole-run totals.
        assert_eq!(p.self_cycles_total(), p.total.cycles);
        assert_eq!(p.insts_total(), p.total.insts);
        assert_eq!(p.cache_total(), p.total.cache);
        // Paths: root, root;outer, root;outer;inner.
        assert_eq!(p.paths.len(), 3);
        assert_eq!(p.full_name(2), "root;outer;inner");
        let inner = &p.regions[2];
        assert_eq!(inner.insts.vfmas, 10);
        assert!(inner.stall_dep > 0, "chained FMAs stall inside `inner`");
        // Inclusive cycles of the root cover everything.
        assert_eq!(p.inclusive_cycles(0), p.total.cycles);
        // Two spans were closed, innermost first.
        assert_eq!(p.spans.len(), 2);
        assert_eq!(p.spans[0].path, 2);
        assert!(p.spans[0].start >= p.spans[1].start);
        assert!(p.spans[0].end <= p.spans[1].end);
    }

    #[test]
    fn profiler_repeated_paths_are_interned() {
        let (mut c, mut a) = functional_core();
        c.enable_profiler();
        let x = a.alloc(64);
        for _ in 0..5 {
            c.region_enter("tile");
            c.scalar_load(&a, x);
            c.region_exit();
        }
        let p = c.take_profile().unwrap();
        assert_eq!(p.paths.len(), 2, "one interned path for 5 occurrences");
        assert_eq!(p.regions[1].enters, 5);
        assert_eq!(p.spans.len(), 5);
        assert_eq!(p.regions[1].insts.scalar_loads, 5);
    }

    #[test]
    fn reset_timing_resets_profile_accounting() {
        let (mut c, mut a) = functional_core();
        c.enable_profiler();
        let x = a.alloc(512);
        c.region_enter("warmup");
        c.vload(&a, 0, x, 128);
        c.region_exit();
        c.drain();
        c.reset_timing();
        c.region_enter("steady");
        c.scalar_load(&a, x);
        c.region_exit();
        let p = c.take_profile().unwrap();
        assert_eq!(p.self_cycles_total(), p.total.cycles);
        assert_eq!(p.insts_total(), p.total.insts);
        assert!(
            p.paths.iter().all(|n| n.name != "warmup"),
            "pre-reset regions are gone"
        );
    }

    #[test]
    fn stall_breakdown_matches_fields() {
        let s = CoreStats {
            stall_scalar: 1,
            stall_dep: 2,
            stall_port: 3,
            bank_serial_cycles: 4,
            ..CoreStats::default()
        };
        assert_eq!(
            s.stall_breakdown(),
            [
                ("stall_scalar", 1),
                ("stall_dep", 2),
                ("stall_port", 3),
                ("bank", 4)
            ]
        );
        let labels: Vec<&str> = s.stall_breakdown().iter().map(|&(l, _)| l).collect();
        assert_eq!(labels, STALL_LABELS);
    }

    #[test]
    fn instruction_counters_total() {
        let (mut c, mut a) = functional_core();
        let x = a.alloc(512);
        c.scalar_op();
        c.scalar_load(&a, x);
        c.vload(&a, 0, x, 512);
        c.vfma_bcast(1, 0, ScalarValue::constant(0.5), 512);
        c.vstore(&mut a, 1, x, 512);
        let s = c.drain();
        assert_eq!(s.insts.total(), 5);
    }
}
