//! Flat simulated memory.
//!
//! All tensors live in one byte-addressed arena so that the cache simulator
//! sees *real* addresses: the paper's conflict misses (Section 5.2) depend on
//! the byte distance between consecutive scalar accesses, which is a property
//! of the blocked tensor layouts. Allocations are page-aligned to keep base
//! addresses realistic and reproducible.

/// Alignment of every allocation (a 4 KiB page).
pub const PAGE_BYTES: u64 = 4096;

/// Byte-addressed f32 memory.
///
/// Addresses handed out by [`Arena::alloc`] are byte offsets; element
/// accessors divide by 4. The arena never frees — convolution runs allocate
/// their operand tensors once.
#[derive(Debug, Default, Clone)]
pub struct Arena {
    data: Vec<f32>,
    next: u64,
}

impl Arena {
    /// Empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate `elems` f32 elements, zero-initialized; returns the base byte
    /// address (page aligned).
    pub fn alloc(&mut self, elems: usize) -> u64 {
        let base = self.next.next_multiple_of(PAGE_BYTES);
        let end_elems = base as usize / 4 + elems;
        if self.data.len() < end_elems {
            self.data.resize(end_elems, 0.0);
        }
        self.next = (end_elems as u64) * 4;
        base
    }

    /// Total bytes currently backed.
    pub fn len_bytes(&self) -> u64 {
        self.data.len() as u64 * 4
    }

    /// Read one element at byte address `addr`.
    ///
    /// # Panics
    /// Panics if `addr` is not 4-byte aligned or out of bounds.
    #[inline]
    pub fn read(&self, addr: u64) -> f32 {
        debug_assert!(addr.is_multiple_of(4), "unaligned f32 read at {addr:#x}");
        self.data[(addr / 4) as usize]
    }

    /// Write one element at byte address `addr`.
    #[inline]
    pub fn write(&mut self, addr: u64, v: f32) {
        debug_assert!(addr.is_multiple_of(4), "unaligned f32 write at {addr:#x}");
        self.data[(addr / 4) as usize] = v;
    }

    /// Borrow `len` elements starting at byte address `addr`.
    #[inline]
    pub fn slice(&self, addr: u64, len: usize) -> &[f32] {
        let i = (addr / 4) as usize;
        &self.data[i..i + len]
    }

    /// Mutably borrow `len` elements starting at byte address `addr`.
    #[inline]
    pub fn slice_mut(&mut self, addr: u64, len: usize) -> &mut [f32] {
        let i = (addr / 4) as usize;
        &mut self.data[i..i + len]
    }

    /// Copy a host slice into the arena at `addr`.
    pub fn store_slice(&mut self, addr: u64, src: &[f32]) {
        self.slice_mut(addr, src.len()).copy_from_slice(src);
    }

    /// Copy `len` elements out of the arena into a fresh vector.
    pub fn load_vec(&self, addr: u64, len: usize) -> Vec<f32> {
        self.slice(addr, len).to_vec()
    }

    /// Fill `len` elements starting at `addr` with a value.
    pub fn fill(&mut self, addr: u64, len: usize, v: f32) {
        self.slice_mut(addr, len).fill(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_are_page_aligned_and_disjoint() {
        let mut a = Arena::new();
        let x = a.alloc(10);
        let y = a.alloc(3);
        let z = a.alloc(5000);
        assert_eq!(x % PAGE_BYTES, 0);
        assert_eq!(y % PAGE_BYTES, 0);
        assert_eq!(z % PAGE_BYTES, 0);
        assert!(y >= x + 40);
        assert!(z >= y + 12);
    }

    #[test]
    fn read_write_roundtrip() {
        let mut a = Arena::new();
        let base = a.alloc(4);
        a.write(base + 8, 3.5);
        assert_eq!(a.read(base + 8), 3.5);
        assert_eq!(a.read(base), 0.0, "zero initialized");
    }

    #[test]
    fn slice_copy_roundtrip() {
        let mut a = Arena::new();
        let base = a.alloc(6);
        a.store_slice(base, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.load_vec(base + 4, 2), vec![2.0, 3.0]);
        a.fill(base, 3, 9.0);
        assert_eq!(a.load_vec(base, 4), vec![9.0, 9.0, 9.0, 4.0]);
    }
}
