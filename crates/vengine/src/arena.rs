//! Flat simulated memory.
//!
//! All tensors live in one byte-addressed arena so that the cache simulator
//! sees *real* addresses: the paper's conflict misses (Section 5.2) depend on
//! the byte distance between consecutive scalar accesses, which is a property
//! of the blocked tensor layouts. Allocations are page-aligned to keep base
//! addresses realistic and reproducible.
//!
//! Every allocation is recorded as a [`Region`] so the trace facility and
//! the `lsv-analyze` bounds sanitizer can map any address back to the tensor
//! it belongs to (or prove it belongs to none).

/// Alignment of every allocation (a 4 KiB page).
pub const PAGE_BYTES: u64 = 4096;

/// One recorded allocation: the extent a tensor occupies in the arena.
#[derive(Debug, Clone)]
pub struct Region {
    /// First byte address of the allocation.
    pub base: u64,
    /// Allocated size in bytes.
    pub bytes: u64,
    /// Human-readable tag (e.g. `"act 2x128x28x28 cb=32"`).
    pub label: String,
}

impl Region {
    /// One past the last allocated byte.
    pub fn end(&self) -> u64 {
        self.base + self.bytes
    }

    /// Whether `addr` lies inside this region.
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.base && addr < self.end()
    }
}

/// Byte-addressed f32 memory.
///
/// Addresses handed out by [`Arena::alloc`] are byte offsets; element
/// accessors divide by 4. The arena never frees — convolution runs allocate
/// their operand tensors once.
#[derive(Debug, Default, Clone)]
pub struct Arena {
    data: Vec<f32>,
    next: u64,
    regions: Vec<Region>,
}

impl Arena {
    /// Empty arena.
    pub fn new() -> Self {
        Self::default()
    }

    /// Allocate `elems` f32 elements, zero-initialized; returns the base byte
    /// address (page aligned).
    pub fn alloc(&mut self, elems: usize) -> u64 {
        self.alloc_labeled(elems, "anon")
    }

    /// Like [`Arena::alloc`], tagging the allocation so diagnostics can name
    /// the tensor an address belongs to.
    pub fn alloc_labeled(&mut self, elems: usize, label: &str) -> u64 {
        let base = self.next.next_multiple_of(PAGE_BYTES);
        let end_elems = base as usize / 4 + elems;
        if self.data.len() < end_elems {
            self.data.resize(end_elems, 0.0);
        }
        self.next = (end_elems as u64) * 4;
        self.regions.push(Region {
            base,
            bytes: (elems * 4) as u64,
            label: label.to_string(),
        });
        base
    }

    /// Total bytes currently backed.
    pub fn len_bytes(&self) -> u64 {
        self.data.len() as u64 * 4
    }

    /// All recorded allocations, in allocation (= ascending base) order.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// Index of the allocation containing `addr`, if any. Addresses in the
    /// page-alignment gap between two allocations belong to none.
    pub fn region_of(&self, addr: u64) -> Option<u32> {
        // Regions are sorted by base: find the last region starting at or
        // before `addr` and check containment.
        let i = self.regions.partition_point(|r| r.base <= addr);
        if i == 0 {
            return None;
        }
        let r = &self.regions[i - 1];
        r.contains(addr).then_some((i - 1) as u32)
    }

    #[cold]
    #[inline(never)]
    fn bad_access(&self, what: &str, addr: u64, bytes: u64) -> ! {
        let where_ = match self.region_of(addr) {
            Some(i) => {
                let r = &self.regions[i as usize];
                format!(
                    "inside region #{i} `{}` [{:#x}, {:#x}) but overrunning it",
                    r.label,
                    r.base,
                    r.end()
                )
            }
            None => "outside every allocation".to_string(),
        };
        panic!(
            "arena {what} of {bytes} bytes at address {addr:#x} is out of bounds: \
             arena holds {} bytes across {} allocations; the access is {where_}",
            self.len_bytes(),
            self.regions.len()
        );
    }

    #[inline]
    fn check(&self, what: &str, addr: u64, len: usize) {
        assert!(
            addr.is_multiple_of(4),
            "unaligned arena {what}: address {addr:#x} is not 4-byte aligned"
        );
        let end = (addr / 4) as usize + len;
        if end > self.data.len() {
            self.bad_access(what, addr, (len * 4) as u64);
        }
    }

    /// Read one element at byte address `addr`.
    ///
    /// # Panics
    /// Panics with the address and the surrounding allocation if `addr` is
    /// not 4-byte aligned or out of bounds.
    #[inline]
    pub fn read(&self, addr: u64) -> f32 {
        self.check("read", addr, 1);
        self.data[(addr / 4) as usize]
    }

    /// Write one element at byte address `addr`.
    ///
    /// # Panics
    /// Panics with the address and the surrounding allocation if `addr` is
    /// not 4-byte aligned or out of bounds.
    #[inline]
    pub fn write(&mut self, addr: u64, v: f32) {
        self.check("write", addr, 1);
        self.data[(addr / 4) as usize] = v;
    }

    /// Borrow `len` elements starting at byte address `addr`.
    ///
    /// # Panics
    /// Panics with the address, length and surrounding allocation if the
    /// range is unaligned or out of bounds.
    #[inline]
    pub fn slice(&self, addr: u64, len: usize) -> &[f32] {
        self.check("slice", addr, len);
        let i = (addr / 4) as usize;
        &self.data[i..i + len]
    }

    /// Mutably borrow `len` elements starting at byte address `addr`.
    ///
    /// # Panics
    /// Panics with the address, length and surrounding allocation if the
    /// range is unaligned or out of bounds.
    #[inline]
    pub fn slice_mut(&mut self, addr: u64, len: usize) -> &mut [f32] {
        self.check("slice_mut", addr, len);
        let i = (addr / 4) as usize;
        &mut self.data[i..i + len]
    }

    /// Copy a host slice into the arena at `addr`.
    pub fn store_slice(&mut self, addr: u64, src: &[f32]) {
        self.slice_mut(addr, src.len()).copy_from_slice(src);
    }

    /// Copy `len` elements out of the arena into a fresh vector.
    pub fn load_vec(&self, addr: u64, len: usize) -> Vec<f32> {
        self.slice(addr, len).to_vec()
    }

    /// Fill `len` elements starting at `addr` with a value.
    pub fn fill(&mut self, addr: u64, len: usize, v: f32) {
        self.slice_mut(addr, len).fill(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_are_page_aligned_and_disjoint() {
        let mut a = Arena::new();
        let x = a.alloc(10);
        let y = a.alloc(3);
        let z = a.alloc(5000);
        assert_eq!(x % PAGE_BYTES, 0);
        assert_eq!(y % PAGE_BYTES, 0);
        assert_eq!(z % PAGE_BYTES, 0);
        assert!(y >= x + 40);
        assert!(z >= y + 12);
    }

    #[test]
    fn read_write_roundtrip() {
        let mut a = Arena::new();
        let base = a.alloc(4);
        a.write(base + 8, 3.5);
        assert_eq!(a.read(base + 8), 3.5);
        assert_eq!(a.read(base), 0.0, "zero initialized");
    }

    #[test]
    fn slice_copy_roundtrip() {
        let mut a = Arena::new();
        let base = a.alloc(6);
        a.store_slice(base, &[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.load_vec(base + 4, 2), vec![2.0, 3.0]);
        a.fill(base, 3, 9.0);
        assert_eq!(a.load_vec(base, 4), vec![9.0, 9.0, 9.0, 4.0]);
    }

    #[test]
    fn regions_map_addresses_back_to_allocations() {
        let mut a = Arena::new();
        let x = a.alloc_labeled(16, "src");
        let y = a.alloc_labeled(8, "dst");
        assert_eq!(a.regions().len(), 2);
        assert_eq!(a.region_of(x), Some(0));
        assert_eq!(a.region_of(x + 63), Some(0), "within the 16-elem extent");
        assert_eq!(a.region_of(x + 64), None, "first byte past the extent");
        assert_eq!(a.region_of(y + 4), Some(1));
        assert_eq!(a.region_of(y + 8 * 4), None);
        assert_eq!(a.regions()[1].label, "dst");
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn oob_read_names_the_allocation_state() {
        let mut a = Arena::new();
        let base = a.alloc_labeled(4, "tiny");
        a.read(base + 10 * PAGE_BYTES);
    }

    #[test]
    #[should_panic(expected = "not 4-byte aligned")]
    fn unaligned_read_is_described() {
        let mut a = Arena::new();
        let base = a.alloc(4);
        a.read(base + 2);
    }
}
