//! # lsv-vengine — functional + timing simulator of a long-SIMD vector core
//!
//! This crate is the stand-in for the paper's hardware platform (NEC
//! SX-Aurora TSUBASA): an in-order vector core with
//!
//! * dynamic vector length (`vl = min(C, N_vlen)`, Section 4.2),
//! * vector FMA with an implicitly broadcast *scalar* multiplicand
//!   (Algorithm 2 line 17),
//! * unit-stride vector load/store,
//! * coarse-grain block gather/scatter (Section 6.3's "2-dimensional vector
//!   load/stores, which emulate vector gather/scatters at the granularity of
//!   an entire 128-byte cache line"),
//! * `N_fma` FMA ports with `L_fma`-deep pipelines processing
//!   `lanes_per_port` elements per cycle, and
//! * a scalar pipeline whose loads go through the `lsv-cache` hierarchy.
//!
//! Execution is simultaneously **functional** (the f32 arithmetic really
//! happens, so kernels are validated against a scalar reference) and
//! **timed** (an issue-order scoreboard models decode bandwidth, FMA port
//! occupancy and latency, cache hit/miss latencies and LLC gather bank
//! serialization). [`ExecutionMode::TimingOnly`] skips the arithmetic for
//! large benchmark sweeps.
//!
//! ## Timing model (summary — see DESIGN.md for the calibration rationale)
//!
//! * The in-order frontend issues `scalar_issue_width` instructions per
//!   cycle; an instruction whose operands are not ready blocks the frontend
//!   until they are (scoreboarded loads do not block until first use).
//! * A vector FMA of length `vl` occupies one of `n_fma` ports for
//!   `ceil(vl / lanes_per_port)` cycles and its destination register becomes
//!   ready `occupancy + l_fma` cycles after it starts (pipeline depth; NEC
//!   chaining is modelled by allowing the *next* instruction to start
//!   immediately on a different register).
//! * Scalar loads return their value with the serviced level's latency;
//!   vector loads charge the worst line's latency once (streaming).
//! * Block gathers/scatters are serviced by the LLC with the banking model of
//!   `lsv-cache::banks`.

pub mod arena;
pub mod core;
pub mod profile;

pub use crate::core::{
    CoreStats, ExecutionMode, InstCounters, ScalarValue, TraceEvent, VCore, STALL_LABELS,
};
pub use arena::{Arena, Region, PAGE_BYTES};
pub use profile::{RegionPath, RegionProfile, RegionStats, SpanEvent, MAX_SPAN_EVENTS};
