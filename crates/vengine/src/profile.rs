//! Region-attributed profiling of the simulated core.
//!
//! Kernels bracket phases with [`VCore::region_enter`] /
//! [`VCore::region_exit`](crate::VCore::region_exit); the profiler attributes
//! every monotonically counting quantity the core tracks — cycles, the three
//! stall categories, bank serialization, instruction counters, and per-level
//! cache events — to the innermost active region *stack path* (exclusive /
//! "self" accounting, flamegraph style).
//!
//! ## How cycles are attributed without a per-cycle clock
//!
//! The core has no global clock; [`VCore::drain`](crate::VCore::drain)
//! computes total cycles as the maximum over the frontend frontier, every
//! vector register's ready time, every FMA port's busy time, and the vector
//! pipe's last start. The profiler snapshots that same maximum (the
//! *horizon*) at every region boundary and charges the advance since the
//! previous boundary to the region that was active in between. The horizon is
//! kept as a running watermark (`max` with the previous snapshot), so deltas
//! are never negative even while long-latency work is still in flight, and
//! `drain` finalizes the last delta at the exact value it reports as
//! `CoreStats::cycles`. Per-path self cycles therefore sum *exactly* to the
//! whole-run cycle count — the invariant `lsv-analyze` checks.
//!
//! Region markers never touch the timing state (no issue slot, no frontier
//! movement), so enabling the profiler is cycle-for-cycle neutral, and when
//! it is disabled each marker is a single branch on an `Option`.

use crate::core::{CoreStats, InstCounters};
use lsv_cache::HierarchyStats;
use std::collections::HashMap;

/// Cap on recorded span events (timeline entries for the Perfetto export).
/// Accounting stays exact past the cap; only the timeline is truncated.
pub const MAX_SPAN_EVENTS: usize = 100_000;

/// Everything the core counts monotonically, captured at a region boundary.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Snapshot {
    pub horizon: u64,
    pub stall_scalar: u64,
    pub stall_dep: u64,
    pub stall_port: u64,
    pub bank_serial_cycles: u64,
    pub insts: InstCounters,
    pub cache: HierarchyStats,
}

/// Exclusive ("self") counters accumulated for one region stack path.
#[derive(Debug, Default, Clone, Copy)]
pub struct RegionStats {
    /// Times this exact stack path was entered.
    pub enters: u64,
    /// Simulated cycles attributed to this path (exclusive of children).
    pub cycles: u64,
    /// Frontend cycles blocked on scalar load data.
    pub stall_scalar: u64,
    /// Vector-pipe cycles waiting on source registers.
    pub stall_dep: u64,
    /// Vector-pipe cycles waiting on a free FMA port.
    pub stall_port: u64,
    /// Extra gather/scatter cycles serialized on LLC banks.
    pub bank_serial_cycles: u64,
    /// Dynamic instructions retired while this path was innermost.
    pub insts: InstCounters,
    /// Cache events observed while this path was innermost.
    pub cache: HierarchyStats,
}

impl RegionStats {
    /// L1 misses per kilo-instruction within this region.
    pub fn mpki_l1(&self) -> f64 {
        self.cache.l1.mpki(self.insts.total())
    }

    /// The stall categories under the same labels as
    /// [`CoreStats::stall_breakdown`].
    pub fn stall_breakdown(&self) -> [(&'static str, u64); 4] {
        crate::core::stall_breakdown_of(
            self.stall_scalar,
            self.stall_dep,
            self.stall_port,
            self.bank_serial_cycles,
        )
    }
}

/// One node of the interned region stack-path tree.
#[derive(Debug, Clone)]
pub struct RegionPath {
    /// Parent path, `None` for the implicit root.
    pub parent: Option<u32>,
    /// Leaf region name of this path.
    pub name: &'static str,
    /// Nesting depth (root = 0).
    pub depth: u32,
}

/// One closed region occurrence on the simulated-cycle timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// Index into [`RegionProfile::paths`].
    pub path: u32,
    /// Horizon at entry (simulated cycles).
    pub start: u64,
    /// Horizon at exit (simulated cycles).
    pub end: u64,
}

/// The finished profile returned by
/// [`VCore::take_profile`](crate::VCore::take_profile).
#[derive(Debug, Clone)]
pub struct RegionProfile {
    /// Interned stack paths; index 0 is the implicit root.
    pub paths: Vec<RegionPath>,
    /// Exclusive counters, parallel to `paths`.
    pub regions: Vec<RegionStats>,
    /// Timeline of closed region occurrences (capped, see
    /// [`MAX_SPAN_EVENTS`]).
    pub spans: Vec<SpanEvent>,
    /// Span events dropped once the cap was reached.
    pub dropped_spans: u64,
    /// The whole-run totals ([`VCore::drain`](crate::VCore::drain)) the
    /// per-region counters reconcile against.
    pub total: CoreStats,
}

impl RegionProfile {
    /// Semicolon-joined stack path, flamegraph style: `root;fwd;inner`.
    pub fn full_name(&self, id: u32) -> String {
        let mut parts = Vec::new();
        let mut cur = id;
        loop {
            let node = &self.paths[cur as usize];
            parts.push(node.name);
            match node.parent {
                Some(p) => cur = p,
                None => break,
            }
        }
        parts.reverse();
        parts.join(";")
    }

    /// Sum of exclusive cycles over every path — equals `total.cycles` when
    /// the accounting reconciles (see the module docs).
    pub fn self_cycles_total(&self) -> u64 {
        self.regions.iter().map(|r| r.cycles).sum()
    }

    /// Sum of per-region instruction counters over every path.
    pub fn insts_total(&self) -> InstCounters {
        let mut t = InstCounters::default();
        for r in &self.regions {
            t.merge(&r.insts);
        }
        t
    }

    /// Sum of per-region cache counters over every path.
    pub fn cache_total(&self) -> HierarchyStats {
        let mut t = HierarchyStats::default();
        for r in &self.regions {
            t.merge(&r.cache);
        }
        t
    }

    /// Inclusive cycles of `id`: its own plus every descendant's.
    pub fn inclusive_cycles(&self, id: u32) -> u64 {
        (0..self.paths.len() as u32)
            .filter(|&p| self.is_ancestor_or_self(id, p))
            .map(|p| self.regions[p as usize].cycles)
            .sum()
    }

    fn is_ancestor_or_self(&self, anc: u32, mut node: u32) -> bool {
        loop {
            if node == anc {
                return true;
            }
            match self.paths[node as usize].parent {
                Some(p) => node = p,
                None => return false,
            }
        }
    }
}

/// The live profiler state owned by a [`VCore`](crate::VCore) while enabled.
#[derive(Debug)]
pub(crate) struct Profiler {
    paths: Vec<RegionPath>,
    path_ids: HashMap<(u32, &'static str), u32>,
    stats: Vec<RegionStats>,
    /// Active stack of path ids; `stack[0]` is always the root.
    stack: Vec<u32>,
    last: Snapshot,
    /// Open spans as (path, entry horizon), parallel to `stack[1..]`.
    open: Vec<(u32, u64)>,
    spans: Vec<SpanEvent>,
    dropped_spans: u64,
}

impl Profiler {
    pub(crate) fn new() -> Self {
        Self {
            paths: vec![RegionPath {
                parent: None,
                name: "root",
                depth: 0,
            }],
            path_ids: HashMap::new(),
            stats: vec![RegionStats::default()],
            stack: vec![0],
            last: Snapshot {
                horizon: 0,
                stall_scalar: 0,
                stall_dep: 0,
                stall_port: 0,
                bank_serial_cycles: 0,
                insts: InstCounters::default(),
                cache: HierarchyStats::default(),
            },
            open: Vec::new(),
            spans: Vec::new(),
            dropped_spans: 0,
        }
    }

    /// Charge everything counted since the previous boundary to the
    /// innermost active path and advance the watermark.
    fn attribute(&mut self, snap: &Snapshot) {
        let h = snap.horizon.max(self.last.horizon);
        let cur = *self.stack.last().expect("root never popped") as usize;
        let s = &mut self.stats[cur];
        s.cycles += h - self.last.horizon;
        s.stall_scalar += snap.stall_scalar - self.last.stall_scalar;
        s.stall_dep += snap.stall_dep - self.last.stall_dep;
        s.stall_port += snap.stall_port - self.last.stall_port;
        s.bank_serial_cycles += snap.bank_serial_cycles - self.last.bank_serial_cycles;
        s.insts.merge(&inst_delta(&snap.insts, &self.last.insts));
        s.cache.merge(&(snap.cache - self.last.cache));
        self.last = Snapshot {
            horizon: h,
            ..*snap
        };
    }

    pub(crate) fn enter(&mut self, name: &'static str, snap: Snapshot) {
        self.attribute(&snap);
        let parent = *self.stack.last().expect("root never popped");
        let path = match self.path_ids.get(&(parent, name)) {
            Some(&p) => p,
            None => {
                let id = self.paths.len() as u32;
                let depth = self.paths[parent as usize].depth + 1;
                self.paths.push(RegionPath {
                    parent: Some(parent),
                    name,
                    depth,
                });
                self.stats.push(RegionStats::default());
                self.path_ids.insert((parent, name), id);
                id
            }
        };
        self.stats[path as usize].enters += 1;
        self.stack.push(path);
        self.open.push((path, self.last.horizon));
    }

    pub(crate) fn exit(&mut self, snap: Snapshot) {
        self.attribute(&snap);
        debug_assert!(self.stack.len() > 1, "region_exit without matching enter");
        if self.stack.len() > 1 {
            self.stack.pop();
            if let Some((path, start)) = self.open.pop() {
                self.push_span(path, start, self.last.horizon);
            }
        }
    }

    /// Finalize the pending delta at a drain boundary.
    pub(crate) fn sync(&mut self, snap: Snapshot) {
        self.attribute(&snap);
    }

    fn push_span(&mut self, path: u32, start: u64, end: u64) {
        if self.spans.len() < MAX_SPAN_EVENTS {
            self.spans.push(SpanEvent { path, start, end });
        } else {
            self.dropped_spans += 1;
        }
    }

    pub(crate) fn finish(mut self, total: CoreStats) -> RegionProfile {
        // Close anything left open at the final horizon so the timeline is
        // well-formed even for unbalanced instrumentation.
        while let Some((path, start)) = self.open.pop() {
            let end = self.last.horizon;
            self.push_span(path, start, end);
        }
        RegionProfile {
            paths: self.paths,
            regions: self.stats,
            spans: self.spans,
            dropped_spans: self.dropped_spans,
            total,
        }
    }
}

fn inst_delta(now: &InstCounters, then: &InstCounters) -> InstCounters {
    InstCounters {
        scalar_loads: now.scalar_loads - then.scalar_loads,
        scalar_ops: now.scalar_ops - then.scalar_ops,
        vloads: now.vloads - then.vloads,
        vstores: now.vstores - then.vstores,
        vfmas: now.vfmas - then.vfmas,
        gathers: now.gathers - then.gathers,
        scatters: now.scatters - then.scatters,
        fma_elems: now.fma_elems - then.fma_elems,
    }
}
