//! Property tests for the vector engine's functional semantics: memory ops
//! round-trip for arbitrary geometries, FMA arithmetic matches scalar math,
//! and timing invariants (cycles monotone in work).

use lsv_arch::presets::sx_aurora;
use lsv_vengine::{Arena, ExecutionMode, ScalarValue, VCore};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn vload_vstore_roundtrip(vl in 1usize..513, offset_lines in 0u64..8) {
        let arch = sx_aurora();
        let mut core = VCore::new(&arch, ExecutionMode::Functional, 1);
        let mut arena = Arena::new();
        let src = arena.alloc(1024) + offset_lines * 128;
        let dst = arena.alloc(1024);
        let vals: Vec<f32> = (0..vl).map(|i| i as f32 * 1.5 - 7.0).collect();
        arena.store_slice(src, &vals);
        core.vload(&arena, 0, src, vl);
        core.vstore(&mut arena, 0, dst, vl);
        prop_assert_eq!(arena.load_vec(dst, vl), vals);
    }

    #[test]
    fn fma_bcast_matches_scalar_math(vl in 1usize..513, scalar in -10.0f32..10.0) {
        let arch = sx_aurora();
        let mut core = VCore::new(&arch, ExecutionMode::Functional, 1);
        let mut arena = Arena::new();
        let w = arena.alloc(512);
        let acc0 = arena.alloc(512);
        let wv: Vec<f32> = (0..vl).map(|i| (i as f32).cos()).collect();
        let a0: Vec<f32> = (0..vl).map(|i| (i as f32) * 0.25).collect();
        arena.store_slice(w, &wv);
        arena.store_slice(acc0, &a0);
        core.vload(&arena, 0, acc0, vl);
        core.vload(&arena, 1, w, vl);
        core.vfma_bcast(0, 1, ScalarValue::constant(scalar), vl);
        for i in 0..vl {
            let want = a0[i] + wv[i] * scalar;
            prop_assert!((core.vreg(0)[i] - want).abs() <= 1e-5 * want.abs().max(1.0));
        }
    }

    #[test]
    fn gather_scatter_roundtrip(
        nblocks in 1usize..17,
        block_elems in 1usize..33,
        stride_lines in 1u64..64,
    ) {
        prop_assume!(nblocks * block_elems <= 512);
        prop_assume!(stride_lines * 128 >= (block_elems * 4) as u64);
        let arch = sx_aurora();
        let mut core = VCore::new(&arch, ExecutionMode::Functional, 1);
        let mut arena = Arena::new();
        let span = (nblocks as u64 * stride_lines * 128 / 4) as usize + block_elems;
        let src_base = arena.alloc(span);
        let dst_base = arena.alloc(span);
        let blocks_src: Vec<u64> = (0..nblocks as u64).map(|i| src_base + i * stride_lines * 128).collect();
        let blocks_dst: Vec<u64> = (0..nblocks as u64).map(|i| dst_base + i * stride_lines * 128).collect();
        for (bi, &b) in blocks_src.iter().enumerate() {
            for e in 0..block_elems {
                arena.write(b + (e * 4) as u64, (bi * 1000 + e) as f32);
            }
        }
        core.vgather_blocks(&arena, 3, &blocks_src, block_elems);
        core.vscatter_blocks(&mut arena, 3, &blocks_dst, block_elems);
        for (bi, &b) in blocks_dst.iter().enumerate() {
            for e in 0..block_elems {
                prop_assert_eq!(arena.read(b + (e * 4) as u64), (bi * 1000 + e) as f32);
            }
        }
    }

    #[test]
    fn rows_load_matches_manual_copy(
        rows in 1usize..9,
        row_elems in 1usize..33,
        stride_elems in 33usize..128,
    ) {
        prop_assume!(rows * row_elems <= 512);
        let arch = sx_aurora();
        let mut core = VCore::new(&arch, ExecutionMode::Functional, 1);
        let mut arena = Arena::new();
        let base = arena.alloc(rows * stride_elems + row_elems);
        for i in 0..(rows * stride_elems + row_elems) {
            arena.write(base + (i * 4) as u64, i as f32);
        }
        core.vload_rows(&arena, 2, base, row_elems, (stride_elems * 4) as u64, rows);
        for r in 0..rows {
            for e in 0..row_elems {
                prop_assert_eq!(core.vreg(2)[r * row_elems + e], (r * stride_elems + e) as f32);
            }
        }
    }

    #[test]
    fn strided_load_store_roundtrip(count in 1usize..129, stride_elems in 1usize..9) {
        let arch = sx_aurora();
        let mut core = VCore::new(&arch, ExecutionMode::Functional, 1);
        let mut arena = Arena::new();
        let base = arena.alloc(count * stride_elems + 1);
        let out = arena.alloc(count * stride_elems + 1);
        for i in 0..count {
            arena.write(base + (i * stride_elems * 4) as u64, (i * 7) as f32);
        }
        core.vload_strided(&arena, 1, base, (stride_elems * 4) as u64, count);
        core.vstore_strided(&mut arena, 1, out, (stride_elems * 4) as u64, count);
        for i in 0..count {
            prop_assert_eq!(arena.read(out + (i * stride_elems * 4) as u64), (i * 7) as f32);
        }
    }

    #[test]
    fn cycles_monotone_in_fma_count(n1 in 1usize..50, extra in 1usize..50) {
        let arch = sx_aurora();
        let run = |n: usize| -> u64 {
            let mut core = VCore::new(&arch, ExecutionMode::TimingOnly, 1);
            let arena = Arena::new();
            for i in 0..n {
                core.vfma_bcast(i % 8, 30, ScalarValue::constant(1.0), 512);
                let _ = &arena;
            }
            core.drain().cycles
        };
        prop_assert!(run(n1 + extra) >= run(n1));
    }
}
