//! Negative-case suite for the schema validators: mutated and truncated
//! `serving_trace.json`, `metrics.json` and `BENCH_serving.json` documents
//! must be rejected with a *pointed* error (naming the violating path), not
//! pass silently. The positive fixtures here are minimal conforming
//! documents; every mutation flips exactly one thing.

use lsv_obs::{validate_metrics_json, validate_serving_json, validate_serving_trace_json};

const METRICS_GOOD: &str = r#"{
  "version": 1,
  "tool": "layer-store",
  "counters": [
    {"name": "store.mem_hits", "value": 12},
    {"name": "store.misses", "value": 3}
  ],
  "gauges": [
    {"name": "store.disk_bytes", "value": 4096}
  ],
  "histograms": [
    {"name": "queue.wait_ms", "count": 2, "sum": 3.5, "min": 1.0, "max": 2.5}
  ]
}"#;

const TRACE_GOOD: &str = r#"{
  "version": 1,
  "tool": "lsvconv serve",
  "meta": {
    "arch": "sx-aurora", "model": "resnet-50", "pass": "infer",
    "engine": "BDC", "arrival": "poisson", "policy": "adaptive4",
    "utilization": 0.9, "offered_rps": 120.5, "seed": 42,
    "slo_ms": 60.0, "max_batch": 4
  },
  "reconciliation": {
    "requests": 2, "batches": 1, "wait_sum_ms": 1.5, "ride_sum_ms": 20.0,
    "service_sum_ms": 10.0, "layer_sum_ms": 10.0, "exact": true
  },
  "requests": [
    {"id": 0, "arrival_ms": 0.0, "dispatch_ms": 1.0, "done_ms": 11.0,
     "batch": 2, "depth_at_arrival": 0, "reason": "full"},
    {"id": 1, "arrival_ms": 0.5, "dispatch_ms": 1.0, "done_ms": 11.0,
     "batch": 2, "depth_at_arrival": 1, "reason": "full"}
  ],
  "batches": [
    {"seq": 0, "at_ms": 1.0, "service_ms": 10.0, "batch": 2, "reason": "full"}
  ],
  "plans": [
    {"batch": 2, "store_hits": 19, "simulated": 0, "total_ms": 10.0,
     "layers": [
       {"layer": 0, "direction": "fwdd", "algorithm": "BDC", "count": 1,
        "time_ms": 10.0, "cycles": 16000}
     ]}
  ]
}"#;

const SERVING_GOOD: &str = r#"{
  "version": 1, "tool": "bench-serving", "arch": "sx-aurora",
  "model": "resnet-50", "pass": "infer", "mode": "timing-only",
  "seed": 42, "requests": 200, "max_batch": 8, "slo_ms": 120.5,
  "reference_capacity_rps": 150.0,
  "engines": ["BDC"], "policies": ["adaptive8"], "utilizations": [0.9],
  "rows": [
    {"arrival": "poisson", "policy": "adaptive8", "engine": "BDC",
     "offered_rps": 135.0, "utilization": 0.9, "completed": 200,
     "dispatches": 60, "mean_batch": 3.3, "p50_ms": 20.0,
     "p95_ms": 31.0, "p99_ms": 35.5, "mean_ms": 21.2,
     "throughput_rps": 133.0, "slo_attainment": 0.99}
  ],
  "best_by_load": [
    {"arrival": "poisson", "offered_rps": 135.0,
     "policy": "adaptive8", "engine": "BDC"}
  ],
  "timeseries": {
    "engine": "BDC", "samples_per_cell": 120,
    "cells": [
      {"arrival": "poisson", "policy": "adaptive8", "utilization": 0.9,
       "peak_queue_depth": 7, "mean_queue_depth": 1.9,
       "mean_utilization": 0.88, "max_slo_burn": 0.05,
       "final_p99_ms": 35.5}
    ]
  }
}"#;

/// Assert the validator rejects `text` and that the error mentions every
/// `hint` (a pointed message, not a generic failure).
fn assert_rejected(result: Result<(), String>, hints: &[&str]) {
    let err = result.expect_err("mutated document must be rejected");
    for hint in hints {
        assert!(err.contains(hint), "error not pointed enough: {err}");
    }
}

#[test]
fn good_fixtures_are_accepted() {
    validate_metrics_json(METRICS_GOOD).expect("metrics fixture");
    validate_serving_trace_json(TRACE_GOOD).expect("trace fixture");
    validate_serving_json(SERVING_GOOD).expect("serving fixture");
}

#[test]
fn metrics_mutations_are_rejected_with_pointed_errors() {
    // Counter value becomes a string.
    assert_rejected(
        validate_metrics_json(&METRICS_GOOD.replace("\"value\": 12", "\"value\": \"12\"")),
        &["$.counters[0].value", "expected type"],
    );
    // Negative counter violates the minimum.
    assert_rejected(
        validate_metrics_json(&METRICS_GOOD.replace("\"value\": 3", "\"value\": -3")),
        &["$.counters[1].value", "below minimum"],
    );
    // A required top-level section disappears.
    assert_rejected(
        validate_metrics_json(&METRICS_GOOD.replace("\"histograms\"", "\"histogram\"")),
        &["missing required member \"histograms\""],
    );
    // Histogram count must be an integer.
    assert_rejected(
        validate_metrics_json(&METRICS_GOOD.replace("\"count\": 2", "\"count\": 2.5")),
        &["$.histograms[0].count"],
    );
}

#[test]
fn trace_mutations_are_rejected_with_pointed_errors() {
    // An unknown dispatch reason is wire-format drift.
    assert_rejected(
        validate_serving_trace_json(
            &TRACE_GOOD.replace("\"reason\": \"full\"", "\"reason\": \"whim\""),
        ),
        &["reason", "not in enum"],
    );
    // Dropping the reconciliation block kills the conservation gate's input.
    assert_rejected(
        validate_serving_trace_json(&TRACE_GOOD.replace("\"reconciliation\"", "\"reconciled\"")),
        &["missing required member \"reconciliation\""],
    );
    // A request id cannot be negative.
    assert_rejected(
        validate_serving_trace_json(&TRACE_GOOD.replace("{\"id\": 0,", "{\"id\": -1,")),
        &["$.requests[0].id", "below minimum"],
    );
    // An unknown direction in a plan layer is drift.
    assert_rejected(
        validate_serving_trace_json(&TRACE_GOOD.replace("\"fwdd\"", "\"sideways\"")),
        &["$.plans[0].layers[0].direction", "not in enum"],
    );
    // `exact` must stay a boolean, not a stringly truth.
    assert_rejected(
        validate_serving_trace_json(&TRACE_GOOD.replace("\"exact\": true", "\"exact\": \"yes\"")),
        &["$.reconciliation.exact", "expected type"],
    );
}

#[test]
fn serving_mutations_are_rejected_with_pointed_errors() {
    // Dropping the time-series summary is drift.
    assert_rejected(
        validate_serving_json(&SERVING_GOOD.replace("\"timeseries\"", "\"ts\"")),
        &["missing required member \"timeseries\""],
    );
    // A cell with a negative burn rate violates the minimum.
    assert_rejected(
        validate_serving_json(
            &SERVING_GOOD.replace("\"max_slo_burn\": 0.05", "\"max_slo_burn\": -0.05"),
        ),
        &["$.timeseries.cells[0].max_slo_burn", "below minimum"],
    );
    // peak_queue_depth must be an integer.
    assert_rejected(
        validate_serving_json(
            &SERVING_GOOD.replace("\"peak_queue_depth\": 7", "\"peak_queue_depth\": 7.2"),
        ),
        &["$.timeseries.cells[0].peak_queue_depth"],
    );
}

#[test]
fn truncated_documents_are_parse_errors_not_passes() {
    for cut in [10, 50, 200] {
        let truncated = &TRACE_GOOD[..cut.min(TRACE_GOOD.len() - 1)];
        assert!(
            validate_serving_trace_json(truncated).is_err(),
            "truncated at {cut} must fail"
        );
    }
    let half = &METRICS_GOOD[..METRICS_GOOD.len() / 2];
    assert_rejected(validate_metrics_json(half), &["not valid JSON"]);
    let half = &SERVING_GOOD[..SERVING_GOOD.len() / 2];
    assert_rejected(validate_serving_json(half), &["not valid JSON"]);
}
