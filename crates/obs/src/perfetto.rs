//! Chrome-trace/Perfetto export of the recorded region spans.
//!
//! Emits the Chrome Trace Event JSON object format (`traceEvents` + metadata)
//! that both `chrome://tracing` and <https://ui.perfetto.dev> load directly.
//! The simulator has no wall clock, so the trace timebase is **one trace
//! microsecond per simulated cycle** — durations read as cycle counts.

use crate::escape_json;
use lsv_vengine::RegionProfile;

/// Render the profile's span log as a Chrome-trace JSON document.
///
/// Every recorded span becomes one complete (`"ph": "X"`) event on a single
/// track; nesting is reconstructed by the viewer from the timestamps. The
/// event `args` carry the full `root;...` path so flamegraph-style queries
/// work inside Perfetto.
pub fn perfetto_trace_json(profile: &RegionProfile) -> String {
    let mut out = String::with_capacity(64 + profile.spans.len() * 96);
    out.push_str("{\"traceEvents\":[");
    out.push_str(
        "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"process_name\",\
         \"args\":{\"name\":\"lsv-vengine core\"}}",
    );
    for span in &profile.spans {
        let path = &profile.paths[span.path as usize];
        out.push(',');
        out.push_str(&format!(
            "{{\"ph\":\"X\",\"pid\":0,\"tid\":0,\"cat\":\"region\",\"name\":\"{}\",\
             \"ts\":{},\"dur\":{},\"args\":{{\"path\":\"{}\"}}}}",
            escape_json(path.name),
            span.start,
            span.end - span.start,
            escape_json(&profile.full_name(span.path)),
        ));
    }
    out.push_str(&format!(
        "],\"displayTimeUnit\":\"ms\",\"otherData\":{{\"timebase\":\"1us = 1 cycle\",\
         \"total_cycles\":\"{}\",\"dropped_spans\":\"{}\"}}}}",
        profile.total.cycles, profile.dropped_spans
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_json;
    use lsv_arch::presets::sx_aurora;
    use lsv_vengine::{ExecutionMode, VCore};

    fn sample_profile() -> RegionProfile {
        let arch = sx_aurora();
        let mut core = VCore::new(&arch, ExecutionMode::TimingOnly, 1);
        core.enable_profiler();
        core.region_enter("outer");
        core.scalar_ops(4);
        core.region_enter("inner");
        core.scalar_ops(8);
        core.region_exit();
        core.region_exit();
        core.take_profile().expect("profiler enabled")
    }

    #[test]
    fn trace_is_valid_json_with_one_event_per_span() {
        let profile = sample_profile();
        let doc = parse_json(&perfetto_trace_json(&profile)).expect("valid JSON");
        let events = match doc.get("traceEvents") {
            Some(crate::JsonValue::Arr(events)) => events,
            other => panic!("traceEvents missing: {other:?}"),
        };
        // One metadata record plus one "X" event per recorded span.
        assert_eq!(events.len(), 1 + profile.spans.len());
        let first_span = &events[1];
        assert_eq!(
            first_span.get("ph"),
            Some(&crate::JsonValue::Str("X".to_string()))
        );
        assert!(first_span.get("dur").is_some());
    }
}
