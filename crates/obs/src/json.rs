//! A minimal JSON parser and JSON-Schema-subset validator.
//!
//! The build environment is offline, so the schema gate cannot pull in serde
//! or a full JSON Schema implementation. This module implements exactly what
//! the gate needs: a strict recursive-descent parser into [`JsonValue`] and a
//! validator for the schema subset used by `schemas/profile.schema.json` —
//! `type` (single or list), `properties`, `required`, `items`, `enum` (of
//! strings) and `minimum`. Unknown schema keywords are ignored, matching
//! JSON Schema's open-world semantics.

/// A parsed JSON document. Objects preserve key order (emission order is
/// deterministic across the repo, and golden tests compare bytes).
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    /// All JSON numbers parse as `f64`; the profile's counters stay well
    /// below 2^53 so the round-trip is exact.
    Num(f64),
    Str(String),
    Arr(Vec<JsonValue>),
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Object member lookup (first match).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The subset validator's name for this value's type.
    fn type_name(&self) -> &'static str {
        match self {
            JsonValue::Null => "null",
            JsonValue::Bool(_) => "boolean",
            JsonValue::Num(_) => "number",
            JsonValue::Str(_) => "string",
            JsonValue::Arr(_) => "array",
            JsonValue::Obj(_) => "object",
        }
    }
}

/// Parse a JSON document. Returns the value or a message with the byte
/// offset of the first error. Trailing non-whitespace is an error.
pub fn parse_json(text: &str) -> Result<JsonValue, String> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), String> {
    skip_ws(bytes, pos);
    if *pos < bytes.len() && bytes[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {}", c as char, *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(bytes, pos);
    let Some(&c) = bytes.get(*pos) else {
        return Err("unexpected end of input".to_string());
    };
    match c {
        b'{' => parse_object(bytes, pos),
        b'[' => parse_array(bytes, pos),
        b'"' => Ok(JsonValue::Str(parse_string(bytes, pos)?)),
        b't' => parse_literal(bytes, pos, "true", JsonValue::Bool(true)),
        b'f' => parse_literal(bytes, pos, "false", JsonValue::Bool(false)),
        b'n' => parse_literal(bytes, pos, "null", JsonValue::Null),
        b'-' | b'0'..=b'9' => parse_number(bytes, pos),
        _ => Err(format!("unexpected byte '{}' at {}", c as char, *pos)),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    lit: &str,
    value: JsonValue,
) -> Result<JsonValue, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(JsonValue::Num)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        let Some(&c) = bytes.get(*pos) else {
            return Err("unterminated string".to_string());
        };
        *pos += 1;
        match c {
            b'"' => return Ok(out),
            b'\\' => {
                let Some(&e) = bytes.get(*pos) else {
                    return Err("unterminated escape".to_string());
                };
                *pos += 1;
                match e {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = bytes
                            .get(*pos..*pos + 4)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .ok_or("truncated \\u escape")?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| "invalid \\u escape")?;
                        *pos += 4;
                        // Surrogate pairs are not needed by any profile field;
                        // map lone surrogates to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(format!("invalid escape at byte {}", *pos - 1)),
                }
            }
            _ => {
                // Re-decode the UTF-8 sequence starting at c.
                let len = utf8_len(c);
                let seq = bytes
                    .get(*pos - 1..*pos - 1 + len)
                    .ok_or("truncated UTF-8 sequence")?;
                let s = std::str::from_utf8(seq).map_err(|_| "invalid UTF-8 in string")?;
                out.push_str(s);
                *pos += len - 1;
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Obj(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

/// Validate `value` against `schema` (the subset described in the module
/// docs). Returns every violation found, each prefixed with a JSON-pointer
/// style location; an empty `Ok(())` means the document conforms.
pub fn validate_schema(value: &JsonValue, schema: &JsonValue) -> Result<(), Vec<String>> {
    let mut errors = Vec::new();
    validate_at(value, schema, "$", &mut errors);
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

fn validate_at(value: &JsonValue, schema: &JsonValue, path: &str, errors: &mut Vec<String>) {
    if let Some(ty) = schema.get("type") {
        let allowed: Vec<&str> = match ty {
            JsonValue::Str(s) => vec![s.as_str()],
            JsonValue::Arr(list) => list
                .iter()
                .filter_map(|v| match v {
                    JsonValue::Str(s) => Some(s.as_str()),
                    _ => None,
                })
                .collect(),
            _ => vec![],
        };
        if !type_matches(value, &allowed) {
            errors.push(format!(
                "{path}: expected type {allowed:?}, got {}",
                value.type_name()
            ));
            return; // Deeper checks would only cascade.
        }
    }
    if let (Some(JsonValue::Num(min)), JsonValue::Num(x)) = (schema.get("minimum"), value) {
        if x < min {
            errors.push(format!("{path}: {x} below minimum {min}"));
        }
    }
    if let (Some(JsonValue::Arr(options)), JsonValue::Str(s)) = (schema.get("enum"), value) {
        let ok = options
            .iter()
            .any(|o| matches!(o, JsonValue::Str(v) if v == s));
        if !ok {
            errors.push(format!("{path}: {s:?} not in enum"));
        }
    }
    if let Some(JsonValue::Arr(required)) = schema.get("required") {
        for r in required {
            if let JsonValue::Str(key) = r {
                if value.get(key).is_none() {
                    errors.push(format!("{path}: missing required member {key:?}"));
                }
            }
        }
    }
    if let (Some(JsonValue::Obj(props)), JsonValue::Obj(_)) = (schema.get("properties"), value) {
        for (key, sub) in props {
            if let Some(member) = value.get(key) {
                validate_at(member, sub, &format!("{path}.{key}"), errors);
            }
        }
    }
    if let (Some(item_schema), JsonValue::Arr(items)) = (schema.get("items"), value) {
        for (i, item) in items.iter().enumerate() {
            validate_at(item, item_schema, &format!("{path}[{i}]"), errors);
        }
    }
}

fn type_matches(value: &JsonValue, allowed: &[&str]) -> bool {
    allowed.iter().any(|&t| match t {
        "integer" => matches!(value, JsonValue::Num(x) if x.fract() == 0.0),
        "number" => matches!(value, JsonValue::Num(_)),
        other => other == value.type_name(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_round_trip_basics() {
        let v = parse_json(r#"{"a": [1, 2.5, -3e2], "b": "x\ny", "c": null, "d": true}"#).unwrap();
        assert_eq!(v.get("b"), Some(&JsonValue::Str("x\ny".to_string())));
        assert_eq!(
            v.get("a"),
            Some(&JsonValue::Arr(vec![
                JsonValue::Num(1.0),
                JsonValue::Num(2.5),
                JsonValue::Num(-300.0)
            ]))
        );
        assert_eq!(v.get("c"), Some(&JsonValue::Null));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(parse_json("{\"a\": }").is_err());
        assert!(parse_json("[1, 2,]").is_err());
        assert!(parse_json("{} trailing").is_err());
        assert!(parse_json("\"unterminated").is_err());
    }

    #[test]
    fn parses_unicode_strings() {
        let v = parse_json("\"caf\u{e9} \\u0041\"").unwrap();
        assert_eq!(v, JsonValue::Str("caf\u{e9} A".to_string()));
    }

    #[test]
    fn validator_checks_types_required_and_items() {
        let schema = parse_json(
            r#"{
                "type": "object",
                "required": ["n", "tags"],
                "properties": {
                    "n": {"type": "integer", "minimum": 0},
                    "tags": {"type": "array", "items": {"type": "string"}},
                    "mode": {"type": "string", "enum": ["a", "b"]}
                }
            }"#,
        )
        .unwrap();
        let good = parse_json(r#"{"n": 3, "tags": ["x"], "mode": "a"}"#).unwrap();
        assert!(validate_schema(&good, &schema).is_ok());

        let bad = parse_json(r#"{"n": -1.5, "tags": ["x", 7], "mode": "z"}"#).unwrap();
        let errors = validate_schema(&bad, &schema).unwrap_err();
        let text = errors.join("; ");
        assert!(text.contains("$.n"), "{text}");
        assert!(text.contains("$.tags[1]"), "{text}");
        assert!(text.contains("enum"), "{text}");
    }

    #[test]
    fn validator_reports_missing_required() {
        let schema = parse_json(r#"{"type": "object", "required": ["x"]}"#).unwrap();
        let errors = validate_schema(&parse_json("{}").unwrap(), &schema).unwrap_err();
        assert!(errors[0].contains("missing required member \"x\""));
    }
}
