//! The machine-readable `profile.json` report.
//!
//! One self-contained document per profiled run: run metadata, whole-run
//! totals, the per-region table (self/inclusive cycles, stall breakdown,
//! instruction mix, per-level cache counters, MPKI), an explicit
//! cycle-reconciliation record, and a roofline summary. The shape is pinned
//! by `schemas/profile.schema.json` ([`PROFILE_SCHEMA`]) and CI validates
//! every emitted document against it via [`validate_profile_json`].

use crate::{escape_json, json_f64, parse_json, validate_schema};
use lsv_cache::{HierarchyStats, LevelStats};
use lsv_vengine::{InstCounters, RegionProfile};

/// The checked-in JSON schema `profile.json` must conform to.
pub const PROFILE_SCHEMA: &str = include_str!("../schemas/profile.schema.json");

/// The checked-in JSON schema `results/lint.json` (emitted by the
/// `lint-kernels` binary) must conform to. The rule and severity enums pin
/// the diagnostics wire format: adding a lint rule without extending the
/// schema fails the gate, which is the point.
pub const LINT_SCHEMA: &str = include_str!("../schemas/lint.schema.json");

/// The checked-in JSON schema `results/BENCH_serving.json` (emitted by the
/// `bench-serving` binary and `lsvconv serve`) must conform to. The arrival
/// and pass enums pin the serving sweep's wire format.
pub const SERVING_SCHEMA: &str = include_str!("../schemas/serving.schema.json");

/// The checked-in JSON schema every [`crate::MetricsRegistry`] document
/// (`metrics.json`, the per-bin `*.store.json` dumps) must conform to —
/// one wire format for every metrics publisher.
pub const METRICS_SCHEMA: &str = include_str!("../schemas/metrics.schema.json");

/// The checked-in JSON schema `serving_trace.json` (emitted by
/// `lsvconv serve --trace`) must conform to. The dispatch-reason and
/// direction enums pin the trace wire format.
pub const SERVING_TRACE_SCHEMA: &str = include_str!("../schemas/serving_trace.schema.json");

/// Run metadata and machine constants the report embeds; everything the
/// exporter cannot read off the [`RegionProfile`] itself.
#[derive(Debug, Clone)]
pub struct ProfileMeta {
    /// Human label for the run, e.g. `"conv3_4 fwdd bdc"`.
    pub label: String,
    /// Architecture preset name.
    pub arch: String,
    /// Pass direction (`fwdd` / `bwdd` / `bwdw`).
    pub direction: String,
    /// Algorithm/engine name.
    pub algorithm: String,
    /// Core frequency in GHz (cycle → time conversion).
    pub freq_ghz: f64,
    /// Useful FLOPs performed by the *profiled slice* (2 per FMA element).
    pub flops: u64,
    /// Peak FLOPs per cycle of one core (roofline ceiling).
    pub peak_flops_per_cycle: f64,
    /// Cache line size in bytes (memory traffic = `mem_fetches × line`).
    pub line_bytes: u64,
    /// Sustained memory bytes per cycle per core (roofline slope).
    pub mem_bytes_per_cycle: f64,
}

fn level_json(l: &LevelStats) -> String {
    format!(
        "{{\"hits\":{},\"misses\":{},\"conflict_misses\":{},\"writebacks\":{}}}",
        l.hits, l.misses, l.conflict_misses, l.writebacks
    )
}

fn cache_json(c: &HierarchyStats) -> String {
    format!(
        "{{\"l1\":{},\"l2\":{},\"llc\":{},\"mem_fetches\":{}}}",
        level_json(&c.l1),
        level_json(&c.l2),
        level_json(&c.llc),
        c.mem_fetches
    )
}

fn insts_json(i: &InstCounters) -> String {
    format!(
        "{{\"scalar_loads\":{},\"scalar_ops\":{},\"vloads\":{},\"vstores\":{},\
         \"vfmas\":{},\"gathers\":{},\"scatters\":{},\"fma_elems\":{}}}",
        i.scalar_loads,
        i.scalar_ops,
        i.vloads,
        i.vstores,
        i.vfmas,
        i.gathers,
        i.scatters,
        i.fma_elems
    )
}

fn stalls_json(breakdown: &[(&'static str, u64); 4]) -> String {
    let parts: Vec<String> = breakdown
        .iter()
        .map(|(label, cycles)| format!("\"{label}\":{cycles}"))
        .collect();
    format!("{{{}}}", parts.join(","))
}

/// Emit the `profile.json` document. Deterministic byte-for-byte for a given
/// (profile, meta) — golden tests rely on that.
pub fn profile_report_json(profile: &RegionProfile, meta: &ProfileMeta) -> String {
    let total = &profile.total;
    let mut out = String::with_capacity(2048 + profile.regions.len() * 512);

    out.push_str("{\n\"version\":1,\n");
    out.push_str(&format!(
        "\"meta\":{{\"label\":\"{}\",\"arch\":\"{}\",\"direction\":\"{}\",\
         \"algorithm\":\"{}\",\"freq_ghz\":{}}},\n",
        escape_json(&meta.label),
        escape_json(&meta.arch),
        escape_json(&meta.direction),
        escape_json(&meta.algorithm),
        json_f64(meta.freq_ghz)
    ));

    let total_insts = total.insts.total();
    out.push_str(&format!(
        "\"total\":{{\"cycles\":{},\"instructions\":{},\"stalls\":{},\"insts\":{},\
         \"cache\":{},\"mpki_l1\":{}}},\n",
        total.cycles,
        total_insts,
        stalls_json(&total.stall_breakdown()),
        insts_json(&total.insts),
        cache_json(&total.cache),
        json_f64(total.cache.l1.mpki(total_insts))
    ));

    out.push_str("\"regions\":[\n");
    for (id, (path, stats)) in profile.paths.iter().zip(&profile.regions).enumerate() {
        if id > 0 {
            out.push_str(",\n");
        }
        let parent = match path.parent {
            Some(p) => p.to_string(),
            None => "null".to_string(),
        };
        out.push_str(&format!(
            "{{\"id\":{},\"name\":\"{}\",\"path\":\"{}\",\"parent\":{},\"depth\":{},\
             \"enters\":{},\"self_cycles\":{},\"inclusive_cycles\":{},\"instructions\":{},\
             \"mpki_l1\":{},\"stalls\":{},\"insts\":{},\"cache\":{}}}",
            id,
            escape_json(path.name),
            escape_json(&profile.full_name(id as u32)),
            parent,
            path.depth,
            stats.enters,
            stats.cycles,
            profile.inclusive_cycles(id as u32),
            stats.insts.total(),
            json_f64(stats.mpki_l1()),
            stalls_json(&stats.stall_breakdown()),
            insts_json(&stats.insts),
            cache_json(&stats.cache)
        ));
    }
    out.push_str("\n],\n");

    let self_sum = profile.self_cycles_total();
    out.push_str(&format!(
        "\"reconciliation\":{{\"self_cycles_sum\":{},\"total_cycles\":{},\"exact\":{}}},\n",
        self_sum,
        total.cycles,
        self_sum == total.cycles
    ));

    // Roofline: attained FLOPs/cycle against the compute ceiling and the
    // memory slope. The ridge point is the arithmetic intensity where the
    // two bounds meet; below it the kernel is memory-bound.
    let cycles = total.cycles.max(1);
    let flops_per_cycle = meta.flops as f64 / cycles as f64;
    let mem_bytes = total.cache.mem_fetches * meta.line_bytes;
    let intensity = if mem_bytes == 0 {
        f64::INFINITY
    } else {
        meta.flops as f64 / mem_bytes as f64
    };
    let ridge = if meta.mem_bytes_per_cycle > 0.0 {
        meta.peak_flops_per_cycle / meta.mem_bytes_per_cycle
    } else {
        0.0
    };
    let memory_bound = intensity < ridge;
    out.push_str(&format!(
        "\"roofline\":{{\"flops\":{},\"cycles\":{},\"flops_per_cycle\":{},\
         \"peak_flops_per_cycle\":{},\"efficiency\":{},\"mem_bytes\":{},\
         \"arithmetic_intensity\":{},\"ridge_intensity\":{},\"memory_bound\":{}}},\n",
        meta.flops,
        total.cycles,
        json_f64(flops_per_cycle),
        json_f64(meta.peak_flops_per_cycle),
        json_f64(flops_per_cycle / meta.peak_flops_per_cycle.max(f64::MIN_POSITIVE)),
        mem_bytes,
        json_f64(if intensity.is_finite() {
            intensity
        } else {
            0.0
        }),
        json_f64(ridge),
        memory_bound
    ));

    out.push_str(&format!(
        "\"spans\":{},\n\"dropped_spans\":{}\n}}",
        profile.spans.len(),
        profile.dropped_spans
    ));
    out
}

/// Parse a `profile.json` document and validate it against
/// [`PROFILE_SCHEMA`]. Returns a single aggregated error message on failure;
/// CI treats any `Err` as a hard failure.
pub fn validate_profile_json(text: &str) -> Result<(), String> {
    let schema = parse_json(PROFILE_SCHEMA)
        .map_err(|e| format!("internal error: profile.schema.json unparseable: {e}"))?;
    let doc = parse_json(text).map_err(|e| format!("profile.json is not valid JSON: {e}"))?;
    validate_schema(&doc, &schema).map_err(|errors| {
        format!(
            "profile.json violates schema ({} error(s)):\n  {}",
            errors.len(),
            errors.join("\n  ")
        )
    })
}

/// Parse a `lint.json` document and validate it against [`LINT_SCHEMA`].
/// `lint-kernels` re-reads and validates its own output through this after
/// writing, so schema drift fails the run that introduced it.
pub fn validate_lint_json(text: &str) -> Result<(), String> {
    let schema = parse_json(LINT_SCHEMA)
        .map_err(|e| format!("internal error: lint.schema.json unparseable: {e}"))?;
    let doc = parse_json(text).map_err(|e| format!("lint.json is not valid JSON: {e}"))?;
    validate_schema(&doc, &schema).map_err(|errors| {
        format!(
            "lint.json violates schema ({} error(s)):\n  {}",
            errors.len(),
            errors.join("\n  ")
        )
    })
}

/// Parse a `BENCH_serving.json` document and validate it against
/// [`SERVING_SCHEMA`]. `bench-serving` re-reads and validates its own output
/// through this after writing, so schema drift fails the run that
/// introduced it.
pub fn validate_serving_json(text: &str) -> Result<(), String> {
    let schema = parse_json(SERVING_SCHEMA)
        .map_err(|e| format!("internal error: serving.schema.json unparseable: {e}"))?;
    let doc = parse_json(text).map_err(|e| format!("BENCH_serving.json is not valid JSON: {e}"))?;
    validate_schema(&doc, &schema).map_err(|errors| {
        format!(
            "BENCH_serving.json violates schema ({} error(s)):\n  {}",
            errors.len(),
            errors.join("\n  ")
        )
    })
}

/// Parse a metrics-registry document (`metrics.json`, `*.store.json`) and
/// validate it against [`METRICS_SCHEMA`].
pub fn validate_metrics_json(text: &str) -> Result<(), String> {
    let schema = parse_json(METRICS_SCHEMA)
        .map_err(|e| format!("internal error: metrics.schema.json unparseable: {e}"))?;
    let doc = parse_json(text).map_err(|e| format!("metrics.json is not valid JSON: {e}"))?;
    validate_schema(&doc, &schema).map_err(|errors| {
        format!(
            "metrics.json violates schema ({} error(s)):\n  {}",
            errors.len(),
            errors.join("\n  ")
        )
    })
}

/// Parse a `serving_trace.json` document and validate it against
/// [`SERVING_TRACE_SCHEMA`]. `lsvconv serve --trace` re-reads and validates
/// its own output through this after writing, so schema drift fails the run
/// that introduced it.
pub fn validate_serving_trace_json(text: &str) -> Result<(), String> {
    let schema = parse_json(SERVING_TRACE_SCHEMA)
        .map_err(|e| format!("internal error: serving_trace.schema.json unparseable: {e}"))?;
    let doc = parse_json(text).map_err(|e| format!("serving_trace.json is not valid JSON: {e}"))?;
    validate_schema(&doc, &schema).map_err(|errors| {
        format!(
            "serving_trace.json violates schema ({} error(s)):\n  {}",
            errors.len(),
            errors.join("\n  ")
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsv_arch::presets::sx_aurora;
    use lsv_vengine::{ExecutionMode, VCore};

    fn sample() -> (RegionProfile, ProfileMeta) {
        let arch = sx_aurora();
        let mut core = VCore::new(&arch, ExecutionMode::TimingOnly, 1);
        core.enable_profiler();
        core.region_enter("fwd");
        core.scalar_ops(5);
        core.region_enter("inner_loop");
        for reg in 0..4 {
            core.vbroadcast_zero(reg, 256);
        }
        core.region_exit();
        core.region_exit();
        let profile = core.take_profile().unwrap();
        let meta = ProfileMeta {
            label: "unit test".to_string(),
            arch: arch.name.clone(),
            direction: "fwdd".to_string(),
            algorithm: "bdc".to_string(),
            freq_ghz: arch.freq_ghz,
            flops: 1000,
            peak_flops_per_cycle: arch.peak_flops_per_cycle(),
            line_bytes: arch.l1d.line as u64,
            mem_bytes_per_cycle: arch.l1d.line as f64 / arch.mem_line_cycles.max(1) as f64,
        };
        (profile, meta)
    }

    #[test]
    fn report_is_schema_valid_and_reconciles() {
        let (profile, meta) = sample();
        let text = profile_report_json(&profile, &meta);
        validate_profile_json(&text).expect("schema-valid");

        let doc = parse_json(&text).unwrap();
        let rec = doc.get("reconciliation").unwrap();
        assert_eq!(rec.get("exact"), Some(&crate::JsonValue::Bool(true)));
        let total = doc.get("total").unwrap();
        assert_eq!(
            total.get("cycles"),
            Some(&crate::JsonValue::Num(profile.total.cycles as f64))
        );
    }

    #[test]
    fn validator_rejects_mutilated_documents() {
        let (profile, meta) = sample();
        let text = profile_report_json(&profile, &meta);
        let broken = text.replace("\"version\":1", "\"version\":\"one\"");
        assert!(validate_profile_json(&broken).is_err());
        let missing = text.replace("\"reconciliation\"", "\"reconciliatoin\"");
        assert!(validate_profile_json(&missing).is_err());
    }

    #[test]
    fn lint_schema_accepts_entries_and_catches_drift() {
        let good = r#"[
          {"layer": 0, "problem": "8x64x64x28x28 k3 s1 p1", "direction": "fwdd",
           "algorithm": "DC", "vlen_bits": 16384, "replayed": false,
           "deny": 0, "warn": 1, "note": 0,
           "diagnostics": [
             {"rule": "DEAD-WRITE", "severity": "warn", "message": "x"}
           ]}
        ]"#;
        validate_lint_json(good).expect("schema-valid");

        // An unknown rule string is drift: the enum pins the wire format.
        let drifted = good.replace("DEAD-WRITE", "DEAD-WRITES");
        assert!(validate_lint_json(&drifted).is_err());
        // Dropping a required member (the static-path marker) is drift too.
        let missing = good.replace("\"replayed\": false,", "");
        assert!(validate_lint_json(&missing).is_err());
        assert!(validate_lint_json("[{]").is_err());
    }

    #[test]
    fn serving_schema_accepts_documents_and_catches_drift() {
        let good = r#"{
          "version": 1, "tool": "bench-serving", "arch": "sx-aurora",
          "model": "resnet-50", "pass": "infer", "mode": "timing-only",
          "seed": 42, "requests": 200, "max_batch": 8, "slo_ms": 120.5,
          "reference_capacity_rps": 150.0,
          "engines": ["BDC", "vednn"], "policies": ["adaptive8", "fixed8"],
          "utilizations": [0.25, 0.9],
          "rows": [
            {"arrival": "poisson", "policy": "adaptive8", "engine": "BDC",
             "offered_rps": 37.5, "utilization": 0.25, "completed": 200,
             "dispatches": 180, "mean_batch": 1.11, "p50_ms": 20.0,
             "p95_ms": 31.0, "p99_ms": 35.5, "mean_ms": 21.2,
             "throughput_rps": 37.1, "slo_attainment": 1.0}
          ],
          "best_by_load": [
            {"arrival": "poisson", "offered_rps": 37.5,
             "policy": "adaptive8", "engine": "BDC"}
          ],
          "timeseries": {
            "engine": "BDC", "samples_per_cell": 120,
            "cells": [
              {"arrival": "poisson", "policy": "adaptive8", "utilization": 0.25,
               "peak_queue_depth": 3, "mean_queue_depth": 0.4,
               "mean_utilization": 0.31, "max_slo_burn": 0.0,
               "final_p99_ms": 35.5}
            ]
          }
        }"#;
        validate_serving_json(good).expect("schema-valid");

        // An unknown arrival process is drift: the enum pins the wire format.
        let drifted = good.replace("\"poisson\"", "\"uniform\"");
        assert!(validate_serving_json(&drifted).is_err());
        // Dropping a required member is drift too.
        let missing = good.replace("\"slo_ms\": 120.5,", "");
        assert!(validate_serving_json(&missing).is_err());
        // A negative percentile violates the minimum.
        let negative = good.replace("\"p99_ms\": 35.5", "\"p99_ms\": -1.0");
        assert!(validate_serving_json(&negative).is_err());
        // The time-series summary is required, and an undefined rolling p99
        // is spelled null (never a fake zero — the json_f64 contract).
        let no_ts = good.replace("\"timeseries\"", "\"timeserie\"");
        assert!(validate_serving_json(&no_ts).is_err());
        let null_p99 = good.replace("\"final_p99_ms\": 35.5", "\"final_p99_ms\": null");
        validate_serving_json(&null_p99).expect("null p99 is schema-permitted");
        assert!(validate_serving_json("{]").is_err());
    }

    #[test]
    fn stall_keys_come_from_the_shared_labels() {
        let (profile, meta) = sample();
        let text = profile_report_json(&profile, &meta);
        for label in lsv_vengine::STALL_LABELS {
            assert!(text.contains(&format!("\"{label}\":")), "missing {label}");
        }
    }
}
