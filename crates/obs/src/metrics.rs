//! A unified metrics registry: counters, gauges and histograms, hand-rolled
//! in the same no-deps discipline as [`crate::json`].
//!
//! One registry collects everything a run wants to report — queue traffic,
//! layer-store hits, tuner evaluations, runner plans — and serializes it as
//! one deterministic `metrics.json` document (names sorted, one schema,
//! validated by [`crate::report::validate_metrics_json`]). This replaces the
//! per-subsystem env-var side channels (`LSV_STORE_STATS` wrote its own
//! ad-hoc object) with a single code path and a single wire format.
//!
//! Concurrency: all mutation goes through a `Mutex` over `BTreeMap`s.
//! Metrics publication sits far off every hot path (a handful of calls per
//! run, after the simulation), so the lock costs nothing measurable and
//! buys deterministic, sorted serialization for free.
//!
//! Two usage modes:
//!
//! * **Explicit registry** — tests and library code build a local
//!   [`MetricsRegistry`] and pass it to the `publish_metrics` hooks, keeping
//!   assertions hermetic.
//! * **Process-wide registry** — CLI paths use [`registry`], a lazy global,
//!   so independent subsystems (store, tuner, runner, queue) land in one
//!   document without threading a handle everywhere.

use crate::{escape_json, json_f64};
use std::collections::BTreeMap;
use std::sync::{Mutex, OnceLock};

/// Aggregate summary of one histogram's observations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Number of observations.
    pub count: u64,
    /// Sum of observed values.
    pub sum: f64,
    /// Smallest observed value (`NaN` when empty — serialized as `null`).
    pub min: f64,
    /// Largest observed value (`NaN` when empty — serialized as `null`).
    pub max: f64,
}

impl HistogramSummary {
    fn empty() -> Self {
        Self {
            count: 0,
            sum: 0.0,
            min: f64::NAN,
            max: f64::NAN,
        }
    }

    fn observe(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        if self.count == 1 {
            self.min = x;
            self.max = x;
        } else {
            self.min = self.min.min(x);
            self.max = self.max.max(x);
        }
    }

    /// Mean of the observations (`NaN` when empty).
    pub fn mean(&self) -> f64 {
        self.sum / self.count as f64
    }
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, HistogramSummary>,
}

/// The metrics registry (see module docs).
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` to the named monotonic counter (created at 0).
    pub fn counter_add(&self, name: &str, delta: u64) {
        let mut inner = self.inner.lock().unwrap();
        *inner.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Read a counter (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.inner
            .lock()
            .unwrap()
            .counters
            .get(name)
            .copied()
            .unwrap_or(0)
    }

    /// Set the named gauge to its latest value.
    pub fn gauge_set(&self, name: &str, value: f64) {
        self.inner
            .lock()
            .unwrap()
            .gauges
            .insert(name.to_string(), value);
    }

    /// Read a gauge (`None` if never set).
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.inner.lock().unwrap().gauges.get(name).copied()
    }

    /// Record one observation into the named histogram.
    pub fn observe(&self, name: &str, value: f64) {
        let mut inner = self.inner.lock().unwrap();
        inner
            .histograms
            .entry(name.to_string())
            .or_insert_with(HistogramSummary::empty)
            .observe(value);
    }

    /// Read a histogram summary (`None` if never observed).
    pub fn histogram(&self, name: &str) -> Option<HistogramSummary> {
        self.inner.lock().unwrap().histograms.get(name).copied()
    }

    /// Serialize the registry as one `metrics.json` document (the shape
    /// pinned by `schemas/metrics.schema.json`). Deterministic: entries come
    /// out name-sorted, and the same registry state always yields the same
    /// bytes.
    pub fn to_json(&self, tool: &str) -> String {
        let inner = self.inner.lock().unwrap();
        let mut out = String::with_capacity(256);
        out.push_str("{\n");
        out.push_str("  \"version\": 1,\n");
        out.push_str(&format!("  \"tool\": \"{}\",\n", escape_json(tool)));
        out.push_str("  \"counters\": [");
        for (i, (name, value)) in inner.counters.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"value\": {value}}}",
                escape_json(name)
            ));
        }
        out.push_str(if inner.counters.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        out.push_str("  \"gauges\": [");
        for (i, (name, value)) in inner.gauges.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"value\": {}}}",
                escape_json(name),
                json_f64(*value)
            ));
        }
        out.push_str(if inner.gauges.is_empty() {
            "],\n"
        } else {
            "\n  ],\n"
        });
        out.push_str("  \"histograms\": [");
        for (i, (name, h)) in inner.histograms.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}}}",
                escape_json(name),
                h.count,
                json_f64(h.sum),
                json_f64(h.min),
                json_f64(h.max)
            ));
        }
        out.push_str(if inner.histograms.is_empty() {
            "]\n"
        } else {
            "\n  ]\n"
        });
        out.push_str("}\n");
        out
    }

    /// Human-readable one-line-per-metric dump (the `--metrics` flag).
    pub fn summary_lines(&self) -> Vec<String> {
        let inner = self.inner.lock().unwrap();
        let mut lines = Vec::new();
        for (name, value) in &inner.counters {
            lines.push(format!("counter   {name} = {value}"));
        }
        for (name, value) in &inner.gauges {
            lines.push(format!("gauge     {name} = {value}"));
        }
        for (name, h) in &inner.histograms {
            lines.push(format!(
                "histogram {name}: n={} sum={:.3} min={:.3} max={:.3}",
                h.count, h.sum, h.min, h.max
            ));
        }
        lines
    }
}

/// The process-wide registry CLI paths publish into (lazily created; never
/// reset — counters are process-lifetime totals, like [`std::process::id`]).
pub fn registry() -> &'static MetricsRegistry {
    static REGISTRY: OnceLock<MetricsRegistry> = OnceLock::new();
    REGISTRY.get_or_init(MetricsRegistry::new)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::validate_metrics_json;

    #[test]
    fn counters_gauges_histograms_roundtrip() {
        let reg = MetricsRegistry::new();
        reg.counter_add("store.mem_hits", 3);
        reg.counter_add("store.mem_hits", 2);
        reg.gauge_set("store.disk_bytes", 4096.0);
        reg.gauge_set("store.disk_bytes", 8192.0);
        reg.observe("queue.wait_ms", 1.5);
        reg.observe("queue.wait_ms", 0.5);
        assert_eq!(reg.counter("store.mem_hits"), 5);
        assert_eq!(reg.counter("untouched"), 0);
        assert_eq!(reg.gauge("store.disk_bytes"), Some(8192.0));
        let h = reg.histogram("queue.wait_ms").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 2.0);
        assert_eq!((h.min, h.max), (0.5, 1.5));
        assert_eq!(h.mean(), 1.0);
    }

    #[test]
    fn serialization_is_deterministic_and_sorted() {
        let a = MetricsRegistry::new();
        a.counter_add("z.last", 1);
        a.counter_add("a.first", 2);
        let b = MetricsRegistry::new();
        b.counter_add("a.first", 2);
        b.counter_add("z.last", 1);
        let (ja, jb) = (a.to_json("unit"), b.to_json("unit"));
        assert_eq!(ja, jb, "insertion order must not leak into the bytes");
        let a_pos = ja.find("a.first").unwrap();
        let z_pos = ja.find("z.last").unwrap();
        assert!(a_pos < z_pos, "entries come out name-sorted");
    }

    #[test]
    fn empty_and_populated_documents_are_schema_valid() {
        let reg = MetricsRegistry::new();
        validate_metrics_json(&reg.to_json("unit")).expect("empty registry");
        reg.counter_add("c", 1);
        reg.gauge_set("g", -1.25);
        reg.observe("h", 10.0);
        validate_metrics_json(&reg.to_json("unit")).expect("populated registry");
    }

    #[test]
    fn empty_histogram_bounds_serialize_as_null() {
        // min/max of zero observations are undefined; the document must say
        // null, not a fake 0 (the json_f64 contract).
        let reg = MetricsRegistry::new();
        reg.gauge_set("undefined", f64::NAN);
        let doc = reg.to_json("unit");
        assert!(doc.contains("\"value\": null"), "{doc}");
        validate_metrics_json(&doc).expect("null gauge is schema-permitted");
    }
}
