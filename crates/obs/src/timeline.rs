//! Generic multi-track Chrome-trace/Perfetto timeline builder.
//!
//! [`crate::perfetto_trace_json`] renders one core's region spans on a
//! single track; the serving-plane trace needs more: a server track with
//! batch spans, one lane per concurrent request, and counter tracks (queue
//! depth, batch occupancy). This builder emits the Chrome Trace Event JSON
//! object format (`"ph": "M"` metadata, `"ph": "X"` complete spans,
//! `"ph": "C"` counters) that <https://ui.perfetto.dev> loads directly.
//!
//! Timestamps are caller-defined `f64`s in whatever simulated unit the
//! caller uses (the serving trace uses **one trace microsecond per simulated
//! millisecond**, so durations read as milliseconds); the builder passes
//! them through [`crate::json_f64`] untouched — no scaling, no rounding.

use crate::{escape_json, json_f64};

/// Incremental builder for a multi-track trace document. Events are emitted
/// in call order, so a fixed build sequence yields byte-identical documents.
pub struct TimelineBuilder {
    events: Vec<String>,
    spans: usize,
}

impl TimelineBuilder {
    /// An empty timeline.
    pub fn new() -> Self {
        Self {
            events: Vec::new(),
            spans: 0,
        }
    }

    /// Name the process `pid` (one `"ph": "M"` process_name record).
    pub fn process(&mut self, pid: u32, name: &str) {
        self.events.push(format!(
            "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":0,\"name\":\"process_name\",\
             \"args\":{{\"name\":\"{}\"}}}}",
            escape_json(name)
        ));
    }

    /// Name the track `(pid, tid)` (one `"ph": "M"` thread_name record).
    pub fn track(&mut self, pid: u32, tid: u32, name: &str) {
        self.events.push(format!(
            "{{\"ph\":\"M\",\"pid\":{pid},\"tid\":{tid},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"{}\"}}}}",
            escape_json(name)
        ));
    }

    /// One complete (`"ph": "X"`) span on track `(pid, tid)`. `args` is a
    /// list of pre-rendered `(key, json_value)` pairs (values must already
    /// be valid JSON fragments — quoted strings, numbers, ...).
    #[allow(clippy::too_many_arguments)]
    pub fn span(
        &mut self,
        pid: u32,
        tid: u32,
        cat: &str,
        name: &str,
        ts: f64,
        dur: f64,
        args: &[(&str, String)],
    ) {
        let rendered: Vec<String> = args
            .iter()
            .map(|(k, v)| format!("\"{}\":{v}", escape_json(k)))
            .collect();
        self.events.push(format!(
            "{{\"ph\":\"X\",\"pid\":{pid},\"tid\":{tid},\"cat\":\"{}\",\"name\":\"{}\",\
             \"ts\":{},\"dur\":{},\"args\":{{{}}}}}",
            escape_json(cat),
            escape_json(name),
            json_f64(ts),
            json_f64(dur),
            rendered.join(",")
        ));
        self.spans += 1;
    }

    /// One counter (`"ph": "C"`) sample: the named counter track of `pid`
    /// takes `value` at `ts`.
    pub fn counter(&mut self, pid: u32, name: &str, ts: f64, value: f64) {
        self.events.push(format!(
            "{{\"ph\":\"C\",\"pid\":{pid},\"tid\":0,\"name\":\"{}\",\"ts\":{},\
             \"args\":{{\"value\":{}}}}}",
            escape_json(name),
            json_f64(ts),
            json_f64(value)
        ));
    }

    /// Spans emitted so far.
    pub fn span_count(&self) -> usize {
        self.spans
    }

    /// Render the finished document. `timebase` documents the caller's time
    /// unit in `otherData`; `other` appends extra pre-rendered
    /// `(key, json_value)` metadata pairs.
    pub fn finish(self, timebase: &str, other: &[(&str, String)]) -> String {
        let mut out = String::with_capacity(64 + self.events.len() * 96);
        out.push_str("{\"traceEvents\":[");
        out.push_str(&self.events.join(","));
        out.push_str(&format!(
            "],\"displayTimeUnit\":\"ms\",\"otherData\":{{\"timebase\":\"{}\"",
            escape_json(timebase)
        ));
        for (k, v) in other {
            out.push_str(&format!(",\"{}\":{v}", escape_json(k)));
        }
        out.push_str("}}");
        out
    }
}

impl Default for TimelineBuilder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{parse_json, JsonValue};

    #[test]
    fn builds_a_valid_multi_track_document() {
        let mut tl = TimelineBuilder::new();
        tl.process(0, "server");
        tl.track(0, 0, "batches");
        tl.track(0, 1, "request lane 0");
        tl.span(
            0,
            0,
            "batch",
            "batch 0",
            0.0,
            5.0,
            &[("k", "2".to_string())],
        );
        tl.span(
            0,
            1,
            "request",
            "r0 wait",
            0.0,
            1.5,
            &[("id", "0".to_string()), ("why", "\"queued\"".to_string())],
        );
        tl.counter(0, "queue_depth", 0.0, 1.0);
        tl.counter(0, "queue_depth", 1.5, 0.0);
        assert_eq!(tl.span_count(), 2);
        let doc = tl.finish("1us = 1ms", &[("requests", "1".to_string())]);
        let v = parse_json(&doc).expect("valid JSON");
        let JsonValue::Arr(events) = v.get("traceEvents").unwrap() else {
            panic!("traceEvents must be an array");
        };
        assert_eq!(events.len(), 7);
        let phases: Vec<&JsonValue> = events.iter().filter_map(|e| e.get("ph")).collect();
        assert!(phases.contains(&&JsonValue::Str("M".into())));
        assert!(phases.contains(&&JsonValue::Str("X".into())));
        assert!(phases.contains(&&JsonValue::Str("C".into())));
        let other = v.get("otherData").unwrap();
        assert_eq!(other.get("requests"), Some(&JsonValue::Num(1.0)));
    }

    #[test]
    fn same_build_sequence_is_byte_identical() {
        let build = || {
            let mut tl = TimelineBuilder::new();
            tl.process(0, "p");
            tl.span(0, 0, "c", "s", 1.0, 2.0, &[]);
            tl.finish("1us = 1ms", &[])
        };
        assert_eq!(build(), build());
    }
}
