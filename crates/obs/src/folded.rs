//! Folded-stack flamegraph export.
//!
//! The folded format is one line per stack, `frame;frame;frame weight`, the
//! input of Brendan Gregg's `flamegraph.pl` and of `inferno-flamegraph`.
//! Weights are **self cycles** (exclusive time), which is exactly what a
//! flamegraph expects: the renderer derives inclusive widths by summing
//! children under a prefix.

use lsv_vengine::RegionProfile;

/// Render the per-region accounting as folded stacks, one region path per
/// line in region-id (interning) order. Regions that were never entered or
/// accumulated zero self cycles are omitted — flamegraph tools treat
/// zero-weight lines as noise.
pub fn folded_stacks(profile: &RegionProfile) -> String {
    let mut out = String::new();
    for id in 0..profile.regions.len() {
        let self_cycles = profile.regions[id].cycles;
        if self_cycles == 0 {
            continue;
        }
        out.push_str(&profile.full_name(id as u32));
        out.push(' ');
        out.push_str(&self_cycles.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsv_arch::presets::sx_aurora;
    use lsv_vengine::{ExecutionMode, VCore};

    #[test]
    fn stacks_sum_to_total_and_use_semicolon_paths() {
        let arch = sx_aurora();
        let mut core = VCore::new(&arch, ExecutionMode::TimingOnly, 1);
        core.enable_profiler();
        core.region_enter("fwd");
        core.scalar_ops(6);
        core.region_enter("inner");
        core.scalar_ops(10);
        core.region_exit();
        core.region_exit();
        let profile = core.take_profile().unwrap();

        let folded = folded_stacks(&profile);
        let mut sum = 0u64;
        for line in folded.lines() {
            let (path, weight) = line.rsplit_once(' ').expect("weighted line");
            assert!(path.starts_with("root"), "line {line:?}");
            sum += weight.parse::<u64>().expect("integer weight");
        }
        assert_eq!(sum, profile.total.cycles);
        assert!(folded.contains("root;fwd;inner "));
    }
}
