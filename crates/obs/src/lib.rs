//! # lsv-obs — profile exporters for the region profiler
//!
//! [`lsv_vengine::RegionProfile`] is the raw per-region accounting the
//! simulated core produces (see `lsv-vengine/src/profile.rs`). This crate
//! turns one into the three artifacts the observability workflow consumes:
//!
//! * [`perfetto_trace_json`] — a Chrome-trace/Perfetto JSON document of the
//!   recorded region spans (load it at <https://ui.perfetto.dev>). One trace
//!   microsecond corresponds to one simulated cycle.
//! * [`folded_stacks`] — folded flamegraph text (`root;fwd;inner 1234`, one
//!   line per region path weighted by *self* cycles), the input format of
//!   `flamegraph.pl` / `inferno-flamegraph`.
//! * [`profile_report_json`] — the machine-readable `profile.json`: the full
//!   per-region table (cycles, stall breakdown, instruction mix, per-level
//!   cache counters, MPKI) plus a cycle-reconciliation record and a roofline
//!   summary. Its shape is pinned by the checked-in JSON schema
//!   ([`PROFILE_SCHEMA`], `schemas/profile.schema.json`) and
//!   [`validate_profile_json`] checks a document against it — CI runs that
//!   validation as a hard gate.
//!
//! The crate is dependency-light on purpose: everything is hand-emitted JSON
//! over the profiler's public types, and [`json`] is a minimal parser plus
//! the schema-subset validator the gate needs (the build environment has no
//! registry access, so no serde).

pub mod folded;
pub mod json;
pub mod perfetto;
pub mod report;

pub use folded::folded_stacks;
pub use json::{parse_json, validate_schema, JsonValue};
pub use perfetto::perfetto_trace_json;
pub use report::{
    profile_report_json, validate_lint_json, validate_profile_json, validate_serving_json,
    ProfileMeta, LINT_SCHEMA, PROFILE_SCHEMA, SERVING_SCHEMA,
};

/// Escape a string for inclusion in a JSON document (without the quotes).
pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Format an `f64` as a JSON number (finite values only; non-finite values
/// are clamped to `0` so the document stays valid JSON).
pub(crate) fn json_f64(x: f64) -> String {
    if x.is_finite() {
        let s = format!("{x}");
        // `{}` prints integral floats without a dot; keep them numbers anyway
        // (valid JSON either way) but normalize -0.
        if s == "-0" {
            "0".to_string()
        } else {
            s
        }
    } else {
        "0".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }

    #[test]
    fn f64_formatting_is_json_safe() {
        assert_eq!(json_f64(f64::NAN), "0");
        assert_eq!(json_f64(f64::INFINITY), "0");
        assert_eq!(json_f64(1.5), "1.5");
    }
}
