//! # lsv-obs — profile exporters for the region profiler
//!
//! [`lsv_vengine::RegionProfile`] is the raw per-region accounting the
//! simulated core produces (see `lsv-vengine/src/profile.rs`). This crate
//! turns one into the three artifacts the observability workflow consumes:
//!
//! * [`perfetto_trace_json`] — a Chrome-trace/Perfetto JSON document of the
//!   recorded region spans (load it at <https://ui.perfetto.dev>). One trace
//!   microsecond corresponds to one simulated cycle.
//! * [`folded_stacks`] — folded flamegraph text (`root;fwd;inner 1234`, one
//!   line per region path weighted by *self* cycles), the input format of
//!   `flamegraph.pl` / `inferno-flamegraph`.
//! * [`profile_report_json`] — the machine-readable `profile.json`: the full
//!   per-region table (cycles, stall breakdown, instruction mix, per-level
//!   cache counters, MPKI) plus a cycle-reconciliation record and a roofline
//!   summary. Its shape is pinned by the checked-in JSON schema
//!   ([`PROFILE_SCHEMA`], `schemas/profile.schema.json`) and
//!   [`validate_profile_json`] checks a document against it — CI runs that
//!   validation as a hard gate.
//!
//! The crate is dependency-light on purpose: everything is hand-emitted JSON
//! over the profiler's public types, and [`json`] is a minimal parser plus
//! the schema-subset validator the gate needs (the build environment has no
//! registry access, so no serde).

pub mod folded;
pub mod json;
pub mod metrics;
pub mod perfetto;
pub mod report;
pub mod timeline;

pub use folded::folded_stacks;
pub use json::{parse_json, validate_schema, JsonValue};
pub use metrics::{registry, HistogramSummary, MetricsRegistry};
pub use perfetto::perfetto_trace_json;
pub use report::{
    profile_report_json, validate_lint_json, validate_metrics_json, validate_profile_json,
    validate_serving_json, validate_serving_trace_json, ProfileMeta, LINT_SCHEMA, METRICS_SCHEMA,
    PROFILE_SCHEMA, SERVING_SCHEMA, SERVING_TRACE_SCHEMA,
};
pub use timeline::TimelineBuilder;

/// Escape a string for inclusion in a JSON document (without the quotes).
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Format an `f64` as a JSON number. Non-finite values become `null` —
/// JSON has no NaN/Inf literal, and clamping them to `0` would let an
/// undefined percentile masquerade as a real measurement in a committed
/// artifact. Schemas permit the fields where this can occur via
/// `"type": ["number", "null"]`.
pub fn json_f64(x: f64) -> String {
    if x.is_finite() {
        let s = format!("{x}");
        // `{}` prints integral floats without a dot; keep them numbers anyway
        // (valid JSON either way) but normalize -0.
        if s == "-0" {
            "0".to_string()
        } else {
            s
        }
    } else {
        "null".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
    }

    #[test]
    fn f64_formatting_is_json_safe() {
        assert_eq!(json_f64(1.5), "1.5");
        assert_eq!(json_f64(-0.0), "0");
        assert_eq!(json_f64(3.0), "3");
    }

    #[test]
    fn non_finite_f64_becomes_null_not_zero() {
        // A NaN percentile must never masquerade as a real zero in a
        // committed artifact; `null` is the schema-permitted spelling.
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(f64::NEG_INFINITY), "null");
    }
}
