//! Spatial-domain vectorized direct kernels (unit stride), the style of
//! vednn's tuned convolution routines: plain NCHW tensors, a physically
//! zero-padded source image, and 2-D vector loads that pack several complete
//! output rows into one long vector register.
//!
//! Vector utilization is `rows * OW / N_vlen`: near-full on 56x56 images
//! (9 rows x 56 = 504 of 512 lanes) but only 49/512 lanes on the 7x7 layers
//! — the efficiency cliff the paper's Figure 4 shows for vednn on layer ids
//! 14-18.

use crate::VednnTensors;
use lsv_arch::ArchParams;
use lsv_conv::ConvProblem;
use lsv_vengine::{Arena, VCore};
use std::ops::Range;

/// Output-channel unroll: independent accumulator chains that share each
/// loaded source vector (hides the FMA latency like the paper's register
/// blocking does for the channel-blocked kernels).
const UNROLL_C: usize = 8;
/// Rotating source-vector registers for software pipelining.
const VIN_BUFS: usize = 3;

/// Copy `len` contiguous elements via chunked vector load/store (library
/// pack routine).
pub(crate) fn copy_chunked(
    core: &mut VCore,
    arena: &mut Arena,
    from: u64,
    to: u64,
    len: usize,
    reg: usize,
) {
    let nvlen = core.arch().n_vlen();
    let mut off = 0usize;
    while off < len {
        let c = nvlen.min(len - off);
        core.scalar_op();
        core.vload(arena, reg, from + (off * 4) as u64, c);
        core.vstore(arena, reg, to + (off * 4) as u64, c);
        off += c;
    }
}

/// Zero `len` contiguous elements using a pre-zeroed register.
pub(crate) fn zero_chunked(core: &mut VCore, arena: &mut Arena, to: u64, len: usize, zreg: usize) {
    let nvlen = core.arch().n_vlen();
    let mut off = 0usize;
    while off < len {
        let c = nvlen.min(len - off);
        core.scalar_op();
        core.vstore(arena, zreg, to + (off * 4) as u64, c);
        off += c;
    }
}

/// Pack one image `(C, H, W)` read through `src_at` into the zero-bordered
/// scratch buffer with padding `pb` (borders stay zero: the arena is
/// zero-initialized and only the interior is ever written).
#[allow(clippy::too_many_arguments)]
fn pack_image(
    core: &mut VCore,
    arena: &mut Arena,
    src_at: &dyn Fn(usize, usize, usize) -> u64,
    c: usize,
    h: usize,
    w: usize,
    pad_buf: u64,
    pb: usize,
    reg: usize,
) {
    let pw = w + 2 * pb;
    for ch in 0..c {
        for y in 0..h {
            let from = src_at(ch, y, 0);
            let to = pad_buf + (((ch * (h + 2 * pb) + y + pb) * pw + pb) * 4) as u64;
            copy_chunked(core, arena, from, to, w, reg);
        }
    }
}

/// Address inside the padded scratch image.
#[inline]
fn pad_at(pad_buf: u64, h_pad: usize, w_pad: usize, c: usize, y: usize, x: usize) -> u64 {
    pad_buf + (((c * h_pad + y) * w_pad + x) * 4) as u64
}

/// The shared spatial kernel: output `(C_out, OH, OW)`, reduction over
/// `(C_in, KH, KW)` taps of a padded input image, `UNROLL_C` output-channel
/// accumulators. `wei_at(co, ci, kh, kw)` supplies the scalar weight address
/// (the bwd-data caller rotates the kernel and swaps roles here).
#[allow(clippy::too_many_arguments)]
fn spatial_conv_image(
    core: &mut VCore,
    arena: &mut Arena,
    c_out: usize,
    c_in: usize,
    oh: usize,
    ow: usize,
    kh: usize,
    kw: usize,
    in_buf: u64,
    in_h: usize,
    in_w: usize,
    wei_at: &dyn Fn(usize, usize, usize, usize) -> u64,
    out_at: &dyn Fn(usize, usize, usize) -> u64,
) {
    let nvlen = core.arch().n_vlen();
    let cols = ow.min(nvlen);
    let rows = if ow <= nvlen {
        (nvlen / ow).max(1).min(oh)
    } else {
        1
    };
    let taps = c_in * kh * kw;
    let lookahead = (VIN_BUFS - 1).min(taps);
    let vin0 = UNROLL_C;

    let mut ocb = 0;
    while ocb < c_out {
        let uo = UNROLL_C.min(c_out - ocb);
        let mut rg = 0;
        while rg < oh {
            let rcur = rows.min(oh - rg);
            let mut cg = 0;
            while cg < ow {
                let ccur = cols.min(ow - cg);
                let vl = rcur * ccur;
                for u in 0..uo {
                    core.vbroadcast_zero(u, vl);
                }
                let tap_addr = |j: usize| -> (usize, usize, usize, u64) {
                    let ci = j / (kh * kw);
                    let r = j % (kh * kw);
                    let ky = r / kw;
                    let kx = r % kw;
                    let a = pad_at(in_buf, in_h, in_w, ci, rg + ky, cg + kx);
                    (ci, ky, kx, a)
                };
                for j in 0..lookahead {
                    let (_, _, _, a) = tap_addr(j);
                    core.scalar_op();
                    core.vload_rows(arena, vin0 + j % VIN_BUFS, a, ccur, (in_w * 4) as u64, rcur);
                }
                for j in 0..taps {
                    if j + lookahead < taps {
                        let (_, _, _, a) = tap_addr(j + lookahead);
                        core.scalar_op();
                        core.vload_rows(
                            arena,
                            vin0 + (j + lookahead) % VIN_BUFS,
                            a,
                            ccur,
                            (in_w * 4) as u64,
                            rcur,
                        );
                    }
                    let vin = vin0 + j % VIN_BUFS;
                    let (ci, ky, kx, _) = tap_addr(j);
                    for u in 0..uo {
                        core.scalar_op();
                        let sv = core.scalar_load(arena, wei_at(ocb + u, ci, ky, kx));
                        core.vfma_bcast(u, vin, sv, vl);
                    }
                }
                for u in 0..uo {
                    core.vstore_rows(
                        arena,
                        u,
                        out_at(ocb + u, rg, cg),
                        ccur,
                        (ow * 4) as u64,
                        rcur,
                    );
                }
                cg += cols;
            }
            rg += rows;
        }
        ocb += UNROLL_C;
    }
}

/// Forward pass, unit stride: `D = conv(S, W)`.
pub fn run_fwd(
    arch: &ArchParams,
    p: &ConvProblem,
    core: &mut VCore,
    arena: &mut Arena,
    t: &VednnTensors,
    n_range: Range<usize>,
) {
    assert!(
        p.stride_h == 1 && p.stride_w == 1,
        "direct spatial kernel is unit-stride only"
    );
    assert_eq!(p.pad_h, p.pad_w, "pack_image pads both axes equally");
    let _ = arch;
    let (oh, ow) = (p.oh(), p.ow());
    let pb = p.pad_h;
    let (in_h, in_w) = (p.ih + 2 * pb, p.iw + 2 * pb);
    let reg_pack = UNROLL_C + VIN_BUFS; // scratch register for packing
    for n in n_range {
        core.scalar_ops(2);
        let src = t.src;
        let (in_buf, ih_eff, iw_eff);
        if pb > 0 {
            pack_image(
                core,
                arena,
                &|c, y, x| src.at(n, c, y, x),
                p.ic,
                p.ih,
                p.iw,
                t.pad_buf,
                pb,
                reg_pack,
            );
            in_buf = t.pad_buf;
            ih_eff = in_h;
            iw_eff = in_w;
        } else {
            // No padding: read the NCHW image in place.
            in_buf = src.at(n, 0, 0, 0);
            ih_eff = p.ih;
            iw_eff = p.iw;
        }
        let wei = t.wei;
        let dst = t.dst;
        spatial_conv_image(
            core,
            arena,
            p.oc,
            p.ic,
            oh,
            ow,
            p.kh,
            p.kw,
            in_buf,
            ih_eff,
            iw_eff,
            &|co, ci, ky, kx| wei.at(co, ci, ky, kx),
            &|co, y, x| dst.at(n, co, y, x),
        );
    }
}

/// Backward data, unit stride: `S_diff = full_corr(D_diff padded by K-1-pad,
/// rot180(W))` with the channel roles swapped.
pub fn run_bwd_data(
    arch: &ArchParams,
    p: &ConvProblem,
    core: &mut VCore,
    arena: &mut Arena,
    t: &VednnTensors,
    n_range: Range<usize>,
) {
    assert!(p.stride_h == 1 && p.stride_w == 1);
    assert!(p.pad_h < p.kh && p.pad_w < p.kw, "full-correlation padding");
    assert_eq!(
        p.kh - 1 - p.pad_h,
        p.kw - 1 - p.pad_w,
        "pack_image pads both axes equally"
    );
    let pb = p.kh - 1 - p.pad_h;
    let _ = arch;
    let (oh, ow) = (p.oh(), p.ow());
    let (in_h, in_w) = (oh + 2 * pb, ow + 2 * pb);
    let reg_pack = UNROLL_C + VIN_BUFS;
    for n in n_range {
        core.scalar_ops(2);
        let dstg = t.dst;
        let (in_buf, ih_eff, iw_eff);
        if pb > 0 {
            pack_image(
                core,
                arena,
                &|c, y, x| dstg.at(n, c, y, x),
                p.oc,
                oh,
                ow,
                t.pad_buf,
                pb,
                reg_pack,
            );
            in_buf = t.pad_buf;
            ih_eff = in_h;
            iw_eff = in_w;
        } else {
            in_buf = dstg.at(n, 0, 0, 0);
            ih_eff = oh;
            iw_eff = ow;
        }
        let wei = t.wei;
        let src = t.src;
        let (kh, kw) = (p.kh, p.kw);
        spatial_conv_image(
            core,
            arena,
            p.ic,
            p.oc,
            p.ih,
            p.iw,
            kh,
            kw,
            in_buf,
            ih_eff,
            iw_eff,
            // rotated kernel, swapped channel roles
            &|ci_out, co_in, ky, kx| wei.at(co_in, ci_out, kh - 1 - ky, kw - 1 - kx),
            &|ci_out, y, x| src.at(n, ci_out, y, x),
        );
    }
}
