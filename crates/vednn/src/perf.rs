//! Multi-core performance model for the baseline library, mirroring
//! `lsv_conv::perf::bench_layer` so Figure 4/6 can compare vednn against
//! the direct algorithms on identical terms.
//!
//! The library parallelizes the minibatch across cores in every direction
//! (TensorFlow-VE's data-parallel execution); the backward-weights gradient
//! reduction across cores is not charged (it is negligible next to the
//! per-core GEMM work).

use crate::{VednnAlgo, VednnConv};
use lsv_arch::ArchParams;
use lsv_conv::perf::LayerPerf;
use lsv_conv::{store, ConvProblem, Direction, ExecReport, ExecutionMode};
use lsv_vengine::{Arena, VCore};

/// Simulate the representative core's slice: one cold image and (if
/// `n_sim > 1`) one steady-state image.
fn simulate_slice(
    arch: &ArchParams,
    conv: &VednnConv,
    direction: Direction,
    mode: ExecutionMode,
    n_sim: usize,
) -> (u64, u64, ExecReport) {
    let mut arena = Arena::new();
    let t = conv.alloc_tensors(&mut arena);
    if matches!(mode, ExecutionMode::Functional) {
        t.src.fill_random(&mut arena, 31);
        t.dst.fill_random(&mut arena, 37);
        t.wei.fill_random(&mut arena, 41);
    }
    let mut core = VCore::new(arch, mode, 1);
    // Warm the LLC with the input activations (just produced by the
    // adjacent layer); weights stream from memory once per step, exactly as
    // for the direct algorithms (see lsv_conv::perf::warm_inputs).
    match direction {
        Direction::Fwd => {
            core.warm_llc(t.src.base, (t.src.elems_padded() * 4) as u64);
        }
        Direction::BwdData => {
            core.warm_llc(t.dst.base, (t.dst.elems_padded() * 4) as u64);
        }
        Direction::BwdWeights => {
            core.warm_llc(t.src.base, (t.src.elems_padded() * 4) as u64);
            core.warm_llc(t.dst.base, (t.dst.elems_padded() * 4) as u64);
        }
    }
    conv.execute_core(&mut core, &mut arena, &t, 0..1);
    let cold = core.drain().cycles;
    if n_sim > 1 {
        conv.execute_core(&mut core, &mut arena, &t, 1..2);
        let s = core.drain();
        (cold, s.cycles - cold, ExecReport::from(s))
    } else {
        let s = core.drain();
        (cold, cold, ExecReport::from(s))
    }
}

/// Simulate one layer under the 8-core execution model with the library's
/// best kernel for the problem. The representative slice is served from the
/// layer store (keyed on the chosen kernel family) when available.
pub fn bench_layer_vednn(
    arch: &ArchParams,
    problem: &ConvProblem,
    direction: Direction,
    mode: ExecutionMode,
) -> LayerPerf {
    let cores = arch.cores.max(1);
    let images_per_core = problem.n.div_ceil(cores).max(1);
    let n_sim = images_per_core.min(2);
    let p_sim = problem.with_minibatch(n_sim);
    let conv = VednnConv::best(arch, p_sim, direction);
    let engine = match conv.algo() {
        VednnAlgo::DirectSpatial => "vednn:spatial",
        VednnAlgo::Im2colGemm => "vednn:gemm",
    };
    let key = store::slice_key(arch, &p_sim, direction, engine, cores, mode, None);
    let st = store::store();
    let sim = || simulate_slice(arch, &conv, direction, mode, n_sim);
    let (cold, steady, report) = if let Some((c, s, r)) = st.get_slice(&key) {
        if st.paranoid_sample(&key) {
            assert_eq!(
                sim(),
                (c, s, r),
                "paranoid store recheck diverged for key {}",
                key.canonical()
            );
            st.note_paranoid_recheck();
        }
        (c, s, r)
    } else {
        let v = sim();
        st.put_slice(&key, v.0, v.1, &v.2);
        v
    };
    let chip_cycles = (cold + steady * (images_per_core as u64 - 1)).max(1);
    let secs = chip_cycles as f64 / (arch.freq_ghz * 1e9);
    let gflops = problem.flops() as f64 / secs / 1e9;
    let insts = report.insts.total();
    let l1 = report.cache.l1;
    LayerPerf {
        cycles: chip_cycles,
        time_ms: secs * 1e3,
        gflops,
        efficiency: gflops * 1e9 / arch.peak_flops(),
        mpki_l1: l1.mpki(insts),
        conflict_fraction: if l1.misses == 0 {
            0.0
        } else {
            l1.conflict_misses as f64 / l1.misses as f64
        },
        conflicts_predicted: false,
        report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsv_arch::presets::sx_aurora;

    #[test]
    fn vednn_bench_produces_sane_numbers() {
        let arch = sx_aurora();
        let p = ConvProblem::new(16, 32, 32, 28, 28, 3, 3, 1, 1);
        let perf = bench_layer_vednn(&arch, &p, Direction::Fwd, ExecutionMode::TimingOnly);
        assert!(perf.gflops > 0.0);
        assert!(perf.efficiency > 0.0 && perf.efficiency <= 1.0);
    }

    #[test]
    fn vednn_prefers_large_spatial_unit_stride() {
        // The library's qualitative profile: better efficiency on a large
        // 56x56 unit-stride layer than on a 7x7 one.
        let arch = sx_aurora();
        let big = bench_layer_vednn(
            &arch,
            &ConvProblem::new(16, 64, 64, 56, 56, 3, 3, 1, 1),
            Direction::Fwd,
            ExecutionMode::TimingOnly,
        );
        let tiny = bench_layer_vednn(
            &arch,
            &ConvProblem::new(16, 512, 512, 7, 7, 3, 3, 1, 1),
            Direction::Fwd,
            ExecutionMode::TimingOnly,
        );
        assert!(
            big.efficiency > tiny.efficiency,
            "56x56 {} should beat 7x7 {}",
            big.efficiency,
            tiny.efficiency
        );
    }
}
