//! Explicit im2col + GEMM convolution (the library's fallback for strided
//! convolutions and the backward-weights pass), including the implicit-GEMM
//! shortcut for 1x1/stride-1 problems where the NCHW image *is* already the
//! `K x M` column matrix.
//!
//! The column matrix is `col[k, m]` with `k = (ic, kh, kw)` and
//! `m = oy * OW + ox`, stored row-major (`M` contiguous per `k` row) in the
//! library scratch buffer. The im2col transform runs on the vector engine
//! and is charged in full — the memory overhead the paper contrasts the
//! direct algorithms against (Section 2.2).

use crate::direct::{copy_chunked, zero_chunked};
use crate::VednnTensors;
use lsv_arch::ArchParams;
use lsv_conv::ConvProblem;
use lsv_vengine::{Arena, ScalarValue, VCore};
use std::ops::Range;

/// Accumulator rows of the GEMM micro-kernel (bounded by the register file;
/// 16 chains hide the FMA latency at typical vector lengths).
const RB_GEMM: usize = 16;
/// Rotating vector registers for the streamed operand.
const VBUFS: usize = 3;
/// Deep software-pipeline depth for the load-bound backward-weights GEMM
/// (one column load per FMA: the LLC latency needs ~20 iterations of cover).
const VBUFS_BWDW: usize = 24;

/// Where the column matrix for the current image lives.
#[derive(Debug, Clone, Copy)]
struct ColRef {
    base: u64,
    /// `K x M` dimensions.
    k: usize,
    m: usize,
}

impl ColRef {
    #[inline]
    fn row(&self, k: usize) -> u64 {
        self.base + ((k * self.m) * 4) as u64
    }
}

/// Valid output-x range `[x0, x1)` of one (kw, row) tap, i.e. the `x` with
/// `0 <= x*stride_w + kw - pad_w < IW`.
fn valid_x_range(p: &ConvProblem, kw: usize) -> (usize, usize) {
    let ow = p.ow();
    let lo = p.pad_w.saturating_sub(kw).div_ceil(p.stride_w);
    let hi_num = p.iw + p.pad_w;
    let hi = if hi_num > kw {
        ((hi_num - kw - 1) / p.stride_w + 1).min(ow)
    } else {
        0
    };
    (lo.min(ow), hi.max(lo.min(ow)))
}

/// Build (or alias) the column matrix for image `n`. Returns the reference;
/// `zreg` must hold zeros.
fn im2col(
    p: &ConvProblem,
    core: &mut VCore,
    arena: &mut Arena,
    t: &VednnTensors,
    n: usize,
    zreg: usize,
    creg: usize,
) -> ColRef {
    let (oh, ow) = (p.oh(), p.ow());
    let m = oh * ow;
    let k_total = p.ic * p.kh * p.kw;
    if p.kh == 1 && p.kw == 1 && p.stride_h == 1 && p.stride_w == 1 && p.pad_h == 0 && p.pad_w == 0
    {
        // Implicit GEMM: the flattened NCHW image is the column matrix.
        return ColRef {
            base: t.src.at(n, 0, 0, 0),
            k: k_total,
            m,
        };
    }
    let col = ColRef {
        base: t.col_buf,
        k: k_total,
        m,
    };
    let nvlen = core.arch().n_vlen();
    for ic in 0..p.ic {
        for kh in 0..p.kh {
            for kw in 0..p.kw {
                let k = (ic * p.kh + kh) * p.kw + kw;
                let (x0, x1) = valid_x_range(p, kw);
                for oy in 0..oh {
                    let dst_row = col.row(k) + ((oy * ow) * 4) as u64;
                    let ihy = (oy * p.stride_h + kh) as isize - p.pad_h as isize;
                    if ihy < 0 || ihy >= p.ih as isize {
                        zero_chunked(core, arena, dst_row, ow, zreg);
                        continue;
                    }
                    let ihy = ihy as usize;
                    if x0 > 0 {
                        zero_chunked(core, arena, dst_row, x0, zreg);
                    }
                    if x1 > x0 {
                        let iw0 = x0 * p.stride_w + kw - p.pad_w;
                        let from = t.src.at(n, ic, ihy, iw0);
                        if p.stride_w == 1 {
                            copy_chunked(
                                core,
                                arena,
                                from,
                                dst_row + (x0 * 4) as u64,
                                x1 - x0,
                                creg,
                            );
                        } else {
                            // Strided row: gather with a strided vector load.
                            let mut off = 0usize;
                            while off < x1 - x0 {
                                let c = nvlen.min(x1 - x0 - off);
                                core.scalar_op();
                                core.vload_strided(
                                    arena,
                                    creg,
                                    from + ((off * p.stride_w) * 4) as u64,
                                    (p.stride_w * 4) as u64,
                                    c,
                                );
                                core.vstore(arena, creg, dst_row + ((x0 + off) * 4) as u64, c);
                                off += c;
                            }
                        }
                    }
                    if x1 < ow {
                        zero_chunked(core, arena, dst_row + (x1 * 4) as u64, ow - x1, zreg);
                    }
                }
            }
        }
    }
    col
}

/// `D[oc, m] = sum_k W[oc, k] * col[k, m]` — vectorize `m`, `RB_GEMM`
/// output-channel accumulators, software-pipelined column loads.
fn gemm_fwd_image(
    p: &ConvProblem,
    core: &mut VCore,
    arena: &mut Arena,
    t: &VednnTensors,
    col: ColRef,
    n: usize,
) {
    let nvlen = core.arch().n_vlen();
    let vl_max = col.m.min(nvlen);
    let vin0 = RB_GEMM;
    let mut mb = 0;
    while mb < col.m {
        let vl = vl_max.min(col.m - mb);
        let mut ocb = 0;
        while ocb < p.oc {
            let u = RB_GEMM.min(p.oc - ocb);
            for j in 0..u {
                core.vbroadcast_zero(j, vl);
            }
            let lookahead = (VBUFS - 1).min(col.k);
            for kk in 0..lookahead {
                core.scalar_op();
                core.vload(arena, vin0 + kk % VBUFS, col.row(kk) + (mb * 4) as u64, vl);
            }
            for k in 0..col.k {
                if k + lookahead < col.k {
                    core.scalar_op();
                    core.vload(
                        arena,
                        vin0 + (k + lookahead) % VBUFS,
                        col.row(k + lookahead) + (mb * 4) as u64,
                        vl,
                    );
                }
                let vin = vin0 + k % VBUFS;
                for j in 0..u {
                    core.scalar_op();
                    let w = core.scalar_load(
                        arena,
                        t.wei
                            .at(ocb + j, k / (p.kh * p.kw), (k / p.kw) % p.kh, k % p.kw),
                    );
                    core.vfma_bcast(j, vin, w, vl);
                }
            }
            for j in 0..u {
                let out = t.dst.at(n, ocb + j, 0, 0) + (mb * 4) as u64;
                core.vstore(arena, j, out, vl);
            }
            ocb += RB_GEMM;
        }
        mb += vl_max;
    }
}

/// Forward pass via im2col + GEMM.
pub fn run_fwd(
    arch: &ArchParams,
    p: &ConvProblem,
    core: &mut VCore,
    arena: &mut Arena,
    t: &VednnTensors,
    n_range: Range<usize>,
) {
    let _ = arch;
    let zreg = RB_GEMM + VBUFS;
    let creg = zreg + 1;
    core.vbroadcast_zero(zreg, core.arch().n_vlen());
    for n in n_range {
        core.scalar_ops(2);
        let col = im2col(p, core, arena, t, n, zreg, creg);
        gemm_fwd_image(p, core, arena, t, col, n);
    }
}

/// Backward data via GEMM: `col_diff = W^T x D_diff`, then col2im
/// scatter-add into `S_diff`.
pub fn run_bwd_data(
    arch: &ArchParams,
    p: &ConvProblem,
    core: &mut VCore,
    arena: &mut Arena,
    t: &VednnTensors,
    n_range: Range<usize>,
) {
    let _ = arch;
    let (oh, ow) = (p.oh(), p.ow());
    let m = oh * ow;
    let k_total = p.ic * p.kh * p.kw;
    let nvlen = core.arch().n_vlen();
    let vl_max = m.min(nvlen);
    let vin0 = RB_GEMM;
    let zreg = RB_GEMM + VBUFS;
    let creg = zreg + 1;
    let areg = creg + 1;
    core.vbroadcast_zero(zreg, nvlen);
    let col = ColRef {
        base: t.col_buf,
        k: k_total,
        m,
    };
    for n in n_range {
        core.scalar_ops(2);
        // --- col_diff[k, m] = sum_oc W[oc, k] * D[oc, m]
        let mut mb = 0;
        while mb < m {
            let vl = vl_max.min(m - mb);
            let mut kb = 0;
            while kb < k_total {
                let u = RB_GEMM.min(k_total - kb);
                for j in 0..u {
                    core.vbroadcast_zero(j, vl);
                }
                let lookahead = (VBUFS - 1).min(p.oc);
                let d_row = |oc: usize| t.dst.at(n, oc, 0, 0) + (mb * 4) as u64;
                for oc in 0..lookahead {
                    core.scalar_op();
                    core.vload(arena, vin0 + oc % VBUFS, d_row(oc), vl);
                }
                for oc in 0..p.oc {
                    if oc + lookahead < p.oc {
                        core.scalar_op();
                        core.vload(
                            arena,
                            vin0 + (oc + lookahead) % VBUFS,
                            d_row(oc + lookahead),
                            vl,
                        );
                    }
                    let vin = vin0 + oc % VBUFS;
                    for j in 0..u {
                        let k = kb + j;
                        core.scalar_op();
                        let w = core.scalar_load(
                            arena,
                            t.wei.at(oc, k / (p.kh * p.kw), (k / p.kw) % p.kh, k % p.kw),
                        );
                        core.vfma_bcast(j, vin, w, vl);
                    }
                }
                for j in 0..u {
                    core.vstore(arena, j, col.row(kb + j) + (mb * 4) as u64, vl);
                }
                kb += RB_GEMM;
            }
            mb += vl_max;
        }
        // --- zero S_diff[n], then col2im scatter-add.
        let img = t.src.at(n, 0, 0, 0);
        zero_chunked(core, arena, img, p.ic * p.ih * p.iw, zreg);
        for ic in 0..p.ic {
            for kh in 0..p.kh {
                for kw in 0..p.kw {
                    let k = (ic * p.kh + kh) * p.kw + kw;
                    let (x0, x1) = valid_x_range(p, kw);
                    if x1 <= x0 {
                        continue;
                    }
                    for oy in 0..oh {
                        let ihy = (oy * p.stride_h + kh) as isize - p.pad_h as isize;
                        if ihy < 0 || ihy >= p.ih as isize {
                            continue;
                        }
                        let ihy = ihy as usize;
                        let col_row = col.row(k) + ((oy * ow + x0) * 4) as u64;
                        let iw0 = x0 * p.stride_w + kw - p.pad_w;
                        let s_row = t.src.at(n, ic, ihy, iw0);
                        let seg = x1 - x0;
                        let mut off = 0usize;
                        while off < seg {
                            let c = nvlen.min(seg - off);
                            core.scalar_op();
                            core.vload(arena, creg, col_row + (off * 4) as u64, c);
                            if p.stride_w == 1 {
                                core.vload(arena, areg, s_row + (off * 4) as u64, c);
                                core.vfma_bcast(areg, creg, ScalarValue::constant(1.0), c);
                                core.vstore(arena, areg, s_row + (off * 4) as u64, c);
                            } else {
                                let stride_b = (p.stride_w * 4) as u64;
                                let base = s_row + ((off * p.stride_w) * 4) as u64;
                                core.vload_strided(arena, areg, base, stride_b, c);
                                core.vfma_bcast(areg, creg, ScalarValue::constant(1.0), c);
                                core.vstore_strided(arena, areg, base, stride_b, c);
                            }
                            off += c;
                        }
                    }
                }
            }
        }
    }
}

/// Backward weights via GEMM: `W_diff[oc, k] = sum_{n,m} D[oc, m] * col[k, m]`
/// — vector-vector FMAs over `m` chunks with a horizontal reduction per
/// output element, accumulated across the minibatch with scalar
/// read-modify-writes.
pub fn run_bwd_weights(
    arch: &ArchParams,
    p: &ConvProblem,
    core: &mut VCore,
    arena: &mut Arena,
    t: &VednnTensors,
    n_range: Range<usize>,
) {
    let _ = arch;
    let (oh, ow) = (p.oh(), p.ow());
    let m = oh * ow;
    let k_total = p.ic * p.kh * p.kw;
    let nvlen = core.arch().n_vlen();
    let vl_max = m.min(nvlen);
    let dreg = RB_GEMM; // streamed D row chunk
    let creg0 = RB_GEMM + 1; // column-row buffers (VBUFS_BWDW of them)
    let zreg = creg0 + VBUFS_BWDW; // zero register
    core.vbroadcast_zero(zreg, nvlen);
    // Zero the output gradient tensor so the per-image RMW accumulation
    // starts clean (and the kernel stays idempotent per invocation).
    zero_chunked(core, arena, t.wei.base, t.wei.elems_padded(), zreg);
    for n in n_range {
        core.scalar_ops(2);
        let col = im2col(p, core, arena, t, n, zreg, creg0);
        for oc in 0..p.oc {
            let mut kb = 0;
            while kb < k_total {
                let u = RB_GEMM.min(k_total - kb);
                for j in 0..u {
                    core.vbroadcast_zero(j, vl_max);
                }
                // Flatten the (mb, j) iteration space so the column loads
                // can be pipelined VBUFS_BWDW-deep across chunk boundaries.
                let m_chunks = m.div_ceil(vl_max);
                let total = m_chunks * u;
                let coord = |i: usize| -> (usize, usize, usize) {
                    let mbi = i / u;
                    let j = i % u;
                    let mb = mbi * vl_max;
                    (mb, vl_max.min(m - mb), j)
                };
                let lookahead = (VBUFS_BWDW - 1).min(total);
                for i in 0..lookahead {
                    let (mb, vl, j) = coord(i);
                    core.scalar_op();
                    core.vload(
                        arena,
                        creg0 + i % VBUFS_BWDW,
                        col.row(kb + j) + (mb * 4) as u64,
                        vl,
                    );
                }
                for i in 0..total {
                    if i + lookahead < total {
                        let (mb, vl, j) = coord(i + lookahead);
                        core.scalar_op();
                        core.vload(
                            arena,
                            creg0 + (i + lookahead) % VBUFS_BWDW,
                            col.row(kb + j) + (mb * 4) as u64,
                            vl,
                        );
                    }
                    let (mb, vl, j) = coord(i);
                    if j == 0 {
                        core.scalar_op();
                        core.vload(arena, dreg, t.dst.at(n, oc, 0, 0) + (mb * 4) as u64, vl);
                    }
                    core.vfma_vv(j, dreg, creg0 + i % VBUFS_BWDW, vl);
                }
                for j in 0..u {
                    let k = kb + j;
                    let sum = core.vreduce_sum(j, vl_max);
                    let addr = t.wei.at(oc, k / (p.kh * p.kw), (k / p.kw) % p.kh, k % p.kw);
                    let old = core.scalar_load(arena, addr);
                    core.scalar_op();
                    core.scalar_store(arena, addr, old.value + sum.value);
                }
                kb += RB_GEMM;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(iw: usize, k: usize, s: usize, pad: usize) -> ConvProblem {
        ConvProblem::new(1, 1, 1, iw, iw, k, k, s, pad)
    }

    #[test]
    fn valid_x_range_unit_stride_no_pad() {
        // 1x1, stride 1, no pad: every output column is valid.
        let pr = p(8, 1, 1, 0);
        assert_eq!(valid_x_range(&pr, 0), (0, 8));
    }

    #[test]
    fn valid_x_range_padded_3x3() {
        // 3x3 pad 1: kw=0 loses the first column, kw=2 the last.
        let pr = p(8, 3, 1, 1);
        assert_eq!(valid_x_range(&pr, 0), (1, 8));
        assert_eq!(valid_x_range(&pr, 1), (0, 8));
        assert_eq!(valid_x_range(&pr, 2), (0, 7));
    }

    #[test]
    fn valid_x_range_strided() {
        // stride 2, pad 1, k 3: iw_idx = 2x + kw - 1 must be in [0, 9).
        let pr = p(9, 3, 2, 1);
        let (oh, ow) = (pr.oh(), pr.ow());
        assert_eq!((oh, ow), (5, 5));
        // kw = 0: 2x - 1 >= 0 -> x >= 1 (ceil(1/2)=1); 2x - 1 <= 8 -> x <= 4.
        assert_eq!(valid_x_range(&pr, 0), (1, 5));
        // kw = 2: 2x + 1 <= 8 -> x <= 3.
        assert_eq!(valid_x_range(&pr, 2), (0, 4));
    }

    #[test]
    fn valid_x_range_never_exceeds_ow() {
        for k in 1..=3 {
            for s in 1..=2 {
                for pad in 0..k {
                    let pr = p(10, k, s, pad);
                    for kw in 0..k {
                        let (x0, x1) = valid_x_range(&pr, kw);
                        assert!(
                            x0 <= x1 && x1 <= pr.ow(),
                            "k{k} s{s} p{pad} kw{kw}: {x0}..{x1}"
                        );
                        // Every x in range must index inside the image.
                        for x in x0..x1 {
                            let iw = (x * s + kw) as isize - pad as isize;
                            assert!((0..pr.iw as isize).contains(&iw));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn colref_row_addressing() {
        let c = ColRef {
            base: 4096,
            k: 4,
            m: 100,
        };
        assert_eq!(c.row(0), 4096);
        assert_eq!(c.row(1), 4096 + 400);
        assert_eq!(c.row(3), 4096 + 1200);
    }
}
