//! # lsv-vednn — the baseline proprietary-library stand-in
//!
//! The paper compares against NEC's vednn library (Section 7): a
//! highly-tuned vendor library whose convolution kernels "rely on
//! vectorizing computations across the spatial domain", with implicit- and
//! explicit-GEMM fallbacks, where "the best performing algorithm for a given
//! problem" is always used.
//!
//! This crate reproduces that baseline on the simulated vector engine:
//!
//! * [`direct`] — spatial-domain vectorized direct kernels for unit-stride
//!   convolutions, operating on plain NCHW tensors with a physically
//!   zero-padded source image and SX-Aurora-style 2-D vector loads. These
//!   kernels use the full vector length on large images (multiple output
//!   rows per vector) and degrade on 7x7 activations — the Figure 4
//!   behaviour the paper reports.
//! * [`gemm`] — explicit im2col + GEMM kernels for every direction and
//!   stride (with the implicit-GEMM shortcut for 1x1/stride-1 problems where
//!   the NCHW image *is* the column matrix).
//! * [`VednnConv::best`] — the algorithm chooser: probes the supported
//!   kernels in timing-only mode and keeps the faster one.

pub mod direct;
pub mod gemm;
pub mod perf;

pub use perf::bench_layer_vednn;

use lsv_arch::ArchParams;
use lsv_conv::{ConvProblem, ExecReport};
use lsv_conv::{Direction, ExecutionMode};
use lsv_tensor::{ActTensor, ActivationLayout, WeiTensor, WeightLayout};
use lsv_vengine::{Arena, VCore};
use std::ops::Range;

/// The kernel families inside the baseline library.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VednnAlgo {
    /// Spatial-domain vectorized direct convolution (unit stride only).
    DirectSpatial,
    /// Explicit im2col + GEMM (any stride; implicit-GEMM shortcut for
    /// 1x1/stride-1).
    Im2colGemm,
}

impl VednnAlgo {
    /// Whether this kernel family supports a problem/direction.
    pub fn supports(&self, p: &ConvProblem, dir: Direction) -> bool {
        match self {
            VednnAlgo::DirectSpatial => {
                // The spatial kernel packs padded images with one border
                // width for both axes, so it needs unit stride and a
                // symmetric effective padding; everything else falls back
                // to the GEMM path.
                let unit_stride = p.stride_h == 1 && p.stride_w == 1;
                match dir {
                    Direction::Fwd => unit_stride && p.pad_h == p.pad_w,
                    // backward-data needs the full-correlation padding
                    // `k - 1 - pad >= 0` in both dimensions, and equal
                    // across axes for the shared pack buffer
                    Direction::BwdData => {
                        unit_stride
                            && p.pad_h < p.kh
                            && p.pad_w < p.kw
                            && p.kh - 1 - p.pad_h == p.kw - 1 - p.pad_w
                    }
                    Direction::BwdWeights => false, // vednn uses GEMM here
                }
            }
            VednnAlgo::Im2colGemm => true,
        }
    }
}

/// Operand tensors plus the library-private scratch buffers.
#[derive(Debug, Clone, Copy)]
pub struct VednnTensors {
    /// Source activations, plain NCHW.
    pub src: ActTensor,
    /// Weights, plain OIHW.
    pub wei: WeiTensor,
    /// Destination activations, plain NCHW.
    pub dst: ActTensor,
    /// Scratch: one physically zero-padded source image
    /// (`IC x (IH+2p) x (IW+2p)`), reused across the minibatch.
    pub pad_buf: u64,
    /// Scratch: one im2col matrix (`K x M`), reused across the minibatch.
    pub col_buf: u64,
}

/// A configured baseline convolution.
#[derive(Debug, Clone)]
pub struct VednnConv {
    arch: ArchParams,
    problem: ConvProblem,
    direction: Direction,
    algo: VednnAlgo,
}

impl VednnConv {
    /// Use a specific kernel family.
    ///
    /// # Panics
    /// Panics if the family does not support the problem; use
    /// [`VednnAlgo::supports`] to check.
    pub fn with_algo(
        arch: &ArchParams,
        problem: ConvProblem,
        direction: Direction,
        algo: VednnAlgo,
    ) -> Self {
        assert!(
            algo.supports(&problem, direction),
            "{algo:?} does not support {problem} {direction}"
        );
        Self {
            arch: arch.clone(),
            problem,
            direction,
            algo,
        }
    }

    /// The chooser: probe every supported kernel family on a single image in
    /// timing-only mode and keep the fastest — the paper's "we always use
    /// the best performing algorithm in vednn".
    ///
    /// The decision is a pure function of (arch, single-image problem,
    /// direction), so it is served from the layer store when available;
    /// paranoid mode re-probes a sampled fraction of hits.
    pub fn best(arch: &ArchParams, problem: ConvProblem, direction: Direction) -> Self {
        let st = lsv_conv::store::store();
        let key =
            lsv_conv::store::choice_key(arch, &problem.with_minibatch(1), direction, "vednn-best");
        let from_tag = |tag: u8| match tag {
            0 => VednnAlgo::DirectSpatial,
            _ => VednnAlgo::Im2colGemm,
        };
        let algo = if let Some(tag) = st.get_choice(&key) {
            if st.paranoid_sample(&key) {
                let probed = Self::probe_best(arch, &problem, direction);
                assert_eq!(
                    probed,
                    from_tag(tag),
                    "paranoid store recheck diverged for key {}",
                    key.canonical()
                );
                st.note_paranoid_recheck();
            }
            from_tag(tag)
        } else {
            let algo = Self::probe_best(arch, &problem, direction);
            st.put_choice(
                &key,
                match algo {
                    VednnAlgo::DirectSpatial => 0,
                    VednnAlgo::Im2colGemm => 1,
                },
            );
            algo
        };
        Self {
            arch: arch.clone(),
            problem,
            direction,
            algo,
        }
    }

    /// The uncached chooser probe: simulate every supported family on one
    /// image and return the fastest.
    fn probe_best(arch: &ArchParams, problem: &ConvProblem, direction: Direction) -> VednnAlgo {
        let candidates = [VednnAlgo::DirectSpatial, VednnAlgo::Im2colGemm];
        let mut best: Option<(u64, VednnAlgo)> = None;
        for algo in candidates {
            if !algo.supports(problem, direction) {
                continue;
            }
            let probe = Self::with_algo(arch, problem.with_minibatch(1), direction, algo);
            let mut arena = Arena::new();
            let t = probe.alloc_tensors(&mut arena);
            let mut core = VCore::new(arch, ExecutionMode::TimingOnly, 1);
            core.region_enter("tune_candidate");
            probe.execute_core(&mut core, &mut arena, &t, 0..1);
            core.region_exit();
            let cycles = core.drain().cycles;
            if best.map(|(c, _)| cycles < c).unwrap_or(true) {
                best = Some((cycles, algo));
            }
        }
        best.expect("Im2colGemm supports everything").1
    }

    /// The chosen kernel family.
    pub fn algo(&self) -> VednnAlgo {
        self.algo
    }

    /// The problem this instance computes.
    pub fn problem(&self) -> &ConvProblem {
        &self.problem
    }

    /// The pass direction.
    pub fn direction(&self) -> Direction {
        self.direction
    }

    /// Allocate NCHW/OIHW tensors plus the library scratch buffers.
    pub fn alloc_tensors(&self, arena: &mut Arena) -> VednnTensors {
        let p = &self.problem;
        let src = ActTensor::alloc(arena, p.n, p.ic, p.ih, p.iw, ActivationLayout::nchw());
        let dst = ActTensor::alloc(arena, p.n, p.oc, p.oh(), p.ow(), ActivationLayout::nchw());
        let wei = WeiTensor::alloc(arena, p.oc, p.ic, p.kh, p.kw, WeightLayout::oihw());
        // Padded image scratch: sized for the larger of the two paddings the
        // direct kernels use (forward pad and full-correlation pad).
        let fwd_pad = p.pad_h.max(p.pad_w);
        let bwd_pad = (p.kh.max(p.kw)).saturating_sub(1);
        let pad = fwd_pad.max(bwd_pad);
        let c_max = p.ic.max(p.oc);
        let h_max = p.ih.max(p.oh()) + 2 * pad;
        let w_max = p.iw.max(p.ow()) + 2 * pad;
        let pad_buf = arena.alloc_labeled(c_max * h_max * w_max, "vednn pad_buf");
        let k = p.ic * p.kh * p.kw;
        let m = p.oh() * p.ow();
        let col_buf = arena.alloc_labeled(k * m, "vednn col_buf");
        VednnTensors {
            src,
            wei,
            dst,
            pad_buf,
            col_buf,
        }
    }

    /// Execute the chosen kernel for images `n_range` on one simulated core.
    pub fn execute_core(
        &self,
        core: &mut VCore,
        arena: &mut Arena,
        t: &VednnTensors,
        n_range: Range<usize>,
    ) {
        match (self.algo, self.direction) {
            (VednnAlgo::DirectSpatial, Direction::Fwd) => {
                direct::run_fwd(&self.arch, &self.problem, core, arena, t, n_range)
            }
            (VednnAlgo::DirectSpatial, Direction::BwdData) => {
                direct::run_bwd_data(&self.arch, &self.problem, core, arena, t, n_range)
            }
            (VednnAlgo::DirectSpatial, Direction::BwdWeights) => {
                unreachable!("DirectSpatial does not support bwdw")
            }
            (VednnAlgo::Im2colGemm, Direction::Fwd) => {
                gemm::run_fwd(&self.arch, &self.problem, core, arena, t, n_range)
            }
            (VednnAlgo::Im2colGemm, Direction::BwdData) => {
                gemm::run_bwd_data(&self.arch, &self.problem, core, arena, t, n_range)
            }
            (VednnAlgo::Im2colGemm, Direction::BwdWeights) => {
                gemm::run_bwd_weights(&self.arch, &self.problem, core, arena, t, n_range)
            }
        }
    }

    /// Single-core functional run over the whole problem, mirroring
    /// `lsv_conv::ConvPrimitive::run_functional`: returns the output (NCHW /
    /// OIHW) and the execution report.
    pub fn run_functional(
        &self,
        src_nchw: &[f32],
        wei_oihw: &[f32],
        dst_nchw: &[f32],
    ) -> (Vec<f32>, ExecReport) {
        let p = &self.problem;
        let mut arena = Arena::new();
        let t = self.alloc_tensors(&mut arena);
        let mut core = VCore::new(&self.arch, ExecutionMode::Functional, 1);
        match self.direction {
            Direction::Fwd => {
                t.src.store_nchw(&mut arena, src_nchw);
                t.wei.store_oihw(&mut arena, wei_oihw);
            }
            Direction::BwdData => {
                t.dst.store_nchw(&mut arena, dst_nchw);
                t.wei.store_oihw(&mut arena, wei_oihw);
            }
            Direction::BwdWeights => {
                t.src.store_nchw(&mut arena, src_nchw);
                t.dst.store_nchw(&mut arena, dst_nchw);
            }
        }
        self.execute_core(&mut core, &mut arena, &t, 0..p.n);
        let stats = core.drain();
        let out = match self.direction {
            Direction::Fwd => t.dst.load_nchw(&arena),
            Direction::BwdData => t.src.load_nchw(&arena),
            Direction::BwdWeights => t.wei.load_oihw(&arena),
        };
        (out, ExecReport::from(stats))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsv_arch::presets::sx_aurora;
    use lsv_conv::naive;
    use rand::{Rng, SeedableRng};

    fn rand_vec(len: usize, seed: u64) -> Vec<f32> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..len).map(|_| rng.gen_range(-1.0..1.0)).collect()
    }

    fn check(p: ConvProblem, dir: Direction, algo: VednnAlgo) {
        let arch = sx_aurora();
        let src = rand_vec(p.n * p.ic * p.ih * p.iw, 1);
        let wei = rand_vec(p.oc * p.ic * p.kh * p.kw, 2);
        let dst = rand_vec(p.n * p.oc * p.oh() * p.ow(), 3);
        let conv = VednnConv::with_algo(&arch, p, dir, algo);
        let (got, _) = conv.run_functional(&src, &wei, &dst);
        let want = match dir {
            Direction::Fwd => naive::forward(&p, &src, &wei),
            Direction::BwdData => naive::backward_data(&p, &dst, &wei),
            Direction::BwdWeights => naive::backward_weights(&p, &src, &dst),
        };
        let err = naive::max_abs_diff(&got, &want);
        let scale = want.iter().fold(0.0f32, |m, v| m.max(v.abs())).max(1.0);
        assert!(
            err / scale < 1e-3,
            "{algo:?} {dir}: rel err {}",
            err / scale
        );
    }

    #[test]
    fn direct_spatial_fwd_matches_reference() {
        check(
            ConvProblem::new(2, 3, 5, 9, 9, 3, 3, 1, 1),
            Direction::Fwd,
            VednnAlgo::DirectSpatial,
        );
        check(
            ConvProblem::new(1, 4, 4, 7, 7, 1, 1, 1, 0),
            Direction::Fwd,
            VednnAlgo::DirectSpatial,
        );
    }

    #[test]
    fn direct_spatial_bwdd_matches_reference() {
        check(
            ConvProblem::new(2, 3, 5, 9, 9, 3, 3, 1, 1),
            Direction::BwdData,
            VednnAlgo::DirectSpatial,
        );
        check(
            ConvProblem::new(1, 4, 4, 7, 7, 1, 1, 1, 0),
            Direction::BwdData,
            VednnAlgo::DirectSpatial,
        );
    }

    #[test]
    fn gemm_all_directions_match_reference() {
        for dir in Direction::ALL {
            check(
                ConvProblem::new(2, 3, 5, 8, 8, 3, 3, 1, 1),
                dir,
                VednnAlgo::Im2colGemm,
            );
        }
    }

    #[test]
    fn gemm_strided_matches_reference() {
        for dir in Direction::ALL {
            check(
                ConvProblem::new(2, 4, 6, 8, 8, 1, 1, 2, 0),
                dir,
                VednnAlgo::Im2colGemm,
            );
            check(
                ConvProblem::new(1, 3, 5, 9, 9, 3, 3, 2, 1),
                dir,
                VednnAlgo::Im2colGemm,
            );
        }
    }

    #[test]
    fn chooser_picks_supported_algo() {
        let arch = sx_aurora();
        // Strided: DirectSpatial unsupported, must pick GEMM.
        let p = ConvProblem::new(1, 8, 8, 8, 8, 1, 1, 2, 0);
        let c = VednnConv::best(&arch, p, Direction::Fwd);
        assert_eq!(c.algo(), VednnAlgo::Im2colGemm);
        // bwdw: always GEMM.
        let c = VednnConv::best(&arch, p, Direction::BwdWeights);
        assert_eq!(c.algo(), VednnAlgo::Im2colGemm);
    }
}

#[cfg(test)]
mod support_tests {
    use super::*;

    fn p(k: usize, s: usize, pad: usize) -> ConvProblem {
        ConvProblem::new(1, 4, 4, 8, 8, k, k, s, pad)
    }

    #[test]
    fn direct_spatial_support_matrix() {
        // unit stride: fwd + bwdd, never bwdw
        assert!(VednnAlgo::DirectSpatial.supports(&p(3, 1, 1), Direction::Fwd));
        assert!(VednnAlgo::DirectSpatial.supports(&p(3, 1, 1), Direction::BwdData));
        assert!(!VednnAlgo::DirectSpatial.supports(&p(3, 1, 1), Direction::BwdWeights));
        // strided: unsupported everywhere
        assert!(!VednnAlgo::DirectSpatial.supports(&p(1, 2, 0), Direction::Fwd));
        // bwdd needs pad < k (full-correlation padding)
        assert!(!VednnAlgo::DirectSpatial.supports(&p(1, 1, 1), Direction::BwdData));
    }

    #[test]
    fn gemm_supports_everything() {
        for dir in Direction::ALL {
            for (k, s, pad) in [(1, 1, 0), (3, 1, 1), (1, 2, 0), (3, 2, 1)] {
                assert!(VednnAlgo::Im2colGemm.supports(&p(k, s, pad), dir));
            }
        }
    }

    #[test]
    fn chooser_prefers_direct_on_large_unit_stride_images() {
        let arch = lsv_arch::presets::sx_aurora();
        let big = ConvProblem::new(1, 8, 8, 28, 28, 3, 3, 1, 1);
        let c = VednnConv::best(&arch, big, Direction::Fwd);
        assert_eq!(
            c.algo(),
            VednnAlgo::DirectSpatial,
            "multi-row vectorization wins"
        );
    }

    #[test]
    fn scratch_buffers_are_large_enough() {
        let arch = lsv_arch::presets::sx_aurora();
        let p = ConvProblem::new(2, 8, 16, 12, 12, 3, 3, 1, 1);
        let conv = VednnConv::with_algo(&arch, p, Direction::Fwd, VednnAlgo::Im2colGemm);
        let mut arena = lsv_vengine::Arena::new();
        let t = conv.alloc_tensors(&mut arena);
        // col buffer covers K x M elements
        let k = p.ic * p.kh * p.kw;
        let m = p.oh() * p.ow();
        assert!(arena.len_bytes() >= t.col_buf + (k * m * 4) as u64);
    }
}
