//! # lsv-models — ResNet convolution workloads
//!
//! * [`resnet_layers`] — the 19-layer suite of the paper's Table 3 (the
//!   distinct convolution shapes of the ResNet bottleneck models on
//!   ImageNet).
//! * [`ResNetModel`] — ResNet-50/101/152 with per-layer occurrence counts
//!   derived from the bottleneck block structure (`[3,4,6,3]`, `[3,4,23,3]`,
//!   `[3,8,36,3]`), used by the paper's Figures 5 and 6 ("each layer appears
//!   a different number of times on each model; e.g. layer IDs 11-13 are
//!   more frequent in the larger models").

use lsv_conv::ConvProblem;

/// Number of distinct layer shapes in Table 3.
pub const NUM_LAYERS: usize = 19;

/// Rows of Table 3: `(IC, OC, IH/IW, OH/OW, KH/KW, stride, pad)`.
pub const TABLE3: [(usize, usize, usize, usize, usize, usize, usize); NUM_LAYERS] = [
    (64, 256, 56, 56, 1, 1, 0),   // 0
    (64, 64, 56, 56, 1, 1, 0),    // 1
    (64, 64, 56, 56, 3, 1, 1),    // 2
    (256, 64, 56, 56, 1, 1, 0),   // 3
    (256, 512, 56, 28, 1, 2, 0),  // 4
    (256, 128, 56, 28, 1, 2, 0),  // 5
    (128, 128, 28, 28, 3, 1, 1),  // 6
    (128, 512, 28, 28, 1, 1, 0),  // 7
    (512, 128, 28, 28, 1, 1, 0),  // 8
    (512, 1024, 28, 14, 1, 2, 0), // 9
    (512, 256, 28, 14, 1, 2, 0),  // 10
    (256, 256, 14, 14, 3, 1, 1),  // 11
    (256, 1024, 14, 14, 1, 1, 0), // 12
    (1024, 256, 14, 14, 1, 1, 0), // 13
    (1024, 2048, 14, 7, 1, 2, 0), // 14
    (1024, 512, 14, 7, 1, 2, 0),  // 15
    (512, 512, 7, 7, 3, 1, 1),    // 16
    (512, 2048, 7, 7, 1, 1, 0),   // 17
    (2048, 512, 7, 7, 1, 1, 0),   // 18
];

/// The Table 3 layer suite at a given minibatch size (the paper uses 256 for
/// Figure 4, and sweeps {8..256} in Figure 6).
pub fn resnet_layers(minibatch: usize) -> Vec<ConvProblem> {
    TABLE3
        .iter()
        .map(|&(ic, oc, ihw, _ohw, k, s, pad)| {
            ConvProblem::new(minibatch, ic, oc, ihw, ihw, k, k, s, pad)
        })
        .collect()
}

/// One Table 3 layer by id.
///
/// # Panics
/// Panics if `id >= 19`.
pub fn resnet_layer(id: usize, minibatch: usize) -> ConvProblem {
    let (ic, oc, ihw, _ohw, k, s, pad) = TABLE3[id];
    ConvProblem::new(minibatch, ic, oc, ihw, ihw, k, k, s, pad)
}

/// A ResNet model variant (bottleneck architecture on 224x224 ImageNet).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResNetModel {
    /// ResNet-50: blocks `[3, 4, 6, 3]`.
    R50,
    /// ResNet-101: blocks `[3, 4, 23, 3]`.
    R101,
    /// ResNet-152: blocks `[3, 8, 36, 3]`.
    R152,
}

impl ResNetModel {
    /// All three models in the Figure 5 order.
    pub const ALL: [ResNetModel; 3] = [ResNetModel::R50, ResNetModel::R101, ResNetModel::R152];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            ResNetModel::R50 => "resnet-50",
            ResNetModel::R101 => "resnet-101",
            ResNetModel::R152 => "resnet-152",
        }
    }

    /// Bottleneck block counts per stage `[conv2, conv3, conv4, conv5]`.
    pub fn blocks(&self) -> [usize; 4] {
        match self {
            ResNetModel::R50 => [3, 4, 6, 3],
            ResNetModel::R101 => [3, 4, 23, 3],
            ResNetModel::R152 => [3, 8, 36, 3],
        }
    }

    /// How many times each Table 3 layer id occurs in one training step of
    /// this model.
    ///
    /// Per stage with `b` blocks the bottleneck structure contributes:
    /// the strided shortcut and strided reduce once, the 3x3 and the expand
    /// `b` times, and the wide-input reduce `b - 1` times. Stage 2 keeps the
    /// stem-width variants (ids 0-3) of Table 3.
    pub fn layer_counts(&self) -> [usize; NUM_LAYERS] {
        let [b2, b3, b4, b5] = self.blocks();
        [
            b2 + 1, // 0: 64->256 expand (every block) + downsample shortcut
            1,      // 1: 64->64 reduce (first block only, stem input)
            b2,     // 2: 64->64 3x3
            b2 - 1, // 3: 256->64 reduce (blocks 2..)
            1,      // 4: 256->512 s2 shortcut
            1,      // 5: 256->128 s2 reduce
            b3,     // 6: 128x128 3x3
            b3,     // 7: 128->512 expand
            b3 - 1, // 8: 512->128 reduce
            1,      // 9: 512->1024 s2 shortcut
            1,      // 10: 512->256 s2 reduce
            b4,     // 11: 256x256 3x3
            b4,     // 12: 256->1024 expand
            b4 - 1, // 13: 1024->256 reduce
            1,      // 14: 1024->2048 s2 shortcut
            1,      // 15: 1024->512 s2 reduce
            b5,     // 16: 512x512 3x3
            b5,     // 17: 512->2048 expand
            b5 - 1, // 18: 2048->512 reduce
        ]
    }

    /// Total convolution layers in one forward pass.
    pub fn total_conv_layers(&self) -> usize {
        self.layer_counts().iter().sum()
    }

    /// Total MAC flops (x2) of one pass over all convolutions at a given
    /// minibatch.
    pub fn total_flops(&self, minibatch: usize) -> u64 {
        let counts = self.layer_counts();
        resnet_layers(minibatch)
            .iter()
            .zip(counts)
            .map(|(p, c)| p.flops() * c as u64)
            .sum()
    }

    /// Passes in one training step: forward + backward-data +
    /// backward-weights, each touching the same convolution volume.
    pub const TRAINING_PASSES: u64 = 3;

    /// Flops of one inference pass (forward only) over all convolutions.
    pub fn inference_flops(&self, minibatch: usize) -> u64 {
        self.total_flops(minibatch)
    }

    /// Flops of one training step — the Figures 5/6 "x3 passes" factor.
    /// Every model-level GFLOP/s number must come through here (or
    /// [`ResNetModel::inference_flops`]) so the factor cannot drift between
    /// call sites.
    pub fn training_flops(&self, minibatch: usize) -> u64 {
        Self::TRAINING_PASSES * self.total_flops(minibatch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_output_shapes_are_consistent() {
        for (i, &(_, _, _ihw, ohw, ..)) in TABLE3.iter().enumerate() {
            let p = resnet_layer(i, 256);
            assert_eq!(p.oh(), ohw, "layer {i} OH");
            assert_eq!(p.ow(), ohw, "layer {i} OW");
        }
    }

    #[test]
    fn layer_counts_sum_to_model_depth() {
        // Bottleneck conv count: 3 per block + 4 downsample shortcuts.
        // ResNet-50: 16 blocks -> 48 + 4 = 52 convs (53 layers minus the
        // stem conv, which Table 3 excludes as it is a 7x7/stride-2 stem).
        assert_eq!(ResNetModel::R50.total_conv_layers(), 52);
        // ResNet-101: 33 blocks -> 99 + 4 = 103.
        assert_eq!(ResNetModel::R101.total_conv_layers(), 103);
        // ResNet-152: 50 blocks -> 150 + 4 = 154.
        assert_eq!(ResNetModel::R152.total_conv_layers(), 154);
    }

    #[test]
    fn late_layers_more_frequent_in_larger_models() {
        // The paper: "layer IDs 11-13 are more frequent in the larger models".
        let c50 = ResNetModel::R50.layer_counts();
        let c101 = ResNetModel::R101.layer_counts();
        let c152 = ResNetModel::R152.layer_counts();
        for id in 11..=13 {
            assert!(c101[id] > c50[id]);
            assert!(c152[id] > c101[id]);
        }
    }

    #[test]
    fn flops_scale_linearly_with_minibatch() {
        let m = ResNetModel::R101;
        assert_eq!(m.total_flops(32) * 8, m.total_flops(256));
    }

    #[test]
    fn training_is_exactly_three_inference_passes() {
        for m in ResNetModel::ALL {
            for mb in [1, 8, 256] {
                assert_eq!(m.inference_flops(mb), m.total_flops(mb));
                assert_eq!(m.training_flops(mb), 3 * m.inference_flops(mb));
            }
        }
    }

    #[test]
    fn resnet50_flops_are_plausible() {
        // ResNet-50 convolutions are ~3.7 GMAC per 224x224 image (the
        // well-known "~3.8G" figure counts multiply-adds; x2 for FLOPs).
        let gmacs = ResNetModel::R50.total_flops(1) as f64 / 2e9;
        assert!((3.0..4.5).contains(&gmacs), "{gmacs} GMAC");
    }
}

/// The 3x3 convolution layers of VGG-16 (Simonyan & Zisserman), the other
/// model family the paper's Figure 2 draws its footprint shapes from.
/// `(IC, OC, IH/IW)`; all are 3x3, stride 1, pad 1.
pub const VGG16_3X3: [(usize, usize, usize); 13] = [
    (3, 64, 224),
    (64, 64, 224),
    (64, 128, 112),
    (128, 128, 112),
    (128, 256, 56),
    (256, 256, 56),
    (256, 256, 56),
    (256, 512, 28),
    (512, 512, 28),
    (512, 512, 28),
    (512, 512, 14),
    (512, 512, 14),
    (512, 512, 14),
];

/// The VGG-16 convolution suite at a given minibatch size.
pub fn vgg16_layers(minibatch: usize) -> Vec<ConvProblem> {
    VGG16_3X3
        .iter()
        .map(|&(ic, oc, hw)| ConvProblem::new(minibatch, ic, oc, hw, hw, 3, 3, 1, 1))
        .collect()
}

/// Total MAC flops (x2) of one forward pass over VGG-16's convolutions.
pub fn vgg16_total_flops(minibatch: usize) -> u64 {
    vgg16_layers(minibatch).iter().map(|p| p.flops()).sum()
}

#[cfg(test)]
mod vgg_tests {
    use super::*;

    #[test]
    fn vgg16_shapes_preserve_spatial_size() {
        for p in vgg16_layers(1) {
            assert_eq!(p.oh(), p.ih, "3x3/s1/p1 is shape-preserving");
            assert_eq!(p.kh, 3);
        }
    }

    #[test]
    fn vgg16_flops_are_plausible() {
        // VGG-16 is famously ~15.3 GMACs per 224x224 image.
        let gmacs = vgg16_total_flops(1) as f64 / 2e9;
        assert!((14.0..16.5).contains(&gmacs), "{gmacs} GMAC");
    }

    #[test]
    fn vgg16_has_13_conv_layers() {
        assert_eq!(vgg16_layers(4).len(), 13);
    }
}
