//! Property tests: every generated kernel (all algorithms x directions)
//! computes the same function as the naive reference on randomly drawn
//! convolution problems — shapes, strides and paddings included.

use lsv_arch::presets::sx_aurora;
use lsv_conv::{validate, Algorithm, ConvProblem, Direction};
use proptest::prelude::*;

fn arb_problem() -> impl Strategy<Value = ConvProblem> {
    (
        1usize..3,                                   // n
        1usize..20,                                  // ic
        1usize..20,                                  // oc
        3usize..9,                                   // ih == iw
        prop_oneof![Just(1usize), Just(2), Just(3)], // k
        prop_oneof![Just(1usize), Just(2)],          // stride
        0usize..2,                                   // pad
    )
        .prop_filter_map(
            "kernel must fit padded input",
            |(n, ic, oc, hw, k, s, pad)| {
                if hw + 2 * pad >= k {
                    Some(ConvProblem::new(n, ic, oc, hw, hw, k, k, s, pad))
                } else {
                    None
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn forward_kernels_match_reference(p in arb_problem(), alg_idx in 0usize..3) {
        let arch = sx_aurora();
        let r = validate(&arch, &p, Direction::Fwd, Algorithm::ALL[alg_idx]);
        prop_assert!(r.passed, "{p} fwd {}: rel {:.3e}", Algorithm::ALL[alg_idx], r.rel_err);
    }

    #[test]
    fn backward_data_kernels_match_reference(p in arb_problem(), alg_idx in 0usize..3) {
        let arch = sx_aurora();
        let r = validate(&arch, &p, Direction::BwdData, Algorithm::ALL[alg_idx]);
        prop_assert!(r.passed, "{p} bwdd {}: rel {:.3e}", Algorithm::ALL[alg_idx], r.rel_err);
    }

    #[test]
    fn backward_weights_kernels_match_reference(p in arb_problem(), alg_idx in 0usize..3) {
        let arch = sx_aurora();
        let r = validate(&arch, &p, Direction::BwdWeights, Algorithm::ALL[alg_idx]);
        prop_assert!(r.passed, "{p} bwdw {}: rel {:.3e}", Algorithm::ALL[alg_idx], r.rel_err);
    }

    #[test]
    fn kernels_match_reference_on_narrow_vectors(p in arb_problem(), alg_idx in 0usize..3) {
        // The Figure 5 sweep regenerates kernels for shorter vector lengths;
        // correctness must be length-independent.
        let arch = sx_aurora().with_max_vlen_bits(512);
        let r = validate(&arch, &p, Direction::Fwd, Algorithm::ALL[alg_idx]);
        prop_assert!(r.passed, "{p} fwd@512b {}: rel {:.3e}", Algorithm::ALL[alg_idx], r.rel_err);
    }
}
