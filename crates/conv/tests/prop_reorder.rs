//! Property tests for the measured reorder primitives: NCHW -> blocked ->
//! NCHW is the identity for arbitrary shapes and block sizes, and the
//! OIHW weight reorder matches the host-side conversion.

use lsv_arch::presets::sx_aurora;
use lsv_conv::reorder::{reorder_activations, reorder_activations_back, reorder_weights};
use lsv_tensor::{ActTensor, ActivationLayout, WeiTensor, WeightLayout};
use lsv_vengine::{Arena, ExecutionMode, VCore};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn activation_reorder_roundtrips(
        n in 1usize..3,
        c in 1usize..50,
        h in 1usize..7,
        w in 1usize..7,
        cb in 1usize..50,
    ) {
        let arch = sx_aurora();
        let mut arena = Arena::new();
        let mut core = VCore::new(&arch, ExecutionMode::Functional, 1);
        let nchw = ActTensor::alloc(&mut arena, n, c, h, w, ActivationLayout::nchw());
        let blocked = ActTensor::alloc(&mut arena, n, c, h, w, ActivationLayout { cb });
        let back = ActTensor::alloc(&mut arena, n, c, h, w, ActivationLayout::nchw());
        let data: Vec<f32> = (0..nchw.elems()).map(|i| (i as f32) * 0.5 - 3.0).collect();
        nchw.store_nchw(&mut arena, &data);
        reorder_activations(&mut core, &mut arena, &nchw, &blocked);
        prop_assert_eq!(blocked.load_nchw(&arena), data.clone());
        reorder_activations_back(&mut core, &mut arena, &blocked, &back);
        prop_assert_eq!(back.load_nchw(&arena), data);
    }

    #[test]
    fn weight_reorder_matches_host_path(
        oc in 1usize..24,
        ic in 1usize..16,
        k in 1usize..4,
        icb in 1usize..16,
        ocb in 1usize..24,
    ) {
        let arch = sx_aurora();
        let mut arena = Arena::new();
        let mut core = VCore::new(&arch, ExecutionMode::Functional, 1);
        let oihw = WeiTensor::alloc(&mut arena, oc, ic, k, k, WeightLayout::oihw());
        let blocked = WeiTensor::alloc(&mut arena, oc, ic, k, k, WeightLayout { icb, ocb });
        let data: Vec<f32> = (0..oihw.elems()).map(|i| (i as f32).sin()).collect();
        oihw.store_oihw(&mut arena, &data);
        reorder_weights(&mut core, &mut arena, &oihw, &blocked);
        prop_assert_eq!(blocked.load_oihw(&arena), data);
    }

    #[test]
    fn reorder_charges_vector_traffic(
        c in 8usize..64,
        hw in 2usize..8,
    ) {
        let arch = sx_aurora();
        let mut arena = Arena::new();
        let mut core = VCore::new(&arch, ExecutionMode::TimingOnly, 1);
        let nchw = ActTensor::alloc(&mut arena, 1, c, hw, hw, ActivationLayout::nchw());
        let blocked = ActTensor::alloc(&mut arena, 1, c, hw, hw, ActivationLayout { cb: 32 });
        reorder_activations(&mut core, &mut arena, &nchw, &blocked);
        let s = core.drain();
        // one strided load + one store per (block, spatial point)
        let expected = blocked.c_blocks() * hw * hw;
        prop_assert_eq!(s.insts.vloads as usize, expected);
        prop_assert_eq!(s.insts.vstores as usize, expected);
        prop_assert!(s.cycles > 0);
    }
}
