//! Structural tests of the generated instruction streams, via the engine's
//! trace facility: the paper's `B_seq` reasoning (Section 6.2) assumes the
//! JIT emits a scalar load and a pointer update between consecutive vector
//! FMAs — verify our generated kernels really have that shape, and that the
//! MBDC kernels really access the destination with gathers/scatters while
//! DC/BDC use unit-stride vector ops (Table 2's defining difference).

use lsv_arch::presets::sx_aurora;
use lsv_conv::{Algorithm, ConvDesc, ConvProblem, Direction};
use lsv_vengine::{Arena, ExecutionMode, TraceEvent, VCore};

fn default_problem() -> ConvProblem {
    ConvProblem::new(1, 40, 48, 6, 6, 3, 3, 1, 1)
}

fn trace_of(alg: Algorithm, dir: Direction) -> Vec<TraceEvent> {
    trace_of_problem(alg, dir, default_problem())
}

fn trace_of_problem(alg: Algorithm, dir: Direction, p: ConvProblem) -> Vec<TraceEvent> {
    let arch = sx_aurora();
    let prim = ConvDesc::new(p, dir, alg).create(&arch, 1).unwrap();
    let mut arena = Arena::new();
    let t = prim.alloc_tensors(&mut arena);
    let mut core = VCore::new(&arch, ExecutionMode::TimingOnly, 1);
    core.enable_trace();
    prim.execute_core(&mut core, &mut arena, &t, 0..1, 0..prim.bwdw_small_blocks());
    core.trace().unwrap().to_vec()
}

/// Average instruction distance between consecutive vector FMAs.
fn mean_fma_distance(trace: &[TraceEvent]) -> f64 {
    let idx: Vec<usize> = trace
        .iter()
        .enumerate()
        .filter_map(|(i, e)| matches!(e, TraceEvent::VFma { .. }).then_some(i))
        .collect();
    assert!(idx.len() > 10, "kernel too small to measure");
    let total: usize = idx.windows(2).map(|w| w[1] - w[0]).sum();
    total as f64 / (idx.len() - 1) as f64
}

#[test]
fn fwd_kernels_have_bseq_three_structure() {
    // Between FMAs: scalar pointer update + scalar load (B_seq = 3),
    // slightly diluted by loop-boundary instructions.
    for alg in Algorithm::ALL {
        let trace = trace_of(alg, Direction::Fwd);
        let d = mean_fma_distance(&trace);
        assert!(
            (2.5..4.0).contains(&d),
            "{alg}: mean inter-FMA distance {d:.2}, expected ~3 (B_seq)"
        );
        // Each FMA is immediately preceded by its scalar load.
        let mut checked = 0;
        for w in trace.windows(2) {
            if let [TraceEvent::ScalarLoad { .. }, TraceEvent::VFma { .. }] = w {
                checked += 1;
            }
        }
        let fmas = trace
            .iter()
            .filter(|e| matches!(e, TraceEvent::VFma { .. }))
            .count();
        assert!(
            checked as f64 > 0.95 * fmas as f64,
            "{alg}: only {checked}/{fmas} FMAs fed by an adjacent scalar load"
        );
    }
}

#[test]
fn mbdc_uses_gathers_dc_uses_unit_stride() {
    let dc = trace_of(Algorithm::Dc, Direction::Fwd);
    let mbdc = trace_of(Algorithm::Mbdc, Direction::Fwd);
    let count = |t: &[TraceEvent], f: fn(&TraceEvent) -> bool| t.iter().filter(|e| f(e)).count();
    assert_eq!(
        count(&dc, |e| matches!(
            e,
            TraceEvent::VGather { .. } | TraceEvent::VScatter { .. }
        )),
        0,
        "DC never gathers"
    );
    assert!(
        count(&mbdc, |e| matches!(e, TraceEvent::VScatter { .. })) > 0,
        "MBDC stores D via block scatters"
    );
    // D *loads* (gathers) only appear once the channel reduction is split
    // into multiple chunks; force a small schedule grain to exercise them.
    let arch = sx_aurora();
    let p = default_problem();
    let desc = ConvDesc::new(p, Direction::Fwd, Algorithm::Mbdc);
    let mut cfg = *desc.create(&arch, 1).unwrap().cfg();
    cfg.tile.c_i = 8; // several IC chunks -> the partial sums round-trip D
    let prim = desc.create_with_config(&arch, cfg, 1);
    let mut arena = Arena::new();
    let t = prim.alloc_tensors(&mut arena);
    let mut core = VCore::new(&arch, ExecutionMode::TimingOnly, 1);
    core.enable_trace();
    prim.execute_core(&mut core, &mut arena, &t, 0..1, 0..0);
    let chunked = core.trace().unwrap();
    assert!(
        chunked
            .iter()
            .filter(|e| matches!(e, TraceEvent::VGather { .. }))
            .count()
            > 0,
        "chunked MBDC reloads D via block gathers"
    );
}

#[test]
fn accumulator_rotation_matches_register_block() {
    // Consecutive FMAs must hit *different* accumulators (the independent
    // chains of Section 4.1); the same accumulator returns after
    // ~RB_h*RB_w FMAs.
    let arch = sx_aurora();
    let p = ConvProblem::new(1, 40, 48, 6, 6, 3, 3, 1, 1);
    let prim = ConvDesc::new(p, Direction::Fwd, Algorithm::Dc)
        .create(&arch, 1)
        .unwrap();
    let rb = prim.cfg().rb.combined();
    let trace = trace_of(Algorithm::Dc, Direction::Fwd);
    let accs: Vec<usize> = trace
        .iter()
        .filter_map(|e| match e {
            TraceEvent::VFma { acc, .. } => Some(*acc),
            _ => None,
        })
        .collect();
    let mut same_adjacent = 0usize;
    for w in accs.windows(2) {
        if w[0] == w[1] {
            same_adjacent += 1;
        }
    }
    assert!(
        (same_adjacent as f64) < 0.02 * accs.len() as f64,
        "adjacent FMAs reuse an accumulator {same_adjacent}/{} times",
        accs.len()
    );
    // All rb accumulator registers appear.
    let distinct: std::collections::HashSet<_> = accs.iter().collect();
    // The 6x6 output means partial edge blocks; at least a full block's
    // worth of accumulators must be exercised somewhere.
    assert!(
        distinct.len() >= rb.min(p.oh() * p.ow()),
        "only {} accumulators seen, rb = {rb}",
        distinct.len()
    );
}

#[test]
fn bwdw_stores_each_output_vector_once() {
    // The bwdw accumulators live across the whole reduction: the number of
    // vector stores must equal the number of W_diff vectors, not scale with
    // the spatial size.
    let arch = sx_aurora();
    let p = default_problem();
    let prim = ConvDesc::new(p, Direction::BwdWeights, Algorithm::Dc)
        .create(&arch, 1)
        .unwrap();
    let trace = trace_of_problem(Algorithm::Dc, Direction::BwdWeights, p);
    let stores = trace
        .iter()
        .filter(|e| matches!(e, TraceEvent::VStore { .. }))
        .count();
    // One store per (vec_block, small channel, kh, kw).
    let cfg = prim.cfg();
    let (c_vec, c_small) = if cfg.vec_over_ic {
        (p.ic, p.oc)
    } else {
        (p.oc, p.ic)
    };
    let expected = c_vec.div_ceil(cfg.vl) * c_small * p.kh * p.kw;
    assert_eq!(stores, expected);
}
