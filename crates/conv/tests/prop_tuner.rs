//! Property tests for the Section 6.1 auto-tuner (Algorithm 3) and the
//! register-blocking policies: postconditions that must hold for *any*
//! problem geometry.

use lsv_arch::formula3_predicts_conflicts;
use lsv_arch::presets::{aurora_with_vlen_bits, sx_aurora};
use lsv_conv::tuning::{
    autotune_microkernel, kernel_config, split_register_block, split_register_block_capped,
    RegisterBlocking,
};
use lsv_conv::{Algorithm, ConvProblem, Direction};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn tuner_output_is_a_valid_tile(
        kh in 1usize..8,
        kw in 1usize..8,
        c_sum in 1usize..3000,
        c_vec in 1usize..3000,
        hw in 1usize..300,
        rb_w in 1usize..32,
        rb_h in 1usize..8,
        threads in 1usize..16,
    ) {
        let arch = sx_aurora();
        let rb = RegisterBlocking { rb_w, rb_h };
        let t = autotune_microkernel(&arch, kh, kw, c_sum, c_vec, hw, hw, rb, threads);
        prop_assert!(t.kh_i >= 1 && t.kh_i <= kh);
        prop_assert!(t.kw_i >= 1 && t.kw_i <= kw);
        prop_assert!(t.c_i >= 1 && t.c_i <= c_sum);
    }

    #[test]
    fn tuner_shrinks_the_weights_subtensor_into_the_llc(
        k in 1usize..6,
        c in 32usize..4097,
    ) {
        // Whenever the tuner *can* fit the W sub-tensor (it always can:
        // c_i can drop to N_cline and kh_i/kw_i to 1), it must.
        let arch = sx_aurora();
        let rb = RegisterBlocking { rb_w: 14, rb_h: 2 };
        let t = autotune_microkernel(&arch, k, k, c, c, 64, 64, rb, 1);
        let cvb = c.min(arch.n_vlen());
        let w_bytes = cvb * t.c_i * t.kh_i * t.kw_i * 4;
        let floor_bytes = cvb * arch.n_cline() * 4;
        prop_assert!(
            w_bytes <= arch.llc.size || w_bytes <= floor_bytes,
            "w_bytes {w_bytes} exceeds LLC with room to shrink"
        );
    }

    #[test]
    fn split_register_block_respects_shape(target in 1usize..200, ow in 1usize..80, oh in 1usize..80) {
        let rb = split_register_block(target, ow, oh);
        prop_assert!(rb.rb_w >= 1 && rb.rb_w <= ow);
        prop_assert!(rb.rb_h >= 1 && rb.rb_h <= oh);
        // the lower-bound split reaches the target unless the shape is smaller
        prop_assert!(rb.combined() >= target.min(ow * oh) || rb.combined() == ow * oh);
    }

    #[test]
    fn capped_split_never_exceeds_target(target in 1usize..200, ow in 1usize..80, oh in 1usize..80) {
        let rb = split_register_block_capped(target, ow, oh);
        prop_assert!(rb.combined() <= target.max(1) || rb.rb_w == ow.min(target).max(1) && rb.rb_h == 1);
        prop_assert!(rb.combined() >= 1);
    }

    #[test]
    fn bdc_configs_never_predict_conflicts_on_unit_stride(
        ic in 1usize..2049,
        oc in 1usize..2049,
        hw in 7usize..57,
    ) {
        let arch = sx_aurora();
        let p = ConvProblem::new(8, ic, oc, hw, hw, 1, 1, 1, 0);
        let cfg = kernel_config(&arch, &p, Direction::Fwd, Algorithm::Bdc, 8);
        prop_assert!(
            !formula3_predicts_conflicts(&arch, cfg.src_layout.cb, cfg.rb.combined(), 1),
            "BDC chose rb {} with A_b {}",
            cfg.rb.combined(),
            cfg.src_layout.cb
        );
    }

    #[test]
    fn mbdc_activation_blocks_are_cache_line_sized(
        ic in 1usize..2049,
        oc in 1usize..2049,
        vlen_pow in 4u32..10, // 512..16384 bits
    ) {
        let arch = aurora_with_vlen_bits(1 << vlen_pow << 5);
        let p = ConvProblem::new(8, ic, oc, 14, 14, 3, 3, 1, 1);
        let cfg = kernel_config(&arch, &p, Direction::Fwd, Algorithm::Mbdc, 8);
        prop_assert!(cfg.src_layout.cb <= arch.n_cline());
        prop_assert!(cfg.dst_layout.cb <= arch.n_cline());
    }

    #[test]
    fn primitive_creation_never_panics_and_fits_registers(
        ic in 1usize..1025,
        oc in 1usize..1025,
        hw in 3usize..30,
        k in 1usize..4,
        s in 1usize..3,
        alg_idx in 0usize..3,
        dir_idx in 0usize..3,
    ) {
        let arch = sx_aurora();
        let pad = if k > 1 { 1 } else { 0 };
        prop_assume!(hw + 2 * pad >= k);
        let p = ConvProblem::new(4, ic, oc, hw, hw, k, k, s, pad);
        let prim = lsv_conv::ConvDesc::new(p, Direction::ALL[dir_idx], Algorithm::ALL[alg_idx])
            .create(&arch, 8);
        let prim = prim.expect("creation should always succeed on this machine");
        let cfg = prim.cfg();
        let regs = match Direction::ALL[dir_idx] {
            Direction::BwdWeights => cfg.rb_c + cfg.wbuf.max(2),
            _ => cfg.rb.combined() + cfg.wbuf,
        };
        prop_assert!(regs <= arch.n_vregs, "register overflow: {regs}");
    }
}
