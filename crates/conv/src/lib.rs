//! # lsv-conv — efficient direct convolution using long SIMD instructions
//!
//! The paper's primary contribution: the state-of-the-art SIMD direct
//! convolution adapted to long-SIMD machines (**DC**, Section 4 /
//! Algorithm 2), the **Bounded Direct Convolution** (**BDC**, Section 6.2),
//! and the **Multi-Block Direct Convolution** (**MBDC**, Section 6.3 /
//! Algorithm 4), together with:
//!
//! * the dynamic micro-kernel footprint **auto-tuner** (Section 6.1 /
//!   Algorithm 3) with its *loop resizing* and *loop reordering* strategies,
//! * the register-blocking policies driven by the analytical model
//!   (Formulas 2 and 4),
//! * a oneDNN-style two-step **primitive API** (Section 6.5): declare a
//!   [`ConvDesc`], create a [`ConvPrimitive`] (the "code generation" step
//!   that fixes layouts, blocking factors and the micro-kernel program),
//!   then execute it on the simulated vector engine,
//! * a **multi-core scheduler** replicating the paper's parallelization
//!   strategy (minibatch across cores; smallest feature-map dimension for
//!   the backward-weights pass — Section 4.3),
//! * a scalar **naive reference** for all three directions and validation
//!   helpers (the artifact's `validate.sh` equivalent),
//! * an **execution-backend seam** ([`backend::ExecBackend`]): one frozen
//!   kernel plan, two targets — the cycle-level simulator ([`SimBackend`])
//!   and a native host lowering ([`NativeBackend`]) with bit-identical
//!   functional output at a measured ~20× simulator speedup on the fuzz
//!   corpus.
//!
//! All three training directions are supported: forward data (`fwdd`),
//! backward data (`bwdd`) and backward weights (`bwdw`).

pub mod analysis;
pub mod backend;
pub mod footprint;
pub mod fuzz;
pub mod kernels;
pub mod multicore;
pub mod naive;
mod native;
pub mod perf;
pub mod primitive;
pub mod problem;
pub mod reorder;
pub mod runner;
pub mod store;
pub mod tuning;
pub mod verify;

pub use analysis::{scalar_stream_profile, ScalarStreamProfile};
pub use backend::{BackendKind, ExecBackend, NativeBackend, SimBackend};
pub use multicore::{execute_multicore, MulticoreReport};
pub use perf::{bench_layer, bench_layer_native, bench_layer_profiled, LayerPerf, NativePerf};
pub use primitive::{ConvDesc, ConvPrimitive, ConvTensors, ExecReport, UnsupportedReason};
pub use problem::{Algorithm, ConvProblem, Direction};
pub use runner::{LayerSpec, ModelPlan, ModelRunner, Pass, PlanEntry, TunePolicy};
pub use store::{stats_metrics_json, LayerStore, StoreConfig, StoreStats};
pub use tuning::{
    autotune_microkernel, tune_empirical, KernelConfig, MicroTile, RegisterBlocking, TuneReport,
};
pub use verify::{validate, validate_with_backend, ValidationReport};

/// Execution mode re-export (functional vs timing-only).
pub use lsv_vengine::ExecutionMode;
