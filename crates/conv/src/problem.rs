//! Convolution problem descriptors (Section 2's tensor-shape conventions).

use std::fmt;

/// Training pass direction (Section 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Forward data: `D = conv(S, W)`.
    Fwd,
    /// Backward data: `S_diff = conv*(D_diff, W)`.
    BwdData,
    /// Backward weights: `W_diff = conv*(S, D_diff)`.
    BwdWeights,
}

impl Direction {
    /// All three directions in the paper's Figure 4 order.
    pub const ALL: [Direction; 3] = [Direction::Fwd, Direction::BwdData, Direction::BwdWeights];

    /// The short name used in the paper and the artifact CSVs.
    pub fn short_name(&self) -> &'static str {
        match self {
            Direction::Fwd => "fwdd",
            Direction::BwdData => "bwdd",
            Direction::BwdWeights => "bwdw",
        }
    }
}

impl fmt::Display for Direction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.short_name())
    }
}

/// Convolution algorithm selector.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Direct Convolution for long SIMD architectures (Section 4) — the
    /// state-of-the-art baseline.
    Dc,
    /// Bounded Direct Convolution (Section 6.2).
    Bdc,
    /// Multi-Block Direct Convolution (Section 6.3).
    Mbdc,
}

impl Algorithm {
    /// The three direct algorithms in the paper's plotting order.
    pub const ALL: [Algorithm; 3] = [Algorithm::Dc, Algorithm::Bdc, Algorithm::Mbdc];

    /// Display name matching the paper.
    pub fn short_name(&self) -> &'static str {
        match self {
            Algorithm::Dc => "DC",
            Algorithm::Bdc => "BDC",
            Algorithm::Mbdc => "MBDC",
        }
    }
}

impl fmt::Display for Algorithm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.short_name())
    }
}

/// A 2-D convolution problem: `S (N, IC, IH, IW)` * `W (OC, IC, KH, KW)`
/// -> `D (N, OC, OH, OW)` with per-axis stride and padding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConvProblem {
    /// Minibatch size `N`.
    pub n: usize,
    /// Input feature maps `IC`.
    pub ic: usize,
    /// Output feature maps `OC`.
    pub oc: usize,
    /// Input height `IH`.
    pub ih: usize,
    /// Input width `IW`.
    pub iw: usize,
    /// Kernel height `KH`.
    pub kh: usize,
    /// Kernel width `KW`.
    pub kw: usize,
    /// Vertical stride `C_str,h`.
    pub stride_h: usize,
    /// Horizontal stride `C_str,w`.
    pub stride_w: usize,
    /// Vertical zero padding `C_pad,h`.
    pub pad_h: usize,
    /// Horizontal zero padding `C_pad,w`.
    pub pad_w: usize,
}

impl ConvProblem {
    /// Construct a problem with symmetric stride and padding (the paper's
    /// geometry domain); validates that the output shape is non-empty.
    ///
    /// # Panics
    /// Panics if the geometry is degenerate (zero dims, stride 0, or the
    /// padded input is smaller than the kernel).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        n: usize,
        ic: usize,
        oc: usize,
        ih: usize,
        iw: usize,
        kh: usize,
        kw: usize,
        stride: usize,
        pad: usize,
    ) -> Self {
        Self::new_asym(n, ic, oc, ih, iw, kh, kw, stride, stride, pad, pad)
    }

    /// Construct a problem with independent per-axis stride and padding
    /// (rectangular geometries: `1x7` kernels, `2x1` strides, one-sided-axis
    /// padding).
    ///
    /// # Panics
    /// Panics if the geometry is degenerate (zero dims, a zero stride, or a
    /// padded input axis smaller than the kernel axis).
    #[allow(clippy::too_many_arguments)]
    pub fn new_asym(
        n: usize,
        ic: usize,
        oc: usize,
        ih: usize,
        iw: usize,
        kh: usize,
        kw: usize,
        stride_h: usize,
        stride_w: usize,
        pad_h: usize,
        pad_w: usize,
    ) -> Self {
        assert!(n > 0 && ic > 0 && oc > 0 && ih > 0 && iw > 0 && kh > 0 && kw > 0);
        assert!(stride_h > 0 && stride_w > 0, "stride must be positive");
        assert!(
            ih + 2 * pad_h >= kh && iw + 2 * pad_w >= kw,
            "kernel larger than padded input"
        );
        Self {
            n,
            ic,
            oc,
            ih,
            iw,
            kh,
            kw,
            stride_h,
            stride_w,
            pad_h,
            pad_w,
        }
    }

    /// Same problem with a different minibatch size.
    ///
    /// # Panics
    /// Panics if `n` is zero, like [`ConvProblem::new`] does.
    pub fn with_minibatch(&self, n: usize) -> Self {
        assert!(n > 0, "minibatch must be positive");
        let mut p = *self;
        p.n = n;
        p
    }

    /// True when stride and padding are symmetric across both spatial axes —
    /// the geometry domain of the paper's experiments.
    #[inline]
    pub fn is_symmetric(&self) -> bool {
        self.stride_h == self.stride_w && self.pad_h == self.pad_w
    }

    /// Output height `OH`.
    #[inline]
    pub fn oh(&self) -> usize {
        (self.ih + 2 * self.pad_h - self.kh) / self.stride_h + 1
    }

    /// Output width `OW`.
    #[inline]
    pub fn ow(&self) -> usize {
        (self.iw + 2 * self.pad_w - self.kw) / self.stride_w + 1
    }

    /// Multiply-accumulate count of one pass (identical for all three
    /// directions), i.e. `N*OC*OH*OW*IC*KH*KW`.
    pub fn macs(&self) -> u64 {
        self.n as u64
            * self.oc as u64
            * self.oh() as u64
            * self.ow() as u64
            * self.ic as u64
            * self.kh as u64
            * self.kw as u64
    }

    /// Floating-point operations of one pass (2 per MAC) — the numerator of
    /// the paper's GFLOP/s metric.
    pub fn flops(&self) -> u64 {
        2 * self.macs()
    }

    /// Number of independent output elements of a direction (Section 2.1).
    pub fn independent_outputs(&self, dir: Direction) -> u64 {
        match dir {
            Direction::Fwd => self.n as u64 * self.oc as u64 * self.oh() as u64 * self.ow() as u64,
            Direction::BwdData => self.n as u64 * self.ic as u64 * self.ih as u64 * self.iw as u64,
            Direction::BwdWeights => {
                self.oc as u64 * self.ic as u64 * self.kh as u64 * self.kw as u64
            }
        }
    }
}

impl fmt::Display for ConvProblem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Symmetric problems keep the historical format so artifact CSVs and
        // the golden-cycle fixture stay bit-identical.
        if self.is_symmetric() {
            write!(
                f,
                "n{}ic{}oc{}ih{}iw{}kh{}kw{}s{}p{}",
                self.n,
                self.ic,
                self.oc,
                self.ih,
                self.iw,
                self.kh,
                self.kw,
                self.stride_w,
                self.pad_w
            )
        } else {
            write!(
                f,
                "n{}ic{}oc{}ih{}iw{}kh{}kw{}s{}x{}p{}x{}",
                self.n,
                self.ic,
                self.oc,
                self.ih,
                self.iw,
                self.kh,
                self.kw,
                self.stride_h,
                self.stride_w,
                self.pad_h,
                self.pad_w
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_shapes_match_table3() {
        // Table 3 rows (ID, IC, OC, IH/IW, OH/OW, K, stride, pad).
        let l0 = ConvProblem::new(256, 64, 256, 56, 56, 1, 1, 1, 0);
        assert_eq!((l0.oh(), l0.ow()), (56, 56));
        let l2 = ConvProblem::new(256, 64, 64, 56, 56, 3, 3, 1, 1);
        assert_eq!((l2.oh(), l2.ow()), (56, 56));
        let l4 = ConvProblem::new(256, 256, 512, 56, 56, 1, 1, 2, 0);
        assert_eq!((l4.oh(), l4.ow()), (28, 28));
        let l16 = ConvProblem::new(256, 512, 512, 7, 7, 3, 3, 1, 1);
        assert_eq!((l16.oh(), l16.ow()), (7, 7));
    }

    #[test]
    fn flops_formula() {
        let p = ConvProblem::new(2, 3, 4, 8, 8, 3, 3, 1, 1);
        assert_eq!(p.flops(), 2 * 2 * 4 * 8 * 8 * 3 * 3 * 3);
    }

    #[test]
    fn independent_outputs_per_direction() {
        let p = ConvProblem::new(2, 3, 4, 8, 8, 3, 3, 1, 1);
        assert_eq!(p.independent_outputs(Direction::Fwd), 2 * 4 * 8 * 8);
        assert_eq!(p.independent_outputs(Direction::BwdData), 2 * 3 * 8 * 8);
        assert_eq!(p.independent_outputs(Direction::BwdWeights), 4 * 3 * 3 * 3);
    }

    #[test]
    #[should_panic(expected = "kernel larger")]
    fn rejects_kernel_larger_than_input() {
        ConvProblem::new(1, 1, 1, 2, 2, 5, 5, 1, 0);
    }

    #[test]
    fn with_minibatch_only_changes_n() {
        let p = ConvProblem::new(256, 64, 64, 56, 56, 3, 3, 1, 1);
        let q = p.with_minibatch(8);
        assert_eq!(q.n, 8);
        assert_eq!(q.ic, p.ic);
        assert_eq!(q.oh(), p.oh());
    }

    #[test]
    #[should_panic(expected = "minibatch must be positive")]
    fn with_minibatch_rejects_zero() {
        let p = ConvProblem::new(256, 64, 64, 56, 56, 3, 3, 1, 1);
        let _ = p.with_minibatch(0);
    }

    #[test]
    fn asymmetric_output_shapes() {
        // SConv-style rectangular kernels: 1x7 stride 1x2, pad 0x3.
        let p = ConvProblem::new_asym(1, 8, 8, 14, 14, 1, 7, 1, 2, 0, 3);
        assert_eq!((p.oh(), p.ow()), (14, 7));
        assert!(!p.is_symmetric());
        // 7x1 transpose with the strides swapped.
        let q = ConvProblem::new_asym(1, 8, 8, 14, 14, 7, 1, 2, 1, 3, 0);
        assert_eq!((q.oh(), q.ow()), (7, 14));
    }

    #[test]
    fn display_keeps_legacy_format_when_symmetric() {
        let p = ConvProblem::new(8, 64, 64, 56, 56, 3, 3, 2, 1);
        assert_eq!(p.to_string(), "n8ic64oc64ih56iw56kh3kw3s2p1");
        let q = ConvProblem::new_asym(8, 64, 64, 56, 56, 3, 3, 2, 1, 1, 0);
        assert_eq!(q.to_string(), "n8ic64oc64ih56iw56kh3kw3s2x1p1x0");
    }

    #[test]
    #[should_panic(expected = "kernel larger")]
    fn rejects_kernel_larger_than_padded_axis() {
        ConvProblem::new_asym(1, 1, 1, 8, 2, 1, 5, 1, 1, 0, 1);
    }
}
