//! The multi-core performance model used by every figure of the evaluation.
//!
//! The paper runs each layer on all 8 SX-Aurora cores with OpenMP
//! (Section 7). We simulate **one representative core's slice** of the
//! parallel loop and derive chip wall-time from it:
//!
//! * Forward / backward-data: the minibatch is the parallel loop
//!   (Section 4.3). The representative core executes up to two images — the
//!   first cold, the second in steady state — and the remaining
//!   `images_per_core - 2` images are charged at the steady-state cost
//!   (every image of a layer executes the identical instruction stream over
//!   a warmed weight working set).
//! * Backward-weights: the smaller feature-map dimension is the parallel
//!   loop. The core executes its block share over a 1-image and a 2-image
//!   reduction; the marginal cost of the second image is the steady-state
//!   per-image sweep, charged for the remaining `N - 1` images.
//!
//! Chip wall-time is the representative core's total (cores are symmetric;
//! idle cores when `N < cores` show up as reduced GFLOP/s exactly as on the
//! real machine — Figure 6's scaling behaviour).

use crate::backend::{ExecBackend, NativeBackend, SimBackend};
use crate::primitive::{ConvDesc, ConvPrimitive, ExecReport};
use crate::problem::{Algorithm, ConvProblem, Direction};
use crate::store;
use lsv_arch::ArchParams;
use lsv_vengine::{Arena, ExecutionMode, RegionProfile, VCore};

/// Performance of one (layer, direction, algorithm) under the multi-core
/// model.
#[derive(Debug, Clone)]
pub struct LayerPerf {
    /// Chip wall-clock cycles for the whole minibatch.
    pub cycles: u64,
    /// Wall time in milliseconds.
    pub time_ms: f64,
    /// Throughput in GFLOP/s (the Figure 4 y-axis).
    pub gflops: f64,
    /// Fraction of the chip's theoretical peak (Figure 4's right-hand axis).
    pub efficiency: f64,
    /// L1 misses per kilo-instruction on the measured core (the Section 8
    /// hardware-counter study).
    pub mpki_l1: f64,
    /// Fraction of L1 misses classified as conflict misses.
    pub conflict_fraction: f64,
    /// Whether Formula 3 predicted conflicts for this configuration.
    pub conflicts_predicted: bool,
    /// Raw statistics of the measured core slice.
    pub report: ExecReport,
}

/// Simulate one layer under the paper's 8-core execution model.
///
/// `problem.n` is the minibatch. `mode` selects functional or timing-only
/// simulation (results are identical; functional additionally computes the
/// data).
pub fn bench_layer(
    arch: &ArchParams,
    problem: &ConvProblem,
    direction: Direction,
    algorithm: Algorithm,
    mode: ExecutionMode,
) -> LayerPerf {
    bench_layer_impl(arch, problem, direction, algorithm, mode, ProfileMode::Off).0
}

/// [`bench_layer`] with the measured core's region profiler enabled.
///
/// The profiled core executes the *identical* instruction stream (profiling
/// is cycle-neutral), so the returned [`LayerPerf`] matches a plain
/// [`bench_layer`] exactly; the [`RegionProfile`] attributes the measured
/// slice's cycles, stalls, instructions, and cache events to kernel regions,
/// and its totals equal the slice's `report` counters.
pub fn bench_layer_profiled(
    arch: &ArchParams,
    problem: &ConvProblem,
    direction: Direction,
    algorithm: Algorithm,
    mode: ExecutionMode,
) -> (LayerPerf, RegionProfile) {
    let (perf, profile) = bench_layer_impl(
        arch,
        problem,
        direction,
        algorithm,
        mode,
        ProfileMode::Required,
    );
    (perf, profile.expect("profiler enabled"))
}

/// [`bench_layer_profiled`] that serves from the layer store when possible.
///
/// On a store hit the returned profile is `None` — a cached slice carries no
/// region breakdown — but the [`LayerPerf`] is identical to a profiled run's
/// (profiling is cycle-neutral and the store is content-addressed). On a
/// miss the slice is simulated with the profiler enabled, exactly like
/// [`bench_layer_profiled`].
pub fn bench_layer_profiled_cached(
    arch: &ArchParams,
    problem: &ConvProblem,
    direction: Direction,
    algorithm: Algorithm,
    mode: ExecutionMode,
) -> (LayerPerf, Option<RegionProfile>) {
    bench_layer_impl(
        arch,
        problem,
        direction,
        algorithm,
        mode,
        ProfileMode::IfSimulated,
    )
}

/// How a bench call interacts with the region profiler and the layer store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProfileMode {
    /// No profiler; store hits allowed.
    Off,
    /// Profiler required: always simulate (the profile cannot be cached);
    /// the result still populates the store.
    Required,
    /// Store hits allowed (profile comes back `None`); simulate with the
    /// profiler enabled on a miss.
    IfSimulated,
}

fn bench_layer_impl(
    arch: &ArchParams,
    problem: &ConvProblem,
    direction: Direction,
    algorithm: Algorithm,
    mode: ExecutionMode,
    pmode: ProfileMode,
) -> (LayerPerf, Option<RegionProfile>) {
    let cores = arch.cores.max(1);
    let (slice, profile) = match direction {
        Direction::Fwd | Direction::BwdData => {
            let make_prim = |p_sim: ConvProblem| {
                ConvDesc::new(p_sim, direction, algorithm)
                    .create(arch, cores)
                    .expect("primitive creation")
            };
            bench_minibatch_parallel_impl(arch, problem, direction, mode, cores, &make_prim, pmode)
        }
        Direction::BwdWeights => bench_bwdw_parallel(arch, problem, algorithm, mode, cores, pmode),
    };
    (finish(arch, problem, direction, algorithm, slice), profile)
}

/// Warm the LLC with the pass's input *activations*: in a training step the
/// activations were just produced by the adjacent layer and are LLC-resident
/// when the convolution starts. The weights are NOT warmed — a ResNet-scale
/// model's weights (~170 MB for ResNet-101) vastly exceed the LLC, so each
/// layer's weights stream in from memory once per step; that cost amortizes
/// over the minibatch, which is the scaling mechanism of Figure 6.
fn warm_inputs(core: &mut VCore, t: &crate::primitive::ConvTensors, direction: Direction) {
    let warm_act = |core: &mut VCore, a: &lsv_tensor::ActTensor| {
        core.warm_llc(a.base, (a.elems_padded() * 4) as u64);
    };
    match direction {
        Direction::Fwd => warm_act(core, &t.src),
        Direction::BwdData => warm_act(core, &t.dst),
        Direction::BwdWeights => {
            warm_act(core, &t.src);
            warm_act(core, &t.dst);
        }
    }
}

/// Measured core slice plus derived chip cycles.
pub struct SliceResult {
    /// Chip wall-clock cycles for the whole minibatch.
    pub chip_cycles: u64,
    /// Raw statistics of the measured core slice.
    pub report: ExecReport,
}

impl SliceResult {
    /// Convert a slice into a [`LayerPerf`] for a problem (ablation-bench
    /// helper; [`bench_layer`] does this internally).
    pub fn into_layer_perf(
        self,
        arch: &ArchParams,
        problem: &ConvProblem,
        direction: Direction,
        algorithm: Algorithm,
    ) -> LayerPerf {
        finish(arch, problem, direction, algorithm, self)
    }
}

/// Like [`bench_layer`] for the minibatch-parallel directions but with an
/// arbitrary primitive factory — the hook the ablation benches use to sweep
/// individual optimization variables.
pub fn bench_minibatch_parallel_with(
    arch: &ArchParams,
    problem: &ConvProblem,
    direction: Direction,
    mode: ExecutionMode,
    cores: usize,
    make_prim: &dyn Fn(ConvProblem) -> ConvPrimitive,
) -> SliceResult {
    bench_minibatch_parallel_impl(
        arch,
        problem,
        direction,
        mode,
        cores,
        make_prim,
        ProfileMode::Off,
    )
    .0
}

/// One simulated slice: the representative core's raw measurement before any
/// chip-cycle derivation (the unit the layer store caches).
struct SliceSim {
    /// Cold-image cycles (fwd/bwd-data) or the whole reduction run's cycles
    /// (bwd-weights).
    cold: u64,
    /// Steady-image cycles (fwd/bwd-data with `n_sim > 1`); 0 for
    /// bwd-weights runs.
    steady: u64,
    report: ExecReport,
    profile: Option<RegionProfile>,
}

/// Serve a slice from the layer store, or simulate it (and insert). A
/// [`ProfileMode::Required`] call always simulates — a region profile cannot
/// be cached — but still populates the store. Paranoid mode re-simulates a
/// deterministic sample of hits and asserts bit-equality.
fn slice_via_store(
    key: &store::Key,
    pmode: ProfileMode,
    sim: impl Fn(bool) -> SliceSim,
) -> SliceSim {
    let st = store::store();
    let profile_on_sim = pmode != ProfileMode::Off;
    if !st.enabled() || pmode == ProfileMode::Required {
        let s = sim(profile_on_sim);
        st.put_slice(key, s.cold, s.steady, &s.report);
        return s;
    }
    if let Some((cold, steady, report)) = st.get_slice(key) {
        if st.paranoid_sample(key) {
            let s = sim(false);
            assert_eq!(
                (s.cold, s.steady, s.report),
                (cold, steady, report),
                "paranoid store recheck diverged for key {}",
                key.canonical()
            );
            st.note_paranoid_recheck();
        }
        return SliceSim {
            cold,
            steady,
            report,
            profile: None,
        };
    }
    let s = sim(profile_on_sim);
    st.put_slice(key, s.cold, s.steady, &s.report);
    s
}

fn simulate_minibatch_slice(
    arch: &ArchParams,
    prim: &ConvPrimitive,
    direction: Direction,
    mode: ExecutionMode,
    n_sim: usize,
    profiled: bool,
) -> SliceSim {
    let mut arena = Arena::new();
    let t = prim.alloc_tensors(&mut arena);
    if mode.is_functional() {
        t.src.fill_random(&mut arena, 11);
        t.dst.fill_random(&mut arena, 13);
        t.wei.fill_random(&mut arena, 17);
    }
    let mut core = SimBackend { mode }.make_core(arch);
    if profiled {
        core.enable_profiler();
    }
    warm_inputs(&mut core, &t, direction);
    // Image 0: warm LLC (benchdnn-style repeated iterations), cold L1/L2.
    prim.execute_core(&mut core, &mut arena, &t, 0..1, 0..0);
    let cold = core.drain().cycles;
    let (steady, report) = if n_sim > 1 {
        prim.execute_core(&mut core, &mut arena, &t, 1..2, 0..0);
        let s = core.drain();
        (s.cycles - cold, ExecReport::from(s))
    } else {
        let s = core.drain();
        (cold, ExecReport::from(s))
    };
    let profile = core.take_profile();
    SliceSim {
        cold,
        steady,
        report,
        profile,
    }
}

fn bench_minibatch_parallel_impl(
    arch: &ArchParams,
    problem: &ConvProblem,
    direction: Direction,
    mode: ExecutionMode,
    cores: usize,
    make_prim: &dyn Fn(ConvProblem) -> ConvPrimitive,
    pmode: ProfileMode,
) -> (SliceResult, Option<RegionProfile>) {
    let images_per_core = problem.n.div_ceil(cores).max(1);
    let n_sim = images_per_core.min(2);
    let p_sim = problem.with_minibatch(n_sim);
    let prim = make_prim(p_sim);
    // Keyed on the *effective* config of the created primitive: ablation
    // sweeps override individual variables and `create` shrinks blocks under
    // register pressure, so two calls share an entry iff the kernel that
    // actually runs is identical.
    let key = store::slice_key(
        arch,
        &p_sim,
        direction,
        "direct",
        cores,
        mode,
        Some(prim.cfg()),
    );
    let s = slice_via_store(&key, pmode, |profiled| {
        simulate_minibatch_slice(arch, &prim, direction, mode, n_sim, profiled)
    });
    let chip_cycles = s.cold + s.steady * (images_per_core as u64 - 1);
    (
        SliceResult {
            chip_cycles,
            report: s.report,
        },
        s.profile,
    )
}

fn simulate_bwdw_run(
    arch: &ArchParams,
    prim: &ConvPrimitive,
    mode: ExecutionMode,
    cores: usize,
    profiled: bool,
) -> SliceSim {
    let n_sim = prim.desc().problem.n;
    let blocks_per_core = prim.bwdw_small_blocks().div_ceil(cores).max(1);
    let mut arena = Arena::new();
    let t = prim.alloc_tensors(&mut arena);
    if mode.is_functional() {
        t.src.fill_random(&mut arena, 19);
        t.dst.fill_random(&mut arena, 23);
    }
    let mut core = SimBackend { mode }.make_core(arch);
    if profiled {
        core.enable_profiler();
    }
    warm_inputs(&mut core, &t, Direction::BwdWeights);
    prim.execute_core(&mut core, &mut arena, &t, 0..n_sim, 0..blocks_per_core);
    let s = core.drain();
    let profile = core.take_profile();
    SliceSim {
        cold: s.cycles,
        steady: 0,
        report: ExecReport::from(s),
        profile,
    }
}

/// Like [`bench_minibatch_parallel_with`] for the backward-weights pass:
/// the 1-image/2-image reduction pair with an arbitrary primitive factory
/// (the hook the empirical tuner uses to sweep `RB_c`).
pub fn bench_bwdw_parallel_with(
    arch: &ArchParams,
    problem: &ConvProblem,
    mode: ExecutionMode,
    cores: usize,
    make_prim: &dyn Fn(ConvProblem) -> ConvPrimitive,
) -> SliceResult {
    bench_bwdw_parallel_impl(arch, problem, mode, cores, make_prim, ProfileMode::Off).0
}

fn bench_bwdw_parallel(
    arch: &ArchParams,
    problem: &ConvProblem,
    algorithm: Algorithm,
    mode: ExecutionMode,
    cores: usize,
    pmode: ProfileMode,
) -> (SliceResult, Option<RegionProfile>) {
    let make_prim = |p_sim: ConvProblem| {
        ConvDesc::new(p_sim, Direction::BwdWeights, algorithm)
            .create(arch, cores)
            .expect("primitive creation")
    };
    bench_bwdw_parallel_impl(arch, problem, mode, cores, &make_prim, pmode)
}

fn bench_bwdw_parallel_impl(
    arch: &ArchParams,
    problem: &ConvProblem,
    mode: ExecutionMode,
    cores: usize,
    make_prim: &dyn Fn(ConvProblem) -> ConvPrimitive,
    pmode: ProfileMode,
) -> (SliceResult, Option<RegionProfile>) {
    // Marginal-image cost from a 1-image and a 2-image reduction over the
    // core's block share. Only the second (reported) run is profiled.
    let run = |n_sim: usize, pmode: ProfileMode| -> (u64, ExecReport, Option<RegionProfile>) {
        let p_sim = problem.with_minibatch(n_sim);
        let prim = make_prim(p_sim);
        let key = store::slice_key(
            arch,
            &p_sim,
            Direction::BwdWeights,
            "direct",
            cores,
            mode,
            Some(prim.cfg()),
        );
        let s = slice_via_store(&key, pmode, |profiled| {
            simulate_bwdw_run(arch, &prim, mode, cores, profiled)
        });
        (s.cold, s.report, s.profile)
    };
    let (c1, _, _) = run(1, ProfileMode::Off);
    let (c2, report, profile) = run(2.min(problem.n), pmode);
    let marginal = c2.saturating_sub(c1).max(1);
    let chip_cycles = if problem.n <= 2 {
        c2
    } else {
        c2 + marginal * (problem.n as u64 - 2)
    };
    (
        SliceResult {
            chip_cycles,
            report,
        },
        profile,
    )
}

/// Host-side performance of the native backend on one layer: what the
/// simulator-free functional path actually costs on this machine.
#[derive(Debug, Clone, Copy)]
pub struct NativePerf {
    /// Host wall time for the full minibatch, in seconds.
    pub host_secs: f64,
    /// Host throughput in GFLOP/s (`problem.flops() / host_secs`).
    pub host_gflops: f64,
    /// Data-movement instruction counters of the lowered kernel (identical
    /// to the simulated stream's data ops).
    pub insts: lsv_vengine::InstCounters,
}

/// Execute one layer's full minibatch on the [`NativeBackend`] and measure
/// host wall time (the `BENCH_native.json` numbers). Operands are filled
/// with deterministic pseudo-random data; the work is executed single-core
/// on the host, exactly as `run_with_backend` would.
pub fn bench_layer_native(
    arch: &ArchParams,
    problem: &ConvProblem,
    direction: Direction,
    algorithm: Algorithm,
) -> NativePerf {
    let prim = ConvDesc::new(*problem, direction, algorithm)
        .create(arch, arch.cores.max(1))
        .expect("primitive creation");
    let mut arena = Arena::new();
    let t = prim.alloc_tensors(&mut arena);
    t.src.fill_random(&mut arena, 11);
    t.dst.fill_random(&mut arena, 13);
    t.wei.fill_random(&mut arena, 17);
    let backend = NativeBackend;
    let start = std::time::Instant::now();
    let report = backend.execute_slice(
        &prim,
        &mut arena,
        &t,
        0..problem.n,
        0..prim.bwdw_small_blocks(),
    );
    let host_secs = start.elapsed().as_secs_f64().max(1e-9);
    NativePerf {
        host_secs,
        host_gflops: problem.flops() as f64 / host_secs / 1e9,
        insts: report.insts,
    }
}

fn finish(
    arch: &ArchParams,
    problem: &ConvProblem,
    direction: Direction,
    algorithm: Algorithm,
    slice: SliceResult,
) -> LayerPerf {
    let cycles = slice.chip_cycles.max(1);
    let secs = cycles as f64 / (arch.freq_ghz * 1e9);
    let gflops = problem.flops() as f64 / secs / 1e9;
    let efficiency = gflops * 1e9 / arch.peak_flops();
    let insts = slice.report.insts.total();
    let l1 = slice.report.cache.l1;
    let cfg = crate::tuning::kernel_config(arch, problem, direction, algorithm, arch.cores);
    LayerPerf {
        cycles,
        time_ms: secs * 1e3,
        gflops,
        efficiency,
        mpki_l1: l1.mpki(insts),
        conflict_fraction: if l1.misses == 0 {
            0.0
        } else {
            l1.conflict_misses as f64 / l1.misses as f64
        },
        conflicts_predicted: cfg.conflicts_predicted,
        report: slice.report,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsv_arch::presets::sx_aurora;

    #[test]
    fn bench_layer_produces_sane_numbers() {
        let arch = sx_aurora();
        let p = ConvProblem::new(32, 64, 64, 14, 14, 3, 3, 1, 1);
        let perf = bench_layer(
            &arch,
            &p,
            Direction::Fwd,
            Algorithm::Bdc,
            ExecutionMode::TimingOnly,
        );
        assert!(perf.gflops > 0.0);
        assert!(
            perf.efficiency > 0.0 && perf.efficiency <= 1.0,
            "eff {}",
            perf.efficiency
        );
        assert!(perf.time_ms > 0.0);
    }

    #[test]
    fn larger_minibatch_does_not_reduce_throughput() {
        let arch = sx_aurora();
        let base = ConvProblem::new(8, 128, 128, 14, 14, 3, 3, 1, 1);
        let small = bench_layer(
            &arch,
            &base,
            Direction::Fwd,
            Algorithm::Bdc,
            ExecutionMode::TimingOnly,
        );
        let big = bench_layer(
            &arch,
            &base.with_minibatch(64),
            Direction::Fwd,
            Algorithm::Bdc,
            ExecutionMode::TimingOnly,
        );
        assert!(
            big.gflops >= small.gflops * 0.95,
            "scaling: {} vs {}",
            big.gflops,
            small.gflops
        );
    }

    #[test]
    fn bwdw_bench_runs() {
        let arch = sx_aurora();
        let p = ConvProblem::new(16, 64, 128, 14, 14, 1, 1, 1, 0);
        let perf = bench_layer(
            &arch,
            &p,
            Direction::BwdWeights,
            Algorithm::Dc,
            ExecutionMode::TimingOnly,
        );
        assert!(perf.gflops > 0.0 && perf.efficiency <= 1.0);
    }
}
