//! The naive reference convolution (Algorithm 1) for all three training
//! directions, operating on host NCHW / OIHW buffers.
//!
//! Used as the correctness oracle for every simulated kernel (the artifact's
//! `validate.sh` role).

use crate::problem::ConvProblem;

/// Forward data: `D[n,oc,oh,ow] = sum_{ic,kh,kw} S[n,ic,ih,iw] * W[oc,ic,kh,kw]`
/// with `ih = oh*stride + kh - pad` (Algorithm 1).
///
/// `src` is NCHW `(N, IC, IH, IW)`, `wei` is OIHW `(OC, IC, KH, KW)`;
/// returns NCHW `(N, OC, OH, OW)`.
///
/// ```
/// use lsv_conv::{naive, ConvProblem};
/// // 2x2 box filter over a 3x3 ramp, no padding.
/// let p = ConvProblem::new(1, 1, 1, 3, 3, 2, 2, 1, 0);
/// let src: Vec<f32> = (0..9).map(|i| i as f32).collect();
/// let dst = naive::forward(&p, &src, &[1.0; 4]);
/// assert_eq!(dst, vec![8.0, 12.0, 20.0, 24.0]);
/// ```
pub fn forward(p: &ConvProblem, src: &[f32], wei: &[f32]) -> Vec<f32> {
    assert_eq!(src.len(), p.n * p.ic * p.ih * p.iw, "src shape");
    assert_eq!(wei.len(), p.oc * p.ic * p.kh * p.kw, "wei shape");
    let (oh, ow) = (p.oh(), p.ow());
    let mut dst = vec![0.0f32; p.n * p.oc * oh * ow];
    for n in 0..p.n {
        for oc in 0..p.oc {
            for ic in 0..p.ic {
                for y in 0..oh {
                    for x in 0..ow {
                        let mut acc = dst[((n * p.oc + oc) * oh + y) * ow + x];
                        for kh in 0..p.kh {
                            let ih = (y * p.stride_h + kh) as isize - p.pad_h as isize;
                            if ih < 0 || ih >= p.ih as isize {
                                continue;
                            }
                            for kw in 0..p.kw {
                                let iw = (x * p.stride_w + kw) as isize - p.pad_w as isize;
                                if iw < 0 || iw >= p.iw as isize {
                                    continue;
                                }
                                let s = src
                                    [((n * p.ic + ic) * p.ih + ih as usize) * p.iw + iw as usize];
                                let w = wei[((oc * p.ic + ic) * p.kh + kh) * p.kw + kw];
                                acc += s * w;
                            }
                        }
                        dst[((n * p.oc + oc) * oh + y) * ow + x] = acc;
                    }
                }
            }
        }
    }
    dst
}

/// Backward data: `S_diff[n,ic,ih,iw] = sum_{oc,kh,kw} D_diff[n,oc,oh,ow] * W[oc,ic,kh,kw]`
/// where `(oh, ow)` are the output points whose receptive field covers
/// `(ih, iw)` at offset `(kh, kw)`.
///
/// `dst_diff` is NCHW `(N, OC, OH, OW)`, `wei` is OIHW; returns NCHW
/// `(N, IC, IH, IW)`.
pub fn backward_data(p: &ConvProblem, dst_diff: &[f32], wei: &[f32]) -> Vec<f32> {
    let (oh, ow) = (p.oh(), p.ow());
    assert_eq!(dst_diff.len(), p.n * p.oc * oh * ow, "dst_diff shape");
    assert_eq!(wei.len(), p.oc * p.ic * p.kh * p.kw, "wei shape");
    let mut src_diff = vec![0.0f32; p.n * p.ic * p.ih * p.iw];
    for n in 0..p.n {
        for oc in 0..p.oc {
            for ic in 0..p.ic {
                for y in 0..oh {
                    for x in 0..ow {
                        let d = dst_diff[((n * p.oc + oc) * oh + y) * ow + x];
                        for kh in 0..p.kh {
                            let ih = (y * p.stride_h + kh) as isize - p.pad_h as isize;
                            if ih < 0 || ih >= p.ih as isize {
                                continue;
                            }
                            for kw in 0..p.kw {
                                let iw = (x * p.stride_w + kw) as isize - p.pad_w as isize;
                                if iw < 0 || iw >= p.iw as isize {
                                    continue;
                                }
                                let w = wei[((oc * p.ic + ic) * p.kh + kh) * p.kw + kw];
                                src_diff[((n * p.ic + ic) * p.ih + ih as usize) * p.iw
                                    + iw as usize] += d * w;
                            }
                        }
                    }
                }
            }
        }
    }
    src_diff
}

/// Backward weights:
/// `W_diff[oc,ic,kh,kw] = sum_{n,oh,ow} D_diff[n,oc,oh,ow] * S[n,ic,ih,iw]`.
///
/// `src` is NCHW `(N, IC, IH, IW)`, `dst_diff` is NCHW `(N, OC, OH, OW)`;
/// returns OIHW `(OC, IC, KH, KW)`.
pub fn backward_weights(p: &ConvProblem, src: &[f32], dst_diff: &[f32]) -> Vec<f32> {
    let (oh, ow) = (p.oh(), p.ow());
    assert_eq!(src.len(), p.n * p.ic * p.ih * p.iw, "src shape");
    assert_eq!(dst_diff.len(), p.n * p.oc * oh * ow, "dst_diff shape");
    let mut wd = vec![0.0f32; p.oc * p.ic * p.kh * p.kw];
    for n in 0..p.n {
        for oc in 0..p.oc {
            for ic in 0..p.ic {
                for kh in 0..p.kh {
                    for kw in 0..p.kw {
                        let mut acc = 0.0f32;
                        for y in 0..oh {
                            let ih = (y * p.stride_h + kh) as isize - p.pad_h as isize;
                            if ih < 0 || ih >= p.ih as isize {
                                continue;
                            }
                            for x in 0..ow {
                                let iw = (x * p.stride_w + kw) as isize - p.pad_w as isize;
                                if iw < 0 || iw >= p.iw as isize {
                                    continue;
                                }
                                acc += dst_diff[((n * p.oc + oc) * oh + y) * ow + x]
                                    * src[((n * p.ic + ic) * p.ih + ih as usize) * p.iw
                                        + iw as usize];
                            }
                        }
                        wd[((oc * p.ic + ic) * p.kh + kh) * p.kw + kw] += acc;
                    }
                }
            }
        }
    }
    wd
}

/// Maximum absolute elementwise difference between two buffers.
///
/// # Panics
/// Panics when lengths differ.
pub fn max_abs_diff(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "buffer length mismatch");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f32::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};

    fn rand_vec(len: usize, seed: u64) -> Vec<f32> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        (0..len).map(|_| rng.gen_range(-1.0..1.0)).collect()
    }

    #[test]
    fn identity_1x1_kernel() {
        // 1x1 conv with identity weights over IC=OC copies the input.
        let p = ConvProblem::new(1, 2, 2, 4, 4, 1, 1, 1, 0);
        let src = rand_vec(p.n * p.ic * p.ih * p.iw, 1);
        let mut wei = vec![0.0; 4];
        wei[0] = 1.0; // W[0,0]
        wei[3] = 1.0; // W[1,1]
        let dst = forward(&p, &src, &wei);
        assert_eq!(dst, src);
    }

    #[test]
    fn forward_3x3_hand_computed() {
        // 3x3 all-ones kernel, 3x3 all-ones input, pad 1: center output = 9.
        let p = ConvProblem::new(1, 1, 1, 3, 3, 3, 3, 1, 1);
        let src = vec![1.0; 9];
        let wei = vec![1.0; 9];
        let dst = forward(&p, &src, &wei);
        assert_eq!(dst[4], 9.0, "center sees all 9 taps");
        assert_eq!(dst[0], 4.0, "corner sees 4 taps");
        assert_eq!(dst[1], 6.0, "edge sees 6 taps");
    }

    #[test]
    fn strided_forward_shape_and_values() {
        let p = ConvProblem::new(1, 1, 1, 4, 4, 1, 1, 2, 0);
        let src: Vec<f32> = (0..16).map(|i| i as f32).collect();
        let dst = forward(&p, &src, &[1.0]);
        assert_eq!(dst, vec![0.0, 2.0, 8.0, 10.0]);
    }

    #[test]
    fn backward_data_is_adjoint_of_forward() {
        // <conv(S, W), D> == <S, conv*(D, W)> — the defining adjoint
        // property of the data gradient.
        let p = ConvProblem::new(2, 3, 4, 6, 6, 3, 3, 1, 1);
        let s = rand_vec(p.n * p.ic * p.ih * p.iw, 2);
        let w = rand_vec(p.oc * p.ic * p.kh * p.kw, 3);
        let d = rand_vec(p.n * p.oc * p.oh() * p.ow(), 4);
        let fwd = forward(&p, &s, &w);
        let bwd = backward_data(&p, &d, &w);
        let lhs: f64 = fwd
            .iter()
            .zip(&d)
            .map(|(a, b)| (*a as f64) * (*b as f64))
            .sum();
        let rhs: f64 = s
            .iter()
            .zip(&bwd)
            .map(|(a, b)| (*a as f64) * (*b as f64))
            .sum();
        assert!(
            (lhs - rhs).abs() < 1e-3 * lhs.abs().max(1.0),
            "adjoint identity violated: {lhs} vs {rhs}"
        );
    }

    #[test]
    fn backward_weights_is_adjoint_in_w() {
        // <conv(S, W), D> == <W, conv_w*(S, D)>.
        let p = ConvProblem::new(2, 3, 4, 6, 6, 3, 3, 2, 1);
        let s = rand_vec(p.n * p.ic * p.ih * p.iw, 5);
        let w = rand_vec(p.oc * p.ic * p.kh * p.kw, 6);
        let d = rand_vec(p.n * p.oc * p.oh() * p.ow(), 7);
        let fwd = forward(&p, &s, &w);
        let wd = backward_weights(&p, &s, &d);
        let lhs: f64 = fwd
            .iter()
            .zip(&d)
            .map(|(a, b)| (*a as f64) * (*b as f64))
            .sum();
        let rhs: f64 = w
            .iter()
            .zip(&wd)
            .map(|(a, b)| (*a as f64) * (*b as f64))
            .sum();
        assert!(
            (lhs - rhs).abs() < 1e-3 * lhs.abs().max(1.0),
            "adjoint identity violated: {lhs} vs {rhs}"
        );
    }

    #[test]
    fn max_abs_diff_basic() {
        assert_eq!(max_abs_diff(&[1.0, 2.0], &[1.5, 2.0]), 0.5);
        assert_eq!(max_abs_diff(&[], &[]), 0.0);
    }
}
