//! Correctness validation of the generated kernels against the naive
//! reference (the artifact's `validate.sh` role), on any execution backend.

use crate::backend::{ExecBackend, SimBackend};
use crate::naive;
use crate::primitive::ConvDesc;
use crate::problem::{Algorithm, ConvProblem, Direction};
use lsv_arch::ArchParams;
use rand::{Rng, SeedableRng};

/// Result of validating one (problem, direction, algorithm) triple.
#[derive(Debug, Clone, Copy)]
pub struct ValidationReport {
    /// Largest absolute element difference against the reference.
    pub max_abs_err: f32,
    /// Largest per-element `|got - ref| / max(|ref|, 1)` (benchdnn's
    /// criterion) — a small-magnitude output with a large error is no
    /// longer masked by the largest reference element.
    pub rel_err: f32,
    /// Whether the error is within the f32 reassociation tolerance.
    pub passed: bool,
}

/// Relative tolerance for f32 accumulation-order differences, scaled by the
/// reduction length (`benchdnn` uses a comparable criterion).
pub(crate) fn tolerance(reduction_len: usize) -> f32 {
    1e-6 * (reduction_len as f32).sqrt().max(1.0) * 8.0
}

/// Validate one kernel configuration functionally on the simulator backend:
/// random operands, run the simulated kernel, compare against
/// [`crate::naive`]. Served from the layer store when a previous run
/// validated the same point (f32 results round-trip bit-exactly); paranoid
/// mode re-validates a sampled fraction of hits.
pub fn validate(
    arch: &ArchParams,
    problem: &ConvProblem,
    direction: Direction,
    algorithm: Algorithm,
) -> ValidationReport {
    let st = crate::store::store();
    let key = crate::store::validation_key(arch, problem, direction, algorithm.short_name());
    let fresh = || {
        validate_with_backend(
            arch,
            problem,
            direction,
            algorithm,
            &SimBackend::functional(),
        )
    };
    if let Some(r) = st.get_validation(&key) {
        if st.paranoid_sample(&key) {
            let f = fresh();
            assert_eq!(
                (f.max_abs_err.to_bits(), f.rel_err.to_bits(), f.passed),
                (r.max_abs_err.to_bits(), r.rel_err.to_bits(), r.passed),
                "paranoid store recheck diverged for key {}",
                key.canonical()
            );
            st.note_paranoid_recheck();
        }
        return r;
    }
    let r = fresh();
    st.put_validation(&key, &r);
    r
}

/// [`validate`] on an arbitrary execution backend (the native backend runs
/// the same check at host speed).
pub fn validate_with_backend(
    arch: &ArchParams,
    problem: &ConvProblem,
    direction: Direction,
    algorithm: Algorithm,
    backend: &dyn ExecBackend,
) -> ValidationReport {
    let p = *problem;
    let mut rng = rand::rngs::StdRng::seed_from_u64(0x5eed ^ p.macs());
    let src: Vec<f32> = (0..p.n * p.ic * p.ih * p.iw)
        .map(|_| rng.gen_range(-1.0..1.0))
        .collect();
    let wei: Vec<f32> = (0..p.oc * p.ic * p.kh * p.kw)
        .map(|_| rng.gen_range(-1.0..1.0))
        .collect();
    let dst: Vec<f32> = (0..p.n * p.oc * p.oh() * p.ow())
        .map(|_| rng.gen_range(-1.0..1.0))
        .collect();

    let prim = ConvDesc::new(p, direction, algorithm)
        .create(arch, 1)
        .expect("primitive creation");
    let (got, _stats) = prim.run_with_backend(backend, &src, &wei, &dst);

    // The reference is a pure function of (problem, direction): the operands
    // above are seeded from the problem alone. The validate sweep runs the
    // same (problem, direction) for every algorithm, so the naive reference
    // is shared through the store's in-process memo instead of being
    // recomputed per algorithm.
    let ref_tag = format!(
        "naive|{}x{}x{}x{}x{}k{}x{}s{}x{}p{}x{}|{}",
        p.n,
        p.ic,
        p.oc,
        p.ih,
        p.iw,
        p.kh,
        p.kw,
        p.stride_h,
        p.stride_w,
        p.pad_h,
        p.pad_w,
        direction.short_name()
    );
    let st = crate::store::store();
    let (reference, reduction_len) = match direction {
        Direction::Fwd => (
            st.naive_ref(&ref_tag, || naive::forward(&p, &src, &wei)),
            p.ic * p.kh * p.kw,
        ),
        Direction::BwdData => (
            st.naive_ref(&ref_tag, || naive::backward_data(&p, &dst, &wei)),
            p.oc * p.kh * p.kw,
        ),
        Direction::BwdWeights => (
            st.naive_ref(&ref_tag, || naive::backward_weights(&p, &src, &dst)),
            p.n * p.oh() * p.ow(),
        ),
    };

    let max_abs_err = naive::max_abs_diff(&got, &reference);
    let rel_err = got
        .iter()
        .zip(reference.iter())
        .map(|(g, r)| (g - r).abs() / r.abs().max(1.0))
        .fold(0.0f32, f32::max);
    ValidationReport {
        max_abs_err,
        rel_err,
        passed: rel_err <= tolerance(reduction_len),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsv_arch::presets::sx_aurora;

    fn small(ic: usize, oc: usize, hw: usize, k: usize, s: usize, pad: usize) -> ConvProblem {
        ConvProblem::new(2, ic, oc, hw, hw, k, k, s, pad)
    }

    #[test]
    fn all_algorithms_fwd_small() {
        let arch = sx_aurora();
        for alg in Algorithm::ALL {
            let r = validate(&arch, &small(8, 16, 6, 3, 1, 1), Direction::Fwd, alg);
            assert!(r.passed, "{alg}: rel_err {}", r.rel_err);
        }
    }

    #[test]
    fn all_algorithms_bwd_data_small() {
        let arch = sx_aurora();
        for alg in Algorithm::ALL {
            let r = validate(&arch, &small(16, 8, 6, 3, 1, 1), Direction::BwdData, alg);
            assert!(r.passed, "{alg}: rel_err {}", r.rel_err);
        }
    }

    #[test]
    fn all_algorithms_bwd_weights_small() {
        let arch = sx_aurora();
        for alg in Algorithm::ALL {
            let r = validate(&arch, &small(8, 16, 6, 3, 1, 1), Direction::BwdWeights, alg);
            assert!(r.passed, "{alg}: rel_err {}", r.rel_err);
        }
    }

    #[test]
    fn native_backend_validates_all_directions() {
        let arch = sx_aurora();
        for alg in Algorithm::ALL {
            for dir in Direction::ALL {
                let r = validate_with_backend(
                    &arch,
                    &small(8, 16, 6, 3, 1, 1),
                    dir,
                    alg,
                    &crate::backend::NativeBackend,
                );
                assert!(r.passed, "{alg} {dir} native: rel_err {}", r.rel_err);
            }
        }
    }

    #[test]
    fn strided_and_unpadded_variants() {
        let arch = sx_aurora();
        for alg in Algorithm::ALL {
            for dir in Direction::ALL {
                let r = validate(&arch, &small(8, 8, 8, 1, 2, 0), dir, alg);
                assert!(r.passed, "{alg} {dir} strided: rel_err {}", r.rel_err);
            }
        }
    }

    #[test]
    fn channels_larger_than_vlen() {
        // Forces multiple vector blocks even at the full 512-element vlen:
        // use a narrow custom arch instead (keeps the test fast).
        let arch = sx_aurora().with_max_vlen_bits(512); // 16 lanes
        for alg in Algorithm::ALL {
            for dir in Direction::ALL {
                let r = validate(&arch, &small(48, 32, 5, 3, 1, 1), dir, alg);
                assert!(r.passed, "{alg} {dir}: rel_err {}", r.rel_err);
            }
        }
    }

    #[test]
    fn vec_over_ic_bwdw() {
        // IC > OC triggers the swapped vectorization path.
        let arch = sx_aurora();
        for alg in Algorithm::ALL {
            let r = validate(&arch, &small(32, 8, 6, 3, 1, 1), Direction::BwdWeights, alg);
            assert!(r.passed, "{alg}: rel_err {}", r.rel_err);
        }
    }

    #[test]
    fn rectangular_kernels_and_inputs() {
        // 1x7 / 7x1 kernels on a rectangular image (libxsmm/SConv-style
        // shapes the symmetric constructor cannot express).
        let arch = sx_aurora();
        let shapes = [
            ConvProblem::new_asym(2, 8, 8, 9, 14, 1, 7, 1, 1, 0, 3),
            ConvProblem::new_asym(2, 8, 8, 14, 9, 7, 1, 1, 1, 3, 0),
            ConvProblem::new_asym(2, 8, 16, 5, 11, 3, 2, 1, 1, 1, 0),
        ];
        for p in &shapes {
            for alg in Algorithm::ALL {
                for dir in Direction::ALL {
                    let r = validate(&arch, p, dir, alg);
                    assert!(r.passed, "{p} {alg} {dir}: rel_err {}", r.rel_err);
                }
            }
        }
    }

    #[test]
    fn asymmetric_stride_and_pad() {
        let arch = sx_aurora();
        let shapes = [
            // stride 2x1 and 1x2 on a square image.
            ConvProblem::new_asym(2, 8, 8, 8, 8, 3, 3, 2, 1, 1, 1),
            ConvProblem::new_asym(2, 8, 8, 8, 8, 3, 3, 1, 2, 1, 1),
            // pad on one axis only, stride > kernel on the other.
            ConvProblem::new_asym(2, 8, 8, 9, 9, 1, 3, 3, 1, 0, 1),
            // pad >= kernel.
            ConvProblem::new_asym(2, 8, 8, 6, 6, 2, 2, 1, 1, 2, 3),
        ];
        for p in &shapes {
            for alg in Algorithm::ALL {
                for dir in Direction::ALL {
                    let r = validate(&arch, p, dir, alg);
                    assert!(r.passed, "{p} {alg} {dir}: rel_err {}", r.rel_err);
                }
            }
        }
    }
}
