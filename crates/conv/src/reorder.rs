//! Layout reorder primitives, executed on the simulated vector engine.
//!
//! oneDNN-style frameworks surround every convolution with *reorders*: the
//! framework's plain NCHW/OIHW tensors are converted into the primitive's
//! blocked layout before execution and back afterwards (Section 6.5's
//! two-step flow implies them). The conversions in `lsv-tensor`
//! (`store_nchw` / `load_nchw`) are host-side test helpers; this module
//! provides the *measured* equivalent: vector-engine kernels that move the
//! data through the simulated memory system, so reorder cost can be charged
//! and studied (it is one reason vendor libraries that work on plain NCHW —
//! like the vednn baseline — win at small problem sizes).
//!
//! The activation reorder walks the destination layout block by block: for
//! each `(n, c-block, h)` it performs `W` strided vector loads from the
//! NCHW source (channel-major gather of `C_b` channels per spatial point)
//! and one unit-stride store per point — matching how a tuned pack routine
//! behaves on a long-vector machine.

use crate::problem::ConvProblem;
use lsv_tensor::{ActTensor, ActivationLayout, WeiTensor};
use lsv_vengine::{Arena, VCore};

/// Reorder a plain-NCHW activation tensor into a channel-blocked one, on
/// the simulated core. Both tensors must already be allocated in `arena`
/// and describe the same logical shape.
///
/// # Panics
/// Panics if the logical shapes differ or `src` is not NCHW.
pub fn reorder_activations(
    core: &mut VCore,
    arena: &mut Arena,
    src_nchw: &ActTensor,
    dst_blocked: &ActTensor,
) {
    assert_eq!(src_nchw.layout.cb, 1, "source must be plain NCHW");
    assert_eq!(
        (src_nchw.n, src_nchw.c, src_nchw.h, src_nchw.w),
        (dst_blocked.n, dst_blocked.c, dst_blocked.h, dst_blocked.w),
        "shape mismatch"
    );
    let (n, c, h, w) = (src_nchw.n, src_nchw.c, src_nchw.h, src_nchw.w);
    let cb = dst_blocked.layout.cb;
    let max_vl = core.arch().n_vlen();
    let plane_bytes = (h * w * 4) as u64; // channel stride in NCHW
    core.region_enter("pack_act");
    for ni in 0..n {
        for cblk in 0..dst_blocked.c_blocks() {
            let c0 = cblk * cb;
            let cc = cb.min(c - c0.min(c));
            if c0 >= c {
                break;
            }
            for y in 0..h {
                core.scalar_ops(2);
                for x in 0..w {
                    // Gather `cc` channels of one spatial point: stride is a
                    // whole H*W plane in NCHW. Strip-mined by the machine
                    // vector length for layouts wider than a register.
                    let mut off = 0;
                    while off < cc {
                        let vl = max_vl.min(cc - off);
                        core.scalar_op();
                        core.vload_strided(
                            arena,
                            0,
                            src_nchw.at(ni, c0 + off, y, x),
                            plane_bytes,
                            vl,
                        );
                        core.vstore(
                            arena,
                            0,
                            dst_blocked.block_at(ni, cblk, y, x) + (off * 4) as u64,
                            vl,
                        );
                        off += vl;
                    }
                }
            }
        }
    }
    core.region_exit(); // pack_act
}

/// Reorder a blocked activation tensor back to plain NCHW (the output-side
/// reorder), on the simulated core.
pub fn reorder_activations_back(
    core: &mut VCore,
    arena: &mut Arena,
    src_blocked: &ActTensor,
    dst_nchw: &ActTensor,
) {
    assert_eq!(dst_nchw.layout.cb, 1, "destination must be plain NCHW");
    assert_eq!(
        (src_blocked.n, src_blocked.c, src_blocked.h, src_blocked.w),
        (dst_nchw.n, dst_nchw.c, dst_nchw.h, dst_nchw.w),
        "shape mismatch"
    );
    let (n, c, h, w) = (dst_nchw.n, dst_nchw.c, dst_nchw.h, dst_nchw.w);
    let cb = src_blocked.layout.cb;
    let max_vl = core.arch().n_vlen();
    let plane_bytes = (h * w * 4) as u64;
    core.region_enter("unpack_act");
    for ni in 0..n {
        for cblk in 0..src_blocked.c_blocks() {
            let c0 = cblk * cb;
            if c0 >= c {
                break;
            }
            let cc = cb.min(c - c0);
            for y in 0..h {
                core.scalar_ops(2);
                for x in 0..w {
                    let mut off = 0;
                    while off < cc {
                        let vl = max_vl.min(cc - off);
                        core.scalar_op();
                        core.vload(
                            arena,
                            0,
                            src_blocked.block_at(ni, cblk, y, x) + (off * 4) as u64,
                            vl,
                        );
                        core.vstore_strided(
                            arena,
                            0,
                            dst_nchw.at(ni, c0 + off, y, x),
                            plane_bytes,
                            vl,
                        );
                        off += vl;
                    }
                }
            }
        }
    }
    core.region_exit(); // unpack_act
}

/// Reorder plain-OIHW weights into a blocked weights tensor on the
/// simulated core: for each `(oc-block, ic, kh, kw)` destination vector,
/// gather `OC_b` output channels (stride `IC*KH*KW` elements in OIHW) and
/// store unit-stride.
pub fn reorder_weights(
    core: &mut VCore,
    arena: &mut Arena,
    src_oihw: &WeiTensor,
    dst_blocked: &WeiTensor,
) {
    assert_eq!(
        (src_oihw.layout.icb, src_oihw.layout.ocb),
        (1, 1),
        "source must be plain OIHW"
    );
    assert_eq!(
        (src_oihw.oc, src_oihw.ic, src_oihw.kh, src_oihw.kw),
        (
            dst_blocked.oc,
            dst_blocked.ic,
            dst_blocked.kh,
            dst_blocked.kw
        ),
        "shape mismatch"
    );
    let (oc, ic, kh, kw) = (src_oihw.oc, src_oihw.ic, src_oihw.kh, src_oihw.kw);
    let ocb = dst_blocked.layout.ocb;
    let max_vl = core.arch().n_vlen();
    let oc_stride_bytes = (ic * kh * kw * 4) as u64;
    core.region_enter("pack_wei");
    for ob in 0..dst_blocked.oc_blocks() {
        let o0 = ob * ocb;
        if o0 >= oc {
            break;
        }
        let cnt = ocb.min(oc - o0);
        for i in 0..ic {
            for y in 0..kh {
                core.scalar_ops(2);
                for x in 0..kw {
                    let mut off = 0;
                    while off < cnt {
                        let vl = max_vl.min(cnt - off);
                        core.scalar_op();
                        core.vload_strided(
                            arena,
                            0,
                            src_oihw.at(o0 + off, i, y, x),
                            oc_stride_bytes,
                            vl,
                        );
                        core.vstore(
                            arena,
                            0,
                            dst_blocked.oc_vector_at(ob, i, y, x) + (off * 4) as u64,
                            vl,
                        );
                        off += vl;
                    }
                }
            }
        }
    }
    core.region_exit(); // pack_wei
}

/// Simulated cost (cycles and instruction counts) of reordering all three
/// operand tensors of a problem into an algorithm's layouts — the setup tax
/// a framework pays per primitive instantiation.
pub fn reorder_cost(
    arch: &lsv_arch::ArchParams,
    p: &ConvProblem,
    cfg: &crate::tuning::KernelConfig,
) -> lsv_vengine::CoreStats {
    reorder_cost_impl(arch, p, cfg, false).0
}

/// [`reorder_cost`] with the core's region profiler enabled: returns the
/// stats plus a profile whose `pack_act`/`pack_wei`/`unpack_act` regions
/// break the setup tax down per tensor.
pub fn reorder_cost_profiled(
    arch: &lsv_arch::ArchParams,
    p: &ConvProblem,
    cfg: &crate::tuning::KernelConfig,
) -> (lsv_vengine::CoreStats, lsv_vengine::RegionProfile) {
    let (stats, profile) = reorder_cost_impl(arch, p, cfg, true);
    (stats, profile.expect("profiler enabled"))
}

fn reorder_cost_impl(
    arch: &lsv_arch::ArchParams,
    p: &ConvProblem,
    cfg: &crate::tuning::KernelConfig,
    profiled: bool,
) -> (lsv_vengine::CoreStats, Option<lsv_vengine::RegionProfile>) {
    let mut arena = Arena::new();
    let mut core = VCore::new(arch, lsv_vengine::ExecutionMode::TimingOnly, 1);
    if profiled {
        core.enable_profiler();
    }
    let src_n = ActTensor::alloc(&mut arena, p.n, p.ic, p.ih, p.iw, ActivationLayout::nchw());
    let src_b = ActTensor::alloc(&mut arena, p.n, p.ic, p.ih, p.iw, cfg.src_layout);
    reorder_activations(&mut core, &mut arena, &src_n, &src_b);
    let wei_n = WeiTensor::alloc(
        &mut arena,
        p.oc,
        p.ic,
        p.kh,
        p.kw,
        lsv_tensor::WeightLayout::oihw(),
    );
    if !cfg.wei_swapped {
        let wei_b = WeiTensor::alloc(&mut arena, p.oc, p.ic, p.kh, p.kw, cfg.wei_layout);
        reorder_weights(&mut core, &mut arena, &wei_n, &wei_b);
    }
    let dst_b = ActTensor::alloc(&mut arena, p.n, p.oc, p.oh(), p.ow(), cfg.dst_layout);
    let dst_n = ActTensor::alloc(
        &mut arena,
        p.n,
        p.oc,
        p.oh(),
        p.ow(),
        ActivationLayout::nchw(),
    );
    reorder_activations_back(&mut core, &mut arena, &dst_b, &dst_n);
    let stats = core.drain();
    let profile = if profiled { core.take_profile() } else { None };
    (stats, profile)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsv_arch::presets::sx_aurora;
    use lsv_tensor::WeightLayout;
    use lsv_vengine::ExecutionMode;

    #[test]
    fn activation_reorder_roundtrip() {
        let arch = sx_aurora();
        let mut arena = Arena::new();
        let mut core = VCore::new(&arch, ExecutionMode::Functional, 1);
        let nchw = ActTensor::alloc(&mut arena, 2, 40, 5, 6, ActivationLayout::nchw());
        let blocked = ActTensor::alloc(&mut arena, 2, 40, 5, 6, ActivationLayout { cb: 32 });
        let back = ActTensor::alloc(&mut arena, 2, 40, 5, 6, ActivationLayout::nchw());
        let data: Vec<f32> = (0..nchw.elems()).map(|i| i as f32).collect();
        nchw.store_nchw(&mut arena, &data);
        reorder_activations(&mut core, &mut arena, &nchw, &blocked);
        assert_eq!(blocked.load_nchw(&arena), data, "forward reorder correct");
        reorder_activations_back(&mut core, &mut arena, &blocked, &back);
        assert_eq!(back.load_nchw(&arena), data, "inverse reorder correct");
        let stats = core.drain();
        assert!(stats.insts.vloads > 0 && stats.insts.vstores > 0);
    }

    #[test]
    fn reorders_strip_mine_blocks_wider_than_vlen() {
        // Found by `lsvconv fuzz`: MBDC's line-grain layouts block channels
        // by N_cline = 32, which exceeds the 16 f32 lanes of a 512-bit
        // machine — the reorder kernels must strip-mine, not issue vl > VLEN.
        let arch = lsv_arch::presets::aurora_with_vlen_bits(512);
        assert!(arch.n_vlen() < 32, "premise: block wider than a register");
        let mut arena = Arena::new();
        let mut core = VCore::new(&arch, ExecutionMode::Functional, 1);
        let nchw = ActTensor::alloc(&mut arena, 1, 40, 3, 3, ActivationLayout::nchw());
        let blocked = ActTensor::alloc(&mut arena, 1, 40, 3, 3, ActivationLayout { cb: 32 });
        let back = ActTensor::alloc(&mut arena, 1, 40, 3, 3, ActivationLayout::nchw());
        let data: Vec<f32> = (0..nchw.elems()).map(|i| i as f32).collect();
        nchw.store_nchw(&mut arena, &data);
        reorder_activations(&mut core, &mut arena, &nchw, &blocked);
        reorder_activations_back(&mut core, &mut arena, &blocked, &back);
        assert_eq!(back.load_nchw(&arena), data);

        let oihw = WeiTensor::alloc(&mut arena, 40, 2, 3, 3, WeightLayout::oihw());
        let wblocked = WeiTensor::alloc(&mut arena, 40, 2, 3, 3, WeightLayout { icb: 2, ocb: 32 });
        let wdata: Vec<f32> = (0..oihw.elems()).map(|i| (i as f32).cos()).collect();
        oihw.store_oihw(&mut arena, &wdata);
        reorder_weights(&mut core, &mut arena, &oihw, &wblocked);
        assert_eq!(wblocked.load_oihw(&arena), wdata);
    }

    #[test]
    fn weight_reorder_matches_host_conversion() {
        let arch = sx_aurora();
        let mut arena = Arena::new();
        let mut core = VCore::new(&arch, ExecutionMode::Functional, 1);
        let oihw = WeiTensor::alloc(&mut arena, 20, 6, 3, 3, WeightLayout::oihw());
        let blocked = WeiTensor::alloc(&mut arena, 20, 6, 3, 3, WeightLayout { icb: 4, ocb: 16 });
        let data: Vec<f32> = (0..oihw.elems()).map(|i| (i as f32).sin()).collect();
        oihw.store_oihw(&mut arena, &data);
        reorder_weights(&mut core, &mut arena, &oihw, &blocked);
        assert_eq!(blocked.load_oihw(&arena), data);
    }

    #[test]
    fn reorder_cost_scales_with_tensor_volume() {
        let arch = sx_aurora();
        let small = ConvProblem::new(1, 32, 32, 7, 7, 1, 1, 1, 0);
        let large = ConvProblem::new(1, 32, 32, 28, 28, 1, 1, 1, 0);
        let cfg_s = crate::tuning::kernel_config(
            &arch,
            &small,
            crate::Direction::Fwd,
            crate::Algorithm::Bdc,
            1,
        );
        let cfg_l = crate::tuning::kernel_config(
            &arch,
            &large,
            crate::Direction::Fwd,
            crate::Algorithm::Bdc,
            1,
        );
        let c_small = reorder_cost(&arch, &small, &cfg_s);
        let c_large = reorder_cost(&arch, &large, &cfg_l);
        assert!(
            c_large.cycles > c_small.cycles * 4,
            "16x the spatial volume must cost much more: {} vs {}",
            c_large.cycles,
            c_small.cycles
        );
    }
}
