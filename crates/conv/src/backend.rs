//! Execution backends: one frozen kernel plan, two targets.
//!
//! A created [`ConvPrimitive`] freezes the kernel plan — the
//! `(KernelConfig, ConvProblem, Direction)` triple plus the arena/tensor
//! layouts. [`ExecBackend`] is the seam that separates that plan from the
//! machine executing it:
//!
//! * [`SimBackend`] replays the generated instruction stream on the
//!   cycle-level [`VCore`] (Functional / TimingOnly / introspection modes
//!   unchanged — the golden-cycles tests pin that this is a pure refactor).
//! * [`NativeBackend`] lowers the same blocked loop nest to host Rust
//!   (see [`crate::native`]) and runs it directly on the arena at host
//!   speed (a measured ~20× over the functional simulator on the
//!   fuzz-corpus shapes). It preserves blocking, data
//!   movement and the exact accumulation order — functional output is
//!   bit-identical to `SimBackend` Functional — and drops everything
//!   timing: cycles, caches, stalls are reported as zero.

use crate::multicore::{self, partition_ranges, MulticoreReport};
use crate::native;
use crate::primitive::{ConvPrimitive, ConvTensors, ExecReport};
use crate::problem::Direction;
use lsv_arch::ArchParams;
use lsv_vengine::{Arena, CoreStats, ExecutionMode, InstCounters, VCore};
use std::fmt;
use std::ops::Range;
use std::str::FromStr;

/// A machine that can execute a frozen kernel plan.
///
/// Object-safe so callers (CLI, fuzz harness, benches) can select a backend
/// at runtime; all methods take the primitive plus already-allocated arena
/// tensors, so operand import/readback stays backend-independent (see
/// [`ConvPrimitive::import_operands`] / [`ConvPrimitive::read_output`]).
pub trait ExecBackend {
    /// Short identifier (`"sim"` / `"native"`), used in reports and errors.
    fn name(&self) -> &'static str;

    /// Whether the backend produces meaningful cycle/cache statistics.
    /// `false` means only functional output and data-op instruction counts
    /// are valid in its reports.
    fn models_time(&self) -> bool;

    /// Execute a slice of the work on one core's worth of state.
    ///
    /// Range semantics match [`ConvPrimitive::execute_core`]: `n_range`
    /// selects minibatch images (fwd / bwd-data), `small_blocks` selects the
    /// `RB_c` blocks of the smaller feature-map dimension (bwd-weights).
    fn execute_slice(
        &self,
        prim: &ConvPrimitive,
        arena: &mut Arena,
        t: &ConvTensors,
        n_range: Range<usize>,
        small_blocks: Range<usize>,
    ) -> ExecReport;

    /// Execute the whole problem with the Section 4.3 work partitioning
    /// across the chip's cores.
    fn execute_multicore(
        &self,
        prim: &ConvPrimitive,
        arena: &mut Arena,
        t: &ConvTensors,
    ) -> MulticoreReport;
}

/// The cycle-level simulator backend (the default): every instruction of the
/// generated kernel is replayed on a [`VCore`] in the given execution mode.
#[derive(Debug, Clone, Copy)]
pub struct SimBackend {
    /// Functional (compute values + time) or TimingOnly (time alone).
    pub mode: ExecutionMode,
}

impl SimBackend {
    /// A simulator backend that computes functional results.
    pub fn functional() -> Self {
        Self {
            mode: ExecutionMode::Functional,
        }
    }

    /// A simulator backend that models time without touching data.
    pub fn timing_only() -> Self {
        Self {
            mode: ExecutionMode::TimingOnly,
        }
    }

    /// Construct the single-core [`VCore`] this backend executes on — the
    /// one place (outside the shared-LLC multicore path) where the conv
    /// crate instantiates a simulated core.
    pub fn make_core(&self, arch: &ArchParams) -> VCore {
        VCore::new(arch, self.mode, 1)
    }
}

impl ExecBackend for SimBackend {
    fn name(&self) -> &'static str {
        "sim"
    }

    fn models_time(&self) -> bool {
        true
    }

    fn execute_slice(
        &self,
        prim: &ConvPrimitive,
        arena: &mut Arena,
        t: &ConvTensors,
        n_range: Range<usize>,
        small_blocks: Range<usize>,
    ) -> ExecReport {
        let mut core = self.make_core(prim.arch());
        prim.execute_core(&mut core, arena, t, n_range, small_blocks);
        ExecReport::from(core.drain())
    }

    fn execute_multicore(
        &self,
        prim: &ConvPrimitive,
        arena: &mut Arena,
        t: &ConvTensors,
    ) -> MulticoreReport {
        multicore::execute_multicore(prim, arena, t, self.mode)
    }
}

/// The native host backend: the frozen plan lowered to plain Rust loops
/// (see [`crate::native`]), always functional, never timed.
#[derive(Debug, Clone, Copy, Default)]
pub struct NativeBackend;

impl NativeBackend {
    fn run(
        &self,
        prim: &ConvPrimitive,
        arena: &mut Arena,
        t: &ConvTensors,
        n_range: Range<usize>,
        small_blocks: Range<usize>,
    ) -> InstCounters {
        let cfg = prim.cfg();
        let p = &prim.desc().problem;
        let mut counters = InstCounters::default();
        match prim.desc().direction {
            Direction::Fwd => native::run_fwd(
                cfg,
                p,
                arena,
                &t.src,
                &t.wei,
                &t.dst,
                n_range,
                &mut counters,
            ),
            Direction::BwdData => native::run_bwd_data(
                cfg,
                p,
                arena,
                &t.src,
                &t.wei,
                &t.dst,
                n_range,
                &mut counters,
            ),
            Direction::BwdWeights => native::run_bwd_weights(
                cfg,
                p,
                arena,
                &t.src,
                &t.wei,
                &t.dst,
                small_blocks,
                n_range,
                &mut counters,
            ),
        }
        counters
    }
}

impl ExecBackend for NativeBackend {
    fn name(&self) -> &'static str {
        "native"
    }

    fn models_time(&self) -> bool {
        false
    }

    fn execute_slice(
        &self,
        prim: &ConvPrimitive,
        arena: &mut Arena,
        t: &ConvTensors,
        n_range: Range<usize>,
        small_blocks: Range<usize>,
    ) -> ExecReport {
        let insts = self.run(prim, arena, t, n_range, small_blocks);
        ExecReport {
            insts,
            ..ExecReport::default()
        }
    }

    fn execute_multicore(
        &self,
        prim: &ConvPrimitive,
        arena: &mut Arena,
        t: &ConvTensors,
    ) -> MulticoreReport {
        // Same Section 4.3 partitioning as the simulator; cores run
        // sequentially on the host, so the result is deterministic and
        // identical to a single-core run (the slices write disjoint output).
        let cores = prim.arch().cores.max(1);
        let n = prim.desc().problem.n;
        let mut per_core = Vec::new();
        match prim.desc().direction {
            Direction::Fwd | Direction::BwdData => {
                for r in partition_ranges(n, cores) {
                    let insts = self.run(prim, arena, t, r, 0..0);
                    per_core.push(CoreStats {
                        insts,
                        ..CoreStats::default()
                    });
                }
            }
            Direction::BwdWeights => {
                for r in partition_ranges(prim.bwdw_small_blocks(), cores) {
                    let insts = self.run(prim, arena, t, 0..n, r);
                    per_core.push(CoreStats {
                        insts,
                        ..CoreStats::default()
                    });
                }
            }
        }
        MulticoreReport {
            wall_cycles: 0,
            per_core,
            llc: Default::default(),
        }
    }
}

/// The user-selectable backends, as seen by the CLI's `--backend` flag and
/// the fuzz harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// Cycle-level simulator ([`SimBackend`], functional mode).
    Sim,
    /// Native host execution ([`NativeBackend`]).
    Native,
}

impl BackendKind {
    /// Every selectable backend.
    pub const ALL: [BackendKind; 2] = [BackendKind::Sim, BackendKind::Native];

    /// Instantiate the backend (simulator backends in Functional mode —
    /// callers that want TimingOnly construct [`SimBackend`] directly).
    pub fn create(self) -> Box<dyn ExecBackend> {
        match self {
            BackendKind::Sim => Box::new(SimBackend::functional()),
            BackendKind::Native => Box::new(NativeBackend),
        }
    }

    /// Whether the backend produces meaningful cycle/cache statistics.
    pub fn models_time(self) -> bool {
        matches!(self, BackendKind::Sim)
    }
}

impl FromStr for BackendKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "sim" | "simulator" => Ok(BackendKind::Sim),
            "native" => Ok(BackendKind::Native),
            other => Err(format!(
                "unknown backend '{other}' (expected 'sim' or 'native')"
            )),
        }
    }
}

impl fmt::Display for BackendKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BackendKind::Sim => "sim",
            BackendKind::Native => "native",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_kind_parses_and_rejects() {
        assert_eq!("sim".parse::<BackendKind>().unwrap(), BackendKind::Sim);
        assert_eq!(
            "simulator".parse::<BackendKind>().unwrap(),
            BackendKind::Sim
        );
        assert_eq!(
            "native".parse::<BackendKind>().unwrap(),
            BackendKind::Native
        );
        let err = "cuda".parse::<BackendKind>().unwrap_err();
        assert!(err.contains("cuda") && err.contains("expected"));
    }

    #[test]
    fn backend_names_round_trip() {
        for kind in BackendKind::ALL {
            let b = kind.create();
            assert_eq!(b.name(), kind.to_string());
            assert_eq!(b.models_time(), kind.models_time());
            assert_eq!(b.name().parse::<BackendKind>().unwrap(), kind);
        }
    }
}
