//! Differential fuzzing of the generated kernels against [`crate::naive`].
//!
//! The driver proptest-generates (problem, arch-with-swept-`N_vlen`,
//! direction, algorithm) cases over a geometry domain deliberately wider
//! than the paper's experiments — per-axis stride and padding, stride
//! larger than the kernel, padding at least the kernel, rectangular
//! kernels (`1x7`, `7x1`) and images, feature-map counts of 1 and of
//! non-multiples of `N_cline`/`N_vlen` — and holds every case to three
//! properties:
//!
//! 1. **Functional agreement**: the simulated kernel's output matches the
//!    naive reference under the per-element benchdnn criterion of
//!    [`crate::verify`].
//! 2. **Mode agreement**: [`ExecutionMode::Functional`] and
//!    [`ExecutionMode::TimingOnly`] replay the identical instruction
//!    stream, so their cycle counts must be equal.
//! 3. **Lint cleanliness**: an injected validator (the `lsv-analyze`
//!    deny-linter, kept behind a closure so the dependency arrow still
//!    points one way) accepts the tuned configuration.
//! 4. **Verdict agreement** (optional, `--agreement`): an injected oracle —
//!    `lsv_analyze::verdict_agreement` behind the same closure shape — must
//!    accept every case the library supports, i.e. the symbolic analyzer
//!    and the traced replay must reach the same deny verdicts. The analyzer
//!    is thereby fuzzed alongside the kernels it verifies.
//! 5. **Backend agreement** (simulator runs only): the
//!    [`crate::backend::NativeBackend`] host lowering of the same frozen
//!    plan must reproduce the simulator's functional output *bit for bit*
//!    and its data-movement instruction counters exactly.
//!
//! The harness runs property 1 on a selectable [`BackendKind`]: with
//! `BackendKind::Native` the functional check executes on the host lowering
//! (~20× faster than simulation on the corpus shapes — the timing-dependent
//! properties 2 and 5 are skipped because no simulated stream exists), which
//! makes large randomized sweeps essentially free.
//!
//! Failures are shrunk with the strategy's greedy shrinker before being
//! reported, so counterexamples arrive minimal. [`seed_corpus`] pins the
//! irregular geometries this harness is designed around (plus any
//! counterexamples it ever surfaces) as a deterministic regression suite —
//! `tests/fuzz_corpus.rs` replays it in tier-1.

use crate::backend::{BackendKind, ExecBackend, NativeBackend, SimBackend};
use crate::naive;
use crate::primitive::{ConvDesc, UnsupportedReason};
use crate::problem::{Algorithm, ConvProblem, Direction};
use crate::tuning::KernelConfig;
use crate::verify::tolerance;
use lsv_arch::{aurora_with_vlen_bits, ArchParams};
use lsv_vengine::{Arena, ExecutionMode, InstCounters, VCore};
use proptest::strategy::Strategy;
use proptest::test_runner::TestRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::time::Instant;

/// Vector lengths (bits) the generator sweeps: 16 f32 lanes up to the full
/// SX-Aurora 512.
pub const VLEN_SWEEP_BITS: [usize; 5] = [512, 1024, 2048, 4096, 16384];

/// External lint hook, same shape as the `ConvDesc::create_validated`
/// validator so `lsv_analyze::deny_validator` plugs in directly.
pub type CaseValidator<'a> =
    &'a dyn Fn(&ArchParams, &ConvProblem, &KernelConfig) -> Result<(), String>;

/// Validator that accepts everything (fuzzing without the linter).
pub fn no_lint(_: &ArchParams, _: &ConvProblem, _: &KernelConfig) -> Result<(), String> {
    Ok(())
}

/// One generated case.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuzzCase {
    /// The convolution geometry.
    pub problem: ConvProblem,
    /// Vector length of the swept Aurora variant, in bits.
    pub vlen_bits: usize,
    /// Pass direction.
    pub direction: Direction,
    /// Algorithm under test.
    pub algorithm: Algorithm,
}

impl fmt::Display for FuzzCase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} {} vl{}b",
            self.problem, self.direction, self.algorithm, self.vlen_bits
        )
    }
}

/// A case that violated one of the three properties, after shrinking.
#[derive(Debug, Clone)]
pub struct FuzzFailure {
    /// The minimized case.
    pub case: FuzzCase,
    /// Which property failed and how.
    pub why: String,
}

/// Aggregate result of a fuzzing run.
#[derive(Debug, Clone, Default)]
pub struct FuzzOutcome {
    /// Cases generated and checked (including skips).
    pub cases_run: usize,
    /// Cases the library legitimately declined (register pressure on a
    /// narrow arch) — checked, not failed.
    pub skipped: usize,
    /// Minimized property violations (empty on a clean run).
    pub failures: Vec<FuzzFailure>,
    /// Wall time spent inside the property-1 *kernel executions* on the
    /// backend under test only — case generation, operand import/readback,
    /// naive references and the other properties are all excluded — for
    /// sim-vs-native speedup reporting on identical work.
    pub exec_secs: f64,
}

impl FuzzOutcome {
    /// True when every checked case satisfied all properties.
    pub fn clean(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Raw sample: `(n, ic, oc, ih, iw)`, `(kh, kw, stride_h, stride_w)`,
/// `(pad_h, pad_w, vlen_idx, dir_alg)`.
type RawCase = (
    (usize, usize, usize, usize, usize),
    (usize, usize, usize, usize),
    (usize, usize, usize, usize),
);

/// The generation domain. Channel counts cover 1, non-multiples of
/// `N_cline` (32) and of the smallest swept `N_vlen` (16 lanes at 512
/// bits), and exact multiples of both; strides reach past the largest
/// kernel and paddings past the smallest.
fn strategy() -> impl Strategy<Value = RawCase> {
    (
        (1usize..3, 1usize..40, 1usize..40, 1usize..13, 1usize..13),
        (1usize..6, 1usize..6, 1usize..5, 1usize..5),
        (
            0usize..5,
            0usize..5,
            0usize..VLEN_SWEEP_BITS.len(),
            0usize..9,
        ),
    )
}

/// Interpret a raw sample; `None` when the geometry is degenerate (the
/// padded input smaller than the kernel on either axis).
fn build_case(raw: &RawCase) -> Option<FuzzCase> {
    let ((n, ic, oc, ih, iw), (kh, kw, sh, sw), (ph, pw, vlen_idx, dir_alg)) = *raw;
    if ih + 2 * ph < kh || iw + 2 * pw < kw {
        return None;
    }
    Some(FuzzCase {
        problem: ConvProblem::new_asym(n, ic, oc, ih, iw, kh, kw, sh, sw, ph, pw),
        vlen_bits: VLEN_SWEEP_BITS[vlen_idx],
        direction: Direction::ALL[dir_alg / 3],
        algorithm: Algorithm::ALL[dir_alg % 3],
    })
}

/// How a checked case resolved (when it did not fail).
enum CaseStatus {
    Pass,
    Skip(#[allow(dead_code)] String),
}

/// Check one case against every property (simulator backend).
pub fn check_case(case: &FuzzCase, validator: CaseValidator) -> Result<(), String> {
    match check_case_inner(case, validator, None, BackendKind::Sim, &mut 0.0) {
        Ok(_) => Ok(()),
        Err(why) => Err(why),
    }
}

/// Check one case with an additional verdict-agreement oracle (property 4).
pub fn check_case_with_oracle(
    case: &FuzzCase,
    validator: CaseValidator,
    oracle: Option<CaseValidator>,
) -> Result<(), String> {
    check_case_backend(case, validator, oracle, BackendKind::Sim)
}

/// Check one case with the functional execution on an explicit backend.
pub fn check_case_backend(
    case: &FuzzCase,
    validator: CaseValidator,
    oracle: Option<CaseValidator>,
    backend: BackendKind,
) -> Result<(), String> {
    match check_case_inner(case, validator, oracle, backend, &mut 0.0) {
        Ok(_) => Ok(()),
        Err(why) => Err(why),
    }
}

/// The data-movement counter subset both backends must agree on (the
/// simulator additionally counts `scalar_ops` frontend filler, which the
/// native lowering deliberately does not model).
fn data_ops(c: &InstCounters) -> [u64; 7] {
    [
        c.scalar_loads,
        c.vloads,
        c.vstores,
        c.gathers,
        c.scatters,
        c.vfmas,
        c.fma_elems,
    ]
}

fn check_case_inner(
    case: &FuzzCase,
    validator: CaseValidator,
    oracle: Option<CaseValidator>,
    backend: BackendKind,
    exec_secs: &mut f64,
) -> Result<CaseStatus, String> {
    let p = case.problem;
    let arch = aurora_with_vlen_bits(case.vlen_bits);
    let desc = ConvDesc::new(p, case.direction, case.algorithm);
    // Property 3: the linter must accept the tuned configuration.
    let prim = match desc.create_validated(&arch, 1, validator) {
        Ok(prim) => prim,
        Err(UnsupportedReason::Rejected { why }) => return Err(format!("lint deny: {why}")),
        Err(other) => return Ok(CaseStatus::Skip(other.to_string())),
    };

    // Property 4: the symbolic-vs-trace verdict-agreement oracle, on the
    // exact configuration the primitive froze.
    if let Some(oracle) = oracle {
        if let Err(why) = oracle(&arch, &p, prim.cfg()) {
            return Err(format!("verdict agreement: {why}"));
        }
    }

    // Deterministic operands, derived from the case so shrinking re-checks
    // candidates reproducibly.
    let mut rng =
        rand::rngs::StdRng::seed_from_u64(0xFA22 ^ p.macs() ^ ((case.vlen_bits as u64) << 32));
    let src: Vec<f32> = (0..p.n * p.ic * p.ih * p.iw)
        .map(|_| rng.gen_range(-1.0..1.0))
        .collect();
    let wei: Vec<f32> = (0..p.oc * p.ic * p.kh * p.kw)
        .map(|_| rng.gen_range(-1.0..1.0))
        .collect();
    let dst: Vec<f32> = (0..p.n * p.oc * p.oh() * p.ow())
        .map(|_| rng.gen_range(-1.0..1.0))
        .collect();

    // Property 1: functional output vs the naive reference, per-element,
    // executed on the selected backend. Only the kernel execution itself is
    // timed into `exec_secs` — operand import/readback are
    // backend-independent host conversions and would dilute the
    // sim-vs-native ratio on small cases.
    let sim_functional;
    let backend_impl: &dyn ExecBackend = match backend {
        BackendKind::Sim => {
            sim_functional = SimBackend::functional();
            &sim_functional
        }
        BackendKind::Native => &NativeBackend,
    };
    let mut arena = Arena::new();
    let t = prim.alloc_tensors(&mut arena);
    prim.import_operands(&mut arena, &t, &src, &wei, &dst);
    let t0 = Instant::now();
    let func_report =
        backend_impl.execute_slice(&prim, &mut arena, &t, 0..p.n, 0..prim.bwdw_small_blocks());
    *exec_secs += t0.elapsed().as_secs_f64();
    let got = prim.read_output(&arena, &t);
    let (reference, reduction_len) = match case.direction {
        Direction::Fwd => (naive::forward(&p, &src, &wei), p.ic * p.kh * p.kw),
        Direction::BwdData => (naive::backward_data(&p, &dst, &wei), p.oc * p.kh * p.kw),
        Direction::BwdWeights => (
            naive::backward_weights(&p, &src, &dst),
            p.n * p.oh() * p.ow(),
        ),
    };
    if got.len() != reference.len() {
        return Err(format!(
            "output length {} != reference length {}",
            got.len(),
            reference.len()
        ));
    }
    let rel_err = got
        .iter()
        .zip(&reference)
        .map(|(g, r)| (g - r).abs() / r.abs().max(1.0))
        .fold(0.0f32, f32::max);
    let tol = tolerance(reduction_len);
    if rel_err > tol {
        return Err(format!(
            "functional mismatch vs naive: rel_err {rel_err:.3e} > tolerance {tol:.3e}"
        ));
    }

    // The remaining properties compare against the simulated stream; with
    // the native backend under test there is none, so the check ends here
    // (that asymmetry is what makes `--backend native` sweeps cheap).
    if backend == BackendKind::Native {
        return Ok(CaseStatus::Pass);
    }

    // Property 5: the native lowering of the same frozen plan must
    // reproduce the simulator's functional output bit for bit (identical
    // accumulation order, unfused FMA) and mirror its data-movement
    // instruction counters.
    let (native_out, native_report) = prim.run_with_backend(&NativeBackend, &src, &wei, &dst);
    if let Some(i) = (0..got.len()).find(|&i| native_out[i] != got[i]) {
        return Err(format!(
            "native-vs-sim mismatch at element {i}: sim {:?} native {:?}",
            got[i], native_out[i]
        ));
    }
    if data_ops(&native_report.insts) != data_ops(&func_report.insts) {
        return Err(format!(
            "native-vs-sim instruction drift: sim {:?} native {:?}",
            func_report.insts, native_report.insts
        ));
    }

    // Property 2: TimingOnly must replay the identical instruction stream.
    let mut arena = Arena::new();
    let t = prim.alloc_tensors(&mut arena);
    let mut core = VCore::new(&arch, ExecutionMode::TimingOnly, 1);
    prim.execute_core(
        &mut core,
        &mut arena,
        &t,
        0..p.n,
        0..prim.bwdw_small_blocks(),
    );
    let timing_cycles = core.drain().cycles;
    if timing_cycles != func_report.cycles {
        return Err(format!(
            "mode disagreement: Functional {} cycles, TimingOnly {} cycles",
            func_report.cycles, timing_cycles
        ));
    }
    Ok(CaseStatus::Pass)
}

/// Greedily shrink a failing raw sample with the strategy's shrinker; a
/// candidate is adopted only if it builds a valid case that still fails.
fn shrink_failure<S: Strategy<Value = RawCase>>(
    strat: &S,
    mut raw: RawCase,
    mut why: String,
    validator: CaseValidator,
    oracle: Option<CaseValidator>,
    backend: BackendKind,
) -> (FuzzCase, String) {
    let mut evals = 0usize;
    let mut progress = true;
    while progress && evals < 512 {
        progress = false;
        for cand in strat.shrink(&raw) {
            evals += 1;
            let Some(case) = build_case(&cand) else {
                continue;
            };
            if let Err(w) = check_case_backend(&case, validator, oracle, backend) {
                raw = cand;
                why = w;
                progress = true;
                break;
            }
        }
    }
    (build_case(&raw).expect("shrunk case stays valid"), why)
}

/// Run `cases` randomized cases from `seed`. Every failure is shrunk to a
/// minimal counterexample before being recorded.
pub fn run_fuzz(cases: usize, seed: u64, validator: CaseValidator) -> FuzzOutcome {
    run_fuzz_with_oracle(cases, seed, validator, None)
}

/// [`run_fuzz`] with the property-4 verdict-agreement oracle enabled.
pub fn run_fuzz_with_oracle(
    cases: usize,
    seed: u64,
    validator: CaseValidator,
    oracle: Option<CaseValidator>,
) -> FuzzOutcome {
    run_fuzz_backend(cases, seed, validator, oracle, BackendKind::Sim)
}

/// [`run_fuzz_with_oracle`] with the functional execution on an explicit
/// backend ([`BackendKind::Native`] for fast host-only sweeps).
pub fn run_fuzz_backend(
    cases: usize,
    seed: u64,
    validator: CaseValidator,
    oracle: Option<CaseValidator>,
    backend: BackendKind,
) -> FuzzOutcome {
    let strat = strategy();
    let mut rng = TestRng::from_seed(seed);
    let mut out = FuzzOutcome::default();
    let mut degenerate = 0usize;
    while out.cases_run < cases {
        let Some(sample) = strat.sample(&mut rng) else {
            continue;
        };
        let Some(case) = build_case(&sample) else {
            degenerate += 1;
            assert!(
                degenerate < (1 << 20),
                "fuzz generator: too many degenerate geometries"
            );
            continue;
        };
        out.cases_run += 1;
        match check_case_inner(&case, validator, oracle, backend, &mut out.exec_secs) {
            Ok(CaseStatus::Pass) => {}
            Ok(CaseStatus::Skip(_)) => out.skipped += 1,
            Err(why) => {
                let (min_case, min_why) =
                    shrink_failure(&strat, sample, why, validator, oracle, backend);
                out.failures.push(FuzzFailure {
                    case: min_case,
                    why: min_why,
                });
            }
        }
    }
    out
}

/// The deterministic regression corpus: the irregular geometries this
/// harness targets, pinned per (direction, algorithm) pair, plus minimized
/// entries for every counterexample the fuzzer ever surfaced. Replayed by
/// `tests/fuzz_corpus.rs` in tier-1.
pub fn seed_corpus() -> Vec<FuzzCase> {
    let geometries = [
        // SConv-style rectangular kernels with per-axis stride/pad.
        ConvProblem::new_asym(2, 8, 8, 9, 14, 1, 7, 1, 2, 0, 3),
        ConvProblem::new_asym(2, 8, 8, 14, 9, 7, 1, 2, 1, 3, 0),
        // Stride larger than the kernel.
        ConvProblem::new_asym(1, 8, 8, 9, 9, 1, 3, 3, 4, 0, 1),
        // Padding at least the kernel on both axes.
        ConvProblem::new_asym(1, 8, 8, 6, 6, 2, 2, 1, 1, 2, 3),
        // Single feature maps.
        ConvProblem::new_asym(2, 1, 1, 7, 5, 3, 3, 1, 1, 1, 1),
        // Channels off the N_cline (32) and 16-lane N_vlen grids.
        ConvProblem::new_asym(1, 33, 17, 5, 5, 3, 3, 1, 1, 1, 1),
        ConvProblem::new_asym(1, 31, 1, 4, 6, 2, 3, 2, 1, 0, 1),
    ];
    let mut corpus = vec![
        // Counterexample (minimized): MBDC's line-grain layout blocks
        // channels by N_cline = 32, wider than the 16 f32 lanes of a
        // 512-bit machine — the NCHW reorder kernels used to issue a
        // single vector op per block (vl > VLEN) instead of strip-mining,
        // tripping the deny-linter's layout round-trip probe.
        FuzzCase {
            problem: ConvProblem::new_asym(1, 17, 1, 2, 2, 1, 1, 1, 1, 0, 0),
            vlen_bits: 512,
            direction: Direction::Fwd,
            algorithm: Algorithm::Mbdc,
        },
    ];
    for (i, p) in geometries.iter().enumerate() {
        for (j, &direction) in Direction::ALL.iter().enumerate() {
            for (k, &algorithm) in Algorithm::ALL.iter().enumerate() {
                // Rotate through the vlen sweep so every width stays covered
                // without replaying the full cross product.
                let vlen_bits = VLEN_SWEEP_BITS[(i + 3 * j + k) % VLEN_SWEEP_BITS.len()];
                corpus.push(FuzzCase {
                    problem: *p,
                    vlen_bits,
                    direction,
                    algorithm,
                });
            }
        }
    }
    corpus
}

/// Replay the [`seed_corpus`] deterministically.
pub fn run_corpus(validator: CaseValidator) -> FuzzOutcome {
    run_corpus_with_oracle(validator, None)
}

/// [`run_corpus`] with the property-4 verdict-agreement oracle enabled.
pub fn run_corpus_with_oracle(
    validator: CaseValidator,
    oracle: Option<CaseValidator>,
) -> FuzzOutcome {
    run_corpus_backend(validator, oracle, BackendKind::Sim)
}

/// [`run_corpus_with_oracle`] with the functional execution on an explicit
/// backend.
pub fn run_corpus_backend(
    validator: CaseValidator,
    oracle: Option<CaseValidator>,
    backend: BackendKind,
) -> FuzzOutcome {
    let mut out = FuzzOutcome::default();
    for case in seed_corpus() {
        out.cases_run += 1;
        match check_case_inner(&case, validator, oracle, backend, &mut out.exec_secs) {
            Ok(CaseStatus::Pass) => {}
            Ok(CaseStatus::Skip(_)) => out.skipped += 1,
            Err(why) => out.failures.push(FuzzFailure { case, why }),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_covers_the_irregular_domain() {
        // One modest batch must already exercise the headline irregular
        // geometries — if sampling drifts, the fuzzer silently loses
        // coverage, so pin it.
        let strat = strategy();
        let mut rng = TestRng::from_seed(7);
        let mut asym_stride = 0usize;
        let mut rect_kernel = 0usize;
        let mut pad_ge_kernel = 0usize;
        let mut stride_gt_kernel = 0usize;
        let mut unit_channels = 0usize;
        for _ in 0..2000 {
            let Some(case) = strat.sample(&mut rng).as_ref().and_then(build_case) else {
                continue;
            };
            let p = case.problem;
            asym_stride += usize::from(!p.is_symmetric());
            rect_kernel += usize::from(p.kh != p.kw);
            pad_ge_kernel += usize::from(p.pad_h >= p.kh || p.pad_w >= p.kw);
            stride_gt_kernel += usize::from(p.stride_h > p.kh || p.stride_w > p.kw);
            unit_channels += usize::from(p.ic == 1 || p.oc == 1);
        }
        for (name, n) in [
            ("asymmetric stride/pad", asym_stride),
            ("rectangular kernel", rect_kernel),
            ("pad >= kernel", pad_ge_kernel),
            ("stride > kernel", stride_gt_kernel),
            ("IC or OC of 1", unit_channels),
        ] {
            assert!(n >= 20, "{name}: only {n} of 2000 samples");
        }
    }

    #[test]
    fn smoke_run_is_clean_and_deterministic() {
        let a = run_fuzz(24, 42, &no_lint);
        assert!(a.clean(), "failures: {:?}", a.failures);
        assert_eq!(a.cases_run, 24);
        let b = run_fuzz(24, 42, &no_lint);
        assert_eq!(a.skipped, b.skipped, "same seed must replay identically");
    }

    #[test]
    fn corpus_replays_clean() {
        let out = run_corpus(&no_lint);
        assert!(out.clean(), "failures: {:?}", out.failures);
        assert_eq!(out.cases_run, seed_corpus().len());
        assert_eq!(out.skipped, 0, "corpus entries must all be supported");
    }

    #[test]
    fn corpus_replays_clean_on_native_backend() {
        // The same corpus with property 1 executed on the host lowering:
        // native must agree with the naive reference on its own, not just
        // via the sim cross-check.
        let out = run_corpus_backend(&no_lint, None, BackendKind::Native);
        assert!(out.clean(), "failures: {:?}", out.failures);
        assert_eq!(out.cases_run, seed_corpus().len());
        assert_eq!(out.skipped, 0, "corpus entries must all be supported");
    }
}
