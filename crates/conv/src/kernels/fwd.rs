//! The forward-data micro-kernel (Algorithm 2 for DC/BDC; Algorithm 4 for
//! MBDC — the two differ only in blocking parameters and in whether the `D`
//! tensor moves via unit-stride vector ops or coarse-grain gather/scatter,
//! which the shared activation-vector access helpers dispatch on).

use super::{act_vec_lanes, load_act_vec, store_act_vec};
use crate::problem::ConvProblem;
use crate::tuning::KernelConfig;
use lsv_tensor::{ActTensor, WeiTensor};
use lsv_vengine::{Arena, VCore};
use std::ops::Range;

/// Run the forward pass for images `n_range` on one simulated core.
///
/// `src` and `dst` must use `cfg.src_layout` / `cfg.dst_layout`; `wei` must
/// use `cfg.wei_layout` (not swapped).
#[allow(clippy::too_many_arguments)]
pub fn run(
    cfg: &KernelConfig,
    p: &ConvProblem,
    core: &mut VCore,
    arena: &mut Arena,
    src: &ActTensor,
    wei: &WeiTensor,
    dst: &ActTensor,
    n_range: Range<usize>,
) {
    debug_assert!(!cfg.wei_swapped);
    core.region_enter("fwd");
    let (oh, ow) = (p.oh(), p.ow());
    let vl_max = cfg.vl;
    let oc_vblocks = p.oc.div_ceil(vl_max);
    let (rb_w, rb_h) = (cfg.rb.rb_w, cfg.rb.rb_h);
    let n_acc = rb_w * rb_h;
    let wslot0 = n_acc; // weight double-buffer registers follow the accumulators
    let wbuf = cfg.wbuf;
    let tile = cfg.tile;
    let kh_blocks = p.kh.div_ceil(tile.kh_i);
    let kw_blocks = p.kw.div_ceil(tile.kw_i);
    let ic_chunks = p.ic.div_ceil(tile.c_i);

    for n in n_range {
        core.scalar_ops(2);
        for ocv in 0..oc_vblocks {
            core.scalar_ops(2);
            let vl = vl_max.min(p.oc - ocv * vl_max);
            let lanes = act_vec_lanes(dst, vl);
            for icc in 0..ic_chunks {
                core.scalar_ops(2);
                let ic0 = icc * tile.c_i;
                let ic_cnt = tile.c_i.min(p.ic - ic0);
                for khb in 0..kh_blocks {
                    let kh0 = khb * tile.kh_i;
                    let kh_cnt = tile.kh_i.min(p.kh - kh0);
                    for kwb in 0..kw_blocks {
                        core.region_enter("khkw_tile");
                        let kw0 = kwb * tile.kw_i;
                        let kw_cnt = tile.kw_i.min(p.kw - kw0);
                        let first_pass = icc == 0 && khb == 0 && kwb == 0;
                        core.scalar_ops(2);
                        let mut oh0 = 0;
                        while oh0 < oh {
                            let rbh_cur = rb_h.min(oh - oh0);
                            let mut ow0 = 0;
                            core.scalar_ops(1);
                            while ow0 < ow {
                                let rbw_cur = rb_w.min(ow - ow0);
                                let edge = rbh_cur < rb_h || rbw_cur < rb_w || vl < vl_max;
                                if edge {
                                    core.region_enter("edge");
                                }
                                micro_kernel(MicroArgs {
                                    p,
                                    core,
                                    arena,
                                    src,
                                    wei,
                                    dst,
                                    n,
                                    ocv,
                                    c0: ocv * vl_max,
                                    vl,
                                    lanes,
                                    ic0,
                                    ic_cnt,
                                    kh0,
                                    kh_cnt,
                                    kw0,
                                    kw_cnt,
                                    oh0,
                                    rbh_cur,
                                    ow0,
                                    rbw_cur,
                                    first_pass,
                                    wslot0,
                                    wbuf,
                                });
                                if edge {
                                    core.region_exit();
                                }
                                ow0 += rb_w;
                            }
                            oh0 += rb_h;
                        }
                        core.region_exit(); // khkw_tile
                    }
                }
            }
        }
    }
    core.region_exit(); // fwd
}

struct MicroArgs<'a, 'b> {
    p: &'a ConvProblem,
    core: &'b mut VCore,
    arena: &'b mut Arena,
    src: &'a ActTensor,
    wei: &'a WeiTensor,
    dst: &'a ActTensor,
    n: usize,
    ocv: usize,
    c0: usize,
    vl: usize,
    lanes: usize,
    ic0: usize,
    ic_cnt: usize,
    kh0: usize,
    kh_cnt: usize,
    kw0: usize,
    kw_cnt: usize,
    oh0: usize,
    rbh_cur: usize,
    ow0: usize,
    rbw_cur: usize,
    first_pass: bool,
    wslot0: usize,
    wbuf: usize,
}

/// One micro-kernel invocation: `rbh_cur * rbw_cur` accumulator registers,
/// the `(kh, kw, ic_i)` inner loop with software-pipelined weight loads, and
/// the closing accumulator stores (Algorithm 2 lines 11-19).
fn micro_kernel(a: MicroArgs<'_, '_>) {
    let MicroArgs {
        p,
        core,
        arena,
        src,
        wei,
        dst,
        n,
        ocv,
        c0,
        vl,
        lanes,
        ic0,
        ic_cnt,
        kh0,
        kh_cnt,
        kw0,
        kw_cnt,
        oh0,
        rbh_cur,
        ow0,
        rbw_cur,
        first_pass,
        wslot0,
        wbuf,
    } = a;

    // --- accumulator init: zero on the first accumulation pass, otherwise
    //     reload the partial sums from D.
    core.region_enter("acc_init");
    for h in 0..rbh_cur {
        for w in 0..rbw_cur {
            let reg = h * rbw_cur + w;
            if first_pass {
                core.vbroadcast_zero(reg, lanes);
            } else {
                load_act_vec(core, arena, dst, n, c0, oh0 + h, ow0 + w, vl, reg);
            }
        }
    }
    core.region_exit();

    // --- inner loop over (kh, kw, ic_i), flattened for weight prefetch.
    core.region_enter("inner_loop");
    let total = kh_cnt * kw_cnt * ic_cnt;
    let lookahead = (wbuf - 1).min(total);
    let w_addr = |j: usize| -> u64 {
        let i = j % ic_cnt;
        let r = j / ic_cnt;
        let kwi = r % kw_cnt;
        let khi = r / kw_cnt;
        wei.oc_vector_at(ocv, ic0 + i, kh0 + khi, kw0 + kwi)
    };
    for j in 0..lookahead {
        core.scalar_op();
        core.vload(arena, wslot0 + j % wbuf, w_addr(j), vl);
    }
    for j in 0..total {
        if j + lookahead < total {
            core.scalar_op(); // weight pointer bump
            core.vload(
                arena,
                wslot0 + (j + lookahead) % wbuf,
                w_addr(j + lookahead),
                vl,
            );
        }
        let wreg = wslot0 + j % wbuf;
        let i = j % ic_cnt;
        let r = j / ic_cnt;
        let kw = kw0 + r % kw_cnt;
        let kh = kh0 + r / kw_cnt;
        let ic = ic0 + i;
        for h in 0..rbh_cur {
            let ih = ((oh0 + h) * p.stride_h + kh) as isize - p.pad_h as isize;
            for w in 0..rbw_cur {
                let iw = ((ow0 + w) * p.stride_w + kw) as isize - p.pad_w as isize;
                if ih < 0 || ih >= p.ih as isize || iw < 0 || iw >= p.iw as isize {
                    continue; // zero-padding tap: the JIT emits no code here
                }
                let reg = h * rbw_cur + w;
                core.scalar_op(); // source pointer update (B_seq filler #1)
                let s_addr = src.at(n, ic, ih as usize, iw as usize);
                let sv = core.scalar_load(arena, s_addr); // B_seq filler #2
                core.vfma_bcast(reg, wreg, sv, vl);
            }
        }
    }

    core.region_exit(); // inner_loop

    // --- write the partial sums back (Algorithm 2 line 19).
    core.region_enter("acc_store");
    for h in 0..rbh_cur {
        for w in 0..rbw_cur {
            let reg = h * rbw_cur + w;
            store_act_vec(core, arena, dst, n, c0, oh0 + h, ow0 + w, vl, reg);
        }
    }
    core.region_exit();
}
