//! The backward-weights micro-kernel (Section 4.1/4.3): the output tensor is
//! `W_diff`; the computation vectorizes the larger feature-map dimension and
//! register-blocks the smaller one (`RB_c` accumulator chains). The
//! accumulators live across the whole `(n, oh, ow)` reduction sweep, so each
//! `W_diff` vector is stored exactly once.
//!
//! Per spatial step the kernel issues one feature-map vector load of the
//! vectorized activation tensor (a coarse-grain gather under the MBDC
//! layout — this is why Section 8 observes that "the vector gather/scatter
//! operations are more frequent" in this pass) followed by `RB_c` scalar
//! loads + FMAs on the other tensor.

use super::{act_vec_lanes, load_act_vec};
use crate::problem::ConvProblem;
use crate::tuning::KernelConfig;
use lsv_tensor::{ActTensor, WeiTensor};
use lsv_vengine::{Arena, VCore};
use std::ops::Range;

/// Run the backward-weights pass on one simulated core.
///
/// * `wei_diff` — output gradients; role-swapped when `cfg.vec_over_ic`.
/// * `small_blocks` — the range of `RB_c`-sized blocks of the *smaller*
///   feature-map dimension this core owns (the paper parallelizes this loop
///   across cores, Section 4.3).
/// * `n_range` — minibatch slice to reduce over (each core reduces over the
///   full minibatch in the real scheme; the scheduler passes a slice and
///   scales, see `perf`).
#[allow(clippy::too_many_arguments)]
pub fn run(
    cfg: &KernelConfig,
    p: &ConvProblem,
    core: &mut VCore,
    arena: &mut Arena,
    src: &ActTensor,
    wei_diff: &WeiTensor,
    dst_diff: &ActTensor,
    small_blocks: Range<usize>,
    n_range: Range<usize>,
) {
    core.region_enter("bwd_weights");
    let (oh, ow) = (p.oh(), p.ow());
    let vl_max = cfg.vl;
    let (c_vec, c_small) = if cfg.vec_over_ic {
        (p.ic, p.oc)
    } else {
        (p.oc, p.ic)
    };
    let vec_blocks = c_vec.div_ceil(vl_max);
    let rb_c = cfg.rb_c;
    let vbuf0 = rb_c; // rotating activation-vector registers
    let vbuf = cfg.wbuf.max(2);
    // The vectorized activation tensor (vector loads) and the scalar one.
    let (vec_t, sca_t) = if cfg.vec_over_ic {
        (src, dst_diff)
    } else {
        (dst_diff, src)
    };

    for cvb in 0..vec_blocks {
        core.scalar_ops(2);
        let vl = vl_max.min(c_vec - cvb * vl_max);
        let lanes = act_vec_lanes(vec_t, vl);
        for csb in small_blocks.clone() {
            let cs0 = csb * rb_c;
            if cs0 >= c_small {
                break;
            }
            let rb_cur = rb_c.min(c_small - cs0);
            for kh in 0..p.kh {
                for kw in 0..p.kw {
                    core.region_enter("khkw_tile");
                    core.scalar_ops(2);
                    // Accumulators for this (kh, kw) tap, zeroed once and
                    // reduced over the whole (n, oh, ow) domain.
                    core.region_enter("acc_init");
                    for j in 0..rb_cur {
                        core.vbroadcast_zero(j, lanes);
                    }
                    core.region_exit();
                    core.region_enter("inner_loop");
                    for n in n_range.clone() {
                        core.scalar_ops(2);
                        sweep_spatial(
                            cfg,
                            p,
                            core,
                            arena,
                            vec_t,
                            sca_t,
                            n,
                            cvb * vl_max,
                            vl,
                            cs0,
                            rb_cur,
                            kh,
                            kw,
                            oh,
                            ow,
                            vbuf0,
                            vbuf,
                        );
                    }
                    core.region_exit(); // inner_loop

                    // Store the finished W_diff vectors (one store per
                    // accumulator for the whole reduction).
                    core.region_enter("acc_store");
                    for j in 0..rb_cur {
                        let addr = wei_diff.oc_vector_at(cvb, cs0 + j, kh, kw);
                        core.vstore(arena, j, addr, vl);
                    }
                    core.region_exit();
                    core.region_exit(); // khkw_tile
                }
            }
        }
    }
    core.region_exit(); // bwd_weights
}

/// The spatial reduction sweep for one (kh, kw) tap of one image: per valid
/// output point, one vector load of the vectorized activations and `rb_cur`
/// scalar-load + FMA pairs.
#[allow(clippy::too_many_arguments)]
fn sweep_spatial(
    cfg: &KernelConfig,
    p: &ConvProblem,
    core: &mut VCore,
    arena: &mut Arena,
    vec_t: &ActTensor,
    sca_t: &ActTensor,
    n: usize,
    c0: usize,
    vl: usize,
    cs0: usize,
    rb_cur: usize,
    kh: usize,
    kw: usize,
    oh: usize,
    ow: usize,
    vbuf0: usize,
    vbuf: usize,
) {
    // Enumerate the valid (oy, ox) points once so the vector loads can be
    // software-pipelined one step ahead (the JIT peels padding rows).
    let mut points: Vec<(usize, usize, usize, usize)> = Vec::with_capacity(oh * ow);
    for oy in 0..oh {
        let ih = (oy * p.stride_h + kh) as isize - p.pad_h as isize;
        if ih < 0 || ih >= p.ih as isize {
            continue;
        }
        for ox in 0..ow {
            let iw = (ox * p.stride_w + kw) as isize - p.pad_w as isize;
            if iw < 0 || iw >= p.iw as isize {
                continue;
            }
            points.push((oy, ox, ih as usize, iw as usize));
        }
    }
    let vec_coord = |pt: (usize, usize, usize, usize)| -> (usize, usize) {
        if cfg.vec_over_ic {
            (pt.2, pt.3) // S is vectorized: index by (ih, iw)
        } else {
            (pt.0, pt.1) // D_diff is vectorized: index by (oy, ox)
        }
    };
    let lookahead = (vbuf - 1).min(points.len());
    for (j, &pt) in points.iter().take(lookahead).enumerate() {
        let (y, x) = vec_coord(pt);
        core.scalar_op();
        load_act_vec(core, arena, vec_t, n, c0, y, x, vl, vbuf0 + j % vbuf);
    }
    for (j, &pt) in points.iter().enumerate() {
        if j + lookahead < points.len() {
            let (y, x) = vec_coord(points[j + lookahead]);
            core.scalar_op();
            load_act_vec(
                core,
                arena,
                vec_t,
                n,
                c0,
                y,
                x,
                vl,
                vbuf0 + (j + lookahead) % vbuf,
            );
        }
        let vreg = vbuf0 + j % vbuf;
        let (oy, ox, ih, iw) = pt;
        // Scalar coordinates on the non-vectorized tensor.
        let (sy, sx) = if cfg.vec_over_ic { (oy, ox) } else { (ih, iw) };
        for c in 0..rb_cur {
            core.scalar_op(); // scalar pointer bump
            let addr = sca_t.at(n, cs0 + c, sy, sx);
            let sv = core.scalar_load(arena, addr);
            core.vfma_bcast(c, vreg, sv, vl);
        }
    }
}
