//! The backward-data micro-kernel (Section 4.1/4.3): the output tensor is
//! `S_diff`, the computation vectorizes the `IC` dimension, register
//! blocking covers the input spatial dimensions `(IW, IH)`, and the scalar
//! stream walks the output gradients `D_diff`.
//!
//! The weights tensor is stored role-swapped —
//! `(IC/IC_b, OC/grain, KH, KW, grain, IC_b)` — so the vectorized `IC`
//! dimension stays innermost and weight vectors remain unit-stride.

use super::{act_vec_lanes, load_act_vec, store_act_vec};
use crate::problem::ConvProblem;
use crate::tuning::KernelConfig;
use lsv_tensor::{ActTensor, WeiTensor};
use lsv_vengine::{Arena, VCore};
use std::ops::Range;

/// Run the backward-data pass for images `n_range` on one simulated core.
///
/// `wei` must be the role-swapped tensor: allocated as
/// `WeiTensor::alloc(arena, /*oc slot*/ p.ic, /*ic slot*/ p.oc, kh, kw, cfg.wei_layout)`
/// and filled through [`crate::primitive::ConvPrimitive::store_weights`].
#[allow(clippy::too_many_arguments)]
pub fn run(
    cfg: &KernelConfig,
    p: &ConvProblem,
    core: &mut VCore,
    arena: &mut Arena,
    src_diff: &ActTensor,
    wei: &WeiTensor,
    dst_diff: &ActTensor,
    n_range: Range<usize>,
) {
    debug_assert!(cfg.wei_swapped);
    core.region_enter("bwd_data");
    let (oh, ow) = (p.oh(), p.ow());
    let vl_max = cfg.vl;
    let ic_vblocks = p.ic.div_ceil(vl_max);
    let (rb_w, rb_h) = (cfg.rb.rb_w, cfg.rb.rb_h);
    let wslot0 = rb_w * rb_h;
    let wbuf = cfg.wbuf;
    let tile = cfg.tile;
    let kh_blocks = p.kh.div_ceil(tile.kh_i);
    let kw_blocks = p.kw.div_ceil(tile.kw_i);
    let oc_chunks = p.oc.div_ceil(tile.c_i);

    for n in n_range {
        core.scalar_ops(2);
        for icv in 0..ic_vblocks {
            core.scalar_ops(2);
            let vl = vl_max.min(p.ic - icv * vl_max);
            let lanes = act_vec_lanes(src_diff, vl);
            for occ in 0..oc_chunks {
                core.scalar_ops(2);
                let oc0 = occ * tile.c_i;
                let oc_cnt = tile.c_i.min(p.oc - oc0);
                for khb in 0..kh_blocks {
                    let kh0 = khb * tile.kh_i;
                    let kh_cnt = tile.kh_i.min(p.kh - kh0);
                    for kwb in 0..kw_blocks {
                        core.region_enter("khkw_tile");
                        let kw0 = kwb * tile.kw_i;
                        let kw_cnt = tile.kw_i.min(p.kw - kw0);
                        let first_pass = occ == 0 && khb == 0 && kwb == 0;
                        core.scalar_ops(2);
                        let mut ih0 = 0;
                        while ih0 < p.ih {
                            let rbh_cur = rb_h.min(p.ih - ih0);
                            let mut iw0 = 0;
                            core.scalar_ops(1);
                            while iw0 < p.iw {
                                let rbw_cur = rb_w.min(p.iw - iw0);
                                let edge = rbh_cur < rb_h || rbw_cur < rb_w || vl < vl_max;
                                if edge {
                                    core.region_enter("edge");
                                }
                                micro_kernel(
                                    cfg,
                                    p,
                                    core,
                                    arena,
                                    src_diff,
                                    wei,
                                    dst_diff,
                                    n,
                                    icv,
                                    icv * vl_max,
                                    vl,
                                    lanes,
                                    oc0,
                                    oc_cnt,
                                    kh0,
                                    kh_cnt,
                                    kw0,
                                    kw_cnt,
                                    ih0,
                                    rbh_cur,
                                    iw0,
                                    rbw_cur,
                                    first_pass,
                                    wslot0,
                                    wbuf,
                                    oh,
                                    ow,
                                );
                                if edge {
                                    core.region_exit();
                                }
                                iw0 += rb_w;
                            }
                            ih0 += rb_h;
                        }
                        core.region_exit(); // khkw_tile
                    }
                }
            }
        }
    }
    core.region_exit(); // bwd_data
}

/// Map an input coordinate and kernel tap to the producing output
/// coordinate: `o = (i + pad - k) / stride` when the division is exact and
/// the result is in `[0, olen)`.
#[inline]
pub(crate) fn producer(
    i: usize,
    k: usize,
    pad: usize,
    stride: usize,
    olen: usize,
) -> Option<usize> {
    let t = i as isize + pad as isize - k as isize;
    if t < 0 {
        return None;
    }
    let t = t as usize;
    if !t.is_multiple_of(stride) {
        return None;
    }
    let o = t / stride;
    (o < olen).then_some(o)
}

#[allow(clippy::too_many_arguments)]
fn micro_kernel(
    _cfg: &KernelConfig,
    p: &ConvProblem,
    core: &mut VCore,
    arena: &mut Arena,
    src_diff: &ActTensor,
    wei: &WeiTensor,
    dst_diff: &ActTensor,
    n: usize,
    icv: usize,
    c0: usize,
    vl: usize,
    lanes: usize,
    oc0: usize,
    oc_cnt: usize,
    kh0: usize,
    kh_cnt: usize,
    kw0: usize,
    kw_cnt: usize,
    ih0: usize,
    rbh_cur: usize,
    iw0: usize,
    rbw_cur: usize,
    first_pass: bool,
    wslot0: usize,
    wbuf: usize,
    oh: usize,
    ow: usize,
) {
    // --- accumulators over the S_diff register block.
    core.region_enter("acc_init");
    for h in 0..rbh_cur {
        for w in 0..rbw_cur {
            let reg = h * rbw_cur + w;
            if first_pass {
                core.vbroadcast_zero(reg, lanes);
            } else {
                load_act_vec(core, arena, src_diff, n, c0, ih0 + h, iw0 + w, vl, reg);
            }
        }
    }
    core.region_exit();

    // --- inner loop over (kh, kw, oc_i) with software-pipelined weight loads.
    core.region_enter("inner_loop");
    let total = kh_cnt * kw_cnt * oc_cnt;
    let lookahead = (wbuf - 1).min(total);
    // wei is role-swapped: "oc" slot indexes IC blocks, "ic" slot indexes OC.
    let w_addr = |j: usize| -> u64 {
        let o = j % oc_cnt;
        let r = j / oc_cnt;
        let kwi = r % kw_cnt;
        let khi = r / kw_cnt;
        wei.oc_vector_at(icv, oc0 + o, kh0 + khi, kw0 + kwi)
    };
    for j in 0..lookahead {
        core.scalar_op();
        core.vload(arena, wslot0 + j % wbuf, w_addr(j), vl);
    }
    for j in 0..total {
        if j + lookahead < total {
            core.scalar_op();
            core.vload(
                arena,
                wslot0 + (j + lookahead) % wbuf,
                w_addr(j + lookahead),
                vl,
            );
        }
        let wreg = wslot0 + j % wbuf;
        let o = j % oc_cnt;
        let r = j / oc_cnt;
        let kw = kw0 + r % kw_cnt;
        let kh = kh0 + r / kw_cnt;
        let oc = oc0 + o;
        for h in 0..rbh_cur {
            let Some(oy) = producer(ih0 + h, kh, p.pad_h, p.stride_h, oh) else {
                continue;
            };
            for w in 0..rbw_cur {
                let Some(ox) = producer(iw0 + w, kw, p.pad_w, p.stride_w, ow) else {
                    continue;
                };
                let reg = h * rbw_cur + w;
                core.scalar_op(); // D_diff pointer update
                let d_addr = dst_diff.at(n, oc, oy, ox);
                let dv = core.scalar_load(arena, d_addr);
                core.vfma_bcast(reg, wreg, dv, vl);
            }
        }
    }

    core.region_exit(); // inner_loop

    // --- write partial S_diff sums back.
    core.region_enter("acc_store");
    for h in 0..rbh_cur {
        for w in 0..rbw_cur {
            let reg = h * rbw_cur + w;
            store_act_vec(core, arena, src_diff, n, c0, ih0 + h, iw0 + w, vl, reg);
        }
    }
    core.region_exit();
}

#[cfg(test)]
mod tests {
    use super::producer;

    #[test]
    fn producer_unit_stride() {
        // i = o + k - pad  <=>  o = i + pad - k.
        assert_eq!(producer(0, 0, 0, 1, 8), Some(0));
        assert_eq!(producer(5, 2, 1, 1, 8), Some(4));
        assert_eq!(producer(0, 2, 1, 1, 8), None, "would be negative");
        assert_eq!(producer(9, 0, 0, 1, 8), None, "past the output");
    }

    #[test]
    fn producer_stride_two_parity() {
        assert_eq!(producer(4, 0, 0, 2, 8), Some(2));
        assert_eq!(producer(5, 0, 0, 2, 8), None, "odd offset unreachable");
        assert_eq!(producer(5, 1, 0, 2, 8), Some(2));
    }
}
