//! The generated micro-kernels: one module per pass direction.
//!
//! These functions are the interpreter-side equivalent of the paper's JIT
//! assembler output (Section 6.5): a [`crate::KernelConfig`] fixes every
//! blocking factor and layout at primitive-creation time; the kernel then
//! replays the *exact* instruction stream of the fully-unrolled micro-kernel
//! on the simulated vector core — scalar loads, pointer updates, vector
//! loads/stores or coarse-grain gathers/scatters, and FMAs, in the order a
//! JIT would emit them (so the `B_seq` distance of Section 6.2 is real).

pub mod bwd_data;
pub mod bwd_weights;
pub mod fwd;

use lsv_tensor::ActTensor;
use lsv_vengine::{Arena, VCore};

/// Blocks per vector access that fit the stack buffer in
/// [`load_act_vec`]/[`store_act_vec`] (covers every practical `vl / cb`
/// combination; larger gathers fall back to a heap buffer). These helpers run
/// once per micro-kernel vector access, so the former per-call `Vec` was one
/// of the hottest allocation sites in the simulator.
const MAX_BLOCKS_INLINE: usize = 64;

/// Number of stored lanes a vector access of `vl` logical channels starting
/// at channel `c0` touches in tensor `t`: `vl` itself for a `C_b >= vl`
/// layout (unit-stride), or `ceil(vl / C_b) * C_b` for a multi-block layout
/// (the gather covers whole blocks, including tail padding lanes).
#[inline]
pub(crate) fn act_vec_lanes(t: &ActTensor, vl: usize) -> usize {
    let cb = t.layout.cb;
    if cb >= vl {
        vl
    } else {
        vl.div_ceil(cb) * cb
    }
}

/// Load a feature-map vector of `vl` channels `[c0, c0+vl)` for spatial
/// point `(y, x)` of image `n` into register `reg`.
///
/// Unit-stride layouts (`C_b >= vl`) use one vector load (Algorithm 2
/// line 12); multi-block layouts (`C_b < vl`) use a coarse-grain block
/// gather (Algorithm 4 line 15, with the Equation 5 index pattern).
#[allow(clippy::too_many_arguments)]
pub(crate) fn load_act_vec(
    core: &mut VCore,
    arena: &Arena,
    t: &ActTensor,
    n: usize,
    c0: usize,
    y: usize,
    x: usize,
    vl: usize,
    reg: usize,
) {
    let cb = t.layout.cb;
    if cb >= vl {
        debug_assert!(
            c0 % cb + vl <= cb,
            "vector access straddles a channel block"
        );
        let addr = t.block_at(n, c0 / cb, y, x) + ((c0 % cb) as u64) * 4;
        core.vload(arena, reg, addr, vl);
    } else {
        debug_assert_eq!(c0 % cb, 0, "gather must start on a block boundary");
        core.region_enter("gather");
        let bpv = vl.div_ceil(cb);
        let mut inline = [0u64; MAX_BLOCKS_INLINE];
        if bpv <= MAX_BLOCKS_INLINE {
            for (j, slot) in inline[..bpv].iter_mut().enumerate() {
                *slot = t.block_at(n, c0 / cb + j, y, x);
            }
            core.vgather_blocks(arena, reg, &inline[..bpv], cb);
        } else {
            let blocks: Vec<u64> = (0..bpv).map(|j| t.block_at(n, c0 / cb + j, y, x)).collect();
            core.vgather_blocks(arena, reg, &blocks, cb);
        }
        core.region_exit();
    }
}

/// Store the counterpart of [`load_act_vec`] (vector store or block scatter;
/// Algorithm 2 line 19 / Algorithm 4 line 22).
#[allow(clippy::too_many_arguments)]
pub(crate) fn store_act_vec(
    core: &mut VCore,
    arena: &mut Arena,
    t: &ActTensor,
    n: usize,
    c0: usize,
    y: usize,
    x: usize,
    vl: usize,
    reg: usize,
) {
    let cb = t.layout.cb;
    if cb >= vl {
        debug_assert!(
            c0 % cb + vl <= cb,
            "vector access straddles a channel block"
        );
        let addr = t.block_at(n, c0 / cb, y, x) + ((c0 % cb) as u64) * 4;
        core.vstore(arena, reg, addr, vl);
    } else {
        debug_assert_eq!(c0 % cb, 0, "scatter must start on a block boundary");
        core.region_enter("scatter");
        let bpv = vl.div_ceil(cb);
        let mut inline = [0u64; MAX_BLOCKS_INLINE];
        if bpv <= MAX_BLOCKS_INLINE {
            for (j, slot) in inline[..bpv].iter_mut().enumerate() {
                *slot = t.block_at(n, c0 / cb + j, y, x);
            }
            core.vscatter_blocks(arena, reg, &inline[..bpv], cb);
        } else {
            let blocks: Vec<u64> = (0..bpv).map(|j| t.block_at(n, c0 / cb + j, y, x)).collect();
            core.vscatter_blocks(arena, reg, &blocks, cb);
        }
        core.region_exit();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsv_arch::presets::sx_aurora;
    use lsv_tensor::ActivationLayout;
    use lsv_vengine::ExecutionMode;

    #[test]
    fn act_vec_lanes_covers_blocks() {
        let mut arena = Arena::new();
        let t = ActTensor::alloc(&mut arena, 1, 512, 4, 4, ActivationLayout { cb: 32 });
        assert_eq!(act_vec_lanes(&t, 512), 512);
        let t64 = ActTensor::alloc(&mut arena, 1, 64, 4, 4, ActivationLayout { cb: 32 });
        assert_eq!(act_vec_lanes(&t64, 64), 64);
        let t48 = ActTensor::alloc(&mut arena, 1, 48, 4, 4, ActivationLayout { cb: 32 });
        assert_eq!(act_vec_lanes(&t48, 48), 64, "tail block padded");
    }

    #[test]
    fn load_store_roundtrip_unit_stride_and_gather() {
        let arch = sx_aurora();
        for cb in [512usize, 32] {
            let mut arena = Arena::new();
            let mut core = VCore::new(&arch, ExecutionMode::Functional, 1);
            let t = ActTensor::alloc(&mut arena, 1, 512, 3, 3, ActivationLayout { cb });
            let data: Vec<f32> = (0..t.elems()).map(|i| i as f32).collect();
            t.store_nchw(&mut arena, &data);
            load_act_vec(&mut core, &arena, &t, 0, 0, 1, 2, 512, 0);
            let u = ActTensor::alloc(&mut arena, 1, 512, 3, 3, ActivationLayout { cb });
            store_act_vec(&mut core, &mut arena, &u, 0, 0, 1, 2, 512, 0);
            for c in 0..512 {
                assert_eq!(
                    arena.read(u.at(0, c, 1, 2)),
                    arena.read(t.at(0, c, 1, 2)),
                    "cb={cb} channel {c}"
                );
            }
        }
    }
}
