//! Native host lowering of the frozen kernel plan (the compute side of
//! [`crate::backend::NativeBackend`]).
//!
//! Each function mirrors the blocked loop nest of the corresponding
//! [`crate::kernels`] module statement for statement, but performs the data
//! movement directly on the arena's host memory instead of replaying the
//! instruction stream on the simulated core: the same tile walk, the same
//! per-output-element *accumulation order*, and the same unfused
//! multiply-then-add (`acc += w * s`, exactly the simulator's functional
//! `vfma_bcast`). Functional results are therefore bit-identical to
//! `ExecutionMode::Functional` — the property the fuzz oracle and
//! `tests/backend_equivalence.rs` pin — at host speed: no issue model, no
//! cache hierarchy, no trace.
//!
//! The data-movement instruction counters (scalar loads, vector
//! loads/stores, gathers, scatters, FMAs) are mirrored too, so a kernel and
//! its lowering drifting apart shows up as a counter mismatch even when the
//! values still agree. Scalar address arithmetic (`scalar_ops`) is *not*
//! mirrored: in the simulator it exists to occupy the frontend, which the
//! native backend does not model.

use crate::kernels::act_vec_lanes;
use crate::kernels::bwd_data::producer;
use crate::problem::ConvProblem;
use crate::tuning::KernelConfig;
use lsv_tensor::{ActTensor, WeiTensor};
use lsv_vengine::{Arena, InstCounters};
use std::ops::Range;

/// Host-side accumulator file: the register block of one micro-kernel,
/// flattened. Plays the role of the simulator's vector register file for
/// the accumulators (the weight/activation operand "registers" are read
/// straight from the arena — the double-buffer only changes timing, never
/// values, so the lowering counts its loads but skips the staging copy).
///
/// Registers are packed at the *current* working length `vl` (not the
/// allocation width), so a register-block row is contiguous and the hot
/// loops can walk it with `chunks_exact_mut(vl)` — no per-FMA bounds
/// checks, which is where small-`vl` kernels spend their time.
struct AccFile {
    data: Vec<f32>,
}

impl AccFile {
    fn new(regs: usize, width: usize) -> Self {
        Self {
            data: vec![0.0; regs.max(1) * width.max(1)],
        }
    }

    #[inline]
    fn reg(&mut self, i: usize, vl: usize) -> &mut [f32] {
        &mut self.data[i * vl..(i + 1) * vl]
    }

    /// The contiguous run of registers `[first, first + n)` at stride `vl`.
    #[inline]
    fn row(&mut self, first: usize, n: usize, vl: usize) -> &mut [f32] {
        &mut self.data[first * vl..(first + n) * vl]
    }

    /// Read-only counterpart of [`AccFile::row`] (for writeback while the
    /// arena is mutably borrowed).
    #[inline]
    fn row_ref(&self, first: usize, n: usize, vl: usize) -> &[f32] {
        &self.data[first * vl..(first + n) * vl]
    }
}

/// The data movement of [`load_act`]'s coarse-grain block gather, without
/// the counter update (the `bwd_weights` hot loop batches its counts).
#[allow(clippy::too_many_arguments)] // mirrors the simulator op's full coordinate tuple
fn gather_blocks(
    arena: &Arena,
    t: &ActTensor,
    n: usize,
    c0: usize,
    y: usize,
    x: usize,
    vl: usize,
    out: &mut [f32],
) {
    let cb = t.layout.cb;
    debug_assert_eq!(c0 % cb, 0, "gather must start on a block boundary");
    let mut filled = 0;
    for j in 0..vl.div_ceil(cb) {
        let take = cb.min(vl - filled);
        let addr = t.block_at(n, c0 / cb + j, y, x);
        out[filled..filled + take].copy_from_slice(arena.slice(addr, take));
        filled += take;
    }
}

/// Reload a whole `rbh × rbw` register block of partial sums from `t` —
/// one [`load_act`] per register, batched: on the unit-stride path the
/// address chain is hoisted to one row slice per `h` (consecutive `w` sit
/// `C_b` floats apart) and the counter update is one add.
#[allow(clippy::too_many_arguments)] // mirrors the simulator op's full coordinate tuple
fn load_block(
    arena: &Arena,
    t: &ActTensor,
    n: usize,
    c0: usize,
    y0: usize,
    x0: usize,
    rbh: usize,
    rbw: usize,
    vl: usize,
    accs: &mut AccFile,
    counters: &mut InstCounters,
) {
    let cb = t.layout.cb;
    if cb >= vl {
        counters.vloads += (rbh * rbw) as u64;
        let blk = c0 / cb;
        let off = ((c0 % cb) as u64) * 4;
        for h in 0..rbh {
            let row = arena.slice(t.block_at(n, blk, y0 + h, x0) + off, (rbw - 1) * cb + vl);
            let acc_row = accs.row(h * rbw, rbw, vl);
            for (w, acc) in acc_row.chunks_exact_mut(vl).enumerate() {
                acc.copy_from_slice(&row[w * cb..w * cb + vl]);
            }
        }
    } else {
        counters.gathers += (rbh * rbw) as u64;
        for h in 0..rbh {
            for w in 0..rbw {
                gather_blocks(
                    arena,
                    t,
                    n,
                    c0,
                    y0 + h,
                    x0 + w,
                    vl,
                    accs.reg(h * rbw + w, vl),
                );
            }
        }
    }
}

/// Writeback counterpart of [`load_block`]: one [`store_act`] per register,
/// batched the same way.
#[allow(clippy::too_many_arguments)] // mirrors the simulator op's full coordinate tuple
fn store_block(
    arena: &mut Arena,
    t: &ActTensor,
    n: usize,
    c0: usize,
    y0: usize,
    x0: usize,
    rbh: usize,
    rbw: usize,
    vl: usize,
    accs: &AccFile,
    counters: &mut InstCounters,
) {
    let cb = t.layout.cb;
    if cb >= vl {
        counters.vstores += (rbh * rbw) as u64;
        let blk = c0 / cb;
        let off = ((c0 % cb) as u64) * 4;
        for h in 0..rbh {
            let row = arena.slice_mut(t.block_at(n, blk, y0 + h, x0) + off, (rbw - 1) * cb + vl);
            let acc_row = accs.row_ref(h * rbw, rbw, vl);
            for (w, acc) in acc_row.chunks_exact(vl).enumerate() {
                row[w * cb..w * cb + vl].copy_from_slice(acc);
            }
        }
    } else {
        for h in 0..rbh {
            for w in 0..rbw {
                store_act(
                    arena,
                    t,
                    n,
                    c0,
                    y0 + h,
                    x0 + w,
                    vl,
                    accs.row_ref(h * rbw + w, 1, vl),
                    counters,
                );
            }
        }
    }
}

/// Store the counterpart of [`load_act`] (vector store or block scatter).
/// Only the `vl` logical lanes are written: the simulator's scatter also
/// rewrites the tail block's padding lanes, but those never hold logical
/// channels, are zero under both backends, and are invisible to every
/// readback path.
#[allow(clippy::too_many_arguments)] // mirrors the simulator op's full coordinate tuple
fn store_act(
    arena: &mut Arena,
    t: &ActTensor,
    n: usize,
    c0: usize,
    y: usize,
    x: usize,
    vl: usize,
    vals: &[f32],
    counters: &mut InstCounters,
) {
    let cb = t.layout.cb;
    if cb >= vl {
        debug_assert!(
            c0 % cb + vl <= cb,
            "vector access straddles a channel block"
        );
        counters.vstores += 1;
        let addr = t.block_at(n, c0 / cb, y, x) + ((c0 % cb) as u64) * 4;
        arena.store_slice(addr, &vals[..vl]);
    } else {
        debug_assert_eq!(c0 % cb, 0, "scatter must start on a block boundary");
        counters.scatters += 1;
        let mut written = 0;
        for j in 0..vl.div_ceil(cb) {
            let take = cb.min(vl - written);
            let addr = t.block_at(n, c0 / cb + j, y, x);
            arena.store_slice(addr, &vals[written..written + take]);
            written += take;
        }
    }
}

/// The simulator's functional `vfma_bcast`: `acc[i] += w[i] * s`,
/// deliberately *unfused* so the rounding of every element matches the
/// reference interpreter bit for bit. Both slices must already be exactly
/// `vl` long: re-slicing (`[..vl]`) inside this function costs a fat-pointer
/// rebuild per call that blocks vectorization — measurably the hottest
/// instruction in the whole backend — so callers bound once, outside their
/// loops. Callers batch the `vfmas`/`fma_elems` counter updates per tile
/// for the same reason.
#[inline]
fn fma_bcast(acc: &mut [f32], w: &[f32], s: f32) {
    debug_assert_eq!(acc.len(), w.len());
    for (a, &b) in acc.iter_mut().zip(w) {
        *a += b * s;
    }
}

/// A run of [`fma_bcast`]s into one accumulator: `acc += wvs[i] * svals[i]`
/// applied sequentially (the simulator's tap order — the arithmetic is the
/// same unfused mul-then-add whichever variant runs). Small power-of-two
/// working lengths — the shapes where loop scaffolding would otherwise
/// dominate — dispatch to a const-length body so the accumulator stays in
/// SIMD registers across the whole run instead of round-tripping memory per
/// tap.
#[inline]
fn fma_run(acc: &mut [f32], wvs: &[&[f32]], svals: &[f32]) {
    match acc.len() {
        8 => fma_run_n::<8>(acc, wvs, svals),
        16 => fma_run_n::<16>(acc, wvs, svals),
        32 => fma_run_n::<32>(acc, wvs, svals),
        _ => {
            for (wv, &sv) in wvs.iter().zip(svals) {
                fma_bcast(acc, wv, sv);
            }
        }
    }
}

#[inline]
fn fma_run_n<const N: usize>(acc: &mut [f32], wvs: &[&[f32]], svals: &[f32]) {
    let acc: &mut [f32; N] = acc.try_into().unwrap();
    for (wv, &sv) in wvs.iter().zip(svals) {
        let wv: &[f32; N] = (*wv).try_into().unwrap();
        for i in 0..N {
            acc[i] += wv[i] * sv;
        }
    }
}

/// A sweep of one broadcast vector across consecutive accumulators:
/// `acc_row[c] += vs * svals[c]` (the backward-weights inner loop), with the
/// same const-length dispatch as [`fma_run`].
#[inline]
fn fma_sweep(acc_row: &mut [f32], vs: &[f32], svals: &[f32], vl: usize) {
    match vl {
        8 => fma_sweep_n::<8>(acc_row, vs, svals),
        16 => fma_sweep_n::<16>(acc_row, vs, svals),
        32 => fma_sweep_n::<32>(acc_row, vs, svals),
        _ => {
            for (acc, &sv) in acc_row.chunks_exact_mut(vl).zip(svals) {
                fma_bcast(acc, vs, sv);
            }
        }
    }
}

#[inline]
fn fma_sweep_n<const N: usize>(acc_row: &mut [f32], vs: &[f32], svals: &[f32]) {
    let vs: &[f32; N] = vs.try_into().unwrap();
    for (acc, &sv) in acc_row.chunks_exact_mut(N).zip(svals) {
        let acc: &mut [f32; N] = acc.try_into().unwrap();
        for i in 0..N {
            acc[i] += vs[i] * sv;
        }
    }
}

/// Native lowering of [`crate::kernels::fwd::run`]: identical tile walk and
/// accumulation order, data ops executed on host memory.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_fwd(
    cfg: &KernelConfig,
    p: &ConvProblem,
    arena: &mut Arena,
    src: &ActTensor,
    wei: &WeiTensor,
    dst: &ActTensor,
    n_range: Range<usize>,
    counters: &mut InstCounters,
) {
    debug_assert!(!cfg.wei_swapped);
    let (oh, ow) = (p.oh(), p.ow());
    let vl_max = cfg.vl;
    let oc_vblocks = p.oc.div_ceil(vl_max);
    let (rb_w, rb_h) = (cfg.rb.rb_w, cfg.rb.rb_h);
    let tile = cfg.tile;
    let kh_blocks = p.kh.div_ceil(tile.kh_i);
    let kw_blocks = p.kw.div_ceil(tile.kw_i);
    let ic_chunks = p.ic.div_ceil(tile.c_i);
    let mut accs = AccFile::new(rb_w * rb_h, vl_max);

    for n in n_range {
        for ocv in 0..oc_vblocks {
            let vl = vl_max.min(p.oc - ocv * vl_max);
            let c0 = ocv * vl_max;
            for icc in 0..ic_chunks {
                let ic0 = icc * tile.c_i;
                let ic_cnt = tile.c_i.min(p.ic - ic0);
                // Partition the `ic` chunk into address-contiguous runs
                // (within one `C_b` block consecutive channels sit 1 float
                // apart) — fixed for the whole chunk, so the hot loop reads
                // each run with one slice and a precomputed offset.
                let src_cb = src.layout.cb;
                let runs: Vec<(usize, usize)> = {
                    let mut v = Vec::new();
                    let mut i = 0;
                    while i < ic_cnt {
                        let run = (src_cb - (ic0 + i) % src_cb).min(ic_cnt - i);
                        v.push((i, run));
                        i += run;
                    }
                    v
                };
                for khb in 0..kh_blocks {
                    let kh0 = khb * tile.kh_i;
                    let kh_cnt = tile.kh_i.min(p.kh - kh0);
                    for kwb in 0..kw_blocks {
                        let kw0 = kwb * tile.kw_i;
                        let kw_cnt = tile.kw_i.min(p.kw - kw0);
                        let first_pass = icc == 0 && khb == 0 && kwb == 0;
                        let mut oh0 = 0;
                        while oh0 < oh {
                            let rbh_cur = rb_h.min(oh - oh0);
                            let mut ow0 = 0;
                            while ow0 < ow {
                                let rbw_cur = rb_w.min(ow - ow0);

                                // --- accumulator init (zero or reload partials).
                                if first_pass {
                                    accs.row(0, rbh_cur * rbw_cur, vl).fill(0.0);
                                } else {
                                    load_block(
                                        arena, dst, n, c0, oh0, ow0, rbh_cur, rbw_cur, vl,
                                        &mut accs, counters,
                                    );
                                }

                                // --- inner (kh, kw, ic_i) loop, in the
                                // simulator's exact per-accumulator tap
                                // order: (kh, kw) outer, `ic` fastest. The
                                // spatial position of an accumulator is free
                                // to move outward — each accumulator only
                                // sees its own taps — so the lowering walks
                                // point-major: weight vectors resolved once
                                // per (kh, kw), valid `h`/`w` ranges hoisted
                                // to closed form (no per-point padding
                                // checks), and per row each `ic` run sweeps
                                // the valid accumulators with one address
                                // increment per point. Runs iterate in
                                // ascending `ic`, so every accumulator still
                                // receives its taps `ic`-fastest. The weight
                                // double-buffer is value-transparent: count
                                // its pipelined loads, read at use; counters
                                // batch in locals.
                                counters.vloads += (kh_cnt * kw_cnt * ic_cnt) as u64;
                                let mut taps = 0u64;
                                {
                                    let (sh, sw) = (p.stride_h, p.stride_w);
                                    let wstep = (sw * src_cb * 4) as u64;
                                    let mut wvs: Vec<&[f32]> = Vec::with_capacity(ic_cnt);
                                    for kh in kh0..kh0 + kh_cnt {
                                        // Valid `h`: `ih = (oh0+h)*sh + kh - ph`
                                        // must land in `[0, p.ih)`.
                                        let need = p.pad_h as isize - kh as isize;
                                        let oy_min = if need > 0 {
                                            (need as usize).div_ceil(sh)
                                        } else {
                                            0
                                        };
                                        let h_lo = oy_min.saturating_sub(oh0);
                                        let top =
                                            p.ih as isize - 1 + p.pad_h as isize - kh as isize;
                                        let h_hi = if top < 0 {
                                            0
                                        } else {
                                            let oy_max = top as usize / sh;
                                            if oy_max < oh0 {
                                                0
                                            } else {
                                                rbh_cur.min(oy_max - oh0 + 1)
                                            }
                                        };
                                        if h_lo >= h_hi {
                                            continue;
                                        }
                                        for kw in kw0..kw0 + kw_cnt {
                                            let iw_base =
                                                (ow0 * sw + kw) as isize - p.pad_w as isize;
                                            let w_lo = if iw_base < 0 {
                                                ((-iw_base) as usize).div_ceil(sw)
                                            } else {
                                                0
                                            };
                                            let right = p.iw as isize - 1 - iw_base;
                                            let w_hi = if right < 0 {
                                                0
                                            } else {
                                                rbw_cur.min(right as usize / sw + 1)
                                            };
                                            if w_lo >= w_hi {
                                                continue;
                                            }
                                            wvs.clear();
                                            for ic in ic0..ic0 + ic_cnt {
                                                let w_addr = wei.oc_vector_at(ocv, ic, kh, kw);
                                                wvs.push(arena.slice(w_addr, vl));
                                            }
                                            taps += ((h_hi - h_lo) * (w_hi - w_lo) * ic_cnt) as u64;
                                            let iw_lo = (iw_base + (w_lo * sw) as isize) as usize;
                                            for h in h_lo..h_hi {
                                                let ih = (oh0 + h) * sh + kh - p.pad_h;
                                                let acc_row = accs.row(h * rbw_cur, rbw_cur, vl);
                                                let acc_span = &mut acc_row[w_lo * vl..w_hi * vl];
                                                for &(i, run) in &runs {
                                                    let mut saddr = src.at(n, ic0 + i, ih, iw_lo);
                                                    let wv = &wvs[i..i + run];
                                                    for acc in acc_span.chunks_exact_mut(vl) {
                                                        fma_run(acc, wv, arena.slice(saddr, run));
                                                        saddr += wstep;
                                                    }
                                                }
                                            }
                                        }
                                    }
                                }
                                counters.scalar_loads += taps;
                                counters.vfmas += taps;
                                counters.fma_elems += taps * vl as u64;

                                // --- write partial sums back.
                                store_block(
                                    arena, dst, n, c0, oh0, ow0, rbh_cur, rbw_cur, vl, &accs,
                                    counters,
                                );
                                ow0 += rb_w;
                            }
                            oh0 += rb_h;
                        }
                    }
                }
            }
        }
    }
}

/// Native lowering of [`crate::kernels::bwd_data::run`]: vectorizes `IC`,
/// register-blocks `(IW, IH)`, scalar stream walks `D_diff` through the
/// shared [`producer`] coordinate mapping.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_bwd_data(
    cfg: &KernelConfig,
    p: &ConvProblem,
    arena: &mut Arena,
    src_diff: &ActTensor,
    wei: &WeiTensor,
    dst_diff: &ActTensor,
    n_range: Range<usize>,
    counters: &mut InstCounters,
) {
    debug_assert!(cfg.wei_swapped);
    let (oh, ow) = (p.oh(), p.ow());
    let vl_max = cfg.vl;
    let ic_vblocks = p.ic.div_ceil(vl_max);
    let (rb_w, rb_h) = (cfg.rb.rb_w, cfg.rb.rb_h);
    let tile = cfg.tile;
    let kh_blocks = p.kh.div_ceil(tile.kh_i);
    let kw_blocks = p.kw.div_ceil(tile.kw_i);
    let oc_chunks = p.oc.div_ceil(tile.c_i);
    let mut accs = AccFile::new(rb_w * rb_h, vl_max);

    for n in n_range {
        for icv in 0..ic_vblocks {
            let vl = vl_max.min(p.ic - icv * vl_max);
            let c0 = icv * vl_max;
            for occ in 0..oc_chunks {
                let oc0 = occ * tile.c_i;
                let oc_cnt = tile.c_i.min(p.oc - oc0);
                // Address-contiguous `oc` runs, as in `run_fwd`.
                let dd_cb = dst_diff.layout.cb;
                let runs: Vec<(usize, usize)> = {
                    let mut v = Vec::new();
                    let mut i = 0;
                    while i < oc_cnt {
                        let run = (dd_cb - (oc0 + i) % dd_cb).min(oc_cnt - i);
                        v.push((i, run));
                        i += run;
                    }
                    v
                };
                for khb in 0..kh_blocks {
                    let kh0 = khb * tile.kh_i;
                    let kh_cnt = tile.kh_i.min(p.kh - kh0);
                    for kwb in 0..kw_blocks {
                        let kw0 = kwb * tile.kw_i;
                        let kw_cnt = tile.kw_i.min(p.kw - kw0);
                        let first_pass = occ == 0 && khb == 0 && kwb == 0;
                        let mut ih0 = 0;
                        while ih0 < p.ih {
                            let rbh_cur = rb_h.min(p.ih - ih0);
                            let mut iw0 = 0;
                            while iw0 < p.iw {
                                let rbw_cur = rb_w.min(p.iw - iw0);

                                if first_pass {
                                    accs.row(0, rbh_cur * rbw_cur, vl).fill(0.0);
                                } else {
                                    load_block(
                                        arena, src_diff, n, c0, ih0, iw0, rbh_cur, rbw_cur, vl,
                                        &mut accs, counters,
                                    );
                                }

                                // Same point-major hot-loop shape as
                                // `run_fwd` (per-accumulator tap order is
                                // (kh, kw) outer, `oc` fastest): weight
                                // vectors resolved once per (kh, kw), each
                                // `oc` run sweeps the valid accumulators
                                // with one address increment per point (the
                                // producing `ox` step by 1 while the valid
                                // `w` step by `stride_w`), counters batch in
                                // locals.
                                counters.vloads += (kh_cnt * kw_cnt * oc_cnt) as u64;
                                let mut taps = 0u64;
                                {
                                    let dstep = (dd_cb * 4) as u64;
                                    let mut wvs: Vec<&[f32]> = Vec::with_capacity(oc_cnt);
                                    for kh in kh0..kh0 + kh_cnt {
                                        for kw in kw0..kw0 + kw_cnt {
                                            // Strength-reduced [`producer`]:
                                            // within a register-block row the
                                            // valid `w` step by `stride_w`
                                            // while `ox` steps by 1, so the
                                            // per-point div/mod disappears.
                                            let tw0 = (iw0 + p.pad_w) as isize - kw as isize;
                                            let sw = p.stride_w as isize;
                                            let w_start = if tw0 >= 0 {
                                                ((sw - tw0 % sw) % sw) as usize
                                            } else {
                                                (-tw0) as usize
                                            };
                                            let ox_start = ((tw0 + w_start as isize) / sw) as usize;
                                            if w_start >= rbw_cur || ox_start >= ow {
                                                continue;
                                            }
                                            let cnt = (rbw_cur - w_start)
                                                .div_ceil(p.stride_w)
                                                .min(ow - ox_start);
                                            wvs.clear();
                                            for oc in oc0..oc0 + oc_cnt {
                                                // Role-swapped: "oc" slot indexes IC blocks.
                                                let w_addr = wei.oc_vector_at(icv, oc, kh, kw);
                                                wvs.push(arena.slice(w_addr, vl));
                                            }
                                            for h in 0..rbh_cur {
                                                let Some(oy) =
                                                    producer(ih0 + h, kh, p.pad_h, p.stride_h, oh)
                                                else {
                                                    continue;
                                                };
                                                taps += (cnt * oc_cnt) as u64;
                                                let acc_row = accs.row(h * rbw_cur, rbw_cur, vl);
                                                if p.stride_w == 1 {
                                                    // Unit stride: the valid
                                                    // accumulators are
                                                    // contiguous — sweep them
                                                    // without per-point index
                                                    // checks.
                                                    let span = &mut acc_row
                                                        [w_start * vl..(w_start + cnt) * vl];
                                                    for &(i, run) in &runs {
                                                        let mut daddr =
                                                            dst_diff.at(n, oc0 + i, oy, ox_start);
                                                        let wv = &wvs[i..i + run];
                                                        for acc in span.chunks_exact_mut(vl) {
                                                            fma_run(
                                                                acc,
                                                                wv,
                                                                arena.slice(daddr, run),
                                                            );
                                                            daddr += dstep;
                                                        }
                                                    }
                                                } else {
                                                    for &(i, run) in &runs {
                                                        let mut daddr =
                                                            dst_diff.at(n, oc0 + i, oy, ox_start);
                                                        let wv = &wvs[i..i + run];
                                                        let mut w = w_start;
                                                        for _ in 0..cnt {
                                                            fma_run(
                                                                &mut acc_row[w * vl..(w + 1) * vl],
                                                                wv,
                                                                arena.slice(daddr, run),
                                                            );
                                                            daddr += dstep;
                                                            w += p.stride_w;
                                                        }
                                                    }
                                                }
                                            }
                                        }
                                    }
                                }
                                counters.scalar_loads += taps;
                                counters.vfmas += taps;
                                counters.fma_elems += taps * vl as u64;

                                store_block(
                                    arena, src_diff, n, c0, ih0, iw0, rbh_cur, rbw_cur, vl, &accs,
                                    counters,
                                );
                                iw0 += rb_w;
                            }
                            ih0 += rb_h;
                        }
                    }
                }
            }
        }
    }
}

/// Native lowering of [`crate::kernels::bwd_weights::run`]: vectorizes the
/// larger feature-map dimension, `RB_c` accumulator chains held across the
/// whole `(n, oh, ow)` reduction, one store per finished `W_diff` vector.
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_bwd_weights(
    cfg: &KernelConfig,
    p: &ConvProblem,
    arena: &mut Arena,
    src: &ActTensor,
    wei_diff: &WeiTensor,
    dst_diff: &ActTensor,
    small_blocks: Range<usize>,
    n_range: Range<usize>,
    counters: &mut InstCounters,
) {
    let (oh, ow) = (p.oh(), p.ow());
    let vl_max = cfg.vl;
    let (c_vec, c_small) = if cfg.vec_over_ic {
        (p.ic, p.oc)
    } else {
        (p.oc, p.ic)
    };
    let vec_blocks = c_vec.div_ceil(vl_max);
    let rb_c = cfg.rb_c;
    let (vec_t, sca_t) = if cfg.vec_over_ic {
        (src, dst_diff)
    } else {
        (dst_diff, src)
    };
    let lanes_max = act_vec_lanes(vec_t, vl_max);
    let mut accs = AccFile::new(rb_c, vl_max);
    let mut vbuf = vec![0.0f32; lanes_max.max(vl_max)];

    for cvb in 0..vec_blocks {
        let vl = vl_max.min(c_vec - cvb * vl_max);
        let c0 = cvb * vl_max;
        for csb in small_blocks.clone() {
            let cs0 = csb * rb_c;
            if cs0 >= c_small {
                break;
            }
            let rb_cur = rb_c.min(c_small - cs0);
            let vec_cb = vec_t.layout.cb;
            let sca_cb = sca_t.layout.cb;
            // The `rb_cur` scalar channels are address-consecutive when they
            // sit in one channel block — the common case, read via one slice.
            let sca_contig = cs0 % sca_cb + rb_cur <= sca_cb;
            for kh in 0..p.kh {
                // Valid output rows for this tap in closed form: `ih = oy*sh
                // + kh - ph` must land in `[0, p.ih)`. Hoisting the bounds
                // replaces the per-point padding checks of the simulator's
                // enumeration (which visits the same points, in the same
                // order) with dense loops over the valid rectangle.
                let oy_lo = if p.pad_h > kh {
                    (p.pad_h - kh).div_ceil(p.stride_h)
                } else {
                    0
                };
                let top = p.ih as isize - 1 + p.pad_h as isize - kh as isize;
                let oy_hi = if top < 0 {
                    0
                } else {
                    oh.min(top as usize / p.stride_h + 1)
                };
                for kw in 0..p.kw {
                    let ox_lo = if p.pad_w > kw {
                        (p.pad_w - kw).div_ceil(p.stride_w)
                    } else {
                        0
                    };
                    let right = p.iw as isize - 1 + p.pad_w as isize - kw as isize;
                    let ox_hi = if right < 0 {
                        0
                    } else {
                        ow.min(right as usize / p.stride_w + 1)
                    };
                    let (oy_cnt, ox_cnt) =
                        (oy_hi.saturating_sub(oy_lo), ox_hi.saturating_sub(ox_lo));
                    let points = (n_range.len() * oy_cnt * ox_cnt) as u64;
                    accs.row(0, rb_cur, vl).fill(0.0);
                    // The spatial sweep: per valid point one vector load of
                    // the vectorized activations (software-pipelined in the
                    // simulator — each point is loaded exactly once either
                    // way) and `rb_cur` scalar-load + FMA pairs, in
                    // enumeration order.
                    if vec_cb >= vl && sca_contig && ox_cnt > 0 {
                        // Fast path: both operands are contiguous arena
                        // slices whose addresses advance by a fixed stride
                        // per output column — hoist the layout math to one
                        // base address per row and step incrementally (the
                        // `ox_cnt > 0` guard keeps the hoisted `ox_lo` base
                        // addresses in bounds when the tap has no valid
                        // columns at all).
                        let vstep =
                            ((if cfg.vec_over_ic { p.stride_w } else { 1 }) * vec_cb * 4) as u64;
                        let sstep =
                            ((if cfg.vec_over_ic { 1 } else { p.stride_w }) * sca_cb * 4) as u64;
                        let voff = ((c0 % vec_cb) as u64) * 4;
                        let acc_row = accs.row(0, rb_cur, vl);
                        for n in n_range.clone() {
                            for oy in oy_lo..oy_hi {
                                let ih = oy * p.stride_h + kh - p.pad_h;
                                let iw0 = ox_lo * p.stride_w + kw - p.pad_w;
                                let (y, x0) = if cfg.vec_over_ic {
                                    (ih, iw0)
                                } else {
                                    (oy, ox_lo)
                                };
                                let (sy, sx0) = if cfg.vec_over_ic {
                                    (oy, ox_lo)
                                } else {
                                    (ih, iw0)
                                };
                                let mut vaddr = vec_t.block_at(n, c0 / vec_cb, y, x0) + voff;
                                let mut saddr = sca_t.at(n, cs0, sy, sx0);
                                for _ in 0..ox_cnt {
                                    let vs = arena.slice(vaddr, vl);
                                    let svals = arena.slice(saddr, rb_cur);
                                    fma_sweep(acc_row, vs, svals, vl);
                                    vaddr += vstep;
                                    saddr += sstep;
                                }
                            }
                        }
                    } else {
                        for n in n_range.clone() {
                            for oy in oy_lo..oy_hi {
                                let ih = oy * p.stride_h + kh - p.pad_h;
                                for ox in ox_lo..ox_hi {
                                    let iw = ox * p.stride_w + kw - p.pad_w;
                                    let (y, x) = if cfg.vec_over_ic { (ih, iw) } else { (oy, ox) };
                                    let vslice: &[f32] = if vec_cb >= vl {
                                        let addr = vec_t.block_at(n, c0 / vec_cb, y, x)
                                            + ((c0 % vec_cb) as u64) * 4;
                                        arena.slice(addr, vl)
                                    } else {
                                        gather_blocks(arena, vec_t, n, c0, y, x, vl, &mut vbuf);
                                        &vbuf
                                    };
                                    let (sy, sx) =
                                        if cfg.vec_over_ic { (oy, ox) } else { (ih, iw) };
                                    let vs = &vslice[..vl];
                                    if sca_contig {
                                        let svals = arena.slice(sca_t.at(n, cs0, sy, sx), rb_cur);
                                        fma_sweep(accs.row(0, rb_cur, vl), vs, svals, vl);
                                    } else {
                                        for c in 0..rb_cur {
                                            let sv = arena.read(sca_t.at(n, cs0 + c, sy, sx));
                                            fma_bcast(accs.reg(c, vl), vs, sv);
                                        }
                                    }
                                }
                            }
                        }
                    }
                    if vec_cb >= vl {
                        counters.vloads += points;
                    } else {
                        counters.gathers += points;
                    }
                    counters.scalar_loads += points * rb_cur as u64;
                    counters.vfmas += points * rb_cur as u64;
                    counters.fma_elems += points * (rb_cur * vl) as u64;
                    for j in 0..rb_cur {
                        counters.vstores += 1;
                        let addr = wei_diff.oc_vector_at(cvb, cs0 + j, kh, kw);
                        arena.store_slice(addr, accs.reg(j, vl));
                    }
                }
            }
        }
    }
}
