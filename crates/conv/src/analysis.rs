//! Static analysis of a kernel configuration's scalar access stream — the
//! machinery behind the paper's Figure 3 and Formula 3 reasoning, exposed
//! as a library API so users can inspect *why* a configuration will (or
//! won't) thrash the L1 before running the simulator.

use crate::problem::Direction;
use crate::tuning::KernelConfig;
use lsv_arch::ArchParams;

/// Static profile of the micro-kernel's scalar access stream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScalarStreamProfile {
    /// Byte stride between consecutive scalar accesses (`A_b * C_str * 4`).
    pub stride_bytes: u64,
    /// Number of scalar accesses per inner-loop sweep (the combined
    /// register block).
    pub sweep_len: usize,
    /// Distinct L1 sets one sweep visits.
    pub distinct_sets: usize,
    /// Line slots available to the sweep (`distinct_sets * ways`).
    pub capacity_lines: usize,
    /// Lines one sweep touches (one per register-block point when the
    /// stride is at least a line).
    pub footprint_lines: usize,
    /// The sweep's lines exceed the sets it maps to: reuse across the
    /// channel loop will conflict-miss (the measurable form of Formula 3).
    pub thrashes: bool,
}

/// Profile the scalar stream of a configuration on an architecture.
///
/// The stream strides by the scalar-accessed tensor's channel block
/// (`A_b`), scaled by the convolution stride on the forward pass; each of
/// the `RB_h * RB_w` register-block points (or `RB_c` channels on the
/// backward-weights pass) contributes one access per inner-loop iteration,
/// and the *same lines* are revisited on the next channel iteration — so
/// the sweep must fit the sets it maps to (Section 5.2).
pub fn scalar_stream_profile(
    arch: &ArchParams,
    cfg: &KernelConfig,
    conv_stride: usize,
) -> ScalarStreamProfile {
    let (ab, eff_stride, sweep_len) = match cfg.direction {
        Direction::Fwd => (cfg.src_layout.cb, conv_stride, cfg.rb.combined()),
        Direction::BwdData => (cfg.dst_layout.cb, 1, cfg.rb.combined()),
        Direction::BwdWeights => {
            // Scalar stream walks the non-vectorized activation tensor at
            // unit channel steps per point; the spatial walk strides by the
            // channel block.
            let cb = if cfg.vec_over_ic {
                cfg.dst_layout.cb
            } else {
                cfg.src_layout.cb
            };
            (cb, conv_stride, cfg.rb_c)
        }
    };
    let stride_bytes = (ab * eff_stride * arch.elem_bytes()) as u64;
    let line = arch.l1d.line as u64;
    let sets = arch.l1d.sets();
    let mut visited: Vec<usize> = (0..sweep_len as u64)
        .map(|i| arch.l1d.set_of(i * stride_bytes))
        .collect();
    visited.sort_unstable();
    visited.dedup();
    let distinct_sets = visited.len();
    let capacity_lines = distinct_sets * arch.l1d.ways;
    // Lines touched per sweep: points can share a line when the stride is
    // sub-line.
    let footprint_lines = if stride_bytes >= line {
        sweep_len
    } else {
        (((sweep_len as u64) * stride_bytes).div_ceil(line)) as usize
    };
    ScalarStreamProfile {
        stride_bytes,
        sweep_len,
        distinct_sets: distinct_sets.min(sets),
        capacity_lines,
        footprint_lines,
        thrashes: footprint_lines > capacity_lines,
    }
}

/// Per-set access counts of one register-block sweep of the scalar stream —
/// the data behind a Figure 3-style visualization. Index = L1 set, value =
/// lines of the sweep mapping there.
pub fn set_pressure_histogram(
    arch: &ArchParams,
    cfg: &KernelConfig,
    conv_stride: usize,
) -> Vec<u32> {
    let prof = scalar_stream_profile(arch, cfg, conv_stride);
    let mut hist = vec![0u32; arch.l1d.sets()];
    let line = arch.l1d.line as u64;
    let mut last_line = u64::MAX;
    for i in 0..prof.sweep_len as u64 {
        let addr = i * prof.stride_bytes;
        let la = addr & !(line - 1);
        if la != last_line {
            hist[arch.l1d.set_of(addr)] += 1;
            last_line = la;
        }
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Algorithm, ConvProblem};
    use crate::tuning::kernel_config;
    use lsv_arch::presets::sx_aurora;

    #[test]
    fn histogram_concentrates_for_dc_and_spreads_for_mbdc() {
        let arch = sx_aurora();
        let p = ConvProblem::new(8, 512, 512, 28, 28, 1, 1, 1, 0);
        let dc = kernel_config(&arch, &p, Direction::Fwd, Algorithm::Dc, 8);
        let mbdc = kernel_config(&arch, &p, Direction::Fwd, Algorithm::Mbdc, 8);
        let h_dc = set_pressure_histogram(&arch, &dc, 1);
        let h_mb = set_pressure_histogram(&arch, &mbdc, 1);
        let nonzero = |h: &[u32]| h.iter().filter(|&&c| c > 0).count();
        assert!(nonzero(&h_dc) < nonzero(&h_mb), "DC stresses fewer sets");
        let max_dc = *h_dc.iter().max().unwrap();
        assert!(
            max_dc as usize > arch.l1d.ways,
            "DC overloads some set beyond its ways: {max_dc}"
        );
        assert!(*h_mb.iter().max().unwrap() <= 2, "MBDC spreads evenly");
    }

    #[test]
    fn histogram_total_counts_sweep_lines() {
        let arch = sx_aurora();
        let p = ConvProblem::new(8, 256, 256, 14, 14, 1, 1, 1, 0);
        let cfg = kernel_config(&arch, &p, Direction::Fwd, Algorithm::Dc, 8);
        let prof = scalar_stream_profile(&arch, &cfg, 1);
        let h = set_pressure_histogram(&arch, &cfg, 1);
        assert_eq!(h.iter().sum::<u32>() as usize, prof.footprint_lines);
    }

    #[test]
    fn dc_conflict_layer_profile_thrashes() {
        // Layer 8: IC = 512 -> stride 2 KB, RB = 24 -> 24 lines over
        // 8 sets x 2 ways = 16 slots: thrash.
        let arch = sx_aurora();
        let p = ConvProblem::new(8, 512, 128, 28, 28, 1, 1, 1, 0);
        let cfg = kernel_config(&arch, &p, Direction::Fwd, Algorithm::Dc, 8);
        let prof = scalar_stream_profile(&arch, &cfg, p.stride_w);
        assert_eq!(prof.stride_bytes, 2048);
        assert_eq!(prof.sweep_len, 24);
        assert_eq!(prof.distinct_sets, 8);
        assert_eq!(prof.capacity_lines, 16);
        assert!(prof.thrashes);
    }

    #[test]
    fn bdc_profile_fits() {
        let arch = sx_aurora();
        let p = ConvProblem::new(8, 512, 128, 28, 28, 1, 1, 1, 0);
        let cfg = kernel_config(&arch, &p, Direction::Fwd, Algorithm::Bdc, 8);
        let prof = scalar_stream_profile(&arch, &cfg, p.stride_w);
        assert!(!prof.thrashes, "{prof:?}");
        assert!(prof.footprint_lines <= prof.capacity_lines);
    }

    #[test]
    fn mbdc_profile_spreads_over_all_sets() {
        let arch = sx_aurora();
        let p = ConvProblem::new(8, 512, 512, 28, 28, 1, 1, 1, 0);
        let cfg = kernel_config(&arch, &p, Direction::Fwd, Algorithm::Mbdc, 8);
        let prof = scalar_stream_profile(&arch, &cfg, p.stride_w);
        assert_eq!(prof.stride_bytes, 128, "one line per point");
        assert!(!prof.thrashes);
        assert_eq!(prof.distinct_sets, prof.sweep_len.min(arch.l1d.sets()));
    }

    #[test]
    fn profile_agrees_with_formula3_on_table3() {
        // The static profile and Formula 3 must tell the same story across
        // the whole layer suite (they are two formalizations of one claim).
        let arch = sx_aurora();
        for &(ic, oc, ihw, _, k, s, pad) in &lsv_models_table3() {
            let p = ConvProblem::new(8, ic, oc, ihw, ihw, k, k, s, pad);
            for dir in [Direction::Fwd, Direction::BwdData] {
                let cfg = kernel_config(&arch, &p, dir, Algorithm::Dc, 8);
                let prof = scalar_stream_profile(&arch, &cfg, p.stride_w);
                assert_eq!(
                    prof.thrashes, cfg.conflicts_predicted,
                    "{p} {dir}: profile {prof:?} vs formula {}",
                    cfg.conflicts_predicted
                );
            }
        }
    }

    /// Local copy of the Table 3 rows (lsv-models depends on this crate).
    fn lsv_models_table3() -> Vec<(usize, usize, usize, usize, usize, usize, usize)> {
        vec![
            (64, 256, 56, 56, 1, 1, 0),
            (64, 64, 56, 56, 1, 1, 0),
            (64, 64, 56, 56, 3, 1, 1),
            (256, 64, 56, 56, 1, 1, 0),
            (256, 512, 56, 28, 1, 2, 0),
            (256, 128, 56, 28, 1, 2, 0),
            (128, 128, 28, 28, 3, 1, 1),
            (128, 512, 28, 28, 1, 1, 0),
            (512, 128, 28, 28, 1, 1, 0),
            (512, 1024, 28, 14, 1, 2, 0),
            (512, 256, 28, 14, 1, 2, 0),
            (256, 256, 14, 14, 3, 1, 1),
            (256, 1024, 14, 14, 1, 1, 0),
            (1024, 256, 14, 14, 1, 1, 0),
            (1024, 2048, 14, 7, 1, 2, 0),
            (1024, 512, 14, 7, 1, 2, 0),
            (512, 512, 7, 7, 3, 1, 1),
            (512, 2048, 7, 7, 1, 1, 0),
            (2048, 512, 7, 7, 1, 1, 0),
        ]
    }
}
