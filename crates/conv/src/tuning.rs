//! Optimization-variable selection: register blocking policies (Sections
//! 4.1, 6.2), the micro-kernel footprint auto-tuner (Section 6.1 /
//! Algorithm 3), and the per-algorithm kernel configuration that the
//! "code generation" step of the primitive API consumes (Section 6.5,
//! summarized by Table 2).

use crate::problem::{Algorithm, ConvProblem, Direction};
use lsv_arch::{
    bdc_register_block_range, formula2_rb_min, formula3_predicts_conflicts, ArchParams,
};
use lsv_tensor::{ActivationLayout, WeightLayout};
use std::collections::HashSet;

/// Spatial register blocking factors (`RB_w`, `RB_h` of Section 4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegisterBlocking {
    /// Output-width blocking factor.
    pub rb_w: usize,
    /// Output-height blocking factor.
    pub rb_h: usize,
}

impl RegisterBlocking {
    /// Combined factor `RB_w * RB_h` — the quantity Formulas 2-4 constrain.
    #[inline]
    pub fn combined(&self) -> usize {
        self.rb_w * self.rb_h
    }
}

/// Split a combined register-block target into `(RB_w, RB_h)` for a given
/// output shape: fill the width first (unit-stride direction), then add
/// rows. The combined factor may *exceed* the target by a partial row —
/// appropriate when the target is a lower bound (Formula 2).
pub fn split_register_block(target: usize, ow: usize, oh: usize) -> RegisterBlocking {
    let target = target.max(1);
    let rb_w = ow.min(target).max(1);
    let rb_h = oh.min(target.div_ceil(rb_w)).max(1);
    RegisterBlocking { rb_w, rb_h }
}

/// Like [`split_register_block`] but never exceeding the target —
/// appropriate when the target is an upper bound (BDC's Formula 4 conflict
/// bound).
pub fn split_register_block_capped(target: usize, ow: usize, oh: usize) -> RegisterBlocking {
    let target = target.max(1);
    let rb_w = ow.min(target).max(1);
    let rb_h = oh.min((target / rb_w).max(1));
    RegisterBlocking { rb_w, rb_h }
}

/// Micro-kernel loop sizes chosen by the auto-tuner (Algorithm 3's
/// `kh_i`, `kw_i`, `ic_i` outputs). For the backward-data pass `c_i` is the
/// grain of the scalar-summed `OC` loop; the paper's `ic_i` name is kept for
/// the forward orientation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MicroTile {
    /// Kernel-height iterations inside the micro-kernel (`kh_i`).
    pub kh_i: usize,
    /// Kernel-width iterations inside the micro-kernel (`kw_i`).
    pub kw_i: usize,
    /// Scalar-summed channel iterations inside the micro-kernel (`ic_i`).
    pub c_i: usize,
}

/// Algorithm 3: shrink the micro-kernel working set until it fits the LLC,
/// preferring *loop resizing* (halve `ic_i`, floor `2*N_cline`) over *loop
/// reordering* (hoist `KH`, then `KW`, out of the micro-kernel).
///
/// `c_sum` is the scalar-summed channel extent (IC forward, OC backward-
/// data); `c_vec` the vectorized one. `threads` multiplies the activation
/// footprints as prescribed for shared caches (Section 6.1's closing note).
///
/// Beyond the paper: after both reordering steps the loop could still
/// exceed the LLC with `ic_i = IC`; we keep halving down to `N_cline` and
/// then stop unconditionally, guaranteeing termination.
#[allow(clippy::too_many_arguments)]
pub fn autotune_microkernel(
    arch: &ArchParams,
    kh: usize,
    kw: usize,
    c_sum: usize,
    c_vec: usize,
    ih: usize,
    iw: usize,
    rb: RegisterBlocking,
    threads: usize,
) -> MicroTile {
    let ncline = arch.n_cline();
    let cvb = c_vec.min(arch.n_vlen()).max(1);
    let llc_bytes = arch.llc.size;
    let threads = threads.max(1);
    let (mut kh_i, mut kw_i, mut c_i) = (kh, kw, c_sum);
    loop {
        let nih = ih.min(rb.rb_h + kh_i - 1);
        let niw = iw.min(rb.rb_w + kw_i - 1);
        let w_mem = cvb * c_i * kh_i * kw_i;
        let d_mem = cvb * rb.rb_h * rb.rb_w * threads;
        let s_mem = c_i * nih * niw * threads;
        if (w_mem + d_mem + s_mem) * arch.elem_bytes() <= llc_bytes {
            break;
        }
        if c_i > 2 * ncline {
            c_i /= 2;
        } else if kh_i > 1 {
            kh_i = 1;
            c_i = c_sum;
        } else if kw_i > 1 {
            kw_i = 1;
            c_i = c_sum;
        } else if c_i > ncline {
            c_i = (c_i / 2).max(ncline);
        } else {
            break;
        }
    }
    MicroTile { kh_i, kw_i, c_i }
}

/// Complete kernel configuration produced at primitive-creation time — the
/// structure the paper's code-generation engine consumes (Section 6.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelConfig {
    /// Which algorithm this configuration implements.
    pub algorithm: Algorithm,
    /// Which pass it computes.
    pub direction: Direction,
    /// Working SIMD length of all vector instructions
    /// (`vl = min(C_vec, N_vlen)`, Algorithm 2 line 5).
    pub vl: usize,
    /// Spatial register blocking (fwd / bwd-data).
    pub rb: RegisterBlocking,
    /// Channel register blocking for the backward-weights pass (`RB_c`).
    pub rb_c: usize,
    /// Micro-kernel loop grains from the auto-tuner.
    pub tile: MicroTile,
    /// Layout of the `S` tensor.
    pub src_layout: ActivationLayout,
    /// Layout of the `D` tensor.
    pub dst_layout: ActivationLayout,
    /// Layout of the `W` tensor (for `BwdData` the stored tensor is
    /// role-swapped so the vector dimension stays innermost; see
    /// [`KernelConfig::wei_swapped`]).
    pub wei_layout: WeightLayout,
    /// Weights are stored with OC/IC roles swapped (vectorized over IC).
    pub wei_swapped: bool,
    /// For `BwdWeights`: vectorize over IC instead of OC (chosen when
    /// `IC > OC`, Section 4.1).
    pub vec_over_ic: bool,
    /// Number of weight-vector double-buffer registers the generated
    /// micro-kernel rotates through to hide the LLC vector-load latency.
    pub wbuf: usize,
    /// Formula 3 evaluated for this configuration (reported in the CSVs and
    /// validated against measured conflict misses in the tests).
    pub conflicts_predicted: bool,
}

/// Feature-map blocking factor of an activation tensor under `algorithm`:
/// `min(C, N_vlen)` for DC/BDC, `min(C, N_cline)` for MBDC (Table 2).
fn act_cb(arch: &ArchParams, algorithm: Algorithm, c: usize) -> usize {
    match algorithm {
        Algorithm::Dc | Algorithm::Bdc => c.min(arch.n_vlen()).max(1),
        Algorithm::Mbdc => c.min(arch.n_cline()).max(1),
    }
}

/// Scalar-summed channel grain of the weights layout: `IC_b` for DC,
/// `N_cline` after loop resizing for BDC/MBDC (Table 2's "Schedule grain").
fn wei_inner_grain(arch: &ArchParams, algorithm: Algorithm, c: usize) -> usize {
    match algorithm {
        Algorithm::Dc => c.min(arch.n_vlen()).max(1),
        Algorithm::Bdc | Algorithm::Mbdc => c.min(arch.n_cline()).max(1),
    }
}

/// Weight-buffer depth needed to hide the LLC vector-load latency behind
/// `rb_combined` FMAs of `B_seq` instructions each.
fn wbuf_depth(arch: &ArchParams, vl: usize, rb_combined: usize) -> usize {
    // One inner iteration issues rb * B_seq instructions through a
    // `scalar_issue_width`-wide frontend.
    let per_iter =
        ((rb_combined * arch.b_seq).max(1) as u64).div_ceil(arch.scalar_issue_width as u64);
    let lat = arch.lat.llc + arch.vector_occupancy(vl);
    (lat.div_ceil(per_iter.max(1)) as usize + 1).clamp(2, 12)
}

/// Choose the combined register-block target for an algorithm given the
/// scalar-stream parameters (`ab_elems`, effective stride).
fn rb_target(arch: &ArchParams, algorithm: Algorithm, ab_elems: usize, c_str_eff: usize) -> usize {
    match algorithm {
        // State of the art: Formula 2 (met with equality: using more
        // registers buys nothing once the pipelines are full).
        Algorithm::Dc => formula2_rb_min(arch),
        // BDC: Formula 4 range.
        Algorithm::Bdc => bdc_register_block_range(arch, ab_elems, c_str_eff).pick(),
        // MBDC eliminates the conflict bound via the layout, so the
        // dependency bound of Formula 2 is the only constraint.
        Algorithm::Mbdc => formula2_rb_min(arch),
    }
}

/// Build the full kernel configuration for (`arch`, `problem`, `direction`,
/// `algorithm`). `threads` feeds the auto-tuner's shared-cache correction.
pub fn kernel_config(
    arch: &ArchParams,
    p: &ConvProblem,
    direction: Direction,
    algorithm: Algorithm,
    threads: usize,
) -> KernelConfig {
    let n_vlen = arch.n_vlen();
    match direction {
        Direction::Fwd => {
            let vl = p.oc.min(n_vlen);
            let ab = act_cb(arch, algorithm, p.ic);
            let target = rb_target(arch, algorithm, ab, p.stride_w);
            let rb = match algorithm {
                // Formula 4's value is a conflict *upper* bound, additionally
                // capped by the register file.
                Algorithm::Bdc => split_register_block_capped(
                    target.min(arch.n_vregs.saturating_sub(12)).max(1),
                    p.ow(),
                    p.oh(),
                ),
                _ => split_register_block(target, p.ow(), p.oh()),
            };
            let tile = match algorithm {
                Algorithm::Dc => MicroTile {
                    kh_i: p.kh,
                    kw_i: p.kw,
                    c_i: p.ic.min(n_vlen),
                },
                _ => autotune_microkernel(arch, p.kh, p.kw, p.ic, p.oc, p.ih, p.iw, rb, threads),
            };
            KernelConfig {
                algorithm,
                direction,
                vl,
                rb,
                rb_c: 0,
                tile,
                src_layout: ActivationLayout { cb: ab },
                dst_layout: ActivationLayout {
                    cb: act_cb(arch, algorithm, p.oc),
                },
                wei_layout: WeightLayout {
                    icb: wei_inner_grain(arch, algorithm, p.ic),
                    ocb: p.oc.min(n_vlen).max(1),
                },
                wei_swapped: false,
                vec_over_ic: false,
                wbuf: wbuf_depth(arch, vl, rb.combined()),
                conflicts_predicted: formula3_predicts_conflicts(
                    arch,
                    ab,
                    rb.combined(),
                    p.stride_w,
                ),
            }
        }
        Direction::BwdData => {
            // Output is S_diff: vectorize IC, scalar stream over D_diff
            // (unit spatial steps -> effective stride 1; Section 4.1).
            let vl = p.ic.min(n_vlen);
            let ab = act_cb(arch, algorithm, p.oc);
            let target = rb_target(arch, algorithm, ab, 1);
            let rb = match algorithm {
                Algorithm::Bdc => split_register_block_capped(
                    target.min(arch.n_vregs.saturating_sub(12)).max(1),
                    p.iw,
                    p.ih,
                ),
                _ => split_register_block(target, p.iw, p.ih),
            };
            let tile = match algorithm {
                Algorithm::Dc => MicroTile {
                    kh_i: p.kh,
                    kw_i: p.kw,
                    c_i: p.oc.min(n_vlen),
                },
                _ => {
                    autotune_microkernel(arch, p.kh, p.kw, p.oc, p.ic, p.oh(), p.ow(), rb, threads)
                }
            };
            KernelConfig {
                algorithm,
                direction,
                vl,
                rb,
                rb_c: 0,
                tile,
                src_layout: ActivationLayout {
                    cb: act_cb(arch, algorithm, p.ic),
                },
                dst_layout: ActivationLayout { cb: ab },
                // Swapped storage: (IC/vl, OC/grain, KH, KW, grain, vl).
                wei_layout: WeightLayout {
                    icb: wei_inner_grain(arch, algorithm, p.oc),
                    ocb: p.ic.min(n_vlen).max(1),
                },
                wei_swapped: true,
                vec_over_ic: true,
                wbuf: wbuf_depth(arch, vl, rb.combined()),
                conflicts_predicted: formula3_predicts_conflicts(arch, ab, rb.combined(), 1),
            }
        }
        Direction::BwdWeights => {
            // Vectorize the larger feature-map dimension; register-block the
            // smaller one with RB_c (Section 4.1).
            let vec_over_ic = p.ic > p.oc;
            let (c_vec, c_small) = if vec_over_ic {
                (p.ic, p.oc)
            } else {
                (p.oc, p.ic)
            };
            let vl = c_vec.min(n_vlen);
            // Scalar stream walks the *non*-vectorized activation tensor:
            // S when vectorizing OC (stride = conv stride), D when
            // vectorizing IC (unit steps).
            let (ab, c_str_eff) = if vec_over_ic {
                (act_cb(arch, algorithm, p.oc), 1)
            } else {
                (act_cb(arch, algorithm, p.ic), p.stride_w)
            };
            // The Formula 4 range targets the spatial register blocking of
            // the fwd/bwd-data passes; Section 8 observes that fine-tuning
            // the register block "is not as effective in this direction",
            // so every algorithm keeps the Formula 2 target here.
            let target = formula2_rb_min(arch);
            let rb_c = c_small.min(target).max(1);
            KernelConfig {
                algorithm,
                direction,
                vl,
                rb: RegisterBlocking { rb_w: 1, rb_h: 1 },
                rb_c,
                tile: MicroTile {
                    kh_i: p.kh,
                    kw_i: p.kw,
                    c_i: rb_c,
                },
                src_layout: ActivationLayout {
                    cb: act_cb(arch, algorithm, p.ic),
                },
                dst_layout: ActivationLayout {
                    cb: act_cb(arch, algorithm, p.oc),
                },
                // W_diff output layout keeps the vector dimension innermost.
                wei_layout: if vec_over_ic {
                    WeightLayout {
                        icb: wei_inner_grain(arch, algorithm, p.oc),
                        ocb: p.ic.min(n_vlen).max(1),
                    }
                } else {
                    WeightLayout {
                        icb: wei_inner_grain(arch, algorithm, p.ic),
                        ocb: p.oc.min(n_vlen).max(1),
                    }
                },
                wei_swapped: vec_over_ic,
                vec_over_ic,
                wbuf: 4,
                conflicts_predicted: formula3_predicts_conflicts(arch, ab, rb_c, c_str_eff),
            }
        }
    }
}

/// Outcome of the empirical register-block sweep (`lsvconv tune`).
///
/// `generated` raw candidate targets normalize (clamping to the output
/// shape, the register file, and the weight-buffer depth rule) down to
/// `unique` distinct effective configurations — the dedupe that keeps the
/// tuner from simulating the same kernel twice. Each unique configuration is
/// evaluated through the layer store, so `store_hits + simulated` equals the
/// number of slice evaluations issued.
#[derive(Debug, Clone)]
pub struct TuneReport {
    /// Raw candidate targets enumerated.
    pub generated: usize,
    /// Distinct effective configurations after key normalization.
    pub unique: usize,
    /// Slice evaluations served by the layer store.
    pub store_hits: u64,
    /// Slice evaluations actually simulated.
    pub simulated: u64,
    /// Chip cycles of the analytic (Formula-driven) configuration.
    pub analytic_cycles: u64,
    /// Best configuration found by the sweep (ties keep the analytic pick).
    pub best_cfg: KernelConfig,
    /// Chip cycles of the best configuration.
    pub best_cycles: u64,
}

impl TuneReport {
    /// Publish this sweep's counters into a metrics registry under the
    /// `tuner.` namespace.
    pub fn publish_metrics(&self, reg: &lsv_obs::MetricsRegistry) {
        reg.counter_add("tuner.sweeps", 1);
        reg.counter_add("tuner.generated", self.generated as u64);
        reg.counter_add("tuner.unique", self.unique as u64);
        reg.counter_add("tuner.store_hits", self.store_hits);
        reg.counter_add("tuner.simulated", self.simulated);
    }
}

/// Empirically sweep the register-block target for one (problem, direction,
/// algorithm): enumerate every combined target the register file admits,
/// normalize each to its effective [`KernelConfig`], dedupe candidates whose
/// canonical store key coincides, and simulate only the unique survivors
/// (each through the layer store, so a warm store pays for nothing twice).
pub fn tune_empirical(
    arch: &ArchParams,
    problem: &ConvProblem,
    direction: Direction,
    algorithm: Algorithm,
    mode: lsv_vengine::ExecutionMode,
) -> Result<TuneReport, crate::primitive::UnsupportedReason> {
    use crate::perf::{bench_bwdw_parallel_with, bench_minibatch_parallel_with};
    use crate::primitive::ConvDesc;

    let cores = arch.cores.max(1);
    let base = *ConvDesc::new(*problem, direction, algorithm)
        .create(arch, cores)?
        .cfg();
    let budget = arch.n_vregs;

    // Candidate generation: every combined register-block target the
    // register file could admit, normalized exactly like `create` would.
    let mut generated = 0usize;
    let mut seen = HashSet::new();
    let mut unique_cfgs: Vec<KernelConfig> = Vec::new();
    // The key a candidate's evaluation will be cached under (the principal
    // simulated slice): dedupe on the same canonical string.
    let p_key = match direction {
        Direction::BwdWeights => problem.with_minibatch(2.min(problem.n.max(1))),
        _ => problem.with_minibatch(problem.n.div_ceil(cores).clamp(1, 2)),
    };
    let mut admit = |cfg: KernelConfig, unique_cfgs: &mut Vec<KernelConfig>| {
        let key =
            crate::store::slice_key(arch, &p_key, direction, "direct", cores, mode, Some(&cfg));
        if seen.insert(key.canonical().to_string()) {
            unique_cfgs.push(cfg);
        }
    };
    // The analytic configuration is always a candidate (and is evaluated
    // first, so ties keep it).
    admit(base, &mut unique_cfgs);
    match direction {
        Direction::Fwd | Direction::BwdData => {
            let (ow, oh, ab, c_str_eff) = match direction {
                Direction::Fwd => (
                    problem.ow(),
                    problem.oh(),
                    act_cb(arch, algorithm, problem.ic),
                    problem.stride_w,
                ),
                _ => (
                    problem.iw,
                    problem.ih,
                    act_cb(arch, algorithm, problem.oc),
                    1,
                ),
            };
            for target in 1..=budget.saturating_sub(2) {
                generated += 1;
                let mut cfg = base;
                cfg.rb = split_register_block_capped(target, ow, oh);
                cfg.wbuf = wbuf_depth(arch, cfg.vl, cfg.rb.combined());
                // Register-pressure clamp, same rule as `ConvDesc::create`.
                while cfg.rb.combined() + cfg.wbuf > budget {
                    if cfg.rb.rb_h > 1 {
                        cfg.rb.rb_h -= 1;
                    } else if cfg.rb.rb_w > 1 {
                        cfg.rb.rb_w -= 1;
                    } else {
                        break;
                    }
                    cfg.wbuf = wbuf_depth(arch, cfg.vl, cfg.rb.combined());
                }
                if cfg.rb.combined() + cfg.wbuf > budget {
                    continue;
                }
                cfg.conflicts_predicted =
                    formula3_predicts_conflicts(arch, ab, cfg.rb.combined(), c_str_eff);
                admit(cfg, &mut unique_cfgs);
            }
        }
        Direction::BwdWeights => {
            let c_small = if base.vec_over_ic {
                problem.oc
            } else {
                problem.ic
            };
            let (ab, c_str_eff) = if base.vec_over_ic {
                (act_cb(arch, algorithm, problem.oc), 1)
            } else {
                (act_cb(arch, algorithm, problem.ic), problem.stride_w)
            };
            for target in 1..=budget.saturating_sub(2) {
                generated += 1;
                let mut cfg = base;
                cfg.rb_c = c_small.min(target).max(1);
                while cfg.rb_c + cfg.wbuf.max(2) > budget && cfg.rb_c > 1 {
                    cfg.rb_c -= 1;
                }
                if cfg.rb_c + cfg.wbuf.max(2) > budget {
                    continue;
                }
                cfg.tile.c_i = cfg.rb_c;
                cfg.conflicts_predicted =
                    formula3_predicts_conflicts(arch, ab, cfg.rb_c, c_str_eff);
                admit(cfg, &mut unique_cfgs);
            }
        }
    }

    // Evaluate every unique survivor through the store.
    let st = crate::store::store();
    let before = st.stats();
    let mut calls = 0u64;
    let mut analytic_cycles = 0u64;
    let mut best: Option<(u64, KernelConfig)> = None;
    for (i, cfg) in unique_cfgs.iter().enumerate() {
        let slice = match direction {
            Direction::Fwd | Direction::BwdData => {
                calls += 1;
                bench_minibatch_parallel_with(arch, problem, direction, mode, cores, &|p_sim| {
                    ConvDesc::new(p_sim, direction, algorithm).create_with_config(arch, *cfg, cores)
                })
            }
            Direction::BwdWeights => {
                calls += 2;
                bench_bwdw_parallel_with(arch, problem, mode, cores, &|p_sim| {
                    ConvDesc::new(p_sim, direction, algorithm).create_with_config(arch, *cfg, cores)
                })
            }
        };
        if i == 0 {
            analytic_cycles = slice.chip_cycles;
        }
        if best.map(|(c, _)| slice.chip_cycles < c).unwrap_or(true) {
            best = Some((slice.chip_cycles, *cfg));
        }
    }
    let store_hits = st.stats().delta(&before).hits();
    let (best_cycles, best_cfg) = best.expect("at least the analytic candidate");
    Ok(TuneReport {
        generated,
        unique: unique_cfgs.len(),
        store_hits,
        simulated: calls.saturating_sub(store_hits),
        analytic_cycles,
        best_cfg,
        best_cycles,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsv_arch::presets::sx_aurora;

    fn layer(ic: usize, oc: usize, hw: usize, k: usize, s: usize, p: usize) -> ConvProblem {
        ConvProblem::new(256, ic, oc, hw, hw, k, k, s, p)
    }

    #[test]
    fn split_register_block_shapes() {
        let rb = split_register_block(24, 56, 56);
        assert_eq!((rb.rb_w, rb.rb_h), (24, 1));
        let rb = split_register_block(24, 14, 14);
        assert_eq!((rb.rb_w, rb.rb_h), (14, 2));
        let rb = split_register_block(24, 7, 7);
        assert_eq!((rb.rb_w, rb.rb_h), (7, 4));
        let rb = split_register_block(8, 56, 56);
        assert_eq!((rb.rb_w, rb.rb_h), (8, 1));
        // degenerate shapes clamp
        let rb = split_register_block(24, 2, 1);
        assert_eq!((rb.rb_w, rb.rb_h), (2, 1));
    }

    #[test]
    fn dc_conflict_predictions_match_paper_fwdd() {
        // Section 8: conflicts predicted for layers 4,5,8-10,13-18 (fwdd).
        let arch = sx_aurora();
        let layers = crate::tuning::tests::table3();
        let expected = [
            false, false, false, false, true, true, false, false, true, true, true, false, false,
            true, true, true, true, true, true,
        ];
        for (i, l) in layers.iter().enumerate() {
            let cfg = kernel_config(&arch, l, Direction::Fwd, Algorithm::Dc, 8);
            assert_eq!(
                cfg.conflicts_predicted, expected[i],
                "layer {i} fwdd conflict prediction"
            );
        }
    }

    #[test]
    fn dc_conflict_predictions_match_paper_bwdd() {
        // Section 8: conflicts predicted for layers 4,7,9,12,14-18 (bwdd).
        let arch = sx_aurora();
        let layers = table3();
        let expected = [
            false, false, false, false, true, false, false, true, false, true, false, false, true,
            false, true, true, true, true, true,
        ];
        for (i, l) in layers.iter().enumerate() {
            let cfg = kernel_config(&arch, l, Direction::BwdData, Algorithm::Dc, 8);
            assert_eq!(
                cfg.conflicts_predicted, expected[i],
                "layer {i} bwdd conflict prediction"
            );
        }
    }

    #[test]
    fn bdc_rarely_predicts_conflicts() {
        let arch = sx_aurora();
        for (i, l) in table3().iter().enumerate() {
            for dir in [Direction::Fwd, Direction::BwdData] {
                let cfg = kernel_config(&arch, l, dir, Algorithm::Bdc, 8);
                // BDC's RB choice is conflict-free wherever Formula 4 has a
                // non-empty range; only the strided 512-channel layers are
                // borderline.
                if cfg.conflicts_predicted {
                    assert!(
                        l.stride_w > 1,
                        "layer {i} {dir}: BDC conflicts only acceptable on strided layers"
                    );
                }
            }
        }
    }

    #[test]
    fn mbdc_never_predicts_conflicts() {
        let arch = sx_aurora();
        for (i, l) in table3().iter().enumerate() {
            for dir in Direction::ALL {
                let cfg = kernel_config(&arch, l, dir, Algorithm::Mbdc, 8);
                assert!(
                    !cfg.conflicts_predicted,
                    "layer {i} {dir}: MBDC layout must eliminate conflicts"
                );
            }
        }
    }

    #[test]
    fn mbdc_uses_cline_blocked_activations() {
        let arch = sx_aurora();
        let cfg = kernel_config(
            &arch,
            &layer(256, 512, 28, 1, 1, 0),
            Direction::Fwd,
            Algorithm::Mbdc,
            8,
        );
        assert_eq!(cfg.src_layout.cb, 32);
        assert_eq!(cfg.dst_layout.cb, 32);
        assert_eq!(
            cfg.wei_layout.ocb, 512,
            "weights keep the vector dim contiguous"
        );
        assert_eq!(cfg.wei_layout.icb, 32);
    }

    #[test]
    fn dc_uses_vlen_blocked_activations() {
        let arch = sx_aurora();
        let cfg = kernel_config(
            &arch,
            &layer(256, 512, 28, 1, 1, 0),
            Direction::Fwd,
            Algorithm::Dc,
            8,
        );
        assert_eq!(cfg.src_layout.cb, 256, "dynamic C_b = min(IC, N_vlen)");
        assert_eq!(cfg.dst_layout.cb, 512);
        assert_eq!(cfg.vl, 512);
    }

    #[test]
    fn bdc_register_block_respects_formula4_where_dc_conflicts() {
        let arch = sx_aurora();
        let p = layer(512, 512, 28, 1, 1, 0);
        let dc = kernel_config(&arch, &p, Direction::Fwd, Algorithm::Dc, 8);
        let bdc = kernel_config(&arch, &p, Direction::Fwd, Algorithm::Bdc, 8);
        assert_eq!(dc.rb.combined(), 24);
        // Formula 4 on A_b = 512, stride 1: largest conflict-free block 16.
        assert_eq!(bdc.rb.combined(), 16);
        assert!(dc.conflicts_predicted);
        assert!(!bdc.conflicts_predicted);
    }

    #[test]
    fn autotuner_resizes_large_3x3_kernels() {
        // Layer 16-like shape at full vlen blocking would put a 9.4 MB W
        // sub-tensor plus 8 threads of activations in a 16 MB LLC.
        let arch = sx_aurora();
        let rb = RegisterBlocking { rb_w: 7, rb_h: 2 };
        let tile = autotune_microkernel(&arch, 3, 3, 512, 512, 7, 7, rb, 8);
        let w_bytes = 512.min(arch.n_vlen()) * tile.c_i * tile.kh_i * tile.kw_i * 4;
        assert!(w_bytes <= arch.llc.size, "tuned W sub-tensor fits the LLC");
        assert!(
            tile.c_i >= arch.n_cline(),
            "loop resize floor is N_cline-ish"
        );
    }

    #[test]
    fn autotuner_keeps_small_kernels_whole() {
        let arch = sx_aurora();
        let rb = RegisterBlocking { rb_w: 24, rb_h: 1 };
        let tile = autotune_microkernel(&arch, 1, 1, 64, 64, 56, 56, rb, 8);
        assert_eq!(
            tile,
            MicroTile {
                kh_i: 1,
                kw_i: 1,
                c_i: 64
            }
        );
    }

    #[test]
    fn autotuner_terminates_on_adversarial_input() {
        // A pathological shape that cannot fit even after every strategy.
        let arch = sx_aurora();
        let rb = RegisterBlocking { rb_w: 56, rb_h: 1 };
        let tile = autotune_microkernel(&arch, 7, 7, 1 << 20, 1 << 20, 4096, 4096, rb, 64);
        assert!(tile.c_i >= 1, "terminated with a sane tile: {tile:?}");
    }

    #[test]
    fn bwdw_vectorizes_larger_dim() {
        let arch = sx_aurora();
        // OC > IC -> vectorize OC, register-block IC.
        let cfg = kernel_config(
            &arch,
            &layer(64, 256, 56, 1, 1, 0),
            Direction::BwdWeights,
            Algorithm::Dc,
            8,
        );
        assert!(!cfg.vec_over_ic);
        assert_eq!(cfg.vl, 256);
        assert_eq!(cfg.rb_c, 24);
        // IC > OC -> vectorize IC.
        let cfg = kernel_config(
            &arch,
            &layer(256, 64, 56, 1, 1, 0),
            Direction::BwdWeights,
            Algorithm::Dc,
            8,
        );
        assert!(cfg.vec_over_ic);
        assert_eq!(cfg.vl, 256);
        assert_eq!(cfg.rb_c, 24);
    }

    #[test]
    fn wbuf_deepens_for_small_register_blocks() {
        let arch = sx_aurora();
        let small = wbuf_depth(&arch, 512, 8);
        let large = wbuf_depth(&arch, 512, 24);
        assert!(small >= large, "{small} >= {large}");
        assert!(small <= 8 && large >= 2);
    }

    /// The Table 3 layer suite at minibatch 256 (duplicated in `lsv-models`;
    /// kept here so `lsv-conv` tests do not depend on a higher crate).
    pub(crate) fn table3() -> Vec<ConvProblem> {
        let rows: [(usize, usize, usize, usize, usize, usize, usize); 19] = [
            (64, 256, 56, 56, 1, 1, 0),
            (64, 64, 56, 56, 1, 1, 0),
            (64, 64, 56, 56, 3, 1, 1),
            (256, 64, 56, 56, 1, 1, 0),
            (256, 512, 56, 28, 1, 2, 0),
            (256, 128, 56, 28, 1, 2, 0),
            (128, 128, 28, 28, 3, 1, 1),
            (128, 512, 28, 28, 1, 1, 0),
            (512, 128, 28, 28, 1, 1, 0),
            (512, 1024, 28, 14, 1, 2, 0),
            (512, 256, 28, 14, 1, 2, 0),
            (256, 256, 14, 14, 3, 1, 1),
            (256, 1024, 14, 14, 1, 1, 0),
            (1024, 256, 14, 14, 1, 1, 0),
            (1024, 2048, 14, 7, 1, 2, 0),
            (1024, 512, 14, 7, 1, 2, 0),
            (512, 512, 7, 7, 3, 1, 1),
            (512, 2048, 7, 7, 1, 1, 0),
            (2048, 512, 7, 7, 1, 1, 0),
        ];
        rows.iter()
            .map(|&(ic, oc, ihw, _ohw, k, s, pad)| {
                ConvProblem::new(256, ic, oc, ihw, ihw, k, k, s, pad)
            })
            .collect()
    }
}
