//! Detailed multi-core simulation: every core of the chip is simulated
//! against one physically **shared LLC** (Section 7: "a 2-dimensional mesh
//! NoC connects the cores to a shared 16 MB LLC"), so cross-core weight
//! reuse — "sharing the weights tensor data from the LLC" (Section 4.3) —
//! is modelled for real rather than approximated.
//!
//! This is the slow, high-fidelity counterpart of the representative-core
//! model in [`crate::perf`]: per-core L1/L2 are private, all vector and
//! scalar misses walk into the same LLC instance, and chip wall-time is the
//! maximum per-core cycle count. Cores are *executed* sequentially on the
//! host (deterministic); the temporal interleaving of their LLC accesses is
//! therefore approximate — contention is under-, sharing over-estimated —
//! which is documented in DESIGN.md and quantified by the
//! `detailed_vs_representative` test.

use crate::primitive::ConvPrimitive;
use crate::problem::Direction;
use lsv_cache::{shared_llc, LevelStats};
use lsv_vengine::{Arena, CoreStats, ExecutionMode, VCore};

/// Result of a detailed multi-core run.
#[derive(Debug, Clone)]
pub struct MulticoreReport {
    /// Chip wall-clock cycles (slowest core).
    pub wall_cycles: u64,
    /// Per-core statistics in core order.
    pub per_core: Vec<CoreStats>,
    /// Shared-LLC counters (all cores combined).
    pub llc: LevelStats,
}

impl MulticoreReport {
    /// Aggregate instruction counters over all cores.
    pub fn insts(&self) -> lsv_vengine::InstCounters {
        let mut total = lsv_vengine::InstCounters::default();
        for c in &self.per_core {
            total.merge(&c.insts);
        }
        total
    }

    /// Aggregate cache-hierarchy counters over all cores (private L1/L2 plus
    /// each core's view of the shared LLC), invariants checked.
    pub fn cache(&self) -> lsv_cache::HierarchyStats {
        let mut total = lsv_cache::HierarchyStats::default();
        for c in &self.per_core {
            total.merge(&c.cache);
        }
        total.assert_invariants();
        total
    }

    /// Total dynamic instructions over all cores.
    pub fn total_insts(&self) -> u64 {
        self.insts().total()
    }

    /// Aggregate GFLOP/s for a given flop count and clock.
    pub fn gflops(&self, flops: u64, freq_ghz: f64) -> f64 {
        let secs = self.wall_cycles.max(1) as f64 / (freq_ghz * 1e9);
        flops as f64 / secs / 1e9
    }
}

/// The contiguous per-core work ranges the multicore executor uses: `total`
/// work items (minibatch images for fwd/bwd-data, small-dimension blocks for
/// bwd-weights) split into `ceil(total/cores)`-sized chunks, empty tails
/// dropped. This is the *single* definition of the Section 4.3 partitioning —
/// [`execute_multicore`] executes it and the `lsv-analyze` static race
/// detector reasons about it, so they can never drift apart.
pub fn partition_ranges(total: usize, cores: usize) -> Vec<std::ops::Range<usize>> {
    let cores = cores.max(1);
    let per = total.div_ceil(cores).max(1);
    (0..cores)
        .map(|c| (c * per).min(total)..((c + 1) * per).min(total))
        .filter(|r| !r.is_empty())
        .collect()
}

/// Simulate every core of the chip executing its slice of `prim`'s work
/// against a shared LLC. Tensors must already be allocated and filled in
/// `arena`.
///
/// Work partitioning follows Section 4.3: the minibatch for the forward and
/// backward-data passes, the smaller feature-map dimension's `RB_c` blocks
/// for backward-weights (each core then reduces over the whole minibatch).
pub fn execute_multicore(
    prim: &ConvPrimitive,
    arena: &mut Arena,
    tensors: &crate::primitive::ConvTensors,
    mode: ExecutionMode,
) -> MulticoreReport {
    let arch = prim.arch().clone();
    let cores = arch.cores.max(1);
    let n = prim.desc().problem.n;
    let llc = shared_llc(&arch);
    let mut per_core = Vec::with_capacity(cores);
    let mut wall = 0u64;

    match prim.desc().direction {
        Direction::Fwd | Direction::BwdData => {
            for r in partition_ranges(n, cores) {
                let mut core = VCore::new_with_shared_llc(&arch, mode, llc.clone());
                prim.execute_core(&mut core, arena, tensors, r, 0..0);
                let s = core.drain();
                wall = wall.max(s.cycles);
                per_core.push(s);
            }
        }
        Direction::BwdWeights => {
            let blocks = prim.bwdw_small_blocks();
            for r in partition_ranges(blocks, cores) {
                let mut core = VCore::new_with_shared_llc(&arch, mode, llc.clone());
                prim.execute_core(&mut core, arena, tensors, 0..n, r);
                let s = core.drain();
                wall = wall.max(s.cycles);
                per_core.push(s);
            }
        }
    }
    let llc_stats = llc.borrow().stats();
    MulticoreReport {
        wall_cycles: wall,
        per_core,
        llc: llc_stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Algorithm, ConvProblem};
    use crate::ConvDesc;
    use lsv_arch::presets::sx_aurora;

    fn small_problem(n: usize) -> ConvProblem {
        ConvProblem::new(n, 32, 32, 10, 10, 3, 3, 1, 1)
    }

    #[test]
    fn partition_ranges_cover_disjointly() {
        for (total, cores) in [(8, 8), (7, 8), (16, 8), (3, 8), (1, 1), (100, 7), (0, 4)] {
            let ranges = partition_ranges(total, cores);
            assert!(ranges.len() <= cores);
            let mut next = 0;
            for r in &ranges {
                assert_eq!(r.start, next, "contiguous, no gap ({total}/{cores})");
                assert!(r.end > r.start, "no empty ranges survive");
                next = r.end;
            }
            assert_eq!(next, total, "ranges cover exactly [0, total)");
        }
        assert!(partition_ranges(0, 4).is_empty());
        // cores = 0 is clamped, not a panic.
        assert_eq!(partition_ranges(5, 0), vec![0..5]);
    }

    #[test]
    fn multicore_functional_matches_reference() {
        use rand::{Rng, SeedableRng};
        let arch = sx_aurora();
        let p = small_problem(8); // one image per core
        let prim = ConvDesc::new(p, Direction::Fwd, Algorithm::Bdc)
            .create(&arch, arch.cores)
            .unwrap();
        let mut arena = Arena::new();
        let t = prim.alloc_tensors(&mut arena);
        let mut rng = rand::rngs::StdRng::seed_from_u64(5);
        let src: Vec<f32> = (0..p.n * p.ic * p.ih * p.iw)
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect();
        let wei: Vec<f32> = (0..p.oc * p.ic * p.kh * p.kw)
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect();
        t.src.store_nchw(&mut arena, &src);
        prim.store_weights(&mut arena, &t, &wei);
        let report = execute_multicore(&prim, &mut arena, &t, ExecutionMode::Functional);
        assert_eq!(report.per_core.len(), 8, "all eight cores got an image");
        let got = t.dst.load_nchw(&arena);
        let want = crate::naive::forward(&p, &src, &wei);
        let err = crate::naive::max_abs_diff(&got, &want);
        assert!(err < 1e-3, "multicore result wrong: {err}");
        assert!(report.wall_cycles > 0);
    }

    #[test]
    fn shared_llc_sees_cross_core_weight_reuse() {
        let arch = sx_aurora();
        let p = small_problem(8);
        let prim = ConvDesc::new(p, Direction::Fwd, Algorithm::Dc)
            .create(&arch, arch.cores)
            .unwrap();
        let mut arena = Arena::new();
        let t = prim.alloc_tensors(&mut arena);
        let report = execute_multicore(&prim, &mut arena, &t, ExecutionMode::TimingOnly);
        // The weights are read by all 8 cores but fetched from memory once:
        // the shared LLC must show far fewer misses than 8x the W lines.
        let w_lines = (t.wei.elems_padded() * 4).div_ceil(128) as u64;
        assert!(
            report.llc.misses < 8 * w_lines,
            "LLC misses {} should reflect shared W ({} lines)",
            report.llc.misses,
            w_lines
        );
        assert!(report.total_insts() > 0);
    }

    #[test]
    fn bwdw_blocks_partition_across_cores() {
        let arch = sx_aurora();
        let p = ConvProblem::new(4, 64, 48, 8, 8, 1, 1, 1, 0);
        let prim = ConvDesc::new(p, Direction::BwdWeights, Algorithm::Dc)
            .create(&arch, arch.cores)
            .unwrap();
        let blocks = prim.bwdw_small_blocks();
        let mut arena = Arena::new();
        let t = prim.alloc_tensors(&mut arena);
        let report = execute_multicore(&prim, &mut arena, &t, ExecutionMode::TimingOnly);
        assert!(report.per_core.len() <= arch.cores);
        assert!(report.per_core.len() >= blocks.min(arch.cores));
    }

    #[test]
    fn wall_time_close_to_representative_model_per_image() {
        // The detailed simulation and the representative-core extrapolation
        // must agree within a reasonable band on a uniform workload.
        let arch = sx_aurora();
        let p = small_problem(16); // 2 images per core
        let prim = ConvDesc::new(p, Direction::Fwd, Algorithm::Bdc)
            .create(&arch, arch.cores)
            .unwrap();
        let mut arena = Arena::new();
        let t = prim.alloc_tensors(&mut arena);
        let detailed = execute_multicore(&prim, &mut arena, &t, ExecutionMode::TimingOnly);
        let repr = crate::perf::bench_layer(
            &arch,
            &p,
            Direction::Fwd,
            Algorithm::Bdc,
            ExecutionMode::TimingOnly,
        );
        let ratio = detailed.wall_cycles as f64 / repr.cycles.max(1) as f64;
        assert!(
            (0.4..2.5).contains(&ratio),
            "detailed {} vs representative {} (ratio {ratio:.2})",
            detailed.wall_cycles,
            repr.cycles
        );
    }
}
