//! The two-step primitive API of Section 6.5 (modelled on oneDNN):
//!
//! 1. **Problem declaration** — a [`ConvDesc`] (problem + direction +
//!    algorithm) is *created* against an architecture: the auto-tuner and
//!    blocking policies run once, producing a [`ConvPrimitive`] whose
//!    [`crate::KernelConfig`] plays the role of the data structure handed to
//!    the paper's code-generation engine.
//! 2. **Kernel execution** — the primitive allocates its blocked tensors,
//!    imports operands, and replays the generated instruction stream on one
//!    or more simulated cores.

use crate::kernels;
use crate::problem::{Algorithm, ConvProblem, Direction};
use crate::tuning::{kernel_config, KernelConfig};
use lsv_arch::ArchParams;
use lsv_cache::HierarchyStats;
use lsv_tensor::{ActTensor, WeiTensor};
use lsv_vengine::{Arena, CoreStats, InstCounters, VCore};
use std::fmt;
use std::ops::Range;

/// Why a primitive could not be created for a problem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UnsupportedReason {
    /// The register file cannot hold even a minimal accumulator block plus
    /// the weight double-buffer.
    RegisterPressure {
        /// Registers the configuration wanted.
        needed: usize,
        /// Registers the architecture has.
        available: usize,
    },
    /// An external validator (e.g. the `lsv-analyze` linter) rejected the
    /// tuner's configuration.
    Rejected {
        /// The validator's explanation.
        why: String,
    },
}

impl fmt::Display for UnsupportedReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnsupportedReason::RegisterPressure { needed, available } => write!(
                f,
                "register pressure: configuration needs {needed} vector registers, \
                 architecture has {available}"
            ),
            UnsupportedReason::Rejected { why } => {
                write!(f, "configuration rejected by validator: {why}")
            }
        }
    }
}

impl std::error::Error for UnsupportedReason {}

/// The operand tensors of one convolution execution, in their blocked
/// layouts. Which tensor is the *output* depends on the direction:
/// `dst` for forward, `src` for backward-data, `wei` for backward-weights.
#[derive(Debug, Clone, Copy)]
pub struct ConvTensors {
    /// Source activations `S` (or `S_diff` on the backward-data pass).
    pub src: ActTensor,
    /// Weights `W` (or `W_diff` on the backward-weights pass). Role-swapped
    /// storage when the config vectorizes over `IC`.
    pub wei: WeiTensor,
    /// Destination activations `D` (`D_diff` on the backward passes).
    pub dst: ActTensor,
}

/// Execution statistics of one primitive run (one simulated core).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ExecReport {
    /// Simulated cycles.
    pub cycles: u64,
    /// Dynamic instruction counters.
    pub insts: InstCounters,
    /// Cache statistics.
    pub cache: HierarchyStats,
    /// Frontend cycles blocked on scalar load data.
    pub stall_scalar: u64,
    /// Vector-pipe cycles waiting on source registers.
    pub stall_dep: u64,
    /// Vector-pipe cycles waiting on a free FMA port.
    pub stall_port: u64,
    /// Extra cycles from LLC bank serialization of gathers/scatters.
    pub bank_serial_cycles: u64,
}

impl From<CoreStats> for ExecReport {
    fn from(s: CoreStats) -> Self {
        ExecReport {
            cycles: s.cycles,
            insts: s.insts,
            cache: s.cache,
            stall_scalar: s.stall_scalar,
            stall_dep: s.stall_dep,
            stall_port: s.stall_port,
            bank_serial_cycles: s.bank_serial_cycles,
        }
    }
}

impl ExecReport {
    /// The stall counters paired with [`lsv_vengine::STALL_LABELS`] (the one
    /// naming scheme shared by [`CoreStats::stall_breakdown`], the region
    /// profiler and every reporting bin), in label order.
    pub fn stall_breakdown(&self) -> [(&'static str, u64); 4] {
        let cycles = [
            self.stall_scalar,
            self.stall_dep,
            self.stall_port,
            self.bank_serial_cycles,
        ];
        let mut out = [("", 0u64); 4];
        for (slot, (label, c)) in out
            .iter_mut()
            .zip(lsv_vengine::STALL_LABELS.into_iter().zip(cycles))
        {
            *slot = (label, c);
        }
        out
    }
}

/// A convolution problem declaration (step 1 of the two-step API).
///
/// ```
/// use lsv_arch::presets::sx_aurora;
/// use lsv_conv::{Algorithm, ConvDesc, ConvProblem, Direction};
///
/// let arch = sx_aurora();
/// let p = ConvProblem::new(1, 64, 64, 14, 14, 3, 3, 1, 1);
/// let prim = ConvDesc::new(p, Direction::Fwd, Algorithm::Bdc)
///     .create(&arch, 1)
///     .unwrap();
/// // The generated kernel respects the Formula 4 conflict bound:
/// assert!(!prim.cfg().conflicts_predicted);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvDesc {
    /// The convolution geometry.
    pub problem: ConvProblem,
    /// The training pass.
    pub direction: Direction,
    /// The algorithm to generate code for.
    pub algorithm: Algorithm,
}

impl ConvDesc {
    /// Convenience constructor.
    pub fn new(problem: ConvProblem, direction: Direction, algorithm: Algorithm) -> Self {
        Self {
            problem,
            direction,
            algorithm,
        }
    }

    /// Create the primitive: run the blocking policies and the auto-tuner
    /// (the "code generation" step). `threads` is the number of cores that
    /// will execute concurrently (feeds the tuner's shared-cache correction).
    pub fn create(
        &self,
        arch: &ArchParams,
        threads: usize,
    ) -> Result<ConvPrimitive, UnsupportedReason> {
        let mut cfg = kernel_config(arch, &self.problem, self.direction, self.algorithm, threads);
        // Register-pressure fallback: shrink the register block until the
        // accumulators plus the weight buffers fit the register file.
        let budget = arch.n_vregs;
        let acc = |c: &KernelConfig| match self.direction {
            Direction::BwdWeights => c.rb_c + c.wbuf.max(2),
            _ => c.rb.combined() + c.wbuf,
        };
        while acc(&cfg) > budget {
            match self.direction {
                Direction::BwdWeights if cfg.rb_c > 1 => cfg.rb_c -= 1,
                Direction::BwdWeights => {
                    return Err(UnsupportedReason::RegisterPressure {
                        needed: acc(&cfg),
                        available: budget,
                    })
                }
                _ => {
                    if cfg.rb.rb_h > 1 {
                        cfg.rb.rb_h -= 1;
                    } else if cfg.rb.rb_w > 1 {
                        cfg.rb.rb_w -= 1;
                    } else {
                        return Err(UnsupportedReason::RegisterPressure {
                            needed: acc(&cfg),
                            available: budget,
                        });
                    }
                }
            }
        }
        Ok(ConvPrimitive {
            arch: arch.clone(),
            desc: *self,
            cfg,
            threads: threads.max(1),
        })
    }

    /// Like [`ConvDesc::create`], additionally passing the tuned
    /// configuration through an external `validator` before committing to
    /// it. A validator error becomes [`UnsupportedReason::Rejected`], so a
    /// caller can treat "the linter denies this kernel" exactly like any
    /// other unsupported-primitive condition.
    ///
    /// The validator hook keeps the dependency arrow pointing one way:
    /// `lsv-analyze` depends on this crate and supplies the closure; this
    /// crate never needs to know the linter exists.
    pub fn create_validated(
        &self,
        arch: &ArchParams,
        threads: usize,
        validator: &dyn Fn(&ArchParams, &ConvProblem, &KernelConfig) -> Result<(), String>,
    ) -> Result<ConvPrimitive, UnsupportedReason> {
        let prim = self.create(arch, threads)?;
        validator(arch, &self.problem, &prim.cfg)
            .map_err(|why| UnsupportedReason::Rejected { why })?;
        Ok(prim)
    }

    /// Create a primitive with an explicit configuration, bypassing the
    /// tuner (used by the ablation benches to sweep individual optimization
    /// variables).
    ///
    /// # Panics
    /// Panics if the configuration exceeds the register file.
    pub fn create_with_config(
        &self,
        arch: &ArchParams,
        cfg: KernelConfig,
        threads: usize,
    ) -> ConvPrimitive {
        let needed = match self.direction {
            Direction::BwdWeights => cfg.rb_c + cfg.wbuf.max(2),
            _ => cfg.rb.combined() + cfg.wbuf,
        };
        assert!(
            needed <= arch.n_vregs,
            "override config needs {needed} registers, architecture has {}",
            arch.n_vregs
        );
        ConvPrimitive {
            arch: arch.clone(),
            desc: *self,
            cfg,
            threads: threads.max(1),
        }
    }
}

/// A created convolution primitive (step 2 of the two-step API): layouts and
/// blocking are frozen; `execute_core` replays the generated kernel.
#[derive(Debug, Clone)]
pub struct ConvPrimitive {
    arch: ArchParams,
    desc: ConvDesc,
    cfg: KernelConfig,
    threads: usize,
}

impl ConvPrimitive {
    /// The frozen kernel configuration.
    pub fn cfg(&self) -> &KernelConfig {
        &self.cfg
    }

    /// The descriptor this primitive was created from.
    pub fn desc(&self) -> &ConvDesc {
        &self.desc
    }

    /// The architecture the kernel was generated for.
    pub fn arch(&self) -> &ArchParams {
        &self.arch
    }

    /// The concurrency the primitive was tuned for.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Number of `RB_c` blocks of the smaller feature-map dimension
    /// (the parallel loop of the backward-weights pass).
    pub fn bwdw_small_blocks(&self) -> usize {
        let p = &self.desc.problem;
        let small = if self.cfg.vec_over_ic { p.oc } else { p.ic };
        small.div_ceil(self.cfg.rb_c.max(1))
    }

    /// Allocate the operand tensors in their blocked layouts.
    pub fn alloc_tensors(&self, arena: &mut Arena) -> ConvTensors {
        let p = &self.desc.problem;
        let src = ActTensor::alloc(arena, p.n, p.ic, p.ih, p.iw, self.cfg.src_layout);
        let dst = ActTensor::alloc(arena, p.n, p.oc, p.oh(), p.ow(), self.cfg.dst_layout);
        let wei = if self.cfg.wei_swapped {
            WeiTensor::alloc(arena, p.ic, p.oc, p.kh, p.kw, self.cfg.wei_layout)
        } else {
            WeiTensor::alloc(arena, p.oc, p.ic, p.kh, p.kw, self.cfg.wei_layout)
        };
        ConvTensors { src, wei, dst }
    }

    /// Import a logical OIHW weights buffer into the (possibly role-swapped)
    /// blocked tensor.
    pub fn store_weights(&self, arena: &mut Arena, t: &ConvTensors, oihw: &[f32]) {
        let p = &self.desc.problem;
        assert_eq!(oihw.len(), p.oc * p.ic * p.kh * p.kw);
        if self.cfg.wei_swapped {
            // Stored as (ic-major): transpose the logical view.
            let mut swapped = vec![0.0f32; oihw.len()];
            for oc in 0..p.oc {
                for ic in 0..p.ic {
                    for kh in 0..p.kh {
                        for kw in 0..p.kw {
                            swapped[((ic * p.oc + oc) * p.kh + kh) * p.kw + kw] =
                                oihw[((oc * p.ic + ic) * p.kh + kh) * p.kw + kw];
                        }
                    }
                }
            }
            t.wei.store_oihw(arena, &swapped);
        } else {
            t.wei.store_oihw(arena, oihw);
        }
    }

    /// Export the blocked weights tensor to a logical OIHW buffer.
    pub fn load_weights(&self, arena: &Arena, t: &ConvTensors) -> Vec<f32> {
        let p = &self.desc.problem;
        let raw = t.wei.load_oihw(arena);
        if self.cfg.wei_swapped {
            let mut out = vec![0.0f32; raw.len()];
            for ic in 0..p.ic {
                for oc in 0..p.oc {
                    for kh in 0..p.kh {
                        for kw in 0..p.kw {
                            out[((oc * p.ic + ic) * p.kh + kh) * p.kw + kw] =
                                raw[((ic * p.oc + oc) * p.kh + kh) * p.kw + kw];
                        }
                    }
                }
            }
            out
        } else {
            raw
        }
    }

    /// Execute the kernel for a slice of the work on one simulated core.
    ///
    /// * Forward / backward-data: `n_range` selects the images
    ///   (the minibatch is the parallel loop, Section 4.3).
    /// * Backward-weights: `small_blocks` selects the `RB_c` blocks of the
    ///   smaller feature-map dimension (that loop is parallel); `n_range`
    ///   selects the reduction slice (full range for exact results).
    pub fn execute_core(
        &self,
        core: &mut VCore,
        arena: &mut Arena,
        t: &ConvTensors,
        n_range: Range<usize>,
        small_blocks: Range<usize>,
    ) {
        let p = &self.desc.problem;
        match self.desc.direction {
            Direction::Fwd => {
                kernels::fwd::run(&self.cfg, p, core, arena, &t.src, &t.wei, &t.dst, n_range)
            }
            Direction::BwdData => {
                kernels::bwd_data::run(&self.cfg, p, core, arena, &t.src, &t.wei, &t.dst, n_range)
            }
            Direction::BwdWeights => kernels::bwd_weights::run(
                &self.cfg,
                p,
                core,
                arena,
                &t.src,
                &t.wei,
                &t.dst,
                small_blocks,
                n_range,
            ),
        }
    }

    /// Import the direction's *input* operands from logical NCHW/OIHW
    /// buffers into the blocked arena tensors: `src` + `wei` for forward,
    /// `dst` + `wei` for backward-data, `src` + `dst` for backward-weights.
    /// The direction's output operand is left untouched. This is the single
    /// definition of the per-direction operand-import match — every backend,
    /// the fuzz harness and the tests go through it.
    pub fn import_operands(
        &self,
        arena: &mut Arena,
        t: &ConvTensors,
        src_nchw: &[f32],
        wei_oihw: &[f32],
        dst_nchw: &[f32],
    ) {
        match self.desc.direction {
            Direction::Fwd => {
                t.src.store_nchw(arena, src_nchw);
                self.store_weights(arena, t, wei_oihw);
            }
            Direction::BwdData => {
                t.dst.store_nchw(arena, dst_nchw);
                self.store_weights(arena, t, wei_oihw);
            }
            Direction::BwdWeights => {
                t.src.store_nchw(arena, src_nchw);
                t.dst.store_nchw(arena, dst_nchw);
            }
        }
    }

    /// Read the direction's *output* operand back as a logical buffer
    /// (NCHW for the data passes, OIHW for backward-weights) — the readback
    /// counterpart of [`ConvPrimitive::import_operands`].
    pub fn read_output(&self, arena: &Arena, t: &ConvTensors) -> Vec<f32> {
        match self.desc.direction {
            Direction::Fwd => t.dst.load_nchw(arena),
            Direction::BwdData => t.src.load_nchw(arena),
            Direction::BwdWeights => self.load_weights(arena, t),
        }
    }

    /// Single-shot run of the whole problem on an arbitrary backend:
    /// allocates tensors, imports the given operands, executes the full work
    /// range on one core's worth of state, and reads the output back.
    /// Operands are logical NCHW/OIHW buffers.
    pub fn run_with_backend(
        &self,
        backend: &dyn crate::backend::ExecBackend,
        src_nchw: &[f32],
        wei_oihw: &[f32],
        dst_nchw: &[f32],
    ) -> (Vec<f32>, ExecReport) {
        let p = &self.desc.problem;
        let mut arena = Arena::new();
        let t = self.alloc_tensors(&mut arena);
        self.import_operands(&mut arena, &t, src_nchw, wei_oihw, dst_nchw);
        let report =
            backend.execute_slice(self, &mut arena, &t, 0..p.n, 0..self.bwdw_small_blocks());
        (self.read_output(&arena, &t), report)
    }

    /// Convenience single-core functional run over the whole problem on the
    /// simulator backend ([`crate::backend::SimBackend`] in Functional
    /// mode). Operands are logical NCHW/OIHW buffers.
    pub fn run_functional(
        &self,
        src_nchw: &[f32],
        wei_oihw: &[f32],
        dst_nchw: &[f32],
    ) -> (Vec<f32>, ExecReport) {
        self.run_with_backend(
            &crate::backend::SimBackend::functional(),
            src_nchw,
            wei_oihw,
            dst_nchw,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsv_arch::presets::sx_aurora;

    fn problem() -> ConvProblem {
        ConvProblem::new(2, 12, 20, 8, 8, 3, 3, 1, 1)
    }

    #[test]
    fn two_step_api_creates_and_describes() {
        let arch = sx_aurora();
        let desc = ConvDesc::new(problem(), Direction::Fwd, Algorithm::Bdc);
        let prim = desc.create(&arch, 4).unwrap();
        assert_eq!(prim.desc(), &desc);
        assert_eq!(prim.threads(), 4);
        assert_eq!(prim.arch().name, arch.name);
        assert!(prim.cfg().vl <= arch.n_vlen());
    }

    #[test]
    fn alloc_tensors_use_configured_layouts() {
        let arch = sx_aurora();
        for alg in Algorithm::ALL {
            let prim = ConvDesc::new(problem(), Direction::Fwd, alg)
                .create(&arch, 1)
                .unwrap();
            let mut arena = lsv_vengine::Arena::new();
            let t = prim.alloc_tensors(&mut arena);
            assert_eq!(t.src.layout, prim.cfg().src_layout, "{alg}");
            assert_eq!(t.dst.layout, prim.cfg().dst_layout, "{alg}");
            assert_eq!(t.wei.layout, prim.cfg().wei_layout, "{alg}");
        }
    }

    #[test]
    fn swapped_weights_roundtrip() {
        // BwdData stores weights role-swapped; store + load must be the
        // identity on the logical OIHW view.
        let arch = sx_aurora();
        let p = problem();
        let prim = ConvDesc::new(p, Direction::BwdData, Algorithm::Dc)
            .create(&arch, 1)
            .unwrap();
        assert!(prim.cfg().wei_swapped);
        let mut arena = lsv_vengine::Arena::new();
        let t = prim.alloc_tensors(&mut arena);
        let oihw: Vec<f32> = (0..p.oc * p.ic * p.kh * p.kw).map(|i| i as f32).collect();
        prim.store_weights(&mut arena, &t, &oihw);
        assert_eq!(prim.load_weights(&arena, &t), oihw);
        // The swapped tensor's dimensions are transposed.
        assert_eq!(t.wei.oc, p.ic);
        assert_eq!(t.wei.ic, p.oc);
    }

    #[test]
    fn bwdw_small_blocks_partition_smaller_dim() {
        let arch = sx_aurora();
        // OC(20) < IC? no: IC=12 < OC=20 -> vectorize OC, small dim = IC.
        let prim = ConvDesc::new(problem(), Direction::BwdWeights, Algorithm::Dc)
            .create(&arch, 1)
            .unwrap();
        assert!(!prim.cfg().vec_over_ic);
        let blocks = prim.bwdw_small_blocks();
        assert_eq!(blocks, 12usize.div_ceil(prim.cfg().rb_c));
    }

    #[test]
    fn unsupported_reason_is_displayable() {
        let e = UnsupportedReason::RegisterPressure {
            needed: 99,
            available: 64,
        };
        let s = format!("{e}");
        assert!(s.contains("99") && s.contains("64"));
    }

    #[test]
    #[should_panic(expected = "register")]
    fn create_with_config_rejects_register_overflow() {
        let arch = sx_aurora();
        let desc = ConvDesc::new(problem(), Direction::Fwd, Algorithm::Dc);
        let mut cfg = *desc.create(&arch, 1).unwrap().cfg();
        cfg.rb.rb_w = 60;
        cfg.rb.rb_h = 2;
        desc.create_with_config(&arch, cfg, 1);
    }

    #[test]
    fn exec_report_from_core_stats() {
        let arch = sx_aurora();
        let mut core = lsv_vengine::VCore::new(&arch, lsv_vengine::ExecutionMode::TimingOnly, 1);
        core.scalar_op();
        let report = ExecReport::from(core.drain());
        assert_eq!(report.insts.scalar_ops, 1);
    }

    #[test]
    fn run_functional_all_directions_produce_output() {
        let arch = sx_aurora();
        let p = problem();
        let src = vec![0.5f32; p.n * p.ic * p.ih * p.iw];
        let wei = vec![0.25f32; p.oc * p.ic * p.kh * p.kw];
        let dst = vec![1.0f32; p.n * p.oc * p.oh() * p.ow()];
        for dir in Direction::ALL {
            let prim = ConvDesc::new(p, dir, Algorithm::Mbdc)
                .create(&arch, 1)
                .unwrap();
            let (out, report) = prim.run_functional(&src, &wei, &dst);
            let expected_len = match dir {
                Direction::Fwd => dst.len(),
                Direction::BwdData => src.len(),
                Direction::BwdWeights => wei.len(),
            };
            assert_eq!(out.len(), expected_len, "{dir}");
            assert!(report.cycles > 0 && report.insts.vfmas > 0, "{dir}");
        }
    }
}
