//! Whole-network model runner: schedule every convolution of a model
//! (inference = forward; training step = all three directions) on the
//! 8-core shared-LLC execution model, with the best algorithm per
//! (layer, direction) chosen analytically or by the empirical tuner.
//!
//! The runner is the model-level counterpart of [`crate::perf::bench_layer`]:
//! every slice evaluation — analytic benches and [`tune_empirical`] sweep
//! candidates alike — goes through the content-addressed layer store, so a
//! warm store replays a whole-model plan without re-simulating anything.
//! The representative-core model keys slices on `min(images_per_core, 2)`
//! simulated images, which makes batch-size sweeps (the serving harness's
//! latency tables) nearly free: all minibatches with two or more images per
//! core share one store entry per (layer, direction, kernel config).
//!
//! The runner is model-agnostic: it consumes a list of [`LayerSpec`]s
//! (problem + occurrence count), so `lsv-models` stays a dependency of the
//! callers (`lsv-serve`, the bench bins), not of this crate.
//!
//! Fidelity: the plan's per-entry times come from the representative-core
//! model; [`ModelRunner::execute_entry_detailed`] runs the same entry
//! through the detailed all-cores simulation ([`execute_multicore`], shared
//! LLC) for cross-checks — the conservation tests pin the two against each
//! other.

use crate::multicore::{execute_multicore, MulticoreReport};
use crate::perf::bench_layer;
use crate::primitive::ConvDesc;
use crate::problem::{Algorithm, ConvProblem, Direction};
use crate::store;
use crate::tuning::tune_empirical;
use lsv_arch::ArchParams;
use lsv_vengine::{Arena, ExecutionMode};

/// One distinct convolution shape of a model and how often it occurs per
/// pass (e.g. a Table 3 layer and its ResNet frequency).
#[derive(Debug, Clone)]
pub struct LayerSpec {
    /// The convolution (its `n` is the minibatch the model runs at).
    pub problem: ConvProblem,
    /// Occurrences of this shape in one pass over the model.
    pub count: usize,
}

impl LayerSpec {
    /// A layer occurring `count` times per pass.
    pub fn new(problem: ConvProblem, count: usize) -> Self {
        Self { problem, count }
    }
}

/// What one request to the model executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pass {
    /// Forward only.
    Inference,
    /// Forward + backward-data + backward-weights (one training step).
    TrainingStep,
}

impl Pass {
    /// The directions this pass executes, in schedule order.
    pub fn directions(self) -> &'static [Direction] {
        match self {
            Pass::Inference => &[Direction::Fwd],
            Pass::TrainingStep => &Direction::ALL,
        }
    }

    /// Short name used in CSV/JSON artifacts.
    pub fn name(self) -> &'static str {
        match self {
            Pass::Inference => "infer",
            Pass::TrainingStep => "train",
        }
    }
}

/// How the runner picks the kernel for each (layer, direction).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TunePolicy {
    /// Compare the three direct algorithms under their analytic (Formula 2/4)
    /// register blocking and keep the fastest.
    #[default]
    Analytic,
    /// Run the empirical register-block sweep ([`tune_empirical`]) for every
    /// algorithm and keep the fastest tuned kernel. Store-backed: expensive
    /// once, free on replay.
    Empirical,
}

/// The chosen kernel and its cost for one (layer, direction).
#[derive(Debug, Clone)]
pub struct PlanEntry {
    /// Index into the runner's layer list.
    pub layer: usize,
    /// Pass direction.
    pub direction: Direction,
    /// Winning algorithm.
    pub algorithm: Algorithm,
    /// Occurrences per pass (copied from the [`LayerSpec`]).
    pub count: usize,
    /// Chip wall-clock cycles for one occurrence (whole minibatch).
    pub cycles: u64,
    /// Wall time of one occurrence in milliseconds.
    pub time_ms: f64,
    /// Cycles of the winning algorithm under its *analytic* configuration;
    /// equals `cycles` unless the empirical sweep found a faster kernel.
    pub analytic_cycles: u64,
}

/// A static schedule for one pass over the model: one entry per
/// (layer, direction), plus the store traffic planning generated.
#[derive(Debug, Clone)]
pub struct ModelPlan {
    /// One entry per (layer, direction), layers outer, directions inner.
    pub entries: Vec<PlanEntry>,
    /// Store lookups served from memory or disk while planning.
    pub store_hits: u64,
    /// Slices actually simulated while planning (0 on a warm replay).
    pub simulated: u64,
}

impl ModelPlan {
    /// Chip cycles of one pass: sum of `cycles x count` over all entries.
    pub fn total_cycles(&self) -> u64 {
        self.entries.iter().map(|e| e.cycles * e.count as u64).sum()
    }

    /// Wall milliseconds of one pass: sum of `time_ms x count`.
    pub fn total_time_ms(&self) -> f64 {
        self.entries
            .iter()
            .map(|e| e.time_ms * e.count as f64)
            .sum()
    }

    /// The entry for one (layer, direction), if planned.
    pub fn entry(&self, layer: usize, direction: Direction) -> Option<&PlanEntry> {
        self.entries
            .iter()
            .find(|e| e.layer == layer && e.direction == direction)
    }

    /// Publish this plan's provenance into a metrics registry under the
    /// `runner.` namespace.
    pub fn publish_metrics(&self, reg: &lsv_obs::MetricsRegistry) {
        reg.counter_add("runner.plans", 1);
        reg.counter_add("runner.store_hits", self.store_hits);
        reg.counter_add("runner.simulated", self.simulated);
        reg.observe("runner.plan_total_ms", self.total_time_ms());
    }
}

/// Executes a whole model (a list of [`LayerSpec`]s) for one [`Pass`] on
/// the 8-core execution model.
#[derive(Debug, Clone)]
pub struct ModelRunner {
    arch: ArchParams,
    layers: Vec<LayerSpec>,
    pass: Pass,
    tune: TunePolicy,
    mode: ExecutionMode,
}

impl ModelRunner {
    /// A runner for `layers` executing `pass`, with the analytic kernel
    /// policy and timing-only simulation.
    pub fn new(arch: &ArchParams, layers: Vec<LayerSpec>, pass: Pass) -> Self {
        Self {
            arch: arch.clone(),
            layers,
            pass,
            tune: TunePolicy::Analytic,
            mode: ExecutionMode::TimingOnly,
        }
    }

    /// Select the kernel policy (builder style).
    pub fn with_tune(mut self, tune: TunePolicy) -> Self {
        self.tune = tune;
        self
    }

    /// Select the simulation mode (builder style).
    pub fn with_mode(mut self, mode: ExecutionMode) -> Self {
        self.mode = mode;
        self
    }

    /// The runner's layer list.
    pub fn layers(&self) -> &[LayerSpec] {
        &self.layers
    }

    /// The pass this runner executes.
    pub fn pass(&self) -> Pass {
        self.pass
    }

    /// Plan one pass, picking the best algorithm per (layer, direction)
    /// under the runner's [`TunePolicy`].
    pub fn plan(&self) -> ModelPlan {
        self.plan_with(&Algorithm::ALL)
    }

    /// Plan one pass with a single fixed algorithm everywhere (the
    /// baseline-comparison path; still store-backed).
    pub fn plan_fixed(&self, algorithm: Algorithm) -> ModelPlan {
        self.plan_with(&[algorithm])
    }

    fn plan_with(&self, candidates: &[Algorithm]) -> ModelPlan {
        let before = store::store().stats();
        let jobs: Vec<(usize, Direction)> = (0..self.layers.len())
            .flat_map(|l| self.pass.directions().iter().map(move |&d| (l, d)))
            .collect();
        let entries = par_map_ordered(jobs, |(layer, direction)| {
            self.plan_entry(layer, direction, candidates)
        });
        let delta = store::store().stats().delta(&before);
        ModelPlan {
            entries,
            store_hits: delta.hits(),
            simulated: delta.misses,
        }
    }

    fn plan_entry(
        &self,
        layer: usize,
        direction: Direction,
        candidates: &[Algorithm],
    ) -> PlanEntry {
        let spec = &self.layers[layer];
        let mut best: Option<(Algorithm, u64, u64)> = None; // (alg, cycles, analytic)
        for &alg in candidates {
            // Skip algorithms the register file cannot host for this shape
            // (the same gate `ConvDesc::create` applies).
            if ConvDesc::new(spec.problem, direction, alg)
                .create(&self.arch, self.arch.cores)
                .is_err()
            {
                continue;
            }
            let (cycles, analytic) = match self.tune {
                TunePolicy::Analytic => {
                    let perf = bench_layer(&self.arch, &spec.problem, direction, alg, self.mode);
                    (perf.cycles, perf.cycles)
                }
                TunePolicy::Empirical => {
                    match tune_empirical(&self.arch, &spec.problem, direction, alg, self.mode) {
                        Ok(t) => (t.best_cycles, t.analytic_cycles),
                        Err(_) => continue,
                    }
                }
            };
            if best.map(|(_, c, _)| cycles < c).unwrap_or(true) {
                best = Some((alg, cycles, analytic));
            }
        }
        let (algorithm, cycles, analytic_cycles) = best.unwrap_or_else(|| {
            panic!(
                "no direct algorithm supports layer {layer} ({}) {direction}",
                spec.problem
            )
        });
        PlanEntry {
            layer,
            direction,
            algorithm,
            count: spec.count,
            cycles,
            time_ms: self.cycles_to_ms(cycles),
            analytic_cycles,
        }
    }

    fn cycles_to_ms(&self, cycles: u64) -> f64 {
        cycles as f64 / (self.arch.freq_ghz * 1e6)
    }

    /// Run one plan entry through the detailed all-cores simulation (every
    /// core's slice against the shared LLC) instead of the representative-
    /// core extrapolation. Used to cross-check the static schedule; the
    /// entry executes under its winning algorithm's *analytic*
    /// configuration.
    pub fn execute_entry_detailed(&self, entry: &PlanEntry) -> MulticoreReport {
        let spec = &self.layers[entry.layer];
        let prim = ConvDesc::new(spec.problem, entry.direction, entry.algorithm)
            .create(&self.arch, self.arch.cores)
            .expect("planned entry must be creatable");
        let mut arena = Arena::new();
        let tensors = prim.alloc_tensors(&mut arena);
        execute_multicore(&prim, &mut arena, &tensors, self.mode)
    }
}

/// Minimal order-preserving scoped-thread map (the bench crate's `par_map`
/// is not visible from here; plan jobs are independent and store access is
/// thread-safe).
fn par_map_ordered<I, O, F>(items: Vec<I>, f: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;
    let n = items.len();
    let threads = std::thread::available_parallelism()
        .map(|t| t.get())
        .unwrap_or(1)
        .min(n.max(1));
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let slots: Vec<Mutex<Option<I>>> = items.into_iter().map(|i| Mutex::new(Some(i))).collect();
    let results: Vec<Mutex<Option<O>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i].lock().unwrap().take().expect("claimed once");
                let out = f(item);
                *results[i].lock().unwrap() = Some(out);
            });
        }
    });
    results
        .into_iter()
        .map(|m| m.into_inner().unwrap().expect("job completed"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lsv_arch::presets::sx_aurora;

    fn two_layer_model(n: usize) -> Vec<LayerSpec> {
        vec![
            LayerSpec::new(ConvProblem::new(n, 32, 32, 10, 10, 3, 3, 1, 1), 2),
            LayerSpec::new(ConvProblem::new(n, 64, 16, 8, 8, 1, 1, 1, 0), 1),
        ]
    }

    #[test]
    fn inference_plan_covers_every_layer_once() {
        let arch = sx_aurora();
        let runner = ModelRunner::new(&arch, two_layer_model(8), Pass::Inference);
        let plan = runner.plan();
        assert_eq!(plan.entries.len(), 2);
        assert!(plan.entries.iter().all(|e| e.direction == Direction::Fwd));
        assert!(plan.total_cycles() > 0);
        // Totals are the weighted per-entry sums (the conservation law the
        // serving harness relies on).
        let hand: f64 = plan
            .entries
            .iter()
            .map(|e| e.time_ms * e.count as f64)
            .sum();
        assert!((plan.total_time_ms() - hand).abs() < 1e-12);
    }

    #[test]
    fn training_plan_covers_all_three_directions() {
        let arch = sx_aurora();
        let runner = ModelRunner::new(&arch, two_layer_model(8), Pass::TrainingStep);
        let plan = runner.plan();
        assert_eq!(plan.entries.len(), 6);
        for d in Direction::ALL {
            assert!(plan.entries.iter().filter(|e| e.direction == d).count() == 2);
        }
    }

    #[test]
    fn fixed_plan_never_beats_the_picked_plan() {
        let arch = sx_aurora();
        let runner = ModelRunner::new(&arch, two_layer_model(8), Pass::Inference);
        let picked = runner.plan();
        for alg in Algorithm::ALL {
            let fixed = runner.plan_fixed(alg);
            assert!(
                picked.total_cycles() <= fixed.total_cycles(),
                "plan() must be at least as fast as fixed {alg}"
            );
        }
    }

    #[test]
    fn warm_replay_simulates_nothing() {
        let arch = sx_aurora();
        let runner = ModelRunner::new(&arch, two_layer_model(8), Pass::Inference);
        let cold = runner.plan();
        let warm = runner.plan();
        assert_eq!(warm.simulated, 0, "second plan must be store-served");
        assert_eq!(cold.total_cycles(), warm.total_cycles());
    }

    #[test]
    fn empirical_plan_is_no_slower_than_analytic() {
        let arch = sx_aurora();
        let layers = vec![LayerSpec::new(
            ConvProblem::new(8, 32, 32, 10, 10, 3, 3, 1, 1),
            1,
        )];
        let analytic = ModelRunner::new(&arch, layers.clone(), Pass::Inference).plan();
        let tuned = ModelRunner::new(&arch, layers, Pass::Inference)
            .with_tune(TunePolicy::Empirical)
            .plan();
        assert!(tuned.total_cycles() <= analytic.total_cycles());
        for e in &tuned.entries {
            assert!(e.cycles <= e.analytic_cycles);
        }
    }

    #[test]
    fn detailed_execution_agrees_with_the_static_schedule() {
        // The representative-core extrapolation and the all-cores detailed
        // simulation must agree within a modest band on a uniform workload.
        let arch = sx_aurora();
        let layers = vec![LayerSpec::new(
            ConvProblem::new(16, 32, 32, 10, 10, 3, 3, 1, 1),
            1,
        )];
        let runner = ModelRunner::new(&arch, layers, Pass::Inference);
        let plan = runner.plan();
        let entry = &plan.entries[0];
        let detailed = runner.execute_entry_detailed(entry);
        let ratio = detailed.wall_cycles as f64 / entry.cycles as f64;
        assert!(
            (0.7..1.3).contains(&ratio),
            "detailed/static cycle ratio {ratio:.3} out of band"
        );
    }
}
