//! Micro-kernel memory footprint analysis (Section 5.1, Figure 2).
//!
//! The micro-kernel region of Algorithm 2 touches:
//!
//! * `OC_b * IC_b * KH * KW` weight elements,
//! * `IC_b * min(RB_h + KH, IH) * min(RB_w + KW, IW)` source elements,
//! * `OC_b * RB_h * RB_w` destination elements,
//!
//! and because `IC_b` and `OC_b` are both tied to `N_vlen` in the
//! state-of-the-art formulation, the weights sub-tensor grows quadratically
//! with the vector length — the Figure 2 curve.

use crate::problem::ConvProblem;
use crate::tuning::RegisterBlocking;
use lsv_arch::ArchParams;

/// Byte footprints of the three micro-kernel sub-tensors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MicroKernelFootprint {
    /// Weights sub-tensor bytes.
    pub weights: usize,
    /// Source activation sub-tensor bytes.
    pub source: usize,
    /// Destination sub-tensor bytes.
    pub destination: usize,
}

impl MicroKernelFootprint {
    /// Combined footprint in bytes.
    pub fn total(&self) -> usize {
        self.weights + self.source + self.destination
    }

    /// Combined footprint in mebibytes (the Figure 2 y-axis).
    pub fn total_mib(&self) -> f64 {
        self.total() as f64 / (1024.0 * 1024.0)
    }
}

/// Footprint of the state-of-the-art micro-kernel (Section 5.1's formulas)
/// for a problem on an architecture, given its register blocking.
pub fn microkernel_footprint(
    arch: &ArchParams,
    p: &ConvProblem,
    rb: RegisterBlocking,
) -> MicroKernelFootprint {
    let icb = p.ic.min(arch.n_vlen());
    let ocb = p.oc.min(arch.n_vlen());
    let nih = p.ih.min((rb.rb_h - 1) * p.stride_h + p.kh);
    let niw = p.iw.min((rb.rb_w - 1) * p.stride_w + p.kw);
    let e = arch.elem_bytes();
    MicroKernelFootprint {
        weights: ocb * icb * p.kh * p.kw * e,
        source: icb * nih * niw * e,
        destination: ocb * rb.rb_h * rb.rb_w * e,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuning::split_register_block;
    use lsv_arch::formula2_rb_min;
    use lsv_arch::presets::{aurora_with_vlen_bits, sx_aurora};

    #[test]
    fn figure2_peak_footprint_is_about_9mib() {
        // Figure 2: "memory footprints can reach up to 9 megabytes on
        // architectures with 16384-bit vectors" — the 512-channel 3x3 layer.
        let arch = sx_aurora();
        let p = ConvProblem::new(256, 512, 512, 7, 7, 3, 3, 1, 1);
        let rb = split_register_block(formula2_rb_min(&arch), p.ow(), p.oh());
        let fp = microkernel_footprint(&arch, &p, rb);
        assert!(fp.weights == 512 * 512 * 9 * 4);
        let mib = fp.total_mib();
        assert!((8.9..10.0).contains(&mib), "total footprint {mib:.2} MiB");
    }

    #[test]
    fn footprint_grows_quadratically_with_vlen() {
        // Quadrupling the vector length quadruples the weights footprint
        // (both IC_b and OC_b scale) as long as the channels do not clamp.
        let p = ConvProblem::new(256, 2048, 2048, 14, 14, 3, 3, 1, 1);
        let f1 = microkernel_footprint(
            &aurora_with_vlen_bits(4096),
            &p,
            RegisterBlocking { rb_w: 14, rb_h: 2 },
        );
        let f2 = microkernel_footprint(
            &aurora_with_vlen_bits(8192),
            &p,
            RegisterBlocking { rb_w: 14, rb_h: 2 },
        );
        assert_eq!(f2.weights, 4 * f1.weights);
    }

    #[test]
    fn channel_clamp_limits_growth() {
        // 64-channel layers stop growing once N_vlen exceeds 64.
        let p = ConvProblem::new(256, 64, 64, 56, 56, 3, 3, 1, 1);
        let rb = RegisterBlocking { rb_w: 24, rb_h: 1 };
        let f512 = microkernel_footprint(&aurora_with_vlen_bits(2048), &p, rb);
        let f16384 = microkernel_footprint(&aurora_with_vlen_bits(16384), &p, rb);
        assert_eq!(f512.weights, f16384.weights);
    }

    #[test]
    fn source_window_clamps_to_input() {
        let arch = sx_aurora();
        let p = ConvProblem::new(256, 512, 512, 7, 7, 3, 3, 1, 1);
        // rb_h + kh - 1 = 4 + 3 - 1 = 6 < 7 -> no clamp on h; rb_w 7 clamps.
        let fp = microkernel_footprint(&arch, &p, RegisterBlocking { rb_w: 7, rb_h: 4 });
        assert_eq!(fp.source, 512 * 6 * 7 * 4);
    }
}
