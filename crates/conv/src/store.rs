//! Content-addressed layer-result store.
//!
//! The results pipeline simulates the *same* (problem, arch, algorithm,
//! direction) points over and over: every minibatch ≥ 2·cores reduces to the
//! identical two-image representative slice, figure 5's 16384-bit machine is
//! `sx_aurora` under another name, and the validate sweep recomputes one
//! naive reference three times. This module memoizes the expensive unit of
//! work — one simulated core slice, one validation, one vednn algorithm
//! choice — under a canonical content-addressed key.
//!
//! # Key anatomy
//!
//! A [`Key`] is a canonical ASCII string (kept for exact collision
//! verification) plus a 128-bit FNV-1a-derived content hash (the on-disk file
//! name). The string serializes, field by field and in a fixed order:
//!
//! * a schema stamp ([`SCHEMA`]) — bumped whenever the simulator's timing
//!   semantics, the record layout, or the key layout change, invalidating
//!   every persisted entry at once (stale entries parse as a silent miss),
//! * every *physical* [`ArchParams`] field — the `name` is deliberately
//!   excluded so renamed-but-identical presets share entries,
//! * the simulated problem (all 11 geometry fields, including the slice
//!   minibatch), direction, an engine tag, the core count and the execution
//!   mode,
//! * for kernel slices: the *effective* [`KernelConfig`] of the created
//!   primitive — ablation sweeps override individual variables and
//!   `ConvDesc::create` itself shrinks blocks under register pressure, so
//!   the key must describe the kernel that actually ran, not the one the
//!   tuner first proposed.
//!
//! The struct-destructuring serializers below fail to compile when a field
//! is added, forcing the schema stamp to be revisited.
//!
//! # Tiers, persistence format and invalidation
//!
//! Lookups hit an in-process map (a `Mutex<HashMap>` behind the `par_map`
//! worker pool) first, then the optional on-disk tier: one text file per
//! entry named by the key hash, written atomically (`.tmp.<pid>` then
//! rename) so concurrently regenerating bins share a store safely. A
//! version-stamp mismatch in line 1 is a *silent miss* (stale schema); any
//! other malformed content is a *loud error* (truncation or corruption must
//! not silently re-simulate forever). A key-string mismatch under a matching
//! hash (a 2⁻¹²⁸ event) is treated as a miss.
//!
//! # Paranoid mode
//!
//! `LSV_STORE_PARANOID=<pct>` re-simulates a deterministic `pct`% sample of
//! hits (selected by key hash, so the sample is stable across runs) and
//! asserts bit-equality with the stored record — the guard that the key
//! really is content-addressing the simulation inputs.

use crate::primitive::ExecReport;
use crate::problem::{ConvProblem, Direction};
use crate::tuning::{KernelConfig, MicroTile, RegisterBlocking};
use crate::verify::ValidationReport;
use lsv_arch::{ArchParams, CacheGeometry, LlcBanking, MemLatencies};
use lsv_cache::{HierarchyStats, LevelStats};
use lsv_vengine::{ExecutionMode, InstCounters};
use std::collections::HashMap;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Version stamp of the key layout, record layout *and* simulator timing
/// semantics. Any change that could alter a stored number must bump this.
pub const SCHEMA: &str = "lsv-layer-store v1";

/// A canonical store key: the full content string plus its 128-bit hash.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Key {
    canon: String,
    hash: u128,
}

impl Key {
    fn new(canon: String) -> Self {
        let hash = fnv128(canon.as_bytes());
        Self { canon, hash }
    }

    /// The canonical key string (written into the entry for collision
    /// verification).
    pub fn canonical(&self) -> &str {
        &self.canon
    }

    /// The 128-bit content hash.
    pub fn hash128(&self) -> u128 {
        self.hash
    }

    /// On-disk file stem: 32 lowercase hex digits.
    pub fn file_stem(&self) -> String {
        format!("{:032x}", self.hash)
    }
}

/// Two independent 64-bit FNV-1a passes (distinct offset bases, shared
/// prime) with an avalanche finalizer each — stable across platforms and
/// runs, no allocation, no serde.
fn fnv128(bytes: &[u8]) -> u128 {
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    const BASIS_LO: u64 = 0xcbf2_9ce4_8422_2325;
    const BASIS_HI: u64 = 0x6c62_272e_07bb_0142; // FNV-0 of "chongo <Landon..."
    let mut lo = BASIS_LO;
    let mut hi = BASIS_HI;
    for &b in bytes {
        lo = (lo ^ b as u64).wrapping_mul(PRIME);
        hi = (hi ^ b.rotate_left(3) as u64).wrapping_mul(PRIME);
    }
    ((avalanche(hi) as u128) << 64) | avalanche(lo) as u128
}

/// xorshift-multiply finalizer (splitmix64's) so short keys still spread
/// over the whole word.
fn avalanche(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn push_arch(s: &mut String, arch: &ArchParams) {
    // `name` is EXCLUDED on purpose: `with_max_vlen_bits` renames the preset
    // without changing the machine, and figure 5's 16384-bit row must share
    // entries with the plain sx_aurora sweeps.
    let ArchParams {
        name: _,
        vlen_bits,
        elem_bits,
        n_vregs,
        n_fma,
        l_fma,
        lanes_per_port,
        b_seq,
        scalar_issue_width,
        scalar_forward_window,
        freq_ghz,
        cores,
        l1d,
        l2,
        llc,
        lat,
        mem_line_cycles,
        llc_banking,
    } = arch;
    let MemLatencies {
        l1: lat1,
        l2: lat2,
        llc: lat3,
        mem: lat4,
    } = lat;
    let LlcBanking {
        banks,
        service_cycles,
    } = llc_banking;
    write!(
        s,
        "|arch={vlen_bits},{elem_bits},{n_vregs},{n_fma},{l_fma},{lanes_per_port},{b_seq},\
         {scalar_issue_width},{scalar_forward_window},{:016x},{cores}",
        freq_ghz.to_bits()
    )
    .unwrap();
    for g in [l1d, l2, llc] {
        let CacheGeometry { size, line, ways } = g;
        write!(s, ";{size}/{line}/{ways}").unwrap();
    }
    write!(
        s,
        ";lat={lat1},{lat2},{lat3},{lat4},{mem_line_cycles};bank={banks},{service_cycles}"
    )
    .unwrap();
}

fn push_problem(s: &mut String, p: &ConvProblem) {
    let ConvProblem {
        n,
        ic,
        oc,
        ih,
        iw,
        kh,
        kw,
        stride_h,
        stride_w,
        pad_h,
        pad_w,
    } = p;
    write!(
        s,
        "|p={n}x{ic}x{oc}x{ih}x{iw}k{kh}x{kw}s{stride_h}x{stride_w}p{pad_h}x{pad_w}"
    )
    .unwrap();
}

fn push_cfg(s: &mut String, cfg: &KernelConfig) {
    let KernelConfig {
        algorithm,
        direction,
        vl,
        rb,
        rb_c,
        tile,
        src_layout,
        dst_layout,
        wei_layout,
        wei_swapped,
        vec_over_ic,
        wbuf,
        conflicts_predicted,
    } = cfg;
    let RegisterBlocking { rb_w, rb_h } = rb;
    let MicroTile { kh_i, kw_i, c_i } = tile;
    write!(
        s,
        "|cfg={},{},vl{vl},rb{rb_w}x{rb_h},rbc{rb_c},t{kh_i}x{kw_i}x{c_i},s{},d{},w{}x{},\
         sw{},vi{},wb{wbuf},cp{}",
        algorithm.short_name(),
        direction.short_name(),
        src_layout.cb,
        dst_layout.cb,
        wei_layout.icb,
        wei_layout.ocb,
        *wei_swapped as u8,
        *vec_over_ic as u8,
        *conflicts_predicted as u8,
    )
    .unwrap();
}

fn mode_tag(mode: ExecutionMode) -> &'static str {
    if mode.is_functional() {
        "func"
    } else {
        "timing"
    }
}

/// Key of one simulated core-slice record (fwd/bwd-data cold+steady pair, or
/// one bwd-weights reduction run — the direction in `cfg`/`engine`
/// disambiguates the semantics of the two payload words).
pub fn slice_key(
    arch: &ArchParams,
    p_sim: &ConvProblem,
    direction: Direction,
    engine: &str,
    cores: usize,
    mode: ExecutionMode,
    cfg: Option<&KernelConfig>,
) -> Key {
    let mut s = String::with_capacity(256);
    s.push_str(SCHEMA);
    s.push_str("|kind=slice");
    push_arch(&mut s, arch);
    push_problem(&mut s, p_sim);
    write!(
        s,
        "|dir={}|eng={engine}|cores={cores}|mode={}",
        direction.short_name(),
        mode_tag(mode)
    )
    .unwrap();
    if let Some(cfg) = cfg {
        push_cfg(&mut s, cfg);
    }
    Key::new(s)
}

/// Key of one validation record (`engine` carries the algorithm plus any
/// operand-seeding discriminant the caller uses).
pub fn validation_key(
    arch: &ArchParams,
    p: &ConvProblem,
    direction: Direction,
    engine: &str,
) -> Key {
    let mut s = String::with_capacity(256);
    s.push_str(SCHEMA);
    s.push_str("|kind=val");
    push_arch(&mut s, arch);
    push_problem(&mut s, p);
    write!(s, "|dir={}|eng={engine}", direction.short_name()).unwrap();
    Key::new(s)
}

/// Key of one cached discrete decision (e.g. vednn's algorithm chooser).
pub fn choice_key(arch: &ArchParams, p: &ConvProblem, direction: Direction, what: &str) -> Key {
    let mut s = String::with_capacity(256);
    s.push_str(SCHEMA);
    s.push_str("|kind=choice");
    push_arch(&mut s, arch);
    push_problem(&mut s, p);
    write!(s, "|dir={}|what={what}", direction.short_name()).unwrap();
    Key::new(s)
}

/// One stored result.
// Slice records dominate the in-process map, so the size skew vs the
// two small variants buys nothing by boxing — it would only add a pointer
// chase to every warm slice lookup.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Record {
    /// A simulated core slice: `(a, b)` is `(cold, steady)` for the
    /// minibatch-parallel directions and `(cycles, 0)` for one bwd-weights
    /// reduction run, plus the measured slice's raw counters.
    Slice {
        /// First payload word (cold-image or total cycles).
        a: u64,
        /// Second payload word (steady-image cycles, or 0).
        b: u64,
        /// Raw statistics of the measured slice.
        report: ExecReport,
    },
    /// A validation outcome, f32 values stored bit-exactly.
    Validation {
        /// `max_abs_err.to_bits()`.
        max_abs_bits: u32,
        /// `rel_err.to_bits()`.
        rel_bits: u32,
        /// Whether the error passed the tolerance.
        passed: bool,
    },
    /// A small discrete decision (e.g. a chosen algorithm), as a tag byte.
    Choice(u8),
}

const REPORT_WORDS: usize = 26;

fn report_to_words(r: &ExecReport) -> [u64; REPORT_WORDS] {
    let ExecReport {
        cycles,
        insts,
        cache,
        stall_scalar,
        stall_dep,
        stall_port,
        bank_serial_cycles,
    } = *r;
    let InstCounters {
        scalar_loads,
        scalar_ops,
        vloads,
        vstores,
        vfmas,
        gathers,
        scatters,
        fma_elems,
    } = insts;
    let HierarchyStats {
        l1,
        l2,
        llc,
        mem_fetches,
    } = cache;
    let mut w = [0u64; REPORT_WORDS];
    w[0] = cycles;
    w[1..9].copy_from_slice(&[
        scalar_loads,
        scalar_ops,
        vloads,
        vstores,
        vfmas,
        gathers,
        scatters,
        fma_elems,
    ]);
    for (i, lv) in [l1, l2, llc].into_iter().enumerate() {
        let LevelStats {
            hits,
            misses,
            conflict_misses,
            writebacks,
        } = lv;
        w[9 + 4 * i..13 + 4 * i].copy_from_slice(&[hits, misses, conflict_misses, writebacks]);
    }
    w[21] = mem_fetches;
    w[22..26].copy_from_slice(&[stall_scalar, stall_dep, stall_port, bank_serial_cycles]);
    w
}

fn report_from_words(w: &[u64; REPORT_WORDS]) -> ExecReport {
    let level = |i: usize| LevelStats {
        hits: w[9 + 4 * i],
        misses: w[10 + 4 * i],
        conflict_misses: w[11 + 4 * i],
        writebacks: w[12 + 4 * i],
    };
    ExecReport {
        cycles: w[0],
        insts: InstCounters {
            scalar_loads: w[1],
            scalar_ops: w[2],
            vloads: w[3],
            vstores: w[4],
            vfmas: w[5],
            gathers: w[6],
            scatters: w[7],
            fma_elems: w[8],
        },
        cache: HierarchyStats {
            l1: level(0),
            l2: level(1),
            llc: level(2),
            mem_fetches: w[21],
        },
        stall_scalar: w[22],
        stall_dep: w[23],
        stall_port: w[24],
        bank_serial_cycles: w[25],
    }
}

fn record_to_line(rec: &Record) -> String {
    match rec {
        Record::Slice { a, b, report } => {
            let mut s = format!("slice {a} {b}");
            for w in report_to_words(report) {
                write!(s, " {w}").unwrap();
            }
            s
        }
        Record::Validation {
            max_abs_bits,
            rel_bits,
            passed,
        } => format!("val {max_abs_bits:08x} {rel_bits:08x} {}", *passed as u8),
        Record::Choice(tag) => format!("choice {tag}"),
    }
}

fn record_from_line(line: &str) -> Result<Record, String> {
    let mut it = it_words(line);
    match it.next() {
        Some("slice") => {
            let a = parse_u64(it.next())?;
            let b = parse_u64(it.next())?;
            let mut w = [0u64; REPORT_WORDS];
            for slot in &mut w {
                *slot = parse_u64(it.next())?;
            }
            if it.next().is_some() {
                return Err("trailing words after slice record".into());
            }
            Ok(Record::Slice {
                a,
                b,
                report: report_from_words(&w),
            })
        }
        Some("val") => {
            let max_abs_bits = parse_hex32(it.next())?;
            let rel_bits = parse_hex32(it.next())?;
            let passed = match it.next() {
                Some("0") => false,
                Some("1") => true,
                other => return Err(format!("bad passed flag {other:?}")),
            };
            Ok(Record::Validation {
                max_abs_bits,
                rel_bits,
                passed,
            })
        }
        Some("choice") => {
            let tag = parse_u64(it.next())?;
            u8::try_from(tag)
                .map(Record::Choice)
                .map_err(|_| format!("choice tag {tag} out of range"))
        }
        other => Err(format!("unknown record kind {other:?}")),
    }
}

fn it_words(line: &str) -> impl Iterator<Item = &str> {
    line.split_ascii_whitespace()
}

fn parse_u64(tok: Option<&str>) -> Result<u64, String> {
    tok.ok_or_else(|| "record truncated".to_string())?
        .parse()
        .map_err(|e| format!("bad number: {e}"))
}

fn parse_hex32(tok: Option<&str>) -> Result<u32, String> {
    u32::from_str_radix(tok.ok_or_else(|| "record truncated".to_string())?, 16)
        .map_err(|e| format!("bad hex: {e}"))
}

/// Construction-time knobs of a [`LayerStore`].
#[derive(Debug, Clone, Default)]
pub struct StoreConfig {
    /// Disable every tier (the `--no-store` path): every lookup misses
    /// without counting, every insert is dropped.
    pub disabled: bool,
    /// Directory of the persistent tier; `None` keeps the store in-process
    /// only.
    pub dir: Option<PathBuf>,
    /// Percentage (0-100) of hits to re-simulate and assert against.
    pub paranoid_pct: u8,
}

impl StoreConfig {
    /// Read the process-wide defaults: `LSV_STORE=0` disables, a non-empty
    /// `LSV_STORE_DIR` enables the persistent tier, `LSV_STORE_PARANOID`
    /// sets the recheck percentage.
    pub fn from_env() -> Self {
        let disabled = std::env::var("LSV_STORE")
            .map(|v| v == "0")
            .unwrap_or(false);
        let dir = std::env::var("LSV_STORE_DIR")
            .ok()
            .filter(|v| !v.is_empty())
            .map(PathBuf::from);
        let paranoid_pct = std::env::var("LSV_STORE_PARANOID")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .map(|p| p.min(100) as u8)
            .unwrap_or(0);
        Self {
            disabled,
            dir,
            paranoid_pct,
        }
    }
}

/// Cumulative counters of one store (all process-lifetime totals).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Lookups served by the in-process map.
    pub mem_hits: u64,
    /// Lookups served by the persistent tier.
    pub disk_hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Records inserted (simulated fresh this process).
    pub inserts: u64,
    /// Hits re-simulated and asserted by paranoid mode.
    pub paranoid_rechecks: u64,
}

impl StoreStats {
    /// Lookups served from either tier.
    pub fn hits(&self) -> u64 {
        self.mem_hits + self.disk_hits
    }

    /// Counter movement since an earlier snapshot of the *same* store
    /// (saturating, so a stale `since` cannot underflow). This is how
    /// callers attribute store traffic to one planning/tuning phase of a
    /// process-lifetime shared store.
    pub fn delta(&self, since: &StoreStats) -> StoreStats {
        StoreStats {
            mem_hits: self.mem_hits.saturating_sub(since.mem_hits),
            disk_hits: self.disk_hits.saturating_sub(since.disk_hits),
            misses: self.misses.saturating_sub(since.misses),
            inserts: self.inserts.saturating_sub(since.inserts),
            paranoid_rechecks: self
                .paranoid_rechecks
                .saturating_sub(since.paranoid_rechecks),
        }
    }

    /// Publish these counters into a metrics registry under the `store.`
    /// namespace. Pass a [`delta`](Self::delta) when attributing one phase;
    /// pass a snapshot when the registry is fresh.
    pub fn publish(&self, reg: &lsv_obs::MetricsRegistry) {
        reg.counter_add("store.mem_hits", self.mem_hits);
        reg.counter_add("store.disk_hits", self.disk_hits);
        reg.counter_add("store.misses", self.misses);
        reg.counter_add("store.inserts", self.inserts);
        reg.counter_add("store.paranoid_rechecks", self.paranoid_rechecks);
    }
}

#[derive(Default)]
struct Counters {
    mem_hits: AtomicU64,
    disk_hits: AtomicU64,
    misses: AtomicU64,
    inserts: AtomicU64,
    paranoid_rechecks: AtomicU64,
}

/// The content-addressed result store (see module docs).
pub struct LayerStore {
    disabled: bool,
    dir: Option<PathBuf>,
    paranoid_pct: u8,
    mem: Mutex<HashMap<u128, (Box<str>, Record)>>,
    naive: Mutex<HashMap<String, Arc<Vec<f32>>>>,
    counters: Counters,
}

impl LayerStore {
    /// Build a store from explicit knobs (tests and tools; the process-wide
    /// instance comes from [`store`]).
    pub fn new(cfg: StoreConfig) -> Self {
        if let Some(dir) = &cfg.dir {
            if !cfg.disabled {
                std::fs::create_dir_all(dir).unwrap_or_else(|e| {
                    panic!("layer store: cannot create {}: {e}", dir.display())
                });
            }
        }
        Self {
            disabled: cfg.disabled,
            dir: if cfg.disabled { None } else { cfg.dir },
            paranoid_pct: cfg.paranoid_pct,
            mem: Mutex::new(HashMap::new()),
            naive: Mutex::new(HashMap::new()),
            counters: Counters::default(),
        }
    }

    /// A store with every tier disabled.
    pub fn disabled() -> Self {
        Self::new(StoreConfig {
            disabled: true,
            ..StoreConfig::default()
        })
    }

    /// Whether lookups can ever hit.
    pub fn enabled(&self) -> bool {
        !self.disabled
    }

    /// Whether `key` falls in the deterministic paranoid re-check sample.
    pub fn paranoid_sample(&self, key: &Key) -> bool {
        self.paranoid_pct > 0 && (key.hash128() as u64 % 100) < self.paranoid_pct as u64
    }

    /// Count one paranoid re-check (the caller re-simulated and asserted).
    pub fn note_paranoid_recheck(&self) {
        self.counters
            .paranoid_rechecks
            .fetch_add(1, Ordering::Relaxed);
    }

    /// Look up a record, promoting disk hits into the in-process map.
    pub fn get(&self, key: &Key) -> Option<Record> {
        if self.disabled {
            return None;
        }
        {
            let mem = self.mem.lock().unwrap();
            if let Some((canon, rec)) = mem.get(&key.hash128()) {
                if canon.as_ref() == key.canonical() {
                    self.counters.mem_hits.fetch_add(1, Ordering::Relaxed);
                    return Some(rec.clone());
                }
            }
        }
        if let Some(dir) = &self.dir {
            if let Some(rec) = read_entry(&entry_path(dir, key), key) {
                self.counters.disk_hits.fetch_add(1, Ordering::Relaxed);
                self.mem
                    .lock()
                    .unwrap()
                    .insert(key.hash128(), (key.canonical().into(), rec.clone()));
                return Some(rec);
            }
        }
        self.counters.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    /// Insert a record into both tiers (atomic `.tmp` + rename on disk).
    pub fn put(&self, key: &Key, rec: Record) {
        if self.disabled {
            return;
        }
        self.counters.inserts.fetch_add(1, Ordering::Relaxed);
        if let Some(dir) = &self.dir {
            write_entry(dir, key, &rec);
        }
        self.mem
            .lock()
            .unwrap()
            .insert(key.hash128(), (key.canonical().into(), rec));
    }

    /// Typed access: one simulated slice.
    pub fn get_slice(&self, key: &Key) -> Option<(u64, u64, ExecReport)> {
        match self.get(key) {
            Some(Record::Slice { a, b, report }) => Some((a, b, report)),
            _ => None,
        }
    }

    /// Typed insert: one simulated slice.
    pub fn put_slice(&self, key: &Key, a: u64, b: u64, report: &ExecReport) {
        self.put(
            key,
            Record::Slice {
                a,
                b,
                report: *report,
            },
        );
    }

    /// Typed access: one validation outcome (bit-exact f32 round-trip).
    pub fn get_validation(&self, key: &Key) -> Option<ValidationReport> {
        match self.get(key) {
            Some(Record::Validation {
                max_abs_bits,
                rel_bits,
                passed,
            }) => Some(ValidationReport {
                max_abs_err: f32::from_bits(max_abs_bits),
                rel_err: f32::from_bits(rel_bits),
                passed,
            }),
            _ => None,
        }
    }

    /// Typed insert: one validation outcome.
    pub fn put_validation(&self, key: &Key, r: &ValidationReport) {
        self.put(
            key,
            Record::Validation {
                max_abs_bits: r.max_abs_err.to_bits(),
                rel_bits: r.rel_err.to_bits(),
                passed: r.passed,
            },
        );
    }

    /// Typed access: one discrete decision.
    pub fn get_choice(&self, key: &Key) -> Option<u8> {
        match self.get(key) {
            Some(Record::Choice(tag)) => Some(tag),
            _ => None,
        }
    }

    /// Typed insert: one discrete decision.
    pub fn put_choice(&self, key: &Key, tag: u8) {
        self.put(key, Record::Choice(tag));
    }

    /// Memoize a pure host-side f32 computation (the validate sweep's naive
    /// reference, identical across the three direct algorithms). In-process
    /// only — never persisted.
    pub fn naive_ref(&self, tag: &str, compute: impl FnOnce() -> Vec<f32>) -> Arc<Vec<f32>> {
        if self.disabled {
            return Arc::new(compute());
        }
        if let Some(v) = self.naive.lock().unwrap().get(tag) {
            return Arc::clone(v);
        }
        let v = Arc::new(compute());
        self.naive
            .lock()
            .unwrap()
            .entry(tag.to_string())
            .or_insert_with(|| Arc::clone(&v))
            .clone()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            mem_hits: self.counters.mem_hits.load(Ordering::Relaxed),
            disk_hits: self.counters.disk_hits.load(Ordering::Relaxed),
            misses: self.counters.misses.load(Ordering::Relaxed),
            inserts: self.counters.inserts.load(Ordering::Relaxed),
            paranoid_rechecks: self.counters.paranoid_rechecks.load(Ordering::Relaxed),
        }
    }

    /// Bytes currently persisted (0 without a disk tier).
    pub fn disk_bytes(&self) -> u64 {
        let Some(dir) = &self.dir else { return 0 };
        let Ok(entries) = std::fs::read_dir(dir) else {
            return 0;
        };
        entries
            .flatten()
            .filter(|e| e.path().extension().is_some_and(|x| x == "entry"))
            .filter_map(|e| e.metadata().ok())
            .map(|m| m.len())
            .sum()
    }
}

fn entry_path(dir: &Path, key: &Key) -> PathBuf {
    dir.join(format!("{}.entry", key.file_stem()))
}

fn write_entry(dir: &Path, key: &Key, rec: &Record) {
    let path = entry_path(dir, key);
    if let Ok(resident) = std::fs::read_to_string(&path) {
        if resident.lines().next() == Some(SCHEMA) {
            // Entries are deterministic; the resident copy is as good as ours.
            return;
        }
        // Stale schema (or damaged header): fall through and overwrite.
    }
    let text = format!(
        "{SCHEMA}\nkey {}\n{}\n",
        key.canonical(),
        record_to_line(rec)
    );
    let tmp = dir.join(format!("{}.tmp.{}", key.file_stem(), std::process::id()));
    std::fs::write(&tmp, text)
        .unwrap_or_else(|e| panic!("layer store: cannot write {}: {e}", tmp.display()));
    std::fs::rename(&tmp, &path)
        .unwrap_or_else(|e| panic!("layer store: cannot publish {}: {e}", path.display()));
}

/// Read and verify one persisted entry. Version mismatch and hash-collision
/// key mismatch are silent misses; truncation or corruption is a loud error.
fn read_entry(path: &Path, key: &Key) -> Option<Record> {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return None,
        Err(e) => panic!("layer store: unreadable entry {}: {e}", path.display()),
    };
    let mut lines = text.lines();
    let version = lines
        .next()
        .unwrap_or_else(|| panic!("layer store: truncated entry {} (empty)", path.display()));
    if version != SCHEMA {
        return None; // stale schema: silent miss, next put overwrites
    }
    let key_line = lines.next().unwrap_or_else(|| {
        panic!(
            "layer store: truncated entry {} (missing key)",
            path.display()
        )
    });
    let canon = key_line.strip_prefix("key ").unwrap_or_else(|| {
        panic!(
            "layer store: corrupt entry {} (bad key line)",
            path.display()
        )
    });
    if canon != key.canonical() {
        return None; // 128-bit hash collision: astronomically unlikely
    }
    let rec_line = lines.next().unwrap_or_else(|| {
        panic!(
            "layer store: truncated entry {} (missing record)",
            path.display()
        )
    });
    match record_from_line(rec_line) {
        Ok(rec) => Some(rec),
        Err(why) => panic!("layer store: corrupt entry {}: {why}", path.display()),
    }
}

static CONFIG: Mutex<Option<StoreConfig>> = Mutex::new(None);
static STORE: OnceLock<LayerStore> = OnceLock::new();

/// Set the process-wide store configuration (CLI flags). Must run before the
/// first [`store`] access; returns `Err` if the store is already live.
pub fn configure(cfg: StoreConfig) -> Result<(), &'static str> {
    if STORE.get().is_some() {
        return Err("layer store already initialized");
    }
    *CONFIG.lock().unwrap() = Some(cfg);
    Ok(())
}

/// The process-wide store, lazily built from [`configure`]d knobs or the
/// environment (`LSV_STORE`, `LSV_STORE_DIR`, `LSV_STORE_PARANOID`).
pub fn store() -> &'static LayerStore {
    STORE.get_or_init(|| {
        let cfg = CONFIG
            .lock()
            .unwrap()
            .take()
            .unwrap_or_else(StoreConfig::from_env);
        LayerStore::new(cfg)
    })
}

/// This process's store counters as one metrics document (the
/// `metrics.schema.json` shape): `store.*` counters plus the
/// `store.disk_bytes` gauge, serialized by the one registry code path.
pub fn stats_metrics_json(st: &LayerStore) -> String {
    let reg = lsv_obs::MetricsRegistry::new();
    st.stats().publish(&reg);
    reg.gauge_set("store.disk_bytes", st.disk_bytes() as f64);
    reg.to_json("layer-store")
}

/// Write this process's store counters as one metrics document to the path
/// in `LSV_STORE_STATS` (regen bins call this on exit; bench-simulator
/// collects the files into BENCH_simulator.json). Same wire format as
/// `lsvconv serve --trace`'s metrics.json — one serializer, one schema.
pub fn dump_stats_to_env_file() {
    let Ok(path) = std::env::var("LSV_STORE_STATS") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    let json = stats_metrics_json(store());
    let tmp = format!("{path}.tmp.{}", std::process::id());
    if std::fs::write(&tmp, json).is_ok() {
        let _ = std::fs::rename(&tmp, &path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::Algorithm;
    use lsv_arch::presets::sx_aurora;

    fn key_a() -> Key {
        let arch = sx_aurora();
        let p = ConvProblem::new(2, 64, 64, 14, 14, 3, 3, 1, 1);
        let cfg = crate::tuning::kernel_config(&arch, &p, Direction::Fwd, Algorithm::Bdc, 8);
        slice_key(
            &arch,
            &p,
            Direction::Fwd,
            "direct",
            8,
            ExecutionMode::TimingOnly,
            Some(&cfg),
        )
    }

    fn report_fixture() -> ExecReport {
        let mut w = [0u64; REPORT_WORDS];
        for (i, slot) in w.iter_mut().enumerate() {
            *slot = (i as u64 + 1) * 7919;
        }
        report_from_words(&w)
    }

    #[test]
    fn key_is_deterministic() {
        let (a, b) = (key_a(), key_a());
        assert_eq!(a.canonical(), b.canonical());
        assert_eq!(a.hash128(), b.hash128());
    }

    #[test]
    fn renamed_identical_arch_shares_keys() {
        let arch = sx_aurora();
        let renamed = lsv_arch::presets::aurora_with_vlen_bits(arch.vlen_bits);
        assert_ne!(arch.name, renamed.name, "preset rename is the premise");
        let p = ConvProblem::new(2, 64, 64, 14, 14, 3, 3, 1, 1);
        let k1 = validation_key(&arch, &p, Direction::Fwd, "dc");
        let k2 = validation_key(&renamed, &p, Direction::Fwd, "dc");
        assert_eq!(k1, k2, "arch name must not enter the key");
    }

    #[test]
    fn mode_cores_engine_and_kind_discriminate() {
        let arch = sx_aurora();
        let p = ConvProblem::new(2, 64, 64, 14, 14, 3, 3, 1, 1);
        let base = slice_key(
            &arch,
            &p,
            Direction::Fwd,
            "direct",
            8,
            ExecutionMode::TimingOnly,
            None,
        );
        let func = slice_key(
            &arch,
            &p,
            Direction::Fwd,
            "direct",
            8,
            ExecutionMode::Functional,
            None,
        );
        let cores1 = slice_key(
            &arch,
            &p,
            Direction::Fwd,
            "direct",
            1,
            ExecutionMode::TimingOnly,
            None,
        );
        let vednn = slice_key(
            &arch,
            &p,
            Direction::Fwd,
            "vednn:gemm",
            8,
            ExecutionMode::TimingOnly,
            None,
        );
        let val = validation_key(&arch, &p, Direction::Fwd, "direct");
        let choice = choice_key(&arch, &p, Direction::Fwd, "direct");
        let all = [&base, &func, &cores1, &vednn, &val, &choice];
        for (i, x) in all.iter().enumerate() {
            for y in &all[i + 1..] {
                assert_ne!(x.hash128(), y.hash128());
            }
        }
    }

    #[test]
    fn record_roundtrips_through_text() {
        let recs = [
            Record::Slice {
                a: 123,
                b: u64::MAX,
                report: report_fixture(),
            },
            Record::Validation {
                max_abs_bits: 0x3f80_0001,
                rel_bits: 0x0000_0000,
                passed: true,
            },
            Record::Choice(7),
        ];
        for rec in recs {
            let line = record_to_line(&rec);
            assert_eq!(record_from_line(&line).unwrap(), rec, "{line}");
        }
    }

    #[test]
    fn memory_tier_roundtrip_and_stats() {
        let st = LayerStore::new(StoreConfig::default());
        let key = key_a();
        assert!(st.get_slice(&key).is_none());
        st.put_slice(&key, 10, 20, &report_fixture());
        let (a, b, rep) = st.get_slice(&key).expect("hit");
        assert_eq!((a, b), (10, 20));
        assert_eq!(rep, report_fixture());
        let s = st.stats();
        assert_eq!((s.mem_hits, s.misses, s.inserts), (1, 1, 1));
    }

    #[test]
    fn disabled_store_never_hits() {
        let st = LayerStore::disabled();
        let key = key_a();
        st.put_slice(&key, 1, 2, &report_fixture());
        assert!(st.get_slice(&key).is_none());
        assert_eq!(st.stats(), StoreStats::default());
    }

    #[test]
    fn validation_roundtrip_is_bit_exact() {
        let st = LayerStore::new(StoreConfig::default());
        let key = validation_key(
            &sx_aurora(),
            &ConvProblem::new(1, 8, 8, 6, 6, 3, 3, 1, 1),
            Direction::Fwd,
            "dc",
        );
        let r = ValidationReport {
            max_abs_err: 1.1920929e-7,
            rel_err: 3.5762787e-7,
            passed: true,
        };
        st.put_validation(&key, &r);
        let got = st.get_validation(&key).expect("hit");
        assert_eq!(got.max_abs_err.to_bits(), r.max_abs_err.to_bits());
        assert_eq!(got.rel_err.to_bits(), r.rel_err.to_bits());
        assert_eq!(got.passed, r.passed);
    }

    #[test]
    fn delta_attributes_one_phase_and_saturates() {
        let st = LayerStore::new(StoreConfig::default());
        let key = key_a();
        st.put_slice(&key, 1, 2, &report_fixture());
        let before = st.stats();
        st.get_slice(&key).expect("hit");
        st.get_slice(&key).expect("hit");
        let d = st.stats().delta(&before);
        assert_eq!((d.mem_hits, d.misses, d.inserts), (2, 0, 0));
        assert_eq!(d.hits(), 2);
        // A stale snapshot (taken from a different store) cannot underflow.
        let stale = StoreStats {
            mem_hits: u64::MAX,
            ..StoreStats::default()
        };
        assert_eq!(st.stats().delta(&stale).mem_hits, 0);
    }

    #[test]
    fn stats_dump_is_a_schema_valid_metrics_document() {
        let st = LayerStore::new(StoreConfig::default());
        let key = key_a();
        assert!(st.get_slice(&key).is_none());
        st.put_slice(&key, 1, 2, &report_fixture());
        let doc = stats_metrics_json(&st);
        lsv_obs::validate_metrics_json(&doc).expect("metrics schema");
        let v = lsv_obs::parse_json(&doc).expect("valid JSON");
        assert_eq!(
            v.get("tool"),
            Some(&lsv_obs::JsonValue::Str("layer-store".into()))
        );
        assert!(doc.contains("\"name\": \"store.misses\", \"value\": 1"));
        assert!(doc.contains("\"name\": \"store.inserts\", \"value\": 1"));
        assert!(doc.contains("store.disk_bytes"));
    }

    #[test]
    fn paranoid_sampling_is_deterministic_and_proportional() {
        let st = LayerStore::new(StoreConfig {
            paranoid_pct: 25,
            ..StoreConfig::default()
        });
        let arch = sx_aurora();
        let mut sampled = 0;
        for i in 1..=400usize {
            let p = ConvProblem::new(i, 8, 8, 6 + i % 13, 6 + i % 13, 3, 3, 1, 1);
            let key = validation_key(&arch, &p, Direction::Fwd, "dc");
            let s1 = st.paranoid_sample(&key);
            assert_eq!(s1, st.paranoid_sample(&key));
            sampled += s1 as usize;
        }
        assert!(
            (40..=200).contains(&sampled),
            "25% of 400 keys, got {sampled}"
        );
    }
}
