//! The analytical SIMD machine model (Section 3) and the blocking-factor
//! formulas derived from it (Sections 4.1, 5.2, 6.2).
//!
//! Units follow the paper with one clarification that the text leaves
//! implicit: the activation blocking factor `A_b` of Formula 3 is measured in
//! *elements* (it equals `IC_b` or `OC_b`, which are `min(C, N_vlen)`
//! elements), so the byte footprint of one register-block sweep of the
//! scalar access stream is `A_b * RB_h * RB_w * C_str * elem_bytes`.
//! With this reading, the SX-Aurora worked example of Section 5.2 comes out
//! exactly: `32768 / (512 * 4) = 16 > RB` conflicts-free bound versus the
//! `RB >= 24` requirement of Formula 2 — the unsolvable pair `(16 > RB` and
//! `24 < RB)` quoted in the paper.

use crate::ArchParams;

/// Formula 1: the number of independent element computations `E` that must be
/// in flight to fully subscribe the FMA pipelines:
/// `E >= N_vlen * N_fma * L_fma`.
///
/// Table 1 lists `E = 160` for Skylake and `E = 12288` for SX-Aurora.
#[inline]
pub fn formula1_required_independent_elems(arch: &ArchParams) -> usize {
    arch.n_vlen() * arch.n_fma * arch.l_fma
}

/// Formula 2: the register blocking lower bound for the state-of-the-art
/// direct convolution: `RB_w * RB_h >= N_fma * L_fma`.
#[inline]
pub fn formula2_rb_min(arch: &ArchParams) -> usize {
    arch.n_fma * arch.l_fma
}

/// Formula 3: predicts L1 cache conflict misses for the direct-convolution
/// scalar access stream: conflicts appear when
/// `L1_size < A_b * RB_h * RB_w * C_str` (byte units; `A_b` in elements).
///
/// * `ab_elems` — the activation feature-map blocking factor (`IC_b` or
///   `OC_b` depending on which tensor the algorithm reads with scalar loads).
/// * `rb` — the combined register blocking factor `RB_h * RB_w`.
/// * `c_str` — the effective spatial stride of the scalar stream (the
///   convolution stride on the forward pass; 1 for the backward passes,
///   whose scalar stream walks the output gradients at unit spatial steps).
#[inline]
pub fn formula3_predicts_conflicts(
    arch: &ArchParams,
    ab_elems: usize,
    rb: usize,
    c_str: usize,
) -> bool {
    (arch.l1d.size as u128)
        < (ab_elems as u128) * (rb as u128) * (c_str as u128) * (arch.elem_bytes() as u128)
}

/// The largest conflict-free combined register block (the exclusive upper
/// bound of Formula 4): `RB_h * RB_w < L1_size / (A_b * C_str)` in the
/// element-unit reading of Formula 3.
///
/// Returns the largest `rb` such that
/// [`formula3_predicts_conflicts`] is false, i.e.
/// `floor(L1_size / (A_b * C_str * elem_bytes))`.
#[inline]
pub fn formula4_rb_upper_bound(arch: &ArchParams, ab_elems: usize, c_str: usize) -> usize {
    let denom = ab_elems.max(1) * c_str.max(1) * arch.elem_bytes();
    arch.l1d.size / denom
}

/// The valid BDC register-blocking range of Formula 4:
/// `N_fma * L_fma / B_seq <= RB_h * RB_w < L1_size / (A_b * C_str)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RegisterBlockRange {
    /// Inclusive lower bound (`ceil(N_fma * L_fma / B_seq)`).
    pub min: usize,
    /// Inclusive upper bound (largest conflict-free block). May be smaller
    /// than `min` for very large `A_b * C_str`; see [`RegisterBlockRange::pick`].
    pub max: usize,
}

impl RegisterBlockRange {
    /// Whether the range is non-empty.
    #[inline]
    pub fn is_satisfiable(&self) -> bool {
        self.min <= self.max
    }

    /// Choose a combined register block within the range.
    ///
    /// BDC policy: the *largest* conflict-free value — it satisfies the
    /// relaxed dependency bound while maximizing the reuse of each weights
    /// vector and minimizing partial-sum traffic at block boundaries
    /// ("judiciously limits the amount of computation exposed", Section
    /// 6.2). When the range is empty — conflict misses are unavoidable at
    /// any block size that hides latency — prefer the conflict-free maximum
    /// (the cache bound takes priority: the scalar code between FMAs
    /// tolerates partial under-subscription), but never drop below 1.
    #[inline]
    pub fn pick(&self) -> usize {
        self.max.max(1)
    }
}

/// Formula 4: the BDC register-blocking range for an architecture and a
/// scalar stream described by (`ab_elems`, `c_str`).
///
/// The SX-Aurora worked example of Section 6.2: with `B_seq = 3` the lower
/// bound drops from 24 to 8.
pub fn bdc_register_block_range(
    arch: &ArchParams,
    ab_elems: usize,
    c_str: usize,
) -> RegisterBlockRange {
    let min = formula2_rb_min(arch).div_ceil(arch.b_seq.max(1));
    let upper = formula4_rb_upper_bound(arch, ab_elems, c_str);
    // Formula 3 is a strict inequality: conflicts appear when footprint
    // exceeds the L1; `upper` itself is the last conflict-free value.
    RegisterBlockRange { min, max: upper }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets::{skylake_avx512, sx_aurora};

    #[test]
    fn formula2_matches_section5_example() {
        // "requires a combined register blocking factor of 24" (Section 5.2).
        assert_eq!(formula2_rb_min(&sx_aurora()), 24);
        assert_eq!(formula2_rb_min(&skylake_avx512()), 10);
    }

    #[test]
    fn section_5_2_unsolvable_inequality() {
        // A_b = N_vlen = 512 elements, C_str = 1 on SX-Aurora: the conflict-
        // free bound is 16, below the 24 required by Formula 2.
        let a = sx_aurora();
        let ab = a.n_vlen();
        assert_eq!(formula4_rb_upper_bound(&a, ab, 1), 16);
        assert!(formula3_predicts_conflicts(&a, ab, 24, 1));
        assert!(!formula3_predicts_conflicts(&a, ab, 16, 1));
    }

    #[test]
    fn bdc_lower_bound_is_8_on_aurora() {
        // Section 6.2: "setting B_seq to three allows the register blocking
        // factors to be as low as 8, in contrast to the previous minimum
        // value of 24".
        let a = sx_aurora();
        let r = bdc_register_block_range(&a, a.n_vlen(), 1);
        assert_eq!(r.min, 8);
        assert_eq!(r.max, 16);
        assert!(r.is_satisfiable());
        assert_eq!(r.pick(), 16, "largest conflict-free block");
    }

    #[test]
    fn bdc_range_can_be_empty_for_strided_layers() {
        // A_b = 512, stride 2: upper bound is 8 == min; stride 4 would make
        // the range empty and pick() falls back to the conflict-free max.
        let a = sx_aurora();
        let r2 = bdc_register_block_range(&a, 512, 2);
        assert_eq!(r2.max, 8);
        assert!(r2.is_satisfiable());
        let r4 = bdc_register_block_range(&a, 512, 4);
        assert_eq!(r4.max, 4);
        assert!(!r4.is_satisfiable());
        assert_eq!(r4.pick(), 4);
    }

    #[test]
    fn skylake_never_conflicts_on_resnet_blocks() {
        // Short SIMD: A_b <= 16 elements; even RB = 30 with stride 2 stays
        // far below the 32 KB L1 (Figure 3's pattern is harmless at 512-bit).
        let s = skylake_avx512();
        assert!(!formula3_predicts_conflicts(&s, 16, 30, 2));
    }

    #[test]
    fn conflict_predicate_monotone_in_every_argument() {
        let a = sx_aurora();
        for ab in [32usize, 64, 128, 256, 512] {
            for rb in [1usize, 8, 16, 24, 56] {
                for s in [1usize, 2] {
                    let base = formula3_predicts_conflicts(&a, ab, rb, s);
                    if base {
                        assert!(formula3_predicts_conflicts(&a, ab * 2, rb, s));
                        assert!(formula3_predicts_conflicts(&a, ab, rb + 1, s));
                        assert!(formula3_predicts_conflicts(&a, ab, rb, s * 2));
                    }
                }
            }
        }
    }
}
