//! # lsv-arch — architecture parameters and the analytical SIMD machine model
//!
//! This crate holds everything the paper's Section 3 ("Architecture Analytical
//! Model") describes, plus the cache/memory geometry of the evaluation
//! platform (Section 7):
//!
//! * [`ArchParams`] — the machine description used by every other crate:
//!   SIMD length, register file size, FMA unit count/latency, cache
//!   geometries, memory latencies, LLC banking and core count.
//! * [`presets`] — ready-made configurations for the NEC SX-Aurora TSUBASA
//!   (the paper's platform), an Intel Skylake-like 512-bit machine (Table 1's
//!   comparison point), and vector-length-limited Aurora variants used by the
//!   paper's Figure 5 sweep.
//! * [`model`] — the analytical formulas: Formula 1 (independent-computation
//!   requirement), Formula 2 (register blocking lower bound), Formula 3
//!   (cache conflict-miss predicate) and Formula 4 (the Bounded Direct
//!   Convolution blocking range).
//!
//! The analytical model is deliberately separate from the cycle-level
//! simulator (`lsv-vengine` / `lsv-cache`): the paper uses the *model* to
//! derive optimization variables and the *hardware* to validate them; we use
//! the model to drive kernel generation and the simulator to validate it.

pub mod model;
pub mod presets;

pub use model::{
    bdc_register_block_range, formula1_required_independent_elems, formula2_rb_min,
    formula3_predicts_conflicts, formula4_rb_upper_bound, RegisterBlockRange,
};
pub use presets::{a64fx_sve, aurora_with_vlen_bits, rvv_longvector, skylake_avx512, sx_aurora};

/// Geometry of one cache level.
///
/// All sizes are in bytes. `ways == 0` is invalid; a fully-associative cache
/// is expressed by `ways == size / line`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub size: usize,
    /// Cache line size in bytes.
    pub line: usize,
    /// Associativity (number of ways per set).
    pub ways: usize,
}

impl CacheGeometry {
    /// Create a geometry, validating the invariants used by the simulator.
    ///
    /// # Panics
    /// Panics if the configuration is not realizable (zero sizes,
    /// non-power-of-two line, capacity not divisible by `line * ways`).
    pub fn new(size: usize, line: usize, ways: usize) -> Self {
        assert!(size > 0 && line > 0 && ways > 0, "zero cache parameter");
        assert!(line.is_power_of_two(), "cache line must be a power of two");
        assert!(
            size.is_multiple_of(line * ways),
            "cache size {size} not divisible by line {line} * ways {ways}"
        );
        Self { size, line, ways }
    }

    /// Number of sets.
    #[inline]
    pub fn sets(&self) -> usize {
        self.size / (self.line * self.ways)
    }

    /// Total number of lines.
    #[inline]
    pub fn lines(&self) -> usize {
        self.size / self.line
    }

    /// Set index of a byte address.
    #[inline]
    pub fn set_of(&self, addr: u64) -> usize {
        ((addr / self.line as u64) % self.sets() as u64) as usize
    }

    /// Line-aligned tag address (the address of the first byte of the line).
    #[inline]
    pub fn line_addr(&self, addr: u64) -> u64 {
        addr & !(self.line as u64 - 1)
    }
}

/// Access latencies (in core cycles) for each memory level, measured from
/// issue of a scalar load to availability of the result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemLatencies {
    /// L1 data cache hit latency.
    pub l1: u64,
    /// L2 hit latency.
    pub l2: u64,
    /// LLC hit latency.
    pub llc: u64,
    /// Main (HBM) memory latency.
    pub mem: u64,
}

/// Parameters of the banked last-level cache (Section 7: the SX-Aurora LLC
/// interleaves 128-byte lines over 16 memory banks; gathers whose blocks land
/// in the same bank are serialized — Section 8's `bwdw` analysis).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LlcBanking {
    /// Number of independent LLC banks.
    pub banks: usize,
    /// Cycles to service one cache line from a bank once the request reaches
    /// the LLC (serialization quantum for same-bank conflicts).
    pub service_cycles: u64,
}

/// Complete description of a long-SIMD architecture.
///
/// Field names follow the paper's notation where one exists
/// (`n_vlen`, `n_vregs`, `n_fma`, `l_fma`, `b_seq`, `n_cline`).
#[derive(Debug, Clone, PartialEq)]
pub struct ArchParams {
    /// Human-readable name (used in benchmark CSV output).
    pub name: String,
    /// SIMD register width in bits.
    pub vlen_bits: usize,
    /// Element width in bits (the paper evaluates 32-bit floats throughout).
    pub elem_bits: usize,
    /// Number of addressable vector registers (`N_vregs`).
    pub n_vregs: usize,
    /// Number of independent vector FMA units (`N_fma`).
    pub n_fma: usize,
    /// FMA pipeline latency in cycles (`L_fma`).
    pub l_fma: usize,
    /// Hardware lanes per FMA port: elements processed per cycle per port.
    /// For SX-Aurora this is 64 (a 512-element vector occupies a port for
    /// 8 cycles — the "8-cycle deep pipeline" of Section 7).
    pub lanes_per_port: usize,
    /// Minimum instruction distance between dependent SIMD FMAs created by
    /// the interleaved scalar code (`B_seq`, Section 6.2). Three on
    /// SX-Aurora/RISC-V V: scalar load + pointer update + FMA.
    pub b_seq: usize,
    /// Scalar pipeline issue width (instructions per cycle for address
    /// arithmetic and scalar loads).
    pub scalar_issue_width: usize,
    /// Store-to-consumer forwarding window of the scalar pipeline, in
    /// cycles: a scalar load whose data is ready within this many cycles of
    /// its consumer's dispatch does not block the frontend (the pipeline's
    /// decode-to-dispatch distance covers an L1 hit). Misses beyond the
    /// window stall the consumer for the remainder — the starvation effect
    /// of Section 5.2.
    pub scalar_forward_window: u64,
    /// Core clock frequency in GHz.
    pub freq_ghz: f64,
    /// Number of cores sharing the LLC.
    pub cores: usize,
    /// L1 data cache geometry.
    pub l1d: CacheGeometry,
    /// Unified L2 geometry.
    pub l2: CacheGeometry,
    /// Shared last-level cache geometry.
    pub llc: CacheGeometry,
    /// Load-to-use latencies per level.
    pub lat: MemLatencies,
    /// Main-memory bandwidth model: cycles of vector-pipe occupancy charged
    /// per cache line fetched from (or written back to) main memory by a
    /// vector memory instruction. Roughly `line_bytes / (HBM BW per core)`.
    pub mem_line_cycles: u64,
    /// LLC banking model.
    pub llc_banking: LlcBanking,
}

impl ArchParams {
    /// SIMD length in elements (`N_vlen` of Table 1).
    #[inline]
    pub fn n_vlen(&self) -> usize {
        self.vlen_bits / self.elem_bits
    }

    /// Element size in bytes.
    #[inline]
    pub fn elem_bytes(&self) -> usize {
        self.elem_bits / 8
    }

    /// Cache line size in elements (`N_cline` in the paper's element units).
    #[inline]
    pub fn n_cline(&self) -> usize {
        self.l1d.line / self.elem_bytes()
    }

    /// Peak FLOP/s of a single core: `lanes_per_port * n_fma * 2 * freq`.
    ///
    /// For the SX-Aurora preset this evaluates to the paper's 614.4 GFLOP/s
    /// (64 lanes x 3 ports x 2 flops x 1.6 GHz).
    pub fn peak_flops_per_core(&self) -> f64 {
        self.lanes_per_port as f64 * self.n_fma as f64 * 2.0 * self.freq_ghz * 1e9
    }

    /// Peak FLOP/s of the full chip.
    pub fn peak_flops(&self) -> f64 {
        self.peak_flops_per_core() * self.cores as f64
    }

    /// Peak flops per cycle per core (used to convert simulated cycles into
    /// the efficiency axis of Figure 4).
    pub fn peak_flops_per_cycle(&self) -> f64 {
        self.lanes_per_port as f64 * self.n_fma as f64 * 2.0
    }

    /// Port occupancy in cycles of one vector instruction of length `vl`.
    #[inline]
    pub fn vector_occupancy(&self, vl: usize) -> u64 {
        (vl.max(1)).div_ceil(self.lanes_per_port) as u64
    }

    /// A copy of this architecture with the maximum SIMD length clamped to
    /// `vlen_bits` (the Figure 5 experiment: "limiting the maximum vector
    /// length of the SX-Aurora system to 512, 2048, 8192, and 16384 bits").
    ///
    /// Everything else — cache hierarchy, FMA units, frequency — is kept, as
    /// on the real machine.
    pub fn with_max_vlen_bits(&self, vlen_bits: usize) -> ArchParams {
        assert!(
            vlen_bits.is_multiple_of(self.elem_bits) && vlen_bits > 0,
            "vlen_bits must be a positive multiple of the element width"
        );
        let mut p = self.clone();
        p.vlen_bits = vlen_bits;
        p.name = format!("{}-vl{}", self.name, vlen_bits);
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_geometry_sets_and_lines() {
        let g = CacheGeometry::new(32 * 1024, 128, 2);
        assert_eq!(g.sets(), 128);
        assert_eq!(g.lines(), 256);
        assert_eq!(g.set_of(0), 0);
        assert_eq!(g.set_of(128), 1);
        // stride of 32KB maps back to the same set
        assert_eq!(g.set_of(32 * 1024), 0);
        assert_eq!(g.line_addr(130), 128);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn cache_geometry_rejects_non_pow2_line() {
        CacheGeometry::new(32 * 1024, 96, 2);
    }

    #[test]
    fn aurora_peak_matches_paper() {
        let a = sx_aurora();
        // Section 7: 614 GFLOP/s per core, 4912 GFLOP/s for 8 cores.
        assert!((a.peak_flops_per_core() - 614.4e9).abs() < 1e6);
        assert!((a.peak_flops() - 4915.2e9).abs() < 1e7);
        assert_eq!(a.n_vlen(), 512);
        assert_eq!(a.n_cline(), 32);
        assert_eq!(a.vector_occupancy(512), 8);
        assert_eq!(a.vector_occupancy(64), 1);
        assert_eq!(a.vector_occupancy(65), 2);
    }

    #[test]
    fn vlen_clamp_preserves_caches() {
        let a = sx_aurora();
        let b = a.with_max_vlen_bits(2048);
        assert_eq!(b.n_vlen(), 64);
        assert_eq!(b.l1d, a.l1d);
        assert_eq!(b.cores, a.cores);
    }
}

#[cfg(test)]
mod more_tests {
    use crate::presets::{rvv_longvector, sx_aurora};

    #[test]
    fn peak_flops_per_cycle_consistent_with_peak_flops() {
        for a in [sx_aurora(), rvv_longvector()] {
            let per_cycle = a.peak_flops_per_cycle();
            let per_core = per_cycle * a.freq_ghz * 1e9;
            assert!((per_core - a.peak_flops_per_core()).abs() < 1.0);
        }
    }

    #[test]
    fn vector_occupancy_is_monotone_and_exact_at_multiples() {
        let a = sx_aurora();
        let mut prev = 0;
        for vl in 1..=a.n_vlen() {
            let occ = a.vector_occupancy(vl);
            assert!(occ >= prev);
            prev = occ;
            if vl % a.lanes_per_port == 0 {
                assert_eq!(occ as usize, vl / a.lanes_per_port);
            }
        }
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn with_max_vlen_rejects_non_multiple() {
        sx_aurora().with_max_vlen_bits(100);
    }
}
