//! Ready-made [`ArchParams`] configurations.
//!
//! The two named machines correspond to Table 1 of the paper; the Aurora
//! variants with clamped maximum vector length drive the Figure 5 sweep.

use crate::{ArchParams, CacheGeometry, LlcBanking, MemLatencies};

/// The NEC SX-Aurora TSUBASA vector engine used in the paper's evaluation
/// (Section 7).
///
/// * 16,384-bit SIMD registers (512 x f32), 64 logical vector registers.
/// * 3 vector FMA ports, 8-cycle pipelines, 64 elements/cycle/port
///   (614.4 GFLOP/s per core at 1.6 GHz).
/// * 32 KB 2-way L1D, 256 KB 4-way L2, 16 MB shared LLC with 128-byte lines
///   interleaved over 16 banks; 8 cores.
pub fn sx_aurora() -> ArchParams {
    ArchParams {
        name: "sx-aurora".to_string(),
        vlen_bits: 16384,
        elem_bits: 32,
        n_vregs: 64,
        n_fma: 3,
        l_fma: 8,
        lanes_per_port: 64,
        b_seq: 3,
        // One instruction per cycle: the B_seq = 3 instruction distance of
        // Section 6.2 is exactly 3 cycles between dependent FMAs.
        scalar_issue_width: 1,
        scalar_forward_window: 3,
        freq_ghz: 1.6,
        cores: 8,
        l1d: CacheGeometry::new(32 * 1024, 128, 2),
        l2: CacheGeometry::new(256 * 1024, 128, 4),
        llc: CacheGeometry::new(16 * 1024 * 1024, 128, 16),
        lat: MemLatencies {
            l1: 2,
            l2: 14,
            llc: 45,
            mem: 180,
        },
        // 1.35 TB/s HBM2 over 8 cores at 1.6 GHz ~= 105 B/cycle/core, i.e.
        // a little over one cycle per 128-byte line.
        mem_line_cycles: 1,
        llc_banking: LlcBanking {
            banks: 16,
            // Same-bank cache blocks of one gather serialize their transfer
            // through the bank; the effective per-line cost (Section 8's
            // "high vector load latency") is far above the pipelined
            // unit-stride rate.
            service_cycles: 24,
        },
    }
}

/// An Intel Skylake-like AVX-512 machine — the short-SIMD comparison point of
/// Table 1 (`N_vlen` = 16, `N_fma` = 2, `L_fma` = 5).
///
/// Cache geometry follows Skylake-SP: 32 KB 8-way L1D, 1 MB 16-way L2,
/// 1.375 MB/core 11-way LLC slices (modelled as a single 11 MB LLC for an
/// 8-core slice group), 64-byte lines.
pub fn skylake_avx512() -> ArchParams {
    ArchParams {
        name: "skylake-avx512".to_string(),
        vlen_bits: 512,
        elem_bits: 32,
        n_vregs: 32,
        n_fma: 2,
        l_fma: 5,
        lanes_per_port: 16,
        b_seq: 1,
        scalar_issue_width: 4,
        scalar_forward_window: 6,
        freq_ghz: 2.1,
        cores: 8,
        l1d: CacheGeometry::new(32 * 1024, 64, 8),
        l2: CacheGeometry::new(1024 * 1024, 64, 16),
        llc: CacheGeometry::new(11 * 1024 * 1024, 64, 11),
        lat: MemLatencies {
            l1: 4,
            l2: 14,
            llc: 40,
            mem: 200,
        },
        // ~120 GB/s DDR over 8 cores at 2.1 GHz ~= 7 B/cycle/core: about
        // 9 cycles per 64-byte line.
        mem_line_cycles: 9,
        llc_banking: LlcBanking {
            banks: 8,
            service_cycles: 2,
        },
    }
}

/// SX-Aurora with its maximum vector length clamped to `vlen_bits`
/// (512, 2048, 8192 or 16384 in Figure 5).
///
/// # Panics
/// Panics if `vlen_bits` is not a positive multiple of 32.
pub fn aurora_with_vlen_bits(vlen_bits: usize) -> ArchParams {
    sx_aurora().with_max_vlen_bits(vlen_bits)
}

/// A hypothetical RISC-V "V" long-vector machine (the emerging ISA the
/// paper's introduction motivates): 4096-bit registers, 32 vector
/// registers, two FMA pipes, DDR-class memory. Useful for exploring how
/// the algorithms behave between the Skylake and SX-Aurora extremes.
pub fn rvv_longvector() -> ArchParams {
    ArchParams {
        name: "rvv-4096".to_string(),
        vlen_bits: 4096,
        elem_bits: 32,
        n_vregs: 32,
        n_fma: 2,
        l_fma: 6,
        lanes_per_port: 16,
        b_seq: 3,
        scalar_issue_width: 1,
        scalar_forward_window: 3,
        freq_ghz: 2.0,
        cores: 8,
        l1d: CacheGeometry::new(32 * 1024, 64, 4),
        l2: CacheGeometry::new(512 * 1024, 64, 8),
        llc: CacheGeometry::new(8 * 1024 * 1024, 64, 16),
        lat: MemLatencies {
            l1: 3,
            l2: 16,
            llc: 50,
            mem: 220,
        },
        mem_line_cycles: 4,
        llc_banking: LlcBanking {
            banks: 8,
            service_cycles: 8,
        },
    }
}

/// A Fujitsu A64FX-like SVE machine (512-bit SVE, the long-vector ARM
/// design the paper cites): modelled as one CMG (12 cores sharing an 8 MB
/// L2-as-LLC) with HBM2 memory.
pub fn a64fx_sve() -> ArchParams {
    ArchParams {
        name: "a64fx-sve".to_string(),
        vlen_bits: 512,
        elem_bits: 32,
        n_vregs: 32,
        n_fma: 2,
        l_fma: 9,
        lanes_per_port: 16,
        b_seq: 2,
        scalar_issue_width: 2,
        scalar_forward_window: 5,
        freq_ghz: 2.2,
        cores: 12,
        l1d: CacheGeometry::new(64 * 1024, 256, 4),
        l2: CacheGeometry::new(64 * 1024, 256, 4), // modelled L1.5 (A64FX has no private L2)
        llc: CacheGeometry::new(8 * 1024 * 1024, 256, 16),
        lat: MemLatencies {
            l1: 5,
            l2: 5,
            llc: 47,
            mem: 260,
        },
        mem_line_cycles: 2,
        llc_banking: LlcBanking {
            banks: 16,
            service_cycles: 4,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::formula1_required_independent_elems;

    #[test]
    fn table1_values() {
        // Table 1 of the paper.
        let sky = skylake_avx512();
        assert_eq!(sky.n_vlen(), 16);
        assert_eq!(sky.n_fma, 2);
        assert_eq!(sky.l_fma, 5);
        assert_eq!(formula1_required_independent_elems(&sky), 160);

        let aur = sx_aurora();
        assert_eq!(aur.n_vlen(), 512);
        assert_eq!(aur.n_fma, 3);
        assert_eq!(aur.l_fma, 8);
        assert_eq!(formula1_required_independent_elems(&aur), 12288);
    }

    #[test]
    fn alternative_isa_presets_are_consistent() {
        let rvv = rvv_longvector();
        assert_eq!(rvv.n_vlen(), 128);
        assert!(rvv.peak_flops() > 0.0);
        let sve = a64fx_sve();
        assert_eq!(sve.n_vlen(), 16);
        assert_eq!(sve.n_cline(), 64, "256-byte lines");
        // Formula 1 scales with the machine.
        assert!(
            formula1_required_independent_elems(&rvv) > formula1_required_independent_elems(&sve)
        );
    }

    #[test]
    fn figure5_vlen_sweep_presets() {
        for bits in [512, 2048, 8192, 16384] {
            let a = aurora_with_vlen_bits(bits);
            assert_eq!(a.n_vlen(), bits / 32);
            assert_eq!(a.cores, 8);
            assert_eq!(a.l1d.size, 32 * 1024);
        }
    }
}
