//! Table 1: the architecture analytical model applied to SIMD CPUs —
//! `N_vlen`, `N_fma`, `L_fma` and the independent-computation requirement
//! `E` (Formula 1) for Intel Skylake and NEC SX-Aurora.

use lsv_arch::presets::{skylake_avx512, sx_aurora};
use lsv_arch::{formula1_required_independent_elems, formula2_rb_min};

fn main() {
    println!("architecture,n_vlen,n_fma,l_fma,E,rb_min");
    for arch in [skylake_avx512(), sx_aurora()] {
        println!(
            "{},{},{},{},{},{}",
            arch.name,
            arch.n_vlen(),
            arch.n_fma,
            arch.l_fma,
            formula1_required_independent_elems(&arch),
            formula2_rb_min(&arch),
        );
    }
    println!();
    println!("# Paper Table 1: skylake E=160, sx-aurora E=12288.");
}
