//! Table 3: the ResNet convolution layer suite, with derived per-layer
//! properties (flop counts and the Formula 3 conflict predictions that
//! Section 8 references).

use lsv_arch::presets::sx_aurora;
use lsv_conv::tuning::kernel_config;
use lsv_conv::{Algorithm, Direction};
use lsv_models::{resnet_layers, TABLE3};

fn main() {
    let arch = sx_aurora();
    let layers = resnet_layers(256);
    println!("id,IC,OC,IH/IW,OH/OW,KH/KW,stride,pad,gflops_n256,dc_conflict_fwdd,dc_conflict_bwdd");
    for (id, p) in layers.iter().enumerate() {
        let (_, _, _, ohw, ..) = TABLE3[id];
        let f = kernel_config(&arch, p, Direction::Fwd, Algorithm::Dc, 8);
        let b = kernel_config(&arch, p, Direction::BwdData, Algorithm::Dc, 8);
        println!(
            "{},{},{},{},{},{},{},{},{:.2},{},{}",
            id,
            p.ic,
            p.oc,
            p.ih,
            ohw,
            p.kh,
            p.stride_w,
            p.pad_w,
            p.flops() as f64 / 1e9,
            f.conflicts_predicted,
            b.conflicts_predicted,
        );
    }
    println!();
    println!(
        "# Paper Section 8: conflicts predicted fwdd on 4,5,8-10,13-18; bwdd on 4,7,9,12,14-18."
    );
}
