//! Table 3: the ResNet convolution layer suite, with derived per-layer
//! properties (flop counts and the Formula 3 conflict predictions that
//! Section 8 references).
//!
//! `--profile` additionally runs a profiled forward DC pass per layer
//! (minibatch 8), writes the artifacts under `results/profile/table3/`, and
//! appends comment lines naming each layer's hottest region — the measured
//! counterpart of the analytic conflict predictions.

use lsv_arch::presets::sx_aurora;
use lsv_bench::par;
use lsv_bench::profiling::{profile_meta, write_profile_artifacts};
use lsv_conv::tuning::kernel_config;
use lsv_conv::{bench_layer_profiled, Algorithm, Direction, ExecutionMode};
use lsv_models::{resnet_layers, TABLE3};
use std::path::Path;

fn main() {
    let profile = std::env::args().any(|a| a == "--profile");
    let arch = sx_aurora();
    let layers = resnet_layers(256);
    println!("id,IC,OC,IH/IW,OH/OW,KH/KW,stride,pad,gflops_n256,dc_conflict_fwdd,dc_conflict_bwdd");
    for (id, p) in layers.iter().enumerate() {
        let (_, _, _, ohw, ..) = TABLE3[id];
        let f = kernel_config(&arch, p, Direction::Fwd, Algorithm::Dc, 8);
        let b = kernel_config(&arch, p, Direction::BwdData, Algorithm::Dc, 8);
        println!(
            "{},{},{},{},{},{},{},{},{:.2},{},{}",
            id,
            p.ic,
            p.oc,
            p.ih,
            ohw,
            p.kh,
            p.stride_w,
            p.pad_w,
            p.flops() as f64 / 1e9,
            f.conflicts_predicted,
            b.conflicts_predicted,
        );
    }
    println!();
    println!(
        "# Paper Section 8: conflicts predicted fwdd on 4,5,8-10,13-18; bwdd on 4,7,9,12,14-18."
    );

    if profile {
        let out_dir = Path::new("results/profile/table3");
        let small = resnet_layers(8);
        let summaries: Vec<String> = par::par_map((0..small.len()).collect::<Vec<_>>(), |id| {
            let p = &small[id];
            let (_, region_profile) = bench_layer_profiled(
                &arch,
                p,
                Direction::Fwd,
                Algorithm::Dc,
                ExecutionMode::TimingOnly,
            );
            let meta = profile_meta(&arch, p, Direction::Fwd, "DC", &region_profile);
            write_profile_artifacts(out_dir, &format!("l{id}_fwdd_DC"), &region_profile, &meta)
                .unwrap_or_else(|e| panic!("profile artifacts for layer {id}: {e}"));
            let total = region_profile.total.cycles.max(1) as f64;
            let hottest = (0..region_profile.regions.len() as u32)
                .max_by_key(|&r| region_profile.regions[r as usize].cycles)
                .unwrap_or(0);
            format!(
                "# profile l{id}: hottest {} ({:.1}% self), L1 MPKI {:.2}",
                region_profile.full_name(hottest),
                region_profile.regions[hottest as usize].cycles as f64 / total * 100.0,
                region_profile.regions[hottest as usize].mpki_l1()
            )
        });
        println!();
        for line in summaries {
            println!("{line}");
        }
        println!("# profile artifacts written under {}", out_dir.display());
    }
}
