//! The artifact's `validate.sh` equivalent: functional correctness checks of
//! every convolution algorithm (including the vednn baseline) against the
//! naive reference, over every Table 3 layer and direction.
//!
//! Emits one CSV line per test case with a `status` field (`passed` /
//! `failed`), exactly like the artifact's correctness stage.
//!
//! Usage: `validate [minibatch]` (default 1).

use lsv_arch::presets::sx_aurora;
use lsv_conv::{naive, validate, Algorithm, Direction};
use lsv_models::resnet_layers;
use lsv_vednn::VednnConv;
use rand::{Rng, SeedableRng};

fn main() {
    let minibatch: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(1);
    let arch = sx_aurora();
    let layers = resnet_layers(minibatch);

    let mut jobs: Vec<(usize, Direction, &'static str)> = Vec::new();
    for id in 0..layers.len() {
        for dir in Direction::ALL {
            for name in ["DC", "BDC", "MBDC", "vednn"] {
                jobs.push((id, dir, name));
            }
        }
    }

    let mut results: Vec<(usize, Direction, &'static str, f32, bool)> =
        lsv_bench::par::par_map(jobs, |(id, dir, name)| {
            let p = layers[id];
            let (rel, pass) = match name {
                "vednn" => {
                    // Deterministic in (arch, p, dir): served from the layer
                    // store when a previous regen validated the same point.
                    let st = lsv_conv::store::store();
                    let key = lsv_conv::store::validation_key(&arch, &p, dir, "vednn");
                    let fresh = || {
                        let mut rng = rand::rngs::StdRng::seed_from_u64(99 + id as u64);
                        let src: Vec<f32> = (0..p.n * p.ic * p.ih * p.iw)
                            .map(|_| rng.gen_range(-1.0..1.0))
                            .collect();
                        let wei: Vec<f32> = (0..p.oc * p.ic * p.kh * p.kw)
                            .map(|_| rng.gen_range(-1.0..1.0))
                            .collect();
                        let dst: Vec<f32> = (0..p.n * p.oc * p.oh() * p.ow())
                            .map(|_| rng.gen_range(-1.0..1.0))
                            .collect();
                        let conv = VednnConv::best(&arch, p, dir);
                        let (got, _) = conv.run_functional(&src, &wei, &dst);
                        let want = match dir {
                            Direction::Fwd => naive::forward(&p, &src, &wei),
                            Direction::BwdData => naive::backward_data(&p, &dst, &wei),
                            Direction::BwdWeights => naive::backward_weights(&p, &src, &dst),
                        };
                        let err = naive::max_abs_diff(&got, &want);
                        let scale = want.iter().fold(0.0f32, |m, v| m.max(v.abs())).max(1.0);
                        let rel = err / scale;
                        lsv_conv::ValidationReport {
                            max_abs_err: err,
                            rel_err: rel,
                            passed: rel < 1e-2,
                        }
                    };
                    let r = if let Some(r) = st.get_validation(&key) {
                        if st.paranoid_sample(&key) {
                            let f = fresh();
                            assert_eq!(
                                (f.rel_err.to_bits(), f.passed),
                                (r.rel_err.to_bits(), r.passed),
                                "paranoid store recheck diverged for key {}",
                                key.canonical()
                            );
                            st.note_paranoid_recheck();
                        }
                        r
                    } else {
                        let r = fresh();
                        st.put_validation(&key, &r);
                        r
                    };
                    (r.rel_err, r.passed)
                }
                _ => {
                    let alg = match name {
                        "DC" => Algorithm::Dc,
                        "BDC" => Algorithm::Bdc,
                        _ => Algorithm::Mbdc,
                    };
                    let r = validate(&arch, &p, dir, alg);
                    (r.rel_err, r.passed)
                }
            };
            (id, dir, name, rel, pass)
        });
    results.sort_by_key(|r| (r.0, r.1.short_name(), r.2));

    println!("problem_id,direction,algorithm,minibatch,rel_err,status");
    let mut failures = 0;
    for (id, dir, name, rel, pass) in &results {
        if !pass {
            failures += 1;
        }
        println!(
            "{},{},{},{},{:.2e},{}",
            id,
            dir.short_name(),
            name,
            minibatch,
            rel,
            if *pass { "passed" } else { "failed" }
        );
    }
    eprintln!(
        "# {} / {} cases passed",
        results.len() - failures,
        results.len()
    );
    lsv_conv::store::dump_stats_to_env_file();
    if failures > 0 {
        std::process::exit(1);
    }
}
