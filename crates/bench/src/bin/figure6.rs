//! Figure 6: ResNet-101 training-step throughput (GFLOP/s over all three
//! passes) for vednn, DC, BDC and MBDC across minibatch sizes.
//!
//! Paper behaviour: BDC is best at every minibatch; vednn is slightly
//! faster than DC below minibatch 32 and faster than MBDC at 8, but fails
//! to scale as the problem grows.
//!
//! Usage: `figure6 [minibatches...]` (default 8 16 32 64 128 256).

use lsv_arch::presets::sx_aurora;
use lsv_bench::{layer_time_tables, model_time_from_table, Engine};
use lsv_conv::ExecutionMode;
use lsv_models::ResNetModel;

fn main() {
    let args: Vec<usize> = std::env::args().filter_map(|a| a.parse().ok()).collect();
    let minibatches: Vec<usize> = if args.is_empty() {
        vec![8, 16, 32, 64, 128, 256]
    } else {
        args
    };
    let arch = sx_aurora();
    let model = ResNetModel::R101;
    // Every minibatch x engine sweep simulates in one flat job pool; rows
    // print in the fixed order below.
    let configs: Vec<_> = minibatches
        .iter()
        .flat_map(|&mb| {
            let arch = &arch;
            Engine::ALL.iter().map(move |&e| (arch.clone(), mb, e))
        })
        .collect();
    let tables = layer_time_tables(&configs, ExecutionMode::TimingOnly);
    println!("minibatch,algorithm,step_ms,gflops");
    for (ci, &(_, mb, e)) in configs.iter().enumerate() {
        let flops = model.training_flops(mb) as f64;
        let ms = model_time_from_table(&tables[ci], model);
        let gflops = flops / (ms / 1e3) / 1e9;
        println!("{},{},{:.2},{:.1}", mb, e.name(), ms, gflops);
    }
    println!();
    println!("# Paper Figure 6: BDC best everywhere; vednn competitive at small minibatch,");
    println!("# does not scale; all direct algorithms scale with problem size.");
    lsv_conv::store::dump_stats_to_env_file();
}
