//! The artifact's `performance.sh` equivalent: one CSV line per experiment,
//! indexed by (problem id, direction, algorithm, minibatch), reporting
//! GFLOP/s and milliseconds.
//!
//! Usage: `performance [minibatches...] [--profile]`
//!
//! With `--profile` every direct-algorithm run additionally records the
//! region profile and writes the per-row artifacts
//! (`results/profile/performance/l<id>_<dir>_<alg>_mb<N>.{json,trace.json,folded}`).
//! The CSV is unchanged: profiling is cycle-neutral, so the profiled runs
//! report identical numbers.

use lsv_arch::presets::sx_aurora;
use lsv_bench::profiling::{profile_meta, write_profile_artifacts};
use lsv_bench::{bench_engine, par, Engine, Row};
use lsv_conv::{bench_layer_profiled, Direction, ExecutionMode};
use lsv_models::resnet_layers;
use std::path::Path;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let profile = argv.iter().any(|a| a == "--profile");
    let args: Vec<usize> = argv.iter().filter_map(|a| a.parse().ok()).collect();
    let minibatches: Vec<usize> = if args.is_empty() { vec![256] } else { args };
    let arch = sx_aurora();
    let out_dir = Path::new("results/profile/performance");
    println!("{}", Row::csv_header());
    for &mb in &minibatches {
        let layers = resnet_layers(mb);
        let jobs: Vec<(usize, Direction, Engine)> = (0..layers.len())
            .flat_map(|id| {
                Direction::ALL
                    .into_iter()
                    .flat_map(move |d| Engine::ALL.into_iter().map(move |e| (id, d, e)))
            })
            .collect();
        let mut rows: Vec<Row> = par::par_map(jobs, |(id, direction, engine)| {
            let perf = match (profile, engine) {
                (true, Engine::Direct(alg)) => {
                    let (perf, region_profile) = bench_layer_profiled(
                        &arch,
                        &layers[id],
                        direction,
                        alg,
                        ExecutionMode::TimingOnly,
                    );
                    let meta = profile_meta(
                        &arch,
                        &layers[id],
                        direction,
                        alg.short_name(),
                        &region_profile,
                    );
                    let stem = format!(
                        "l{id}_{}_{}_mb{mb}",
                        direction.short_name(),
                        alg.short_name()
                    );
                    write_profile_artifacts(out_dir, &stem, &region_profile, &meta)
                        .unwrap_or_else(|e| panic!("profile artifacts for {stem}: {e}"));
                    perf
                }
                _ => bench_engine(
                    &arch,
                    &layers[id],
                    direction,
                    engine,
                    ExecutionMode::TimingOnly,
                ),
            };
            Row {
                layer_id: id,
                direction,
                engine,
                minibatch: mb,
                perf,
            }
        });
        rows.sort_by_key(|r| (r.direction.short_name(), r.layer_id, r.engine.name()));
        for r in &rows {
            println!("{}", r.to_csv());
        }
    }
    if profile {
        eprintln!("# profile artifacts written under {}", out_dir.display());
    }
    lsv_conv::store::dump_stats_to_env_file();
}
