//! The artifact's `performance.sh` equivalent: one CSV line per experiment,
//! indexed by (problem id, direction, algorithm, minibatch), reporting
//! GFLOP/s and milliseconds.
//!
//! Usage: `performance [minibatches...]` (default 256).

use lsv_arch::presets::sx_aurora;
use lsv_bench::{run_suite, Engine, Row};
use lsv_conv::{Direction, ExecutionMode};

fn main() {
    let args: Vec<usize> = std::env::args().filter_map(|a| a.parse().ok()).collect();
    let minibatches: Vec<usize> = if args.is_empty() { vec![256] } else { args };
    let arch = sx_aurora();
    println!("{}", Row::csv_header());
    for &mb in &minibatches {
        let rows = run_suite(
            &arch,
            mb,
            &Engine::ALL,
            &Direction::ALL,
            ExecutionMode::TimingOnly,
        );
        for r in &rows {
            println!("{}", r.to_csv());
        }
    }
}
