//! Figure 2: micro-kernel memory footprint of the state-of-the-art SIMD
//! direct convolution for 3x3 layers (VGG/ResNet shapes) across vector
//! lengths. The paper's observation: the weights sub-tensor grows
//! quadratically with `N_vlen`, reaching ~9 MB at 16,384-bit vectors.

use lsv_arch::formula2_rb_min;
use lsv_arch::presets::aurora_with_vlen_bits;
use lsv_conv::footprint::microkernel_footprint;
use lsv_conv::tuning::split_register_block;
use lsv_conv::ConvProblem;

fn main() {
    // 3x3 layers of VGG and ResNet, labelled by spatial size x channels as
    // in the figure's x-axis.
    let shapes: &[(usize, usize)] = &[
        (224, 64),
        (112, 128),
        (56, 64),
        (56, 256),
        (28, 128),
        (28, 512),
        (14, 256),
        (14, 512),
        (7, 512),
    ];
    let vlens = [512usize, 2048, 4096, 8192, 16384];
    // Footprints are analytic but the bin still routes through the shared
    // pool so every sweep binary parallelizes the same way.
    let jobs: Vec<(usize, usize)> = (0..shapes.len())
        .flat_map(|s| (0..vlens.len()).map(move |v| (s, v)))
        .collect();
    let cells = lsv_bench::par::par_map(jobs, |(s, v)| {
        let (hw, c) = shapes[s];
        let arch = aurora_with_vlen_bits(vlens[v]);
        let p = ConvProblem::new(256, c, c, hw, hw, 3, 3, 1, 1);
        let rb = split_register_block(formula2_rb_min(&arch), p.ow(), p.oh());
        let fp = microkernel_footprint(&arch, &p, rb);
        format!(",{:.3}", fp.total_mib())
    });
    print!("layer");
    for v in vlens {
        print!(",{}b_MiB", v);
    }
    println!();
    for (s, &(hw, c)) in shapes.iter().enumerate() {
        print!("{}x{}_{}ch", hw, hw, c);
        for cell in &cells[s * vlens.len()..(s + 1) * vlens.len()] {
            print!("{cell}");
        }
        println!();
    }
    println!();
    println!(
        "# Paper Figure 2: footprints reach ~9 MiB at 16384-bit vectors for 512-channel layers."
    );
}
