//! Figure 2: micro-kernel memory footprint of the state-of-the-art SIMD
//! direct convolution for 3x3 layers (VGG/ResNet shapes) across vector
//! lengths. The paper's observation: the weights sub-tensor grows
//! quadratically with `N_vlen`, reaching ~9 MB at 16,384-bit vectors.

use lsv_arch::formula2_rb_min;
use lsv_arch::presets::aurora_with_vlen_bits;
use lsv_conv::footprint::microkernel_footprint;
use lsv_conv::tuning::split_register_block;
use lsv_conv::ConvProblem;

fn main() {
    // 3x3 layers of VGG and ResNet, labelled by spatial size x channels as
    // in the figure's x-axis.
    let shapes: &[(usize, usize)] = &[
        (224, 64),
        (112, 128),
        (56, 64),
        (56, 256),
        (28, 128),
        (28, 512),
        (14, 256),
        (14, 512),
        (7, 512),
    ];
    let vlens = [512usize, 2048, 4096, 8192, 16384];
    print!("layer");
    for v in vlens {
        print!(",{}b_MiB", v);
    }
    println!();
    for &(hw, c) in shapes {
        print!("{}x{}_{}ch", hw, hw, c);
        for v in vlens {
            let arch = aurora_with_vlen_bits(v);
            let p = ConvProblem::new(256, c, c, hw, hw, 3, 3, 1, 1);
            let rb = split_register_block(formula2_rb_min(&arch), p.ow(), p.oh());
            let fp = microkernel_footprint(&arch, &p, rb);
            print!(",{:.3}", fp.total_mib());
        }
        println!();
    }
    println!();
    println!(
        "# Paper Figure 2: footprints reach ~9 MiB at 16384-bit vectors for 512-channel layers."
    );
}
