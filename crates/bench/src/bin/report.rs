//! The artifact's analysis-notebook role (appendix A.4): read the CSVs the
//! harness binaries produced into `results/` and check the paper's headline
//! claims automatically, printing a PASS/FAIL verdict per claim.
//!
//! Usage: `report [results_dir]` (default `results`). Exits non-zero if any
//! claim fails, so it can gate CI.

use std::collections::HashMap;
use std::path::Path;

#[derive(Debug, Clone)]
struct PerfRow {
    layer: usize,
    direction: String,
    algorithm: String,
    gflops: f64,
    #[allow(dead_code)] // kept for ad-hoc analysis of the CSVs
    time_ms: f64,
    conflicts_predicted: bool,
}

fn load_performance(dir: &Path) -> Vec<PerfRow> {
    let text = std::fs::read_to_string(dir.join("figure4.csv"))
        .or_else(|_| std::fs::read_to_string(dir.join("performance.csv")))
        .expect("run figure4/performance first (see regen_results.sh)");
    text.lines()
        .filter(|l| !l.starts_with('#') && !l.starts_with("problem_id") && !l.trim().is_empty())
        .filter_map(|l| {
            let f: Vec<&str> = l.split(',').collect();
            if f.len() < 10 {
                return None;
            }
            Some(PerfRow {
                layer: f[0].parse().ok()?,
                direction: f[1].to_string(),
                algorithm: f[2].to_string(),
                gflops: f[4].parse().ok()?,
                time_ms: f[5].parse().ok()?,
                conflicts_predicted: f[9] == "true",
            })
        })
        .collect()
}

fn geomean(xs: impl IntoIterator<Item = f64>) -> f64 {
    let (mut s, mut n) = (0.0, 0);
    for x in xs {
        if x > 0.0 {
            s += x.ln();
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        (s / n as f64).exp()
    }
}

struct Verdicts {
    failures: usize,
}

impl Verdicts {
    fn check(&mut self, name: &str, ok: bool, detail: String) {
        println!("[{}] {name}: {detail}", if ok { "PASS" } else { "FAIL" });
        if !ok {
            self.failures += 1;
        }
    }
}

fn main() {
    let dir = std::env::args().nth(1).unwrap_or_else(|| "results".into());
    let dir = Path::new(&dir);
    let rows = load_performance(dir);
    assert!(!rows.is_empty(), "no performance rows found");

    let mut v = Verdicts { failures: 0 };

    // Index rows by (direction, algorithm).
    let mut by: HashMap<(String, String), Vec<&PerfRow>> = HashMap::new();
    for r in &rows {
        by.entry((r.direction.clone(), r.algorithm.clone()))
            .or_default()
            .push(r);
    }
    let gm = |dir: &str, alg: &str| -> f64 {
        geomean(
            by.get(&(dir.to_string(), alg.to_string()))
                .map(|v| v.iter().map(|r| r.gflops).collect::<Vec<_>>())
                .unwrap_or_default(),
        )
    };

    // --- claim: BDC beats DC in every direction (>= 1.0x, > 1.3x overall)
    for d in ["fwdd", "bwdd", "bwdw"] {
        let ratio = gm(d, "BDC") / gm(d, "DC");
        v.check(
            &format!("BDC >= DC ({d})"),
            ratio >= 0.99,
            format!("geomean ratio {ratio:.2}x"),
        );
    }

    // --- claim: BDC and MBDC beat vednn overall (paper: 1.83x / 1.63x on R101)
    let bdc_vednn = geomean(
        ["fwdd", "bwdd", "bwdw"]
            .iter()
            .map(|d| gm(d, "BDC") / gm(d, "vednn")),
    );
    let mbdc_vednn = geomean(
        ["fwdd", "bwdd", "bwdw"]
            .iter()
            .map(|d| gm(d, "MBDC") / gm(d, "vednn")),
    );
    v.check(
        "BDC > vednn (paper 1.83x)",
        bdc_vednn > 1.3,
        format!("{bdc_vednn:.2}x"),
    );
    v.check(
        "MBDC > vednn (paper 1.63x)",
        mbdc_vednn > 1.2,
        format!("{mbdc_vednn:.2}x"),
    );

    // --- claim: DC collapses on the Formula-3 layers (fwdd)
    let (mut hot, mut cold) = (Vec::new(), Vec::new());
    for r in by.get(&("fwdd".to_string(), "DC".to_string())).unwrap() {
        if r.conflicts_predicted {
            hot.push(r.gflops);
        } else {
            cold.push(r.gflops);
        }
    }
    let collapse = geomean(cold.iter().copied()) / geomean(hot.iter().copied());
    v.check(
        "DC conflict collapse (fwdd)",
        collapse > 1.5,
        format!(
            "clean/conflicted geomean = {collapse:.2}x ({} conflicted layers)",
            hot.len()
        ),
    );

    // --- claim: BDC rescues the conflicted layers (paper ~2.95x over DC)
    let rescued: Vec<f64> = rows
        .iter()
        .filter(|r| r.direction == "fwdd" && r.algorithm == "DC" && r.conflicts_predicted)
        .map(|dc| {
            let bdc = rows
                .iter()
                .find(|r| r.layer == dc.layer && r.direction == "fwdd" && r.algorithm == "BDC")
                .unwrap();
            bdc.gflops / dc.gflops
        })
        .collect();
    let rescue = geomean(rescued.iter().copied());
    v.check(
        "BDC speedup on conflicted fwdd layers (paper ~2.95x)",
        rescue > 2.0,
        format!("{rescue:.2}x"),
    );

    // --- claim: MBDC bwdw is bimodal (slow early, fast late)
    let mbdc_bwdw: Vec<&PerfRow> = rows
        .iter()
        .filter(|r| r.direction == "bwdw" && r.algorithm == "MBDC")
        .collect();
    let dc_bwdw: Vec<&PerfRow> = rows
        .iter()
        .filter(|r| r.direction == "bwdw" && r.algorithm == "DC")
        .collect();
    let early = |rs: &[&PerfRow]| geomean(rs.iter().filter(|r| r.layer <= 10).map(|r| r.gflops));
    let late = |rs: &[&PerfRow]| geomean(rs.iter().filter(|r| r.layer >= 11).map(|r| r.gflops));
    v.check(
        "MBDC bwdw slower than DC on layers 0-10 (bank serialization)",
        early(&mbdc_bwdw) < early(&dc_bwdw),
        format!("{:.0} vs {:.0} GFLOP/s", early(&mbdc_bwdw), early(&dc_bwdw)),
    );
    v.check(
        "MBDC bwdw faster than DC on layers 11-18",
        late(&mbdc_bwdw) > late(&dc_bwdw),
        format!("{:.0} vs {:.0} GFLOP/s", late(&mbdc_bwdw), late(&dc_bwdw)),
    );

    // --- claim: vednn strong on layer 2, weak on 7x7 (ids 16-18)
    let vednn_l2 = rows
        .iter()
        .find(|r| r.layer == 2 && r.direction == "fwdd" && r.algorithm == "vednn")
        .unwrap();
    let vednn_7x7 = geomean(
        rows.iter()
            .filter(|r| r.layer >= 16 && r.direction == "fwdd" && r.algorithm == "vednn")
            .map(|r| r.gflops),
    );
    v.check(
        "vednn best-case on layer 2 (paper 65.5% peak)",
        vednn_l2.gflops > 2500.0,
        format!("{:.0} GFLOP/s", vednn_l2.gflops),
    );
    v.check(
        "vednn weak on 7x7 layers",
        vednn_7x7 < vednn_l2.gflops / 3.0,
        format!("{vednn_7x7:.0} vs {:.0} GFLOP/s", vednn_l2.gflops),
    );

    // --- Figure 5 claims, if present.
    if let Ok(text) = std::fs::read_to_string(dir.join("figure5.csv")) {
        let mut t: HashMap<(String, usize, String), f64> = HashMap::new();
        for l in text
            .lines()
            .filter(|l| !l.starts_with('#') && !l.starts_with("model"))
        {
            let f: Vec<&str> = l.split(',').collect();
            if f.len() == 5 {
                if let (Ok(vl), Ok(ms)) = (f[1].parse::<usize>(), f[3].parse::<f64>()) {
                    t.insert((f[0].to_string(), vl, f[2].to_string()), ms);
                }
            }
        }
        for model in ["resnet-50", "resnet-101", "resnet-152"] {
            if let (Some(dc), Some(bdc)) = (
                t.get(&(model.to_string(), 16384, "DC".to_string())),
                t.get(&(model.to_string(), 16384, "BDC".to_string())),
            ) {
                let r = dc / bdc;
                v.check(
                    &format!("Figure 5: BDC > DC at 16384-bit ({model})"),
                    r > 1.15,
                    format!("{r:.2}x (paper 1.41-1.46x)"),
                );
            }
            // parity below 8192-bit
            if let (Some(dc), Some(bdc)) = (
                t.get(&(model.to_string(), 2048, "DC".to_string())),
                t.get(&(model.to_string(), 2048, "BDC".to_string())),
            ) {
                let r = dc / bdc;
                v.check(
                    &format!("Figure 5: parity at 2048-bit ({model})"),
                    (0.9..1.15).contains(&r),
                    format!("{r:.2}x"),
                );
            }
        }
    }

    println!();
    if v.failures == 0 {
        println!("all headline claims reproduced.");
    } else {
        println!("{} claim(s) FAILED.", v.failures);
        std::process::exit(1);
    }
}
