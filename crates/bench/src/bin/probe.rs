//! Diagnostic probe: detailed stall/cache breakdown for one layer,
//! direction and engine set. Development tool; not part of the paper's
//! experiment set.
//!
//! Usage: `probe <layer_id> <fwdd|bwdd|bwdw> [minibatch]`

use lsv_arch::presets::sx_aurora;
use lsv_bench::{bench_engine, Engine};
use lsv_conv::{ConvDesc, Direction, ExecutionMode};
use lsv_models::resnet_layer;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let id: usize = args.get(1).and_then(|a| a.parse().ok()).unwrap_or(17);
    let dir = match args.get(2).map(|s| s.as_str()) {
        Some("bwdd") => Direction::BwdData,
        Some("bwdw") => Direction::BwdWeights,
        _ => Direction::Fwd,
    };
    let minibatch: usize = args.get(3).and_then(|a| a.parse().ok()).unwrap_or(256);
    let arch = sx_aurora();
    let p = resnet_layer(id, minibatch);
    println!("layer {id} {dir}: {p}");
    for engine in Engine::ALL {
        let perf = bench_engine(&arch, &p, dir, engine, ExecutionMode::TimingOnly);
        let r = &perf.report;
        let cyc = r.cycles.max(1) as f64;
        let stalls = r
            .stall_breakdown()
            .map(|(label, c)| format!("{label} {:.2}", c as f64 / cyc))
            .join(" ");
        println!(
            "{:6}: {:8.1} GF/s eff {:5.3} | slice cycles {:>12} | {stalls} | insts {} | L1 h/m/c {}/{}/{} L2m {} LLCm {}",
            engine.name(),
            perf.gflops,
            perf.efficiency,
            r.cycles,
            r.insts.total(),
            r.cache.l1.hits,
            r.cache.l1.misses,
            r.cache.l1.conflict_misses,
            r.cache.l2.misses,
            r.cache.llc.misses,
        );
        if let Engine::Direct(alg) = engine {
            let cfg = *ConvDesc::new(p, dir, alg).create(&arch, 8).unwrap().cfg();
            println!(
                "        vl {} rb ({} x {}) rb_c {} tile (kh {} kw {} c {}) wbuf {} src_cb {} dst_cb {} wei ({},{}) conf {}",
                cfg.vl, cfg.rb.rb_w, cfg.rb.rb_h, cfg.rb_c, cfg.tile.kh_i, cfg.tile.kw_i,
                cfg.tile.c_i, cfg.wbuf, cfg.src_layout.cb, cfg.dst_layout.cb,
                cfg.wei_layout.icb, cfg.wei_layout.ocb, cfg.conflicts_predicted
            );
        }
    }
}
