//! The MPKI study of Section 8: L1 misses per kilo-instruction measured
//! with the (simulated) hardware counters, comparing BDC and MBDC to DC per
//! direction.
//!
//! The counters come from the region profiler's per-region accounting
//! (summed over every region path), not from the plain slice report — the
//! profiler's conservation invariant guarantees the two agree *exactly*, and
//! this bin asserts it on every row, making the whole study a continuous
//! cross-check of the accounting.
//!
//! Paper: BDC reduces MPKI by 27% (fwdd) / 18% (bwdd) / ~0% (bwdw); MBDC by
//! 22% / 20% / 8%.
//!
//! Usage: `mpki [minibatch]` (default 64 — MPKI is per-instruction, so the
//! smaller default keeps the run quick without changing the ratios).

use lsv_arch::presets::sx_aurora;
use lsv_bench::{par, Engine};
use lsv_conv::perf::bench_layer_profiled_cached;
use lsv_conv::{Algorithm, Direction, ExecutionMode};
use lsv_models::resnet_layers;

struct MpkiRow {
    layer_id: usize,
    direction: Direction,
    engine: Engine,
    mpki_l1: f64,
    conflict_fraction: f64,
}

fn main() {
    let minibatch: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(64);
    let arch = sx_aurora();
    let algorithms = [Algorithm::Dc, Algorithm::Bdc, Algorithm::Mbdc];
    let layers = resnet_layers(minibatch);
    let jobs: Vec<(usize, Direction, Algorithm)> = (0..layers.len())
        .flat_map(|id| {
            Direction::ALL
                .into_iter()
                .flat_map(move |d| algorithms.into_iter().map(move |a| (id, d, a)))
        })
        .collect();
    let mut rows: Vec<MpkiRow> = par::par_map(jobs, |(id, direction, alg)| {
        let (perf, profile) = bench_layer_profiled_cached(
            &arch,
            &layers[id],
            direction,
            alg,
            ExecutionMode::TimingOnly,
        );
        // MPKI from the per-region sums when this row was simulated; a store
        // hit carries no region breakdown (the profiler's conservation
        // invariant made the two views bit-identical when the entry was
        // recorded, and paranoid mode re-checks stored slices directly).
        let (mpki_l1, conflict_fraction) = if let Some(profile) = &profile {
            let insts = profile.insts_total().total();
            let l1 = profile.cache_total().l1;
            let mpki_l1 = l1.mpki(insts);
            let conflict_fraction = if l1.misses == 0 {
                0.0
            } else {
                l1.conflict_misses as f64 / l1.misses as f64
            };
            assert_eq!(
                (mpki_l1, conflict_fraction),
                (perf.mpki_l1, perf.conflict_fraction),
                "region accounting diverged from the slice report (layer {id} {direction} {alg})"
            );
            (mpki_l1, conflict_fraction)
        } else {
            (perf.mpki_l1, perf.conflict_fraction)
        };
        MpkiRow {
            layer_id: id,
            direction,
            engine: Engine::Direct(alg),
            mpki_l1,
            conflict_fraction,
        }
    });
    rows.sort_by_key(|r| (r.direction.short_name(), r.layer_id, r.engine.name()));
    println!("layer_id,direction,algorithm,mpki_l1,conflict_fraction");
    for r in &rows {
        println!(
            "{},{},{},{:.3},{:.3}",
            r.layer_id,
            r.direction.short_name(),
            r.engine.name(),
            r.mpki_l1,
            r.conflict_fraction
        );
    }
    println!();
    println!("# average MPKI reduction vs DC (paper: BDC 27/18/~0 %, MBDC 22/20/8 %)");
    for dir in Direction::ALL {
        let avg = |name: &str| -> f64 {
            let v: Vec<f64> = rows
                .iter()
                .filter(|r| r.direction == dir && r.engine.name() == name)
                .map(|r| r.mpki_l1)
                .collect();
            v.iter().sum::<f64>() / v.len().max(1) as f64
        };
        let dc = avg("DC");
        for name in ["BDC", "MBDC"] {
            let red = if dc > 0.0 {
                (1.0 - avg(name) / dc) * 100.0
            } else {
                0.0
            };
            println!(
                "# {dir} {name}: {red:+.1}% vs DC (avg MPKI {:.2} -> {:.2})",
                dc,
                avg(name)
            );
        }
    }
    lsv_conv::store::dump_stats_to_env_file();
}
