//! The MPKI study of Section 8: L1 misses per kilo-instruction measured
//! with the (simulated) hardware counters, comparing BDC and MBDC to DC per
//! direction.
//!
//! Paper: BDC reduces MPKI by 27% (fwdd) / 18% (bwdd) / ~0% (bwdw); MBDC by
//! 22% / 20% / 8%.
//!
//! Usage: `mpki [minibatch]` (default 64 — MPKI is per-instruction, so the
//! smaller default keeps the run quick without changing the ratios).

use lsv_arch::presets::sx_aurora;
use lsv_bench::{run_suite, Engine};
use lsv_conv::{Algorithm, Direction, ExecutionMode};

fn main() {
    let minibatch: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(64);
    let arch = sx_aurora();
    let engines = [
        Engine::Direct(Algorithm::Dc),
        Engine::Direct(Algorithm::Bdc),
        Engine::Direct(Algorithm::Mbdc),
    ];
    let rows = run_suite(
        &arch,
        minibatch,
        &engines,
        &Direction::ALL,
        ExecutionMode::TimingOnly,
    );
    println!("layer_id,direction,algorithm,mpki_l1,conflict_fraction");
    for r in &rows {
        println!(
            "{},{},{},{:.3},{:.3}",
            r.layer_id,
            r.direction.short_name(),
            r.engine.name(),
            r.perf.mpki_l1,
            r.perf.conflict_fraction
        );
    }
    println!();
    println!("# average MPKI reduction vs DC (paper: BDC 27/18/~0 %, MBDC 22/20/8 %)");
    for dir in Direction::ALL {
        let avg = |name: &str| -> f64 {
            let v: Vec<f64> = rows
                .iter()
                .filter(|r| r.direction == dir && r.engine.name() == name)
                .map(|r| r.perf.mpki_l1)
                .collect();
            v.iter().sum::<f64>() / v.len().max(1) as f64
        };
        let dc = avg("DC");
        for name in ["BDC", "MBDC"] {
            let red = if dc > 0.0 {
                (1.0 - avg(name) / dc) * 100.0
            } else {
                0.0
            };
            println!(
                "# {dir} {name}: {red:+.1}% vs DC (avg MPKI {:.2} -> {:.2})",
                dc,
                avg(name)
            );
        }
    }
}
