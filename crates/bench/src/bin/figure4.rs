//! Figure 4: per-layer performance (GFLOP/s and % of peak) of vednn, DC,
//! BDC and MBDC on the Table 3 suite, for all three training directions at
//! minibatch 256, on the 8-core SX-Aurora model. The rightmost "geomean"
//! row aggregates each engine across layers, as in the paper.
//!
//! Usage: `figure4 [minibatch] [--functional]`

use lsv_arch::presets::sx_aurora;
use lsv_bench::{geomean, run_suite, Engine, Row};
use lsv_conv::{Direction, ExecutionMode};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let minibatch: usize = args
        .iter()
        .filter_map(|a| a.parse().ok())
        .next()
        .unwrap_or(256);
    let mode = if args.iter().any(|a| a == "--functional") {
        ExecutionMode::Functional
    } else {
        ExecutionMode::TimingOnly
    };
    let arch = sx_aurora();
    let rows = run_suite(&arch, minibatch, &Engine::ALL, &Direction::ALL, mode);

    println!("{}", Row::csv_header());
    for r in &rows {
        println!("{}", r.to_csv());
    }

    // Figure 4's aggregate columns: geometric-mean GFLOP/s per engine and
    // direction.
    println!();
    println!("# geomean GFLOP/s (and % of peak) per engine, per direction");
    for dir in Direction::ALL {
        for engine in Engine::ALL {
            let g = geomean(
                rows.iter()
                    .filter(|r| r.direction == dir && r.engine == engine)
                    .map(|r| r.perf.gflops),
            );
            let eff = g * 1e9 / arch.peak_flops() * 100.0;
            println!(
                "# {:5} {:6}: {:8.1} GFLOP/s  ({:4.1}% peak)",
                dir,
                engine.name(),
                g,
                eff
            );
        }
    }
    lsv_conv::store::dump_stats_to_env_file();
}
