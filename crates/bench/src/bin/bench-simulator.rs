//! Host-performance meter for the simulator itself: runs representative
//! sweeps in-process and reports wall time, total *simulated* cycles and
//! the headline "simulated cycles per host second" ratio as JSON
//! (`BENCH_simulator.json`).
//!
//! This measures the host cost of simulation — the quantity the hot-path
//! overhaul (allocation-free `VCore`, O(1) shadow LRU, line-coalesced
//! traffic) optimises — and is the before/after evidence artefact for that
//! work. Simulated cycle counts are pinned bit-identical by the golden
//! fixture in `tests/golden_cycles.rs`; this tool only tracks how fast the
//! host produces them.
//!
//! Usage: `bench-simulator [--smoke] [--out PATH]
//!                         [--regen-before PATH] [--regen-after PATH]
//!                         [--regen-warm PATH] [--store-stats DIR]`
//!
//! `--smoke` shrinks every sweep so CI can run the tool in seconds.
//! `--out` writes the JSON to a file instead of stdout. The optional
//! `--regen-before`/`--regen-after` files hold per-bin wall times of a full
//! `regen_results.sh` run, one `<bin> <ms>ms ...` line each (the format the
//! regen harness logs); they are embedded verbatim so the committed JSON
//! carries the end-to-end regeneration speedup. `--regen-warm` adds a third
//! timing set: a `KEEP_STORE=1` rerun served from the layer store. `--store-stats` points at
//! the regen log directory (`results/logs`): every `<bin>.store.json`
//! counter file the bins dumped on exit is embedded per bin, together with
//! hit/miss totals across the run.

use lsv_arch::presets::sx_aurora;
use lsv_bench::{bench_engine, Engine};
use lsv_conv::{Algorithm, Direction, ExecutionMode};
use lsv_models::resnet_layer;
use std::fmt::Write as _;
use std::time::Instant;

struct Sweep {
    name: &'static str,
    wall_s: f64,
    sim_cycles: u64,
}

/// Run one named batch of layer simulations and record its totals.
fn run_sweep(
    name: &'static str,
    layers: &[usize],
    minibatch: usize,
    directions: &[Direction],
    mode: ExecutionMode,
) -> Sweep {
    let arch = sx_aurora();
    let engines = [
        Engine::Direct(Algorithm::Dc),
        Engine::Direct(Algorithm::Bdc),
        Engine::Direct(Algorithm::Mbdc),
    ];
    let t0 = Instant::now();
    let mut sim_cycles = 0u64;
    for &id in layers {
        let p = resnet_layer(id, minibatch);
        for &dir in directions {
            for &e in &engines {
                let perf = bench_engine(&arch, &p, dir, e, mode);
                sim_cycles += perf.cycles;
            }
        }
    }
    Sweep {
        name,
        wall_s: t0.elapsed().as_secs_f64(),
        sim_cycles,
    }
}

/// Parse `<bin> <ms>ms ...` lines (the regen harness timing format) into
/// `(bin, ms)` pairs, ignoring lines that don't match.
fn parse_timings(path: &str) -> Vec<(String, u64)> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("bench-simulator: cannot read {path}: {e}"));
    text.lines()
        .filter_map(|l| {
            let mut it = l.split_whitespace();
            let name = it.next()?;
            let ms = it.next()?.strip_suffix("ms")?.parse::<u64>().ok()?;
            Some((name.to_string(), ms))
        })
        .collect()
}

fn timings_json(pairs: &[(String, u64)]) -> String {
    let mut s = String::from("{");
    for (i, (name, ms)) in pairs.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        let _ = write!(s, "\"{name}\": {ms}");
    }
    s.push('}');
    s
}

/// Collect every `<bin>.store.json` metrics document a regen run's bins
/// dumped into `dir` (the `metrics.schema.json` shape: `store.*` counters
/// plus the `store.disk_bytes` gauge), sorted by bin name. Each bin is
/// re-rendered as a compact one-line counter object, plus a tally of the
/// counters across all bins.
fn store_stats_json(dir: &str) -> String {
    // (bin, [(short counter name, value)]) — `store.mem_hits` → `mem_hits`.
    let mut per_bin: Vec<(String, Vec<(String, u64)>)> = Vec::new();
    if let Ok(entries) = std::fs::read_dir(dir) {
        for e in entries.flatten() {
            let name = e.file_name().to_string_lossy().into_owned();
            let Some(bin) = name.strip_suffix(".store.json") else {
                continue;
            };
            let Ok(text) = std::fs::read_to_string(e.path()) else {
                continue;
            };
            let Ok(doc) = lsv_obs::parse_json(&text) else {
                continue;
            };
            let mut fields: Vec<(String, u64)> = Vec::new();
            if let Some(lsv_obs::JsonValue::Arr(counters)) = doc.get("counters") {
                for c in counters {
                    let (Some(lsv_obs::JsonValue::Str(cname)), Some(lsv_obs::JsonValue::Num(v))) =
                        (c.get("name"), c.get("value"))
                    else {
                        continue;
                    };
                    let short = cname.strip_prefix("store.").unwrap_or(cname);
                    fields.push((short.to_string(), *v as u64));
                }
            }
            per_bin.push((bin.to_string(), fields));
        }
    }
    per_bin.sort();
    let field_total = |key: &str| -> u64 {
        per_bin
            .iter()
            .flat_map(|(_, fields)| fields.iter())
            .filter(|(k, _)| k == key)
            .map(|(_, v)| v)
            .sum()
    };
    let mut s = String::from("{\n      \"per_bin\": {");
    for (i, (bin, fields)) in per_bin.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "\n        \"{bin}\": {{");
        for (j, (k, v)) in fields.iter().enumerate() {
            if j > 0 {
                s.push_str(", ");
            }
            let _ = write!(s, "\"{k}\": {v}");
        }
        s.push('}');
    }
    s.push_str("\n      },\n");
    let hits = field_total("mem_hits") + field_total("disk_hits");
    let misses = field_total("misses");
    let _ = writeln!(s, "      \"total_hits\": {hits},");
    let _ = writeln!(s, "      \"total_misses\": {misses},");
    let _ = writeln!(
        s,
        "      \"hit_rate\": {:.3},",
        hits as f64 / ((hits + misses) as f64).max(1.0)
    );
    let _ = writeln!(
        s,
        "      \"total_paranoid_rechecks\": {}",
        field_total("paranoid_rechecks")
    );
    s.push_str("    }");
    s
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut out: Option<String> = None;
    let mut before: Option<String> = None;
    let mut after: Option<String> = None;
    let mut warm: Option<String> = None;
    let mut store_dir: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = it.next().cloned(),
            "--regen-before" => before = it.next().cloned(),
            "--regen-after" => after = it.next().cloned(),
            "--regen-warm" => warm = it.next().cloned(),
            "--store-stats" => store_dir = it.next().cloned(),
            other => {
                eprintln!("bench-simulator: unknown argument {other}");
                std::process::exit(2);
            }
        }
    }

    let sweeps = if smoke {
        vec![run_sweep(
            "smoke_layer4_fwdd",
            &[4],
            4,
            &[Direction::Fwd],
            ExecutionMode::TimingOnly,
        )]
    } else {
        vec![
            run_sweep(
                "table3_fwdd_timing",
                &[2, 4, 6, 8, 11, 16],
                16,
                &[Direction::Fwd],
                ExecutionMode::TimingOnly,
            ),
            run_sweep(
                "table3_bwd_timing",
                &[4, 8, 16],
                16,
                &[Direction::BwdData, Direction::BwdWeights],
                ExecutionMode::TimingOnly,
            ),
            run_sweep(
                "layer3_fwdd_functional",
                &[3],
                8,
                &[Direction::Fwd],
                ExecutionMode::Functional,
            ),
        ]
    };

    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"tool\": \"bench-simulator\",");
    let _ = writeln!(
        json,
        "  \"mode\": \"{}\",",
        if smoke { "smoke" } else { "full" }
    );
    let _ = writeln!(json, "  \"host_threads\": {host_threads},");
    json.push_str("  \"sweeps\": [\n");
    for (i, s) in sweeps.iter().enumerate() {
        let rate = s.sim_cycles as f64 / s.wall_s.max(1e-9);
        let _ = write!(
            json,
            "    {{\"name\": \"{}\", \"wall_s\": {:.3}, \"sim_cycles\": {}, \"sim_cycles_per_host_s\": {:.3e}}}",
            s.name, s.wall_s, s.sim_cycles, rate
        );
        json.push_str(if i + 1 < sweeps.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ]");

    if let (Some(b), Some(a)) = (&before, &after) {
        let b = parse_timings(b);
        let a = parse_timings(a);
        let total_b: u64 = b.iter().map(|&(_, ms)| ms).sum();
        let total_a: u64 = a.iter().map(|&(_, ms)| ms).sum();
        json.push_str(",\n  \"regen\": {\n");
        let _ = writeln!(json, "    \"before_ms\": {},", timings_json(&b));
        let _ = writeln!(json, "    \"after_ms\": {},", timings_json(&a));
        let _ = writeln!(json, "    \"total_before_ms\": {total_b},");
        let _ = writeln!(json, "    \"total_after_ms\": {total_a},");
        if let Some(w) = &warm {
            let w = parse_timings(w);
            let total_w: u64 = w.iter().map(|&(_, ms)| ms).sum();
            let _ = writeln!(json, "    \"warm_ms\": {},", timings_json(&w));
            let _ = writeln!(json, "    \"total_warm_ms\": {total_w},");
        }
        let _ = writeln!(
            json,
            "    \"speedup_total\": {:.2}",
            total_b as f64 / (total_a as f64).max(1.0)
        );
        json.push_str("  }");
    }
    if let Some(dir) = &store_dir {
        json.push_str(",\n  \"store\": ");
        json.push_str(&store_stats_json(dir));
    }
    json.push_str("\n}\n");

    match out {
        Some(path) => {
            std::fs::write(&path, json)
                .unwrap_or_else(|e| panic!("bench-simulator: cannot write {path}: {e}"));
            eprintln!("bench-simulator: wrote {path}");
        }
        None => print!("{json}"),
    }
}
