//! `lsvconv` — the command-line front end a downstream user drives:
//!
//! ```text
//! lsvconv info                                    # machine + model summary
//! lsvconv bench  --layer 8 --dir fwdd --alg BDC [--minibatch 64] [--arch sx-aurora]
//! lsvconv bench  --ic 512 --oc 128 --hw 28 --k 1 --stride 1 --pad 0 ...
//! lsvconv verify --layer 8 --dir fwdd --alg MBDC [--minibatch 2]
//! lsvconv tune   --layer 16 --dir fwdd --alg BDC  # show the generated config
//! lsvconv fuzz   [--cases 500] [--seed 1] [--smoke]  # differential fuzzing
//! lsvconv profile <layer> [--dir fwdd] [--alg BDC] [--out results/profile] [--smoke]
//! lsvconv serve  [--model resnet-50] [--pass infer] [--engine BDC] [--smoke]
//! ```

use lsv_arch::presets::{a64fx_sve, rvv_longvector, skylake_avx512, sx_aurora};
use lsv_arch::ArchParams;
use lsv_bench::profiling::{print_profile_summary, profile_meta, write_profile_artifacts};
use lsv_bench::{bench_engine, Engine};
use lsv_conv::fuzz::{self, FuzzOutcome};
use lsv_conv::{
    bench_layer_profiled, validate_with_backend, Algorithm, BackendKind, ConvDesc, ConvProblem,
    Direction, ExecutionMode, Pass,
};
use lsv_models::{resnet_layer, ResNetModel};
use lsv_serve::{
    best_by_load, cell_outcome, collect_plans, csv_header, csv_row, perfetto_trace_json,
    reference_capacity_rps, run_sweep, run_timeseries, serving_trace_json, ArrivalShape,
    BatchPolicy, LatencyTable, Reconciliation, ServeEngine, SweepConfig, TraceMeta,
};
use lsv_vengine::CoreStats;
use std::collections::HashMap;
use std::path::Path;
use std::process::exit;

fn parse_flags(args: &[String]) -> HashMap<String, String> {
    let mut map = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(key) = args[i].strip_prefix("--") {
            // Boolean flags (--smoke, --agreement, ...) must not swallow the
            // flag that follows them: a `--value` is never a flag's value.
            let val = match args.get(i + 1) {
                Some(v) if !v.starts_with("--") => {
                    i += 1;
                    v.clone()
                }
                _ => String::new(),
            };
            map.insert(key.to_string(), val);
            i += 1;
        } else {
            i += 1;
        }
    }
    map
}

fn arch_by_name(name: &str) -> ArchParams {
    match name {
        "sx-aurora" | "" => sx_aurora(),
        "skylake" | "skylake-avx512" => skylake_avx512(),
        "rvv" | "rvv-4096" => rvv_longvector(),
        "a64fx" | "a64fx-sve" => a64fx_sve(),
        other => {
            if let Some(bits) = other.strip_prefix("aurora-vl") {
                return lsv_arch::presets::aurora_with_vlen_bits(
                    bits.parse()
                        .unwrap_or_else(|_| usage(&format!("bad vlen in {other}"))),
                );
            }
            usage(&format!("unknown architecture '{other}'"))
        }
    }
}

/// Parse and validate `--backend` (default: the simulator). Subcommands
/// that report time (`bench`, `tune`, `profile`) pass `allow_native =
/// false`: the native backend computes values only, so selecting it there
/// is a user error, not a silent fallback.
fn backend_from_flags(
    flags: &HashMap<String, String>,
    cmd: &str,
    allow_native: bool,
) -> BackendKind {
    let kind = match flags.get("backend") {
        None => BackendKind::Sim,
        // An empty value (`--backend --smoke`, or trailing `--backend`)
        // falls through to the parser and is rejected with the same error.
        Some(v) => v.parse::<BackendKind>().unwrap_or_else(|e| usage(&e)),
    };
    if !allow_native && kind == BackendKind::Native {
        usage(&format!(
            "--backend native is not valid for `{cmd}`: only the simulator models time \
             (cycles, caches, stalls); use --backend sim or drop the flag"
        ));
    }
    kind
}

/// Parse and apply `--no-store` / `--store-dir <path>` before the first
/// store access (bench/tune/profile). Defaults come from the environment
/// (`LSV_STORE`, `LSV_STORE_DIR`, `LSV_STORE_PARANOID`); the flags override
/// it. Invalid combinations are rejected like any other flag error.
fn configure_store(flags: &HashMap<String, String>) {
    let no_store = flags.contains_key("no-store");
    if no_store && flags.contains_key("store-dir") {
        usage("--no-store and --store-dir are mutually exclusive");
    }
    if let Some(v) = flags.get("no-store") {
        if !v.is_empty() {
            usage(&format!("--no-store takes no value (got '{v}')"));
        }
    }
    let mut cfg = lsv_conv::StoreConfig::from_env();
    if no_store {
        cfg.disabled = true;
        cfg.dir = None;
    }
    if let Some(d) = flags.get("store-dir") {
        if d.is_empty() {
            usage("--store-dir requires a path");
        }
        cfg.disabled = false;
        cfg.dir = Some(std::path::PathBuf::from(d));
    }
    // Infallible here: this runs before anything touches the store.
    lsv_conv::store::configure(cfg).expect("store configured before first use");
}

fn direction_by_name(name: &str) -> Direction {
    match name {
        "fwdd" | "fwd" | "" => Direction::Fwd,
        "bwdd" => Direction::BwdData,
        "bwdw" => Direction::BwdWeights,
        other => usage(&format!("unknown direction '{other}'")),
    }
}

fn engine_by_name(name: &str) -> Engine {
    match name.to_ascii_uppercase().as_str() {
        "DC" => Engine::Direct(Algorithm::Dc),
        "BDC" | "" => Engine::Direct(Algorithm::Bdc),
        "MBDC" => Engine::Direct(Algorithm::Mbdc),
        "VEDNN" => Engine::Vednn,
        other => usage(&format!("unknown algorithm '{other}'")),
    }
}

fn problem_from_flags(flags: &HashMap<String, String>, default_mb: usize) -> ConvProblem {
    let mb = flags
        .get("minibatch")
        .and_then(|v| v.parse().ok())
        .unwrap_or(default_mb);
    if let Some(layer) = flags.get("layer") {
        let id: usize = layer.parse().unwrap_or_else(|_| usage("bad --layer"));
        if id >= lsv_models::NUM_LAYERS {
            usage(&format!(
                "--layer must be 0..{}",
                lsv_models::NUM_LAYERS - 1
            ));
        }
        return resnet_layer(id, mb);
    }
    let get = |k: &str, d: usize| flags.get(k).and_then(|v| v.parse().ok()).unwrap_or(d);
    let hw = get("hw", 28);
    let k = get("k", 3);
    let pad = get("pad", if k > 1 { 1 } else { 0 });
    ConvProblem::new(
        mb,
        get("ic", 64),
        get("oc", 64),
        hw,
        hw,
        k,
        k,
        get("stride", 1),
        pad,
    )
}

fn report_fuzz(label: &str, out: &FuzzOutcome) {
    println!(
        "  {label}: {} cases, {} skipped (register pressure), {} failures ({:.3}s kernel exec)",
        out.cases_run,
        out.skipped,
        out.failures.len(),
        out.exec_secs,
    );
    for f in &out.failures {
        println!("    FAIL {}: {}", f.case, f.why);
    }
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!();
    eprintln!("usage: lsvconv <info|bench|verify|tune|fuzz|profile|serve> [flags]");
    eprintln!("  common flags: --arch <sx-aurora|skylake|rvv|a64fx|aurora-vl<bits>>");
    eprintln!("                --layer <0..18> | --ic N --oc N --hw N --k N --stride N --pad N");
    eprintln!("                --dir <fwdd|bwdd|bwdw>  --alg <DC|BDC|MBDC|vednn>  --minibatch N");
    eprintln!("                --backend <sim|native> (verify/fuzz; native = host-speed");
    eprintln!("                functional execution, bit-identical output, no timing)");
    eprintln!("  store flags:  --no-store | --store-dir DIR (bench/tune/profile; persistent");
    eprintln!("                layer-result store, env default LSV_STORE_DIR)");
    eprintln!("  fuzz flags:   --cases N (default 500)  --seed N  --smoke (corpus + 50 cases)");
    eprintln!("                --agreement (cross-check symbolic vs replay verdicts per case)");
    eprintln!("  profile:      profile <layer> [--dir D] [--alg A] [--out DIR] [--smoke]");
    eprintln!("                writes profile.json + trace.json (Perfetto) + profile.folded");
    eprintln!("  serve flags:  --model <resnet-50|resnet-101|resnet-152>  --pass <infer|train>");
    eprintln!("                --engine <DC|BDC|MBDC|vednn|tuned>  --max-batch N  --requests N");
    eprintln!("                --seed N  --slo MS  --arrival <poisson|bursty>  --smoke");
    eprintln!("                --trace DIR (write serving_trace.json + Perfetto timeline +");
    eprintln!("                serving_timeseries.csv + metrics.json for the heaviest-load");
    eprintln!("                cell)  --metrics (print the metrics registry; tune too)");
    exit(2);
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let cmd = argv.first().cloned().unwrap_or_default();
    let flags = parse_flags(&argv[1.min(argv.len())..]);
    let arch = arch_by_name(flags.get("arch").map(String::as_str).unwrap_or(""));

    match cmd.as_str() {
        "info" => {
            println!("architecture: {}", arch.name);
            println!(
                "  SIMD: {} bits = {} x f32, {} vregs",
                arch.vlen_bits,
                arch.n_vlen(),
                arch.n_vregs
            );
            println!(
                "  FMA:  {} ports x {} lanes, {}-cycle pipelines",
                arch.n_fma, arch.lanes_per_port, arch.l_fma
            );
            println!(
                "  peak: {:.1} GFLOP/s/core, {:.1} GFLOP/s chip ({} cores)",
                arch.peak_flops_per_core() / 1e9,
                arch.peak_flops() / 1e9,
                arch.cores
            );
            println!(
                "  L1D {} KB {}-way | L2 {} KB | LLC {} MB, {} banks",
                arch.l1d.size / 1024,
                arch.l1d.ways,
                arch.l2.size / 1024,
                arch.llc.size / (1024 * 1024),
                arch.llc_banking.banks
            );
            println!(
                "  E (Formula 1) = {}",
                lsv_arch::formula1_required_independent_elems(&arch)
            );
            println!();
            println!(
                "ResNet models: {} layer shapes (Table 3); see `lsvconv bench --layer N`",
                lsv_models::NUM_LAYERS
            );
        }
        "bench" => {
            backend_from_flags(&flags, "bench", false);
            configure_store(&flags);
            let p = problem_from_flags(&flags, 64);
            let dir = direction_by_name(flags.get("dir").map(String::as_str).unwrap_or(""));
            let engine = engine_by_name(flags.get("alg").map(String::as_str).unwrap_or(""));
            let perf = bench_engine(&arch, &p, dir, engine, ExecutionMode::TimingOnly);
            println!("problem:   {p} ({dir}, {})", engine.name());
            println!(
                "time:      {:.3} ms for the whole minibatch on {} cores",
                perf.time_ms, arch.cores
            );
            println!(
                "rate:      {:.1} GFLOP/s ({:.1}% of chip peak)",
                perf.gflops,
                perf.efficiency * 100.0
            );
            println!(
                "L1 MPKI:   {:.2} (conflict fraction {:.2})",
                perf.mpki_l1, perf.conflict_fraction
            );
            println!(
                "predicted: conflicts {}",
                if perf.conflicts_predicted {
                    "YES (Formula 3)"
                } else {
                    "no"
                }
            );
        }
        "verify" => {
            let backend = backend_from_flags(&flags, "verify", true);
            let p = problem_from_flags(&flags, 2);
            let dir = direction_by_name(flags.get("dir").map(String::as_str).unwrap_or(""));
            match engine_by_name(flags.get("alg").map(String::as_str).unwrap_or("")) {
                Engine::Direct(alg) => {
                    let r = validate_with_backend(&arch, &p, dir, alg, backend.create().as_ref());
                    println!(
                        "{p} {dir} {alg} [{backend} backend]: {} (rel err {:.3e})",
                        if r.passed { "PASSED" } else { "FAILED" },
                        r.rel_err
                    );
                    if !r.passed {
                        exit(1);
                    }
                }
                Engine::Vednn => usage("use the `validate` binary for vednn checks"),
            }
        }
        "tune" => {
            backend_from_flags(&flags, "tune", false);
            configure_store(&flags);
            let p = problem_from_flags(&flags, 64);
            let dir = direction_by_name(flags.get("dir").map(String::as_str).unwrap_or(""));
            let alg = match engine_by_name(flags.get("alg").map(String::as_str).unwrap_or("")) {
                Engine::Direct(a) => a,
                Engine::Vednn => usage("tune applies to the direct algorithms"),
            };
            match ConvDesc::new(p, dir, alg).create(&arch, arch.cores) {
                Ok(prim) => {
                    let cfg = prim.cfg();
                    println!("{p} {dir} {alg} on {}:", arch.name);
                    println!("  vl            = {}", cfg.vl);
                    println!(
                        "  register blk  = {} x {} (combined {}), rb_c = {}",
                        cfg.rb.rb_w,
                        cfg.rb.rb_h,
                        cfg.rb.combined(),
                        cfg.rb_c
                    );
                    println!(
                        "  micro tile    = kh {} x kw {} x c {}",
                        cfg.tile.kh_i, cfg.tile.kw_i, cfg.tile.c_i
                    );
                    println!("  src layout    = C_b {}", cfg.src_layout.cb);
                    println!("  dst layout    = C_b {}", cfg.dst_layout.cb);
                    println!(
                        "  wei layout    = (icb {}, ocb {}){}",
                        cfg.wei_layout.icb,
                        cfg.wei_layout.ocb,
                        if cfg.wei_swapped {
                            " [role-swapped]"
                        } else {
                            ""
                        }
                    );
                    println!("  weight bufs   = {}", cfg.wbuf);
                    println!(
                        "  conflicts     = {}",
                        if cfg.conflicts_predicted {
                            "PREDICTED (Formula 3)"
                        } else {
                            "not predicted"
                        }
                    );
                    match lsv_conv::tune_empirical(&arch, &p, dir, alg, ExecutionMode::TimingOnly) {
                        Ok(t) => {
                            println!();
                            println!("empirical register-block sweep (store-backed):");
                            println!(
                                "  candidates    = {} generated, {} unique after dedupe \
                                 ({} redundant evaluations avoided)",
                                t.generated,
                                t.unique,
                                (t.generated + 1).saturating_sub(t.unique)
                            );
                            println!(
                                "  evaluations   = {} store hits + {} simulated",
                                t.store_hits, t.simulated
                            );
                            println!("  analytic pick = {} chip cycles", t.analytic_cycles);
                            println!(
                                "  best found    = rb {}x{} rb_c {} wbuf {} @ {} chip cycles{}",
                                t.best_cfg.rb.rb_w,
                                t.best_cfg.rb.rb_h,
                                t.best_cfg.rb_c,
                                t.best_cfg.wbuf,
                                t.best_cycles,
                                if t.best_cycles == t.analytic_cycles {
                                    " (= analytic)"
                                } else {
                                    ""
                                }
                            );
                            if flags.contains_key("metrics") {
                                let reg = lsv_obs::registry();
                                t.publish_metrics(reg);
                                lsv_conv::store::store().stats().publish(reg);
                                println!();
                                println!("metrics:");
                                for line in reg.summary_lines() {
                                    println!("  {line}");
                                }
                            }
                        }
                        Err(e) => eprintln!("empirical sweep skipped: {e}"),
                    }
                }
                Err(e) => {
                    eprintln!("cannot create primitive: {e}");
                    exit(1);
                }
            }
        }
        "fuzz" => {
            let backend = backend_from_flags(&flags, "fuzz", true);
            let smoke = argv.iter().any(|a| a == "--smoke");
            let agreement = argv.iter().any(|a| a == "--agreement");
            let cases: usize = flags
                .get("cases")
                .and_then(|v| v.parse().ok())
                .unwrap_or(if smoke { 50 } else { 500 });
            let seed: u64 = flags.get("seed").and_then(|v| v.parse().ok()).unwrap_or(1);
            let validator = lsv_analyze::deny_validator;
            // --agreement cross-checks the symbolic analyzer's OOB-ADDR /
            // ACC-CLOBBER verdicts against the traced replay on every case.
            let oracle: Option<fuzz::CaseValidator> = if agreement {
                Some(&lsv_analyze::verdict_agreement)
            } else {
                None
            };

            println!(
                "replaying seed corpus ({} cases, {backend} backend{})...",
                fuzz::seed_corpus().len(),
                if agreement {
                    ", agreement oracle on"
                } else {
                    ""
                }
            );
            let corpus = fuzz::run_corpus_backend(&validator, oracle, backend);
            report_fuzz("corpus", &corpus);

            println!("fuzzing {cases} randomized cases (seed {seed}, {backend} backend)...");
            let random = fuzz::run_fuzz_backend(cases, seed, &validator, oracle, backend);
            report_fuzz("random", &random);

            if !corpus.clean() || !random.clean() {
                exit(1);
            }
        }
        "profile" => {
            backend_from_flags(&flags, "profile", false);
            configure_store(&flags);
            let smoke = argv.iter().any(|a| a == "--smoke");
            let mut flags = flags;
            // Positional layer id: `lsvconv profile 8` == `--layer 8`.
            if let Some(arg) = argv.get(1) {
                if arg.parse::<usize>().is_ok() && !flags.contains_key("layer") {
                    flags.insert("layer".to_string(), arg.clone());
                }
            }
            if smoke && !flags.contains_key("layer") && !flags.contains_key("hw") {
                // A small fixed problem keeps the CI gate fast.
                flags.insert("hw".to_string(), "14".to_string());
            }
            let p = problem_from_flags(&flags, if smoke { 4 } else { 64 });
            let dir = direction_by_name(flags.get("dir").map(String::as_str).unwrap_or(""));
            let alg = match engine_by_name(flags.get("alg").map(String::as_str).unwrap_or("")) {
                Engine::Direct(a) => a,
                Engine::Vednn => usage("profile applies to the direct algorithms"),
            };

            let (perf, profile) =
                bench_layer_profiled(&arch, &p, dir, alg, ExecutionMode::TimingOnly);

            // Cross-check the profile against the *independently kept* slice
            // report, not just its own embedded totals.
            let r = &perf.report;
            let slice_stats = CoreStats {
                cycles: r.cycles,
                insts: r.insts,
                cache: r.cache,
                stall_scalar: r.stall_scalar,
                stall_dep: r.stall_dep,
                stall_port: r.stall_port,
                bank_serial_cycles: r.bank_serial_cycles,
            };
            let reconciliation = lsv_analyze::check_profile_reconciliation(&profile, &slice_stats);
            for d in &reconciliation.diagnostics {
                eprintln!("{d}");
            }
            if reconciliation.has_deny() {
                exit(1);
            }

            let meta = profile_meta(&arch, &p, dir, alg.short_name(), &profile);
            let out_dir = flags
                .get("out")
                .cloned()
                .unwrap_or_else(|| "results/profile".to_string());
            let artifacts =
                match write_profile_artifacts(Path::new(&out_dir), "profile", &profile, &meta) {
                    Ok(a) => a,
                    Err(e) => {
                        eprintln!("error: {e}");
                        exit(1);
                    }
                };

            println!("problem: {p} ({dir}, {})", alg.short_name());
            print_profile_summary(&profile, if smoke { 8 } else { 24 });
            println!();
            println!("report:  {} (schema-valid)", artifacts.report.display());
            println!(
                "trace:   {} (load at https://ui.perfetto.dev)",
                artifacts.trace.display()
            );
            println!(
                "folded:  {} (flamegraph.pl input)",
                artifacts.folded.display()
            );
        }
        "serve" => {
            backend_from_flags(&flags, "serve", false);
            configure_store(&flags);
            let smoke = argv.iter().any(|a| a == "--smoke");
            let model = match flags.get("model").map(String::as_str) {
                None | Some("resnet-50") => ResNetModel::R50,
                Some("resnet-101") => ResNetModel::R101,
                Some("resnet-152") => ResNetModel::R152,
                Some(other) => usage(&format!(
                    "unknown model '{other}' (resnet-50|resnet-101|resnet-152)"
                )),
            };
            let pass = match flags.get("pass").map(String::as_str) {
                None | Some("infer") => Pass::Inference,
                Some("train") => Pass::TrainingStep,
                Some(other) => usage(&format!("unknown pass '{other}' (infer|train)")),
            };
            let engine = match flags.get("engine").map(String::as_str) {
                None | Some("") => ServeEngine::Fixed(Algorithm::Bdc),
                Some(name) => ServeEngine::parse(name)
                    .unwrap_or_else(|| usage(&format!("unknown engine '{name}'"))),
            };
            let shape = match flags.get("arrival").map(String::as_str) {
                None | Some("poisson") => ArrivalShape::Poisson,
                Some("bursty") => ArrivalShape::Bursty {
                    burst: 4.0,
                    period_ms: 200.0,
                },
                Some(other) => usage(&format!("unknown arrival '{other}' (poisson|bursty)")),
            };
            let max_batch: usize = flags
                .get("max-batch")
                .and_then(|v| v.parse().ok())
                .unwrap_or(if smoke { 4 } else { 8 });
            let requests: usize = flags
                .get("requests")
                .and_then(|v| v.parse().ok())
                .unwrap_or(if smoke { 200 } else { 1000 });
            let seed: u64 = flags.get("seed").and_then(|v| v.parse().ok()).unwrap_or(42);
            // Validate the observability flags before the (expensive) table
            // build so a bad invocation fails fast.
            let trace_dir = match flags.get("trace").map(String::as_str) {
                None => None,
                Some("") => usage("--trace requires a path"),
                Some(d) => Some(std::path::PathBuf::from(d)),
            };
            let metrics = match flags.get("metrics").map(String::as_str) {
                None => false,
                Some("") => true,
                Some(v) => usage(&format!("--metrics takes no value (got '{v}')")),
            };

            let table = LatencyTable::build(
                &arch,
                model,
                pass,
                &[engine],
                max_batch,
                ExecutionMode::TimingOnly,
            );
            let slo_ms = flags
                .get("slo")
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| 2.0 * table.best(max_batch).1);
            let cfg = SweepConfig {
                shapes: vec![shape],
                policies: vec![
                    BatchPolicy::Adaptive { max_batch },
                    BatchPolicy::Fixed { batch: max_batch },
                    BatchPolicy::Timeout {
                        max_batch,
                        timeout_ms: slo_ms / 2.0,
                    },
                ],
                utilizations: if smoke {
                    vec![0.3, 0.9]
                } else {
                    vec![0.2, 0.5, 0.8, 1.0]
                },
                requests,
                seed,
                slo_ms,
            };

            println!(
                "serving {} {} with engine {} on {} ({} cores)",
                model.name(),
                pass.name(),
                engine.name(),
                arch.name,
                arch.cores
            );
            for b in 1..=max_batch {
                println!(
                    "  batch {b:>2}: {:.3} ms / dispatch",
                    table.latency_ms(0, b)
                );
            }
            println!(
                "  capacity {:.1} rps (back-to-back batch-{max_batch}), SLO {slo_ms:.2} ms",
                reference_capacity_rps(&table)
            );
            println!();
            let rows = run_sweep(&cfg, &table);
            println!("{}", csv_header());
            for r in &rows {
                println!("{}", csv_row(r, cfg.requests, cfg.slo_ms));
            }
            println!();
            for b in best_by_load(&rows) {
                println!(
                    "best @ {} {:.1} rps: {}",
                    b.arrival, b.offered_rps, b.policy
                );
            }

            if let Some(dir) = &trace_dir {
                let reg = lsv_obs::registry();
                if let Err(e) = std::fs::create_dir_all(dir) {
                    eprintln!("error: cannot create {}: {e}", dir.display());
                    exit(1);
                }
                // The traced cell: the configured arrival shape at the
                // heaviest sampled load under the adaptive policy — the cell
                // where batching decisions actually vary.
                let load_idx = cfg.utilizations.len() - 1;
                let policy = cfg.policies[0];
                let (offered_rps, outcome) = cell_outcome(&cfg, &table, 0, load_idx, policy, 0);
                // Per-(layer, direction) breakdown for every distinct
                // dispatched batch size, recomputed by the exact code path
                // the latency table used — bit-identical by construction,
                // asserted by the reconciliation below. The vednn baseline
                // has no layer plan; its trace carries batch spans only.
                let plan_for = |batch: usize| -> Option<lsv_conv::ModelPlan> {
                    let specs = lsv_serve::resnet_specs(model, batch);
                    let runner = lsv_conv::ModelRunner::new(&arch, specs, pass)
                        .with_mode(ExecutionMode::TimingOnly);
                    match engine {
                        ServeEngine::Tuned => {
                            Some(runner.with_tune(lsv_conv::TunePolicy::Empirical).plan())
                        }
                        ServeEngine::Fixed(alg) => Some(runner.plan_fixed(alg)),
                        ServeEngine::Vednn => None,
                    }
                };
                let plans = collect_plans(&outcome, &plan_for);
                for (_, p) in &plans {
                    p.publish_metrics(reg);
                }
                outcome.publish_metrics(reg);
                let recon = Reconciliation::compute(&outcome, &plans);
                let meta = TraceMeta {
                    arch: arch.name.clone(),
                    model: model.name().to_string(),
                    pass: pass.name().to_string(),
                    engine: engine.name().to_string(),
                    arrival: shape.name(),
                    policy: policy.name(),
                    utilization: cfg.utilizations[load_idx],
                    offered_rps,
                    seed,
                    slo_ms,
                    max_batch,
                };

                let write = |name: &str, doc: &str| -> std::path::PathBuf {
                    let path = dir.join(name);
                    if let Err(e) = std::fs::write(&path, doc) {
                        eprintln!("error: cannot write {}: {e}", path.display());
                        exit(1);
                    }
                    path
                };
                let trace_doc = serving_trace_json(&meta, &outcome, &plans, &recon);
                let tpath = write("serving_trace.json", &trace_doc);
                // Validate what actually landed on disk, like lint.json.
                let text = std::fs::read_to_string(&tpath).expect("just wrote it");
                if let Err(e) = lsv_obs::validate_serving_trace_json(&text) {
                    eprintln!("error: {e}");
                    exit(1);
                }
                write(
                    "serving_trace.perfetto.json",
                    &perfetto_trace_json(&meta, &outcome, &plans),
                );
                let (_, ts_csv) = run_timeseries(&cfg, &table, 0);
                write("serving_timeseries.csv", &ts_csv);

                println!();
                if recon.exact {
                    println!(
                        "trace reconciliation: exact ({} requests, {} batches, \
                         wait {:.3} ms, service {:.3} ms)",
                        recon.requests, recon.batches, recon.wait_sum_ms, recon.service_sum_ms
                    );
                } else {
                    eprintln!(
                        "error: trace reconciliation FAILED (service {:?} ms vs layers {:?} ms)",
                        recon.service_sum_ms, recon.layer_sum_ms
                    );
                    exit(1);
                }
                println!("wrote {} (schema-valid)", tpath.display());
                println!(
                    "wrote {}",
                    dir.join("serving_trace.perfetto.json").display()
                );
                println!("wrote {}", dir.join("serving_timeseries.csv").display());
            }

            let st = lsv_conv::store::store().stats();
            eprintln!(
                "store: {} mem hits, {} disk hits, {} misses, {} inserts",
                st.mem_hits, st.disk_hits, st.misses, st.inserts
            );
            if trace_dir.is_some() || metrics {
                // One registry, one publication: everything the run touched
                // (queue + runner via the trace block, the store here).
                let reg = lsv_obs::registry();
                st.publish(reg);
                reg.gauge_set(
                    "store.disk_bytes",
                    lsv_conv::store::store().disk_bytes() as f64,
                );
                if let Some(dir) = &trace_dir {
                    let doc = reg.to_json("lsvconv serve");
                    let mpath = dir.join("metrics.json");
                    if let Err(e) = std::fs::write(&mpath, &doc) {
                        eprintln!("error: cannot write {}: {e}", mpath.display());
                        exit(1);
                    }
                    let text = std::fs::read_to_string(&mpath).expect("just wrote it");
                    if let Err(e) = lsv_obs::validate_metrics_json(&text) {
                        eprintln!("error: {e}");
                        exit(1);
                    }
                    println!("wrote {} (schema-valid)", mpath.display());
                }
                if metrics {
                    println!();
                    println!("metrics:");
                    for line in reg.summary_lines() {
                        println!("  {line}");
                    }
                }
            }
        }
        _ => usage("missing or unknown command"),
    }
}
