//! Host-performance meter for the native execution backend: runs the
//! Table 3 layer shapes through [`lsv_conv::bench_layer_native`] and
//! reports achieved host GFLOP/s, then measures the wall-time speedup of
//! the native backend over the simulated functional path on the
//! differential-fuzzing seed corpus (the same kernels, the same operands,
//! both backends producing bit-identical outputs).
//!
//! The JSON artefact (`BENCH_native.json`) is the evidence for the
//! backend-abstraction acceptance criterion: fast functional runs at a
//! measured >=20x corpus speedup with unchanged numerics.
//!
//! Usage: `bench-native [--smoke] [--out PATH]`
//!
//! `--smoke` shrinks the layer sweep and skips nothing else — the corpus
//! speedup measurement is cheap enough to keep in CI.

use lsv_arch::presets::sx_aurora;
use lsv_conv::fuzz;
use lsv_conv::{
    bench_layer_native, Algorithm, BackendKind, ConvDesc, Direction, ExecBackend, NativeBackend,
    SimBackend,
};
use lsv_models::resnet_layer;
use lsv_vengine::Arena;
use std::fmt::Write as _;
use std::time::Instant;

struct LayerResult {
    layer: usize,
    dir: Direction,
    alg: Algorithm,
    minibatch: usize,
    problem: String,
    host_ms: f64,
    gflops: f64,
    fma_elems: u64,
}

fn run_layer(layer: usize, minibatch: usize, dir: Direction, alg: Algorithm) -> LayerResult {
    let arch = sx_aurora();
    let p = resnet_layer(layer, minibatch);
    let perf = bench_layer_native(&arch, &p, dir, alg);
    LayerResult {
        layer,
        dir,
        alg,
        minibatch,
        problem: p.to_string(),
        host_ms: perf.host_secs * 1e3,
        gflops: perf.host_gflops,
        fma_elems: perf.insts.fma_elems,
    }
}

/// Kernel execution seconds for the whole seed corpus on one backend.
/// `FuzzOutcome::exec_secs` times only the property-1 kernel execution
/// (operand import/readback and the naive reference are excluded), so the
/// ratio isolates backend speed on identical work.
fn corpus_exec_secs(kind: BackendKind) -> (usize, f64) {
    let out = fuzz::run_corpus_backend(&fuzz::no_lint, None, kind);
    assert!(
        out.clean(),
        "bench-native: corpus failures on {kind} backend: {:?}",
        out.failures
            .iter()
            .map(|f| format!("{}: {}", f.case, f.why))
            .collect::<Vec<_>>()
    );
    (out.cases_run, out.exec_secs)
}

/// Pure-execution sim-vs-native comparison on one Table 3 layer: the same
/// frozen primitive, the same arena contents, the whole problem as one
/// slice. Operand import/readback (identical host conversions under both
/// backends) are outside the timed region — this is the headline
/// "functional run at host speed" number.
fn layer_speedup(layer: usize, minibatch: usize) -> (String, f64, f64) {
    let arch = sx_aurora();
    let p = resnet_layer(layer, minibatch);
    let prim = ConvDesc::new(p, Direction::Fwd, Algorithm::Bdc)
        .create(&arch, 1)
        .expect("layer primitive");
    let src: Vec<f32> = (0..p.n * p.ic * p.ih * p.iw)
        .map(|i| (i % 509) as f32 * 1e-3)
        .collect();
    let wei: Vec<f32> = (0..p.oc * p.ic * p.kh * p.kw)
        .map(|i| (i % 251) as f32 * 1e-4)
        .collect();
    let time_exec = |backend: &dyn ExecBackend| {
        let mut arena = Arena::new();
        let t = prim.alloc_tensors(&mut arena);
        prim.import_operands(&mut arena, &t, &src, &wei, &[]);
        let t0 = Instant::now();
        backend.execute_slice(&prim, &mut arena, &t, 0..p.n, 0..prim.bwdw_small_blocks());
        t0.elapsed().as_secs_f64()
    };
    let native_s = time_exec(&NativeBackend);
    let sim_s = time_exec(&SimBackend::functional());
    (p.to_string(), sim_s, native_s)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut out: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = it.next().cloned(),
            other => {
                eprintln!("bench-native: unknown argument {other}");
                std::process::exit(2);
            }
        }
    }

    // The timed region is the same kernel plan on the same operands under
    // both backends; the simulator timing is the functional path the native
    // backend replaces in verification workflows. Measured *before* the
    // layer sweep: minutes of sustained load throttle small shared machines
    // and would skew the headline ratio.
    let t0 = Instant::now();
    let (cases, sim_s) = corpus_exec_secs(BackendKind::Sim);
    let (_, native_s) = corpus_exec_secs(BackendKind::Native);
    let corpus_wall_s = t0.elapsed().as_secs_f64();
    let speedup = sim_s / native_s.max(1e-9);

    let mut layers = Vec::new();
    if smoke {
        layers.push(run_layer(4, 4, Direction::Fwd, Algorithm::Bdc));
    } else {
        for id in 0..lsv_models::NUM_LAYERS {
            layers.push(run_layer(id, 16, Direction::Fwd, Algorithm::Bdc));
        }
        for id in [4, 8, 16] {
            layers.push(run_layer(id, 16, Direction::BwdData, Algorithm::Bdc));
            layers.push(run_layer(id, 16, Direction::BwdWeights, Algorithm::Bdc));
            layers.push(run_layer(id, 16, Direction::Fwd, Algorithm::Mbdc));
        }
    }

    let host_threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);

    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"tool\": \"bench-native\",");
    let _ = writeln!(
        json,
        "  \"mode\": \"{}\",",
        if smoke { "smoke" } else { "full" }
    );
    let _ = writeln!(json, "  \"arch\": \"{}\",", sx_aurora().name);
    let _ = writeln!(json, "  \"host_threads\": {host_threads},");
    json.push_str("  \"layers\": [\n");
    for (i, l) in layers.iter().enumerate() {
        let _ = write!(
            json,
            "    {{\"layer\": {}, \"dir\": \"{}\", \"alg\": \"{}\", \"minibatch\": {}, \
             \"problem\": \"{}\", \"host_ms\": {:.3}, \"native_gflops\": {:.2}, \
             \"fma_elems\": {}}}",
            l.layer,
            l.dir,
            l.alg.short_name(),
            l.minibatch,
            l.problem,
            l.host_ms,
            l.gflops,
            l.fma_elems
        );
        json.push_str(if i + 1 < layers.len() { ",\n" } else { "\n" });
    }
    json.push_str("  ],\n");
    json.push_str("  \"corpus\": {\n");
    let _ = writeln!(json, "    \"cases\": {cases},");
    let _ = writeln!(json, "    \"sim_functional_exec_s\": {sim_s:.4},");
    let _ = writeln!(json, "    \"native_exec_s\": {native_s:.6},");
    let _ = writeln!(json, "    \"native_speedup\": {speedup:.1},");
    let _ = writeln!(json, "    \"wall_s\": {corpus_wall_s:.3}");
    json.push_str("  }");
    if !smoke {
        // One full layer, pure kernel execution under both backends. The
        // corpus cases are tiny (per-instruction simulator overhead
        // dominates there); a real layer's wide vectors amortize that
        // overhead, so its ratio is the conservative end of the range.
        let (problem, layer_sim_s, layer_native_s) = layer_speedup(8, 2);
        let layer_ratio = layer_sim_s / layer_native_s.max(1e-9);
        json.push_str(",\n  \"layer_speedup\": {\n");
        let _ = writeln!(json, "    \"layer\": 8, \"minibatch\": 2,");
        let _ = writeln!(json, "    \"problem\": \"{problem}\",");
        let _ = writeln!(json, "    \"sim_functional_exec_s\": {layer_sim_s:.3},");
        let _ = writeln!(json, "    \"native_exec_s\": {layer_native_s:.4},");
        let _ = writeln!(json, "    \"native_speedup\": {layer_ratio:.1}");
        json.push_str("  }");
    }
    json.push_str("\n}\n");

    match out {
        Some(path) => {
            std::fs::write(&path, json)
                .unwrap_or_else(|e| panic!("bench-native: cannot write {path}: {e}"));
            eprintln!("bench-native: wrote {path} (corpus speedup {speedup:.1}x)");
        }
        None => print!("{json}"),
    }
}
