//! Table 2: summary of the convolution algorithms — the activation and
//! weight blocking factors, schedule grain, and register-block policy each
//! algorithm actually instantiates. Regenerated from the real kernel
//! configurations on a representative layer (ample channels so no `min(C,.)`
//! clamping hides the policy).

use lsv_arch::presets::sx_aurora;
use lsv_arch::{bdc_register_block_range, formula2_rb_min};
use lsv_conv::{Algorithm, ConvDesc, ConvProblem, Direction};

fn main() {
    let arch = sx_aurora();
    // A wide layer: IC = OC = 1024 >= N_vlen so the blocking policies are
    // visible unclamped.
    let p = ConvProblem::new(256, 1024, 1024, 14, 14, 3, 3, 1, 1);
    println!(
        "algorithm,act_block(IC_b/OC_b),wei_block(icb,ocb),schedule_grain,register_block,rb_range"
    );
    for alg in Algorithm::ALL {
        let prim = ConvDesc::new(p, Direction::Fwd, alg)
            .create(&arch, 8)
            .unwrap();
        let cfg = prim.cfg();
        let range = match alg {
            Algorithm::Dc => format!(">= {}", formula2_rb_min(&arch)),
            Algorithm::Bdc => {
                let r = bdc_register_block_range(&arch, cfg.src_layout.cb, p.stride_w);
                format!("[{}, {}]", r.min, r.max)
            }
            Algorithm::Mbdc => format!(">= {}", formula2_rb_min(&arch)),
        };
        println!(
            "{},{}/{},({},{}),{},{}x{}={},{}",
            alg.short_name(),
            cfg.src_layout.cb,
            cfg.dst_layout.cb,
            cfg.wei_layout.icb,
            cfg.wei_layout.ocb,
            cfg.tile.c_i.min(cfg.wei_layout.icb), // micro-kernel IC grain floor
            cfg.rb.rb_w,
            cfg.rb.rb_h,
            cfg.rb.combined(),
            range,
        );
    }
    println!();
    println!("# Paper Table 2: DC blocks activations by min(C, N_vlen) and schedules at IC_b;");
    println!("# BDC keeps the activation layout but loop-resizes the weights to N_cline and");
    println!("# bounds RB by Formula 4; MBDC re-blocks activations by N_cline.");
}
