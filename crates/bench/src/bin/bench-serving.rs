//! The serving load sweep: (arrival shape x offered load x batching policy
//! x engine) over a whole model on the simulated chip.
//!
//! Emits `serving.csv` rows on stdout and (with `--json PATH`) the
//! `BENCH_serving.json` document, schema-validated through
//! `lsv_obs::validate_serving_json` after writing — like `lint.json`.
//!
//! Every service time comes from the `ModelRunner` / vednn latency tables
//! through the layer store: a warm store replays the whole sweep without
//! simulating a single slice (the queue simulation itself is host-side
//! arithmetic on the simulated clock).
//!
//! Usage: `bench-serving [--smoke] [--json PATH] [--timeseries PATH]
//!         [--model resnet-50] [--pass infer|train] [--requests N] [--seed N]`
//!
//! `--timeseries PATH` writes `serving_timeseries.csv`: the sampled
//! queue-depth / occupancy / rolling-p99 / SLO-burn series for every
//! (arrival, load, policy) cell on the fixed-BDC engine. The same series,
//! summarized per cell, lands in the JSON's `timeseries` section.

use lsv_arch::presets::sx_aurora;
use lsv_conv::{ExecutionMode, Pass};
use lsv_models::ResNetModel;
use lsv_serve::{
    best_by_load, csv_header, csv_row, run_sweep, run_timeseries, serving_json, ArrivalShape,
    BatchPolicy, LatencyTable, ServeEngine, SweepConfig, SweepMeta,
};
use std::process::exit;

fn flag_value(args: &[String], name: &str) -> Option<String> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .filter(|v| !v.starts_with("--"))
        .cloned()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let model = match flag_value(&args, "--model").as_deref() {
        None | Some("resnet-50") => ResNetModel::R50,
        Some("resnet-101") => ResNetModel::R101,
        Some("resnet-152") => ResNetModel::R152,
        Some(other) => {
            eprintln!("error: unknown model '{other}' (resnet-50|resnet-101|resnet-152)");
            exit(2);
        }
    };
    let pass = match flag_value(&args, "--pass").as_deref() {
        None | Some("infer") => Pass::Inference,
        Some("train") => Pass::TrainingStep,
        Some(other) => {
            eprintln!("error: unknown pass '{other}' (infer|train)");
            exit(2);
        }
    };
    let seed: u64 = flag_value(&args, "--seed")
        .and_then(|v| v.parse().ok())
        .unwrap_or(42);
    let requests: usize = flag_value(&args, "--requests")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 200 } else { 3000 });

    let arch = sx_aurora();
    let mode = ExecutionMode::TimingOnly;
    let max_batch = if smoke { 4 } else { 16 };
    let engines: Vec<ServeEngine> = if smoke {
        vec![ServeEngine::Fixed(lsv_conv::Algorithm::Bdc)]
    } else {
        vec![
            ServeEngine::Vednn,
            ServeEngine::Fixed(lsv_conv::Algorithm::Bdc),
            ServeEngine::Tuned,
        ]
    };

    eprintln!(
        "building latency tables: {} {} on {}, batches 1..={max_batch}, {} engine(s)...",
        model.name(),
        pass.name(),
        arch.name,
        engines.len()
    );
    let table = LatencyTable::build(&arch, model, pass, &engines, max_batch, mode);
    for (ei, e) in table.engines.iter().enumerate() {
        eprintln!(
            "  {:>6}: b1 {:.2} ms .. b{max_batch} {:.2} ms",
            e.name(),
            table.latency_ms(ei, 1),
            table.latency_ms(ei, max_batch)
        );
    }

    // SLO: twice the fastest engine's full-batch service time — generous
    // enough that a well-batched server meets it, tight enough that queueing
    // pathologies (idle waiting at low load, saturation at high load) fail
    // it. Derived from simulated latencies only, so the artifact stays
    // deterministic.
    let slo_ms = 2.0 * table.best(max_batch).1;
    let timeout_ms = slo_ms / 4.0;
    let cfg = SweepConfig {
        shapes: if smoke {
            vec![ArrivalShape::Poisson]
        } else {
            vec![
                ArrivalShape::Poisson,
                ArrivalShape::Bursty {
                    burst: 4.0,
                    period_ms: 8.0 * slo_ms,
                },
            ]
        },
        policies: vec![
            BatchPolicy::Adaptive { max_batch },
            BatchPolicy::Fixed { batch: max_batch },
            BatchPolicy::Timeout {
                max_batch,
                timeout_ms,
            },
        ],
        utilizations: if smoke {
            vec![0.3, 0.9]
        } else {
            vec![0.15, 0.4, 0.7, 0.9, 1.1]
        },
        requests,
        seed,
        slo_ms,
    };

    let rows = run_sweep(&cfg, &table);
    let best = best_by_load(&rows);

    // Time-series telemetry rides on one engine: the fixed BDC engine when
    // present (it is in every engine list, smoke and full), engine 0 otherwise.
    let ts_engine = table
        .engines
        .iter()
        .position(|e| matches!(e, ServeEngine::Fixed(lsv_conv::Algorithm::Bdc)))
        .unwrap_or(0);
    let (ts, ts_csv) = run_timeseries(&cfg, &table, ts_engine);

    println!("{}", csv_header());
    for r in &rows {
        println!("{}", csv_row(r, cfg.requests, cfg.slo_ms));
    }

    for b in &best {
        eprintln!(
            "best @ {} {:.0} rps: {} + {}",
            b.arrival, b.offered_rps, b.policy, b.engine
        );
    }

    if let Some(path) = flag_value(&args, "--timeseries") {
        if let Err(e) = std::fs::write(&path, &ts_csv) {
            eprintln!("error: cannot write {path}: {e}");
            exit(1);
        }
        eprintln!(
            "wrote {path} ({} cells x {} samples, engine {})",
            ts.cells.len(),
            ts.samples_per_cell,
            ts.engine
        );
    }

    if let Some(path) = flag_value(&args, "--json") {
        let meta = SweepMeta {
            arch: arch.name.clone(),
            model: model.name().to_string(),
            pass: pass.name().to_string(),
            mode: "timing-only".to_string(),
            max_batch,
        };
        let doc = serving_json(&meta, &cfg, &table, &rows, &best, &ts);
        if let Err(e) = std::fs::write(&path, &doc) {
            eprintln!("error: cannot write {path}: {e}");
            exit(1);
        }
        // Re-read and validate what actually landed on disk.
        let text = std::fs::read_to_string(&path).expect("just wrote it");
        if let Err(e) = lsv_obs::validate_serving_json(&text) {
            eprintln!("error: {e}");
            exit(1);
        }
        eprintln!("wrote {path} (schema-valid)");
    }

    lsv_conv::store::dump_stats_to_env_file();
}
