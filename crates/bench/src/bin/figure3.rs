//! Figure 3: the SIMD direct convolution's scalar memory access pattern on
//! the source tensor — rendered as an ASCII L1 set-pressure heat map per
//! algorithm, from the static stream profile (`lsv_conv::analysis`).
//!
//! The paper's figure shows the `N_vlen`-strided walk "stressing a small
//! number of cache sets"; here each column is one of the 128 L1 sets and
//! the bar height is how many lines of one register-block sweep land there.
//!
//! Usage: `figure3 [layer_id]` (default 8, a conflict-predicted layer).

use lsv_arch::presets::sx_aurora;
use lsv_conv::analysis::{scalar_stream_profile, set_pressure_histogram};
use lsv_conv::tuning::kernel_config;
use lsv_conv::{Algorithm, Direction};
use lsv_models::resnet_layer;

fn main() {
    let layer_id: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(8);
    let arch = sx_aurora();
    let p = resnet_layer(layer_id, 256);
    println!(
        "layer {layer_id} ({p}) forward-pass scalar stream over S, on {}:",
        arch.name
    );
    println!(
        "L1: {} KB, {}-way, {} sets of {}-byte lines\n",
        arch.l1d.size / 1024,
        arch.l1d.ways,
        arch.l1d.sets(),
        arch.l1d.line
    );
    for alg in Algorithm::ALL {
        let cfg = kernel_config(&arch, &p, Direction::Fwd, alg, arch.cores);
        let prof = scalar_stream_profile(&arch, &cfg, p.stride_w);
        let hist = set_pressure_histogram(&arch, &cfg, p.stride_w);
        println!(
            "{:5}: stride {:>5} B, sweep {:>2} points -> {:>3} lines over {:>3} sets (capacity {} lines){}",
            alg.short_name(),
            prof.stride_bytes,
            prof.sweep_len,
            prof.footprint_lines,
            prof.distinct_sets,
            prof.capacity_lines,
            if prof.thrashes { "  ** THRASHES **" } else { "" }
        );
        // Eight sets per character cell; height = max lines in the cell.
        let cells: Vec<u32> = hist
            .chunks(8)
            .map(|c| c.iter().copied().max().unwrap_or(0))
            .collect();
        let peak = cells.iter().copied().max().unwrap_or(0).max(1);
        for level in (1..=peak).rev() {
            let row: String = cells
                .iter()
                .map(|&c| if c >= level { '#' } else { ' ' })
                .collect();
            let marker = if level as usize == arch.l1d.ways {
                "  <- associativity limit"
            } else {
                ""
            };
            println!("  {:>2} |{row}|{marker}", level);
        }
        println!(
            "     +{}+ sets 0..{}\n",
            "-".repeat(cells.len()),
            arch.l1d.sets()
        );
    }
    println!("# A bar above the associativity limit means the sweep's lines cannot");
    println!("# coexist in those sets: the next channel iteration conflict-misses");
    println!("# (Formula 3). MBDC's cache-line blocks place one line per set.");
}
