//! Cross-ISA study (extension beyond the paper's evaluation): how the three
//! direct algorithms behave on four machines spanning the SIMD-length
//! spectrum the paper's introduction motivates — AVX-512 Skylake, A64FX-like
//! SVE (512-bit), a hypothetical 4096-bit RISC-V "V" design, and the
//! 16,384-bit SX-Aurora.
//!
//! Expected shape: the three algorithms tie on the short-vector machines
//! (the paper's claim that the state of the art is adequate there) and
//! separate progressively as `A_b` grows with the vector length.
//!
//! Usage: `crossisa [minibatch]` (default 32).

use lsv_arch::presets::{a64fx_sve, rvv_longvector, skylake_avx512, sx_aurora};
use lsv_bench::{bench_engine, geomean, Engine};
use lsv_conv::{Algorithm, Direction, ExecutionMode};
use lsv_models::resnet_layers;

fn main() {
    let minibatch: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(32);
    let machines = [skylake_avx512(), a64fx_sve(), rvv_longvector(), sx_aurora()];
    let engines = [
        Engine::Direct(Algorithm::Dc),
        Engine::Direct(Algorithm::Bdc),
        Engine::Direct(Algorithm::Mbdc),
    ];
    // One flat job pool over machine x engine x layer: the short-vector
    // machines' cheap layers backfill host threads while SX-Aurora simulates.
    let layers = resnet_layers(minibatch);
    let jobs: Vec<(usize, usize, usize)> = (0..machines.len())
        .flat_map(|m| {
            let n = layers.len();
            (0..engines.len()).flat_map(move |e| (0..n).map(move |l| (m, e, l)))
        })
        .collect();
    let gflops: Vec<(usize, usize, f64)> = lsv_bench::par::par_map(jobs, |(m, e, l)| {
        let perf = bench_engine(
            &machines[m],
            &layers[l],
            Direction::Fwd,
            engines[e],
            ExecutionMode::TimingOnly,
        );
        (m, e, perf.gflops)
    });
    println!("architecture,n_vlen,algorithm,geomean_gflops_fwdd,geomean_efficiency,speedup_vs_dc");
    for (m, arch) in machines.iter().enumerate() {
        let means: Vec<(Engine, f64)> = engines
            .iter()
            .enumerate()
            .map(|(e, &eng)| {
                let gfs = gflops
                    .iter()
                    .filter(|&&(jm, je, _)| jm == m && je == e)
                    .map(|&(_, _, g)| g);
                (eng, geomean(gfs))
            })
            .collect();
        let dc = means[0].1;
        for (e, g) in &means {
            println!(
                "{},{},{},{:.1},{:.3},{:.2}",
                arch.name,
                arch.n_vlen(),
                e.name(),
                g,
                g * 1e9 / arch.peak_flops(),
                g / dc
            );
        }
    }
    println!();
    println!("# Expected: the BDC/MBDC advantage grows with the vector length (conflicts only");
    println!("# manifest when A_b is large); residual short-vector gaps come from register-file");
    println!("# sizing, not from the cache phenomenon.");
    lsv_conv::store::dump_stats_to_env_file();
}
