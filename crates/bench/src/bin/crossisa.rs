//! Cross-ISA study (extension beyond the paper's evaluation): how the three
//! direct algorithms behave on four machines spanning the SIMD-length
//! spectrum the paper's introduction motivates — AVX-512 Skylake, A64FX-like
//! SVE (512-bit), a hypothetical 4096-bit RISC-V "V" design, and the
//! 16,384-bit SX-Aurora.
//!
//! Expected shape: the three algorithms tie on the short-vector machines
//! (the paper's claim that the state of the art is adequate there) and
//! separate progressively as `A_b` grows with the vector length.
//!
//! Usage: `crossisa [minibatch]` (default 32).

use lsv_arch::presets::{a64fx_sve, rvv_longvector, skylake_avx512, sx_aurora};
use lsv_bench::{bench_engine, geomean, Engine};
use lsv_conv::{Algorithm, Direction, ExecutionMode};
use lsv_models::resnet_layers;

fn main() {
    let minibatch: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(32);
    let machines = [skylake_avx512(), a64fx_sve(), rvv_longvector(), sx_aurora()];
    let engines = [
        Engine::Direct(Algorithm::Dc),
        Engine::Direct(Algorithm::Bdc),
        Engine::Direct(Algorithm::Mbdc),
    ];
    println!("architecture,n_vlen,algorithm,geomean_gflops_fwdd,geomean_efficiency,speedup_vs_dc");
    for arch in &machines {
        let layers = resnet_layers(minibatch);
        let mut means = Vec::new();
        for &e in &engines {
            let gfs: Vec<f64> = lsv_bench::par::par_map(layers.clone(), |p| {
                bench_engine(arch, &p, Direction::Fwd, e, ExecutionMode::TimingOnly).gflops
            });
            means.push((e, geomean(gfs)));
        }
        let dc = means[0].1;
        for (e, g) in &means {
            println!(
                "{},{},{},{:.1},{:.3},{:.2}",
                arch.name,
                arch.n_vlen(),
                e.name(),
                g,
                g * 1e9 / arch.peak_flops(),
                g / dc
            );
        }
    }
    println!();
    println!("# Expected: the BDC/MBDC advantage grows with the vector length (conflicts only");
    println!("# manifest when A_b is large); residual short-vector gaps come from register-file");
    println!("# sizing, not from the cache phenomenon.");
}
