//! `lint-kernels` — run the `lsv-analyze` verifier over every kernel the
//! stack can generate: Table 3's 19 ResNet layers x {DC, BDC, MBDC} x
//! {fwdd, bwdd, bwdw}, each configuration produced by the real tuner
//! (`ConvDesc::create`, including its register-pressure fallback) and then
//! checked by the static-first analyzer (symbolic lift, register dataflow,
//! race detector). The one-image simulated replay runs only when a lift is
//! inconclusive; the run reports how often that happened.
//!
//! Output: a human-readable report on stdout (one line per kernel, then the
//! diagnostics grouped by rule) and a machine-readable `results/lint.json`,
//! schema-validated against `lsv-obs`'s `lint.schema.json` after writing.
//!
//! Usage: `lint-kernels [--deny-as-error] [--all] [--static] [results_dir]`
//!
//! `--deny-as-error` exits non-zero if any kernel produced a `Deny` finding —
//! the CI mode: the tuner must never emit a kernel its own verifier rejects.
//! `--all` sweeps the whole long-vector arch family (512..16384-bit Aurora
//! variants) instead of only the default preset. `--static` exits non-zero
//! if any kernel fell back to the simulated replay — CI's proof that the
//! clean path runs zero replays.

use lsv_analyze::{analyze_kernel_outcome, Report, RuleId, Severity};
use lsv_arch::presets::sx_aurora;
use lsv_arch::{aurora_with_vlen_bits, ArchParams};
use lsv_bench::par::par_map;
use lsv_conv::fuzz::VLEN_SWEEP_BITS;
use lsv_conv::{Algorithm, ConvDesc, ConvProblem, Direction};
use lsv_models::resnet_layers;
use std::io::Write;
use std::time::Instant;

/// One analyzed kernel: identity plus its lint report.
struct Entry {
    layer_id: usize,
    problem: ConvProblem,
    direction: Direction,
    algorithm: Algorithm,
    vlen_bits: usize,
    replayed: bool,
    report: Report,
}

/// Minimal JSON string escaping (the only non-trivial JSON we emit).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn to_json(entries: &[Entry]) -> String {
    let mut s = String::from("[\n");
    for (i, e) in entries.iter().enumerate() {
        let diags: Vec<String> = e
            .report
            .diagnostics
            .iter()
            .map(|d| {
                format!(
                    "{{\"rule\": \"{}\", \"severity\": \"{}\", \"message\": \"{}\"}}",
                    d.rule.as_str(),
                    d.severity,
                    json_escape(&d.message)
                )
            })
            .collect();
        s.push_str(&format!(
            "  {{\"layer\": {}, \"problem\": \"{}\", \"direction\": \"{}\", \
             \"algorithm\": \"{}\", \"vlen_bits\": {}, \"replayed\": {}, \
             \"deny\": {}, \"warn\": {}, \"note\": {}, \
             \"diagnostics\": [{}]}}{}\n",
            e.layer_id,
            e.problem,
            e.direction.short_name(),
            e.algorithm.short_name(),
            e.vlen_bits,
            e.replayed,
            e.report.count(Severity::Deny),
            e.report.count(Severity::Warn),
            e.report.count(Severity::Note),
            diags.join(", "),
            if i + 1 < entries.len() { "," } else { "" }
        ));
    }
    s.push_str("]\n");
    s
}

fn main() {
    let mut deny_as_error = false;
    let mut all_vlens = false;
    let mut static_only = false;
    let mut out_dir = String::from("results");
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--deny-as-error" => deny_as_error = true,
            "--all" => all_vlens = true,
            "--static" => static_only = true,
            other if other.starts_with('-') => {
                eprintln!("error: unknown flag `{other}`");
                eprintln!("usage: lint-kernels [--deny-as-error] [--all] [--static] [results_dir]");
                std::process::exit(2);
            }
            other => out_dir = other.to_string(),
        }
    }

    let arches: Vec<ArchParams> = if all_vlens {
        VLEN_SWEEP_BITS
            .iter()
            .map(|&bits| aurora_with_vlen_bits(bits))
            .collect()
    } else {
        vec![sx_aurora()]
    };
    let layers = resnet_layers(256);
    let mut jobs: Vec<(usize, usize, Direction, Algorithm)> = Vec::new();
    for ai in 0..arches.len() {
        for id in 0..layers.len() {
            for d in Direction::ALL {
                for a in Algorithm::ALL {
                    jobs.push((ai, id, d, a));
                }
            }
        }
    }

    let t0 = Instant::now();
    let mut entries: Vec<Entry> = par_map(jobs, |(ai, id, direction, algorithm)| {
        let arch = &arches[ai];
        let p = layers[id];
        let desc = ConvDesc::new(p, direction, algorithm);
        let (report, replayed) = match desc.create(arch, 8) {
            Ok(prim) => {
                let o = analyze_kernel_outcome(arch, &p, prim.cfg());
                (o.report, o.replayed)
            }
            Err(e) => {
                // The tuner itself refused — surface that as a Deny so the
                // sweep never silently skips a kernel.
                let mut r = Report::new();
                r.push(
                    RuleId::RegPressure,
                    Severity::Deny,
                    format!("primitive creation failed: {e}"),
                );
                (r, false)
            }
        };
        Entry {
            layer_id: id,
            problem: p,
            direction,
            algorithm,
            vlen_bits: arch.vlen_bits,
            replayed,
            report,
        }
    });
    let wall = t0.elapsed();
    entries.sort_by_key(|e| {
        (
            e.layer_id,
            e.direction.short_name(),
            e.algorithm.short_name(),
            e.vlen_bits,
        )
    });

    let mut totals = [0usize; 3]; // deny, warn, note
    let mut replays = 0usize;
    println!("layer direction alg    vlen  deny warn note  rules");
    for e in &entries {
        let (d, w, n) = (
            e.report.count(Severity::Deny),
            e.report.count(Severity::Warn),
            e.report.count(Severity::Note),
        );
        totals[0] += d;
        totals[1] += w;
        totals[2] += n;
        replays += e.replayed as usize;
        let rules: Vec<&str> = RuleId::ALL
            .iter()
            .filter(|&&r| e.report.fired(r))
            .map(|r| r.as_str())
            .collect();
        println!(
            "{:>5} {:<9} {:<5} {:>5} {:>4} {:>4} {:>4}  {}{}",
            e.layer_id,
            e.direction.short_name(),
            e.algorithm.short_name(),
            e.vlen_bits,
            d,
            w,
            n,
            if rules.is_empty() {
                "-".to_string()
            } else {
                rules.join(",")
            },
            if e.replayed { " [replayed]" } else { "" }
        );
    }

    println!();
    for rule in RuleId::ALL {
        let msgs: Vec<&Entry> = entries.iter().filter(|e| e.report.fired(rule)).collect();
        if msgs.is_empty() {
            continue;
        }
        println!("[{}] fired on {} kernels, e.g.:", rule.as_str(), msgs.len());
        let e = msgs[0];
        for d in e.report.by_rule(rule).take(2) {
            println!(
                "  layer {} {} {}: {}",
                e.layer_id,
                e.direction.short_name(),
                e.algorithm.short_name(),
                d.message
            );
        }
    }

    println!();
    println!(
        "analyzed {} kernels in {:.2?}: {} deny, {} warn, {} note \
         ({} simulated replays)",
        entries.len(),
        wall,
        totals[0],
        totals[1],
        totals[2],
        replays
    );

    std::fs::create_dir_all(&out_dir).expect("create results dir");
    let path = format!("{out_dir}/lint.json");
    let json = to_json(&entries);
    let mut f = std::fs::File::create(&path).expect("create lint.json");
    f.write_all(json.as_bytes()).expect("write lint.json");
    // Re-read what we actually wrote and schema-validate it: drift between
    // the emitter and `lint.schema.json` fails the run that introduced it.
    let written = std::fs::read_to_string(&path).expect("re-read lint.json");
    if let Err(e) = lsv_obs::validate_lint_json(&written) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
    println!("wrote {path} (schema-validated)");

    let mut failed = false;
    if deny_as_error && totals[0] > 0 {
        eprintln!("error: {} deny findings (--deny-as-error)", totals[0]);
        failed = true;
    }
    if static_only && replays > 0 {
        eprintln!("error: {replays} kernels fell back to the simulated replay (--static)");
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
}
