//! `lint-kernels` — run the `lsv-analyze` verifier over every kernel the
//! stack can generate: Table 3's 19 ResNet layers x {DC, BDC, MBDC} x
//! {fwdd, bwdd, bwdw}, each configuration produced by the real tuner
//! (`ConvDesc::create`, including its register-pressure fallback) and then
//! statically checked plus replayed under the trace sanitizers.
//!
//! Output: a human-readable report on stdout (one line per kernel, then the
//! diagnostics grouped by rule) and a machine-readable `results/lint.json`.
//!
//! Usage: `lint-kernels [--deny-as-error] [results_dir]`
//!
//! `--deny-as-error` exits non-zero if any kernel produced a `Deny` finding —
//! the CI mode: the tuner must never emit a kernel its own verifier rejects.

use lsv_analyze::{analyze_kernel, Report, RuleId, Severity};
use lsv_arch::presets::sx_aurora;
use lsv_bench::par::par_map;
use lsv_conv::{Algorithm, ConvDesc, ConvProblem, Direction};
use lsv_models::resnet_layers;
use std::io::Write;

/// One analyzed kernel: identity plus its lint report.
struct Entry {
    layer_id: usize,
    problem: ConvProblem,
    direction: Direction,
    algorithm: Algorithm,
    report: Report,
}

/// Minimal JSON string escaping (the only non-trivial JSON we emit).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn to_json(entries: &[Entry]) -> String {
    let mut s = String::from("[\n");
    for (i, e) in entries.iter().enumerate() {
        let diags: Vec<String> = e
            .report
            .diagnostics
            .iter()
            .map(|d| {
                format!(
                    "{{\"rule\": \"{}\", \"severity\": \"{}\", \"message\": \"{}\"}}",
                    d.rule.as_str(),
                    d.severity,
                    json_escape(&d.message)
                )
            })
            .collect();
        s.push_str(&format!(
            "  {{\"layer\": {}, \"problem\": \"{}\", \"direction\": \"{}\", \
             \"algorithm\": \"{}\", \"deny\": {}, \"warn\": {}, \"note\": {}, \
             \"diagnostics\": [{}]}}{}\n",
            e.layer_id,
            e.problem,
            e.direction.short_name(),
            e.algorithm.short_name(),
            e.report.count(Severity::Deny),
            e.report.count(Severity::Warn),
            e.report.count(Severity::Note),
            diags.join(", "),
            if i + 1 < entries.len() { "," } else { "" }
        ));
    }
    s.push_str("]\n");
    s
}

fn main() {
    let mut deny_as_error = false;
    let mut out_dir = String::from("results");
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--deny-as-error" => deny_as_error = true,
            other if other.starts_with('-') => {
                eprintln!("error: unknown flag `{other}`");
                eprintln!("usage: lint-kernels [--deny-as-error] [results_dir]");
                std::process::exit(2);
            }
            other => out_dir = other.to_string(),
        }
    }

    let arch = sx_aurora();
    let layers = resnet_layers(256);
    let mut jobs: Vec<(usize, Direction, Algorithm)> = Vec::new();
    for id in 0..layers.len() {
        for d in Direction::ALL {
            for a in Algorithm::ALL {
                jobs.push((id, d, a));
            }
        }
    }

    let mut entries: Vec<Entry> = par_map(jobs, |(id, direction, algorithm)| {
        let p = layers[id];
        let desc = ConvDesc::new(p, direction, algorithm);
        let report = match desc.create(&arch, 8) {
            Ok(prim) => analyze_kernel(&arch, &p, prim.cfg()),
            Err(e) => {
                // The tuner itself refused — surface that as a Deny so the
                // sweep never silently skips a kernel.
                let mut r = Report::new();
                r.push(
                    RuleId::RegPressure,
                    Severity::Deny,
                    format!("primitive creation failed: {e}"),
                );
                r
            }
        };
        Entry {
            layer_id: id,
            problem: p,
            direction,
            algorithm,
            report,
        }
    });
    entries.sort_by_key(|e| {
        (
            e.layer_id,
            e.direction.short_name(),
            e.algorithm.short_name(),
        )
    });

    let mut totals = [0usize; 3]; // deny, warn, note
    println!("layer direction alg   deny warn note  rules");
    for e in &entries {
        let (d, w, n) = (
            e.report.count(Severity::Deny),
            e.report.count(Severity::Warn),
            e.report.count(Severity::Note),
        );
        totals[0] += d;
        totals[1] += w;
        totals[2] += n;
        let rules: Vec<&str> = RuleId::ALL
            .iter()
            .filter(|&&r| e.report.fired(r))
            .map(|r| r.as_str())
            .collect();
        println!(
            "{:>5} {:<9} {:<5} {:>4} {:>4} {:>4}  {}",
            e.layer_id,
            e.direction.short_name(),
            e.algorithm.short_name(),
            d,
            w,
            n,
            if rules.is_empty() {
                "-".to_string()
            } else {
                rules.join(",")
            }
        );
    }

    println!();
    for rule in RuleId::ALL {
        let msgs: Vec<&Entry> = entries.iter().filter(|e| e.report.fired(rule)).collect();
        if msgs.is_empty() {
            continue;
        }
        println!("[{}] fired on {} kernels, e.g.:", rule.as_str(), msgs.len());
        let e = msgs[0];
        for d in e.report.by_rule(rule).take(2) {
            println!(
                "  layer {} {} {}: {}",
                e.layer_id,
                e.direction.short_name(),
                e.algorithm.short_name(),
                d.message
            );
        }
    }

    println!();
    println!(
        "analyzed {} kernels: {} deny, {} warn, {} note",
        entries.len(),
        totals[0],
        totals[1],
        totals[2]
    );

    std::fs::create_dir_all(&out_dir).expect("create results dir");
    let path = format!("{out_dir}/lint.json");
    let mut f = std::fs::File::create(&path).expect("create lint.json");
    f.write_all(to_json(&entries).as_bytes())
        .expect("write lint.json");
    println!("wrote {path}");

    if deny_as_error && totals[0] > 0 {
        eprintln!("error: {} deny findings (--deny-as-error)", totals[0]);
        std::process::exit(1);
    }
}
