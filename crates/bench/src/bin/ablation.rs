//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! 1. **Register-block sweep** — BDC's Formula 4 claim: sweep the combined
//!    `RB` on a conflict-prone layer and show the efficiency window between
//!    the dependency bound (too small) and the conflict bound (too large).
//! 2. **Schedule-grain (loop resizing) sweep** — the Section 6.1 auto-tuner
//!    choice: micro-kernel IC grain from `N_cline` up to `IC_b` on a 3x3
//!    layer whose weights overflow the LLC without resizing.
//! 3. **Weight double-buffer depth** — the software-pipelining depth the
//!    code generator picks to hide LLC vector-load latency.
//!
//! Usage: `ablation [layer_id]` (default 8 for the RB sweep).

use lsv_arch::presets::sx_aurora;
use lsv_conv::perf::bench_minibatch_parallel_with;
use lsv_conv::tuning::{kernel_config, split_register_block};
use lsv_conv::{Algorithm, ConvDesc, ConvProblem, Direction, ExecutionMode, KernelConfig};
use lsv_models::resnet_layer;

/// One sweep point; every variant runs the same BDC fwdd kernel with one
/// knob overridden. Jobs from all four sections share one host-thread pool;
/// the printed sections keep their fixed order.
enum Job {
    Rb { target: usize, cfg: KernelConfig },
    Grain { grain: usize, cfg: KernelConfig },
    Wbuf { wbuf: usize, cfg: KernelConfig },
    Pad { name: &'static str, oc: usize },
}

fn main() {
    let layer_id: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(8);
    let arch = sx_aurora();
    let minibatch = 64;

    let p = resnet_layer(layer_id, minibatch);
    // Section 2's synthetic 3x3 layer: the full weights sub-tensor overflows
    // the LLC (W = 512 x 2048 x 9 x 4 B = 37.7 MB > 16 MB), so the Section
    // 6.1 adaptation is load-bearing there.
    let pbig = ConvProblem::new(minibatch, 2048, 2048, 14, 14, 3, 3, 1, 1);
    let p4 = resnet_layer(4, minibatch);
    let p3 = resnet_layer(3, minibatch);

    let mut jobs: Vec<Job> = Vec::new();
    // --- 1. register-block sweep (Formula 4's window) ---
    for target in [2usize, 4, 8, 12, 16, 24, 32, 48] {
        let mut cfg = kernel_config(&arch, &p, Direction::Fwd, Algorithm::Bdc, arch.cores);
        cfg.rb = split_register_block(target, p.ow(), p.oh());
        if cfg.rb.combined() + cfg.wbuf > arch.n_vregs {
            continue;
        }
        jobs.push(Job::Rb { target, cfg });
    }
    // --- 2. schedule-grain sweep (loop resizing) ---
    let mut grain = arch.n_cline();
    while grain <= pbig.ic {
        let mut cfg = kernel_config(&arch, &pbig, Direction::Fwd, Algorithm::Bdc, arch.cores);
        cfg.tile.c_i = grain;
        cfg.tile.kh_i = pbig.kh;
        cfg.tile.kw_i = pbig.kw;
        jobs.push(Job::Grain { grain, cfg });
        grain *= 4;
    }
    // --- 3. weight double-buffer depth on a small-register-block layer
    //        (layer 4, strided: BDC's RB is 8, so each inner iteration is
    //        short and the LLC vector-load latency needs deep pipelining).
    for wbuf in [2usize, 3, 4, 6, 8, 12] {
        let mut cfg = kernel_config(&arch, &p4, Direction::Fwd, Algorithm::Bdc, arch.cores);
        cfg.wbuf = wbuf;
        if cfg.rb.combined() + wbuf > arch.n_vregs {
            continue;
        }
        jobs.push(Job::Wbuf { wbuf, cfg });
    }
    // --- 4. dynamic vector length vs zero-padding the channel dimension
    //        (Section 4.2: long-SIMD ISAs shrink vl instead of padding).
    for (name, oc) in [
        ("dynamic_vl(oc=64)", p3.oc),
        ("padded(oc=512)", arch.n_vlen()),
    ] {
        jobs.push(Job::Pad { name, oc });
    }

    let bdc_point = |problem: &ConvProblem, cfg: KernelConfig| {
        let slice = bench_minibatch_parallel_with(
            &arch,
            problem,
            Direction::Fwd,
            ExecutionMode::TimingOnly,
            arch.cores,
            &|p_sim| {
                ConvDesc::new(p_sim, Direction::Fwd, Algorithm::Bdc)
                    .create_with_config(&arch, cfg, arch.cores)
            },
        );
        slice.into_layer_perf(&arch, problem, Direction::Fwd, Algorithm::Bdc)
    };
    let lines: Vec<(usize, String)> = lsv_bench::par::par_map(jobs, |job| match job {
        Job::Rb { target, cfg } => {
            let perf = bdc_point(&p, cfg);
            (
                1,
                format!(
                    "{},{},{},{:.1},{:.3},{:.3},{:.3}",
                    target,
                    cfg.rb.rb_w,
                    cfg.rb.rb_h,
                    perf.gflops,
                    perf.efficiency,
                    perf.mpki_l1,
                    perf.conflict_fraction
                ),
            )
        }
        Job::Grain { grain, cfg } => {
            let perf = bdc_point(&pbig, cfg);
            (
                2,
                format!("{},{:.1},{:.3}", grain, perf.gflops, perf.efficiency),
            )
        }
        Job::Wbuf { wbuf, cfg } => {
            let perf = bdc_point(&p4, cfg);
            (
                3,
                format!("{},{:.1},{:.3}", wbuf, perf.gflops, perf.efficiency),
            )
        }
        Job::Pad { name, oc } => {
            let padded = ConvProblem::new(
                p3.n,
                p3.ic,
                oc,
                p3.ih,
                p3.iw,
                p3.kh,
                p3.kw,
                p3.stride_w,
                p3.pad_w,
            );
            let perf = lsv_conv::bench_layer(
                &arch,
                &padded,
                Direction::Fwd,
                Algorithm::Bdc,
                ExecutionMode::TimingOnly,
            );
            // Padding performs 8x the useful flops; report the *useful* rate.
            let useful = perf.gflops * (p3.oc as f64 / oc as f64);
            (
                4,
                format!(
                    "{},{:.1},{:.3}",
                    name,
                    useful,
                    useful * 1e9 / arch.peak_flops()
                ),
            )
        }
    });

    let section = |want: usize| {
        lines
            .iter()
            .filter(move |(s, _)| *s == want)
            .map(|(_, l)| l.as_str())
    };
    println!("# RB sweep on layer {layer_id} fwdd (BDC kernel, all else fixed)");
    println!("rb_target,rb_w,rb_h,gflops,efficiency,mpki_l1,conflict_fraction");
    for l in section(1) {
        println!("{l}");
    }
    println!();
    println!("# IC-grain sweep on a 2048-ch 3x3 14x14 layer fwdd (BDC kernel): Section 6.1 loop resizing");
    println!("ic_grain,gflops,efficiency");
    for l in section(2) {
        println!("{l}");
    }
    println!();
    println!("# weight-buffer depth sweep on layer 4 fwdd (BDC kernel, RB=8)");
    println!("wbuf,gflops,efficiency");
    for l in section(3) {
        println!("{l}");
    }
    println!();
    println!("# dynamic VL vs channel zero-padding on layer 3 fwdd (OC=64 < N_vlen)");
    println!("variant,gflops,efficiency");
    for l in section(4) {
        println!("{l}");
    }
    lsv_conv::store::dump_stats_to_env_file();
}
