//! Figure 5: speed-ups of DC, BDC and MBDC on ResNet-50/101/152 training
//! steps across maximum SIMD length settings (512, 2048, 8192, 16384 bits),
//! normalized to DC at 512-bit.
//!
//! Paper headline (at 16,384-bit): BDC 1.41/1.44/1.46x over DC on
//! ResNet-50/101/152; MBDC 1.28/1.26x on ResNet-101/152 and ~1x on
//! ResNet-50 (dragged down by the bwdw bank serialization on early layers).
//!
//! Usage: `figure5 [minibatch]` (default 256).

use lsv_arch::presets::aurora_with_vlen_bits;
use lsv_bench::{layer_time_tables, model_time_from_table, Engine};
use lsv_conv::{Algorithm, ExecutionMode};
use lsv_models::ResNetModel;
use std::collections::HashMap;

fn main() {
    let minibatch: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(256);
    let vlens = [512usize, 2048, 8192, 16384];
    let engines = [
        Engine::Direct(Algorithm::Dc),
        Engine::Direct(Algorithm::Bdc),
        Engine::Direct(Algorithm::Mbdc),
    ];
    // All vlen x engine sweeps simulate in one flat job pool; results print
    // in the fixed row order below.
    let configs: Vec<_> = vlens
        .iter()
        .flat_map(|&v| {
            engines
                .iter()
                .map(move |&e| (aurora_with_vlen_bits(v), minibatch, e))
        })
        .collect();
    let tables = layer_time_tables(&configs, ExecutionMode::TimingOnly);
    // time[(vlen, engine_name, model)] in ms
    let mut times: HashMap<(usize, &'static str, &'static str), f64> = HashMap::new();
    for (ci, (&(_, _, e), table)) in configs.iter().zip(&tables).enumerate() {
        let v = vlens[ci / engines.len()];
        for m in ResNetModel::ALL {
            times.insert((v, e.name(), m.name()), model_time_from_table(table, m));
        }
    }
    println!("model,vlen_bits,algorithm,step_ms,speedup_vs_dc512");
    for m in ResNetModel::ALL {
        let base = times[&(512, "DC", m.name())];
        for &v in &vlens {
            for &e in &engines {
                let t = times[&(v, e.name(), m.name())];
                println!("{},{},{},{:.2},{:.3}", m.name(), v, e.name(), t, base / t);
            }
        }
    }
    println!();
    println!("# Paper Figure 5 (16384-bit): BDC/DC = 1.41 (R50), 1.44 (R101), 1.46 (R152);");
    println!("# MBDC/DC = ~1.0 (R50), 1.28 (R101), 1.26 (R152); all ~equal below 8192-bit.");
    for m in ResNetModel::ALL {
        let dc = times[&(16384, "DC", m.name())];
        let bdc = times[&(16384, "BDC", m.name())];
        let mbdc = times[&(16384, "MBDC", m.name())];
        println!(
            "# measured {}: BDC/DC = {:.2}x, MBDC/DC = {:.2}x",
            m.name(),
            dc / bdc,
            dc / mbdc
        );
    }
    lsv_conv::store::dump_stats_to_env_file();
}
