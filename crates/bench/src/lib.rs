//! # lsv-bench — the benchmark harness
//!
//! One binary per table/figure of the paper (see DESIGN.md's per-experiment
//! index), plus this library of shared plumbing: the engine abstraction
//! (direct algorithms vs. the vednn baseline), parallel suite runners, CSV
//! formatting matching the artifact's `performance.sh` schema, and
//! model-level aggregation for the ResNet experiments.

use lsv_arch::ArchParams;
use lsv_conv::perf::LayerPerf;
use lsv_conv::{bench_layer, Algorithm, ConvProblem, Direction, ExecutionMode};
use lsv_models::{resnet_layers, ResNetModel};
use lsv_vednn::bench_layer_vednn;

pub mod par;
pub mod profiling;

/// A convolution engine under test: one of the paper's direct algorithms or
/// the baseline library.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Engine {
    /// DC / BDC / MBDC from `lsv-conv`.
    Direct(Algorithm),
    /// The vednn-style baseline from `lsv-vednn`.
    Vednn,
}

impl Engine {
    /// The four engines in the paper's Figure 4 order
    /// (vednn, DC, BDC, MBDC).
    pub const ALL: [Engine; 4] = [
        Engine::Vednn,
        Engine::Direct(Algorithm::Dc),
        Engine::Direct(Algorithm::Bdc),
        Engine::Direct(Algorithm::Mbdc),
    ];

    /// Display name matching the paper's legends.
    pub fn name(&self) -> &'static str {
        match self {
            Engine::Vednn => "vednn",
            Engine::Direct(a) => a.short_name(),
        }
    }
}

/// Run one (layer, direction, engine) configuration under the 8-core model.
pub fn bench_engine(
    arch: &ArchParams,
    problem: &ConvProblem,
    direction: Direction,
    engine: Engine,
    mode: ExecutionMode,
) -> LayerPerf {
    match engine {
        Engine::Direct(alg) => bench_layer(arch, problem, direction, alg, mode),
        Engine::Vednn => bench_layer_vednn(arch, problem, direction, mode),
    }
}

/// One measurement row (the artifact CSV schema: problem id, direction,
/// algorithm, minibatch, GFLOP/s, milliseconds).
#[derive(Debug, Clone)]
pub struct Row {
    /// Table 3 layer id.
    pub layer_id: usize,
    /// Pass direction.
    pub direction: Direction,
    /// Engine under test.
    pub engine: Engine,
    /// Minibatch size.
    pub minibatch: usize,
    /// The measurement.
    pub perf: LayerPerf,
}

impl Row {
    /// CSV header matching the artifact's `performance.sh` output, extended
    /// with the efficiency/MPKI columns used by the analysis notebooks.
    pub fn csv_header() -> &'static str {
        "problem_id,direction,algorithm,minibatch,gflops,time_ms,efficiency,mpki_l1,conflict_fraction,conflicts_predicted"
    }

    /// One CSV line.
    pub fn to_csv(&self) -> String {
        format!(
            "{},{},{},{},{:.1},{:.3},{:.3},{:.3},{:.3},{}",
            self.layer_id,
            self.direction.short_name(),
            self.engine.name(),
            self.minibatch,
            self.perf.gflops,
            self.perf.time_ms,
            self.perf.efficiency,
            self.perf.mpki_l1,
            self.perf.conflict_fraction,
            self.perf.conflicts_predicted,
        )
    }
}

/// Geometric mean (the aggregation used by Figure 4's rightmost columns).
pub fn geomean(xs: impl IntoIterator<Item = f64>) -> f64 {
    let (mut log_sum, mut n) = (0.0f64, 0usize);
    for x in xs {
        if x > 0.0 {
            log_sum += x.ln();
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        (log_sum / n as f64).exp()
    }
}

/// Run the full Figure 4 suite: every Table 3 layer x direction x engine at
/// one minibatch size, in parallel on host threads.
pub fn run_suite(
    arch: &ArchParams,
    minibatch: usize,
    engines: &[Engine],
    directions: &[Direction],
    mode: ExecutionMode,
) -> Vec<Row> {
    let layers = resnet_layers(minibatch);
    let mut jobs: Vec<(usize, Direction, Engine)> = Vec::new();
    for (id, _) in layers.iter().enumerate() {
        for &d in directions {
            for &e in engines {
                jobs.push((id, d, e));
            }
        }
    }
    let mut rows: Vec<Row> = par::par_map(jobs, |(id, direction, engine)| {
        let perf = bench_engine(arch, &layers[id], direction, engine, mode);
        Row {
            layer_id: id,
            direction,
            engine,
            minibatch,
            perf,
        }
    });
    rows.sort_by_key(|r| (r.direction.short_name(), r.layer_id, r.engine.name()));
    rows
}

/// Per-layer, per-direction wall-times (milliseconds) of one engine at one
/// minibatch: `table[layer_id][direction_index]`. Shared across model-level
/// aggregations so each layer simulates once (Figures 5 and 6).
pub fn layer_time_table(
    arch: &ArchParams,
    minibatch: usize,
    engine: Engine,
    mode: ExecutionMode,
) -> Vec<[f64; 3]> {
    let layers = resnet_layers(minibatch);
    let jobs: Vec<(usize, usize)> = (0..layers.len())
        .flat_map(|id| (0..3).map(move |d| (id, d)))
        .collect();
    let times: Vec<(usize, usize, f64)> = par::par_map(jobs, |(id, d)| {
        let perf = bench_engine(arch, &layers[id], Direction::ALL[d], engine, mode);
        (id, d, perf.time_ms)
    });
    let mut table = vec![[0.0f64; 3]; layers.len()];
    for (id, d, t) in times {
        table[id][d] = t;
    }
    table
}

/// [`layer_time_table`] for several (arch, minibatch, engine) configurations
/// at once: every configuration's layer x direction jobs go into one flat
/// pool, so a sweep bin (Figures 5/6) exposes all of its parallelism to the
/// host instead of running configurations back to back, each with a mostly
/// idle pool tail. Returns one table per configuration, in input order.
pub fn layer_time_tables(
    configs: &[(ArchParams, usize, Engine)],
    mode: ExecutionMode,
) -> Vec<Vec<[f64; 3]>> {
    let layer_sets: Vec<Vec<ConvProblem>> = configs
        .iter()
        .map(|&(_, mb, _)| resnet_layers(mb))
        .collect();
    let jobs: Vec<(usize, usize, usize)> = configs
        .iter()
        .enumerate()
        .flat_map(|(c, _)| {
            let n = layer_sets[c].len();
            (0..n).flat_map(move |id| (0..3).map(move |d| (c, id, d)))
        })
        .collect();
    let times: Vec<(usize, usize, usize, f64)> = par::par_map(jobs, |(c, id, d)| {
        let (ref arch, _, engine) = configs[c];
        let perf = bench_engine(arch, &layer_sets[c][id], Direction::ALL[d], engine, mode);
        (c, id, d, perf.time_ms)
    });
    let mut tables: Vec<Vec<[f64; 3]>> = layer_sets
        .iter()
        .map(|ls| vec![[0.0f64; 3]; ls.len()])
        .collect();
    for (c, id, d, t) in times {
        tables[c][id][d] = t;
    }
    tables
}

/// Aggregate a [`layer_time_table`] into one training step of a model.
pub fn model_time_from_table(table: &[[f64; 3]], model: ResNetModel) -> f64 {
    let counts = model.layer_counts();
    table
        .iter()
        .zip(counts)
        .map(|(t, c)| (t[0] + t[1] + t[2]) * c as f64)
        .sum()
}

/// Wall-time of one full training step (all three passes over every
/// convolution, weighted by the model's layer frequencies) in milliseconds.
pub fn model_step_time_ms(
    arch: &ArchParams,
    model: ResNetModel,
    minibatch: usize,
    engine: Engine,
    mode: ExecutionMode,
) -> f64 {
    model_time_from_table(&layer_time_table(arch, minibatch, engine, mode), model)
}

/// Model-level GFLOP/s of one training step (all passes' conv flops / time,
/// with the pass-count factor owned by [`ResNetModel::training_flops`]).
pub fn model_step_gflops(
    arch: &ArchParams,
    model: ResNetModel,
    minibatch: usize,
    engine: Engine,
    mode: ExecutionMode,
) -> f64 {
    let time_ms = model_step_time_ms(arch, model, minibatch, engine, mode);
    let flops = model.training_flops(minibatch) as f64;
    flops / (time_ms / 1e3) / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean([2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(std::iter::empty()), 0.0);
        assert!((geomean([5.0]) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn engine_names() {
        assert_eq!(Engine::Vednn.name(), "vednn");
        assert_eq!(Engine::Direct(Algorithm::Bdc).name(), "BDC");
    }

    #[test]
    fn row_csv_schema() {
        assert!(Row::csv_header().starts_with("problem_id,direction,algorithm,minibatch"));
    }
}
