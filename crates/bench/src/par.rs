//! Host-side parallel map over independent benchmark jobs.
//!
//! Replaces the rayon dependency (unavailable offline) with a scoped
//! worker pool: jobs are claimed by atomic index so an expensive layer
//! doesn't serialize behind a cheap one, and results keep input order.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Apply `f` to every item, using up to `available_parallelism` worker
/// threads, and return the results in input order.
pub fn par_map<I, O, F>(items: Vec<I>, f: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    let n = items.len();
    let threads = std::thread::available_parallelism()
        .map(|t| t.get())
        .unwrap_or(1)
        .min(n.max(1));
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let slots: Vec<Mutex<Option<I>>> = items.into_iter().map(|i| Mutex::new(Some(i))).collect();
    let results: Vec<Mutex<Option<O>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i]
                    .lock()
                    .expect("par_map: poisoned job slot")
                    .take()
                    .expect("par_map: job claimed twice");
                let out = f(item);
                *results[i].lock().expect("par_map: poisoned result slot") = Some(out);
            });
        }
    });
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("par_map: poisoned result slot")
                .expect("par_map: worker panicked before storing its result")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::par_map;

    #[test]
    fn preserves_order_and_values() {
        let xs: Vec<usize> = (0..100).collect();
        let ys = par_map(xs, |x| x * 3);
        assert_eq!(ys, (0..100).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_is_fine() {
        let ys: Vec<u32> = par_map(Vec::<u32>::new(), |x| x);
        assert!(ys.is_empty());
    }
}
