//! Host-side parallel map over independent benchmark jobs.
//!
//! Replaces the rayon dependency (unavailable offline) with a scoped
//! worker pool: jobs are claimed by atomic index so an expensive layer
//! doesn't serialize behind a cheap one, and results keep input order.
//!
//! A job that panics does not poison the pool: the panic payload is caught
//! in the worker, the surviving workers finish their claimed jobs, and the
//! first failure is re-raised on the caller's thread annotated with the
//! failing job index — so a sweep that dies points at *which* layer/config
//! killed it instead of an opaque "poisoned lock".

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Lock a mutex, ignoring poison: every slot value is only ever taken or
/// stored whole, so a panic between operations cannot leave it half-updated.
fn lock_unpoisoned<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

/// Re-raise a caught job panic on the calling thread, prefixing the payload
/// (when it is a string) with the failing job index.
fn repanic(index: usize, payload: Box<dyn std::any::Any + Send>) -> ! {
    let msg = if let Some(s) = payload.downcast_ref::<&str>() {
        Some((*s).to_string())
    } else {
        payload.downcast_ref::<String>().cloned()
    };
    match msg {
        Some(m) => panic!("par_map: job {index} panicked: {m}"),
        None => resume_unwind(payload),
    }
}

/// Apply `f` to every item, using up to `available_parallelism` worker
/// threads, and return the results in input order.
///
/// # Panics
/// If any job panics, panics with `par_map: job {i} panicked: ...` for the
/// lowest-indexed failing job (after letting in-flight jobs finish).
pub fn par_map<I, O, F>(items: Vec<I>, f: F) -> Vec<O>
where
    I: Send,
    O: Send,
    F: Fn(I) -> O + Sync,
{
    let n = items.len();
    let threads = std::thread::available_parallelism()
        .map(|t| t.get())
        .unwrap_or(1)
        .min(n.max(1));
    if threads <= 1 {
        // Serial path: same panic annotation as the pooled path, so callers
        // (and tests) observe identical failure behaviour on 1-core hosts.
        return items
            .into_iter()
            .enumerate()
            .map(
                |(i, item)| match catch_unwind(AssertUnwindSafe(|| f(item))) {
                    Ok(out) => out,
                    Err(payload) => repanic(i, payload),
                },
            )
            .collect();
    }
    let slots: Vec<Mutex<Option<I>>> = items.into_iter().map(|i| Mutex::new(Some(i))).collect();
    let results: Vec<Mutex<Option<O>>> = (0..n).map(|_| Mutex::new(None)).collect();
    type Failure = Box<dyn std::any::Any + Send>;
    let failures: Mutex<Vec<(usize, Failure)>> = Mutex::new(Vec::new());
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = lock_unpoisoned(&slots[i])
                    .take()
                    .expect("par_map: job claimed twice");
                match catch_unwind(AssertUnwindSafe(|| f(item))) {
                    Ok(out) => *lock_unpoisoned(&results[i]) = Some(out),
                    Err(payload) => lock_unpoisoned(&failures).push((i, payload)),
                }
            });
        }
    });
    let mut failed = failures.into_inner().unwrap_or_else(|e| e.into_inner());
    if !failed.is_empty() {
        failed.sort_by_key(|&(i, _)| i);
        let (i, payload) = failed.remove(0);
        repanic(i, payload);
    }
    results
        .into_iter()
        .map(|m| {
            m.into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .expect("par_map: worker exited without storing a result")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::par_map;

    #[test]
    fn preserves_order_and_values() {
        let xs: Vec<usize> = (0..100).collect();
        let ys = par_map(xs, |x| x * 3);
        assert_eq!(ys, (0..100).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_is_fine() {
        let ys: Vec<u32> = par_map(Vec::<u32>::new(), |x| x);
        assert!(ys.is_empty());
    }

    #[test]
    fn panicking_job_reports_its_index() {
        let caught = std::panic::catch_unwind(|| {
            par_map((0..16).collect::<Vec<u32>>(), |x| {
                if x == 11 {
                    panic!("layer exploded");
                }
                x
            })
        })
        .expect_err("a panicking job must fail the map");
        let msg = caught
            .downcast_ref::<String>()
            .cloned()
            .expect("annotated panic carries a String payload");
        assert!(msg.contains("job 11"), "panic names the job index: {msg}");
        assert!(
            msg.contains("layer exploded"),
            "original message kept: {msg}"
        );
    }

    #[test]
    fn lowest_failing_index_wins_and_survivors_complete() {
        // Two failing jobs: the report must name the lowest index regardless
        // of completion order.
        let caught = std::panic::catch_unwind(|| {
            par_map((0..32).collect::<Vec<u32>>(), |x| {
                if x == 7 || x == 23 {
                    panic!("boom {x}");
                }
                x
            })
        })
        .expect_err("failing jobs must fail the map");
        let msg = caught.downcast_ref::<String>().cloned().unwrap();
        assert!(msg.contains("job 7"), "lowest failing job reported: {msg}");
    }

    #[test]
    fn non_string_panic_payloads_propagate() {
        let caught = std::panic::catch_unwind(|| {
            par_map(vec![0u32], |_| -> u32 { std::panic::panic_any(42i32) })
        })
        .expect_err("panic must propagate");
        assert_eq!(caught.downcast_ref::<i32>(), Some(&42));
    }
}
