//! Shared plumbing for the profiled bench paths: metadata assembly, the
//! reconciliation + schema gates, and artifact emission.
//!
//! Every consumer (`lsvconv profile`, the `--profile` flags on the
//! figure/table bins, CI's smoke gate) goes through
//! [`write_profile_artifacts`], so a profile that fails cycle
//! reconciliation or schema validation can never be written to disk as if
//! it were trustworthy.

use lsv_arch::ArchParams;
use lsv_conv::{ConvProblem, Direction};
use lsv_obs::{
    folded_stacks, perfetto_trace_json, profile_report_json, validate_profile_json, ProfileMeta,
};
use lsv_vengine::RegionProfile;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Assemble the report metadata for one profiled layer run.
pub fn profile_meta(
    arch: &ArchParams,
    problem: &ConvProblem,
    direction: Direction,
    algorithm: &str,
    profile: &RegionProfile,
) -> ProfileMeta {
    ProfileMeta {
        label: format!("{problem} {} {algorithm}", direction.short_name()),
        arch: arch.name.clone(),
        direction: direction.short_name().to_string(),
        algorithm: algorithm.to_string(),
        freq_ghz: arch.freq_ghz,
        // Useful work actually performed by the profiled slice.
        flops: profile.total.insts.fma_elems * 2,
        peak_flops_per_cycle: arch.peak_flops_per_cycle(),
        line_bytes: arch.l1d.line as u64,
        // Streaming memory slope: one line per `mem_line_cycles`.
        mem_bytes_per_cycle: arch.l1d.line as f64 / arch.mem_line_cycles.max(1) as f64,
    }
}

/// Paths of the three artifacts one profiled run produces.
#[derive(Debug, Clone)]
pub struct ProfileArtifacts {
    /// The machine-readable report (`<stem>.json`), schema-validated.
    pub report: PathBuf,
    /// The Perfetto/Chrome trace (`<stem>.trace.json`).
    pub trace: PathBuf,
    /// The folded flamegraph stacks (`<stem>.folded`).
    pub folded: PathBuf,
}

/// Validate a profile and write its three artifacts under `dir`.
///
/// Hard gates, both fatal: the per-region accounting must reconcile exactly
/// with the whole-run counters (`PROFILE-UNRECONCILED`), and the emitted
/// report must validate against `schemas/profile.schema.json`.
pub fn write_profile_artifacts(
    dir: &Path,
    stem: &str,
    profile: &RegionProfile,
    meta: &ProfileMeta,
) -> io::Result<ProfileArtifacts> {
    let reconciliation = lsv_analyze::check_profile_reconciliation(profile, &profile.total);
    if reconciliation.has_deny() {
        let findings: Vec<String> = reconciliation
            .diagnostics
            .iter()
            .map(|d| d.to_string())
            .collect();
        return Err(io::Error::other(format!(
            "profile accounting does not reconcile:\n  {}",
            findings.join("\n  ")
        )));
    }

    let report_json = profile_report_json(profile, meta);
    validate_profile_json(&report_json).map_err(io::Error::other)?;

    fs::create_dir_all(dir)?;
    let artifacts = ProfileArtifacts {
        report: dir.join(format!("{stem}.json")),
        trace: dir.join(format!("{stem}.trace.json")),
        folded: dir.join(format!("{stem}.folded")),
    };
    fs::write(&artifacts.report, report_json)?;
    fs::write(&artifacts.trace, perfetto_trace_json(profile))?;
    fs::write(&artifacts.folded, folded_stacks(profile))?;
    Ok(artifacts)
}

/// Print the human summary of a profile: totals, reconciliation status, and
/// the regions ranked by self cycles.
pub fn print_profile_summary(profile: &RegionProfile, top: usize) {
    let total = profile.total.cycles.max(1) as f64;
    println!(
        "profiled {} cycles, {} instructions, {} region paths, {} spans{}",
        profile.total.cycles,
        profile.total.insts.total(),
        profile.paths.len(),
        profile.spans.len(),
        if profile.dropped_spans > 0 {
            format!(" ({} dropped)", profile.dropped_spans)
        } else {
            String::new()
        }
    );
    let stalls = profile
        .total
        .stall_breakdown()
        .map(|(label, c)| format!("{label} {:.1}%", c as f64 / total * 100.0))
        .join(" | ");
    println!("stalls: {stalls}");
    println!(
        "reconciliation: per-region self cycles sum to {} of {} total ({})",
        profile.self_cycles_total(),
        profile.total.cycles,
        if profile.self_cycles_total() == profile.total.cycles {
            "exact"
        } else {
            "MISMATCH"
        }
    );
    println!();
    println!(
        "{:<42} {:>8} {:>14} {:>6} {:>14} {:>8}",
        "region", "enters", "self_cycles", "self%", "incl_cycles", "mpki_l1"
    );
    let mut ids: Vec<u32> = (0..profile.regions.len() as u32).collect();
    ids.sort_by_key(|&id| std::cmp::Reverse(profile.regions[id as usize].cycles));
    for &id in ids.iter().take(top) {
        let r = &profile.regions[id as usize];
        if r.cycles == 0 && r.enters == 0 {
            continue;
        }
        println!(
            "{:<42} {:>8} {:>14} {:>5.1}% {:>14} {:>8.2}",
            profile.full_name(id),
            r.enters,
            r.cycles,
            r.cycles as f64 / total * 100.0,
            profile.inclusive_cycles(id),
            r.mpki_l1()
        );
    }
}
