//! Criterion micro-benchmarks of the simulator substrate itself: cache
//! accesses, scoreboard throughput, functional kernels and layout
//! conversions. These track the *host-side* cost of the simulation
//! infrastructure (useful when extending the engine).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lsv_arch::presets::sx_aurora;
use lsv_arch::CacheGeometry;
use lsv_cache::{Hierarchy, SetAssocCache, ShadowLru};
use lsv_conv::{naive, Algorithm, ConvDesc, ConvProblem, Direction, NativeBackend};
use lsv_tensor::{ActTensor, ActivationLayout};
use lsv_vengine::{Arena, ExecutionMode, ScalarValue, VCore};

fn bench_cache_hierarchy(c: &mut Criterion) {
    let arch = sx_aurora();
    let mut g = c.benchmark_group("substrate/cache_access");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("sequential_10k", |b| {
        b.iter_batched(
            || Hierarchy::for_core(&arch, 1),
            |mut h| {
                for i in 0..10_000u64 {
                    std::hint::black_box(h.access_line(i * 128, false));
                }
            },
            criterion::BatchSize::SmallInput,
        )
    });
    g.bench_function("thrashing_10k", |b| {
        b.iter_batched(
            || Hierarchy::for_core(&arch, 1),
            |mut h| {
                for i in 0..10_000u64 {
                    std::hint::black_box(h.access_line((i % 24) * 2048 + (i / 24) * 4, false));
                }
            },
            criterion::BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_set_assoc(c: &mut Criterion) {
    // LLC-shaped single cache, exercised directly (no hierarchy walk):
    // tracks the cost of `SetAssocCache::access_line` itself, including the
    // MRU fast path (sequential re-touches) and the LRU shifting slow path.
    let geom = CacheGeometry {
        size: 16 << 20,
        line: 128,
        ways: 16,
    };
    let mut g = c.benchmark_group("substrate/set_assoc_access");
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("mru_repeat_100k", |b| {
        b.iter_batched(
            || SetAssocCache::new(geom, false),
            |mut cache| {
                for i in 0..100_000u64 {
                    std::hint::black_box(cache.access_line((i % 8) * 128, false));
                }
            },
            criterion::BatchSize::SmallInput,
        )
    });
    g.bench_function("streaming_100k", |b| {
        b.iter_batched(
            || SetAssocCache::new(geom, false),
            |mut cache| {
                for i in 0..100_000u64 {
                    std::hint::black_box(cache.access_line(i * 128, true));
                }
            },
            criterion::BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_shadow_lru(c: &mut Criterion) {
    // Fully-associative shadow at LLC capacity (131072 lines), the structure
    // the O(1) open-addressing rewrite targets. The mixed stream alternates
    // re-touches (head moves) with cold lines (evictions + node recycling).
    let capacity = (16 << 20) / 128;
    let mut g = c.benchmark_group("substrate/shadow_lru");
    g.throughput(Throughput::Elements(100_000));
    g.bench_function("mixed_stream_100k", |b| {
        b.iter_batched(
            || ShadowLru::new(capacity),
            |mut shadow| {
                let mut x = 0x2545_f491_4f6c_dd1du64;
                for i in 0..100_000u64 {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    let line = if i % 3 == 0 {
                        x % 1024
                    } else {
                        x % (capacity as u64 * 2)
                    };
                    std::hint::black_box(shadow.access(line));
                }
            },
            criterion::BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_scoreboard(c: &mut Criterion) {
    let arch = sx_aurora();
    let mut g = c.benchmark_group("substrate/vfma_issue");
    g.throughput(Throughput::Elements(10_000));
    g.bench_function("timing_only_10k", |b| {
        b.iter_batched(
            || VCore::new(&arch, ExecutionMode::TimingOnly, 1),
            |mut core| {
                for i in 0..10_000usize {
                    core.vfma_bcast(i % 16, 30, ScalarValue::constant(1.0), 512);
                }
                std::hint::black_box(core.drain())
            },
            criterion::BatchSize::SmallInput,
        )
    });
    g.bench_function("functional_10k", |b| {
        b.iter_batched(
            || VCore::new(&arch, ExecutionMode::Functional, 1),
            |mut core| {
                for i in 0..10_000usize {
                    core.vfma_bcast(i % 16, 30, ScalarValue::constant(1.0), 512);
                }
                std::hint::black_box(core.drain())
            },
            criterion::BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_functional_kernels(c: &mut Criterion) {
    let arch = sx_aurora();
    let p = ConvProblem::new(1, 32, 32, 12, 12, 3, 3, 1, 1);
    let src: Vec<f32> = (0..p.n * p.ic * p.ih * p.iw)
        .map(|i| i as f32 * 1e-3)
        .collect();
    let wei: Vec<f32> = (0..p.oc * p.ic * p.kh * p.kw)
        .map(|i| i as f32 * 1e-4)
        .collect();
    let mut g = c.benchmark_group("substrate/functional_fwd");
    g.sample_size(10);
    for alg in Algorithm::ALL {
        let prim = ConvDesc::new(p, Direction::Fwd, alg)
            .create(&arch, 1)
            .unwrap();
        g.bench_with_input(
            BenchmarkId::from_parameter(alg.short_name()),
            &prim,
            |b, prim| b.iter(|| std::hint::black_box(prim.run_functional(&src, &wei, &[]))),
        );
    }
    g.finish();
}

fn bench_native_vs_naive(c: &mut Criterion) {
    // The native backend runs the frozen blocked plan as host loops; the
    // naive reference is the textbook seven-deep nest over the same
    // operands. Identical FLOPs, identical results (within reassociation) —
    // the gap is what the paper's blocking buys even off the simulator.
    let arch = sx_aurora();
    let p = ConvProblem::new(1, 64, 64, 28, 28, 3, 3, 1, 1);
    let src: Vec<f32> = (0..p.n * p.ic * p.ih * p.iw)
        .map(|i| (i % 251) as f32 * 1e-3)
        .collect();
    let wei: Vec<f32> = (0..p.oc * p.ic * p.kh * p.kw)
        .map(|i| (i % 127) as f32 * 1e-4)
        .collect();
    let mut g = c.benchmark_group("backend/native_vs_naive_fwd");
    g.sample_size(10);
    g.throughput(Throughput::Elements(2 * p.macs()));
    g.bench_function("naive", |b| {
        b.iter(|| std::hint::black_box(naive::forward(&p, &src, &wei)))
    });
    for alg in Algorithm::ALL {
        let prim = ConvDesc::new(p, Direction::Fwd, alg)
            .create(&arch, 1)
            .unwrap();
        g.bench_with_input(
            BenchmarkId::new("native", alg.short_name()),
            &prim,
            |b, prim| {
                b.iter(|| {
                    std::hint::black_box(prim.run_with_backend(&NativeBackend, &src, &wei, &[]))
                })
            },
        );
    }
    g.finish();
}

fn bench_layout_conversion(c: &mut Criterion) {
    let mut arena = Arena::new();
    let t = ActTensor::alloc(&mut arena, 1, 256, 28, 28, ActivationLayout { cb: 32 });
    let data: Vec<f32> = (0..t.elems()).map(|i| i as f32).collect();
    let mut g = c.benchmark_group("substrate/layout");
    g.throughput(Throughput::Elements(t.elems() as u64));
    g.bench_function("store_nchw_256x28x28", |b| {
        b.iter(|| t.store_nchw(&mut arena, std::hint::black_box(&data)))
    });
    g.finish();
}

criterion_group!(
    kernels,
    bench_cache_hierarchy,
    bench_set_assoc,
    bench_shadow_lru,
    bench_scoreboard,
    bench_functional_kernels,
    bench_native_vs_naive,
    bench_layout_conversion,
);
criterion_main!(kernels);
