//! Criterion wrappers around reduced-size versions of every paper
//! experiment, so `cargo bench` exercises each table/figure pipeline.
//! The full-size runs live in the `lsv-bench` binaries (one per figure).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lsv_arch::formula2_rb_min;
use lsv_arch::presets::{aurora_with_vlen_bits, sx_aurora};
use lsv_bench::{bench_engine, Engine};
use lsv_conv::footprint::microkernel_footprint;
use lsv_conv::tuning::{
    autotune_microkernel, kernel_config, split_register_block, RegisterBlocking,
};
use lsv_conv::{Algorithm, ConvProblem, Direction, ExecutionMode};
use lsv_models::resnet_layer;

/// Table 1/2 path: kernel configuration ("code generation") for every
/// algorithm on a representative layer.
fn bench_table2_codegen(c: &mut Criterion) {
    let arch = sx_aurora();
    let p = resnet_layer(16, 256);
    c.bench_function("table2/kernel_config_all_algorithms", |b| {
        b.iter(|| {
            for alg in Algorithm::ALL {
                for dir in Direction::ALL {
                    std::hint::black_box(kernel_config(&arch, &p, dir, alg, 8));
                }
            }
        })
    });
}

/// Figure 2 path: the footprint model across the vector-length sweep.
fn bench_figure2_footprint(c: &mut Criterion) {
    c.bench_function("figure2/footprint_sweep", |b| {
        b.iter(|| {
            for bits in [512usize, 2048, 4096, 8192, 16384] {
                let arch = aurora_with_vlen_bits(bits);
                let p = ConvProblem::new(256, 512, 512, 7, 7, 3, 3, 1, 1);
                let rb = split_register_block(formula2_rb_min(&arch), p.ow(), p.oh());
                std::hint::black_box(microkernel_footprint(&arch, &p, rb));
            }
        })
    });
}

/// Figure 4 path: one reduced layer through the full multi-core performance
/// model, per engine.
fn bench_figure4_layer(c: &mut Criterion) {
    let arch = sx_aurora();
    let p = ConvProblem::new(8, 128, 128, 14, 14, 3, 3, 1, 1);
    let mut g = c.benchmark_group("figure4/layer6_reduced");
    g.sample_size(10);
    for engine in Engine::ALL {
        g.bench_with_input(
            BenchmarkId::from_parameter(engine.name()),
            &engine,
            |b, &e| {
                b.iter(|| {
                    std::hint::black_box(bench_engine(
                        &arch,
                        &p,
                        Direction::Fwd,
                        e,
                        ExecutionMode::TimingOnly,
                    ))
                })
            },
        );
    }
    g.finish();
}

/// Figure 5 path: kernel regeneration + one reduced layer across vector
/// lengths.
fn bench_figure5_vlen_sweep(c: &mut Criterion) {
    let p = ConvProblem::new(8, 256, 256, 14, 14, 1, 1, 1, 0);
    let mut g = c.benchmark_group("figure5/vlen_sweep_reduced");
    g.sample_size(10);
    for bits in [512usize, 2048, 8192, 16384] {
        let arch = aurora_with_vlen_bits(bits);
        g.bench_with_input(BenchmarkId::from_parameter(bits), &arch, |b, a| {
            b.iter(|| {
                std::hint::black_box(bench_engine(
                    a,
                    &p,
                    Direction::Fwd,
                    Engine::Direct(Algorithm::Bdc),
                    ExecutionMode::TimingOnly,
                ))
            })
        });
    }
    g.finish();
}

/// Figure 6 path: minibatch scaling of the multi-core model on one layer.
fn bench_figure6_minibatch(c: &mut Criterion) {
    let arch = sx_aurora();
    let mut g = c.benchmark_group("figure6/minibatch_reduced");
    g.sample_size(10);
    for mb in [8usize, 64] {
        let p = ConvProblem::new(mb, 128, 128, 14, 14, 3, 3, 1, 1);
        g.bench_with_input(BenchmarkId::from_parameter(mb), &p, |b, p| {
            b.iter(|| {
                std::hint::black_box(bench_engine(
                    &arch,
                    p,
                    Direction::Fwd,
                    Engine::Direct(Algorithm::Bdc),
                    ExecutionMode::TimingOnly,
                ))
            })
        });
    }
    g.finish();
}

/// MPKI-study path: the tuner + the simulated counters on a conflicted
/// versus a clean layer.
fn bench_mpki_study(c: &mut Criterion) {
    let arch = sx_aurora();
    let conflicted = ConvProblem::new(8, 512, 128, 14, 14, 1, 1, 1, 0);
    let mut g = c.benchmark_group("mpki/conflicted_layer");
    g.sample_size(10);
    for alg in [Algorithm::Dc, Algorithm::Bdc] {
        g.bench_with_input(
            BenchmarkId::from_parameter(alg.short_name()),
            &alg,
            |b, &a| {
                b.iter(|| {
                    std::hint::black_box(bench_engine(
                        &arch,
                        &conflicted,
                        Direction::Fwd,
                        Engine::Direct(a),
                        ExecutionMode::TimingOnly,
                    ))
                })
            },
        );
    }
    g.finish();
}

/// Algorithm 3 auto-tuner micro-benchmark.
fn bench_autotuner(c: &mut Criterion) {
    let arch = sx_aurora();
    c.bench_function("tuner/autotune_microkernel", |b| {
        b.iter(|| {
            std::hint::black_box(autotune_microkernel(
                &arch,
                3,
                3,
                2048,
                2048,
                56,
                56,
                RegisterBlocking { rb_w: 24, rb_h: 1 },
                8,
            ))
        })
    });
}

criterion_group!(
    figures,
    bench_table2_codegen,
    bench_figure2_footprint,
    bench_figure4_layer,
    bench_figure5_vlen_sweep,
    bench_figure6_minibatch,
    bench_mpki_study,
    bench_autotuner,
);
criterion_main!(figures);
