//! CLI contract tests for `lsvconv serve`: the backend guard and the store
//! flags must behave exactly like the other store-backed subcommands
//! (`bench`, `tune`, `profile`).

use std::process::Command;

fn lsvconv(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_lsvconv-cli"))
        .args(args)
        .env_remove("LSV_STORE_DIR")
        .env_remove("LSV_STORE")
        .output()
        .expect("lsvconv runs")
}

#[test]
fn serve_rejects_native_backend_with_the_standard_error() {
    let out = lsvconv(&["serve", "--backend", "native", "--smoke"]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("--backend native is not valid for `serve`"),
        "stderr: {err}"
    );
    assert!(
        err.contains("only the simulator models time"),
        "stderr: {err}"
    );
}

#[test]
fn serve_rejects_no_store_combined_with_store_dir() {
    let out = lsvconv(&["serve", "--no-store", "--store-dir", "/tmp/x", "--smoke"]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("--no-store and --store-dir are mutually exclusive"),
        "stderr: {err}"
    );
}

#[test]
fn serve_rejects_store_dir_without_a_path() {
    // `--store-dir --smoke`: a following `--flag` is never a value.
    let out = lsvconv(&["serve", "--store-dir", "--smoke"]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--store-dir requires a path"), "stderr: {err}");
}

#[test]
fn serve_rejects_a_value_on_no_store() {
    let out = lsvconv(&["serve", "--no-store", "yes", "--smoke"]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--no-store takes no value"), "stderr: {err}");
}

#[test]
fn serve_accepts_no_store_and_emits_the_sweep() {
    // Smallest real run: one engine, batch 1, few requests. `--no-store`
    // must be accepted (and simply skips persistence).
    let out = lsvconv(&[
        "serve",
        "--no-store",
        "--smoke",
        "--max-batch",
        "1",
        "--requests",
        "40",
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("arrival,policy,engine,offered_rps"),
        "stdout: {stdout}"
    );
    assert!(
        stdout.contains("poisson,adaptive1,BDC,"),
        "stdout: {stdout}"
    );
    assert!(stdout.contains("best @ poisson"), "stdout: {stdout}");
}

#[test]
fn serve_rejects_trace_without_a_path() {
    let out = lsvconv(&["serve", "--trace", "--smoke"]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--trace requires a path"), "stderr: {err}");
}

#[test]
fn serve_rejects_a_value_on_metrics() {
    let out = lsvconv(&["serve", "--metrics", "yes", "--smoke"]);
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--metrics takes no value"), "stderr: {err}");
}

#[test]
fn serve_trace_writes_reconciled_schema_valid_artifacts() {
    let dir = std::env::temp_dir().join(format!("lsv-trace-test-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let out = lsvconv(&[
        "serve",
        "--no-store",
        "--smoke",
        "--max-batch",
        "2",
        "--requests",
        "40",
        "--metrics",
        "--trace",
        dir.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("trace reconciliation: exact"),
        "stdout: {stdout}"
    );
    assert!(stdout.contains("metrics:"), "stdout: {stdout}");
    assert!(stdout.contains("queue.requests"), "stdout: {stdout}");

    // Every artifact landed and revalidates from disk.
    let trace = std::fs::read_to_string(dir.join("serving_trace.json")).expect("trace written");
    lsv_obs::validate_serving_trace_json(&trace).expect("schema-valid trace");
    let metrics = std::fs::read_to_string(dir.join("metrics.json")).expect("metrics written");
    lsv_obs::validate_metrics_json(&metrics).expect("schema-valid metrics");
    let perfetto =
        std::fs::read_to_string(dir.join("serving_trace.perfetto.json")).expect("perfetto written");
    lsv_obs::parse_json(&perfetto).expect("perfetto is valid JSON");
    let ts = std::fs::read_to_string(dir.join("serving_timeseries.csv")).expect("csv written");
    assert!(
        ts.starts_with("arrival,policy,engine,utilization,sample,t_ms,"),
        "csv header: {}",
        ts.lines().next().unwrap_or("")
    );
    let _ = std::fs::remove_dir_all(&dir);
}
