//! Latency percentiles and per-load-point summaries.

use crate::queue::SimOutcome;

/// Nearest-rank percentile of an ascending-sorted sample: the smallest
/// element with at least `pct`% of the sample at or below it. Matches the
/// exact quantile definition the property tests check against.
///
/// # Panics
/// On an empty sample or a percentile outside `(0, 100]`.
pub fn percentile(sorted: &[f64], pct: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of an empty sample");
    assert!((0.0..=100.0).contains(&pct) && pct > 0.0, "pct in (0,100]");
    let rank = (pct / 100.0 * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// Summary of one (policy, engine, load) simulation.
#[derive(Debug, Clone, Copy)]
pub struct LoadStats {
    /// Requests served.
    pub completed: usize,
    /// Batches handed to the chip.
    pub dispatches: usize,
    /// Mean batch size over dispatches.
    pub mean_batch: f64,
    /// Median end-to-end latency (ms).
    pub p50_ms: f64,
    /// 95th-percentile latency (ms).
    pub p95_ms: f64,
    /// 99th-percentile latency (ms).
    pub p99_ms: f64,
    /// Mean end-to-end latency (ms).
    pub mean_ms: f64,
    /// Served requests per second over the makespan (first arrival to last
    /// completion).
    pub throughput_rps: f64,
    /// Fraction of requests whose latency met the SLO.
    pub slo_attainment: f64,
}

/// Summarize a simulation outcome against an SLO (ms).
pub fn summarize(outcome: &SimOutcome, slo_ms: f64) -> LoadStats {
    let n = outcome.records.len();
    assert!(n > 0, "summary of an empty run");
    let mut lat: Vec<f64> = outcome.records.iter().map(|r| r.latency_ms()).collect();
    lat.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mean_ms = lat.iter().sum::<f64>() / n as f64;
    let first_arrival = outcome
        .records
        .iter()
        .map(|r| r.arrival_ms)
        .fold(f64::INFINITY, f64::min);
    let last_done = outcome
        .records
        .iter()
        .map(|r| r.done_ms)
        .fold(0.0f64, f64::max);
    let makespan_s = ((last_done - first_arrival) / 1e3).max(1e-9);
    let met = lat.iter().filter(|&&l| l <= slo_ms).count();
    let dispatches = outcome.dispatches.len();
    let mean_batch = if dispatches == 0 {
        0.0
    } else {
        outcome.dispatches.iter().map(|d| d.batch).sum::<usize>() as f64 / dispatches as f64
    };
    LoadStats {
        completed: n,
        dispatches,
        mean_batch,
        p50_ms: percentile(&lat, 50.0),
        p95_ms: percentile(&lat, 95.0),
        p99_ms: percentile(&lat, 99.0),
        mean_ms,
        throughput_rps: n as f64 / makespan_s,
        slo_attainment: met as f64 / n as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_on_a_known_sample() {
        let s = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0];
        assert_eq!(percentile(&s, 50.0), 5.0);
        assert_eq!(percentile(&s, 95.0), 10.0);
        assert_eq!(percentile(&s, 99.0), 10.0);
        assert_eq!(percentile(&s, 100.0), 10.0);
        assert_eq!(percentile(&s, 10.0), 1.0);
        assert_eq!(percentile(&s, 10.1), 2.0);
    }

    #[test]
    fn single_element_sample() {
        assert_eq!(percentile(&[7.5], 50.0), 7.5);
        assert_eq!(percentile(&[7.5], 99.0), 7.5);
    }
}
