//! Engine latency tables: whole-model service time as a function of batch
//! size, for every serving engine.
//!
//! A dispatch of `k` queued requests runs the whole network at minibatch
//! `k`, so the queue simulator needs `latency(engine, k)` for every
//! `k <= max_batch`. Each cell comes from the [`ModelRunner`] (direct
//! algorithms, analytically configured or empirically tuned) or the vednn
//! baseline — always through the layer store. The representative-core model
//! keys slices on `min(images_per_core, 2)` simulated images, so the whole
//! `1..=max_batch` column costs only a couple of distinct simulations per
//! (layer, direction, kernel).

use lsv_arch::ArchParams;
use lsv_conv::{Algorithm, ExecutionMode, LayerSpec, ModelRunner, Pass, TunePolicy};
use lsv_models::{resnet_layers, ResNetModel};
use lsv_vednn::bench_layer_vednn;

/// A model-serving engine: which kernels execute every layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeEngine {
    /// Per-(layer, direction) best direct algorithm, empirically tuned
    /// ([`TunePolicy::Empirical`]).
    Tuned,
    /// One direct algorithm everywhere, analytic configuration.
    Fixed(Algorithm),
    /// The vednn-style baseline library.
    Vednn,
}

impl ServeEngine {
    /// Name used in CSV/JSON artifacts and `--engines` flags.
    pub fn name(&self) -> &'static str {
        match self {
            ServeEngine::Tuned => "tuned",
            ServeEngine::Fixed(a) => a.short_name(),
            ServeEngine::Vednn => "vednn",
        }
    }

    /// Parse an `--engines` item (case-insensitive).
    pub fn parse(s: &str) -> Option<ServeEngine> {
        match s.to_ascii_uppercase().as_str() {
            "TUNED" => Some(ServeEngine::Tuned),
            "DC" => Some(ServeEngine::Fixed(Algorithm::Dc)),
            "BDC" => Some(ServeEngine::Fixed(Algorithm::Bdc)),
            "MBDC" => Some(ServeEngine::Fixed(Algorithm::Mbdc)),
            "VEDNN" => Some(ServeEngine::Vednn),
            _ => None,
        }
    }
}

/// A [`ResNetModel`]'s layers as runner specs at one minibatch.
pub fn resnet_specs(model: ResNetModel, minibatch: usize) -> Vec<LayerSpec> {
    let counts = model.layer_counts();
    resnet_layers(minibatch)
        .into_iter()
        .zip(counts)
        .map(|(p, c)| LayerSpec::new(p, c))
        .collect()
}

/// Whole-model service time (ms) per engine per batch size.
#[derive(Debug, Clone)]
pub struct LatencyTable {
    /// The engines, in column order.
    pub engines: Vec<ServeEngine>,
    /// Largest batch size tabulated.
    pub max_batch: usize,
    /// `ms[engine][batch - 1]`: service time of a batch.
    pub ms: Vec<Vec<f64>>,
}

impl LatencyTable {
    /// Build the table for `model`/`pass` over batch sizes `1..=max_batch`.
    pub fn build(
        arch: &ArchParams,
        model: ResNetModel,
        pass: Pass,
        engines: &[ServeEngine],
        max_batch: usize,
        mode: ExecutionMode,
    ) -> Self {
        assert!(max_batch >= 1, "max_batch must be at least 1");
        let mut ms = vec![Vec::with_capacity(max_batch); engines.len()];
        for b in 1..=max_batch {
            let specs = resnet_specs(model, b);
            for (ei, &e) in engines.iter().enumerate() {
                ms[ei].push(model_time_ms(arch, &specs, pass, e, mode));
            }
        }
        Self {
            engines: engines.to_vec(),
            max_batch,
            ms,
        }
    }

    /// Service time of one batch on one engine.
    pub fn latency_ms(&self, engine: usize, batch: usize) -> f64 {
        assert!(
            (1..=self.max_batch).contains(&batch),
            "batch {batch} outside 1..={}",
            self.max_batch
        );
        self.ms[engine][batch - 1]
    }

    /// The fastest engine for one batch size (ties keep the first listed).
    pub fn best(&self, batch: usize) -> (usize, f64) {
        (0..self.engines.len())
            .map(|ei| (ei, self.latency_ms(ei, batch)))
            .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .expect("table has at least one engine")
    }
}

/// One pass of the whole model on one engine at the specs' minibatch.
fn model_time_ms(
    arch: &ArchParams,
    specs: &[LayerSpec],
    pass: Pass,
    engine: ServeEngine,
    mode: ExecutionMode,
) -> f64 {
    match engine {
        ServeEngine::Tuned => ModelRunner::new(arch, specs.to_vec(), pass)
            .with_tune(TunePolicy::Empirical)
            .with_mode(mode)
            .plan()
            .total_time_ms(),
        ServeEngine::Fixed(alg) => ModelRunner::new(arch, specs.to_vec(), pass)
            .with_mode(mode)
            .plan_fixed(alg)
            .total_time_ms(),
        ServeEngine::Vednn => specs
            .iter()
            .map(|s| {
                pass.directions()
                    .iter()
                    .map(|&d| bench_layer_vednn(arch, &s.problem, d, mode).time_ms)
                    .sum::<f64>()
                    * s.count as f64
            })
            .sum(),
    }
}
