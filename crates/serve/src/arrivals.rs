//! Deterministic-seeded request arrival processes.
//!
//! The harness runs on a *simulated* clock: an arrival process is just a
//! nondecreasing vector of timestamps (milliseconds from t=0), generated
//! from a seed with no dependence on wall time, thread scheduling or HashMap
//! iteration order — the property the determinism tests pin.

/// SplitMix64: the tiny, well-distributed PRNG used for arrivals. Kept
/// local (rather than the dev-only `rand` shim) so determinism is a
/// property of this crate's release code path.
#[derive(Debug, Clone)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// Seeded generator; equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        Self(seed)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)` with 53 random bits.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// How requests arrive at the queue.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalProcess {
    /// Memoryless arrivals: exponential inter-arrival gaps at `rate_rps`.
    Poisson {
        /// Mean offered load in requests per second.
        rate_rps: f64,
    },
    /// On/off bursts with the same *mean* rate: arrivals are Poisson at
    /// `burst x rate_rps` during the ON fraction (`1/burst`) of each
    /// `period_ms` window and silent otherwise. `burst` is the
    /// peak-to-mean ratio.
    Bursty {
        /// Mean offered load in requests per second.
        rate_rps: f64,
        /// Peak-to-mean ratio (> 1).
        burst: f64,
        /// Length of one on/off window in milliseconds.
        period_ms: f64,
    },
}

impl ArrivalProcess {
    /// Short name used in CSV/JSON artifacts.
    pub fn name(&self) -> &'static str {
        match self {
            ArrivalProcess::Poisson { .. } => "poisson",
            ArrivalProcess::Bursty { .. } => "bursty",
        }
    }

    /// The process's mean rate in requests per second.
    pub fn rate_rps(&self) -> f64 {
        match *self {
            ArrivalProcess::Poisson { rate_rps } => rate_rps,
            ArrivalProcess::Bursty { rate_rps, .. } => rate_rps,
        }
    }

    /// Generate `n` arrival timestamps (milliseconds, nondecreasing).
    ///
    /// # Panics
    /// On a non-positive rate, a burst ratio <= 1, or a non-positive
    /// period.
    pub fn generate(&self, seed: u64, n: usize) -> Vec<f64> {
        let mut rng = SplitMix64::new(seed);
        // Exponential gap at `rate` (per ms): -ln(1-u)/rate.
        let gap = |rng: &mut SplitMix64, rate_per_ms: f64| {
            assert!(rate_per_ms > 0.0, "arrival rate must be positive");
            -(1.0 - rng.unit_f64()).ln() / rate_per_ms
        };
        match *self {
            ArrivalProcess::Poisson { rate_rps } => {
                let per_ms = rate_rps / 1e3;
                let mut t = 0.0;
                (0..n)
                    .map(|_| {
                        t += gap(&mut rng, per_ms);
                        t
                    })
                    .collect()
            }
            ArrivalProcess::Bursty {
                rate_rps,
                burst,
                period_ms,
            } => {
                assert!(burst > 1.0, "burst must exceed 1 (peak-to-mean ratio)");
                assert!(period_ms > 0.0, "period must be positive");
                // Homogeneous Poisson on the concatenated ON windows
                // ("active time"), then mapped back to real time by
                // inserting the OFF gap after each ON window.
                let on_ms = period_ms / burst;
                let peak_per_ms = rate_rps * burst / 1e3;
                let mut active = 0.0;
                (0..n)
                    .map(|_| {
                        active += gap(&mut rng, peak_per_ms);
                        let window = (active / on_ms).floor();
                        window * period_ms + (active - window * on_ms)
                    })
                    .collect()
            }
        }
    }
}

/// An arrival process family with the rate left open — the load sweep
/// instantiates one [`ArrivalProcess`] per offered-load point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalShape {
    /// Memoryless arrivals.
    Poisson,
    /// On/off bursts with a peak-to-mean ratio and window length.
    Bursty {
        /// Peak-to-mean ratio (> 1).
        burst: f64,
        /// Length of one on/off window in milliseconds.
        period_ms: f64,
    },
}

impl ArrivalShape {
    /// Short name used in CSV/JSON artifacts.
    pub fn name(&self) -> &'static str {
        match self {
            ArrivalShape::Poisson => "poisson",
            ArrivalShape::Bursty { .. } => "bursty",
        }
    }

    /// Instantiate at a mean rate.
    pub fn at_rate(&self, rate_rps: f64) -> ArrivalProcess {
        match *self {
            ArrivalShape::Poisson => ArrivalProcess::Poisson { rate_rps },
            ArrivalShape::Bursty { burst, period_ms } => ArrivalProcess::Bursty {
                rate_rps,
                burst,
                period_ms,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_mean_gap_matches_rate() {
        let a = ArrivalProcess::Poisson { rate_rps: 200.0 }.generate(7, 20_000);
        let mean_gap = a.last().unwrap() / a.len() as f64;
        assert!((mean_gap - 5.0).abs() < 0.2, "mean gap {mean_gap} != 5ms");
    }

    #[test]
    fn arrivals_are_nondecreasing() {
        for p in [
            ArrivalProcess::Poisson { rate_rps: 50.0 },
            ArrivalProcess::Bursty {
                rate_rps: 50.0,
                burst: 5.0,
                period_ms: 100.0,
            },
        ] {
            let a = p.generate(3, 5_000);
            assert!(a.windows(2).all(|w| w[0] <= w[1]), "{} sorted", p.name());
        }
    }

    #[test]
    fn bursty_preserves_mean_rate_but_clusters() {
        let p = ArrivalProcess::Bursty {
            rate_rps: 100.0,
            burst: 5.0,
            period_ms: 200.0,
        };
        let a = p.generate(11, 20_000);
        let mean_gap = a.last().unwrap() / a.len() as f64;
        assert!((mean_gap - 10.0).abs() < 0.5, "mean gap {mean_gap} != 10ms");
        // Clustering: the median gap is far below the mean gap.
        let mut gaps: Vec<f64> = a.windows(2).map(|w| w[1] - w[0]).collect();
        gaps.sort_by(|x, y| x.partial_cmp(y).unwrap());
        let median = gaps[gaps.len() / 2];
        assert!(
            median < 0.5 * mean_gap,
            "bursty median gap {median} not clustered vs mean {mean_gap}"
        );
    }
}
