//! The offered-load sweep: (arrival shape x load x policy x engine) grid,
//! one queue simulation per cell, with CSV/JSON emitters for the
//! `serving.csv` / `BENCH_serving.json` artifacts.

use crate::arrivals::ArrivalShape;
use crate::latency::LatencyTable;
use crate::queue::{simulate, BatchPolicy, SimOutcome};
use crate::stats::{summarize, LoadStats};
use crate::timeseries::{
    sample_outcome, summarize_cell, timeseries_csv_header, timeseries_csv_row, CellSummary,
    SAMPLES_PER_CELL,
};

/// Everything one sweep varies and holds fixed.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Arrival process families to sweep.
    pub shapes: Vec<ArrivalShape>,
    /// Batching policies to sweep.
    pub policies: Vec<BatchPolicy>,
    /// Offered load as a fraction of the reference capacity (see
    /// [`reference_capacity_rps`]); one sweep point each.
    pub utilizations: Vec<f64>,
    /// Requests per sweep point.
    pub requests: usize,
    /// Base seed; each (shape, load) point derives its own arrival stream
    /// from it, shared across policies and engines for a fair comparison.
    pub seed: u64,
    /// The latency SLO in milliseconds.
    pub slo_ms: f64,
}

/// One sweep cell: a (arrival, load, policy, engine) simulation summary.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// Arrival shape name.
    pub arrival: &'static str,
    /// Policy name (parameters included).
    pub policy: String,
    /// Engine name.
    pub engine: &'static str,
    /// Offered load (requests per second).
    pub offered_rps: f64,
    /// Offered load as a fraction of the reference capacity.
    pub utilization: f64,
    /// The simulation summary.
    pub stats: LoadStats,
}

/// The winning (policy, engine) of one (arrival, load) point.
#[derive(Debug, Clone)]
pub struct BestPick {
    /// Arrival shape name.
    pub arrival: &'static str,
    /// Offered load (requests per second).
    pub offered_rps: f64,
    /// Winning policy name.
    pub policy: String,
    /// Winning engine name.
    pub engine: &'static str,
}

/// The sweep's load scale: the throughput of the *fastest* engine running
/// back-to-back full batches — `max_batch / min_e latency(e, max_batch)`.
/// Utilization 1.0 offers exactly this rate.
pub fn reference_capacity_rps(table: &LatencyTable) -> f64 {
    let (_, ms) = table.best(table.max_batch);
    table.max_batch as f64 / (ms / 1e3)
}

/// Derive the arrival seed of one (shape, load) point from the base seed.
/// A pure function of indices: re-running the sweep replays identical
/// request streams.
fn point_seed(base: u64, shape_idx: usize, load_idx: usize) -> u64 {
    base.wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add((shape_idx as u64) << 32 | load_idx as u64)
}

/// Re-run one sweep cell: the same derived arrival seed and service-time
/// lookups as the matching [`run_sweep`] row, returned as the raw
/// simulation outcome (for traces and time series) together with the cell's
/// offered rate. Indices refer to `cfg.shapes` / `cfg.utilizations` /
/// `table.engines`.
pub fn cell_outcome(
    cfg: &SweepConfig,
    table: &LatencyTable,
    shape_idx: usize,
    load_idx: usize,
    policy: BatchPolicy,
    engine_idx: usize,
) -> (f64, SimOutcome) {
    let capacity = reference_capacity_rps(table);
    let offered = cfg.utilizations[load_idx] * capacity;
    let arrivals = cfg.shapes[shape_idx]
        .at_rate(offered)
        .generate(point_seed(cfg.seed, shape_idx, load_idx), cfg.requests);
    let service = |k: usize| (engine_idx, table.latency_ms(engine_idx, k));
    (offered, simulate(&arrivals, policy, &service))
}

/// One cell of the time-series sweep: identity plus its sampled summary.
#[derive(Debug, Clone)]
pub struct TimeseriesCell {
    /// Arrival shape name.
    pub arrival: &'static str,
    /// Policy name (parameters included).
    pub policy: String,
    /// Offered load as a fraction of the reference capacity.
    pub utilization: f64,
    /// Summary of the sampled series.
    pub summary: CellSummary,
}

/// The `timeseries` section of `BENCH_serving.json`: one engine's cells.
#[derive(Debug, Clone)]
pub struct TimeseriesSection {
    /// Engine the series were sampled on.
    pub engine: &'static str,
    /// Samples per cell.
    pub samples_per_cell: usize,
    /// Cells in (shape, load, policy) order.
    pub cells: Vec<TimeseriesCell>,
}

/// Sample every (shape, load, policy) cell of one engine and emit the
/// `serving_timeseries.csv` document plus the JSON summary section. Cell
/// order matches [`run_sweep`] with the engine dimension fixed.
pub fn run_timeseries(
    cfg: &SweepConfig,
    table: &LatencyTable,
    engine_idx: usize,
) -> (TimeseriesSection, String) {
    let engine = table.engines[engine_idx].name();
    let mut csv = String::from(timeseries_csv_header());
    csv.push('\n');
    let mut cells = Vec::new();
    for (si, shape) in cfg.shapes.iter().enumerate() {
        for (li, &util) in cfg.utilizations.iter().enumerate() {
            for policy in &cfg.policies {
                let (_, outcome) = cell_outcome(cfg, table, si, li, *policy, engine_idx);
                let points = sample_outcome(&outcome, cfg.slo_ms, SAMPLES_PER_CELL);
                let pname = policy.name();
                for (i, p) in points.iter().enumerate() {
                    csv.push_str(&timeseries_csv_row(
                        shape.name(),
                        &pname,
                        engine,
                        util,
                        i,
                        p,
                    ));
                    csv.push('\n');
                }
                cells.push(TimeseriesCell {
                    arrival: shape.name(),
                    policy: pname,
                    utilization: util,
                    summary: summarize_cell(&points),
                });
            }
        }
    }
    (
        TimeseriesSection {
            engine,
            samples_per_cell: SAMPLES_PER_CELL,
            cells,
        },
        csv,
    )
}

/// Run the full grid. Rows come out in (shape, load, policy, engine) order.
pub fn run_sweep(cfg: &SweepConfig, table: &LatencyTable) -> Vec<SweepRow> {
    let capacity = reference_capacity_rps(table);
    let mut rows = Vec::new();
    for (si, shape) in cfg.shapes.iter().enumerate() {
        for (li, &util) in cfg.utilizations.iter().enumerate() {
            let offered = util * capacity;
            let arrivals = shape
                .at_rate(offered)
                .generate(point_seed(cfg.seed, si, li), cfg.requests);
            for policy in &cfg.policies {
                for (ei, engine) in table.engines.iter().enumerate() {
                    let service = |k: usize| (ei, table.latency_ms(ei, k));
                    let outcome = simulate(&arrivals, *policy, &service);
                    rows.push(SweepRow {
                        arrival: shape.name(),
                        policy: policy.name(),
                        engine: engine.name(),
                        offered_rps: offered,
                        utilization: util,
                        stats: summarize(&outcome, cfg.slo_ms),
                    });
                }
            }
        }
    }
    rows
}

/// Pick the best (policy, engine) per (arrival, load): highest SLO
/// attainment, then highest throughput, then lowest p99; final tie-break on
/// names for determinism.
pub fn best_by_load(rows: &[SweepRow]) -> Vec<BestPick> {
    let mut picks: Vec<BestPick> = Vec::new();
    let mut seen: Vec<(&'static str, f64)> = Vec::new();
    for r in rows {
        if seen.contains(&(r.arrival, r.offered_rps)) {
            continue;
        }
        seen.push((r.arrival, r.offered_rps));
        let group = rows
            .iter()
            .filter(|x| x.arrival == r.arrival && x.offered_rps == r.offered_rps);
        let best = group
            .min_by(|a, b| {
                let ka = (
                    -a.stats.slo_attainment,
                    -a.stats.throughput_rps,
                    a.stats.p99_ms,
                );
                let kb = (
                    -b.stats.slo_attainment,
                    -b.stats.throughput_rps,
                    b.stats.p99_ms,
                );
                ka.partial_cmp(&kb)
                    .unwrap()
                    .then_with(|| (&a.policy, a.engine).cmp(&(&b.policy, b.engine)))
            })
            .expect("group is nonempty");
        picks.push(BestPick {
            arrival: best.arrival,
            offered_rps: best.offered_rps,
            policy: best.policy.clone(),
            engine: best.engine,
        });
    }
    picks
}

/// The `serving.csv` header.
pub fn csv_header() -> &'static str {
    "arrival,policy,engine,offered_rps,utilization,requests,completed,dispatches,\
     mean_batch,p50_ms,p95_ms,p99_ms,mean_ms,throughput_rps,slo_ms,slo_attainment"
}

/// One `serving.csv` line.
pub fn csv_row(r: &SweepRow, requests: usize, slo_ms: f64) -> String {
    let s = &r.stats;
    format!(
        "{},{},{},{:.2},{:.2},{},{},{},{:.2},{:.3},{:.3},{:.3},{:.3},{:.2},{:.1},{:.4}",
        r.arrival,
        r.policy,
        r.engine,
        r.offered_rps,
        r.utilization,
        requests,
        s.completed,
        s.dispatches,
        s.mean_batch,
        s.p50_ms,
        s.p95_ms,
        s.p99_ms,
        s.mean_ms,
        s.throughput_rps,
        slo_ms,
        s.slo_attainment,
    )
}

/// Fixed facts the JSON artifact records next to the rows.
#[derive(Debug, Clone)]
pub struct SweepMeta {
    /// Architecture name (e.g. `sx-aurora`).
    pub arch: String,
    /// Model name (e.g. `resnet-50`).
    pub model: String,
    /// Pass name (`infer` / `train`).
    pub pass: String,
    /// Simulation mode name.
    pub mode: String,
    /// Largest batch size tabulated.
    pub max_batch: usize,
}

/// Build the `BENCH_serving.json` document (validated by
/// `lsv_obs::validate_serving_json` against `serving.schema.json`).
pub fn serving_json(
    meta: &SweepMeta,
    cfg: &SweepConfig,
    table: &LatencyTable,
    rows: &[SweepRow],
    best: &[BestPick],
    ts: &TimeseriesSection,
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"version\": 1,\n");
    out.push_str("  \"tool\": \"bench-serving\",\n");
    out.push_str(&format!("  \"arch\": \"{}\",\n", meta.arch));
    out.push_str(&format!("  \"model\": \"{}\",\n", meta.model));
    out.push_str(&format!("  \"pass\": \"{}\",\n", meta.pass));
    out.push_str(&format!("  \"mode\": \"{}\",\n", meta.mode));
    out.push_str(&format!("  \"seed\": {},\n", cfg.seed));
    out.push_str(&format!("  \"requests\": {},\n", cfg.requests));
    out.push_str(&format!("  \"max_batch\": {},\n", meta.max_batch));
    out.push_str(&format!("  \"slo_ms\": {:.3},\n", cfg.slo_ms));
    out.push_str(&format!(
        "  \"reference_capacity_rps\": {:.2},\n",
        reference_capacity_rps(table)
    ));
    let quoted: Vec<String> = table
        .engines
        .iter()
        .map(|e| format!("\"{}\"", e.name()))
        .collect();
    out.push_str(&format!("  \"engines\": [{}],\n", quoted.join(", ")));
    let quoted: Vec<String> = cfg
        .policies
        .iter()
        .map(|p| format!("\"{}\"", p.name()))
        .collect();
    out.push_str(&format!("  \"policies\": [{}],\n", quoted.join(", ")));
    let utils: Vec<String> = cfg.utilizations.iter().map(|u| format!("{u:.2}")).collect();
    out.push_str(&format!("  \"utilizations\": [{}],\n", utils.join(", ")));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let s = &r.stats;
        out.push_str(&format!(
            "    {{\"arrival\": \"{}\", \"policy\": \"{}\", \"engine\": \"{}\", \
             \"offered_rps\": {:.2}, \"utilization\": {:.2}, \"completed\": {}, \
             \"dispatches\": {}, \"mean_batch\": {:.2}, \"p50_ms\": {:.3}, \
             \"p95_ms\": {:.3}, \"p99_ms\": {:.3}, \"mean_ms\": {:.3}, \
             \"throughput_rps\": {:.2}, \"slo_attainment\": {:.4}}}{}\n",
            r.arrival,
            r.policy,
            r.engine,
            r.offered_rps,
            r.utilization,
            s.completed,
            s.dispatches,
            s.mean_batch,
            s.p50_ms,
            s.p95_ms,
            s.p99_ms,
            s.mean_ms,
            s.throughput_rps,
            s.slo_attainment,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"best_by_load\": [\n");
    for (i, b) in best.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"arrival\": \"{}\", \"offered_rps\": {:.2}, \"policy\": \"{}\", \
             \"engine\": \"{}\"}}{}\n",
            b.arrival,
            b.offered_rps,
            b.policy,
            b.engine,
            if i + 1 == best.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"timeseries\": {\n");
    out.push_str(&format!("    \"engine\": \"{}\",\n", ts.engine));
    out.push_str(&format!(
        "    \"samples_per_cell\": {},\n",
        ts.samples_per_cell
    ));
    out.push_str("    \"cells\": [\n");
    for (i, c) in ts.cells.iter().enumerate() {
        let s = &c.summary;
        let p99 = if s.final_p99_ms.is_finite() {
            format!("{:.3}", s.final_p99_ms)
        } else {
            // An undefined rolling percentile stays undefined in the
            // artifact — the schema admits null here.
            "null".to_string()
        };
        out.push_str(&format!(
            "      {{\"arrival\": \"{}\", \"policy\": \"{}\", \"utilization\": {:.2}, \
             \"peak_queue_depth\": {}, \"mean_queue_depth\": {:.3}, \
             \"mean_utilization\": {:.4}, \"max_slo_burn\": {:.4}, \
             \"final_p99_ms\": {}}}{}\n",
            c.arrival,
            c.policy,
            c.utilization,
            s.peak_queue_depth,
            s.mean_queue_depth,
            s.mean_utilization,
            s.max_slo_burn,
            p99,
            if i + 1 == ts.cells.len() { "" } else { "," }
        ));
    }
    out.push_str("    ]\n  }\n}\n");
    out
}
