//! Request-lifecycle traces of one serving cell.
//!
//! One queue simulation ([`SimOutcome`]) becomes two artifacts:
//!
//! * **`serving_trace.json`** — the span tree in analyzable form: every
//!   request's arrival → queue wait → batch ride → completion, every batch
//!   dispatch (with its [`DispatchReason`]), and the per-batch-size
//!   [`ModelPlan`] breakdowns the batch spans link to — per-(layer,
//!   direction) time plus store-hit/simulated provenance. Validated against
//!   `serving_trace.schema.json`.
//! * **`serving_trace.perfetto.json`** — the same run as a multi-track
//!   Chrome-trace timeline (<https://ui.perfetto.dev>): a server track whose
//!   batch spans nest per-layer sub-spans, one lane per concurrent request,
//!   and queue-depth / batch-occupancy counter tracks.
//!
//! Both carry a **reconciliation** record, the conservation gate of the
//! trace: the wait/ride span durations must sum (bit-for-bit, same order)
//! to the [`RequestRecord`]-derived sums, and when per-layer plans exist,
//! the layer breakdown summed over the dispatch log must be bit-identical
//! to the queue simulator's service-time total — the serving plane and the
//! simulator plane agree on where every millisecond went.
//!
//! Timebase: one trace microsecond per simulated millisecond — raw `f64`
//! passthrough, no scaling, so Perfetto durations read as milliseconds.

use crate::queue::{RequestRecord, SimOutcome};
use lsv_conv::ModelPlan;
use lsv_obs::{escape_json, json_f64, TimelineBuilder};

/// Fixed facts about the traced cell, recorded in both artifacts.
#[derive(Debug, Clone)]
pub struct TraceMeta {
    /// Architecture name (e.g. `sx-aurora`).
    pub arch: String,
    /// Model name (e.g. `resnet-50`).
    pub model: String,
    /// Pass name (`infer` / `train`).
    pub pass: String,
    /// Engine name that served every batch of this cell.
    pub engine: String,
    /// Arrival shape name (`poisson` / `bursty`).
    pub arrival: &'static str,
    /// Policy name, parameters included.
    pub policy: String,
    /// Offered load as a fraction of the reference capacity.
    pub utilization: f64,
    /// Offered load in requests per second.
    pub offered_rps: f64,
    /// Arrival-stream seed of this cell.
    pub seed: u64,
    /// The latency SLO in milliseconds.
    pub slo_ms: f64,
    /// The policy's batch-size cap.
    pub max_batch: usize,
}

/// The conservation record: independently recomputed span-duration sums and
/// whether they reconcile bit-for-bit with the queue simulator's totals.
#[derive(Debug, Clone, Copy)]
pub struct Reconciliation {
    /// Requests in the trace.
    pub requests: usize,
    /// Batches in the trace.
    pub batches: usize,
    /// Σ (dispatch − arrival) over requests, id order.
    pub wait_sum_ms: f64,
    /// Σ (done − dispatch) over requests, id order.
    pub ride_sum_ms: f64,
    /// Σ service time over dispatches, time order.
    pub service_sum_ms: f64,
    /// Σ plan(batch) layer-breakdown total over dispatches, time order.
    /// `None` when the engine has no per-layer plan (vednn baseline).
    pub layer_sum_ms: Option<f64>,
    /// Every bit-identity below held: each dispatch's layer breakdown totals
    /// exactly its service time (`layer_sum_ms == service_sum_ms` summed in
    /// the same order), and each request's ride span exactly spans its
    /// batch (done == dispatch + service with no drift).
    pub exact: bool,
}

impl Reconciliation {
    /// Recompute every sum from the outcome and check the bit-identities.
    ///
    /// `plans` holds the per-layer breakdown for each distinct batch size
    /// (see [`collect_plans`]); empty means the engine has none.
    pub fn compute(outcome: &SimOutcome, plans: &[(usize, ModelPlan)]) -> Reconciliation {
        let wait_sum_ms: f64 = outcome
            .records
            .iter()
            .map(|r| r.dispatch_ms - r.arrival_ms)
            .sum();
        let ride_sum_ms: f64 = outcome
            .records
            .iter()
            .map(|r| r.done_ms - r.dispatch_ms)
            .sum();
        let service_sum_ms: f64 = outcome.dispatches.iter().map(|d| d.service_ms).sum();
        let plan_for = |batch: usize| plans.iter().find(|(b, _)| *b == batch).map(|(_, p)| p);
        let layer_sum_ms: Option<f64> = if plans.is_empty() {
            None
        } else {
            Some(
                outcome
                    .dispatches
                    .iter()
                    .map(|d| {
                        plan_for(d.batch)
                            .expect("a plan exists for every dispatched batch size")
                            .total_time_ms()
                    })
                    .sum(),
            )
        };
        // Bit-identity 1: each dispatch's per-layer breakdown tiles its
        // service span exactly — the simulator's latency-table cell *is*
        // the plan total, so any drift means the trace lies about where
        // time went.
        let layers_exact = plans.is_empty()
            || outcome.dispatches.iter().all(|d| {
                let plan_ms = plan_for(d.batch)
                    .map(|p| p.total_time_ms())
                    .unwrap_or(f64::NAN);
                plan_ms.to_bits() == d.service_ms.to_bits()
            });
        // Bit-identity 2: every request completes exactly when its batch
        // does (`done == dispatch + service`, the simulator's own update).
        let mut by_time: Vec<&RequestRecord> = outcome.records.iter().collect();
        by_time.sort_by(|a, b| a.dispatch_ms.partial_cmp(&b.dispatch_ms).unwrap());
        let mut di = 0usize;
        let rides_exact = by_time.iter().all(|r| {
            while outcome.dispatches[di].at_ms.to_bits() != r.dispatch_ms.to_bits() {
                di += 1;
            }
            let d = &outcome.dispatches[di];
            r.done_ms.to_bits() == (d.at_ms + d.service_ms).to_bits() && r.batch == d.batch
        });
        let sums_exact = layer_sum_ms
            .map(|l| l.to_bits() == service_sum_ms.to_bits())
            .unwrap_or(true);
        Reconciliation {
            requests: outcome.records.len(),
            batches: outcome.dispatches.len(),
            wait_sum_ms,
            ride_sum_ms,
            service_sum_ms,
            layer_sum_ms,
            exact: layers_exact && rides_exact && sums_exact,
        }
    }
}

/// Build one [`ModelPlan`] per *distinct dispatched batch size* (ascending).
/// `plan_for` maps a batch size to its plan, or `None` for engines without
/// a per-layer breakdown (the vednn baseline) — in which case the result is
/// empty.
pub fn collect_plans(
    outcome: &SimOutcome,
    plan_for: &dyn Fn(usize) -> Option<ModelPlan>,
) -> Vec<(usize, ModelPlan)> {
    let mut sizes: Vec<usize> = outcome.dispatches.iter().map(|d| d.batch).collect();
    sizes.sort_unstable();
    sizes.dedup();
    sizes
        .into_iter()
        .filter_map(|b| plan_for(b).map(|p| (b, p)))
        .collect()
}

/// Render the analyzable `serving_trace.json` document (schema:
/// `serving_trace.schema.json`). Deterministic: a fixed outcome renders
/// byte-identically.
pub fn serving_trace_json(
    meta: &TraceMeta,
    outcome: &SimOutcome,
    plans: &[(usize, ModelPlan)],
    recon: &Reconciliation,
) -> String {
    let mut out = String::from("{\n");
    out.push_str("  \"version\": 1,\n");
    out.push_str("  \"tool\": \"lsvconv serve\",\n");
    out.push_str(&format!(
        "  \"meta\": {{\"arch\": \"{}\", \"model\": \"{}\", \"pass\": \"{}\", \
         \"engine\": \"{}\", \"arrival\": \"{}\", \"policy\": \"{}\", \
         \"utilization\": {}, \"offered_rps\": {}, \"seed\": {}, \
         \"slo_ms\": {}, \"max_batch\": {}}},\n",
        escape_json(&meta.arch),
        escape_json(&meta.model),
        escape_json(&meta.pass),
        escape_json(&meta.engine),
        meta.arrival,
        escape_json(&meta.policy),
        json_f64(meta.utilization),
        json_f64(meta.offered_rps),
        meta.seed,
        json_f64(meta.slo_ms),
        meta.max_batch,
    ));
    out.push_str(&format!(
        "  \"reconciliation\": {{\"requests\": {}, \"batches\": {}, \
         \"wait_sum_ms\": {}, \"ride_sum_ms\": {}, \"service_sum_ms\": {}, \
         \"layer_sum_ms\": {}, \"exact\": {}}},\n",
        recon.requests,
        recon.batches,
        json_f64(recon.wait_sum_ms),
        json_f64(recon.ride_sum_ms),
        json_f64(recon.service_sum_ms),
        recon.layer_sum_ms.map_or("null".to_string(), json_f64),
        recon.exact,
    ));
    out.push_str("  \"requests\": [\n");
    for (i, r) in outcome.records.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"id\": {}, \"arrival_ms\": {}, \"dispatch_ms\": {}, \
             \"done_ms\": {}, \"batch\": {}, \"depth_at_arrival\": {}, \
             \"reason\": \"{}\"}}{}\n",
            r.id,
            json_f64(r.arrival_ms),
            json_f64(r.dispatch_ms),
            json_f64(r.done_ms),
            r.batch,
            r.depth_at_arrival,
            r.reason.name(),
            if i + 1 == outcome.records.len() {
                ""
            } else {
                ","
            },
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"batches\": [\n");
    for (i, d) in outcome.dispatches.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"seq\": {}, \"at_ms\": {}, \"service_ms\": {}, \
             \"batch\": {}, \"reason\": \"{}\"}}{}\n",
            i,
            json_f64(d.at_ms),
            json_f64(d.service_ms),
            d.batch,
            d.reason.name(),
            if i + 1 == outcome.dispatches.len() {
                ""
            } else {
                ","
            },
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"plans\": [\n");
    for (i, (batch, plan)) in plans.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"batch\": {}, \"store_hits\": {}, \"simulated\": {}, \
             \"total_ms\": {}, \"layers\": [\n",
            batch,
            plan.store_hits,
            plan.simulated,
            json_f64(plan.total_time_ms()),
        ));
        for (j, e) in plan.entries.iter().enumerate() {
            out.push_str(&format!(
                "      {{\"layer\": {}, \"direction\": \"{}\", \"algorithm\": \"{}\", \
                 \"count\": {}, \"time_ms\": {}, \"cycles\": {}}}{}\n",
                e.layer,
                e.direction.short_name(),
                e.algorithm.short_name(),
                e.count,
                json_f64(e.time_ms),
                e.cycles,
                if j + 1 == plan.entries.len() { "" } else { "," },
            ));
        }
        out.push_str(&format!(
            "    ]}}{}\n",
            if i + 1 == plans.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Render the Perfetto timeline (`serving_trace.perfetto.json`).
///
/// Track layout (process 0, "lsv serving"):
/// * **tid 0 — server**: one span per batch (`batch <seq> (k=N)`), nested
///   per-(layer, direction) sub-spans tiling the batch's service interval in
///   plan-entry order (span length = `time_ms × count`).
/// * **tid 1+lane — request lanes**: two spans per request — `wait`
///   (arrival → dispatch) and `ride` (dispatch → done) — packed greedily
///   into the lowest lane whose previous request has completed.
/// * **counters**: `queue_depth` (arrivals up, dispatches down; arrivals
///   first at ties) and `batch_occupancy` (batch size while the chip is
///   busy, 0 when it goes idle).
pub fn perfetto_trace_json(
    meta: &TraceMeta,
    outcome: &SimOutcome,
    plans: &[(usize, ModelPlan)],
) -> String {
    let mut tl = TimelineBuilder::new();
    tl.process(0, "lsv serving");
    tl.track(0, 0, "server");

    // Request lanes: greedy reuse — a lane is free once its last occupant
    // is done by the new request's arrival.
    let mut lane_free_at: Vec<f64> = Vec::new();
    let mut lane_of: Vec<usize> = Vec::with_capacity(outcome.records.len());
    for r in &outcome.records {
        let lane = match lane_free_at.iter().position(|&f| f <= r.arrival_ms) {
            Some(l) => l,
            None => {
                lane_free_at.push(0.0);
                lane_free_at.len() - 1
            }
        };
        lane_free_at[lane] = r.done_ms;
        lane_of.push(lane);
    }
    for lane in 0..lane_free_at.len() {
        tl.track(0, 1 + lane as u32, &format!("request lane {lane}"));
    }

    // Server track: batch spans with nested per-layer sub-spans.
    let plan_for = |batch: usize| plans.iter().find(|(b, _)| *b == batch).map(|(_, p)| p);
    for (seq, d) in outcome.dispatches.iter().enumerate() {
        tl.span(
            0,
            0,
            "batch",
            &format!("batch {seq} (k={})", d.batch),
            d.at_ms,
            d.service_ms,
            &[
                ("batch", d.batch.to_string()),
                ("reason", format!("\"{}\"", d.reason.name())),
                ("engine", format!("\"{}\"", escape_json(&meta.engine))),
            ],
        );
        if let Some(plan) = plan_for(d.batch) {
            let mut t = d.at_ms;
            for e in &plan.entries {
                let dur = e.time_ms * e.count as f64;
                tl.span(
                    0,
                    0,
                    "layer",
                    &format!("L{} {} {}", e.layer, e.direction.short_name(), e.algorithm),
                    t,
                    dur,
                    &[
                        ("count", e.count.to_string()),
                        ("cycles", e.cycles.to_string()),
                    ],
                );
                t += dur;
            }
        }
    }

    // Request lanes: wait + ride spans, emitted in id order.
    for (r, &lane) in outcome.records.iter().zip(&lane_of) {
        let tid = 1 + lane as u32;
        let args = [
            ("id", r.id.to_string()),
            ("batch", r.batch.to_string()),
            ("depth_at_arrival", r.depth_at_arrival.to_string()),
            ("reason", format!("\"{}\"", r.reason.name())),
        ];
        tl.span(
            0,
            tid,
            "wait",
            &format!("r{} wait", r.id),
            r.arrival_ms,
            r.dispatch_ms - r.arrival_ms,
            &args,
        );
        tl.span(
            0,
            tid,
            "ride",
            &format!("r{} ride (k={})", r.id, r.batch),
            r.dispatch_ms,
            r.done_ms - r.dispatch_ms,
            &args,
        );
    }

    // Queue-depth counter: +1 per arrival, −k per dispatch; at a shared
    // timestamp the arrival lands first (the request *was* momentarily
    // queued).
    let mut events: Vec<(f64, u8, i64)> = Vec::new();
    for r in &outcome.records {
        events.push((r.arrival_ms, 0, 1));
    }
    for d in &outcome.dispatches {
        events.push((d.at_ms, 1, -(d.batch as i64)));
    }
    events.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
    let mut depth = 0i64;
    for (t, _, delta) in events {
        depth += delta;
        tl.counter(0, "queue_depth", t, depth as f64);
    }

    // Batch-occupancy counter: k while the chip runs a batch, 0 when it
    // goes idle (a back-to-back dispatch at the idle instant wins the tie).
    let mut occ: Vec<(f64, u8, f64)> = Vec::new();
    for d in &outcome.dispatches {
        occ.push((d.at_ms + d.service_ms, 0, 0.0));
        occ.push((d.at_ms, 1, d.batch as f64));
    }
    occ.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
    for (t, _, v) in occ {
        tl.counter(0, "batch_occupancy", t, v);
    }

    tl.finish(
        "1 trace us = 1 simulated ms",
        &[
            ("engine", format!("\"{}\"", escape_json(&meta.engine))),
            ("arrival", format!("\"{}\"", meta.arrival)),
            ("policy", format!("\"{}\"", escape_json(&meta.policy))),
            ("utilization", json_f64(meta.utilization)),
            ("seed", meta.seed.to_string()),
            ("requests", outcome.records.len().to_string()),
            ("batches", outcome.dispatches.len().to_string()),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::{simulate, BatchPolicy};
    use lsv_obs::{parse_json, validate_serving_trace_json, JsonValue};

    fn meta() -> TraceMeta {
        TraceMeta {
            arch: "sx-aurora".into(),
            model: "resnet-50".into(),
            pass: "infer".into(),
            engine: "BDC".into(),
            arrival: "poisson",
            policy: "adaptive4".into(),
            utilization: 0.9,
            offered_rps: 120.0,
            seed: 42,
            slo_ms: 60.0,
            max_batch: 4,
        }
    }

    #[test]
    fn trace_json_is_schema_valid_and_reconciles() {
        let out = simulate(
            &[0.0, 1.0, 2.0, 15.0],
            BatchPolicy::Adaptive { max_batch: 4 },
            &|_k| (0, 10.0),
        );
        let recon = Reconciliation::compute(&out, &[]);
        assert!(recon.exact, "no-plan reconciliation must hold trivially");
        assert_eq!(recon.requests, 4);
        assert!(recon.layer_sum_ms.is_none());
        let doc = serving_trace_json(&meta(), &out, &[], &recon);
        validate_serving_trace_json(&doc).expect("schema-valid trace");
    }

    #[test]
    fn perfetto_doc_is_valid_json_with_all_tracks() {
        let out = simulate(
            &[0.0, 1.0, 2.0],
            BatchPolicy::Adaptive { max_batch: 8 },
            &|_k| (0, 10.0),
        );
        let doc = perfetto_trace_json(&meta(), &out, &[]);
        let v = parse_json(&doc).expect("valid JSON");
        let JsonValue::Arr(events) = v.get("traceEvents").unwrap() else {
            panic!("traceEvents must be an array");
        };
        // 2 spans per request + 1 per batch; counters: 3 arrivals +
        // 2 dispatches (queue_depth) + 4 occupancy samples.
        let spans = events
            .iter()
            .filter(|e| e.get("ph") == Some(&JsonValue::Str("X".into())))
            .count();
        assert_eq!(spans, 3 * 2 + 2);
        let counters = events
            .iter()
            .filter(|e| e.get("ph") == Some(&JsonValue::Str("C".into())))
            .count();
        assert_eq!(counters, 5 + 4);
        // Requests 1 and 2 both overlap request 0's service (and each
        // other, riding one batch) → three lanes, no more.
        assert!(doc.contains("request lane 2"));
        assert!(!doc.contains("request lane 3"));
    }

    #[test]
    fn rebuild_is_byte_identical() {
        let build = || {
            let out = simulate(
                &[0.0, 3.0, 7.0, 8.0],
                BatchPolicy::Timeout {
                    max_batch: 2,
                    timeout_ms: 5.0,
                },
                &|k| (0, 4.0 + k as f64),
            );
            let recon = Reconciliation::compute(&out, &[]);
            (
                serving_trace_json(&meta(), &out, &[], &recon),
                perfetto_trace_json(&meta(), &out, &[]),
            )
        };
        assert_eq!(build(), build());
    }
}
