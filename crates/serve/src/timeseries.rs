//! Time-series telemetry of one serving cell on the simulated clock.
//!
//! A queue simulation is summarized by [`crate::stats::LoadStats`] into one
//! row; this module keeps the *shape over time* instead: queue depth, batch
//! occupancy, cumulative utilization, a rolling p99 and the SLO burn rate,
//! sampled at uniform simulated-time instants. The sweep emitter writes one
//! CSV block per (arrival, policy, load) cell (`serving_timeseries.csv`)
//! and a per-cell summary into `BENCH_serving.json`'s `timeseries` section.
//!
//! Everything is a pure function of the [`SimOutcome`] — a warm-store
//! replay reproduces the CSV byte-for-byte.

use crate::queue::SimOutcome;
use crate::stats::percentile;

/// Samples per cell in the emitted time series.
pub const SAMPLES_PER_CELL: usize = 120;

/// Completions the rolling p99 looks back over.
pub const ROLLING_WINDOW: usize = 100;

/// One sampled instant.
#[derive(Debug, Clone, Copy)]
pub struct TimePoint {
    /// Sample timestamp (simulated ms).
    pub t_ms: f64,
    /// Requests arrived but not yet dispatched at `t`.
    pub queue_depth: usize,
    /// Size of the batch occupying the chip at `t` (0 when idle).
    pub in_flight_batch: usize,
    /// Whether the chip is serving a batch at `t`.
    pub busy: bool,
    /// Cumulative busy fraction of `[first_arrival, t]`.
    pub util_cum: f64,
    /// p99 latency over the last [`ROLLING_WINDOW`] completions by `t`
    /// (`None` until the first completion).
    pub rolling_p99_ms: f64,
    /// Fraction of completions since the previous sample that missed the
    /// SLO (0 when none completed).
    pub slo_burn: f64,
}

/// Per-cell summary of the sampled series, recorded in
/// `BENCH_serving.json`'s `timeseries` section.
#[derive(Debug, Clone, Copy)]
pub struct CellSummary {
    /// Largest sampled queue depth.
    pub peak_queue_depth: usize,
    /// Mean sampled queue depth.
    pub mean_queue_depth: f64,
    /// Busy fraction of the whole run (final cumulative utilization).
    pub mean_utilization: f64,
    /// Worst per-sample SLO burn rate.
    pub max_slo_burn: f64,
    /// Rolling p99 at the final sample (NaN if nothing completed — the
    /// JSON emitter turns that into `null`).
    pub final_p99_ms: f64,
}

/// Sample `outcome` at `samples` uniform instants spanning first arrival to
/// last completion.
pub fn sample_outcome(outcome: &SimOutcome, slo_ms: f64, samples: usize) -> Vec<TimePoint> {
    assert!(samples >= 2, "need at least the two endpoint samples");
    let n = outcome.records.len();
    assert!(n > 0, "time series of an empty run");
    let first = outcome.records[0].arrival_ms;
    let last = outcome
        .records
        .iter()
        .map(|r| r.done_ms)
        .fold(0.0f64, f64::max);

    // Arrival and dispatch timestamps are nondecreasing in id order (FIFO),
    // so queue depth at `t` is a pair of partition points.
    let arrivals: Vec<f64> = outcome.records.iter().map(|r| r.arrival_ms).collect();
    let dispatches_by_id: Vec<f64> = outcome.records.iter().map(|r| r.dispatch_ms).collect();
    // Completions in done order, with their latencies.
    let mut completions: Vec<(f64, f64)> = outcome
        .records
        .iter()
        .map(|r| (r.done_ms, r.latency_ms()))
        .collect();
    completions.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    // Busy time before each dispatch (prefix sums of service times).
    let mut busy_prefix = Vec::with_capacity(outcome.dispatches.len() + 1);
    busy_prefix.push(0.0f64);
    for d in &outcome.dispatches {
        busy_prefix.push(busy_prefix.last().unwrap() + d.service_ms);
    }

    let mut points = Vec::with_capacity(samples);
    let mut prev_done_count = 0usize;
    for i in 0..samples {
        let t = first + (last - first) * i as f64 / (samples - 1) as f64;
        let arrived = arrivals.partition_point(|&a| a <= t);
        let dispatched = dispatches_by_id.partition_point(|&d| d <= t);
        let queue_depth = arrived - dispatched;

        // The dispatch in flight at `t`, if any.
        let di = outcome.dispatches.partition_point(|d| d.at_ms <= t);
        let (in_flight_batch, busy, busy_ms) = if di == 0 {
            (0, false, 0.0)
        } else {
            let d = &outcome.dispatches[di - 1];
            let active = t < d.at_ms + d.service_ms;
            let busy_ms = busy_prefix[di - 1] + if active { t - d.at_ms } else { d.service_ms };
            (if active { d.batch } else { 0 }, active, busy_ms)
        };
        let util_cum = if t > first {
            busy_ms / (t - first)
        } else {
            0.0
        };

        let done_count = completions.partition_point(|c| c.0 <= t);
        let rolling_p99_ms = if done_count == 0 {
            f64::NAN
        } else {
            let lo = done_count.saturating_sub(ROLLING_WINDOW);
            let mut window: Vec<f64> = completions[lo..done_count].iter().map(|c| c.1).collect();
            window.sort_by(|a, b| a.partial_cmp(b).unwrap());
            percentile(&window, 99.0)
        };
        let newly_done = done_count - prev_done_count;
        let slo_burn = if newly_done == 0 {
            0.0
        } else {
            let missed = completions[prev_done_count..done_count]
                .iter()
                .filter(|c| c.1 > slo_ms)
                .count();
            missed as f64 / newly_done as f64
        };
        prev_done_count = done_count;

        points.push(TimePoint {
            t_ms: t,
            queue_depth,
            in_flight_batch,
            busy,
            util_cum,
            rolling_p99_ms,
            slo_burn,
        });
    }
    points
}

/// Summarize a sampled series.
pub fn summarize_cell(points: &[TimePoint]) -> CellSummary {
    assert!(!points.is_empty(), "summary of an empty series");
    let peak_queue_depth = points.iter().map(|p| p.queue_depth).max().unwrap();
    let mean_queue_depth =
        points.iter().map(|p| p.queue_depth as f64).sum::<f64>() / points.len() as f64;
    let last = points.last().unwrap();
    let max_slo_burn = points.iter().map(|p| p.slo_burn).fold(0.0f64, f64::max);
    CellSummary {
        peak_queue_depth,
        mean_queue_depth,
        mean_utilization: last.util_cum,
        max_slo_burn,
        final_p99_ms: last.rolling_p99_ms,
    }
}

/// The `serving_timeseries.csv` header.
pub fn timeseries_csv_header() -> &'static str {
    "arrival,policy,engine,utilization,sample,t_ms,queue_depth,in_flight_batch,\
     busy,util_cum,rolling_p99_ms,slo_burn"
}

/// One `serving_timeseries.csv` line. `rolling_p99_ms` prints as `NaN`
/// before the first completion — an undefined percentile, not zero.
pub fn timeseries_csv_row(
    arrival: &str,
    policy: &str,
    engine: &str,
    utilization: f64,
    sample: usize,
    p: &TimePoint,
) -> String {
    format!(
        "{},{},{},{:.2},{},{:.3},{},{},{},{:.4},{:.3},{:.4}",
        arrival,
        policy,
        engine,
        utilization,
        sample,
        p.t_ms,
        p.queue_depth,
        p.in_flight_batch,
        u8::from(p.busy),
        p.util_cum,
        p.rolling_p99_ms,
        p.slo_burn,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::{simulate, BatchPolicy};

    fn outcome() -> SimOutcome {
        simulate(
            &[0.0, 1.0, 2.0, 30.0],
            BatchPolicy::Adaptive { max_batch: 4 },
            &|_k| (0, 10.0),
        )
    }

    #[test]
    fn endpoint_samples_bracket_the_run() {
        let pts = sample_outcome(&outcome(), 15.0, 10);
        assert_eq!(pts.len(), 10);
        assert_eq!(pts[0].t_ms, 0.0);
        assert_eq!(pts.last().unwrap().t_ms, 40.0, "last done at 30+10");
        assert!(pts[0].rolling_p99_ms.is_nan(), "nothing completed yet");
        assert_eq!(pts[0].queue_depth, 0, "request 0 dispatched at arrival");
        // At the end everything completed and the chip is idle.
        let last = pts.last().unwrap();
        assert_eq!(last.queue_depth, 0);
        assert!(!last.busy);
        assert!(last.rolling_p99_ms.is_finite());
    }

    #[test]
    fn utilization_counts_only_busy_time() {
        // Serves [0,10] and [10,20] back to back, then idles until 30 and
        // serves [30,40]: busy 30 of 40 ms.
        let pts = sample_outcome(&outcome(), 15.0, 5);
        let last = pts.last().unwrap();
        assert!(
            (last.util_cum - 0.75).abs() < 1e-12,
            "util {} != 0.75",
            last.util_cum
        );
        // t=20: exactly between batches — idle, two batches of service done.
        let mid = &pts[2];
        assert_eq!(mid.t_ms, 20.0);
        assert!(!mid.busy);
        assert_eq!(mid.in_flight_batch, 0);
    }

    #[test]
    fn burn_rate_flags_the_missed_window() {
        // SLO 15ms: requests 1,2 ride the second batch with 19/18ms
        // latency. Samples land at t=0,10,20,30,40; the (10,20] window
        // contains exactly those two completions, both missed.
        let pts = sample_outcome(&outcome(), 15.0, 5);
        let burn: Vec<f64> = pts.iter().map(|p| p.slo_burn).collect();
        assert_eq!(burn, vec![0.0, 0.0, 1.0, 0.0, 0.0]);
        let s = summarize_cell(&pts);
        assert_eq!(s.max_slo_burn, 1.0);
        assert!(s.final_p99_ms.is_finite());
    }

    #[test]
    fn queue_depth_peaks_while_the_first_batch_runs() {
        // 1ms sampling: requests 1 and 2 queue behind request 0's batch
        // (busy until t=10), so depth reaches 2 at t=2..10.
        let pts = sample_outcome(&outcome(), 15.0, 41);
        assert_eq!(pts[1].t_ms, 1.0);
        assert_eq!(pts[1].queue_depth, 1);
        assert_eq!(pts[2].queue_depth, 2);
        assert_eq!(pts[10].queue_depth, 0, "batch 2 dispatched at t=10");
        let s = summarize_cell(&pts);
        assert_eq!(s.peak_queue_depth, 2);
    }

    #[test]
    fn csv_rows_are_deterministic_and_nan_is_explicit() {
        let pts = sample_outcome(&outcome(), 15.0, 4);
        let row0 = timeseries_csv_row("poisson", "adaptive4", "BDC", 0.9, 0, &pts[0]);
        assert!(row0.contains(",NaN,") || row0.contains(",nan,"), "{row0}");
        let again = sample_outcome(&outcome(), 15.0, 4);
        for (a, b) in pts.iter().zip(&again) {
            let ra = timeseries_csv_row("poisson", "adaptive4", "BDC", 0.9, 0, a);
            let rb = timeseries_csv_row("poisson", "adaptive4", "BDC", 0.9, 0, b);
            assert_eq!(ra, rb);
        }
    }
}
