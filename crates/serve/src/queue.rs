//! The dynamic batching queue and its event-driven, simulated-clock
//! single-server model.
//!
//! The model: requests arrive at given timestamps, wait in a FIFO queue,
//! and are dispatched to the chip in batches. The chip serves one batch at
//! a time (the 8-core model already parallelizes *inside* a batch across
//! cores); a batch of `k` requests runs the whole network at minibatch `k`
//! and every request in it completes when the batch does. Service times
//! come from a [`crate::latency::LatencyTable`] — i.e. from the simulator,
//! through the layer store.

use std::collections::VecDeque;

/// When the queue hands a batch to the chip.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BatchPolicy {
    /// Wait until exactly `batch` requests are queued (the trailing partial
    /// batch at end-of-stream is drained as-is). Maximizes batch efficiency,
    /// unbounded wait at low load.
    Fixed {
        /// The target batch size.
        batch: usize,
    },
    /// Dispatch when `max_batch` requests are queued or the oldest request
    /// has waited `timeout_ms`, whichever is first.
    Timeout {
        /// Upper bound on the batch size.
        max_batch: usize,
        /// Longest the oldest queued request may wait (while the server is
        /// free) before a partial batch is dispatched.
        timeout_ms: f64,
    },
    /// Dispatch whatever is queued (up to `max_batch`) the moment the
    /// server is free — batch size adapts to the backlog.
    Adaptive {
        /// Upper bound on the batch size.
        max_batch: usize,
    },
}

/// Why a batch left the queue when it did. Recorded on every [`Dispatch`]
/// and stamped onto each [`RequestRecord`] that rode in it, so traces can
/// distinguish "the batch filled" from "the deadline fired" without
/// re-deriving policy internals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchReason {
    /// The batch reached the policy's size cap.
    Full,
    /// The oldest request's wait hit the timeout deadline.
    Timeout,
    /// The server came free and took the backlog as-is.
    Adaptive,
    /// End-of-stream: the trailing partial batch was flushed.
    Drain,
}

impl DispatchReason {
    /// Wire name used in trace artifacts (matches the serving_trace schema
    /// enum).
    pub fn name(&self) -> &'static str {
        match self {
            DispatchReason::Full => "full",
            DispatchReason::Timeout => "timeout",
            DispatchReason::Adaptive => "adaptive",
            DispatchReason::Drain => "drain",
        }
    }
}

impl BatchPolicy {
    /// Name used in CSV/JSON artifacts, parameters included.
    pub fn name(&self) -> String {
        match self {
            BatchPolicy::Fixed { batch } => format!("fixed{batch}"),
            BatchPolicy::Timeout {
                max_batch,
                timeout_ms,
            } => format!("timeout{max_batch}-{timeout_ms:.0}ms"),
            BatchPolicy::Adaptive { max_batch } => format!("adaptive{max_batch}"),
        }
    }

    /// The policy's batch-size cap.
    pub fn max_batch(&self) -> usize {
        match *self {
            BatchPolicy::Fixed { batch } => batch,
            BatchPolicy::Timeout { max_batch, .. } => max_batch,
            BatchPolicy::Adaptive { max_batch } => max_batch,
        }
    }
}

/// The lifecycle of one request through the queue.
#[derive(Debug, Clone, Copy)]
pub struct RequestRecord {
    /// Index into the arrival vector.
    pub id: usize,
    /// Arrival timestamp (ms).
    pub arrival_ms: f64,
    /// When its batch was handed to the chip (ms).
    pub dispatch_ms: f64,
    /// When its batch completed (ms).
    pub done_ms: f64,
    /// Size of the batch it rode in.
    pub batch: usize,
    /// Index (into the sweep's engine list) of the engine that served it.
    pub engine: usize,
    /// How many earlier requests were still waiting (arrived but not yet
    /// dispatched) at this request's arrival instant.
    pub depth_at_arrival: usize,
    /// Why its batch left the queue.
    pub reason: DispatchReason,
}

impl RequestRecord {
    /// End-to-end latency: queueing wait + service (ms).
    pub fn latency_ms(&self) -> f64 {
        self.done_ms - self.arrival_ms
    }
}

/// One batch handed to the chip.
#[derive(Debug, Clone, Copy)]
pub struct Dispatch {
    /// Dispatch timestamp (ms).
    pub at_ms: f64,
    /// Requests in the batch.
    pub batch: usize,
    /// Engine index chosen for the batch.
    pub engine: usize,
    /// Service time of the batch (ms).
    pub service_ms: f64,
    /// Why the batch left the queue.
    pub reason: DispatchReason,
}

/// Everything the simulation produced: one record per request (in arrival
/// order) and the dispatch log.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// Per-request lifecycle, indexed by arrival id.
    pub records: Vec<RequestRecord>,
    /// Every batch handed to the chip, in time order.
    pub dispatches: Vec<Dispatch>,
}

impl SimOutcome {
    /// Publish this simulation's counters and latency distributions into a
    /// metrics registry under the `queue.` namespace. Per-reason dispatch
    /// counters are named `queue.dispatch.<reason>`.
    pub fn publish_metrics(&self, reg: &lsv_obs::MetricsRegistry) {
        reg.counter_add("queue.requests", self.records.len() as u64);
        reg.counter_add("queue.dispatches", self.dispatches.len() as u64);
        for d in &self.dispatches {
            reg.counter_add(&format!("queue.dispatch.{}", d.reason.name()), 1);
        }
        for r in &self.records {
            reg.observe("queue.wait_ms", r.dispatch_ms - r.arrival_ms);
            reg.observe("queue.ride_ms", r.done_ms - r.dispatch_ms);
            reg.observe("queue.batch", r.batch as f64);
        }
    }
}

/// Simulate the queue + single-server chip over `arrivals` (nondecreasing
/// timestamps in ms). `service` maps a batch size to the (engine index,
/// service ms) pair that serves it — typically
/// [`crate::latency::LatencyTable::best`] or a fixed engine's column.
pub fn simulate(
    arrivals: &[f64],
    policy: BatchPolicy,
    service: &dyn Fn(usize) -> (usize, f64),
) -> SimOutcome {
    assert!(
        arrivals.windows(2).all(|w| w[0] <= w[1]),
        "arrivals must be nondecreasing"
    );
    let n = arrivals.len();
    let max_batch = policy.max_batch().max(1);
    let mut pending: VecDeque<usize> = VecDeque::new();
    let mut next = 0usize; // next arrival not yet queued
    let mut t_free = 0.0f64; // when the server finishes its current batch
    let mut records: Vec<Option<RequestRecord>> = vec![None; n];
    let mut dispatches = Vec::new();

    while next < n || !pending.is_empty() {
        if pending.is_empty() {
            pending.push_back(next);
            next += 1;
        }
        let head_arrival = arrivals[pending[0]];
        // When the batch would be full: the arrival time of the
        // max_batch-th request (already queued or still in the future).
        let fill_time = if pending.len() >= max_batch {
            arrivals[pending[max_batch - 1]]
        } else {
            let missing = max_batch - pending.len();
            match next.checked_add(missing - 1).filter(|&i| i < n) {
                Some(i) => arrivals[i],
                None => f64::INFINITY,
            }
        };
        let dispatch_at = match policy {
            BatchPolicy::Adaptive { .. } => t_free.max(head_arrival),
            BatchPolicy::Timeout { timeout_ms, .. } => {
                t_free.max(fill_time.min(head_arrival + timeout_ms))
            }
            BatchPolicy::Fixed { .. } => {
                if fill_time.is_finite() {
                    t_free.max(fill_time)
                } else {
                    // End-of-stream drain: everything left goes at once.
                    t_free.max(arrivals[n - 1])
                }
            }
        };
        // Everyone who has arrived by the dispatch moment joins the queue;
        // the batch takes the oldest `max_batch` of them (FIFO).
        while next < n && arrivals[next] <= dispatch_at {
            pending.push_back(next);
            next += 1;
        }
        let k = pending.len().min(max_batch);
        let (engine, service_ms) = service(k);
        assert!(service_ms > 0.0, "service time must be positive");
        let reason = if k == max_batch {
            DispatchReason::Full
        } else {
            match policy {
                // A partial fixed batch only ever leaves at end-of-stream.
                BatchPolicy::Fixed { .. } => DispatchReason::Drain,
                BatchPolicy::Timeout { .. } => DispatchReason::Timeout,
                BatchPolicy::Adaptive { .. } => DispatchReason::Adaptive,
            }
        };
        let done = dispatch_at + service_ms;
        for _ in 0..k {
            let id = pending.pop_front().expect("batch members are queued");
            records[id] = Some(RequestRecord {
                id,
                arrival_ms: arrivals[id],
                dispatch_ms: dispatch_at,
                done_ms: done,
                batch: k,
                engine,
                depth_at_arrival: 0, // filled in below, once all dispatches are known
                reason,
            });
        }
        dispatches.push(Dispatch {
            at_ms: dispatch_at,
            batch: k,
            engine,
            service_ms,
            reason,
        });
        t_free = done;
    }

    let mut records: Vec<RequestRecord> = records
        .into_iter()
        .map(|r| r.expect("every request is served exactly once"))
        .collect();
    // Queue depth seen by each arriving request: earlier arrivals whose
    // batch had not yet been handed to the chip. A dispatch at the same
    // instant still counts as waiting — arrivals order before dispatches at
    // ties (the arrival that *triggers* a dispatch sees the queue it
    // joined). FIFO makes dispatch_ms nondecreasing in id order, so a
    // partition point suffices.
    for i in 0..records.len() {
        let dispatched = records[..i].partition_point(|r| r.dispatch_ms < arrivals[i]);
        records[i].depth_at_arrival = i - dispatched;
    }

    SimOutcome {
        records,
        dispatches,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_service(_k: usize) -> (usize, f64) {
        (0, 10.0)
    }

    #[test]
    fn adaptive_serves_immediately_when_idle() {
        let out = simulate(
            &[0.0, 1.0, 2.0],
            BatchPolicy::Adaptive { max_batch: 8 },
            &unit_service,
        );
        // Request 0 dispatches alone at t=0; 1 and 2 batch at t=10.
        assert_eq!(out.dispatches.len(), 2);
        assert_eq!(out.dispatches[0].batch, 1);
        assert_eq!(out.dispatches[1].batch, 2);
        assert_eq!(out.records[0].latency_ms(), 10.0);
        assert_eq!(out.records[2].done_ms, 20.0);
        assert_eq!(out.dispatches[0].reason, DispatchReason::Adaptive);
        assert_eq!(out.records[0].depth_at_arrival, 0);
        // Requests 1 and 2 arrive while request 0's batch occupies the chip.
        assert_eq!(out.records[1].depth_at_arrival, 0);
        assert_eq!(out.records[2].depth_at_arrival, 1);
    }

    #[test]
    fn fixed_waits_for_a_full_batch_and_drains_the_tail() {
        let arr = [0.0, 5.0, 30.0];
        let out = simulate(&arr, BatchPolicy::Fixed { batch: 2 }, &unit_service);
        assert_eq!(out.dispatches[0].at_ms, 5.0, "waits for the 2nd arrival");
        assert_eq!(out.dispatches[0].batch, 2);
        assert_eq!(out.dispatches[1].batch, 1, "tail drained partial");
        assert_eq!(out.dispatches[0].reason, DispatchReason::Full);
        assert_eq!(out.dispatches[1].reason, DispatchReason::Drain);
        assert_eq!(out.records[0].depth_at_arrival, 0);
        assert_eq!(out.records[1].depth_at_arrival, 1, "request 0 still queued");
    }

    #[test]
    fn timeout_fires_on_the_oldest_request() {
        let arr = [0.0, 100.0];
        let out = simulate(
            &arr,
            BatchPolicy::Timeout {
                max_batch: 4,
                timeout_ms: 15.0,
            },
            &unit_service,
        );
        assert_eq!(out.dispatches[0].at_ms, 15.0, "deadline, not fill");
        assert_eq!(out.dispatches[0].batch, 1);
        assert_eq!(out.dispatches[0].reason, DispatchReason::Timeout);
    }

    #[test]
    fn busy_server_defers_past_the_timeout() {
        // Request 0 occupies the server until t=10; request 1 arrives at 1
        // with a 2ms timeout but can only dispatch at t=10.
        let arr = [0.0, 1.0];
        let out = simulate(
            &arr,
            BatchPolicy::Timeout {
                max_batch: 1,
                timeout_ms: 2.0,
            },
            &unit_service,
        );
        assert_eq!(out.dispatches[1].at_ms, 10.0);
    }
}
