//! # lsv-serve — the model-level serving harness
//!
//! The paper's evaluation stops at layers and whole-model training steps;
//! this crate asks the production question on top of the same simulator:
//! *given this chip and these kernels, how should a model server batch
//! requests under load?*
//!
//! Pieces:
//!
//! * [`arrivals`] — deterministic-seeded arrival processes (Poisson and
//!   on/off bursty) on a simulated clock.
//! * [`queue`] — the dynamic batching queue (fixed-batch, timeout-batch,
//!   adaptive) and its event-driven single-server simulation.
//! * [`latency`] — whole-model service-time tables per engine per batch
//!   size, built on the [`lsv_conv::ModelRunner`] (direct algorithms,
//!   analytic or empirically tuned) and the vednn baseline, all through
//!   the layer store.
//! * [`stats`] — nearest-rank latency percentiles (p50/p95/p99) and
//!   per-load summaries.
//! * [`sweep`] — the offered-load sweep producing the `serving.csv` /
//!   `BENCH_serving.json` artifacts and the best-(policy, engine)-per-load
//!   verdicts.
//! * [`trace`] — request-lifecycle traces of one cell: the analyzable
//!   `serving_trace.json` span tree (with per-layer plan breakdowns and a
//!   bit-exact reconciliation record) and the Perfetto timeline.
//! * [`timeseries`] — queue depth, batch occupancy, rolling p99 and SLO
//!   burn sampled on the simulated clock (`serving_timeseries.csv`).
//!
//! The interesting output is the *crossover*: at low load the adaptive
//! policy wins (small batches, no waiting — lowest p99), while near
//! saturation the batch-building policies win (full batches amortize the
//! per-image cost, which is the only way to keep up with the offered
//! rate) — the model-level analogue of the paper's per-layer
//! minibatch-scaling story.

pub mod arrivals;
pub mod latency;
pub mod queue;
pub mod stats;
pub mod sweep;
pub mod timeseries;
pub mod trace;

pub use arrivals::{ArrivalProcess, ArrivalShape, SplitMix64};
pub use latency::{resnet_specs, LatencyTable, ServeEngine};
pub use queue::{simulate, BatchPolicy, Dispatch, DispatchReason, RequestRecord, SimOutcome};
pub use stats::{percentile, summarize, LoadStats};
pub use sweep::{
    best_by_load, cell_outcome, csv_header, csv_row, reference_capacity_rps, run_sweep,
    run_timeseries, serving_json, BestPick, SweepConfig, SweepMeta, SweepRow, TimeseriesCell,
    TimeseriesSection,
};
pub use timeseries::{
    sample_outcome, summarize_cell, timeseries_csv_header, timeseries_csv_row, CellSummary,
    TimePoint, ROLLING_WINDOW, SAMPLES_PER_CELL,
};
pub use trace::{
    collect_plans, perfetto_trace_json, serving_trace_json, Reconciliation, TraceMeta,
};
