//! Tier-1 conservation gate for the serving trace: the span tree rendered
//! into `serving_trace.json` must reconcile **bit-for-bit** with the queue
//! simulator's `RequestRecord` timestamps, the per-dispatch layer breakdown
//! must tile each service span exactly, and the metrics registry must agree
//! with the raw counters it was fed — on a synthetic model small enough for
//! a debug build.

use lsv_arch::presets::sx_aurora;
use lsv_conv::{Algorithm, ConvProblem, ExecutionMode, LayerSpec, ModelPlan, ModelRunner, Pass};
use lsv_serve::{
    cell_outcome, collect_plans, perfetto_trace_json, run_timeseries, serving_trace_json,
    ArrivalShape, BatchPolicy, LatencyTable, Reconciliation, ServeEngine, SweepConfig, TraceMeta,
};

const MAX_BATCH: usize = 3;

fn specs(batch: usize) -> Vec<LayerSpec> {
    vec![
        LayerSpec::new(ConvProblem::new(batch, 32, 32, 10, 10, 3, 3, 1, 1), 2),
        LayerSpec::new(ConvProblem::new(batch, 64, 16, 8, 8, 1, 1, 1, 0), 1),
    ]
}

/// The per-layer breakdown for one batch size — the exact code path the
/// latency table below uses, so the trace's plans are bit-identical to the
/// service times by construction.
fn plan_for(batch: usize) -> Option<ModelPlan> {
    let arch = sx_aurora();
    Some(
        ModelRunner::new(&arch, specs(batch), Pass::Inference)
            .with_mode(ExecutionMode::TimingOnly)
            .plan_fixed(Algorithm::Bdc),
    )
}

fn tiny_table() -> LatencyTable {
    LatencyTable {
        engines: vec![ServeEngine::Fixed(Algorithm::Bdc)],
        max_batch: MAX_BATCH,
        ms: vec![(1..=MAX_BATCH)
            .map(|b| plan_for(b).unwrap().total_time_ms())
            .collect()],
    }
}

fn tiny_cfg(slo_ms: f64) -> SweepConfig {
    SweepConfig {
        shapes: vec![ArrivalShape::Poisson],
        policies: vec![BatchPolicy::Adaptive {
            max_batch: MAX_BATCH,
        }],
        utilizations: vec![0.9],
        requests: 60,
        seed: 7,
        slo_ms,
    }
}

fn meta(offered_rps: f64, slo_ms: f64) -> TraceMeta {
    TraceMeta {
        arch: "sx-aurora".to_string(),
        model: "synthetic-2layer".to_string(),
        pass: "infer".to_string(),
        engine: "BDC".to_string(),
        arrival: "poisson",
        policy: BatchPolicy::Adaptive {
            max_batch: MAX_BATCH,
        }
        .name(),
        utilization: 0.9,
        offered_rps,
        seed: 7,
        slo_ms,
        max_batch: MAX_BATCH,
    }
}

#[test]
fn trace_reconciles_bit_exactly_and_validates() {
    let table = tiny_table();
    let slo_ms = 2.0 * table.best(MAX_BATCH).1;
    let cfg = tiny_cfg(slo_ms);
    let (offered_rps, outcome) = cell_outcome(&cfg, &table, 0, 0, cfg.policies[0], 0);
    assert_eq!(outcome.records.len(), cfg.requests);

    let plans = collect_plans(&outcome, &plan_for);
    assert!(
        !plans.is_empty(),
        "adaptive at 0.9 utilization dispatches at least one batch size"
    );
    let recon = Reconciliation::compute(&outcome, &plans);
    assert!(
        recon.exact,
        "span tree must reconcile bit-for-bit: {recon:?}"
    );
    assert_eq!(recon.requests, cfg.requests);
    assert_eq!(recon.batches, outcome.dispatches.len());
    // The layer breakdown tiles the service spans exactly (same-order sums).
    assert_eq!(
        recon.layer_sum_ms.unwrap().to_bits(),
        recon.service_sum_ms.to_bits()
    );

    let m = meta(offered_rps, slo_ms);
    let doc = serving_trace_json(&m, &outcome, &plans, &recon);
    lsv_obs::validate_serving_trace_json(&doc).expect("serving_trace.json is schema-valid");

    // Determinism: a fixed outcome renders byte-identically — the property
    // the CI cold/warm byte-compare rests on.
    let again = serving_trace_json(&m, &outcome, &plans, &recon);
    assert_eq!(doc, again);
    let p1 = perfetto_trace_json(&m, &outcome, &plans);
    let p2 = perfetto_trace_json(&m, &outcome, &plans);
    assert_eq!(p1, p2);
    lsv_obs::parse_json(&p1).expect("perfetto timeline is valid JSON");
}

#[test]
fn vednn_style_traces_carry_no_layer_plans_but_still_reconcile() {
    let table = tiny_table();
    let slo_ms = 2.0 * table.best(MAX_BATCH).1;
    let cfg = tiny_cfg(slo_ms);
    let (offered_rps, outcome) = cell_outcome(&cfg, &table, 0, 0, cfg.policies[0], 0);
    let recon = Reconciliation::compute(&outcome, &[]);
    assert!(recon.layer_sum_ms.is_none());
    assert!(recon.exact, "ride spans alone must still reconcile");
    let doc = serving_trace_json(&meta(offered_rps, slo_ms), &outcome, &[], &recon);
    lsv_obs::validate_serving_trace_json(&doc).expect("planless trace is schema-valid");
    assert!(doc.contains("\"layer_sum_ms\": null"));
}

#[test]
fn registry_totals_agree_with_the_raw_counters() {
    let table = tiny_table();
    let slo_ms = 2.0 * table.best(MAX_BATCH).1;
    let cfg = tiny_cfg(slo_ms);
    let (_, outcome) = cell_outcome(&cfg, &table, 0, 0, cfg.policies[0], 0);
    let plans = collect_plans(&outcome, &plan_for);

    let reg = lsv_obs::MetricsRegistry::new();
    outcome.publish_metrics(&reg);
    for (_, p) in &plans {
        p.publish_metrics(&reg);
    }
    let doc = reg.to_json("trace-reconcile-test");
    lsv_obs::validate_metrics_json(&doc).expect("registry document is schema-valid");

    let counter = |name: &str| -> u64 {
        let parsed = lsv_obs::parse_json(&doc).unwrap();
        let Some(lsv_obs::JsonValue::Arr(cs)) = parsed.get("counters") else {
            panic!("counters array")
        };
        cs.iter()
            .find(|c| matches!(c.get("name"), Some(lsv_obs::JsonValue::Str(n)) if n == name))
            .and_then(|c| c.get("value"))
            .map(|v| match v {
                lsv_obs::JsonValue::Num(x) => *x as u64,
                _ => panic!("numeric counter"),
            })
            .unwrap_or(0)
    };
    assert_eq!(counter("queue.requests"), cfg.requests as u64);
    assert_eq!(counter("queue.dispatches"), outcome.dispatches.len() as u64);
    // Per-reason dispatch counters partition the dispatch count.
    let by_reason: u64 = ["full", "timeout", "adaptive", "drain"]
        .iter()
        .map(|r| counter(&format!("queue.dispatch.{r}")))
        .sum();
    assert_eq!(by_reason, outcome.dispatches.len() as u64);
    // Runner counters total exactly what the plans carried.
    let hits: u64 = plans.iter().map(|(_, p)| p.store_hits).sum();
    let sim: u64 = plans.iter().map(|(_, p)| p.simulated).sum();
    assert_eq!(counter("runner.plans"), plans.len() as u64);
    assert_eq!(counter("runner.store_hits"), hits);
    assert_eq!(counter("runner.simulated"), sim);
}

#[test]
fn timeseries_csv_is_deterministic() {
    let table = tiny_table();
    let slo_ms = 2.0 * table.best(MAX_BATCH).1;
    let cfg = tiny_cfg(slo_ms);
    let (s1, csv1) = run_timeseries(&cfg, &table, 0);
    let (s2, csv2) = run_timeseries(&cfg, &table, 0);
    assert_eq!(
        csv1, csv2,
        "warm replay must reproduce the CSV byte-for-byte"
    );
    assert_eq!(s1.cells.len(), 1);
    assert_eq!(
        s1.cells[0].summary.peak_queue_depth,
        s2.cells[0].summary.peak_queue_depth
    );
    let lines: Vec<&str> = csv1.lines().collect();
    assert_eq!(lines[0], lsv_serve::timeseries_csv_header());
    assert_eq!(lines.len(), 1 + lsv_serve::SAMPLES_PER_CELL);
}
