//! Property tests for the serving harness's host-side machinery: the
//! batching queue's conservation and FIFO invariants, the percentile
//! estimator against the exact quantile definition, and arrival-stream
//! determinism. No simulator in the loop — service times are synthetic.

use lsv_serve::arrivals::{ArrivalProcess, ArrivalShape};
use lsv_serve::queue::{simulate, BatchPolicy, DispatchReason};
use lsv_serve::stats::percentile;
use proptest::prelude::*;

/// Build a nondecreasing arrival vector from raw gaps.
fn arrivals_from_gaps(gaps: &[f64]) -> Vec<f64> {
    let mut t = 0.0;
    gaps.iter()
        .map(|g| {
            t += g.abs();
            t
        })
        .collect()
}

fn policy_from(tag: u8, batch: usize, timeout: f64) -> BatchPolicy {
    match tag % 3 {
        0 => BatchPolicy::Fixed { batch },
        1 => BatchPolicy::Timeout {
            max_batch: batch,
            timeout_ms: timeout,
        },
        _ => BatchPolicy::Adaptive { max_batch: batch },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn no_request_lost_or_duplicated(
        gaps in proptest::collection::vec(0.0f64..20.0, 1..200),
        tag in 0u8..3,
        batch in 1usize..9,
        timeout in 0.5f64..30.0,
        service in 1.0f64..40.0,
    ) {
        let arrivals = arrivals_from_gaps(&gaps);
        let policy = policy_from(tag, batch, timeout);
        let out = simulate(&arrivals, policy, &|_k| (0, service));
        // Conservation: exactly one record per request, ids 0..n in order.
        prop_assert_eq!(out.records.len(), arrivals.len());
        for (i, r) in out.records.iter().enumerate() {
            prop_assert_eq!(r.id, i);
            prop_assert!(r.dispatch_ms >= r.arrival_ms - 1e-9);
            prop_assert!(r.done_ms > r.dispatch_ms);
            prop_assert!(r.batch >= 1 && r.batch <= batch);
        }
        // Dispatch log and records agree on totals.
        let batched: usize = out.dispatches.iter().map(|d| d.batch).sum();
        prop_assert_eq!(batched, arrivals.len());
    }

    #[test]
    fn dispatch_reasons_and_arrival_depths_are_consistent(
        gaps in proptest::collection::vec(0.0f64..20.0, 1..200),
        tag in 0u8..3,
        batch in 1usize..9,
        timeout in 0.5f64..30.0,
        service in 1.0f64..40.0,
    ) {
        let arrivals = arrivals_from_gaps(&gaps);
        let policy = policy_from(tag, batch, timeout);
        let out = simulate(&arrivals, policy, &|_k| (0, service));

        for (di, d) in out.dispatches.iter().enumerate() {
            // A full batch is always attributed to Full, and only a full
            // batch may be.
            prop_assert_eq!(d.batch == batch, d.reason == DispatchReason::Full,
                "k == max_batch iff reason == Full");
            // Partial batches carry the policy's own reason.
            if d.reason != DispatchReason::Full {
                match policy {
                    BatchPolicy::Fixed { .. } => {
                        prop_assert_eq!(d.reason, DispatchReason::Drain);
                        // A fixed-batch server only drains at end-of-stream.
                        prop_assert_eq!(di, out.dispatches.len() - 1,
                            "Drain can only be the final dispatch");
                    }
                    BatchPolicy::Timeout { .. } =>
                        prop_assert_eq!(d.reason, DispatchReason::Timeout),
                    BatchPolicy::Adaptive { .. } =>
                        prop_assert_eq!(d.reason, DispatchReason::Adaptive),
                }
            }
        }
        // Each record's reason is its batch's reason.
        let mut idx = 0;
        for d in &out.dispatches {
            for _ in 0..d.batch {
                prop_assert_eq!(out.records[idx].reason, d.reason);
                idx += 1;
            }
        }
        // depth_at_arrival matches the brute-force count: earlier requests
        // that had arrived but not yet dispatched at this arrival instant.
        // Ties order arrivals before dispatches (a dispatch at exactly the
        // arrival instant still counts as queued).
        for (i, r) in out.records.iter().enumerate() {
            let brute = out.records[..i]
                .iter()
                .filter(|e| e.arrival_ms <= r.arrival_ms && e.dispatch_ms >= r.arrival_ms)
                .count();
            prop_assert_eq!(r.depth_at_arrival, brute,
                "depth_at_arrival disagrees with brute force at id {}", i);
        }
    }

    #[test]
    fn fifo_order_is_preserved(
        gaps in proptest::collection::vec(0.0f64..20.0, 1..200),
        tag in 0u8..3,
        batch in 1usize..9,
        timeout in 0.5f64..30.0,
    ) {
        let arrivals = arrivals_from_gaps(&gaps);
        let policy = policy_from(tag, batch, timeout);
        // Batch-size-dependent service keeps the engine column exercised.
        let out = simulate(&arrivals, policy, &|k| (k % 2, 5.0 + k as f64));
        // FIFO: an earlier request never dispatches (or completes) after a
        // later one.
        for w in out.records.windows(2) {
            prop_assert!(w[0].dispatch_ms <= w[1].dispatch_ms + 1e-9);
            prop_assert!(w[0].done_ms <= w[1].done_ms + 1e-9);
        }
        // The server never overlaps batches: dispatches are serialized.
        for w in out.dispatches.windows(2) {
            prop_assert!(w[0].at_ms + w[0].service_ms <= w[1].at_ms + 1e-9);
        }
        // Within one batch, members share dispatch/done/batch/engine.
        let mut idx = 0;
        for d in &out.dispatches {
            for _ in 0..d.batch {
                let r = &out.records[idx];
                prop_assert_eq!(r.dispatch_ms, d.at_ms);
                prop_assert_eq!(r.batch, d.batch);
                prop_assert_eq!(r.engine, d.engine);
                idx += 1;
            }
        }
    }

    #[test]
    fn percentile_matches_exact_quantile_definition(
        raw in proptest::collection::vec(0.0f64..1000.0, 1..300),
        pct in 1.0f64..100.0,
    ) {
        let mut sample = raw;
        sample.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let got = percentile(&sample, pct);
        // Exact nearest-rank definition: the smallest sample element e with
        // |{x <= e}| >= ceil(pct/100 * n).
        let need = (pct / 100.0 * sample.len() as f64).ceil() as usize;
        let exact = *sample
            .iter()
            .find(|&&e| sample.iter().filter(|&&x| x <= e).count() >= need)
            .unwrap();
        prop_assert_eq!(got, exact);
    }

    #[test]
    fn arrival_streams_are_deterministic(seed in 0u64..1_000_000, n in 1usize..500) {
        for shape in [
            ArrivalShape::Poisson,
            ArrivalShape::Bursty { burst: 4.0, period_ms: 50.0 },
        ] {
            let p = shape.at_rate(120.0);
            let a = p.generate(seed, n);
            let b = p.generate(seed, n);
            prop_assert_eq!(&a, &b, "same seed must replay identically");
            let c = p.generate(seed ^ 0xdead_beef, n);
            prop_assert!(a != c || n == 0, "different seeds must diverge");
        }
    }
}

#[test]
fn poisson_stream_is_pinned_across_releases() {
    // A literal fixture: determinism across *runs* (not just within one
    // process) — any change to the generator or the exponential transform
    // shows up here.
    let a = ArrivalProcess::Poisson { rate_rps: 100.0 }.generate(42, 4);
    let want = [
        13.531105982440144,
        15.273573159316573,
        18.539203931979237,
        22.758056519130704,
    ];
    assert_eq!(a.len(), want.len());
    for (got, want) in a.iter().zip(want) {
        assert!(
            (got - want).abs() < 1e-12,
            "pinned arrival drifted: {got} != {want}"
        );
    }
}
