//! Conservation: the ModelRunner's static-schedule total must equal the
//! hand-summed per-layer `time_ms x layer_counts()` product — no hidden
//! overheads, no double counting, same store-served slices either way.

use lsv_arch::presets::sx_aurora;
use lsv_conv::{bench_layer, Direction, ExecutionMode, LayerSpec, ModelRunner, Pass};
use lsv_models::{resnet_layers, ResNetModel};
use lsv_serve::resnet_specs;

#[test]
fn inference_schedule_equals_hand_summed_layer_times() {
    let arch = sx_aurora();
    let model = ResNetModel::R50;
    let mb = 8; // one image per core: the cheapest real sweep point
    let runner = ModelRunner::new(&arch, resnet_specs(model, mb), Pass::Inference);
    let plan = runner.plan();

    let counts = model.layer_counts();
    let mut hand = 0.0;
    for (id, p) in resnet_layers(mb).iter().enumerate() {
        let e = plan.entry(id, Direction::Fwd).expect("entry per layer");
        let perf = bench_layer(
            &arch,
            p,
            Direction::Fwd,
            e.algorithm,
            ExecutionMode::TimingOnly,
        );
        hand += perf.time_ms * counts[id] as f64;
    }
    let total = plan.total_time_ms();
    assert!(
        (total - hand).abs() <= 1e-9 * hand.max(1.0),
        "runner total {total} ms != hand-summed {hand} ms"
    );
    assert_eq!(
        plan.entries.iter().map(|e| e.count).sum::<usize>(),
        model.total_conv_layers(),
        "plan covers every conv occurrence exactly once"
    );
}

#[test]
fn training_schedule_equals_hand_summed_layer_times() {
    // Small synthetic model: the same conservation law over all three
    // directions without a debug-build 19-layer bwdw sweep.
    let arch = sx_aurora();
    let layers = vec![
        LayerSpec::new(lsv_conv::ConvProblem::new(8, 32, 32, 10, 10, 3, 3, 1, 1), 3),
        LayerSpec::new(lsv_conv::ConvProblem::new(8, 64, 16, 8, 8, 1, 1, 1, 0), 2),
    ];
    let runner = ModelRunner::new(&arch, layers.clone(), Pass::TrainingStep);
    let plan = runner.plan();
    assert_eq!(plan.entries.len(), layers.len() * 3);

    let mut hand = 0.0;
    for (id, spec) in layers.iter().enumerate() {
        for d in Direction::ALL {
            let e = plan.entry(id, d).expect("entry per (layer, dir)");
            let perf = bench_layer(
                &arch,
                &spec.problem,
                d,
                e.algorithm,
                ExecutionMode::TimingOnly,
            );
            hand += perf.time_ms * spec.count as f64;
        }
    }
    let total = plan.total_time_ms();
    assert!(
        (total - hand).abs() <= 1e-9 * hand.max(1.0),
        "runner total {total} ms != hand-summed {hand} ms"
    );
}
