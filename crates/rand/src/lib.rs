//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access and no vendored registry, so
//! the real `rand` cannot be resolved. This crate re-implements the *small,
//! deterministic* subset of its 0.8 API that the workspace actually uses —
//! `rngs::StdRng::seed_from_u64`, `Rng::gen_range` over half-open ranges,
//! and `distributions::Uniform` — on top of the SplitMix64 generator, so
//! every existing call site compiles unchanged and test vectors stay
//! reproducible across runs (all workspace RNG use is explicitly seeded).
//!
//! It is **not** a cryptographic or statistically rigorous generator; it
//! exists to produce well-mixed deterministic operand data for validation
//! and benchmarks.

use std::ops::Range;

/// Core pseudo-random source: one `u64` per step.
pub trait RngCore {
    /// Next 64 uniformly mixed bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling helpers (the `rand::Rng` extension trait).
pub trait Rng: RngCore {
    /// Sample uniformly from a half-open range, e.g. `rng.gen_range(-1.0..1.0)`.
    ///
    /// The output type drives inference (like real rand's `SampleRange<T>`),
    /// so float literals resolve against the expected element type.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Seedable construction (the `rand::SeedableRng` trait, `seed_from_u64` only).
pub trait SeedableRng: Sized {
    /// Build a generator whose whole state derives from one `u64`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Range types [`Rng::gen_range`] accepts, producing `T`.
pub trait SampleRange<T> {
    /// Draw one uniform sample.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform f64 in `[0, 1)` from 53 high bits.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f32> for Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + (self.end - self.start) * unit_f64(rng) as f32
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + (self.end - self.start) * unit_f64(rng)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_int_range!(usize, u64, u32, u16, u8);

impl SampleRange<i32> for Range<i32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> i32 {
        assert!(self.start < self.end, "gen_range: empty range");
        let span = (self.end as i64 - self.start as i64) as u64;
        self.start + (rng.next_u64() % span) as i32
    }
}

/// Concrete generators (`rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

/// Distribution objects (`rand::distributions`).
pub mod distributions {
    use super::RngCore;

    /// A distribution that can be sampled with any generator.
    pub trait Distribution<T> {
        /// Draw one sample.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Uniform distribution over `[low, high)`.
    #[derive(Debug, Clone, Copy)]
    pub struct Uniform<T> {
        low: T,
        high: T,
    }

    impl<T: Copy + PartialOrd> Uniform<T> {
        /// Uniform over the half-open interval `[low, high)`.
        pub fn new(low: T, high: T) -> Self {
            assert!(low < high, "Uniform::new: low must be < high");
            Uniform { low, high }
        }
    }

    impl Distribution<f32> for Uniform<f32> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
            self.low + (self.high - self.low) * super::unit_f64(rng) as f32
        }
    }

    impl Distribution<f64> for Uniform<f64> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            self.low + (self.high - self.low) * super::unit_f64(rng)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Uniform};
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0usize..1000), b.gen_range(0usize..1000));
        }
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f32 = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_distribution_covers_the_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        let dist = Uniform::new(-1.0f32, 1.0);
        let xs: Vec<f32> = (0..10_000).map(|_| dist.sample(&mut rng)).collect();
        assert!(xs.iter().all(|x| (-1.0..1.0).contains(x)));
        let mean = xs.iter().sum::<f32>() / xs.len() as f32;
        assert!(mean.abs() < 0.05, "mean {mean} far from 0");
        assert!(xs.iter().any(|&x| x < -0.9) && xs.iter().any(|&x| x > 0.9));
    }

    #[test]
    fn integer_ranges_hit_every_value() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
