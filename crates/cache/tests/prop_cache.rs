//! Property tests for the cache simulator: accounting invariants, LRU
//! behaviour, and the conflict-miss classifier's defining property.

use lsv_arch::{ArchParams, CacheGeometry};
use lsv_cache::{Hierarchy, SetAssocCache};
use proptest::prelude::*;

fn small_geom() -> CacheGeometry {
    CacheGeometry::new(1024, 64, 2) // 8 sets x 2 ways
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn accounting_conserved(addrs in proptest::collection::vec(0u64..65536, 1..400)) {
        let mut c = SetAssocCache::new(small_geom(), true);
        for &a in &addrs {
            c.access_line(a, a % 3 == 0);
        }
        let s = c.stats();
        prop_assert_eq!(s.hits + s.misses, addrs.len() as u64);
        prop_assert!(s.conflict_misses <= s.misses);
        prop_assert!(s.writebacks <= s.misses);
    }

    #[test]
    fn repeat_access_always_hits(addr in 0u64..65536) {
        let mut c = SetAssocCache::new(small_geom(), false);
        c.access_line(addr, false);
        let r = c.access_line(addr, false);
        prop_assert!(r.hit);
    }

    #[test]
    fn working_set_within_one_set_capacity_never_misses_twice(
        base in 0u64..1024,
        reps in 2usize..6,
    ) {
        // Two lines mapping to the same set fit a 2-way set: after the
        // first touch they hit forever regardless of interleaving.
        let stride = 512u64; // 8 sets x 64B
        let mut c = SetAssocCache::new(small_geom(), false);
        let a = base * 4;
        let b = a + stride;
        c.access_line(a, false);
        c.access_line(b, false);
        for _ in 0..reps {
            prop_assert!(c.access_line(a, false).hit);
            prop_assert!(c.access_line(b, false).hit);
        }
    }

    #[test]
    fn conflict_classification_requires_shadow_hit(
        addrs in proptest::collection::vec(0u64..32768, 1..300),
    ) {
        // A conflict miss can only happen to a line that was touched before
        // (the fully-associative shadow can only retain previously seen
        // lines). First-touch misses are never conflict-classified.
        let mut c = SetAssocCache::new(small_geom(), true);
        let mut seen = std::collections::HashSet::new();
        for &a in &addrs {
            let line = a & !63;
            let r = c.access_line(a, false);
            if r.conflict {
                prop_assert!(seen.contains(&line), "conflict on first touch of {line:#x}");
            }
            seen.insert(line);
        }
    }
}

fn tiny_arch() -> ArchParams {
    let mut a = lsv_arch::presets::sx_aurora();
    a.l1d = CacheGeometry::new(1024, 64, 2);
    a.l2 = CacheGeometry::new(4096, 64, 4);
    a.llc = CacheGeometry::new(16384, 64, 4);
    a
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn hierarchy_latency_matches_level(addrs in proptest::collection::vec(0u64..8192, 1..200)) {
        let arch = tiny_arch();
        let mut h = Hierarchy::for_core(&arch, 1);
        for &a in &addrs {
            let out = h.access_line(a, false);
            let expected = h.latency_of(out.level);
            prop_assert_eq!(out.latency, expected);
        }
    }

    #[test]
    fn hierarchy_l1_stats_count_all_accesses(addrs in proptest::collection::vec(0u64..8192, 1..200)) {
        let arch = tiny_arch();
        let mut h = Hierarchy::for_core(&arch, 1);
        for &a in &addrs {
            h.access_line(a, false);
        }
        let s = h.stats();
        prop_assert_eq!(s.l1.accesses(), addrs.len() as u64);
        // Inclusive-ish hierarchy: deeper levels see at most the misses of
        // the level above (prefetch fills are silent).
        prop_assert!(s.l2.accesses() <= s.l1.misses);
        prop_assert!(s.llc.accesses() <= s.l2.misses + s.l2.hits);
    }
}
