//! A single set-associative, write-back/write-allocate, LRU cache level with
//! optional fully-associative shadow for conflict-miss classification.
//!
//! This module sits on the simulator's hottest path — every simulated scalar
//! load and every vector-touched cache line goes through
//! [`SetAssocCache::access_line`] — so the data structures are built for
//! constant-time, allocation-free accesses:
//!
//! * the ways of all sets live in one flat array (no per-set `Vec` pointer
//!   chase; LRU order is maintained by shifting at most `ways` copies of a
//!   16-byte `Way`),
//! * set lookup is shift/mask (all practical geometries have power-of-two
//!   set counts; a modulo fallback keeps odd geometries correct),
//! * the conflict-classification shadow is an exact fully-associative LRU in
//!   O(1) per access: a fixed-capacity open-addressing table over an
//!   intrusive doubly-linked recency list (no `HashMap`, no `BTreeMap`),
//! * repeated accesses to the most-recently-used line take an early-out that
//!   skips the set scan and the shadow probe entirely while updating the
//!   same statistics — the common case inside a register block, where a
//!   kernel reads several consecutive scalars from one line.
//!
//! None of this changes a single simulated outcome: hit/miss/conflict
//! classification, writebacks and LRU victims are bit-identical to the
//! straightforward implementation (pinned by `tests/golden_cycles.rs` at the
//! workspace root and by the equivalence tests below).

use crate::stats::LevelStats;
use lsv_arch::CacheGeometry;

/// One way of a set: the line tag plus dirty/prefetch flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Way {
    line_addr: u64,
    dirty: bool,
    /// Filled by a prefetch and not yet demand-hit (stream-training state).
    prefetched: bool,
}

const NO_NODE: u32 = u32::MAX;
const NO_LINE: u64 = u64::MAX;

/// Fully-associative exact-LRU model of the same capacity as the main array.
///
/// Used for miss classification (Hill & Smith): a line that the shadow
/// retains but the set-associative array evicted was lost to a *conflict*,
/// not capacity. Every operation is O(1): residency is tracked by a
/// fixed-capacity open-addressing hash table (linear probing with
/// backward-shift deletion, ≤50% load factor) whose entries index an
/// intrusive doubly-linked recency list. The structure never allocates
/// after construction.
#[derive(Debug)]
pub struct ShadowLru {
    capacity: usize,
    /// slot -> node index, `NO_NODE` = empty. Power-of-two length.
    table: Box<[u32]>,
    /// `table.len() - 1` (for masking probe positions).
    slot_mask: usize,
    /// `64 - log2(table.len())` (Fibonacci-hash shift).
    hash_shift: u32,
    /// node -> line address.
    line: Box<[u64]>,
    /// node -> more-recent neighbour (towards MRU).
    prev: Box<[u32]>,
    /// node -> less-recent neighbour (towards LRU).
    next: Box<[u32]>,
    head: u32,
    tail: u32,
    len: usize,
}

impl ShadowLru {
    /// A shadow retaining the `capacity` most recently used lines.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity >= 1, "shadow capacity must be at least 1");
        let slots = (capacity * 2).next_power_of_two();
        Self {
            capacity,
            table: vec![NO_NODE; slots].into_boxed_slice(),
            slot_mask: slots - 1,
            hash_shift: 64 - slots.trailing_zeros(),
            line: vec![NO_LINE; capacity].into_boxed_slice(),
            prev: vec![NO_NODE; capacity].into_boxed_slice(),
            next: vec![NO_NODE; capacity].into_boxed_slice(),
            head: NO_NODE,
            tail: NO_NODE,
            len: 0,
        }
    }

    /// Lines currently retained.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the shadow holds no lines yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn home_slot(&self, line_addr: u64) -> usize {
        // Fibonacci hashing; line addresses are line-aligned, the
        // multiplication spreads the high-entropy middle bits into the top.
        (line_addr.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> self.hash_shift) as usize
    }

    /// Slot currently holding `line_addr`, if resident.
    #[inline]
    fn find_slot(&self, line_addr: u64) -> Option<usize> {
        let mut s = self.home_slot(line_addr);
        loop {
            let node = self.table[s];
            if node == NO_NODE {
                return None;
            }
            if self.line[node as usize] == line_addr {
                return Some(s);
            }
            s = (s + 1) & self.slot_mask;
        }
    }

    /// Insert `node` for `line_addr` into the first free probe slot.
    #[inline]
    fn insert_slot(&mut self, line_addr: u64, node: u32) {
        let mut s = self.home_slot(line_addr);
        while self.table[s] != NO_NODE {
            s = (s + 1) & self.slot_mask;
        }
        self.table[s] = node;
    }

    /// Backward-shift deletion: empty `slot` and compact the probe chain
    /// behind it so lookups never need tombstones.
    fn remove_slot(&mut self, slot: usize) {
        let mut i = slot;
        let mut j = slot;
        loop {
            j = (j + 1) & self.slot_mask;
            let node = self.table[j];
            if node == NO_NODE {
                break;
            }
            let home = self.home_slot(self.line[node as usize]);
            // `j`'s occupant may move into `i` iff its home slot is not in
            // the cyclic interval (i, j] — i.e. the probe chain still passes
            // through `i`.
            if (j.wrapping_sub(home) & self.slot_mask) >= (j.wrapping_sub(i) & self.slot_mask) {
                self.table[i] = self.table[j];
                i = j;
            }
        }
        self.table[i] = NO_NODE;
    }

    #[inline]
    fn unlink(&mut self, node: u32) {
        let (p, n) = (self.prev[node as usize], self.next[node as usize]);
        if p == NO_NODE {
            self.head = n;
        } else {
            self.next[p as usize] = n;
        }
        if n == NO_NODE {
            self.tail = p;
        } else {
            self.prev[n as usize] = p;
        }
    }

    #[inline]
    fn push_head(&mut self, node: u32) {
        self.prev[node as usize] = NO_NODE;
        self.next[node as usize] = self.head;
        if self.head != NO_NODE {
            self.prev[self.head as usize] = node;
        }
        self.head = node;
        if self.tail == NO_NODE {
            self.tail = node;
        }
    }

    /// The line at the head of the recency list (most recently touched).
    #[inline]
    fn mru_line(&self) -> Option<u64> {
        (self.head != NO_NODE).then(|| self.line[self.head as usize])
    }

    /// Touch a line; returns whether it was resident. Evicts the
    /// least-recently-used line when inserting into a full shadow.
    pub fn access(&mut self, line_addr: u64) -> bool {
        // Re-touching the head changes no recency state: skip the hash probe.
        if self.head != NO_NODE && self.line[self.head as usize] == line_addr {
            return true;
        }
        if let Some(slot) = self.find_slot(line_addr) {
            let node = self.table[slot];
            if self.head != node {
                self.unlink(node);
                self.push_head(node);
            }
            return true;
        }
        let node = if self.len == self.capacity {
            // Recycle the LRU node for the incoming line.
            let victim = self.tail;
            let victim_line = self.line[victim as usize];
            let slot = self
                .find_slot(victim_line)
                .expect("shadow LRU victim must be in the table");
            self.remove_slot(slot);
            self.unlink(victim);
            victim
        } else {
            let n = self.len as u32;
            self.len += 1;
            n
        };
        self.line[node as usize] = line_addr;
        self.insert_slot(line_addr, node);
        self.push_head(node);
        false
    }
}

/// The result of one line access against a [`SetAssocCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineAccess {
    /// The line was resident.
    pub hit: bool,
    /// The miss is classified as a conflict miss (only meaningful when
    /// `hit == false` and the cache has a shadow).
    pub conflict: bool,
    /// A dirty line was evicted to make room (write-back traffic).
    pub writeback: bool,
    /// The access hit a line that a prefetch filled and had not been
    /// demand-referenced yet — the stream prefetcher should continue.
    pub first_hit_on_prefetch: bool,
}

const HIT_MRU: LineAccess = LineAccess {
    hit: true,
    conflict: false,
    writeback: false,
    first_hit_on_prefetch: false,
};

/// An LRU set-associative cache over line-aligned addresses.
///
/// The cache stores no data — the simulated memory lives in
/// `lsv_vengine::Arena` — only residency metadata. Ways within a set are
/// kept in LRU order (index 0 = most recently used) in one flat array;
/// associativities in this workload are small (2-16), so shifting a few
/// `Way`s beats pointer chasing.
#[derive(Debug)]
pub struct SetAssocCache {
    geom: CacheGeometry,
    /// `log2(line)` — line offsets strip with one shift.
    line_shift: u32,
    /// `sets - 1` when the set count is a power of two (the practical case).
    set_mask: u64,
    /// Whether `set_mask` is usable; otherwise fall back to a modulo.
    sets_po2: bool,
    ways: usize,
    /// `sets * ways` ways; set `s` owns `[s*ways, s*ways + len[s])`.
    entries: Box<[Way]>,
    /// Occupancy per set.
    lens: Box<[u8]>,
    /// Most-recently-accessed line (fast path), `NO_LINE` when invalid.
    mru_line: u64,
    /// Set index of `mru_line` (its way is at position 0 of that set).
    mru_set: usize,
    shadow: Option<ShadowLru>,
    stats: LevelStats,
}

impl SetAssocCache {
    /// Create an empty cache. `classify_conflicts` enables the
    /// fully-associative shadow (adds memory/time overhead, typically enabled
    /// for L1 where the paper's conflict phenomenon lives, and for the MPKI
    /// study).
    pub fn new(geom: CacheGeometry, classify_conflicts: bool) -> Self {
        let sets = geom.sets();
        assert!(geom.ways <= u8::MAX as usize, "associativity fits a u8");
        let shadow = classify_conflicts.then(|| ShadowLru::new(geom.lines()));
        Self {
            geom,
            line_shift: geom.line.trailing_zeros(),
            set_mask: sets as u64 - 1,
            sets_po2: sets.is_power_of_two(),
            ways: geom.ways,
            entries: vec![
                Way {
                    line_addr: NO_LINE,
                    dirty: false,
                    prefetched: false,
                };
                sets * geom.ways
            ]
            .into_boxed_slice(),
            lens: vec![0; sets].into_boxed_slice(),
            mru_line: NO_LINE,
            mru_set: 0,
            shadow,
            stats: LevelStats::default(),
        }
    }

    /// The geometry this cache was built with.
    pub fn geometry(&self) -> CacheGeometry {
        self.geom
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> LevelStats {
        self.stats
    }

    /// Reset counters without flushing contents (used to discard cold-start
    /// effects before measuring a steady-state iteration).
    pub fn reset_stats(&mut self) {
        self.stats = LevelStats::default();
    }

    /// Drop all contents and counters.
    pub fn flush(&mut self) {
        self.entries.fill(Way {
            line_addr: NO_LINE,
            dirty: false,
            prefetched: false,
        });
        self.lens.fill(0);
        self.mru_line = NO_LINE;
        if let Some(sh) = &mut self.shadow {
            *sh = ShadowLru::new(self.geom.lines());
        }
        self.stats = LevelStats::default();
    }

    #[inline]
    fn set_of(&self, addr: u64) -> usize {
        let line_idx = addr >> self.line_shift;
        if self.sets_po2 {
            (line_idx & self.set_mask) as usize
        } else {
            (line_idx % (self.lens.len() as u64)) as usize
        }
    }

    /// Access one cache line (the address may be anywhere inside the line).
    /// `write` marks the line dirty. Missing lines are allocated
    /// (write-allocate), evicting the set's LRU way.
    pub fn access_line(&mut self, addr: u64, write: bool) -> LineAccess {
        let line_addr = (addr >> self.line_shift) << self.line_shift;

        // Fast path: the immediately preceding access touched this line, so
        // it is resident at MRU position with its prefetch flag cleared, and
        // it is also at the head of the shadow's recency list — re-touching
        // changes no LRU state anywhere. Only the counters move.
        if line_addr == self.mru_line {
            self.stats.hits += 1;
            if write {
                self.entries[self.mru_set * self.ways].dirty = true;
            }
            return HIT_MRU;
        }

        let set_idx = self.set_of(addr);
        let shadow_hit = self
            .shadow
            .as_mut()
            .map(|s| s.access(line_addr))
            .unwrap_or(false);

        let base = set_idx * self.ways;
        let len = self.lens[set_idx] as usize;
        let set = &mut self.entries[base..base + len];
        if let Some(pos) = set.iter().position(|w| w.line_addr == line_addr) {
            let mut way = set[pos];
            way.dirty |= write;
            let first_hit_on_prefetch = way.prefetched;
            way.prefetched = false;
            set.copy_within(0..pos, 1);
            set[0] = way;
            self.stats.hits += 1;
            self.mru_line = line_addr;
            self.mru_set = set_idx;
            return LineAccess {
                hit: true,
                conflict: false,
                writeback: false,
                first_hit_on_prefetch,
            };
        }

        // Miss: allocate, possibly evicting the LRU way.
        self.stats.misses += 1;
        let conflict = shadow_hit;
        if conflict {
            self.stats.conflict_misses += 1;
        }
        let mut writeback = false;
        if len == self.ways {
            let victim = set[len - 1];
            if victim.dirty {
                writeback = true;
                self.stats.writebacks += 1;
            }
        } else {
            self.lens[set_idx] = len as u8 + 1;
        }
        let shift = len.min(self.ways - 1);
        let set = &mut self.entries[base..base + self.ways];
        set.copy_within(0..shift, 1);
        set[0] = Way {
            line_addr,
            dirty: write,
            prefetched: false,
        };
        self.mru_line = line_addr;
        self.mru_set = set_idx;
        LineAccess {
            hit: false,
            conflict,
            writeback,
            first_hit_on_prefetch: false,
        }
    }

    /// Insert a line without touching statistics (hardware prefetch fill).
    /// The shadow is updated too: the fully-associative reference sees the
    /// same (demand + prefetch) stream.
    pub fn insert_silent(&mut self, addr: u64) {
        let line_addr = (addr >> self.line_shift) << self.line_shift;
        let set_idx = self.set_of(addr);
        // Fast path (hot under the streaming prefetcher, which re-fills the
        // same lines on every stream-continuation trigger): the line is
        // already this set's MRU way and — when a shadow exists — also the
        // shadow's most recent line. Re-inserting would reshuffle nothing,
        // so no state (including the demand MRU shortcut) needs touching.
        if self.lens[set_idx] > 0 && self.entries[set_idx * self.ways].line_addr == line_addr {
            match &self.shadow {
                None => return,
                Some(sh) if sh.mru_line() == Some(line_addr) => return,
                _ => {}
            }
        }
        if let Some(sh) = self.shadow.as_mut() {
            sh.access(line_addr);
        }
        // A silent fill reshuffles its set (and can even evict a one-way
        // set's resident line). It also moves a line to the head of the
        // fully-associative shadow, so when a shadow exists the previous MRU
        // line is no longer the shadow's most recent entry — the fast path's
        // "re-touch changes no LRU state" argument breaks and the shortcut
        // must be dropped unconditionally.
        if self.shadow.is_some() || set_idx == self.mru_set {
            self.mru_line = NO_LINE;
        }
        let base = set_idx * self.ways;
        let len = self.lens[set_idx] as usize;
        let set = &mut self.entries[base..base + len];
        if let Some(pos) = set.iter().position(|w| w.line_addr == line_addr) {
            let way = set[pos];
            set.copy_within(0..pos, 1);
            set[0] = way;
            return;
        }
        if len < self.ways {
            self.lens[set_idx] = len as u8 + 1;
        }
        let shift = len.min(self.ways - 1);
        let set = &mut self.entries[base..base + self.ways];
        set.copy_within(0..shift, 1);
        set[0] = Way {
            line_addr,
            dirty: false,
            prefetched: true,
        };
    }

    /// Whether a line is currently resident (no LRU update, no stats).
    pub fn probe(&self, addr: u64) -> bool {
        let line_addr = (addr >> self.line_shift) << self.line_shift;
        let set_idx = self.set_of(addr);
        let base = set_idx * self.ways;
        let len = self.lens[set_idx] as usize;
        self.entries[base..base + len]
            .iter()
            .any(|w| w.line_addr == line_addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SetAssocCache {
        // 4 sets x 2 ways x 64B lines = 512B.
        SetAssocCache::new(CacheGeometry::new(512, 64, 2), true)
    }

    #[test]
    fn hit_after_fill() {
        let mut c = tiny();
        assert!(!c.access_line(0, false).hit);
        assert!(c.access_line(0, false).hit);
        assert!(c.access_line(63, false).hit, "same line, different offset");
        assert!(!c.access_line(64, false).hit, "next line");
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = tiny();
        // Lines 0, 256, 512 all map to set 0 (stride = 4 sets * 64B).
        c.access_line(0, false);
        c.access_line(256, false);
        c.access_line(0, false); // 0 is now MRU, 256 LRU
        c.access_line(512, false); // evicts 256
        assert!(c.probe(0));
        assert!(!c.probe(256));
        assert!(c.probe(512));
    }

    #[test]
    fn conflict_classification() {
        let mut c = tiny();
        // Three lines in the same set: set-associative (2-way) thrashes while
        // the 8-line fully-associative shadow retains all three.
        for &a in &[0u64, 256, 512] {
            c.access_line(a, false);
        }
        let r = c.access_line(0, false); // evicted by 512, shadow still holds it
        assert!(!r.hit);
        assert!(r.conflict, "classified as conflict miss");
        assert_eq!(c.stats().conflict_misses, 1);
    }

    #[test]
    fn capacity_miss_not_conflict() {
        let mut c = tiny();
        // Touch 16 distinct lines (2x capacity): revisiting line 0 is a
        // capacity miss — the shadow evicted it too.
        for i in 0..16u64 {
            c.access_line(i * 64, false);
        }
        let r = c.access_line(0, false);
        assert!(!r.hit);
        assert!(!r.conflict, "shadow also evicted it: capacity miss");
    }

    #[test]
    fn writeback_on_dirty_eviction() {
        let mut c = tiny();
        c.access_line(0, true); // dirty
        c.access_line(256, false);
        let r = c.access_line(512, false); // evicts LRU = line 0 (dirty)
        assert!(r.writeback);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn stats_accesses_conserved() {
        let mut c = tiny();
        for i in 0..1000u64 {
            c.access_line((i * 37) % 4096, i % 3 == 0);
        }
        let s = c.stats();
        assert_eq!(s.hits + s.misses, 1000);
        assert!(s.conflict_misses <= s.misses);
    }

    #[test]
    fn flush_clears_contents() {
        let mut c = tiny();
        c.access_line(0, false);
        c.flush();
        assert!(!c.probe(0));
        assert_eq!(c.stats().accesses(), 0);
    }

    #[test]
    fn repeated_same_line_accesses_count_hits() {
        // The MRU fast path must update statistics exactly like the slow
        // path: n accesses = 1 miss + (n-1) hits, and a write through the
        // fast path still marks the line dirty (visible as a writeback).
        let mut c = tiny();
        c.access_line(128, false);
        for _ in 0..9 {
            c.access_line(130, false);
        }
        c.access_line(132, true); // fast-path write: marks dirty
        assert_eq!(c.stats().hits, 10);
        assert_eq!(c.stats().misses, 1);
        // Force line 128's eviction (set 2 on this geometry: lines 128+256k).
        c.access_line(128 + 256, false);
        let r = c.access_line(128 + 512, false);
        assert!(r.writeback, "dirty bit set through the fast path");
    }

    #[test]
    fn insert_silent_invalidates_mru_shortcut_in_same_set() {
        // One-way cache: a silent fill replaces the set's only line, so a
        // following access to the old line must be a miss.
        let mut c = SetAssocCache::new(CacheGeometry::new(256, 64, 1), false);
        c.access_line(0, false);
        assert!(c.access_line(0, false).hit);
        c.insert_silent(1024); // same set (4 sets: 1024 = set 0), evicts line 0
        assert!(!c.access_line(0, false).hit, "old line was evicted");
    }

    /// Reference fully-associative LRU (the data structure the O(1) shadow
    /// replaced), used to prove behavioural equivalence.
    struct NaiveLru {
        capacity: usize,
        order: Vec<u64>, // front = MRU
    }

    impl NaiveLru {
        fn access(&mut self, line: u64) -> bool {
            let hit = if let Some(p) = self.order.iter().position(|&l| l == line) {
                self.order.remove(p);
                true
            } else {
                false
            };
            self.order.insert(0, line);
            if self.order.len() > self.capacity {
                self.order.pop();
            }
            hit
        }
    }

    #[test]
    fn shadow_matches_naive_lru_on_adversarial_streams() {
        for capacity in [1usize, 2, 3, 8, 64] {
            let mut fast = ShadowLru::new(capacity);
            let mut slow = NaiveLru {
                capacity,
                order: Vec::new(),
            };
            // Deterministic mixed stream: sequential runs, strided sweeps,
            // hot-line re-touches, and pseudo-random jumps — enough churn to
            // exercise eviction, backward-shift deletion and re-insertion.
            let mut x = 0x243F_6A88_85A3_08D3u64;
            for i in 0..20_000u64 {
                let line = match i % 4 {
                    0 => (i / 4 % 97) * 64,
                    1 => (i % 7) * 64,
                    2 => ((i * 37) % 256) * 64,
                    _ => {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        (x % 211) * 64
                    }
                };
                assert_eq!(
                    fast.access(line),
                    slow.access(line),
                    "capacity {capacity}, step {i}, line {line:#x}"
                );
            }
            assert_eq!(fast.len(), slow.order.len());
        }
    }

    #[test]
    fn shadow_capacity_one() {
        let mut s = ShadowLru::new(1);
        assert!(!s.access(0));
        assert!(s.access(0));
        assert!(!s.access(64));
        assert!(!s.access(0), "capacity-1 shadow keeps only the last line");
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn non_power_of_two_set_count_stays_correct() {
        // 3 sets x 2 ways x 64B = 384B: the modulo fallback path.
        let mut c = SetAssocCache::new(CacheGeometry::new(384, 64, 2), false);
        assert_eq!(c.geometry().sets(), 3);
        c.access_line(0, false); // set 0
        c.access_line(3 * 64, false); // set 0 again (wraps)
        c.access_line(6 * 64, false); // set 0: evicts line 0
        assert!(!c.probe(0));
        assert!(c.probe(3 * 64));
        assert!(c.probe(6 * 64));
        assert!(!c.access_line(64, false).hit, "set 1 cold");
    }
}
