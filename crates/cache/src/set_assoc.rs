//! A single set-associative, write-back/write-allocate, LRU cache level with
//! optional fully-associative shadow for conflict-miss classification.

use crate::stats::LevelStats;
use lsv_arch::CacheGeometry;
use std::collections::HashMap;

/// One way of a set: the line tag plus dirty/prefetch flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Way {
    line_addr: u64,
    dirty: bool,
    /// Filled by a prefetch and not yet demand-hit (stream-training state).
    prefetched: bool,
}

/// Fully-associative LRU model of the same capacity as the main array.
///
/// Used only for miss classification: a line that the shadow retains but the
/// set-associative array evicted was lost to a *conflict*, not capacity.
/// Implemented as a timestamp map plus an ordered recency index; both
/// operations are `O(log n)` which is irrelevant next to the simulated
/// kernels' cost.
#[derive(Debug, Default)]
struct ShadowLru {
    capacity: usize,
    clock: u64,
    /// line address -> last-use timestamp
    stamp: HashMap<u64, u64>,
    /// last-use timestamp -> line address (timestamps are unique)
    order: std::collections::BTreeMap<u64, u64>,
}

impl ShadowLru {
    fn new(capacity: usize) -> Self {
        Self {
            capacity,
            clock: 0,
            stamp: HashMap::with_capacity(capacity),
            order: Default::default(),
        }
    }

    /// Touch a line; returns whether it was resident.
    fn access(&mut self, line_addr: u64) -> bool {
        self.clock += 1;
        let hit = if let Some(old) = self.stamp.insert(line_addr, self.clock) {
            self.order.remove(&old);
            true
        } else {
            false
        };
        self.order.insert(self.clock, line_addr);
        if self.stamp.len() > self.capacity {
            // Evict the least-recently used entry.
            let (&oldest, &victim) = self.order.iter().next().expect("shadow non-empty");
            self.order.remove(&oldest);
            self.stamp.remove(&victim);
        }
        hit
    }
}

/// The result of one line access against a [`SetAssocCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineAccess {
    /// The line was resident.
    pub hit: bool,
    /// The miss is classified as a conflict miss (only meaningful when
    /// `hit == false` and the cache has a shadow).
    pub conflict: bool,
    /// A dirty line was evicted to make room (write-back traffic).
    pub writeback: bool,
    /// The access hit a line that a prefetch filled and had not been
    /// demand-referenced yet — the stream prefetcher should continue.
    pub first_hit_on_prefetch: bool,
}

/// An LRU set-associative cache over line-aligned addresses.
///
/// The cache stores no data — the simulated memory lives in
/// `lsv_vengine::Arena` — only residency metadata. Ways within a set are
/// kept in LRU order (index 0 = most recently used); associativities in this
/// workload are small (2-16), so a `Vec` scan beats pointer chasing.
#[derive(Debug)]
pub struct SetAssocCache {
    geom: CacheGeometry,
    sets: Vec<Vec<Way>>,
    shadow: Option<ShadowLru>,
    stats: LevelStats,
}

impl SetAssocCache {
    /// Create an empty cache. `classify_conflicts` enables the
    /// fully-associative shadow (adds memory/time overhead, typically enabled
    /// for L1 where the paper's conflict phenomenon lives, and for the MPKI
    /// study).
    pub fn new(geom: CacheGeometry, classify_conflicts: bool) -> Self {
        let sets = vec![Vec::with_capacity(geom.ways); geom.sets()];
        let shadow = classify_conflicts.then(|| ShadowLru::new(geom.lines()));
        Self {
            geom,
            sets,
            shadow,
            stats: LevelStats::default(),
        }
    }

    /// The geometry this cache was built with.
    pub fn geometry(&self) -> CacheGeometry {
        self.geom
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> LevelStats {
        self.stats
    }

    /// Reset counters without flushing contents (used to discard cold-start
    /// effects before measuring a steady-state iteration).
    pub fn reset_stats(&mut self) {
        self.stats = LevelStats::default();
    }

    /// Drop all contents and counters.
    pub fn flush(&mut self) {
        for s in &mut self.sets {
            s.clear();
        }
        if let Some(sh) = &mut self.shadow {
            *sh = ShadowLru::new(self.geom.lines());
        }
        self.stats = LevelStats::default();
    }

    /// Access one cache line (the address may be anywhere inside the line).
    /// `write` marks the line dirty. Missing lines are allocated
    /// (write-allocate), evicting the set's LRU way.
    pub fn access_line(&mut self, addr: u64, write: bool) -> LineAccess {
        let line_addr = self.geom.line_addr(addr);
        let set_idx = self.geom.set_of(addr);
        let shadow_hit = self
            .shadow
            .as_mut()
            .map(|s| s.access(line_addr))
            .unwrap_or(false);

        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|w| w.line_addr == line_addr) {
            let mut way = set.remove(pos);
            way.dirty |= write;
            let first_hit_on_prefetch = way.prefetched;
            way.prefetched = false;
            set.insert(0, way);
            self.stats.hits += 1;
            return LineAccess {
                hit: true,
                conflict: false,
                writeback: false,
                first_hit_on_prefetch,
            };
        }

        // Miss: allocate, possibly evicting the LRU way.
        self.stats.misses += 1;
        let conflict = shadow_hit;
        if conflict {
            self.stats.conflict_misses += 1;
        }
        let mut writeback = false;
        if set.len() == self.geom.ways {
            let victim = set.pop().expect("full set has a victim");
            if victim.dirty {
                writeback = true;
                self.stats.writebacks += 1;
            }
        }
        set.insert(
            0,
            Way {
                line_addr,
                dirty: write,
                prefetched: false,
            },
        );
        LineAccess {
            hit: false,
            conflict,
            writeback,
            first_hit_on_prefetch: false,
        }
    }

    /// Insert a line without touching statistics (hardware prefetch fill).
    /// The shadow is updated too: the fully-associative reference sees the
    /// same (demand + prefetch) stream.
    pub fn insert_silent(&mut self, addr: u64) {
        let line_addr = self.geom.line_addr(addr);
        let set_idx = self.geom.set_of(addr);
        if let Some(sh) = self.shadow.as_mut() {
            sh.access(line_addr);
        }
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.iter().position(|w| w.line_addr == line_addr) {
            let way = set.remove(pos);
            set.insert(0, way);
            return;
        }
        if set.len() == self.geom.ways {
            set.pop();
        }
        set.insert(
            0,
            Way {
                line_addr,
                dirty: false,
                prefetched: true,
            },
        );
    }

    /// Whether a line is currently resident (no LRU update, no stats).
    pub fn probe(&self, addr: u64) -> bool {
        let line_addr = self.geom.line_addr(addr);
        self.sets[self.geom.set_of(addr)]
            .iter()
            .any(|w| w.line_addr == line_addr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SetAssocCache {
        // 4 sets x 2 ways x 64B lines = 512B.
        SetAssocCache::new(CacheGeometry::new(512, 64, 2), true)
    }

    #[test]
    fn hit_after_fill() {
        let mut c = tiny();
        assert!(!c.access_line(0, false).hit);
        assert!(c.access_line(0, false).hit);
        assert!(c.access_line(63, false).hit, "same line, different offset");
        assert!(!c.access_line(64, false).hit, "next line");
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = tiny();
        // Lines 0, 256, 512 all map to set 0 (stride = 4 sets * 64B).
        c.access_line(0, false);
        c.access_line(256, false);
        c.access_line(0, false); // 0 is now MRU, 256 LRU
        c.access_line(512, false); // evicts 256
        assert!(c.probe(0));
        assert!(!c.probe(256));
        assert!(c.probe(512));
    }

    #[test]
    fn conflict_classification() {
        let mut c = tiny();
        // Three lines in the same set: set-associative (2-way) thrashes while
        // the 8-line fully-associative shadow retains all three.
        for &a in &[0u64, 256, 512] {
            c.access_line(a, false);
        }
        let r = c.access_line(0, false); // evicted by 512, shadow still holds it
        assert!(!r.hit);
        assert!(r.conflict, "classified as conflict miss");
        assert_eq!(c.stats().conflict_misses, 1);
    }

    #[test]
    fn capacity_miss_not_conflict() {
        let mut c = tiny();
        // Touch 16 distinct lines (2x capacity): revisiting line 0 is a
        // capacity miss — the shadow evicted it too.
        for i in 0..16u64 {
            c.access_line(i * 64, false);
        }
        let r = c.access_line(0, false);
        assert!(!r.hit);
        assert!(!r.conflict, "shadow also evicted it: capacity miss");
    }

    #[test]
    fn writeback_on_dirty_eviction() {
        let mut c = tiny();
        c.access_line(0, true); // dirty
        c.access_line(256, false);
        let r = c.access_line(512, false); // evicts LRU = line 0 (dirty)
        assert!(r.writeback);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn stats_accesses_conserved() {
        let mut c = tiny();
        for i in 0..1000u64 {
            c.access_line((i * 37) % 4096, i % 3 == 0);
        }
        let s = c.stats();
        assert_eq!(s.hits + s.misses, 1000);
        assert!(s.conflict_misses <= s.misses);
    }

    #[test]
    fn flush_clears_contents() {
        let mut c = tiny();
        c.access_line(0, false);
        c.flush();
        assert!(!c.probe(0));
        assert_eq!(c.stats().accesses(), 0);
    }
}
